// Command ectuner searches erasure-coding configurations automatically —
// the §6 follow-up the paper proposes. It evaluates a space of plugin /
// pg_num / stripe_unit / cache-scheme combinations on the simulated
// cluster and ranks them by the chosen objective.
//
// Usage:
//
//	ectuner [-objective balanced|min-recovery-time|min-write-amplification|max-durability]
//	        [-greedy] [-scale N] [-workers N] [-top K] [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/tuner"
)

func main() {
	log.SetFlags(0)
	objective := flag.String("objective", "balanced", "min-recovery-time | min-write-amplification | max-durability | balanced")
	greedy := flag.Bool("greedy", false, "coordinate descent instead of full grid")
	scale := flag.Int("scale", 50, "workload scale divisor")
	workers := flag.Int("workers", 0, "concurrent candidate evaluations (0 = ECFAULT_WORKERS or NumCPU)")
	top := flag.Int("top", 10, "ranked candidates to print")
	jsonOut := flag.Bool("json", false, "emit results as JSON")
	flag.Parse()
	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}

	obj, err := parseObjective(*objective)
	if err != nil {
		log.Fatal(err)
	}
	base := core.DefaultProfile().ScaleWorkload(*scale)
	space := tuner.Space{
		Plugins: []tuner.PluginChoice{
			{Plugin: "jerasure_reed_sol_van", K: 9, M: 3},
			{Plugin: "clay", K: 9, M: 3, D: 11},
			{Plugin: "lrc", K: 9, M: 3, D: 3},
			{Plugin: "shec", K: 9, M: 5, D: 3},
		},
		PGNums:       []int{16, 64, 256},
		StripeUnits:  []int64{64 << 10, 1 << 20, 4 << 20},
		CacheSchemes: []string{core.SchemeAutotune, core.SchemeDataOptimized, core.SchemeKVOptimized},
	}

	if *greedy {
		best, runs, err := tuner.GreedySearch(base, space, obj)
		if err != nil {
			log.Fatal(err)
		}
		if *jsonOut {
			emitJSON(map[string]any{"evaluations": runs, "best": candidateView(best)})
			return
		}
		fmt.Printf("greedy search (%s): %d evaluations\n", obj, runs)
		printCandidate(1, best)
		return
	}

	ranked, err := tuner.GridSearch(base, space, obj)
	if err != nil {
		log.Fatal(err)
	}
	if *jsonOut {
		views := make([]map[string]any, 0, len(ranked))
		for _, c := range ranked {
			views = append(views, candidateView(c))
		}
		emitJSON(map[string]any{"objective": obj.String(), "candidates": views})
		return
	}
	fmt.Printf("grid search (%s): %d candidates\n", obj, len(ranked))
	fmt.Println("rank  score   recovery      WA   nines  configuration")
	for i, c := range ranked {
		if i >= *top {
			fmt.Printf("      ... %d more\n", len(ranked)-*top)
			break
		}
		printCandidate(i+1, c)
	}
}

func parseObjective(s string) (tuner.Objective, error) {
	switch s {
	case "min-recovery-time":
		return tuner.MinRecoveryTime, nil
	case "min-write-amplification":
		return tuner.MinWriteAmplification, nil
	case "max-durability":
		return tuner.MaxDurability, nil
	case "balanced":
		return tuner.Balanced, nil
	}
	return 0, fmt.Errorf("ectuner: unknown objective %q", s)
}

func printCandidate(rank int, c tuner.Candidate) {
	if c.Err != nil {
		fmt.Printf("%4d      —          —       —       —  %s (failed: %v)\n", rank, c.Describe(), c.Err)
		return
	}
	fmt.Printf("%4d  %5.2f  %7.1fs  %6.3f  %6.1f  %s\n",
		rank, c.Score, c.RecoveryTime.Seconds(), c.WA, c.DurabilityNines, c.Describe())
}

func candidateView(c tuner.Candidate) map[string]any {
	v := map[string]any{
		"configuration": c.Describe(),
		"score":         c.Score,
	}
	if c.Err != nil {
		v["error"] = c.Err.Error()
		return v
	}
	v["recovery_seconds"] = c.RecoveryTime.Seconds()
	v["write_amplification"] = c.WA
	v["durability_nines"] = c.DurabilityNines
	return v
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Fatal(err)
	}
}

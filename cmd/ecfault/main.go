// Command ecfault runs one ECFault experiment described by a JSON profile
// and prints the measured recovery cycle, storage overhead, and merged
// log timeline.
//
// Usage:
//
//	ecfault -profile profile.json [-scale N] [-timeline]
//	ecfault -default > profile.json     # emit the paper-baseline profile
//	ecfault -clay > profile.json        # emit the Clay(12,9,11) profile
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cephconf"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/profutil"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	profilePath := flag.String("profile", "", "experiment profile (JSON)")
	confPath := flag.String("conf", "", "ceph.conf-style INI overlaying the profile")
	scale := flag.Int("scale", 1, "divide the profile workload by this factor")
	timeline := flag.Bool("timeline", false, "print the merged log timeline")
	emitDefault := flag.Bool("default", false, "print the paper-baseline profile and exit")
	emitClay := flag.Bool("clay", false, "print the Clay(12,9,11) profile and exit")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	simWorkers := flag.Int("sim-workers", 0, "event-engine workers for one run (0 = ECFAULT_SIM_WORKERS, default serial); results are byte-identical at any setting")
	flag.Parse()

	if *simWorkers > 0 {
		parallel.SetSimWorkers(*simWorkers)
	}

	stopProf, err := profutil.Start(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
	}()

	if *emitDefault || *emitClay {
		p := core.DefaultProfile()
		if *emitClay {
			p = core.ClayProfile()
		}
		data, err := json.MarshalIndent(p, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(data))
		return
	}
	if *profilePath == "" {
		log.Fatal("ecfault: -profile is required (or -default / -clay to emit one)")
	}
	p, err := core.LoadProfile(*profilePath)
	if err != nil {
		log.Fatal(err)
	}
	if *confPath != "" {
		conf, err := cephconf.Load(*confPath)
		if err != nil {
			log.Fatal(err)
		}
		if p, err = conf.ApplyProfile(p); err != nil {
			log.Fatal(err)
		}
	}
	p = p.ScaleWorkload(*scale)

	res, err := core.Run(p)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("profile: %s (%s, k=%d m=%d pg_num=%d stripe_unit=%d)\n",
		p.Name, p.Pool.Plugin, p.Pool.K, p.Pool.M, p.Pool.PGNum, p.Pool.StripeUnit)
	fmt.Printf("workload: %d x %d MiB objects (%.1f GiB written)\n",
		p.Workload.Objects, p.Workload.ObjectSize>>20, float64(res.WrittenBytes)/float64(1<<30))
	fmt.Printf("storage:  %.1f GiB used, %s\n",
		float64(res.UsedBytes)/float64(1<<30), report.WAReport(res.WA))

	if res.Recovery != nil {
		r := res.Recovery
		fmt.Printf("recovery: detected=%v start=%v finished=%v\n", r.DetectedAt, r.RecoveryStartAt, r.FinishedAt)
		fmt.Printf("          system recovery %.1fs = checking %.1fs (%.1f%%) + EC recovery %.1fs\n",
			r.SystemRecoveryTime().Seconds(), r.CheckingPeriod().Seconds(),
			r.CheckingFraction()*100, r.ECRecoveryPeriod().Seconds())
		fmt.Printf("          %d degraded PGs, %d chunks repaired (%d object repairs, %d full decodes)\n",
			r.DegradedPGs, r.RepairedChunks, r.ObjectRepairs, r.FullDecodeObjects)
		fmt.Printf("          helper reads %.2f GiB, network %.2f GiB, writes %.2f GiB\n",
			gib(r.HelperDiskBytes), gib(r.NetworkBytes), gib(r.WrittenBytes))
	}
	if res.Scrub != nil {
		fmt.Printf("scrub:    %d chunks checked, %d inconsistent, %d repaired\n",
			res.Scrub.ChunksScrubbed, len(res.Scrub.Inconsistent), res.RepairedInconsistent)
	}
	fmt.Printf("logs:     %d lines shipped, %d dropped locally, %d iostat samples\n",
		res.LogLinesShipped, res.LogLinesDropped, len(res.IOSamples))
	if res.Profile.Workload.Payload {
		fmt.Printf("payload:  verified=%v (%d errors)\n", res.PayloadVerified, res.PayloadErrors)
	}
	if *timeline && len(res.Timeline) > 0 {
		fmt.Println("\ntimeline (recovery phases):")
		fmt.Print(report.TimelineEvents(res.Timeline, res.Timeline[0].Time))
	}
	_ = os.Stdout.Sync()
}

func gib(b int64) float64 { return float64(b) / float64(1<<30) }

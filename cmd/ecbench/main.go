// Command ecbench regenerates every table and figure of the paper's
// evaluation section and prints them in the paper's format.
//
// Usage:
//
//	ecbench [-scale N] [-workers N] [-only fig2a,fig2b,fig2c,fig2d,fig3,table3,wa]
//
// Scale divides the 10,000-object workload; the normalized shapes are
// stable across scales, so -scale 20 gives a fast faithful run.
// Independent experiment cells run concurrently; -workers (or the
// ECFAULT_WORKERS environment variable) bounds the pool, with -workers 1
// forcing the serial order.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/erasure/kernel"
	"repro/internal/experiments"
	"repro/internal/gf256"
	"repro/internal/parallel"
	"repro/internal/profutil"
	"repro/internal/report"
)

func main() {
	scale := flag.Int("scale", 10, "divide the paper workload by this factor")
	workers := flag.Int("workers", 0, "concurrent experiment cells (0 = ECFAULT_WORKERS or NumCPU)")
	only := flag.String("only", "", "comma-separated subset: fig2a,fig2b,fig2c,fig2d,fig3,table3,wa,plugins")
	bars := flag.Bool("bars", false, "render figures as ASCII bar charts")
	compare := flag.Bool("compare", false, "append paper-vs-measured deltas to each figure")
	jsonOut := flag.Bool("json", false, "emit all results as JSON instead of text")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	backends := flag.Bool("backends", false, "print the active GF(2^8) backend, the dispatch chain, and CPU features, then exit")
	flag.Parse()
	if *backends {
		fmt.Printf("backend: %s\n", gf256.Backend())
		fmt.Printf("available: %s\n", strings.Join(gf256.Backends(), " "))
		fmt.Printf("cpu_features: %s\n", strings.Join(gf256.CPUFeatures(), " "))
		chunk, parThresh, stridedThresh := kernel.Tuning()
		fmt.Printf("tuning: chunk_bytes=%d parallel_threshold=%d strided_threshold=%d kernel_workers=%d\n",
			chunk, parThresh, stridedThresh, parallel.KernelWorkers())
		return
	}
	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}

	stopProf, err := profutil.Start(*cpuProfile, *memProfile)
	exitOn(err)
	defer func() { exitOn(stopProf()) }()

	var collected = map[string]any{}
	emitFigure := func(fig *experiments.Figure) {
		if *jsonOut {
			collected[fig.ID] = fig
			return
		}
		if *bars {
			fmt.Println(report.FigureBars(fig))
		} else {
			fmt.Println(report.Figure(fig))
		}
		if *compare {
			if cmp := report.Comparison(fig); cmp != "" {
				fmt.Println(cmp)
			}
		}
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	run := func(id string) bool { return len(want) == 0 || want[id] }

	if run("fig2a") {
		fig, err := experiments.Fig2aBackendCache(*scale)
		exitOn(err)
		emitFigure(fig)
	}
	if run("fig2b") {
		fig, err := experiments.Fig2bPlacementGroups(*scale)
		exitOn(err)
		emitFigure(fig)
	}
	if run("fig2c") {
		fig, err := experiments.Fig2cStripeUnit(*scale)
		exitOn(err)
		emitFigure(fig)
	}
	if run("fig2d") {
		fig, err := experiments.Fig2dFailureMode(*scale)
		exitOn(err)
		emitFigure(fig)
	}
	if run("fig3") {
		tl, err := experiments.Fig3Timeline(*scale)
		exitOn(err)
		if *jsonOut {
			tl.Events = nil // keep the JSON compact
			collected["fig3"] = tl
		} else {
			fmt.Println(report.Timeline(tl))
			fmt.Println(report.TimelineEvents(tl.Events, tl.Events[0].Time))
		}
	}
	if run("table3") {
		rows, err := experiments.Table3WriteAmplification(*scale)
		exitOn(err)
		if *jsonOut {
			collected["table3"] = rows
		} else {
			fmt.Println(report.Table3(rows))
		}
	}
	if run("wa") {
		rows, err := experiments.WAFormulaValidation(*scale)
		exitOn(err)
		if *jsonOut {
			collected["wa_validation"] = rows
		} else {
			fmt.Println(report.WAValidation(rows))
		}
	}
	if run("plugins") {
		rows, err := experiments.PluginComparison(*scale)
		exitOn(err)
		if *jsonOut {
			collected["plugins"] = rows
		} else {
			fmt.Println(report.Plugins(rows))
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		exitOn(enc.Encode(collected))
	}
}

func exitOn(err error) {
	if err != nil {
		log.SetFlags(0)
		log.Print(err)
		os.Exit(1)
	}
}

// Recovery study: the paper's core experiment as a library consumer would
// run it — build a Ceph-like cluster, load a workload, fail an OSD host,
// and measure where the recovery time actually goes (spoiler, §4.3: around
// half of it is the system checking period, not EC repair).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)

	// The paper baseline, scaled 10x down so this example runs in about a
	// second (shapes are preserved; see EXPERIMENTS.md).
	for _, plugin := range []struct {
		label string
		name  string
		d     int
	}{
		{"RS(12,9)", "jerasure_reed_sol_van", 0},
		{"Clay(12,9,11)", "clay", 11},
	} {
		p := core.DefaultProfile().ScaleWorkload(10)
		p.Name = "recovery-study-" + p.Pool.Plugin
		p.Pool.Plugin = plugin.name
		p.Pool.D = plugin.d

		res, err := core.Run(p)
		if err != nil {
			log.Fatal(err)
		}
		r := res.Recovery
		fmt.Printf("%s: single OSD-host failure on a %d-host cluster\n", plugin.label, p.Cluster.Hosts)
		fmt.Printf("  system recovery time  %8.1fs\n", r.SystemRecoveryTime().Seconds())
		fmt.Printf("  ├─ checking period    %8.1fs  (%.1f%% — heartbeats, peering, mark-out)\n",
			r.CheckingPeriod().Seconds(), r.CheckingFraction()*100)
		fmt.Printf("  └─ EC recovery period %8.1fs  (%d chunks on %d PGs)\n",
			r.ECRecoveryPeriod().Seconds(), r.RepairedChunks, r.DegradedPGs)
		fmt.Printf("  repair I/O: read %.1f GiB from helpers, moved %.1f GiB over the network\n",
			gib(r.HelperDiskBytes), gib(r.NetworkBytes))
		fmt.Println()
	}

	// The same experiment, through the per-phase log timeline the Logger
	// component assembles (Figure 3).
	p := core.DefaultProfile().ScaleWorkload(10)
	p.Name = "recovery-study-timeline"
	res, err := core.Run(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recovery timeline from merged cluster logs:")
	fmt.Print(report.TimelineEvents(res.Timeline, res.Timeline[0].Time))
}

func gib(b int64) float64 { return float64(b) / float64(1<<30) }

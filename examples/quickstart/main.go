// Quickstart: encode an object with Reed-Solomon and Clay, lose chunks,
// and repair them — the erasure-coding core of the library in ~80 lines.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/erasure"
	"repro/internal/erasure/clay"
	"repro/internal/erasure/reedsolomon"
)

func main() {
	log.SetFlags(0)

	// RS(12,9): 9 data chunks, 3 parity chunks, as in the paper.
	rs, err := reedsolomon.New(9, 3, reedsolomon.Vandermonde)
	if err != nil {
		log.Fatal(err)
	}
	demo("Reed-Solomon RS(12,9)", rs)

	// Clay(12,9,11): same fault tolerance, repair-optimal.
	cl, err := clay.New(9, 3, 11)
	if err != nil {
		log.Fatal(err)
	}
	demo("Clay(12,9,11)", cl)

	// The headline difference: repair traffic for a single lost chunk.
	rsPlan, _ := rs.RepairPlan([]int{4})
	clPlan, _ := cl.RepairPlan([]int{4})
	fmt.Println("single-chunk repair traffic (in chunk units):")
	fmt.Printf("  RS(12,9):      reads %d helpers x full chunk  = %.2f chunks\n",
		len(rsPlan.Helpers), rsPlan.ReadFraction())
	fmt.Printf("  Clay(12,9,11): reads %d helpers x %d/%d chunk = %.2f chunks (%.0f%% of RS)\n",
		len(clPlan.Helpers), cl.Beta(), cl.SubChunks(), clPlan.ReadFraction(),
		100*clPlan.ReadFraction()/rsPlan.ReadFraction())
}

func demo(name string, code erasure.Code) {
	fmt.Printf("%s (alpha=%d sub-chunks per chunk)\n", name, code.SubChunks())

	// Chunk size must divide by the sub-packetization level.
	chunkSize := 4096 * code.SubChunks() / gcd(4096, code.SubChunks())
	shards := make([][]byte, code.N())
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < code.K(); i++ {
		shards[i] = make([]byte, chunkSize)
		rng.Read(shards[i])
	}
	original := make([][]byte, code.K())
	for i := range original {
		original[i] = append([]byte(nil), shards[i]...)
	}

	// Encode parities.
	if err := code.Encode(shards); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  encoded %d data chunks -> %d total chunks of %d bytes\n",
		code.K(), code.N(), chunkSize)

	// Lose the maximum tolerable number of chunks and decode.
	lost := []int{1, code.K(), code.N() - 1}[:code.M()]
	for _, l := range lost {
		shards[l] = nil
	}
	if err := code.Decode(shards); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < code.K(); i++ {
		if !bytes.Equal(shards[i], original[i]) {
			log.Fatalf("  data corrupted after decode!")
		}
	}
	fmt.Printf("  lost chunks %v, decoded all data back bit-exact\n", lost)

	// Single-chunk repair through the bandwidth-optimal path.
	victim := 2
	backup := append([]byte(nil), shards[victim]...)
	shards[victim] = nil
	if err := code.Repair(shards, []int{victim}); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(shards[victim], backup) {
		log.Fatal("  repair produced wrong bytes!")
	}
	plan, _ := code.RepairPlan([]int{victim})
	fmt.Printf("  repaired chunk %d reading %d sub-chunks from %d helpers\n\n",
		victim, plan.SubChunksRead(), len(plan.Helpers))
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

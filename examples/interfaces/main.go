// Interfaces: the Table 1 "Ceph interface" dimension — the same
// erasure-coded pool accessed as RADOS objects, an RBD-like block image,
// and an RGW-like bucket, all surviving a host failure and recovery.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
)

func main() {
	log.SetFlags(0)

	cfg := cluster.DefaultConfig()
	cfg.Hosts = 12
	cfg.OSDsPerHost = 2
	cfg.DeviceCapacity = 4 << 30
	c, err := cluster.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := c.CreatePool(cluster.PoolConfig{
		Name: "unified", Plugin: "jerasure_reed_sol_van",
		K: 6, M: 3, PGNum: 32, StripeUnit: 64 << 10, FailureDomain: "host",
	}); err != nil {
		log.Fatal(err)
	}
	rados := client.NewRADOS(c, "unified")
	rng := rand.New(rand.NewSource(99))

	// RADOS: plain objects.
	doc := make([]byte, 150_000)
	rng.Read(doc)
	if err := rados.Put("report.pdf", doc); err != nil {
		log.Fatal(err)
	}
	fmt.Println("rados: stored report.pdf (150 KB) as RS(9,6) chunks")

	// RBD: a block volume with a filesystem-ish access pattern.
	im, err := client.CreateImage(rados, "vm-disk", 8<<20, 256<<10)
	if err != nil {
		log.Fatal(err)
	}
	blocks := map[int64][]byte{}
	for i := 0; i < 6; i++ {
		off := int64(rng.Intn(28)) * 256 << 10 / 256 * 256 // block-ish offsets
		data := make([]byte, 48_000)
		rng.Read(data)
		if _, err := im.WriteAt(data, off); err != nil {
			log.Fatal(err)
		}
		blocks[off] = data
	}
	fmt.Printf("rbd: image vm-disk (8 MiB, 256 KiB objects), %d random writes\n", len(blocks))

	// RGW: a bucket with multipart objects.
	gw := client.NewGateway(rados, 128<<10)
	video := make([]byte, 700_000) // ~6 parts
	rng.Read(video)
	if err := gw.PutObject("media", "clip.mp4", video); err != nil {
		log.Fatal(err)
	}
	if err := gw.PutObject("media", "thumb.jpg", doc[:20_000]); err != nil {
		log.Fatal(err)
	}
	keys, _ := gw.ListBucket("media")
	fmt.Printf("rgw: bucket media holds %v (multipart, 128 KiB parts)\n", keys)

	// Fail the busiest host and recover.
	host, err := c.HostWithMostChunks("unified")
	if err != nil {
		log.Fatal(err)
	}
	c.FailHost(time.Second, host)
	res, err := c.RecoverPool("unified")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failed %s; recovered %d chunks in %.1fs (%s)\n",
		host, res.RepairedChunks, res.SystemRecoveryTime().Seconds(), c.Health())

	// Every interface still serves intact data.
	got, err := rados.Get("report.pdf")
	if err != nil || !bytes.Equal(got, doc) {
		log.Fatalf("rados data lost: %v", err)
	}
	for off, want := range blocks {
		buf := make([]byte, len(want))
		if _, err := im.ReadAt(buf, off); err != nil || !bytes.Equal(buf, want) {
			log.Fatalf("rbd block at %d lost: %v", off, err)
		}
	}
	vid, err := gw.GetObject("media", "clip.mp4")
	if err != nil || !bytes.Equal(vid, video) {
		log.Fatalf("rgw object lost: %v", err)
	}
	fmt.Println("rados, rbd, and rgw data verified bit-exact after recovery ✓")
}

// Autotune: the paper's proposed follow-up (§6) — use the framework's
// quantitative configuration-sensitivity measurements to tune an
// EC-based DSS automatically. Searches plugin x pg_num x stripe_unit x
// cache scheme and ranks configurations by recovery time, storage
// overhead, or both.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/tuner"
)

func main() {
	log.SetFlags(0)
	objective := flag.String("objective", "balanced", "min-recovery-time | min-write-amplification | balanced")
	greedy := flag.Bool("greedy", false, "coordinate descent instead of full grid")
	scale := flag.Int("scale", 50, "workload scale divisor")
	flag.Parse()

	var obj tuner.Objective
	switch *objective {
	case "min-recovery-time":
		obj = tuner.MinRecoveryTime
	case "min-write-amplification":
		obj = tuner.MinWriteAmplification
	case "balanced":
		obj = tuner.Balanced
	default:
		log.Fatalf("unknown objective %q", *objective)
	}

	base := core.DefaultProfile().ScaleWorkload(*scale)
	base.Cluster.Hosts = 20
	space := tuner.Space{
		Plugins: []tuner.PluginChoice{
			{Plugin: "jerasure_reed_sol_van", K: 9, M: 3},
			{Plugin: "clay", K: 9, M: 3, D: 11},
			{Plugin: "lrc", K: 9, M: 3, D: 3},
		},
		PGNums:       []int{16, 64, 256},
		StripeUnits:  []int64{64 << 10, 4 << 20},
		CacheSchemes: []string{core.SchemeAutotune, core.SchemeDataOptimized},
	}

	if *greedy {
		best, runs, err := tuner.GreedySearch(base, space, obj)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("greedy search (%s): %d evaluations\n", obj, runs)
		fmt.Printf("best: %s\n", best.Describe())
		fmt.Printf("  recovery %.1fs, WA %.3f\n", best.RecoveryTime.Seconds(), best.WA)
		return
	}

	ranked, err := tuner.GridSearch(base, space, obj)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid search (%s): %d candidates\n", obj, len(ranked))
	fmt.Println("rank  score   recovery      WA  configuration")
	for i, c := range ranked {
		if c.Err != nil {
			fmt.Printf("%4d      —          —       —  %s (failed: %v)\n", i+1, c.Describe(), c.Err)
			continue
		}
		fmt.Printf("%4d  %5.2f  %7.1fs  %6.3f  %s\n", i+1, c.Score, c.RecoveryTime.Seconds(), c.WA, c.Describe())
		if i >= 9 {
			fmt.Printf("      ... %d more\n", len(ranked)-10)
			break
		}
	}
}

// Scrub: silent-corruption injection and deep-scrub repair — the fault
// class CORDS studies, on top of this repository's erasure-coded cluster.
// Corrupted chunks return wrong bytes without any I/O error; only the
// deep scrub's checksum comparison finds them, and `pg repair` rebuilds
// them from the healthy shards.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/cluster"
)

func main() {
	log.SetFlags(0)

	cfg := cluster.DefaultConfig()
	cfg.Hosts = 10
	cfg.OSDsPerHost = 2
	cfg.DeviceCapacity = 2 << 30
	c, err := cluster.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := c.CreatePool(cluster.PoolConfig{
		Name: "pool", Plugin: "jerasure_reed_sol_van",
		K: 4, M: 2, PGNum: 16, StripeUnit: 64 << 10, FailureDomain: "host",
	}); err != nil {
		log.Fatal(err)
	}

	// Store objects with real payloads.
	rng := rand.New(rand.NewSource(1))
	contents := map[string][]byte{}
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("doc-%02d", i)
		data := make([]byte, 200_000)
		rng.Read(data)
		contents[name] = data
		if err := c.WriteObject("pool", name, data); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("stored %d objects on a %d-OSD cluster\n", len(contents), len(c.OSDs()))

	// Inject silent corruption: three shards across two objects.
	for _, target := range []struct {
		object string
		shard  int
	}{
		{"doc-04", 1}, {"doc-04", 5}, {"doc-11", 0},
	} {
		if err := c.CorruptChunk("pool", target.object, target.shard); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("corrupted %s shard %d (no I/O error raised)\n", target.object, target.shard)
	}

	// Deep scrub finds them.
	report, err := c.ScrubPool("pool")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deep scrub: %d chunks checked, %d inconsistent:\n", report.ChunksScrubbed, len(report.Inconsistent))
	for _, inc := range report.Inconsistent {
		fmt.Printf("  pg %d object %s shard %d on osd.%d\n", inc.PG, inc.Object, inc.Shard, inc.OSD)
	}

	// Repair from the healthy shards, then verify everything.
	repaired, err := c.RepairInconsistent("pool", report)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pg repair rewrote %d chunks\n", repaired)

	clean, err := c.ScrubPool("pool")
	if err != nil {
		log.Fatal(err)
	}
	if len(clean.Inconsistent) != 0 {
		log.Fatalf("still inconsistent after repair: %+v", clean.Inconsistent)
	}
	for name, want := range contents {
		got, err := c.ReadObject("pool", name)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			log.Fatalf("%s: wrong bytes after repair", name)
		}
	}
	fmt.Printf("re-scrub clean; all %d objects verified bit-exact ✓\n", len(contents))
}

// Fault injection: drives the ECFault Worker/NVMe-oF path directly — the
// §3.1/§3.2 machinery. It provisions virtual NVMe disks over TCP, writes
// real objects through the cluster, removes a subsystem with the worker
// (the nvmetcli-style device fault), and shows the system recovering the
// payload bit-exact.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
)

func main() {
	log.SetFlags(0)

	p := core.DefaultProfile()
	p.Name = "fault-injection-demo"
	p.Cluster.Hosts = 15
	p.Cluster.DeviceCapacityGB = 4
	p.Pool.K = 4
	p.Pool.M = 2
	p.Pool.PGNum = 16
	p.Pool.StripeUnit = 64 << 10
	p.Workload.Objects = 1 // workload driven manually below
	p.Workload.ObjectSize = 1 << 20
	p.Faults = nil

	co, err := core.NewCoordinator(p)
	if err != nil {
		log.Fatal(err)
	}
	defer co.Close()
	cl := co.Cluster()

	fmt.Printf("provisioned %d hosts; each OSD device exported via the NVMe-oF worker:\n", len(co.Workers()))
	shown := 0
	for host, w := range co.Workers() {
		if shown < 3 {
			fmt.Printf("  worker %s target at %s, %d namespaces\n", host, w.Addr(), len(w.Provisioned()))
			shown++
		}
	}

	// Create the pool and store real objects.
	if _, err := cl.CreatePool(co.PoolConfig()); err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	contents := map[string][]byte{}
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("object-%02d", i)
		data := make([]byte, 300_000+rng.Intn(200_000))
		rng.Read(data)
		contents[name] = data
		if err := cl.WriteObject(p.Pool.Name, name, data); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("wrote %d objects with real payloads\n", len(contents))

	// EC-aware fault planning: the injector picks a data-bearing device
	// and refuses plans beyond the code's fault tolerance.
	inj := core.NewFaultInjector(cl, p.Pool.Name)
	plan, err := inj.Plan(core.FaultSpec{Level: core.FaultLevelDevice, Count: 2, Locality: core.LocalityDiffHosts, AtSeconds: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault plan: device-level, OSDs %v (white-box guard passed)\n", plan.OSDs)

	// Apply the device fault through the worker's remote-storage control
	// path, then let the cluster detect and recover.
	for _, id := range plan.OSDs {
		host := cl.Crush().HostOf(id)
		if err := co.Workers()[host].FailDevice(id); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  removed NVMe subsystem of osd.%d on %s — device now errors\n", id, host)
	}
	inj.Inject(plan)
	res, err := cl.RecoverPool(p.Pool.Name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered %d chunks in %.1fs (checking %.1fs + EC %.1fs)\n",
		res.RepairedChunks, res.SystemRecoveryTime().Seconds(),
		res.CheckingPeriod().Seconds(), res.ECRecoveryPeriod().Seconds())

	// Verify every object against the original bytes; the failed OSDs are
	// still down, so reads exercise the recovered chunks.
	for name, want := range contents {
		got, err := cl.ReadObject(p.Pool.Name, name)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			log.Fatalf("%s: bytes differ after recovery", name)
		}
	}
	fmt.Printf("all %d objects verified bit-exact after recovery ✓\n", len(contents))
}

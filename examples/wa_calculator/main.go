// WA calculator: the paper's §4.4 write-amplification formula as a tool.
// Given (n, k), stripe_unit and object size it prints the theoretical n/k
// overhead, the division-and-padding lower bound, and — with -measure —
// the actual OSD-level usage measured on a simulated cluster.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/wamodel"
)

func main() {
	log.SetFlags(0)
	k := flag.Int("k", 9, "data chunks")
	m := flag.Int("m", 3, "parity chunks")
	unit := flag.Int64("stripe-unit", 4<<20, "stripe unit in bytes")
	objectSize := flag.Int64("object-size", 64<<20, "object size in bytes")
	measure := flag.Bool("measure", false, "also measure actual WA on a simulated cluster")
	flag.Parse()

	n := *k + *m
	chunk, err := wamodel.ChunkSize(*objectSize, *k, *unit)
	if err != nil {
		log.Fatal(err)
	}
	bound, err := wamodel.LowerBoundWA(*objectSize, n, *k, *unit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RS(%d,%d), stripe_unit=%d, object=%d bytes\n", n, *k, *unit, *objectSize)
	fmt.Printf("  S_chunk = S_unit * ceil(S_object/(k*S_unit)) = %d bytes\n", chunk)
	fmt.Printf("  theoretical WA (n/k)          = %.4f\n", wamodel.TheoreticalWA(n, *k))
	fmt.Printf("  formula lower bound (S_meta=0) = %.4f  (%+.1f%% vs n/k)\n",
		bound, 100*(bound/wamodel.TheoreticalWA(n, *k)-1))

	if !*measure {
		fmt.Println("  (run with -measure to compare against a simulated cluster)")
		return
	}

	p := core.DefaultProfile()
	p.Name = "wa-calculator"
	p.Pool.K = *k
	p.Pool.M = *m
	p.Pool.StripeUnit = *unit
	p.Workload.ObjectSize = *objectSize
	p.Workload.Objects = 100
	p.Faults = nil
	res, err := core.Run(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  measured actual WA factor      = %.4f  (%+.1f%% vs n/k)\n",
		res.WA.Measured, res.WA.DiffVsTheory*100)
	fmt.Printf("  gap vs formula bound           = %+.1f%%  (the S_meta term)\n",
		res.WA.DiffVsFormula*100)
	if res.WA.Measured+1e-9 < res.WA.FormulaBound {
		log.Fatal("BUG: measurement below the lower bound")
	}
	fmt.Println("  formula holds: measured >= bound ✓")
}

// Year in the life: a trace-driven fault campaign. Failures arrive per
// the statistical models the reliability literature reports (Poisson
// device failures at a 2%/year AFR, a share of whole-node events, latent
// corruption caught by scrubs), and the cluster rides through every round.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/faulttrace"
)

func main() {
	log.SetFlags(0)
	seed := flag.Int64("seed", 2024, "trace seed")
	days := flag.Float64("days", 365, "observation window")
	flag.Parse()

	m := faulttrace.Model{
		Devices:           60,
		DeviceAFR:         0.04, // pessimistic fleet
		NodeFailureShare:  0.25,
		CorruptionPerYear: 6,
		HorizonDays:       *days,
		Seed:              *seed,
	}
	events, err := faulttrace.Generate(m)
	if err != nil {
		log.Fatal(err)
	}
	sum := faulttrace.Summary(events)
	fmt.Printf("trace: %d events over %.0f days (device=%d node=%d corruption=%d)\n",
		len(events), *days, sum[core.FaultLevelDevice], sum[core.FaultLevelNode], sum[core.FaultLevelCorruption])
	for _, e := range events {
		fmt.Printf("  day %6.1f  %-10s count=%d\n", e.AtDays, e.Spec.Level, e.Spec.Count)
	}
	if len(events) == 0 {
		fmt.Println("a quiet year — rerun with another -seed")
		return
	}
	if len(events) > 6 {
		fmt.Printf("(running the first 6 rounds)\n")
		events = events[:6]
	}

	p := core.DefaultProfile().ScaleWorkload(50)
	res, err := core.RunSchedule(p, faulttrace.Schedule(events, 60))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncampaign results:")
	for _, r := range res.Rounds {
		if r.Recovery != nil {
			fmt.Printf("  round %d: %-10s -> recovered %4d chunks in %6.1fs (checking %4.1f%%)\n",
				r.Round, r.Fault.Level, r.Recovery.RepairedChunks,
				r.Recovery.SystemRecoveryTime().Seconds(), r.Recovery.CheckingFraction()*100)
		} else {
			fmt.Printf("  round %d: %-10s -> scrub repaired latent corruption\n", r.Round, r.Fault.Level)
		}
	}
	fmt.Printf("total chunks repaired: %d\n", res.TotalRepairedChunks)
	fmt.Printf("final state: %s\n", res.Health)
}

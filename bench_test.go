package repro

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus ablations for the design choices DESIGN.md
// calls out. Each benchmark runs the corresponding experiment end to end
// (cluster build, workload, fault injection, recovery) and reports the
// paper's normalized quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation. benchScale divides the 10,000-object
// workload; shapes are stable across scales (see EXPERIMENTS.md for the
// full-scale numbers).

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/erasure"
	"repro/internal/experiments"
	"repro/internal/workload"
)

const benchScale = 20

func reportCells(b *testing.B, fig *experiments.Figure) {
	b.Helper()
	for _, cell := range fig.Cells {
		for code, v := range cell.Values {
			b.ReportMetric(v, sanitize(cell.Config+"/"+code))
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case ' ', '(', ')', ',', '.':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// BenchmarkFig2aBackendCache regenerates Figure 2a: normalized recovery
// time under the three BlueStore cache schemes of Table 2.
func BenchmarkFig2aBackendCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig2aBackendCache(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		reportCells(b, fig)
	}
}

// BenchmarkFig2bPlacementGroups regenerates Figure 2b: pg_num in
// {1, 16, 256}.
func BenchmarkFig2bPlacementGroups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig2bPlacementGroups(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		reportCells(b, fig)
	}
}

// BenchmarkFig2cStripeUnit regenerates Figure 2c: stripe_unit in
// {4KB, 4MB, 64MB}.
func BenchmarkFig2cStripeUnit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig2cStripeUnit(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		reportCells(b, fig)
	}
}

// BenchmarkFig2dFailureMode regenerates Figure 2d: two and three
// concurrent OSD failures on the same or different hosts.
func BenchmarkFig2dFailureMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig2dFailureMode(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		reportCells(b, fig)
	}
}

// BenchmarkFig3RecoveryTimeline regenerates Figure 3 and the §4.3 sweep:
// the system checking period as a share of the recovery cycle.
func BenchmarkFig3RecoveryTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tl, err := experiments.Fig3Timeline(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tl.CheckingFraction*100, "checking_%")
		b.ReportMetric(tl.FractionRange[0]*100, "checking_min_%")
		b.ReportMetric(tl.FractionRange[1]*100, "checking_max_%")
		b.ReportMetric(tl.RecoveryStarted.Seconds(), "ec_start_s")
		b.ReportMetric(tl.RecoveryFinished.Seconds(), "ec_finish_s")
	}
}

// BenchmarkTable3WriteAmplification regenerates Table 3: theoretical vs
// actual WA of RS(12,9) and RS(15,12).
func BenchmarkTable3WriteAmplification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3WriteAmplification(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Report.Measured, sanitize(fmt.Sprintf("WA_RS_%d_%d", r.Report.N, r.Report.K)))
			b.ReportMetric(r.Report.DiffVsTheory*100, sanitize(fmt.Sprintf("diff_%%_RS_%d_%d", r.Report.N, r.Report.K)))
		}
	}
}

// BenchmarkWAFormulaValidation regenerates the §4.4 formula-validation
// sweep and reports the violation count (must be zero).
func BenchmarkWAFormulaValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.WAFormulaValidation(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		violations := 0
		maxGap := 0.0
		for _, r := range rows {
			if !r.Holds {
				violations++
			}
			if gap := r.Measured - r.Formula; gap > maxGap {
				maxGap = gap
			}
		}
		b.ReportMetric(float64(violations), "violations")
		b.ReportMetric(float64(len(rows)), "points")
		b.ReportMetric(maxGap, "max_S_meta_gap")
	}
}

// BenchmarkAblationClayRepairBandwidth verifies the design-note claim
// that Clay's single-failure repair moves (n-1)/q chunks of traffic
// against Reed-Solomon's k, and quantifies the discontiguous-read
// penalty the cluster model charges for it.
func BenchmarkAblationClayRepairBandwidth(b *testing.B) {
	rs, err := erasure.New("jerasure_reed_sol_van", 9, 3, 0)
	if err != nil {
		b.Fatal(err)
	}
	clay, err := erasure.New("clay", 9, 3, 11)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		rsPlan, err := rs.RepairPlan([]int{4})
		if err != nil {
			b.Fatal(err)
		}
		clayPlan, err := clay.RepairPlan([]int{4})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rsPlan.ReadFraction(), "rs_chunks_read")
		b.ReportMetric(clayPlan.ReadFraction(), "clay_chunks_read")
		runs := 0
		for _, h := range clayPlan.Helpers {
			runs += h.Runs
		}
		b.ReportMetric(float64(runs)/float64(len(clayPlan.Helpers)), "clay_runs_per_helper")
	}
}

// BenchmarkAblationCheckingPeriod shows why modeling the checking period
// matters (design decision 3): with the mark-out interval removed, the
// same configuration change looks far more significant than it is in a
// real deployment.
func BenchmarkAblationCheckingPeriod(b *testing.B) {
	run := func(markOutSeconds float64, pgs int) time.Duration {
		p := core.DefaultProfile().ScaleWorkload(benchScale)
		p.Name = fmt.Sprintf("ablation-checking-%v-%d", markOutSeconds, pgs)
		if markOutSeconds > 0 {
			p.Tuning.MarkOutIntervalSeconds = markOutSeconds
		} else {
			p.Tuning.MarkOutIntervalSeconds = 0.001
		}
		p.Pool.PGNum = pgs
		res, err := core.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		return res.Recovery.SystemRecoveryTime()
	}
	for i := 0; i < b.N; i++ {
		// Impact of pg_num 16 -> 256 with and without the checking period.
		with16 := run(600.0/benchScale, 16)
		with256 := run(600.0/benchScale, 256)
		wo16 := run(0, 16)
		wo256 := run(0, 256)
		b.ReportMetric(float64(with16)/float64(with256), "pg_speedup_with_checking")
		b.ReportMetric(float64(wo16)/float64(wo256), "pg_speedup_ec_only")
	}
}

// BenchmarkAblationReservations quantifies the osd_max_backfills
// reservation system (design decision: PG-serialized recovery).
func BenchmarkAblationReservations(b *testing.B) {
	run := func(backfills int) time.Duration {
		p := core.DefaultProfile().ScaleWorkload(benchScale)
		p.Name = fmt.Sprintf("ablation-backfills-%d", backfills)
		p.Tuning.MaxBackfills = backfills
		res, err := core.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		return res.Recovery.ECRecoveryPeriod()
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(1).Seconds(), "ec_s_backfills_1")
		b.ReportMetric(run(8).Seconds(), "ec_s_backfills_8")
	}
}

// BenchmarkAblationRecoveryThrottle quantifies the mclock-style recovery
// bandwidth share against an unthrottled run.
func BenchmarkAblationRecoveryThrottle(b *testing.B) {
	run := func(fraction float64) time.Duration {
		p := core.DefaultProfile().ScaleWorkload(benchScale)
		p.Name = fmt.Sprintf("ablation-throttle-%v", fraction)
		p.Tuning.RecoveryBWFraction = fraction
		res, err := core.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		return res.Recovery.ECRecoveryPeriod()
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(0.11).Seconds(), "ec_s_throttled")
		b.ReportMetric(run(1.0).Seconds(), "ec_s_unthrottled")
	}
}

// BenchmarkAblationClientLoad measures how foreground client traffic
// lengthens the EC recovery phase — the contention Ceph's mclock
// recovery reservation exists to bound.
func BenchmarkAblationClientLoad(b *testing.B) {
	run := func(ops float64) time.Duration {
		cfg := cluster.DefaultConfig()
		c, err := cluster.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.CreatePool(cluster.PoolConfig{
			Name: "p", Plugin: "jerasure_reed_sol_van", K: 9, M: 3,
			PGNum: 256, StripeUnit: 4 << 20, FailureDomain: "host",
		}); err != nil {
			b.Fatal(err)
		}
		objs, err := workload.Scaled(benchScale).Objects()
		if err != nil {
			b.Fatal(err)
		}
		if err := c.BulkLoad("p", objs); err != nil {
			b.Fatal(err)
		}
		host, err := c.HostWithMostChunks("p")
		if err != nil {
			b.Fatal(err)
		}
		c.FailHost(time.Second, host)
		var load *cluster.ClientLoad
		if ops > 0 {
			load, err = c.StartClientLoad("p", ops)
			if err != nil {
				b.Fatal(err)
			}
		}
		res, err := c.ScheduleRecovery("p")
		if err != nil {
			b.Fatal(err)
		}
		var watch func()
		watch = func() {
			if res.Done() {
				if load != nil {
					load.Stop()
				}
				return
			}
			c.Sim().After(5*time.Second, watch)
		}
		c.Sim().After(5*time.Second, watch)
		c.Sim().Run()
		return res.ECRecoveryPeriod()
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(0).Seconds(), "ec_s_idle")
		b.ReportMetric(run(40).Seconds(), "ec_s_40ops")
	}
}

// BenchmarkAblationDegradedReads measures client read latency healthy vs
// degraded (decode on the read path), RS vs Clay — the client-visible
// cost of running without the failed chunks repaired.
func BenchmarkAblationDegradedReads(b *testing.B) {
	measure := func(plugin string, d int) (healthy, degraded float64) {
		c, err := cluster.New(cluster.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		pool, err := c.CreatePool(cluster.PoolConfig{
			Name: "p", Plugin: plugin, K: 9, M: 3, D: d,
			PGNum: 32, StripeUnit: 4 << 20, FailureDomain: "host",
		})
		if err != nil {
			b.Fatal(err)
		}
		objs, err := workload.Spec{Count: 32, ObjectSize: 64 << 20, NamePrefix: "o"}.Objects()
		if err != nil {
			b.Fatal(err)
		}
		if err := c.BulkLoad("p", objs); err != nil {
			b.Fatal(err)
		}
		name := objs[0].Name
		h, err := c.ReadLatency("p", name)
		if err != nil {
			b.Fatal(err)
		}
		c.OSD(pool.PGOf(name).Acting[0]).MarkDown()
		dg, err := c.ReadLatency("p", name)
		if err != nil {
			b.Fatal(err)
		}
		return h.Seconds() * 1000, dg.Seconds() * 1000
	}
	for i := 0; i < b.N; i++ {
		rsH, rsD := measure("jerasure_reed_sol_van", 0)
		clayH, clayD := measure("clay", 11)
		b.ReportMetric(rsH, "rs_healthy_ms")
		b.ReportMetric(rsD, "rs_degraded_ms")
		b.ReportMetric(clayH, "clay_healthy_ms")
		b.ReportMetric(clayD, "clay_degraded_ms")
	}
}

// BenchmarkEndToEndExperiment measures the wall-clock cost of one full
// ECFault experiment cycle at the benchmark scale (coordination overhead
// of the framework itself).
func BenchmarkEndToEndExperiment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := core.DefaultProfile().ScaleWorkload(benchScale)
		p.Name = "bench-e2e"
		if _, err := core.Run(p); err != nil {
			b.Fatal(err)
		}
	}
}

// Package repro reproduces "Revisiting Erasure Codes: A Configuration
// Perspective" (HotStorage '24): the ECFault framework for studying the
// configuration sensitivity of erasure-coded distributed storage systems,
// together with every substrate it needs — Reed-Solomon and Clay codes
// over GF(2^8), a Ceph-like cluster simulator, an NVMe-oF-style remote
// storage layer, and a Kafka-like log pipeline.
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation; see DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
package repro

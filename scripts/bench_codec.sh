#!/usr/bin/env bash
# Batched-vs-per-plane A/B for the Clay multi-plane transforms
# (BenchmarkClayBatchAB in internal/erasure/conformance).
#
# Usage:
#   scripts/bench_codec.sh [-n benchtime] [-g] [-p]
#
# For each of the headline shapes (clay(9,3,11) encode and single repair
# at 4 KiB and 64 KiB shards) the same benchmark runs with the batched
# paths on ("batched") and forced off via ECFAULT_NOBATCH ("perplane"),
# and the ratio is printed as "speedup <op>/<size>: N.NNx". Large sizes
# sit near 1.0x by design: the per-plane path already amortizes kernel
# calls there and the size gates route to it.
#
# -p additionally runs the parallel-strided A/B: the repair sub-chunk
# sweep (BenchmarkKernelClayRepairSweep, 128 B – 8 KiB) once with the
# default kernel worker budget and once pinned serial via
# ECFAULT_KERNEL_WORKERS=1, printing per-size "parallel <scs>/<mode>:
# N.NNx" ratios. This is the measurement behind the BENCH_CODEC.json
# parallel_strided section; on a single-core host the ratio sits at
# ~1.0x by construction (the worker budget collapses to 1).
#
# -g enforces the CI ratio guard: the 4 KiB encode speedup (the
# configuration regime the batching exists for) must clear the 1.5x
# floor. The floor is calibrated on the GFNI tiers; hosts whose dispatch
# lands below gfni (no GFNI, or no AVX-512 + AVX2-only kernels) get a
# skip-with-notice instead of a hard failure so the harness stays usable
# on such runners and the arm64 cross-build job.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME=200x
GUARD=0
PARALLEL_AB=0
while getopts "n:gp" opt; do
  case "$opt" in
    n) BENCHTIME="$OPTARG" ;;
    g) GUARD=1 ;;
    p) PARALLEL_AB=1 ;;
    *) exit 2 ;;
  esac
done

# Report the dispatch tier and CPU features up front so recorded numbers
# are attributable to a kernel tier (BENCH_CODEC.json meta carries the
# same fields).
PROBE=$(go run ./cmd/ecbench -backends)
echo "$PROBE"
BACKEND=$(echo "$PROBE" | awk '$1 == "backend:" { print $2 }')

# One pass collects every sub-benchmark: "<op>/<size>/<mode> <ns>" lines.
run() {
  go test ./internal/erasure/conformance -run xxx \
    -bench 'BenchmarkClayBatchAB' -benchtime "$BENCHTIME" -count=1 2>/dev/null |
    awk '/^BenchmarkClayBatchAB\// {
      split($1, parts, "/")
      print parts[2] "/" parts[3], parts[4], $3
    }' | sed 's#-[0-9]* # #'
}

OUT=$(run)
echo "$OUT" | awk '{ printf "%-14s %-9s %12s ns/op\n", $1, $2, $3 }'

echo "$OUT" | awk '
  $2 == "batched"  { after[$1] = $3 }
  $2 == "perplane" { before[$1] = $3 }
  END {
    for (k in before)
      printf "speedup %s: %.2fx\n", k, before[k] / after[k]
  }' | sort

if [ "$PARALLEL_AB" = 1 ]; then
  echo "--- parallel strided A/B (default kernel workers vs ECFAULT_KERNEL_WORKERS=1) ---"
  # "<scs>/<mode> <ns>" lines from the sweep, one pass per worker setting.
  sweep() {
    go test ./internal/erasure/conformance -run xxx \
      -bench 'BenchmarkKernelClayRepairSweep' -benchtime "$BENCHTIME" -count=1 2>/dev/null |
      awk '/^BenchmarkKernelClayRepairSweep\// {
        split($1, parts, "/")
        print parts[2] "/" parts[3], $3
      }' | sed 's#-[0-9]* # #'
  }
  PAR=$(sweep)
  SER=$(ECFAULT_KERNEL_WORKERS=1 sweep)
  paste <(echo "$PAR") <(echo "$SER") | awk '
    $1 == $3 { printf "parallel %-18s %12s ns/op  serial %12s ns/op  %.2fx\n", $1, $2, $4, $4 / $2 }'
fi

if [ "$GUARD" = 1 ]; then
  case "$BACKEND" in
    gfni|gfni512) ;;
    *)
      echo "notice: active backend is '$BACKEND' (no AVX-512/GFNI on this host); skipping the 1.5x ratio guard" >&2
      exit 0
      ;;
  esac
  SPEEDUP=$(echo "$OUT" | awk '
    $1 == "encode/4KiB" && $2 == "batched"  { after = $3 }
    $1 == "encode/4KiB" && $2 == "perplane" { before = $3 }
    END { printf "%.2f", before / after }')
  awk -v s="$SPEEDUP" 'BEGIN { exit !(s >= 1.5) }' || {
    echo "clay 4KiB batched-encode speedup ${SPEEDUP}x fell below the 1.5x floor" >&2
    exit 1
  }
  echo "guard: clay 4KiB batched-encode speedup ${SPEEDUP}x >= 1.5x floor"
fi

#!/usr/bin/env bash
# Batched-vs-per-plane A/B for the Clay multi-plane transforms
# (BenchmarkClayBatchAB in internal/erasure/conformance).
#
# Usage:
#   scripts/bench_codec.sh [-n benchtime] [-g]
#
# For each of the headline shapes (clay(9,3,11) encode and single repair
# at 4 KiB and 64 KiB shards) the same benchmark runs with the batched
# paths on ("batched") and forced off via ECFAULT_NOBATCH ("perplane"),
# and the ratio is printed as "speedup <op>/<size>: N.NNx". Large sizes
# sit near 1.0x by design: the per-plane path already amortizes kernel
# calls there and the size gates route to it.
#
# -g enforces the CI ratio guard: the 4 KiB encode speedup (the
# configuration regime the batching exists for) must clear the 1.5x
# floor. The floor is calibrated on the GFNI tiers; hosts whose dispatch
# lands below gfni (no GFNI, or no AVX-512 + AVX2-only kernels) get a
# skip-with-notice instead of a hard failure so the harness stays usable
# on such runners and the arm64 cross-build job.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME=200x
GUARD=0
while getopts "n:g" opt; do
  case "$opt" in
    n) BENCHTIME="$OPTARG" ;;
    g) GUARD=1 ;;
    *) exit 2 ;;
  esac
done

# Report the dispatch tier and CPU features up front so recorded numbers
# are attributable to a kernel tier (BENCH_CODEC.json meta carries the
# same fields).
PROBE=$(go run ./cmd/ecbench -backends)
echo "$PROBE"
BACKEND=$(echo "$PROBE" | awk '$1 == "backend:" { print $2 }')

# One pass collects every sub-benchmark: "<op>/<size>/<mode> <ns>" lines.
run() {
  go test ./internal/erasure/conformance -run xxx \
    -bench 'BenchmarkClayBatchAB' -benchtime "$BENCHTIME" -count=1 2>/dev/null |
    awk '/^BenchmarkClayBatchAB\// {
      split($1, parts, "/")
      print parts[2] "/" parts[3], parts[4], $3
    }' | sed 's#-[0-9]* # #'
}

OUT=$(run)
echo "$OUT" | awk '{ printf "%-14s %-9s %12s ns/op\n", $1, $2, $3 }'

echo "$OUT" | awk '
  $2 == "batched"  { after[$1] = $3 }
  $2 == "perplane" { before[$1] = $3 }
  END {
    for (k in before)
      printf "speedup %s: %.2fx\n", k, before[k] / after[k]
  }' | sort

if [ "$GUARD" = 1 ]; then
  case "$BACKEND" in
    gfni|gfni512) ;;
    *)
      echo "notice: active backend is '$BACKEND' (no AVX-512/GFNI on this host); skipping the 1.5x ratio guard" >&2
      exit 0
      ;;
  esac
  SPEEDUP=$(echo "$OUT" | awk '
    $1 == "encode/4KiB" && $2 == "batched"  { after = $3 }
    $1 == "encode/4KiB" && $2 == "perplane" { before = $3 }
    END { printf "%.2f", before / after }')
  awk -v s="$SPEEDUP" 'BEGIN { exit !(s >= 1.5) }' || {
    echo "clay 4KiB batched-encode speedup ${SPEEDUP}x fell below the 1.5x floor" >&2
    exit 1
  }
  echo "guard: clay 4KiB batched-encode speedup ${SPEEDUP}x >= 1.5x floor"
fi

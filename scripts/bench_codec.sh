#!/usr/bin/env bash
# Batched-vs-per-plane A/B for the Clay multi-plane transforms
# (BenchmarkClayBatchAB in internal/erasure/conformance).
#
# Usage:
#   scripts/bench_codec.sh [-n benchtime]
#
# For each of the headline shapes (clay(9,3,11) encode and single repair
# at 4 KiB and 64 KiB shards) the same benchmark runs with the batched
# paths on ("batched") and forced off via ECFAULT_NOBATCH ("perplane"),
# and the ratio is printed as "speedup <op>/<size>: N.NNx". CI's
# bench-codec job parses those lines and enforces a floor on the 4 KiB
# encode ratio — the configuration regime the batching exists for. Large
# sizes sit near 1.0x by design: the per-plane path already amortizes
# kernel calls there and the size gates route to it.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME=200x
while getopts "n:" opt; do
  case "$opt" in
    n) BENCHTIME="$OPTARG" ;;
    *) exit 2 ;;
  esac
done

# One pass collects every sub-benchmark: "<op>/<size>/<mode> <ns>" lines.
run() {
  go test ./internal/erasure/conformance -run xxx \
    -bench 'BenchmarkClayBatchAB' -benchtime "$BENCHTIME" -count=1 2>/dev/null |
    awk '/^BenchmarkClayBatchAB\// {
      split($1, parts, "/")
      print parts[2] "/" parts[3], parts[4], $3
    }' | sed 's#-[0-9]* # #'
}

OUT=$(run)
echo "$OUT" | awk '{ printf "%-14s %-9s %12s ns/op\n", $1, $2, $3 }'

echo "$OUT" | awk '
  $2 == "batched"  { after[$1] = $3 }
  $2 == "perplane" { before[$1] = $3 }
  END {
    for (k in before)
      printf "speedup %s: %.2fx\n", k, before[k] / after[k]
  }' | sort

#!/usr/bin/env bash
# Repo-wide check: vet + build + tier-1 tests + race audit of the
# concurrent packages. Run from the repo root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test (tier 1) =="
go test ./...

echo "== go test -race (concurrent packages) =="
go test -race -count=1 \
    ./internal/erasure/... \
    ./internal/experiments \
    ./internal/core \
    ./internal/parallel \
    ./internal/tuner

echo "OK"

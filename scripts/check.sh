#!/usr/bin/env bash
# Repo-wide check: vet + build + tier-1 tests + race audit of the
# concurrent packages. Run from the repo root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test (tier 1) =="
go test ./...

echo "== go test -race (concurrent packages + kernels) =="
go test -race -count=1 \
    ./internal/gf256 \
    ./internal/erasure/... \
    ./internal/cluster \
    ./internal/experiments \
    ./internal/core \
    ./internal/parallel \
    ./internal/tuner

echo "== go test -race (parallel sim engine, ECFAULT_SIM_WORKERS=4) =="
ECFAULT_SIM_WORKERS=4 go test -race -count=1 \
    ./internal/simclock \
    ./internal/simnet \
    ./internal/core \
    ./internal/experiments

echo "== go build/test (purego: portable word kernels, no asm) =="
go build -tags purego ./...
go test -tags purego -count=1 ./internal/gf256 ./internal/erasure/...

echo "OK"

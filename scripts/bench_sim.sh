#!/usr/bin/env bash
# Before/after wall-clock comparison of the experiment campaign
# (BenchmarkSimEngine, the single-worker Figure-2 suite).
#
# Usage:
#   scripts/bench_sim.sh [-b bench-regex] [-n benchtime] [-g|-w]
#
# Default mode compares the snapshot layer on the current tree:
#   before = ECFAULT_NOSNAPSHOT=1 (every cell builds its cluster fresh)
#   after  = snapshot cache on (one populate per layout key, CoW forks)
#
# -g switches to the git-stash procedure used for cross-commit records
# (BENCH_SIM.json): uncommitted changes are stashed and HEAD is benched
# as "before", then the stash is restored and the working tree benched
# as "after". The working tree must be dirty, otherwise there is
# nothing to compare.
#
# -w compares the event engine serial vs time-partitioned parallel on
# the full-fidelity scale=1 suite:
#   before = ECFAULT_SIM_WORKERS=1 (serial Run)
#   after  = ECFAULT_SIM_WORKERS=$(nproc) (RunParallel, byte-identical)
# The parallel engine only wins on real cores: on a single-core host the
# mode prints a skip notice instead of a meaningless ratio. Its labels
# avoid the "speedup" prefix CI's bench-smoke gate parses.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH='BenchmarkSimEngine/fig2suite/scale=50$'
BENCHTIME=3x
STASH_MODE=0
SIMPAR_MODE=0
while getopts "b:n:gw" opt; do
  case "$opt" in
    b) BENCH="$OPTARG" ;;
    n) BENCHTIME="$OPTARG" ;;
    g) STASH_MODE=1 ;;
    w) SIMPAR_MODE=1 ;;
    *) exit 2 ;;
  esac
done

bench() { # bench <regex> <env...> -- runs the benchmark, prints ns/op
  local regex=$1
  shift
  env "$@" go test ./internal/experiments -run xxx -bench "$regex" \
    -benchtime "$BENCHTIME" -count=1 2>/dev/null |
    awk '/^Benchmark/ { print $3; exit }'
}

if [ "$SIMPAR_MODE" = 1 ]; then
  CORES=$(nproc)
  SIMBENCH='BenchmarkSimEngine/fig2suite/scale=1$'
  echo "== sim engine: serial (ECFAULT_SIM_WORKERS=1) =="
  SB=$(bench "$SIMBENCH" ECFAULT_SIM_WORKERS=1)
  echo "sim serial:   ${SB} ns/op"
  if [ "$CORES" -lt 2 ]; then
    echo "notice: single-core host (nproc=${CORES}); the parallel engine cannot win here — skipping the parallel leg"
    exit 0
  fi
  echo "== sim engine: parallel (ECFAULT_SIM_WORKERS=${CORES}) =="
  SP=$(bench "$SIMBENCH" ECFAULT_SIM_WORKERS="$CORES")
  echo "sim parallel: ${SP} ns/op"
  awk -v b="$SB" -v a="$SP" \
    'BEGIN { printf "sim engine ratio: %.2fx\n", b / a }'
  exit 0
fi

if [ "$STASH_MODE" = 1 ]; then
  if git diff --quiet && git diff --cached --quiet; then
    echo "bench_sim: working tree is clean; -g needs uncommitted changes to compare" >&2
    exit 1
  fi
  echo "== before: $(git rev-parse --short HEAD) (uncommitted changes stashed) =="
  git stash push --quiet --include-untracked -m bench_sim
  trap 'git stash pop --quiet' EXIT
  BEFORE=$(bench "$BENCH")
  git stash pop --quiet
  trap - EXIT
  echo "== after: working tree =="
  AFTER=$(bench "$BENCH")
else
  echo "== before: ECFAULT_NOSNAPSHOT=1 (fresh-build per cell) =="
  BEFORE=$(bench "$BENCH" ECFAULT_NOSNAPSHOT=1)
  echo "== after: snapshot layer on =="
  AFTER=$(bench "$BENCH")
fi

echo "before: ${BEFORE} ns/op"
echo "after:  ${AFTER} ns/op"
awk -v b="$BEFORE" -v a="$AFTER" \
  'BEGIN { printf "speedup: %.2fx\n", b / a }'

# Fork-setup A/B (default mode only): the same working tree benched with
# the shared code registry off (every fork rebuilds its erasure code and
# recompiles plans) versus on. One fork iteration is ~2 ms, so this
# section pins its own iteration count instead of inheriting -n (sized
# for the heavyweight campaign benchmark). Labels deliberately avoid the
# "speedup" prefix CI's bench-smoke gate parses.
if [ "$STASH_MODE" = 0 ]; then
  BENCHTIME=300x
  for plugin in jerasure_reed_sol_van clay; do
    regex="BenchmarkSnapshotFork/plugin=${plugin}\$"
    echo "== fork setup (${plugin}): before ECFAULT_NOCODECACHE=1, after registry on =="
    FB=$(bench "$regex" ECFAULT_NOCODECACHE=1)
    FA=$(bench "$regex")
    echo "fork before (${plugin}): ${FB} ns/op"
    echo "fork after  (${plugin}): ${FA} ns/op"
    awk -v b="$FB" -v a="$FA" \
      'BEGIN { printf "fork speedup: %.2fx\n", b / a }'
  done
fi

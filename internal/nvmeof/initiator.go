package nvmeof

import (
	"net"
	"sync"
)

// Client is the host-side initiator: a connection to one subsystem on a
// target, through which remote namespaces appear as local devices.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	nqn  string
}

// Connect dials a target and establishes an association with the given
// subsystem NQN.
func Connect(addr, nqn string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, nqn: nqn}
	if _, err := c.roundTrip(command{Opcode: OpConnect}, []byte(nqn)); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NQN returns the subsystem this client is associated with.
func (c *Client) NQN() string { return c.nqn }

// roundTrip sends one command and waits for its response. The protocol is
// synchronous per connection; the mutex serializes callers.
func (c *Client) roundTrip(cmd command, data []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.conn, marshalCommand(cmd, data)); err != nil {
		return nil, err
	}
	resp, err := readFrame(c.conn)
	if err != nil {
		return nil, err
	}
	if len(resp) < 1 {
		return nil, ErrInvalid
	}
	if err := statusToError(resp[0]); err != nil {
		return nil, err
	}
	return resp[1:], nil
}

// Identify lists the namespaces exported by the subsystem.
func (c *Client) Identify() ([]NamespaceInfo, error) {
	resp, err := c.roundTrip(command{Opcode: OpIdentify}, nil)
	if err != nil {
		return nil, err
	}
	return unmarshalIdentify(resp)
}

// Namespace returns a device handle for the given namespace id.
func (c *Client) Namespace(nsid uint32) *RemoteDevice {
	return &RemoteDevice{client: c, nsid: nsid}
}

// Close terminates the association.
func (c *Client) Close() error { return c.conn.Close() }

// RemoteDevice exposes a remote namespace with ReadAt/WriteAt semantics,
// so the storage backend cannot tell it from a local disk — the decoupling
// §3.1 relies on.
type RemoteDevice struct {
	client *Client
	nsid   uint32
}

// NSID returns the namespace id.
func (d *RemoteDevice) NSID() uint32 { return d.nsid }

// ReadAt reads len(p) bytes at off.
func (d *RemoteDevice) ReadAt(p []byte, off int64) (int, error) {
	resp, err := d.client.roundTrip(command{
		Opcode: OpRead, NSID: d.nsid, Offset: uint64(off), Length: uint32(len(p)),
	}, nil)
	if err != nil {
		return 0, err
	}
	if len(resp) != len(p) {
		return copy(p, resp), ErrIO
	}
	return copy(p, resp), nil
}

// WriteAt writes p at off.
func (d *RemoteDevice) WriteAt(p []byte, off int64) (int, error) {
	_, err := d.client.roundTrip(command{
		Opcode: OpWrite, NSID: d.nsid, Offset: uint64(off), Length: uint32(len(p)),
	}, p)
	if err != nil {
		return 0, err
	}
	return len(p), nil
}

// Flush issues a flush command.
func (d *RemoteDevice) Flush() error {
	_, err := d.client.roundTrip(command{Opcode: OpFlush, NSID: d.nsid}, nil)
	return err
}

// Trim discards the given range.
func (d *RemoteDevice) Trim(off, length int64) error {
	_, err := d.client.roundTrip(command{
		Opcode: OpTrim, NSID: d.nsid, Offset: uint64(off), Length: uint32(length),
	}, nil)
	return err
}

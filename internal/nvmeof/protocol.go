// Package nvmeof implements a miniature NVMe-over-Fabrics-style remote
// block protocol over TCP. It plays the role nvmetcli + NVMe-oF play in
// the paper (§3.1): decoupling DataNodes from their storage so ECFault can
// provision virtual disks and fail them at runtime by removing subsystems,
// without touching the storage system under test.
//
// The wire protocol is a simplified capsule exchange: length-prefixed
// frames carrying a fixed command header plus payload. It is not the real
// NVMe-oF binding, but it preserves the properties the methodology needs:
// remote namespaces addressed by (subsystem NQN, namespace id), runtime
// subsystem removal that severs live connections, and an identify command
// for discovery.
package nvmeof

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Opcodes.
const (
	OpConnect  = 0x01 // payload: NQN string
	OpIdentify = 0x02 // response payload: namespace table
	OpRead     = 0x10
	OpWrite    = 0x11
	OpFlush    = 0x12
	OpTrim     = 0x13
)

// Status codes.
const (
	StatusOK            = 0x00
	StatusInvalid       = 0x01
	StatusNoSubsystem   = 0x02
	StatusNoNamespace   = 0x03
	StatusIOError       = 0x04
	StatusNotConnected  = 0x05
	StatusDeviceRemoved = 0x06
)

// Protocol errors surfaced to initiators.
var (
	ErrNoSubsystem   = errors.New("nvmeof: no such subsystem")
	ErrNoNamespace   = errors.New("nvmeof: no such namespace")
	ErrIO            = errors.New("nvmeof: remote I/O error")
	ErrInvalid       = errors.New("nvmeof: invalid command")
	ErrNotConnected  = errors.New("nvmeof: association not established")
	ErrDeviceRemoved = errors.New("nvmeof: device removed")
)

func statusToError(status byte) error {
	switch status {
	case StatusOK:
		return nil
	case StatusNoSubsystem:
		return ErrNoSubsystem
	case StatusNoNamespace:
		return ErrNoNamespace
	case StatusIOError:
		return ErrIO
	case StatusNotConnected:
		return ErrNotConnected
	case StatusDeviceRemoved:
		return ErrDeviceRemoved
	default:
		return ErrInvalid
	}
}

// command is the fixed-size request header.
// Layout: opcode(1) | pad(1) | nsid(4) | offset(8) | length(4).
type command struct {
	Opcode byte
	NSID   uint32
	Offset uint64
	Length uint32
}

const headerSize = 1 + 1 + 4 + 8 + 4

// maxFrame bounds a frame to defend against corrupt lengths.
const maxFrame = 64 << 20

func writeFrame(w io.Writer, payload []byte) error {
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(payload)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > maxFrame {
		return nil, fmt.Errorf("nvmeof: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

func marshalCommand(cmd command, data []byte) []byte {
	buf := make([]byte, headerSize+len(data))
	buf[0] = cmd.Opcode
	binary.BigEndian.PutUint32(buf[2:6], cmd.NSID)
	binary.BigEndian.PutUint64(buf[6:14], cmd.Offset)
	binary.BigEndian.PutUint32(buf[14:18], cmd.Length)
	copy(buf[headerSize:], data)
	return buf
}

func unmarshalCommand(payload []byte) (command, []byte, error) {
	if len(payload) < headerSize {
		return command{}, nil, ErrInvalid
	}
	cmd := command{
		Opcode: payload[0],
		NSID:   binary.BigEndian.Uint32(payload[2:6]),
		Offset: binary.BigEndian.Uint64(payload[6:14]),
		Length: binary.BigEndian.Uint32(payload[14:18]),
	}
	return cmd, payload[headerSize:], nil
}

// NamespaceInfo describes one namespace in an identify response.
type NamespaceInfo struct {
	NSID      uint32
	Size      uint64
	BlockSize uint32
}

func marshalIdentify(infos []NamespaceInfo) []byte {
	buf := make([]byte, 4+16*len(infos))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(infos)))
	for i, ns := range infos {
		off := 4 + 16*i
		binary.BigEndian.PutUint32(buf[off:off+4], ns.NSID)
		binary.BigEndian.PutUint64(buf[off+4:off+12], ns.Size)
		binary.BigEndian.PutUint32(buf[off+12:off+16], ns.BlockSize)
	}
	return buf
}

func unmarshalIdentify(buf []byte) ([]NamespaceInfo, error) {
	if len(buf) < 4 {
		return nil, ErrInvalid
	}
	n := binary.BigEndian.Uint32(buf[0:4])
	if len(buf) != int(4+16*n) {
		return nil, ErrInvalid
	}
	infos := make([]NamespaceInfo, n)
	for i := range infos {
		off := 4 + 16*i
		infos[i] = NamespaceInfo{
			NSID:      binary.BigEndian.Uint32(buf[off : off+4]),
			Size:      binary.BigEndian.Uint64(buf[off+4 : off+12]),
			BlockSize: binary.BigEndian.Uint32(buf[off+12 : off+16]),
		}
	}
	return infos, nil
}

package nvmeof

import (
	"bytes"
	"errors"
	"math/rand"
	"net"
	"sync"
	"testing"

	"repro/internal/blockdev"
)

func newTargetWithNS(t *testing.T) (*Target, string) {
	t.Helper()
	tgt := NewTarget()
	if err := tgt.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tgt.Close() })
	if err := tgt.AddSubsystem("nqn.2024-07.repro:osd0"); err != nil {
		t.Fatal(err)
	}
	dev, err := blockdev.New("nvme0n1", 1<<20, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := tgt.AddNamespace("nqn.2024-07.repro:osd0", 1, dev); err != nil {
		t.Fatal(err)
	}
	return tgt, tgt.Addr()
}

func TestConnectAndIdentify(t *testing.T) {
	_, addr := newTargetWithNS(t)
	c, err := Connect(addr, "nqn.2024-07.repro:osd0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	infos, err := c.Identify()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].NSID != 1 || infos[0].Size != 1<<20 || infos[0].BlockSize != 4096 {
		t.Fatalf("identify: %+v", infos)
	}
}

func TestConnectUnknownSubsystem(t *testing.T) {
	_, addr := newTargetWithNS(t)
	if _, err := Connect(addr, "nqn.bogus"); !errors.Is(err, ErrNoSubsystem) {
		t.Fatalf("got %v", err)
	}
}

func TestRemoteReadWrite(t *testing.T) {
	_, addr := newTargetWithNS(t)
	c, err := Connect(addr, "nqn.2024-07.repro:osd0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	dev := c.Namespace(1)
	data := make([]byte, 20000)
	rand.New(rand.NewSource(7)).Read(data)
	if _, err := dev.WriteAt(data, 5000); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := dev.ReadAt(got, 5000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("remote round trip mismatch")
	}
	if err := dev.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteTrim(t *testing.T) {
	_, addr := newTargetWithNS(t)
	c, _ := Connect(addr, "nqn.2024-07.repro:osd0")
	defer c.Close()
	dev := c.Namespace(1)
	if _, err := dev.WriteAt(make([]byte, 8192), 0); err != nil {
		t.Fatal(err)
	}
	if err := dev.Trim(0, 8192); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownNamespace(t *testing.T) {
	_, addr := newTargetWithNS(t)
	c, _ := Connect(addr, "nqn.2024-07.repro:osd0")
	defer c.Close()
	dev := c.Namespace(99)
	if _, err := dev.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrNoNamespace) {
		t.Fatalf("got %v", err)
	}
}

func TestOutOfRangeIO(t *testing.T) {
	_, addr := newTargetWithNS(t)
	c, _ := Connect(addr, "nqn.2024-07.repro:osd0")
	defer c.Close()
	dev := c.Namespace(1)
	if _, err := dev.WriteAt(make([]byte, 10), 1<<20); !errors.Is(err, ErrIO) {
		t.Fatalf("got %v", err)
	}
}

// TestRemoveSubsystemSeversConnection is the core fault-injection path:
// removing the subsystem must make in-flight associations fail, exactly
// like pulling an NVMe-oF device with nvmetcli.
func TestRemoveSubsystemSeversConnection(t *testing.T) {
	tgt, addr := newTargetWithNS(t)
	c, err := Connect(addr, "nqn.2024-07.repro:osd0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	dev := c.Namespace(1)
	if _, err := dev.WriteAt([]byte{1, 2, 3}, 0); err != nil {
		t.Fatal(err)
	}
	if err := tgt.RemoveSubsystem("nqn.2024-07.repro:osd0"); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.ReadAt(make([]byte, 3), 0); err == nil {
		t.Fatal("I/O after subsystem removal should fail")
	}
	// Reconnecting must also fail.
	if _, err := Connect(addr, "nqn.2024-07.repro:osd0"); err == nil {
		t.Fatal("reconnect to removed subsystem should fail")
	}
}

func TestRemoveUnknownSubsystem(t *testing.T) {
	tgt, _ := newTargetWithNS(t)
	if err := tgt.RemoveSubsystem("nope"); !errors.Is(err, ErrNoSubsystem) {
		t.Fatalf("got %v", err)
	}
}

func TestDuplicateSubsystemAndNamespace(t *testing.T) {
	tgt, _ := newTargetWithNS(t)
	if err := tgt.AddSubsystem("nqn.2024-07.repro:osd0"); err == nil {
		t.Fatal("duplicate subsystem accepted")
	}
	dev, _ := blockdev.New("d", 4096, 4096)
	if err := tgt.AddNamespace("nqn.2024-07.repro:osd0", 1, dev); err == nil {
		t.Fatal("duplicate namespace accepted")
	}
	if err := tgt.AddNamespace("nope", 2, dev); !errors.Is(err, ErrNoSubsystem) {
		t.Fatalf("got %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	tgt, addr := newTargetWithNS(t)
	_ = tgt
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Connect(addr, "nqn.2024-07.repro:osd0")
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			dev := c.Namespace(1)
			buf := []byte{byte(g)}
			for i := 0; i < 50; i++ {
				if _, err := dev.WriteAt(buf, int64(g*4096)); err != nil {
					t.Error(err)
					return
				}
				got := make([]byte, 1)
				if _, err := dev.ReadAt(got, int64(g*4096)); err != nil {
					t.Error(err)
					return
				}
				if got[0] != byte(g) {
					t.Errorf("client %d read %d", g, got[0])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestMultipleNamespaces(t *testing.T) {
	tgt := NewTarget()
	if err := tgt.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer tgt.Close()
	_ = tgt.AddSubsystem("ss")
	for nsid := uint32(1); nsid <= 3; nsid++ {
		dev, _ := blockdev.New("d", int64(nsid)*4096, 4096)
		if err := tgt.AddNamespace("ss", nsid, dev); err != nil {
			t.Fatal(err)
		}
	}
	c, err := Connect(tgt.Addr(), "ss")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	infos, err := c.Identify()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("got %d namespaces", len(infos))
	}
	for i, ns := range infos {
		if ns.NSID != uint32(i+1) {
			t.Fatal("identify not sorted by nsid")
		}
		if ns.Size != uint64(i+1)*4096 {
			t.Fatal("wrong size")
		}
	}
}

func TestTargetClose(t *testing.T) {
	tgt, addr := newTargetWithNS(t)
	c, err := Connect(addr, "nqn.2024-07.repro:osd0")
	if err != nil {
		t.Fatal(err)
	}
	if err := tgt.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Namespace(1).ReadAt(make([]byte, 1), 0); err == nil {
		t.Fatal("I/O after target close should fail")
	}
	// Close is idempotent.
	if err := tgt.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolMarshalRoundTrip(t *testing.T) {
	cmd := command{Opcode: OpWrite, NSID: 7, Offset: 1 << 40, Length: 1234}
	data := []byte("hello")
	buf := marshalCommand(cmd, data)
	got, payload, err := unmarshalCommand(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != cmd || !bytes.Equal(payload, data) {
		t.Fatalf("round trip: %+v %q", got, payload)
	}
}

func TestFrameLimit(t *testing.T) {
	var buf bytes.Buffer
	// A frame header claiming more than maxFrame must be rejected.
	_ = writeFrame(&buf, []byte("ok"))
	if _, err := readFrame(&buf); err != nil {
		t.Fatal(err)
	}
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := readFrame(bytes.NewReader(huge)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestShortCommandRejected(t *testing.T) {
	if _, _, err := unmarshalCommand([]byte{1, 2, 3}); err == nil {
		t.Fatal("short command accepted")
	}
}

func TestIOBeforeConnectRejected(t *testing.T) {
	tgt, addr := newTargetWithNS(t)
	_ = tgt
	// Speak the raw protocol: send a read without OpConnect first.
	conn, err := dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	cmd := marshalCommand(command{Opcode: OpRead, NSID: 1, Length: 8}, nil)
	if err := writeFrame(conn, cmd); err != nil {
		t.Fatal(err)
	}
	resp, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) == 0 || resp[0] != StatusNotConnected {
		t.Fatalf("status = %v, want StatusNotConnected", resp[:1])
	}
}

func TestUnknownOpcodeRejected(t *testing.T) {
	_, addr := newTargetWithNS(t)
	c, err := Connect(addr, "nqn.2024-07.repro:osd0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.roundTrip(command{Opcode: 0x77, NSID: 1}, nil); err == nil {
		t.Fatal("unknown opcode accepted")
	}
}

func TestStatusToErrorMapping(t *testing.T) {
	cases := map[byte]error{
		StatusOK:            nil,
		StatusNoSubsystem:   ErrNoSubsystem,
		StatusNoNamespace:   ErrNoNamespace,
		StatusIOError:       ErrIO,
		StatusNotConnected:  ErrNotConnected,
		StatusDeviceRemoved: ErrDeviceRemoved,
		0x7F:                ErrInvalid,
	}
	for status, want := range cases {
		if got := statusToError(status); !errors.Is(got, want) {
			t.Errorf("status %#x: got %v want %v", status, got, want)
		}
	}
}

func TestIdentifyMarshalRoundTrip(t *testing.T) {
	infos := []NamespaceInfo{{1, 100, 512}, {9, 1 << 30, 4096}}
	got, err := unmarshalIdentify(marshalIdentify(infos))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != infos[0] || got[1] != infos[1] {
		t.Fatalf("round trip: %+v", got)
	}
	if _, err := unmarshalIdentify([]byte{1, 2}); err == nil {
		t.Fatal("short identify accepted")
	}
}

// dial opens a raw protocol connection for edge-case tests.
func dial(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }

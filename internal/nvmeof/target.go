package nvmeof

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/blockdev"
)

// Target is the storage-side endpoint: it exports subsystems, each holding
// namespaces backed by virtual block devices. It mirrors the role of the
// kernel NVMe target configured with nvmetcli on each DataNode.
type Target struct {
	mu         sync.Mutex
	ln         net.Listener
	subsystems map[string]*subsystem
	conns      map[net.Conn]string // live associations, by NQN
	closed     bool
	wg         sync.WaitGroup
}

type subsystem struct {
	nqn        string
	namespaces map[uint32]*blockdev.Device
}

// NewTarget creates an empty target.
func NewTarget() *Target {
	return &Target{
		subsystems: map[string]*subsystem{},
		conns:      map[net.Conn]string{},
	}
}

// Listen starts serving on addr (e.g. "127.0.0.1:0").
func (t *Target) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	t.mu.Lock()
	t.ln = ln
	t.mu.Unlock()
	t.wg.Add(1)
	go t.acceptLoop(ln)
	return nil
}

// Addr returns the listen address, or "" before Listen.
func (t *Target) Addr() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

func (t *Target) acceptLoop(ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.serve(conn)
		}()
	}
}

// AddSubsystem creates a subsystem with the given NQN.
func (t *Target) AddSubsystem(nqn string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.subsystems[nqn]; dup {
		return fmt.Errorf("nvmeof: subsystem %q exists", nqn)
	}
	t.subsystems[nqn] = &subsystem{nqn: nqn, namespaces: map[uint32]*blockdev.Device{}}
	return nil
}

// AddNamespace attaches a device to a subsystem as the given namespace id.
func (t *Target) AddNamespace(nqn string, nsid uint32, dev *blockdev.Device) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	ss, ok := t.subsystems[nqn]
	if !ok {
		return ErrNoSubsystem
	}
	if _, dup := ss.namespaces[nsid]; dup {
		return fmt.Errorf("nvmeof: namespace %d exists in %q", nsid, nqn)
	}
	ss.namespaces[nsid] = dev
	return nil
}

// RemoveSubsystem deletes a subsystem and severs every live association
// with it — the device-level fault injection primitive of §3.2. The
// backing devices are marked removed.
func (t *Target) RemoveSubsystem(nqn string) error {
	t.mu.Lock()
	ss, ok := t.subsystems[nqn]
	if !ok {
		t.mu.Unlock()
		return ErrNoSubsystem
	}
	delete(t.subsystems, nqn)
	var toClose []net.Conn
	for conn, connNQN := range t.conns {
		if connNQN == nqn {
			toClose = append(toClose, conn)
			delete(t.conns, conn)
		}
	}
	t.mu.Unlock()
	for _, dev := range ss.namespaces {
		dev.Remove()
	}
	for _, conn := range toClose {
		conn.Close()
	}
	return nil
}

// Subsystems lists the NQNs currently exported.
func (t *Target) Subsystems() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.subsystems))
	for nqn := range t.subsystems {
		out = append(out, nqn)
	}
	return out
}

// Close shuts the target down, closing the listener and every connection.
func (t *Target) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	ln := t.ln
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	t.conns = map[net.Conn]string{}
	t.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	t.wg.Wait()
	return nil
}

func (t *Target) serve(conn net.Conn) {
	defer func() {
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
		conn.Close()
	}()
	var nqn string // established by OpConnect
	for {
		payload, err := readFrame(conn)
		if err != nil {
			return
		}
		cmd, data, err := unmarshalCommand(payload)
		if err != nil {
			t.respond(conn, StatusInvalid, nil)
			continue
		}
		if cmd.Opcode == OpConnect {
			want := string(data)
			t.mu.Lock()
			_, ok := t.subsystems[want]
			if ok {
				nqn = want
				t.conns[conn] = nqn
			}
			t.mu.Unlock()
			if !ok {
				t.respond(conn, StatusNoSubsystem, nil)
				return
			}
			t.respond(conn, StatusOK, nil)
			continue
		}
		if nqn == "" {
			t.respond(conn, StatusNotConnected, nil)
			continue
		}
		t.handleIO(conn, nqn, cmd, data)
	}
}

func (t *Target) handleIO(conn net.Conn, nqn string, cmd command, data []byte) {
	t.mu.Lock()
	ss, ok := t.subsystems[nqn]
	t.mu.Unlock()
	if !ok {
		t.respond(conn, StatusNoSubsystem, nil)
		return
	}
	if cmd.Opcode == OpIdentify {
		t.mu.Lock()
		infos := make([]NamespaceInfo, 0, len(ss.namespaces))
		for nsid, dev := range ss.namespaces {
			infos = append(infos, NamespaceInfo{NSID: nsid, Size: uint64(dev.Capacity()), BlockSize: uint32(dev.BlockSize())})
		}
		t.mu.Unlock()
		sortNamespaces(infos)
		t.respond(conn, StatusOK, marshalIdentify(infos))
		return
	}
	t.mu.Lock()
	dev, ok := ss.namespaces[cmd.NSID]
	t.mu.Unlock()
	if !ok {
		t.respond(conn, StatusNoNamespace, nil)
		return
	}
	switch cmd.Opcode {
	case OpRead:
		buf := make([]byte, cmd.Length)
		if _, err := dev.ReadAt(buf, int64(cmd.Offset)); err != nil {
			t.respond(conn, ioStatus(err), nil)
			return
		}
		t.respond(conn, StatusOK, buf)
	case OpWrite:
		if _, err := dev.WriteAt(data, int64(cmd.Offset)); err != nil {
			t.respond(conn, ioStatus(err), nil)
			return
		}
		t.respond(conn, StatusOK, nil)
	case OpFlush:
		t.respond(conn, StatusOK, nil)
	case OpTrim:
		if err := dev.Trim(int64(cmd.Offset), int64(cmd.Length)); err != nil {
			t.respond(conn, ioStatus(err), nil)
			return
		}
		t.respond(conn, StatusOK, nil)
	default:
		t.respond(conn, StatusInvalid, nil)
	}
}

func ioStatus(err error) byte {
	if errors.Is(err, blockdev.ErrRemoved) {
		return StatusDeviceRemoved
	}
	return StatusIOError
}

func (t *Target) respond(conn net.Conn, status byte, data []byte) {
	payload := make([]byte, 1+len(data))
	payload[0] = status
	copy(payload[1:], data)
	_ = writeFrame(conn, payload)
}

func sortNamespaces(infos []NamespaceInfo) {
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && infos[j-1].NSID > infos[j].NSID; j-- {
			infos[j-1], infos[j] = infos[j], infos[j-1]
		}
	}
}

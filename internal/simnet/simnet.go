// Package simnet models the cluster network: hosts with full-duplex NICs
// of finite bandwidth, connected through a non-blocking core (a reasonable
// model for the 25 Gb/s AWS fabric in the paper). Transfers contend for
// the sender's egress and the receiver's ingress; intra-host traffic
// bypasses the NIC.
package simnet

import (
	"fmt"
	"time"

	"repro/internal/simclock"
)

// Network is the fabric connecting hosts.
type Network struct {
	sim       *simclock.Sim
	bandwidth float64 // NIC bandwidth in bytes/sec, full duplex
	latency   simclock.Time
	hosts     map[string]*hostNIC

	freeTransfers *transfer // pooled in-flight transfer state

	// BytesMoved accumulates all inter-host payload bytes, for
	// repair-traffic accounting.
	BytesMoved int64
}

type hostNIC struct {
	egress  *simclock.Queue
	ingress *simclock.Queue
}

// Config parameterizes the network.
type Config struct {
	BandwidthBytesPerSec float64       // per-NIC, each direction
	Latency              simclock.Time // propagation + stack latency per transfer
}

// DefaultConfig models an m5.xlarge-class NIC: 1.25 Gb/s sustained
// baseline (the instances burst to 10 Gb/s, but sustained recovery
// traffic sees the baseline), 200us latency.
func DefaultConfig() Config {
	return Config{BandwidthBytesPerSec: 1.25e9 / 8, Latency: 200 * time.Microsecond}
}

// New creates a network on the given simulator.
func New(sim *simclock.Sim, cfg Config) *Network {
	if cfg.BandwidthBytesPerSec <= 0 {
		panic("simnet: bandwidth must be positive")
	}
	return &Network{
		sim:       sim,
		bandwidth: cfg.BandwidthBytesPerSec,
		latency:   cfg.Latency,
		hosts:     map[string]*hostNIC{},
	}
}

// AddHost registers a host NIC. Duplicate names are rejected.
func (n *Network) AddHost(name string) error {
	if _, ok := n.hosts[name]; ok {
		return fmt.Errorf("simnet: duplicate host %q", name)
	}
	n.hosts[name] = &hostNIC{
		egress:  n.sim.NewQueue(1),
		ingress: n.sim.NewQueue(1),
	}
	return nil
}

// serviceTime converts a payload size to wire time at NIC speed.
func (n *Network) serviceTime(bytes int64) simclock.Time {
	sec := float64(bytes) / n.bandwidth
	return simclock.Time(sec * float64(time.Second))
}

// transfer is the pooled in-flight state of one inter-host transfer: it
// rides the egress and ingress completion events as their fixed argument,
// so a transfer allocates nothing once the freelist warms up.
type transfer struct {
	n    *Network
	dst  *hostNIC
	wire simclock.Time
	fn   func(any)
	arg  any
	next *transfer
}

func (n *Network) newTransfer() *transfer {
	if t := n.freeTransfers; t != nil {
		n.freeTransfers = t.next
		t.next = nil
		return t
	}
	return &transfer{}
}

func (n *Network) freeTransfer(t *transfer) {
	*t = transfer{next: n.freeTransfers}
	n.freeTransfers = t
}

func egressDone(a any) {
	t := a.(*transfer)
	t.dst.ingress.SubmitArg(t.wire, ingressDone, t)
}

func ingressDone(a any) {
	t := a.(*transfer)
	n, fn, arg := t.n, t.fn, t.arg
	n.freeTransfer(t)
	n.sim.AfterArg(n.latency, fn, arg)
}

func noop(any) {}

// Transfer moves bytes from one host to another, invoking done when the
// payload has fully arrived. Intra-host transfers skip the NIC and incur
// only loopback latency.
func (n *Network) Transfer(from, to string, bytes int64, done func()) {
	if done == nil {
		n.TransferArg(from, to, bytes, nil, nil)
		return
	}
	n.TransferArg(from, to, bytes, callThunk, done)
}

func callThunk(a any) { a.(func())() }

// TransferArg is the allocation-free form of Transfer: fn(arg) fires when
// the payload has fully arrived (fn may be nil).
func (n *Network) TransferArg(from, to string, bytes int64, fn func(any), arg any) {
	if bytes < 0 {
		panic("simnet: negative transfer")
	}
	if fn == nil {
		fn = noop
	}
	if from == to {
		n.sim.AfterArg(n.latency/4, fn, arg)
		return
	}
	src, ok := n.hosts[from]
	if !ok {
		panic("simnet: unknown source host " + from)
	}
	dst, ok := n.hosts[to]
	if !ok {
		panic("simnet: unknown destination host " + to)
	}
	n.BytesMoved += bytes
	wire := n.serviceTime(bytes)
	t := n.newTransfer()
	t.n, t.dst, t.wire, t.fn, t.arg = n, dst, wire, fn, arg
	// Store-and-forward through sender egress then receiver ingress: both
	// NICs are occupied for the payload's wire time, so concurrent flows
	// sharing either end contend there.
	src.egress.SubmitArg(wire, egressDone, t)
}

// Lookahead returns the minimum scheduling delay any network delivery
// incurs: the intra-host loopback latency (latency/4), the smallest
// increment Transfer ever schedules at. It is the conservative-PDES
// lookahead bound the cluster hands to simclock.RunParallel — no
// transfer completion can land closer to the present than this, so it
// is the natural base window for staging future events.
func (n *Network) Lookahead() simclock.Time {
	return n.latency / 4
}

// HostUtilization returns cumulative egress and ingress busy time for a
// host, used by the breakdown analysis.
func (n *Network) HostUtilization(host string) (egress, ingress simclock.Time) {
	h, ok := n.hosts[host]
	if !ok {
		return 0, 0
	}
	return h.egress.BusyTime, h.ingress.BusyTime
}

// QueueDepth reports in-flight plus waiting transfers on a host's NIC
// queues.
func (n *Network) QueueDepth(host string) int {
	h, ok := n.hosts[host]
	if !ok {
		return 0
	}
	return h.egress.InFlight() + h.egress.QueueLen() + h.ingress.InFlight() + h.ingress.QueueLen()
}

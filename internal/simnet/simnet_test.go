package simnet

import (
	"testing"
	"time"

	"repro/internal/simclock"
)

func newNet(t *testing.T, hosts ...string) (*simclock.Sim, *Network) {
	t.Helper()
	sim := simclock.New()
	// 1 MB/s and zero latency make arithmetic exact in tests.
	net := New(sim, Config{BandwidthBytesPerSec: 1e6, Latency: 0})
	for _, h := range hosts {
		if err := net.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	return sim, net
}

func TestTransferTime(t *testing.T) {
	sim, net := newNet(t, "a", "b")
	var done simclock.Time
	net.Transfer("a", "b", 1_000_000, func() { done = sim.Now() })
	sim.Run()
	// 1 MB at 1 MB/s through two store-and-forward hops = 2s.
	if done != 2*time.Second {
		t.Fatalf("done = %v", done)
	}
}

func TestEgressContention(t *testing.T) {
	sim, net := newNet(t, "a", "b", "c")
	var times []simclock.Time
	net.Transfer("a", "b", 1_000_000, func() { times = append(times, sim.Now()) })
	net.Transfer("a", "c", 1_000_000, func() { times = append(times, sim.Now()) })
	sim.Run()
	// Both share a's egress: second flow finishes 1s after the first.
	if times[0] != 2*time.Second || times[1] != 3*time.Second {
		t.Fatalf("times = %v", times)
	}
}

func TestIngressContention(t *testing.T) {
	sim, net := newNet(t, "a", "b", "c")
	var times []simclock.Time
	net.Transfer("a", "c", 1_000_000, func() { times = append(times, sim.Now()) })
	net.Transfer("b", "c", 1_000_000, func() { times = append(times, sim.Now()) })
	sim.Run()
	// Egress is parallel (different hosts) but c's ingress serializes.
	if times[0] != 2*time.Second || times[1] != 3*time.Second {
		t.Fatalf("times = %v", times)
	}
}

func TestIntraHostBypassesNIC(t *testing.T) {
	sim := simclock.New()
	net := New(sim, Config{BandwidthBytesPerSec: 1e6, Latency: 400 * time.Microsecond})
	if err := net.AddHost("a"); err != nil {
		t.Fatal(err)
	}
	var done simclock.Time
	net.Transfer("a", "a", 1_000_000_000, func() { done = sim.Now() })
	sim.Run()
	if done != 100*time.Microsecond { // latency/4, no bandwidth charge
		t.Fatalf("done = %v", done)
	}
	eg, in := net.HostUtilization("a")
	if eg != 0 || in != 0 {
		t.Fatal("intra-host transfer must not occupy the NIC")
	}
	if net.BytesMoved != 0 {
		t.Fatal("intra-host transfer must not count as moved bytes")
	}
}

func TestBytesMovedAccounting(t *testing.T) {
	sim, net := newNet(t, "a", "b")
	net.Transfer("a", "b", 123, nil)
	net.Transfer("b", "a", 77, nil)
	sim.Run()
	if net.BytesMoved != 200 {
		t.Fatalf("BytesMoved = %d", net.BytesMoved)
	}
}

func TestDuplicateHostRejected(t *testing.T) {
	_, net := newNet(t, "a")
	if err := net.AddHost("a"); err == nil {
		t.Fatal("duplicate host accepted")
	}
}

func TestUnknownHostPanics(t *testing.T) {
	_, net := newNet(t, "a")
	defer func() {
		if recover() == nil {
			t.Fatal("unknown host did not panic")
		}
	}()
	net.Transfer("a", "nope", 1, nil)
}

func TestLatencyApplied(t *testing.T) {
	sim := simclock.New()
	net := New(sim, Config{BandwidthBytesPerSec: 1e6, Latency: time.Millisecond})
	_ = net.AddHost("a")
	_ = net.AddHost("b")
	var done simclock.Time
	net.Transfer("a", "b", 1_000_000, func() { done = sim.Now() })
	sim.Run()
	if done != 2*time.Second+time.Millisecond {
		t.Fatalf("done = %v", done)
	}
}

func TestHostUtilization(t *testing.T) {
	sim, net := newNet(t, "a", "b")
	net.Transfer("a", "b", 500_000, nil)
	sim.Run()
	eg, _ := net.HostUtilization("a")
	_, in := net.HostUtilization("b")
	if eg != 500*time.Millisecond || in != 500*time.Millisecond {
		t.Fatalf("eg=%v in=%v", eg, in)
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.BandwidthBytesPerSec <= 0 || cfg.Latency <= 0 {
		t.Fatalf("default config: %+v", cfg)
	}
}

func TestQueueDepthAndUnknownHostStats(t *testing.T) {
	sim, net := newNet(t, "a", "b")
	if net.QueueDepth("a") != 0 {
		t.Fatal("idle depth nonzero")
	}
	net.Transfer("a", "b", 5_000_000, nil)
	net.Transfer("a", "b", 5_000_000, nil)
	// Before running: both transfers occupy/queue on a's egress.
	if net.QueueDepth("a") != 2 {
		t.Fatalf("depth = %d", net.QueueDepth("a"))
	}
	sim.Run()
	if net.QueueDepth("a") != 0 {
		t.Fatal("depth after drain")
	}
	if eg, in := net.HostUtilization("ghost"); eg != 0 || in != 0 {
		t.Fatal("unknown host should report zero")
	}
	if net.QueueDepth("ghost") != 0 {
		t.Fatal("unknown host depth")
	}
}

func TestZeroBandwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(simclock.New(), Config{})
}

func TestNegativeTransferPanics(t *testing.T) {
	_, net := newNet(t, "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	net.Transfer("a", "b", -1, nil)
}

// Package faulttrace generates multi-round fault schedules from the
// statistical failure models reported in the storage-reliability
// literature the paper's methodology cites (§3.2): device failures as a
// Poisson process driven by an annualized failure rate, a share of
// whole-node failures, and a background rate of latent silent corruption.
// The output plugs directly into core.RunSchedule.
package faulttrace

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
)

// Model parameterizes the failure process.
type Model struct {
	// Devices is the fleet size (OSD count).
	Devices int
	// DeviceAFR is the annualized failure rate per device (e.g. 0.02).
	DeviceAFR float64
	// NodeFailureShare is the fraction of failure events that take a
	// whole node instead of one device (correlated failures: PSU, kernel,
	// top-of-rack).
	NodeFailureShare float64
	// CorruptionPerYear is the expected number of latent-corruption
	// events per year across the fleet; each corrupts a handful of
	// chunks and is caught by scrubbing.
	CorruptionPerYear float64
	// HorizonDays is the simulated observation window.
	HorizonDays float64
	// Seed makes the trace reproducible.
	Seed int64
}

// Validate checks the model.
func (m Model) Validate() error {
	if m.Devices <= 0 {
		return fmt.Errorf("faulttrace: need a positive device count")
	}
	if m.DeviceAFR <= 0 || m.DeviceAFR >= 1 {
		return fmt.Errorf("faulttrace: AFR must be in (0,1)")
	}
	if m.NodeFailureShare < 0 || m.NodeFailureShare > 1 {
		return fmt.Errorf("faulttrace: node share must be in [0,1]")
	}
	if m.HorizonDays <= 0 {
		return fmt.Errorf("faulttrace: need a positive horizon")
	}
	if m.CorruptionPerYear < 0 {
		return fmt.Errorf("faulttrace: corruption rate must be >= 0")
	}
	return nil
}

// Event is one generated fault with its absolute offset in days.
type Event struct {
	AtDays float64
	Spec   core.FaultSpec
}

// Generate produces the failure events within the horizon, time-ordered.
// Inter-arrival times are exponential with the fleet-wide rate
// Devices * AFR (plus the corruption rate), the memoryless model behind
// MTTDL analyses.
func Generate(m Model) ([]Event, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(m.Seed))
	const daysPerYear = 365.25
	failPerDay := float64(m.Devices) * m.DeviceAFR / daysPerYear
	corrPerDay := m.CorruptionPerYear / daysPerYear

	var events []Event
	// Availability failures.
	for t := expStep(rng, failPerDay); t < m.HorizonDays; t += expStep(rng, failPerDay) {
		spec := core.FaultSpec{Level: core.FaultLevelDevice, Count: 1, AtSeconds: 1}
		if rng.Float64() < m.NodeFailureShare {
			spec.Level = core.FaultLevelNode
		}
		events = append(events, Event{AtDays: t, Spec: spec})
	}
	// Latent corruption.
	if corrPerDay > 0 {
		for t := expStep(rng, corrPerDay); t < m.HorizonDays; t += expStep(rng, corrPerDay) {
			events = append(events, Event{AtDays: t, Spec: core.FaultSpec{
				Level: core.FaultLevelCorruption, Count: 1 + rng.Intn(4), AtSeconds: 1,
			}})
		}
	}
	sortEvents(events)
	return events, nil
}

func expStep(rng *rand.Rand, ratePerDay float64) float64 {
	if ratePerDay <= 0 {
		return math.Inf(1)
	}
	return rng.ExpFloat64() / ratePerDay
}

func sortEvents(events []Event) {
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && events[j-1].AtDays > events[j].AtDays; j-- {
			events[j-1], events[j] = events[j], events[j-1]
		}
	}
}

// Schedule converts a trace into a core.Schedule. Event spacing collapses
// to a fixed gap between recovery cycles: RunSchedule is sequential
// (each round recovers before the next fault), so the trace's ordering
// and composition carry over while absolute quiet time is compressed.
func Schedule(events []Event, gapSeconds float64) core.Schedule {
	s := core.Schedule{GapSeconds: gapSeconds}
	for _, e := range events {
		s.Rounds = append(s.Rounds, e.Spec)
	}
	return s
}

// Summary tallies a trace by fault level.
func Summary(events []Event) map[string]int {
	out := map[string]int{}
	for _, e := range events {
		out[e.Spec.Level]++
	}
	return out
}

package faulttrace

import (
	"math"
	"testing"

	"repro/internal/core"
)

func model() Model {
	return Model{
		Devices:           60,
		DeviceAFR:         0.02,
		NodeFailureShare:  0.2,
		CorruptionPerYear: 12,
		HorizonDays:       365,
		Seed:              42,
	}
}

func TestValidate(t *testing.T) {
	bad := []func(*Model){
		func(m *Model) { m.Devices = 0 },
		func(m *Model) { m.DeviceAFR = 0 },
		func(m *Model) { m.DeviceAFR = 1 },
		func(m *Model) { m.NodeFailureShare = -0.1 },
		func(m *Model) { m.NodeFailureShare = 1.1 },
		func(m *Model) { m.HorizonDays = 0 },
		func(m *Model) { m.CorruptionPerYear = -1 },
	}
	for i, mutate := range bad {
		m := model()
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(model())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(model())
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].AtDays != b[i].AtDays || a[i].Spec.Level != b[i].Spec.Level || a[i].Spec.Count != b[i].Spec.Count {
			t.Fatal("traces differ")
		}
	}
}

func TestGenerateRateMatchesModel(t *testing.T) {
	// Expected availability failures over a year: 60 devices * 2% = 1.2,
	// too noisy; use a 100-year horizon to test the rate statistically.
	m := model()
	m.HorizonDays = 36525
	m.CorruptionPerYear = 0
	events, err := Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(m.Devices) * m.DeviceAFR * 100 // per century
	got := float64(len(events))
	if math.Abs(got-want)/want > 0.25 {
		t.Fatalf("generated %v events, model expects ~%v", got, want)
	}
	nodes := 0
	for _, e := range events {
		if e.Spec.Level == core.FaultLevelNode {
			nodes++
		}
	}
	share := float64(nodes) / got
	if math.Abs(share-m.NodeFailureShare) > 0.1 {
		t.Fatalf("node share %f, want ~%f", share, m.NodeFailureShare)
	}
}

func TestGenerateOrderedAndInHorizon(t *testing.T) {
	m := model()
	m.HorizonDays = 3650
	events, err := Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events in 10 years")
	}
	for i, e := range events {
		if e.AtDays < 0 || e.AtDays >= m.HorizonDays {
			t.Fatalf("event %d outside horizon: %f", i, e.AtDays)
		}
		if i > 0 && events[i-1].AtDays > e.AtDays {
			t.Fatal("events not ordered")
		}
	}
	sum := Summary(events)
	if sum[core.FaultLevelCorruption] == 0 {
		t.Fatal("no corruption events in 10 years at 12/year")
	}
}

func TestScheduleConversion(t *testing.T) {
	events := []Event{
		{AtDays: 1, Spec: core.FaultSpec{Level: core.FaultLevelDevice, Count: 1, AtSeconds: 1}},
		{AtDays: 2, Spec: core.FaultSpec{Level: core.FaultLevelCorruption, Count: 2, AtSeconds: 1}},
	}
	s := Schedule(events, 30)
	if len(s.Rounds) != 2 || s.GapSeconds != 30 {
		t.Fatalf("schedule: %+v", s)
	}
}

// TestTraceDrivenCampaign runs a generated trace end to end through
// core.RunSchedule.
func TestTraceDrivenCampaign(t *testing.T) {
	m := model()
	m.HorizonDays = 60
	m.DeviceAFR = 0.2 // dense trace for the test
	m.CorruptionPerYear = 30
	events, err := Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 {
		t.Skipf("sparse trace (%d events)", len(events))
	}
	if len(events) > 4 {
		events = events[:4]
	}
	p := core.DefaultProfile().ScaleWorkload(200)
	p.Cluster.Hosts = 15
	p.Pool.PGNum = 32
	res, err := core.RunSchedule(p, Schedule(events, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != len(events) {
		t.Fatalf("rounds = %d, want %d", len(res.Rounds), len(events))
	}
}

package core

import (
	"testing"

	"repro/internal/blockdev"
)

func TestWorkerLifecycle(t *testing.T) {
	w, err := NewWorker("host42")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Host() != "host42" {
		t.Fatalf("host = %s", w.Host())
	}
	if w.Addr() == "" {
		t.Fatal("no target address")
	}
	dev, err := blockdev.New("nvme0n1", 1<<20, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Provision(7, dev); err != nil {
		t.Fatal(err)
	}
	ids := w.Provisioned()
	if len(ids) != 1 || ids[0] != 7 {
		t.Fatalf("provisioned = %v", ids)
	}
	if !w.DeviceAlive(7) {
		t.Fatal("device should answer")
	}
	if w.DeviceAlive(99) {
		t.Fatal("unprovisioned device reported alive")
	}
	// Double provisioning the same OSD must fail (duplicate subsystem).
	dev2, _ := blockdev.New("dup", 1<<20, 4096)
	if err := w.Provision(7, dev2); err == nil {
		t.Fatal("double provision accepted")
	}
	if err := w.FailDevice(7); err != nil {
		t.Fatal(err)
	}
	if w.DeviceAlive(7) {
		t.Fatal("failed device still alive")
	}
	if err := w.FailDevice(7); err == nil {
		t.Fatal("double fail accepted (subsystem gone)")
	}
}

func TestECManagerRejectsInvalidProfile(t *testing.T) {
	p := DefaultProfile()
	p.Pool.K = 0
	if _, err := NewECManager(p); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestNewCoordinatorRejectsInvalidProfile(t *testing.T) {
	p := DefaultProfile()
	p.Workload.Objects = 0
	if _, err := NewCoordinator(p); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

package core

import "testing"

func TestTimelineTieOrderDeterministic(t *testing.T) {
	p := fastProfile()
	a, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Timeline) != len(b.Timeline) {
		t.Fatalf("len %d vs %d", len(a.Timeline), len(b.Timeline))
	}
	for i := range a.Timeline {
		if a.Timeline[i] != b.Timeline[i] {
			t.Fatalf("timeline[%d] %+v vs %+v", i, a.Timeline[i], b.Timeline[i])
		}
	}
}

package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/iostat"
	"repro/internal/logsys"
	"repro/internal/msgbus"
	"repro/internal/simclock"
	"repro/internal/wamodel"
	"repro/internal/workload"
)

// Result is everything one experiment produces.
type Result struct {
	Profile Profile

	// Recovery is nil for fault-free (write-amplification only) profiles.
	Recovery *cluster.RecoveryResult

	// WA is the OSD-level storage-overhead measurement of §4.4.
	WA wamodel.Report

	// Timeline is the globally merged, classified log stream (§3.3).
	Timeline []logsys.Entry

	// IOSamples are the iostat samples gathered during the run.
	IOSamples []iostat.Sample

	UsedBytes    int64
	WrittenBytes int64

	LogLinesShipped int
	LogLinesDropped int

	// PayloadVerified is set for payload-mode workloads: true when every
	// object read back bit-identical after recovery.
	PayloadVerified bool
	PayloadErrors   int

	// Scrub holds the deep-scrub report when the profile injected
	// corruption faults; RepairedInconsistent counts chunks rewritten.
	Scrub                *cluster.ScrubReport
	RepairedInconsistent int
}

// Coordinator orchestrates all the activities in the target DSS:
// configuration, virtual-disk provisioning, workload execution, fault
// injection, and log collection (§3, Coordinator).
type Coordinator struct {
	mgr     *ECManager
	cluster *cluster.Cluster
	workers map[string]*Worker
	loggers map[string]*logsys.NodeLogger
	broker  *msgbus.Broker
	sampler *iostat.Sampler

	classifier *Classifier

	// lazyProvision marks environments built on a cluster snapshot fork:
	// NVMe-oF provisioning is skipped up front and paid only for the
	// devices a device-level fault actually targets.
	lazyProvision bool
	provisioned   map[int]bool
}

// Classifier aliases the log classifier type for the public API.
type Classifier = logsys.Classifier

// NewCoordinator builds the full experiment environment for a profile:
// the simulated cluster, one Worker per host with NVMe-oF-provisioned
// devices, per-node Loggers and the message bus.
func NewCoordinator(p Profile) (*Coordinator, error) {
	mgr, err := NewECManager(p)
	if err != nil {
		return nil, err
	}
	co := &Coordinator{
		mgr:        mgr,
		workers:    map[string]*Worker{},
		loggers:    map[string]*logsys.NodeLogger{},
		broker:     msgbus.NewBroker(),
		sampler:    iostat.NewSampler(),
		classifier: logsys.DefaultClassifier(),
	}
	if err := co.broker.CreateTopic(logsys.Topic, 8); err != nil {
		return nil, err
	}
	logFn := func(t simclock.Time, node, msg string) {
		co.nodeLogger(node).Log(t, msg)
	}
	cfg, err := mgr.ClusterConfig(logFn)
	if err != nil {
		return nil, err
	}
	cl, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	co.cluster = cl

	// Provision every OSD's device through its host's worker.
	for _, osd := range cl.OSDs() {
		w, ok := co.workers[osd.Host]
		if !ok {
			w, err = NewWorker(osd.Host)
			if err != nil {
				co.Close()
				return nil, err
			}
			co.workers[osd.Host] = w
		}
		if err := w.Provision(osd.ID, osd.Store.Device()); err != nil {
			co.Close()
			return nil, fmt.Errorf("core: provisioning osd.%d on %s: %w", osd.ID, osd.Host, err)
		}
		if err := co.sampler.Track(fmt.Sprintf("osd.%d", osd.ID), osd.Store.Device()); err != nil {
			co.Close()
			return nil, err
		}
	}
	return co, nil
}

func (co *Coordinator) nodeLogger(node string) *logsys.NodeLogger {
	l, ok := co.loggers[node]
	if !ok {
		l = logsys.NewNodeLogger(node, co.classifier, co.broker)
		co.loggers[node] = l
	}
	return l
}

// Cluster exposes the cluster under test.
func (co *Coordinator) Cluster() *cluster.Cluster { return co.cluster }

// Workers returns the per-host workers.
func (co *Coordinator) Workers() map[string]*Worker { return co.workers }

// PoolConfig returns the pool configuration resolved from the profile,
// for callers driving the cluster manually.
func (co *Coordinator) PoolConfig() cluster.PoolConfig { return co.mgr.PoolConfig() }

// Close releases worker resources.
func (co *Coordinator) Close() {
	for _, w := range co.workers {
		_ = w.Close()
	}
}

// Run executes the whole experiment cycle and returns its measurements.
func (co *Coordinator) Run() (*Result, error) {
	defer co.Close()
	res, contents, err := co.populate()
	if err != nil {
		return nil, err
	}
	return co.finish(res, contents)
}

// populate runs the setup half of an experiment — pool creation, the
// write workload, and the storage-overhead measurement — and returns the
// partially filled result plus the payload contents (for post-recovery
// verification). Everything it does depends only on the profile's
// layout-relevant fields, which is what makes populated clusters
// snapshotable and shareable across cells (see Populate).
func (co *Coordinator) populate() (*Result, map[string][]byte, error) {
	p := co.mgr.Profile()
	res := &Result{Profile: p}
	cl := co.cluster

	// 1. Configure the pool.
	if _, err := cl.CreatePool(co.mgr.PoolConfig()); err != nil {
		return nil, nil, err
	}

	// 2. Execute the workload.
	spec := workload.Spec{
		NamePrefix: "obj",
		Count:      p.Workload.Objects,
		ObjectSize: p.Workload.ObjectSize,
		SizeJitter: p.Workload.SizeJitter,
		Seed:       p.Workload.Seed,
	}
	objs, err := spec.Objects()
	if err != nil {
		return nil, nil, err
	}
	contents := map[string][]byte{}
	if p.Workload.Payload {
		rng := newPayloadRNG(p.Workload.Seed)
		for _, o := range objs {
			data := rng.bytes(int(o.Size))
			contents[o.Name] = data
			if err := cl.WriteObject(p.Pool.Name, o.Name, data); err != nil {
				return nil, nil, err
			}
		}
	} else {
		if err := cl.BulkLoad(p.Pool.Name, objs); err != nil {
			return nil, nil, err
		}
	}
	res.WrittenBytes = 0
	for _, o := range objs {
		res.WrittenBytes += o.Size
	}

	// 3. Measure storage overhead (Actual WA Factor, §4.4).
	res.UsedBytes = cl.UsedBytes()
	measured := float64(res.UsedBytes) / float64(res.WrittenBytes)
	res.WA, err = wamodel.NewReport(p.Workload.ObjectSize, p.Pool.K+p.Pool.M, p.Pool.K, p.Pool.StripeUnit, measured)
	if err != nil {
		return nil, nil, err
	}
	return res, contents, nil
}

// finish runs the recovery-side half of an experiment — fault injection,
// recovery, scrubbing, log collection — on top of a populated cluster,
// whether freshly built or forked from a snapshot.
func (co *Coordinator) finish(res *Result, contents map[string][]byte) (*Result, error) {
	p := co.mgr.Profile()
	cl := co.cluster

	// 4. Inject faults and run recovery, if profiled. Corruption faults
	// are latent: they are applied, then detected by a deep scrub and
	// repaired in place; availability faults go through detection and
	// EC recovery.
	availabilityFaults := 0
	if len(p.Faults) > 0 {
		inj := NewFaultInjector(cl, p.Pool.Name)
		plans, err := inj.PlanAll(p.Faults)
		if err != nil {
			return nil, err
		}
		for _, pf := range plans {
			if pf.Spec.Level == FaultLevelDevice {
				// Device faults go through the worker's NVMe-oF control
				// path, exactly like nvmetcli removing a subsystem.
				for _, id := range pf.OSDs {
					w, err := co.deviceWorker(id)
					if err != nil {
						return nil, fmt.Errorf("core: provisioning fault target osd.%d: %w", id, err)
					}
					if w != nil {
						if err := w.FailDevice(id); err != nil {
							return nil, fmt.Errorf("core: failing device osd.%d: %w", id, err)
						}
					}
				}
			}
			if pf.Spec.Level != FaultLevelCorruption {
				availabilityFaults++
			}
			if err := inj.Inject(pf); err != nil {
				return nil, err
			}
		}
		if hasCorruption(p.Faults) {
			scrub, err := cl.ScrubPool(p.Pool.Name)
			if err != nil {
				return nil, err
			}
			res.Scrub = scrub
			res.RepairedInconsistent, err = cl.RepairInconsistent(p.Pool.Name, scrub)
			if err != nil {
				return nil, err
			}
		}
	}
	if availabilityFaults > 0 {
		rec, err := cl.ScheduleRecovery(p.Pool.Name)
		if err != nil {
			return nil, err
		}
		res.Recovery = rec

		// iostat sampling every 30 simulated seconds until recovery ends.
		var sample func()
		sample = func() {
			co.sampler.Sample(cl.Sim().Now())
			if !rec.Done() {
				cl.Sim().After(30*time.Second, sample)
			}
		}
		cl.Sim().At(rec.DetectedAt, sample)

		cl.RunSim()
		if !rec.Done() {
			return nil, fmt.Errorf("core: recovery did not complete")
		}

		if p.Workload.Payload {
			res.PayloadVerified = true
			for name, want := range contents {
				got, err := cl.ReadObject(p.Pool.Name, name)
				if err != nil || string(got) != string(want) {
					res.PayloadVerified = false
					res.PayloadErrors++
				}
			}
		}
	}

	// 5. Collect and merge logs. Loggers flush in node-name order so the
	// collector's stable time-sort breaks same-timestamp ties the same way
	// on every run (and identically for fresh and forked clusters).
	nodes := make([]string, 0, len(co.loggers))
	for n := range co.loggers {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		l := co.loggers[n]
		if err := l.Flush(); err != nil {
			return nil, err
		}
		res.LogLinesShipped += l.ShippedLines
		res.LogLinesDropped += l.DroppedLines
	}
	collector := logsys.NewCollector(co.broker, "coordinator")
	if _, err := collector.Collect(); err != nil {
		return nil, err
	}
	res.Timeline = collector.Entries()
	res.IOSamples = co.sampler.Samples()
	return res, nil
}

// deviceWorker returns the worker that owns an OSD's device. In a fresh
// environment every device was provisioned eagerly in NewCoordinator; in
// a forked environment the worker is created and the device provisioned
// on demand, so only the handful of fault-target devices pay the NVMe-oF
// round trips.
func (co *Coordinator) deviceWorker(id int) (*Worker, error) {
	host := co.cluster.Crush().HostOf(id)
	w := co.workers[host]
	if w == nil {
		if !co.lazyProvision {
			return nil, nil
		}
		var err error
		w, err = NewWorker(host)
		if err != nil {
			return nil, err
		}
		co.workers[host] = w
	}
	if co.lazyProvision && !co.provisioned[id] {
		if err := w.Provision(id, co.cluster.OSD(id).Store.Device()); err != nil {
			return nil, err
		}
		co.provisioned[id] = true
	}
	return w, nil
}

// hasCorruption reports whether any fault spec is corruption-level.
func hasCorruption(faults []FaultSpec) bool {
	for _, f := range faults {
		if f.Level == FaultLevelCorruption {
			return true
		}
	}
	return false
}

// Run is the one-call entry point: build the environment for a profile,
// execute it, and return the result.
func Run(p Profile) (*Result, error) {
	co, err := NewCoordinator(p)
	if err != nil {
		return nil, err
	}
	return co.Run()
}

// payloadRNG generates deterministic payload bytes without pulling
// math/rand into the hot path for every object.
type payloadRNG struct{ state uint64 }

func newPayloadRNG(seed int64) *payloadRNG {
	return &payloadRNG{state: uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d}
}

func (r *payloadRNG) next() uint64 {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return r.state
}

func (r *payloadRNG) bytes(n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; i += 8 {
		v := r.next()
		for j := 0; j < 8 && i+j < n; j++ {
			out[i+j] = byte(v >> (8 * j))
		}
	}
	return out
}

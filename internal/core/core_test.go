package core

import (
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/cluster"
	"repro/internal/logsys"
	"repro/internal/workload"
)

// fastProfile is a scaled-down paper profile for quick tests.
func fastProfile() Profile {
	p := DefaultProfile()
	p.Cluster.Hosts = 15
	p.Cluster.DeviceCapacityGB = 8
	p.Pool.PGNum = 32
	p.Workload.Objects = 60
	p.Workload.ObjectSize = 8 << 20
	return p
}

func TestDefaultProfileValid(t *testing.T) {
	p := DefaultProfile()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	c := ClayProfile()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Pool.Plugin != "clay" || c.Pool.D != 11 {
		t.Fatalf("clay profile: %+v", c.Pool)
	}
}

func TestProfileValidationRejects(t *testing.T) {
	mutations := []func(*Profile){
		func(p *Profile) { p.Cluster.Hosts = 0 },
		func(p *Profile) { p.Pool.K = 0 },
		func(p *Profile) { p.Pool.PGNum = 0 },
		func(p *Profile) { p.Pool.StripeUnit = 0 },
		func(p *Profile) { p.Pool.Plugin = "made-up" },
		func(p *Profile) { p.Pool.FailureDomain = "continent" },
		func(p *Profile) { p.Cluster.Hosts = 5 }, // fewer than n with host domain
		func(p *Profile) { p.Workload.Objects = 0 },
		func(p *Profile) { p.Backend.CacheScheme = "bogus" },
		func(p *Profile) { p.Faults[0].Level = "rack" },
		func(p *Profile) { p.Faults[0].Count = 0 },
		func(p *Profile) { p.Faults[0].Locality = "nearby" },
		func(p *Profile) { p.Faults[0].AtSeconds = -1 },
		func(p *Profile) { p.Faults[0].Count = 99 }, // beyond m
	}
	for i, mutate := range mutations {
		p := DefaultProfile()
		mutate(&p)
		if err := p.Validate(); !errors.Is(err, ErrInvalidProfile) {
			t.Errorf("mutation %d: err = %v", i, err)
		}
	}
}

func TestScaleWorkload(t *testing.T) {
	p := DefaultProfile().ScaleWorkload(100)
	if p.Workload.Objects != 100 {
		t.Fatalf("scaled objects = %d", p.Workload.Objects)
	}
	if DefaultProfile().ScaleWorkload(1_000_000).Workload.Objects != 1 {
		t.Fatal("floor at 1")
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.json")
	orig := ClayProfile()
	if err := SaveProfile(orig, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pool != orig.Pool || got.Cluster != orig.Cluster || got.Workload != orig.Workload {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := LoadProfile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestProfileCoversTable1 pins the configuration surface of Table 1.
func TestProfileCoversTable1(t *testing.T) {
	surface := ConfigSurface()
	for _, dim := range []string{"bluestore cache", "pg_num", "ec plugin", "ec technique", "failure domain", "ec parameters"} {
		if len(surface[dim]) == 0 {
			t.Errorf("configuration dimension %q not covered", dim)
		}
	}
	plugins := surface["ec plugin"]
	hasClay, hasRS := false, false
	for _, p := range plugins {
		if p == "clay" {
			hasClay = true
		}
		if p == "jerasure_reed_sol_van" {
			hasRS = true
		}
	}
	if !hasClay || !hasRS {
		t.Fatalf("plugins missing: %v", plugins)
	}
}

func TestECManagerCacheSchemes(t *testing.T) {
	for _, scheme := range []string{SchemeKVOptimized, SchemeDataOptimized, SchemeAutotune} {
		p := fastProfile()
		p.Backend.CacheScheme = scheme
		mgr, err := NewECManager(p)
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := mgr.ClusterConfig(nil)
		if err != nil {
			t.Fatal(err)
		}
		if scheme == SchemeKVOptimized && cfg.Store.Cache.KVRatio != 0.70 {
			t.Fatalf("kv-optimized ratios wrong: %+v", cfg.Store.Cache)
		}
		if scheme == SchemeAutotune && !cfg.Store.Cache.Autotune {
			t.Fatal("autotune flag not set")
		}
	}
}

func TestEndToEndExperiment(t *testing.T) {
	res, err := Run(fastProfile())
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovery == nil || !res.Recovery.Done() {
		t.Fatal("recovery missing")
	}
	if res.Recovery.RepairedChunks == 0 {
		t.Fatal("nothing repaired")
	}
	if res.WA.Measured <= res.WA.Theoretical {
		t.Fatalf("measured WA %.3f should exceed theory %.3f", res.WA.Measured, res.WA.Theoretical)
	}
	if res.WA.Measured < res.WA.FormulaBound {
		t.Fatalf("measured WA %.3f below the formula lower bound %.3f", res.WA.Measured, res.WA.FormulaBound)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline entries")
	}
	if res.LogLinesShipped == 0 {
		t.Fatal("no log lines shipped")
	}
	if len(res.IOSamples) == 0 {
		t.Fatal("no iostat samples")
	}
	// The Figure 3 anatomy: failure detected, then checking, then
	// recovery I/O, then completion — all visible in the merged logs.
	var sawDetect, sawHeartbeat, sawStart, sawComplete bool
	for _, e := range res.Timeline {
		switch {
		case e.Category == logsys.CatFailure:
			sawDetect = true
		case e.Category == logsys.CatHeartbeat:
			sawHeartbeat = true
		case e.Category == logsys.CatRecovery && contains(e.Message, "start recovery I/O"):
			sawStart = true
		case e.Category == logsys.CatRecovery && contains(e.Message, "recovery completed"):
			sawComplete = true
		}
	}
	if !sawDetect || !sawHeartbeat || !sawStart || !sawComplete {
		t.Fatalf("timeline missing phases: detect=%v hb=%v start=%v complete=%v",
			sawDetect, sawHeartbeat, sawStart, sawComplete)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}

func TestEndToEndPayloadVerification(t *testing.T) {
	p := fastProfile()
	p.Workload.Objects = 16
	p.Workload.ObjectSize = 256 << 10
	p.Pool.StripeUnit = 64 << 10 // keep padded chunks small for real bytes
	p.Workload.Payload = true
	p.Faults = []FaultSpec{{Level: FaultLevelDevice, Count: 1, AtSeconds: 5}}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PayloadVerified {
		t.Fatalf("payload verification failed: %d errors", res.PayloadErrors)
	}
}

func TestFaultInjectorLocalities(t *testing.T) {
	p := fastProfile()
	p.Cluster.OSDsPerHost = 3
	p.Pool.FailureDomain = "osd"
	co, err := NewCoordinator(p)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	if _, err := co.Cluster().CreatePool(coPoolCfg(co)); err != nil {
		t.Fatal(err)
	}
	objs := mustObjects(t, p)
	if err := co.Cluster().BulkLoad(p.Pool.Name, objs); err != nil {
		t.Fatal(err)
	}
	inj := NewFaultInjector(co.Cluster(), p.Pool.Name)

	same, err := inj.Plan(FaultSpec{Level: FaultLevelDevice, Count: 3, Locality: LocalitySameHost, AtSeconds: 1})
	if err != nil {
		t.Fatal(err)
	}
	hosts := map[string]bool{}
	for _, id := range same.OSDs {
		hosts[co.Cluster().Crush().HostOf(id)] = true
	}
	if len(same.OSDs) != 3 || len(hosts) != 1 {
		t.Fatalf("same-host plan: %v over %d hosts", same.OSDs, len(hosts))
	}

	diff, err := inj.Plan(FaultSpec{Level: FaultLevelDevice, Count: 3, Locality: LocalityDiffHosts, AtSeconds: 1})
	if err != nil {
		t.Fatal(err)
	}
	hosts = map[string]bool{}
	for _, id := range diff.OSDs {
		hosts[co.Cluster().Crush().HostOf(id)] = true
	}
	if len(diff.OSDs) != 3 || len(hosts) != 3 {
		t.Fatalf("diff-hosts plan: %v over %d hosts", diff.OSDs, len(hosts))
	}

	node, err := inj.Plan(FaultSpec{Level: FaultLevelNode, Count: 1, AtSeconds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(node.OSDs) != 3 {
		t.Fatalf("node plan should cover the host's 3 OSDs: %v", node.OSDs)
	}
}

// TestFaultInjectorWhiteBoxGuard ensures plans that would exceed the
// fault tolerance are refused.
func TestFaultInjectorWhiteBoxGuard(t *testing.T) {
	p := fastProfile()
	p.Cluster.OSDsPerHost = 4
	p.Pool.K = 4
	p.Pool.M = 2
	p.Pool.FailureDomain = "osd"
	co, err := NewCoordinator(p)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	if _, err := co.Cluster().CreatePool(coPoolCfg(co)); err != nil {
		t.Fatal(err)
	}
	if err := co.Cluster().BulkLoad(p.Pool.Name, mustObjects(t, p)); err != nil {
		t.Fatal(err)
	}
	inj := NewFaultInjector(co.Cluster(), p.Pool.Name)
	// Explicitly target 4 OSDs hosting one PG's chunks: beyond m=2.
	pool, _ := co.Cluster().Pool(p.Pool.Name)
	var victim []int
	for _, pg := range pool.PGs {
		if len(pg.Objects) > 0 {
			victim = pg.Acting[:4]
			break
		}
	}
	if _, err := inj.Plan(FaultSpec{Level: FaultLevelDevice, OSDs: victim, AtSeconds: 1}); !errors.Is(err, ErrExceedsTolerance) {
		t.Fatalf("guard did not trip: %v", err)
	}
}

func TestWorkerProvisioningAndDeviceFault(t *testing.T) {
	p := fastProfile()
	co, err := NewCoordinator(p)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	if len(co.Workers()) != p.Cluster.Hosts {
		t.Fatalf("workers = %d", len(co.Workers()))
	}
	osd := co.Cluster().OSD(0)
	w := co.Workers()[osd.Host]
	if w == nil {
		t.Fatal("no worker for osd.0's host")
	}
	if !w.DeviceAlive(0) {
		t.Fatal("device should be alive after provisioning")
	}
	if err := w.FailDevice(0); err != nil {
		t.Fatal(err)
	}
	if w.DeviceAlive(0) {
		t.Fatal("device alive after subsystem removal")
	}
	if !osd.Store.Device().Removed() {
		t.Fatal("backing device not removed")
	}
}

func coPoolCfg(co *Coordinator) cluster.PoolConfig { return co.mgr.PoolConfig() }

func workloadSpecOf(p Profile) workload.Spec {
	return workload.Spec{
		NamePrefix: "obj",
		Count:      p.Workload.Objects,
		ObjectSize: p.Workload.ObjectSize,
		SizeJitter: p.Workload.SizeJitter,
		Seed:       p.Workload.Seed,
	}
}

func mustObjects(t *testing.T, p Profile) []workload.Object {
	t.Helper()
	objs, err := workloadSpecOf(p).Objects()
	if err != nil {
		t.Fatal(err)
	}
	return objs
}

package core

import (
	"fmt"
	"sync"

	"repro/internal/blockdev"
	"repro/internal/nvmeof"
)

// Worker is the per-node ECFault agent (§3): it provisions virtual NVMe
// disks to the node through the remote storage protocol and applies
// device-level faults by removing their subsystems, decoupling the DSS
// from its storage so device state is controlled from outside the system
// under test.
type Worker struct {
	host   string
	target *nvmeof.Target

	mu      sync.Mutex
	clients map[int]*nvmeof.Client // osd id -> initiator association
}

// NewWorker starts a worker on a node: its NVMe-oF target listens on a
// loopback TCP port.
func NewWorker(host string) (*Worker, error) {
	t := nvmeof.NewTarget()
	if err := t.Listen("127.0.0.1:0"); err != nil {
		return nil, fmt.Errorf("core: worker %s: %w", host, err)
	}
	return &Worker{host: host, target: t, clients: map[int]*nvmeof.Client{}}, nil
}

// Host returns the node this worker runs on.
func (w *Worker) Host() string { return w.host }

// Addr returns the worker's NVMe-oF target address.
func (w *Worker) Addr() string { return w.target.Addr() }

func nqnFor(osd int) string { return fmt.Sprintf("nqn.2024-07.io.ecfault:osd%d", osd) }

// Provision exports the OSD's device through the target and connects an
// initiator, verifying the namespace is visible — the path a DataNode
// would mount as a local disk.
func (w *Worker) Provision(osd int, dev *blockdev.Device) error {
	nqn := nqnFor(osd)
	if err := w.target.AddSubsystem(nqn); err != nil {
		return err
	}
	if err := w.target.AddNamespace(nqn, 1, dev); err != nil {
		return err
	}
	client, err := nvmeof.Connect(w.target.Addr(), nqn)
	if err != nil {
		return err
	}
	infos, err := client.Identify()
	if err != nil {
		client.Close()
		return fmt.Errorf("core: identify osd.%d: %w", osd, err)
	}
	if len(infos) != 1 || infos[0].Size != uint64(dev.Capacity()) {
		client.Close()
		return fmt.Errorf("core: osd.%d namespace mismatch: %+v", osd, infos)
	}
	w.mu.Lock()
	w.clients[osd] = client
	w.mu.Unlock()
	return nil
}

// FailDevice removes the OSD's subsystem: live associations are severed
// and the backing device errors from then on — the device-level fault.
func (w *Worker) FailDevice(osd int) error {
	return w.target.RemoveSubsystem(nqnFor(osd))
}

// DeviceAlive checks whether the OSD's remote device still answers I/O.
func (w *Worker) DeviceAlive(osd int) bool {
	w.mu.Lock()
	client, ok := w.clients[osd]
	w.mu.Unlock()
	if !ok {
		return false
	}
	_, err := client.Identify()
	return err == nil
}

// Provisioned lists the OSDs this worker has provisioned.
func (w *Worker) Provisioned() []int {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]int, 0, len(w.clients))
	for id := range w.clients {
		out = append(out, id)
	}
	return out
}

// Close shuts down the worker's target and associations.
func (w *Worker) Close() error {
	w.mu.Lock()
	for _, c := range w.clients {
		c.Close()
	}
	w.clients = map[int]*nvmeof.Client{}
	w.mu.Unlock()
	return w.target.Close()
}

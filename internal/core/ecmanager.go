package core

import (
	"fmt"
	"time"

	"repro/internal/bluestore"
	"repro/internal/cluster"
	"repro/internal/erasure"
	"repro/internal/erasure/codecache"
	"repro/internal/simnet"
)

// ECManager translates an experimental profile into concrete cluster and
// pool configurations — the Controller sub-module that "manages all
// EC-related configurations in an experimental profile" (§3).
type ECManager struct {
	profile Profile
}

// NewECManager validates the profile and wraps it.
func NewECManager(p Profile) (*ECManager, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &ECManager{profile: p}, nil
}

// Profile returns the managed profile.
func (m *ECManager) Profile() Profile { return m.profile }

// cacheConfig resolves the profile's cache scheme to BlueStore ratios.
func (m *ECManager) cacheConfig() (bluestore.CacheConfig, error) {
	b := m.profile.Backend
	if b.CustomRatios != nil {
		return *b.CustomRatios, nil
	}
	switch b.CacheScheme {
	case SchemeKVOptimized:
		return bluestore.CacheKVOptimized, nil
	case SchemeDataOptimized:
		return bluestore.CacheDataOptimized, nil
	case SchemeAutotune, "":
		return bluestore.CacheAutotune, nil
	}
	return bluestore.CacheConfig{}, fmt.Errorf("%w: cache scheme %q", ErrInvalidProfile, b.CacheScheme)
}

// ClusterConfig builds the cluster.Config for the profile.
func (m *ECManager) ClusterConfig(log cluster.LogFunc) (cluster.Config, error) {
	p := m.profile
	cache, err := m.cacheConfig()
	if err != nil {
		return cluster.Config{}, err
	}
	cfg := cluster.DefaultConfig()
	cfg.Hosts = p.Cluster.Hosts
	cfg.OSDsPerHost = p.Cluster.OSDsPerHost
	cfg.Racks = p.Cluster.Racks
	if p.Cluster.DeviceCapacityGB > 0 {
		cfg.DeviceCapacity = int64(p.Cluster.DeviceCapacityGB) << 30
	}
	if p.Cluster.NetworkGbps > 0 {
		cfg.Net = simnet.Config{
			BandwidthBytesPerSec: p.Cluster.NetworkGbps * 1e9 / 8,
			Latency:              simnet.DefaultConfig().Latency,
		}
	}
	cfg.Store = bluestore.DefaultConfig()
	cfg.Store.Cache = cache
	if p.Backend.CacheGB > 0 {
		cfg.Store.CacheBytes = int64(p.Backend.CacheGB * float64(1<<30))
	}
	if p.Backend.MinAllocSize > 0 {
		cfg.Store.MinAllocSize = p.Backend.MinAllocSize
	}
	if p.Tuning.MarkOutIntervalSeconds > 0 {
		cfg.Cost.MarkOutInterval = time.Duration(p.Tuning.MarkOutIntervalSeconds * float64(time.Second))
	}
	if p.Tuning.MaxBackfills > 0 {
		cfg.Cost.MaxBackfills = p.Tuning.MaxBackfills
	}
	if p.Tuning.RecoveryBWFraction > 0 {
		cfg.Cost.RecoveryBWFraction = p.Tuning.RecoveryBWFraction
	}
	if p.Tuning.RecoveryMaxActive > 0 {
		cfg.Cost.RecoveryMaxActive = p.Tuning.RecoveryMaxActive
	}
	cfg.Log = log
	return cfg, nil
}

// Code returns the erasure code for the profile's pool spec — the same
// registry-shared instance the cluster pool and every snapshot fork use,
// so callers computing durability or plan statistics hit the instance's
// warm plan/program caches.
func (m *ECManager) Code() (erasure.Code, error) {
	pc := m.PoolConfig()
	return codecache.Get(pc.Plugin, pc.K, pc.M, pc.D)
}

// PoolConfig builds the pool configuration for the profile.
func (m *ECManager) PoolConfig() cluster.PoolConfig {
	p := m.profile.Pool
	d := p.D
	if p.Plugin == "clay" && d == 0 {
		d = p.K + p.M - 1
	}
	return cluster.PoolConfig{
		Name:          p.Name,
		Plugin:        p.Plugin,
		K:             p.K,
		M:             p.M,
		D:             d,
		PGNum:         p.PGNum,
		StripeUnit:    p.StripeUnit,
		FailureDomain: p.FailureDomain,
	}
}

package core

import (
	"strings"
	"testing"
)

func TestRunScheduleMultiRound(t *testing.T) {
	p := fastProfile()
	p.Faults = nil
	sched := Schedule{
		GapSeconds: 30,
		Rounds: []FaultSpec{
			{Level: FaultLevelDevice, Count: 1, AtSeconds: 5},
			{Level: FaultLevelDevice, Count: 1, AtSeconds: 5},
			{Level: FaultLevelCorruption, Count: 3, AtSeconds: 1},
		},
	}
	res, err := RunSchedule(p, sched)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 3 {
		t.Fatalf("rounds = %d", len(res.Rounds))
	}
	// Two device rounds with recoveries, one corruption round without.
	if res.Rounds[0].Recovery == nil || res.Rounds[1].Recovery == nil {
		t.Fatal("device rounds missing recovery results")
	}
	if res.Rounds[2].Recovery != nil {
		t.Fatal("corruption round should not run availability recovery")
	}
	if res.Rounds[1].Recovery.DetectedAt <= res.Rounds[0].Recovery.FinishedAt {
		t.Fatal("round 2 must start after round 1 completes")
	}
	// Different devices fail in each round (the first is dead already).
	if res.Rounds[0].Plan.OSDs[0] == res.Rounds[1].Plan.OSDs[0] {
		t.Fatal("round 2 re-failed a dead OSD")
	}
	if res.TotalRepairedChunks == 0 {
		t.Fatal("nothing repaired")
	}
	// After all rounds every PG is clean; OSDs remain down.
	if !strings.Contains(res.Health, "0 degraded") || !strings.Contains(res.Health, "0 incomplete") {
		t.Fatalf("final health: %s", res.Health)
	}
}

func TestRunScheduleValidation(t *testing.T) {
	p := fastProfile()
	if _, err := RunSchedule(p, Schedule{}); err == nil {
		t.Fatal("empty schedule accepted")
	}
	bad := fastProfile()
	bad.Pool.K = 0
	if _, err := RunSchedule(bad, Schedule{Rounds: []FaultSpec{{Level: FaultLevelDevice, Count: 1}}}); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/erasure"
	"repro/internal/simclock"
)

// ErrExceedsTolerance is returned when a planned fault would lose more
// chunks in some placement group than the code can repair — the white-box
// guarantee of §3.2.
var ErrExceedsTolerance = errors.New("core: fault plan exceeds the pool's fault tolerance")

// FaultInjector plans and applies the profiled faults against a cluster.
// Planning is EC-aware: it uses placement knowledge to pick targets that
// actually hold data, and refuses plans that exceed n-k failures within
// the failure domain.
type FaultInjector struct {
	c    *cluster.Cluster
	pool string
}

// NewFaultInjector binds an injector to a cluster and pool.
func NewFaultInjector(c *cluster.Cluster, pool string) *FaultInjector {
	return &FaultInjector{c: c, pool: pool}
}

// Corruption targets one object's shard for silent damage.
type Corruption struct {
	Object string
	Shard  int
}

// PlannedFault is a resolved fault: concrete OSD targets (node/device
// levels) or chunk targets (corruption level), and a time.
type PlannedFault struct {
	Spec        FaultSpec
	At          simclock.Time
	OSDs        []int
	Corruptions []Corruption
}

// chunkCounts returns per-OSD chunk counts for the pool.
func (f *FaultInjector) chunkCounts() (map[int]int, error) {
	pool, err := f.c.Pool(f.pool)
	if err != nil {
		return nil, err
	}
	counts := map[int]int{}
	for _, pg := range pool.PGs {
		if len(pg.Objects) == 0 {
			continue
		}
		for _, id := range pg.Acting {
			counts[id] += len(pg.Objects)
		}
	}
	return counts, nil
}

// hostsByChunkCount returns hosts ordered by how many chunks of the pool
// they hold, descending, ties broken by name.
func (f *FaultInjector) hostsByChunkCount() ([]string, map[string]int, error) {
	osdCounts, err := f.chunkCounts()
	if err != nil {
		return nil, nil, err
	}
	counts := map[string]int{}
	for id, n := range osdCounts {
		counts[f.c.Crush().HostOf(id)] += n
	}
	hosts := make([]string, 0, len(counts))
	for h := range counts {
		hosts = append(hosts, h)
	}
	sort.Slice(hosts, func(i, j int) bool {
		if counts[hosts[i]] != counts[hosts[j]] {
			return counts[hosts[i]] > counts[hosts[j]]
		}
		return hosts[i] < hosts[j]
	})
	if len(hosts) == 0 {
		return nil, nil, fmt.Errorf("core: pool %q holds no data to fault", f.pool)
	}
	return hosts, counts, nil
}

// heaviestOSDs returns a host's OSD ids ordered by chunk count descending
// (ties by id), so device faults hit data-bearing devices first.
func (f *FaultInjector) heaviestOSDs(host string, osdCounts map[int]int) []int {
	ids := append([]int(nil), f.c.Crush().OSDsOnHost(host)...)
	sort.Slice(ids, func(i, j int) bool {
		if osdCounts[ids[i]] != osdCounts[ids[j]] {
			return osdCounts[ids[i]] > osdCounts[ids[j]]
		}
		return ids[i] < ids[j]
	})
	return ids
}

// Plan resolves a fault spec into concrete targets.
func (f *FaultInjector) Plan(spec FaultSpec) (PlannedFault, error) {
	at := simclock.Time(spec.AtSeconds * float64(time.Second))
	pf := PlannedFault{Spec: spec, At: at}
	if len(spec.OSDs) > 0 {
		pf.OSDs = append([]int(nil), spec.OSDs...)
		return pf, f.guard(pf.OSDs)
	}
	hosts, _, err := f.hostsByChunkCount()
	if err != nil {
		return pf, err
	}
	osdCounts, err := f.chunkCounts()
	if err != nil {
		return pf, err
	}
	switch spec.Level {
	case FaultLevelCorruption:
		pool, err := f.c.Pool(f.pool)
		if err != nil {
			return pf, err
		}
		// One corrupted shard per object, spread over PGs and shard
		// positions deterministically — never exceeding what one scrub
		// repair can fix per object.
		shard := 0
		for _, pg := range pool.PGs {
			for _, obj := range pg.Objects {
				if len(pf.Corruptions) == spec.Count {
					return pf, nil
				}
				pf.Corruptions = append(pf.Corruptions, Corruption{Object: obj.Name, Shard: shard % len(pg.Acting)})
				shard++
			}
		}
		if len(pf.Corruptions) < spec.Count {
			return pf, fmt.Errorf("core: pool has %d objects, cannot corrupt %d chunks", len(pf.Corruptions), spec.Count)
		}
		return pf, nil
	case FaultLevelNode:
		if spec.Count > len(hosts) {
			return pf, fmt.Errorf("core: cannot fail %d nodes, only %d hold data", spec.Count, len(hosts))
		}
		for _, h := range hosts[:spec.Count] {
			pf.OSDs = append(pf.OSDs, f.c.Crush().OSDsOnHost(h)...)
		}
	case FaultLevelDevice:
		switch spec.Locality {
		case LocalitySameHost:
			// All failed devices on the data-heaviest host with enough
			// OSDs.
			for _, h := range hosts {
				ids := f.heaviestOSDs(h, osdCounts)
				if len(ids) >= spec.Count {
					pf.OSDs = ids[:spec.Count]
					break
				}
			}
			if len(pf.OSDs) == 0 {
				return pf, fmt.Errorf("core: no host has %d devices", spec.Count)
			}
		case LocalityDiffHosts:
			if spec.Count > len(hosts) {
				return pf, fmt.Errorf("core: cannot spread %d device failures over %d data hosts", spec.Count, len(hosts))
			}
			// The chunk-heaviest device on each of the data-heaviest
			// hosts, so same-host and diff-hosts plans lose comparable
			// chunk volumes.
			for _, h := range hosts[:spec.Count] {
				pf.OSDs = append(pf.OSDs, f.heaviestOSDs(h, osdCounts)[0])
			}
		default:
			// The N chunk-heaviest devices on the data-heaviest host.
			ids := f.heaviestOSDs(hosts[0], osdCounts)
			if spec.Count > len(ids) {
				return pf, fmt.Errorf("core: host %s has %d devices, need %d", hosts[0], len(ids), spec.Count)
			}
			pf.OSDs = ids[:spec.Count]
		}
	default:
		return pf, fmt.Errorf("%w: fault level %q", ErrInvalidProfile, spec.Level)
	}
	return pf, f.guard(pf.OSDs)
}

// guard enforces the white-box fault-tolerance rule: no placement group
// may lose more chunks than the code's parity count.
func (f *FaultInjector) guard(osds []int) error {
	pool, err := f.c.Pool(f.pool)
	if err != nil {
		return err
	}
	down := map[int]bool{}
	for _, id := range osds {
		down[id] = true
	}
	for _, pg := range pool.PGs {
		var lost []int
		for shard, id := range pg.Acting {
			if down[id] {
				lost = append(lost, shard)
			}
		}
		if len(lost) == 0 {
			continue
		}
		// Pattern-aware for non-MDS codes (LRC, SHEC): the same count of
		// losses can be fatal or benign depending on which shards they hit.
		if !erasure.CanRecover(pool.Code, lost) {
			return fmt.Errorf("%w: pg %d would lose shards %v", ErrExceedsTolerance, pg.ID, lost)
		}
	}
	return nil
}

// Inject applies a planned fault to the cluster. Corruption faults apply
// immediately (they are latent until a scrub); node and device faults
// are scheduled on the simulator.
func (f *FaultInjector) Inject(pf PlannedFault) error {
	if pf.Spec.Level == FaultLevelCorruption {
		for _, corr := range pf.Corruptions {
			if err := f.c.CorruptChunk(f.pool, corr.Object, corr.Shard); err != nil {
				return err
			}
		}
		return nil
	}
	f.c.InjectOSDFailures(pf.At, pf.OSDs...)
	return nil
}

// PlanAll plans every fault of a profile.
func (f *FaultInjector) PlanAll(specs []FaultSpec) ([]PlannedFault, error) {
	out := make([]PlannedFault, 0, len(specs))
	for i, s := range specs {
		pf, err := f.Plan(s)
		if err != nil {
			return nil, fmt.Errorf("core: fault %d: %w", i, err)
		}
		out = append(out, pf)
	}
	return out, nil
}

package core

import (
	"fmt"

	"repro/internal/blockdev"
	"repro/internal/cluster"
	"repro/internal/logsys"
	"repro/internal/msgbus"
	"repro/internal/simclock"
	"repro/internal/wamodel"

	"repro/internal/iostat"
)

// replayLine is one framework log line recorded during the populate
// phase, replayed into every fork's log pipeline so forked runs ship the
// same timeline a fresh run would.
type replayLine struct {
	t    simclock.Time
	node string
	msg  string
}

// Snapshot is a populated experiment environment captured after the
// workload phase: the frozen cluster image plus the populate-phase
// measurements and log lines. It is immutable and safe to Run
// concurrently; each Run forks the cluster copy-on-write and pays only
// for recovery-side work.
type Snapshot struct {
	profile   Profile
	layoutKey string
	snap      *cluster.Snapshot

	written  int64
	used     int64
	wa       wamodel.Report
	contents map[string][]byte // payload bytes, read-only
	logs     []replayLine
}

// LayoutKey returns the layout hash of the profile the snapshot was
// populated from.
func (s *Snapshot) LayoutKey() string { return s.layoutKey }

// Populate builds a cluster for the profile, runs the populate phase
// (pool creation, workload, storage-overhead measurement), and captures
// the result as an immutable Snapshot. Faults, tuning, cache and network
// settings of the profile are irrelevant here — only layout-relevant
// fields shape the snapshot — so one Populate can serve every profile
// sharing the same LayoutKey.
func Populate(p Profile) (*Snapshot, error) {
	mgr, err := NewECManager(p)
	if err != nil {
		return nil, err
	}
	s := &Snapshot{profile: p, layoutKey: p.LayoutKey()}
	recorder := func(t simclock.Time, node, msg string) {
		s.logs = append(s.logs, replayLine{t: t, node: node, msg: msg})
	}
	cfg, err := mgr.ClusterConfig(recorder)
	if err != nil {
		return nil, err
	}
	cl, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	co := &Coordinator{mgr: mgr, cluster: cl}
	res, contents, err := co.populate()
	if err != nil {
		return nil, err
	}
	s.snap = cl.Snapshot()
	s.written = res.WrittenBytes
	s.used = res.UsedBytes
	s.wa = res.WA
	s.contents = contents
	return s, nil
}

// Run executes the recovery side of a profile on a copy-on-write fork of
// the snapshot. The profile's LayoutKey must match the snapshot's; its
// recovery-side fields (cache scheme, network, faults, tuning) are
// applied to the fork. Results are bit-identical to core.Run on a
// freshly built cluster.
func (s *Snapshot) Run(p Profile) (*Result, error) {
	if key := p.LayoutKey(); key != s.layoutKey {
		return nil, fmt.Errorf("core: profile %q layout %s does not match snapshot layout %s", p.Name, key[:12], s.layoutKey[:12])
	}
	mgr, err := NewECManager(p)
	if err != nil {
		return nil, err
	}
	co := &Coordinator{
		mgr:           mgr,
		workers:       map[string]*Worker{},
		loggers:       map[string]*logsys.NodeLogger{},
		broker:        msgbus.NewBroker(),
		sampler:       iostat.NewSampler(),
		classifier:    logsys.DefaultClassifier(),
		lazyProvision: true,
		provisioned:   map[int]bool{},
	}
	if err := co.broker.CreateTopic(logsys.Topic, 8); err != nil {
		return nil, err
	}
	logFn := func(t simclock.Time, node, msg string) {
		co.nodeLogger(node).Log(t, msg)
	}
	cfg, err := mgr.ClusterConfig(logFn)
	if err != nil {
		return nil, err
	}
	cl, err := s.snap.Fork(cfg)
	if err != nil {
		return nil, err
	}
	co.cluster = cl
	defer co.Close()

	// Replay the populate-phase log lines so the fork's shipped timeline
	// matches a fresh run's.
	for _, rl := range s.logs {
		co.nodeLogger(rl.node).Log(rl.t, rl.msg)
	}
	// Track devices from a zero baseline: the forked counters carry the
	// populate traffic, exactly like a fresh device tracked from birth.
	for _, osd := range cl.OSDs() {
		if err := co.sampler.TrackFrom(fmt.Sprintf("osd.%d", osd.ID), osd.Store.Device(), blockdev.Stats{}); err != nil {
			return nil, err
		}
	}

	res := &Result{Profile: p, WrittenBytes: s.written, UsedBytes: s.used, WA: s.wa}
	return co.finish(res, s.contents)
}

package core

import (
	"testing"
)

func TestCorruptionExperimentEndToEnd(t *testing.T) {
	p := fastProfile()
	p.Workload.Objects = 20
	p.Workload.ObjectSize = 256 << 10
	p.Pool.StripeUnit = 64 << 10
	p.Workload.Payload = true
	p.Faults = []FaultSpec{{Level: FaultLevelCorruption, Count: 5, AtSeconds: 1}}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovery != nil {
		t.Fatal("corruption-only profile should not run availability recovery")
	}
	if res.Scrub == nil {
		t.Fatal("no scrub report")
	}
	if len(res.Scrub.Inconsistent) != 5 {
		t.Fatalf("scrub found %d inconsistencies, want 5", len(res.Scrub.Inconsistent))
	}
	if res.RepairedInconsistent != 5 {
		t.Fatalf("repaired %d, want 5", res.RepairedInconsistent)
	}
}

func TestCorruptionPlusDeviceFault(t *testing.T) {
	p := fastProfile()
	p.Workload.Objects = 24
	p.Faults = []FaultSpec{
		{Level: FaultLevelCorruption, Count: 3, AtSeconds: 1},
		{Level: FaultLevelDevice, Count: 1, AtSeconds: 5},
	}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scrub == nil || len(res.Scrub.Inconsistent) != 3 {
		t.Fatalf("scrub: %+v", res.Scrub)
	}
	if res.Recovery == nil || !res.Recovery.Done() {
		t.Fatal("device fault recovery missing")
	}
}

func TestCorruptionPlanValidation(t *testing.T) {
	p := fastProfile()
	p.Faults = []FaultSpec{{Level: FaultLevelCorruption, Count: 1_000_000, AtSeconds: 1}}
	if _, err := Run(p); err == nil {
		t.Fatal("corrupting more chunks than objects should fail planning")
	}
	p.Faults = []FaultSpec{{Level: "bitflip", Count: 1}}
	if err := p.Validate(); err == nil {
		t.Fatal("unknown level accepted")
	}
}

func TestCorruptionProfileValid(t *testing.T) {
	p := DefaultProfile()
	p.Faults = []FaultSpec{{Level: FaultLevelCorruption, Count: 100, AtSeconds: 0}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Package core implements ECFault, the framework of "Revisiting Erasure
// Codes: A Configuration Perspective" (HotStorage '24): a Controller
// (EC Manager, Fault Injector, Coordinator), per-node Workers that
// provision virtual NVMe-oF disks and apply faults, and Loggers that ship
// classified log entries to the Coordinator for global analysis.
//
// An experiment is described by a Profile; the Coordinator builds the
// target DSS, provisions storage, runs the workload, injects the profiled
// faults, measures the recovery cycle, and returns a Result holding the
// recovery timeline, storage-overhead measurements and merged logs.
package core

package core

import (
	"reflect"
	"testing"
)

func TestLayoutKeyGroupsCells(t *testing.T) {
	base := fastProfile()
	key := base.LayoutKey()

	// Recovery-side changes keep the key.
	same := []func(*Profile){
		func(p *Profile) { p.Name = "renamed" },
		func(p *Profile) { p.Backend.CacheScheme = SchemeKVOptimized },
		func(p *Profile) { p.Backend.CacheGB = 1 },
		func(p *Profile) { p.Cluster.NetworkGbps = 10 },
		func(p *Profile) { p.Faults = nil },
		func(p *Profile) { p.Faults[0].Level = FaultLevelDevice },
		func(p *Profile) { p.Tuning.MarkOutIntervalSeconds = 60 },
		func(p *Profile) { p.Tuning.MaxBackfills = 4 },
	}
	for i, mutate := range same {
		p := fastProfile()
		mutate(&p)
		if p.LayoutKey() != key {
			t.Errorf("recovery-side mutation %d changed the layout key", i)
		}
	}

	// Layout-relevant changes must change the key.
	diff := []func(*Profile){
		func(p *Profile) { p.Cluster.Hosts = 16 },
		func(p *Profile) { p.Cluster.OSDsPerHost = 3 },
		func(p *Profile) { p.Cluster.DeviceCapacityGB = 16 },
		func(p *Profile) { p.Cluster.Racks = 3 },
		func(p *Profile) { p.Pool.Plugin = "clay" },
		func(p *Profile) { p.Pool.K = 8 },
		func(p *Profile) { p.Pool.M = 4 },
		func(p *Profile) { p.Pool.PGNum = 64 },
		func(p *Profile) { p.Pool.StripeUnit = 4096 },
		func(p *Profile) { p.Pool.FailureDomain = "osd" },
		func(p *Profile) { p.Backend.MinAllocSize = 65536 },
		func(p *Profile) { p.Workload.Objects = 61 },
		func(p *Profile) { p.Workload.ObjectSize = 4 << 20 },
		func(p *Profile) { p.Workload.SizeJitter = 0.1 },
		func(p *Profile) { p.Workload.Seed = 99 },
		func(p *Profile) { p.Workload.Payload = true },
	}
	for i, mutate := range diff {
		p := fastProfile()
		mutate(&p)
		if p.LayoutKey() == key {
			t.Errorf("layout mutation %d did not change the layout key", i)
		}
	}

	// Normalization: Clay D=0 and D=k+m-1 share a key.
	c1 := fastProfile()
	c1.Pool.Plugin = "clay"
	c2 := c1
	c2.Pool.D = c2.Pool.K + c2.Pool.M - 1
	if c1.LayoutKey() != c2.LayoutKey() {
		t.Error("clay D normalization broken")
	}
	// Failure domain "" and "host" share a key.
	f1 := fastProfile()
	f1.Pool.FailureDomain = ""
	f2 := fastProfile()
	f2.Pool.FailureDomain = "host"
	if f1.LayoutKey() != f2.LayoutKey() {
		t.Error("failure-domain normalization broken")
	}
}

// TestSnapshotRunMatchesFreshRun is the core bit-identity check: running
// a cell on a snapshot fork must produce exactly the measurements a
// fresh build produces, including recovery timeline, WA, logs, iostat
// samples and timeline entries.
func TestSnapshotRunMatchesFreshRun(t *testing.T) {
	p := fastProfile()

	fresh, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := Populate(p)
	if err != nil {
		t.Fatal(err)
	}
	forked, err := snap.Run(p)
	if err != nil {
		t.Fatal(err)
	}

	if *fresh.Recovery != *forked.Recovery {
		t.Fatalf("recovery diverged:\nfresh %+v\nfork  %+v", fresh.Recovery, forked.Recovery)
	}
	if fresh.WA != forked.WA {
		t.Fatalf("WA diverged: %+v vs %+v", fresh.WA, forked.WA)
	}
	if fresh.UsedBytes != forked.UsedBytes || fresh.WrittenBytes != forked.WrittenBytes {
		t.Fatalf("bytes diverged: used %d/%d written %d/%d",
			fresh.UsedBytes, forked.UsedBytes, fresh.WrittenBytes, forked.WrittenBytes)
	}
	if fresh.LogLinesShipped != forked.LogLinesShipped || fresh.LogLinesDropped != forked.LogLinesDropped {
		t.Fatalf("log counts diverged: shipped %d/%d dropped %d/%d",
			fresh.LogLinesShipped, forked.LogLinesShipped, fresh.LogLinesDropped, forked.LogLinesDropped)
	}
	if !reflect.DeepEqual(fresh.IOSamples, forked.IOSamples) {
		t.Fatalf("iostat samples diverged (%d vs %d)", len(fresh.IOSamples), len(forked.IOSamples))
	}
	if len(fresh.Timeline) != len(forked.Timeline) {
		t.Fatalf("timeline length %d vs %d", len(fresh.Timeline), len(forked.Timeline))
	}
	for i := range fresh.Timeline {
		if fresh.Timeline[i] != forked.Timeline[i] {
			t.Fatalf("timeline[%d] %+v vs %+v", i, fresh.Timeline[i], forked.Timeline[i])
		}
	}
}

// TestSnapshotSharedAcrossCacheSchemes exercises the fig2a pattern: one
// populate serving cells that differ only in the cache scheme, each
// matching its fresh-built twin.
func TestSnapshotSharedAcrossCacheSchemes(t *testing.T) {
	base := fastProfile()
	snap, err := Populate(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []string{SchemeKVOptimized, SchemeDataOptimized, SchemeAutotune} {
		p := fastProfile()
		p.Name = "cell-" + scheme
		p.Backend.CacheScheme = scheme
		if p.LayoutKey() != snap.LayoutKey() {
			t.Fatalf("scheme %s changed the layout key", scheme)
		}
		forked, err := snap.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		if *fresh.Recovery != *forked.Recovery {
			t.Fatalf("scheme %s diverged:\nfresh %+v\nfork  %+v", scheme, fresh.Recovery, forked.Recovery)
		}
	}
}

func TestSnapshotRunPayloadVerification(t *testing.T) {
	p := fastProfile()
	p.Workload.Objects = 6
	p.Workload.ObjectSize = 64 << 10
	p.Workload.Payload = true
	snap, err := Populate(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := snap.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PayloadVerified || res.PayloadErrors != 0 {
		t.Fatalf("payload verification failed on fork: %+v", res)
	}
	// A second fork must verify too (shared contents, isolated stores).
	res2, err := snap.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.PayloadVerified {
		t.Fatal("second fork failed payload verification")
	}
}

func TestSnapshotRunRejectsLayoutMismatch(t *testing.T) {
	snap, err := Populate(fastProfile())
	if err != nil {
		t.Fatal(err)
	}
	p := fastProfile()
	p.Workload.Objects = 61
	if _, err := snap.Run(p); err == nil {
		t.Fatal("layout mismatch accepted")
	}
}

func TestSnapshotRunDeviceFaultProvisionsLazily(t *testing.T) {
	p := fastProfile()
	p.Faults = []FaultSpec{{Level: FaultLevelDevice, Count: 2, Locality: LocalityDiffHosts, AtSeconds: 10}}
	snap, err := Populate(p)
	if err != nil {
		t.Fatal(err)
	}
	forked, err := snap.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if *fresh.Recovery != *forked.Recovery {
		t.Fatalf("device-fault cell diverged:\nfresh %+v\nfork  %+v", fresh.Recovery, forked.Recovery)
	}
}

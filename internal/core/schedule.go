package core

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/workload"
)

// Schedule describes a multi-round fault campaign: the failure modes
// reported in the literature arrive over time, not in one batch (§3.2
// "emulate the failure modes reported in the literature"). Each round
// injects its faults after the previous round's recovery completes plus a
// gap, and is measured independently.
type Schedule struct {
	// Rounds are executed in order; each is one fault batch followed by a
	// full recovery cycle.
	Rounds []FaultSpec `json:"rounds"`
	// GapSeconds is the quiet time between a completed recovery and the
	// next round's injection.
	GapSeconds float64 `json:"gap_seconds"`
}

// RoundResult is the measurement of one schedule round.
type RoundResult struct {
	Round    int
	Fault    FaultSpec
	Plan     PlannedFault
	Recovery *cluster.RecoveryResult
}

// ScheduleResult aggregates a campaign.
type ScheduleResult struct {
	Rounds []RoundResult
	// Health is the cluster health string after the last round.
	Health string
	// TotalRepairedChunks sums chunk repairs across rounds.
	TotalRepairedChunks int
}

// RunSchedule executes a multi-round fault campaign against a fresh
// environment built from the profile (whose own Faults list is ignored in
// favor of the schedule).
func RunSchedule(p Profile, sched Schedule) (*ScheduleResult, error) {
	if len(sched.Rounds) == 0 {
		return nil, fmt.Errorf("core: schedule has no rounds")
	}
	p.Faults = nil
	if err := p.Validate(); err != nil {
		return nil, err
	}
	co, err := NewCoordinator(p)
	if err != nil {
		return nil, err
	}
	defer co.Close()
	cl := co.Cluster()
	if _, err := cl.CreatePool(co.PoolConfig()); err != nil {
		return nil, err
	}
	objs, err := workloadSpecFor(p).Objects()
	if err != nil {
		return nil, err
	}
	if err := cl.BulkLoad(p.Pool.Name, objs); err != nil {
		return nil, err
	}

	out := &ScheduleResult{}
	inj := NewFaultInjector(cl, p.Pool.Name)
	gap := time.Duration(sched.GapSeconds * float64(time.Second))
	for round, spec := range sched.Rounds {
		// Inject relative to the current simulated time.
		at := cl.Sim().Now() + gap + time.Duration(spec.AtSeconds*float64(time.Second))
		spec.AtSeconds = at.Seconds()
		pf, err := inj.Plan(spec)
		if err != nil {
			return nil, fmt.Errorf("core: round %d: %w", round, err)
		}
		if err := inj.Inject(pf); err != nil {
			return nil, fmt.Errorf("core: round %d: %w", round, err)
		}
		if spec.Level == FaultLevelCorruption {
			report, err := cl.ScrubPool(p.Pool.Name)
			if err != nil {
				return nil, err
			}
			repaired, err := cl.RepairInconsistent(p.Pool.Name, report)
			if err != nil {
				return nil, err
			}
			out.TotalRepairedChunks += repaired
			out.Rounds = append(out.Rounds, RoundResult{Round: round, Fault: spec, Plan: pf})
			continue
		}
		rec, err := cl.RecoverPool(p.Pool.Name)
		if err != nil {
			return nil, fmt.Errorf("core: round %d recovery: %w", round, err)
		}
		out.TotalRepairedChunks += rec.RepairedChunks
		out.Rounds = append(out.Rounds, RoundResult{Round: round, Fault: spec, Plan: pf, Recovery: rec})
		cl.ResetFailureState()
	}
	out.Health = cl.Health().String()
	return out, nil
}

// workloadSpecFor builds the workload spec from a profile (shared with
// the Coordinator's Run path).
func workloadSpecFor(p Profile) workload.Spec {
	return workload.Spec{
		NamePrefix: "obj",
		Count:      p.Workload.Objects,
		ObjectSize: p.Workload.ObjectSize,
		SizeJitter: p.Workload.SizeJitter,
		Seed:       p.Workload.Seed,
	}
}

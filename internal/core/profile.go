package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"repro/internal/bluestore"
	"repro/internal/erasure"
)

// Fault levels and localities (§3.2). Corruption extends the prototype's
// two levels with the silent-corruption fault class of CORDS [14], which
// the paper's related work discusses: wrong bytes, no I/O error, caught
// only by a deep scrub.
const (
	FaultLevelNode       = "node"
	FaultLevelDevice     = "device"
	FaultLevelCorruption = "corruption"

	LocalitySameHost  = "same-host"
	LocalityDiffHosts = "diff-hosts"
)

// Cache scheme names (Table 2).
const (
	SchemeKVOptimized   = "kv-optimized"
	SchemeDataOptimized = "data-optimized"
	SchemeAutotune      = "autotune"
)

// ErrInvalidProfile wraps all profile validation failures.
var ErrInvalidProfile = errors.New("core: invalid profile")

// ClusterSpec sizes the DSS under test.
type ClusterSpec struct {
	Hosts            int     `json:"hosts"`
	OSDsPerHost      int     `json:"osds_per_host"`
	DeviceCapacityGB int     `json:"device_capacity_gb"`
	NetworkGbps      float64 `json:"network_gbps"`
	// Racks, when > 0, spreads hosts over rack buckets, enabling the
	// "rack" failure domain.
	Racks int `json:"racks,omitempty"`
}

// PoolSpec is the erasure-coded pool configuration (Table 1 rows: EC
// plugin/technique, parameters, failure domain, pg_num, stripe_unit).
type PoolSpec struct {
	Name          string `json:"name"`
	Plugin        string `json:"plugin"` // e.g. jerasure_reed_sol_van, jerasure_cauchy_orig, isa_reed_sol_van, clay
	K             int    `json:"k"`
	M             int    `json:"m"`
	D             int    `json:"d,omitempty"` // Clay helpers; 0 defaults to k+m-1
	PGNum         int    `json:"pg_num"`
	StripeUnit    int64  `json:"stripe_unit"`
	FailureDomain string `json:"failure_domain"` // osd, host, rack
}

// BackendSpec is the storage-backend configuration (Table 1 rows: backend
// and BlueStore cache).
type BackendSpec struct {
	// CacheScheme selects a named Table 2 scheme; CustomRatios overrides
	// it when non-nil.
	CacheScheme  string                 `json:"cache_scheme"`
	CustomRatios *bluestore.CacheConfig `json:"custom_ratios,omitempty"`
	CacheGB      float64                `json:"cache_gb"`
	MinAllocSize int64                  `json:"min_alloc_size"`
}

// WorkloadSpec is the client workload (§4.1).
type WorkloadSpec struct {
	Objects    int     `json:"objects"`
	ObjectSize int64   `json:"object_size"`
	SizeJitter float64 `json:"size_jitter"`
	Seed       int64   `json:"seed"`
	// Payload stores and verifies real bytes end to end; practical for
	// small workloads only.
	Payload bool `json:"payload,omitempty"`
}

// FaultSpec describes one fault-injection action.
type FaultSpec struct {
	Level     string  `json:"level"`              // node or device
	Count     int     `json:"count"`              // nodes or devices to fail
	Locality  string  `json:"locality,omitempty"` // same-host or diff-hosts (device level)
	AtSeconds float64 `json:"at_seconds"`         // injection time
	OSDs      []int   `json:"osds,omitempty"`     // explicit targets override planning
}

// TuningSpec overrides selected Ceph-style daemon settings. Zero values
// keep the defaults (600 s mon_osd_down_out_interval, osd_max_backfills=1,
// ~20% recovery bandwidth share).
type TuningSpec struct {
	MarkOutIntervalSeconds float64 `json:"mark_out_interval_seconds,omitempty"`
	MaxBackfills           int     `json:"max_backfills,omitempty"`
	RecoveryBWFraction     float64 `json:"recovery_bw_fraction,omitempty"`
	RecoveryMaxActive      int     `json:"recovery_max_active,omitempty"`
}

// Profile is a complete experimental profile, the unit the EC Manager
// manages (§3, Controller).
type Profile struct {
	Name     string       `json:"name"`
	Cluster  ClusterSpec  `json:"cluster"`
	Pool     PoolSpec     `json:"pool"`
	Backend  BackendSpec  `json:"backend"`
	Workload WorkloadSpec `json:"workload"`
	Faults   []FaultSpec  `json:"faults"`
	Tuning   TuningSpec   `json:"tuning,omitempty"`
}

// DefaultProfile is the paper's baseline: a 31-VM-shaped cluster (30 OSD
// hosts x 2 NVMe volumes), RS(12,9), pg_num=256, 4 MiB stripe unit,
// autotuned cache, the 10,000 x 64 MB workload, and one OSD-host failure.
func DefaultProfile() Profile {
	return Profile{
		Name: "paper-default",
		Cluster: ClusterSpec{
			Hosts:            30,
			OSDsPerHost:      2,
			DeviceCapacityGB: 100,
			// m5.xlarge sustained baseline; the 25 Gb/s the paper quotes
			// is the burst/placement-group figure.
			NetworkGbps: 1.25,
		},
		Pool: PoolSpec{
			Name:          "ecpool",
			Plugin:        "jerasure_reed_sol_van",
			K:             9,
			M:             3,
			PGNum:         256,
			StripeUnit:    4 << 20,
			FailureDomain: "host",
		},
		Backend: BackendSpec{
			CacheScheme:  SchemeAutotune,
			CacheGB:      3,
			MinAllocSize: 4096,
		},
		Workload: WorkloadSpec{
			Objects:    10000,
			ObjectSize: 64 << 20,
		},
		Faults: []FaultSpec{{Level: FaultLevelNode, Count: 1, AtSeconds: 10}},
	}
}

// ClayProfile is the baseline with the Clay(12,9,11) pool.
func ClayProfile() Profile {
	p := DefaultProfile()
	p.Name = "paper-default-clay"
	p.Pool.Plugin = "clay"
	p.Pool.D = 11
	return p
}

// LayoutKey hashes exactly the profile fields that shape a populated
// cluster's on-disk state: topology, pool/EC geometry, the backend's
// allocation granularity, and the workload. Two profiles with equal keys
// produce byte-identical clusters after the populate phase, so one can
// run on a copy-on-write fork of the other's snapshot. Recovery-side
// knobs — cache scheme and size, network bandwidth, faults, tuning — are
// deliberately excluded. Fields are normalized the same way the EC
// manager and cluster resolve them, so e.g. Clay with D=0 and D=k+m-1
// share a key.
func (p Profile) LayoutKey() string {
	capGB := p.Cluster.DeviceCapacityGB
	if capGB <= 0 {
		capGB = 100
	}
	d := p.Pool.D
	if p.Pool.Plugin == "clay" && d == 0 {
		d = p.Pool.K + p.Pool.M - 1
	}
	fd := p.Pool.FailureDomain
	if fd == "" {
		fd = "host"
	}
	minAlloc := p.Backend.MinAllocSize
	if minAlloc <= 0 {
		minAlloc = 4096
	}
	sum := sha256.Sum256([]byte(fmt.Sprintf(
		"layout/v1|%d|%d|%d|%d|%s|%s|%d|%d|%d|%d|%d|%s|%d|%d|%d|%g|%d|%t",
		p.Cluster.Hosts, p.Cluster.OSDsPerHost, capGB, p.Cluster.Racks,
		p.Pool.Name, p.Pool.Plugin, p.Pool.K, p.Pool.M, d, p.Pool.PGNum, p.Pool.StripeUnit, fd,
		minAlloc,
		p.Workload.Objects, p.Workload.ObjectSize, p.Workload.SizeJitter, p.Workload.Seed, p.Workload.Payload,
	)))
	return hex.EncodeToString(sum[:])
}

// ScaleWorkload divides the object count by factor (>= 1), preserving
// per-object behaviour; used to run paper-shaped experiments quickly. The
// mark-out interval is scaled down with the workload so the ratio of the
// checking period to the EC recovery period — which the paper's
// normalized figures depend on — is preserved at any scale.
func (p Profile) ScaleWorkload(factor int) Profile {
	if factor > 1 {
		p.Workload.Objects /= factor
		if p.Workload.Objects < 1 {
			p.Workload.Objects = 1
		}
		base := p.Tuning.MarkOutIntervalSeconds
		if base == 0 {
			base = 600
		}
		p.Tuning.MarkOutIntervalSeconds = base / float64(factor)
	}
	return p
}

// Validate checks the profile against the white-box fault-tolerance rule
// and basic geometry constraints.
func (p *Profile) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrInvalidProfile, fmt.Sprintf(format, args...))
	}
	if p.Cluster.Hosts <= 0 || p.Cluster.OSDsPerHost <= 0 {
		return bad("cluster needs hosts and osds per host")
	}
	if p.Pool.K <= 0 || p.Pool.M <= 0 {
		return bad("pool needs k > 0 and m > 0")
	}
	if p.Pool.PGNum <= 0 {
		return bad("pool needs pg_num >= 1")
	}
	if p.Pool.StripeUnit <= 0 {
		return bad("pool needs a positive stripe_unit")
	}
	found := false
	for _, name := range erasure.Plugins() {
		if name == p.Pool.Plugin {
			found = true
			break
		}
	}
	if !found {
		return bad("unknown EC plugin %q (have %v)", p.Pool.Plugin, erasure.Plugins())
	}
	switch p.Pool.FailureDomain {
	case "osd", "host", "rack", "":
	default:
		return bad("unknown failure domain %q", p.Pool.FailureDomain)
	}
	if p.Pool.FailureDomain == "host" || p.Pool.FailureDomain == "" {
		if p.Cluster.Hosts < p.Pool.K+p.Pool.M {
			return bad("need >= n=%d hosts for host failure domain, have %d", p.Pool.K+p.Pool.M, p.Cluster.Hosts)
		}
	}
	if p.Workload.Objects <= 0 || p.Workload.ObjectSize <= 0 {
		return bad("workload needs objects and object size")
	}
	switch p.Backend.CacheScheme {
	case SchemeKVOptimized, SchemeDataOptimized, SchemeAutotune, "":
	default:
		if p.Backend.CustomRatios == nil {
			return bad("unknown cache scheme %q", p.Backend.CacheScheme)
		}
	}
	for i, f := range p.Faults {
		switch f.Level {
		case FaultLevelNode, FaultLevelDevice, FaultLevelCorruption:
		default:
			return bad("fault %d: unknown level %q", i, f.Level)
		}
		if f.Count <= 0 && len(f.OSDs) == 0 {
			return bad("fault %d: needs count or explicit osds", i)
		}
		switch f.Locality {
		case "", LocalitySameHost, LocalityDiffHosts:
		default:
			return bad("fault %d: unknown locality %q", i, f.Locality)
		}
		// White-box guarantee (§3.2): never exceed the fault tolerance
		// within the failure domain.
		if f.Level == FaultLevelDevice && f.Count > p.Pool.M {
			return bad("fault %d: %d device failures exceed m=%d", i, f.Count, p.Pool.M)
		}
		if f.Level == FaultLevelNode && f.Count > p.Pool.M {
			return bad("fault %d: %d node failures exceed m=%d", i, f.Count, p.Pool.M)
		}
		if f.AtSeconds < 0 {
			return bad("fault %d: negative injection time", i)
		}
	}
	return nil
}

// MarshalJSON-friendly load/save helpers.

// LoadProfile reads and validates a profile from a JSON file.
func LoadProfile(path string) (Profile, error) {
	var p Profile
	data, err := os.ReadFile(path)
	if err != nil {
		return p, err
	}
	if err := json.Unmarshal(data, &p); err != nil {
		return p, fmt.Errorf("core: parsing %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return p, err
	}
	return p, nil
}

// SaveProfile writes a profile as indented JSON.
func SaveProfile(p Profile, path string) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ConfigSurface returns the Table 1 configuration dimensions this
// framework can vary, for documentation and the coverage test.
func ConfigSurface() map[string][]string {
	return map[string][]string{
		"storage backend": {"bluestore"},
		"bluestore cache": {SchemeKVOptimized, SchemeDataOptimized, SchemeAutotune, "custom ratios"},
		"interface":       {"rados"},
		"pg_num":          {"customized"},
		"ec plugin":       erasure.Plugins(),
		"ec technique":    {"reed_sol_van", "cauchy_orig", "clay"},
		"failure domain":  {"osd", "host", "rack"},
		"device class":    {"nvme-of virtual"},
		"ec parameters":   {"k", "m", "d", "stripe_unit"},
		"fault level":     {FaultLevelNode, FaultLevelDevice},
		"fault locality":  {LocalitySameHost, LocalityDiffHosts},
	}
}

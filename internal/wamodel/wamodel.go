// Package wamodel implements the write-amplification formulas of §4.4:
// the division-and-padding chunk size
//
//	S_chunk = S_unit * ceil(S_object / (k * S_unit))
//
// and the WA estimate
//
//	WA = (n * S_chunk + S_meta) / S_object
//
// which lower-bounds the measured OSD-level amplification when S_meta is
// unknown (set to zero).
package wamodel

import "fmt"

// ChunkSize returns S_chunk for an object of objectSize bytes under an
// (n,k) code with the given stripe unit, applying Ceph's
// division-and-padding policy: undersized chunks pad up to one stripe
// unit; oversized chunks split into stripe-unit encoding units, the last
// padded.
func ChunkSize(objectSize int64, k int, stripeUnit int64) (int64, error) {
	if objectSize < 0 || k <= 0 || stripeUnit <= 0 {
		return 0, fmt.Errorf("wamodel: invalid arguments object=%d k=%d unit=%d", objectSize, k, stripeUnit)
	}
	if objectSize == 0 {
		return 0, nil
	}
	units := (objectSize + int64(k)*stripeUnit - 1) / (int64(k) * stripeUnit)
	return units * stripeUnit, nil
}

// TheoreticalWA is the textbook n/k storage overhead.
func TheoreticalWA(n, k int) float64 {
	return float64(n) / float64(k)
}

// EstimateWA evaluates the paper's formula for one object. metaBytes is
// S_meta; pass 0 for the lower bound.
func EstimateWA(objectSize int64, n, k int, stripeUnit, metaBytes int64) (float64, error) {
	if n < k {
		return 0, fmt.Errorf("wamodel: n=%d < k=%d", n, k)
	}
	chunk, err := ChunkSize(objectSize, k, stripeUnit)
	if err != nil {
		return 0, err
	}
	if objectSize == 0 {
		return 0, nil
	}
	return (float64(n)*float64(chunk) + float64(metaBytes)) / float64(objectSize), nil
}

// LowerBoundWA is EstimateWA with S_meta = 0: computable from (n, k),
// stripe unit and object size alone, and always a lower bound of the
// measured Actual WA Factor.
func LowerBoundWA(objectSize int64, n, k int, stripeUnit int64) (float64, error) {
	return EstimateWA(objectSize, n, k, stripeUnit, 0)
}

// Report compares theory, the formula bound, and a measurement.
type Report struct {
	N, K          int
	ObjectSize    int64
	StripeUnit    int64
	Theoretical   float64 // n/k
	FormulaBound  float64 // paper formula with S_meta = 0
	Measured      float64 // actual usage / write size
	DiffVsTheory  float64 // (Measured - Theoretical) / Theoretical
	DiffVsFormula float64 // (Measured - FormulaBound) / FormulaBound
}

// NewReport builds a Report from a measured actual WA factor.
func NewReport(objectSize int64, n, k int, stripeUnit int64, measured float64) (Report, error) {
	bound, err := LowerBoundWA(objectSize, n, k, stripeUnit)
	if err != nil {
		return Report{}, err
	}
	th := TheoreticalWA(n, k)
	return Report{
		N: n, K: k,
		ObjectSize:    objectSize,
		StripeUnit:    stripeUnit,
		Theoretical:   th,
		FormulaBound:  bound,
		Measured:      measured,
		DiffVsTheory:  (measured - th) / th,
		DiffVsFormula: (measured - bound) / bound,
	}, nil
}

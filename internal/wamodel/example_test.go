package wamodel_test

import (
	"fmt"

	"repro/internal/wamodel"
)

// The paper's §4.4 example: a 64 MiB object under RS(12,9) with a 4 MiB
// stripe unit pads each chunk to 8 MiB, so the real storage overhead is
// 1.5x before any metadata — well above the textbook n/k = 1.33.
func Example() {
	chunk, _ := wamodel.ChunkSize(64<<20, 9, 4<<20)
	bound, _ := wamodel.LowerBoundWA(64<<20, 12, 9, 4<<20)
	fmt.Printf("S_chunk = %d MiB\n", chunk>>20)
	fmt.Printf("n/k     = %.3f\n", wamodel.TheoreticalWA(12, 9))
	fmt.Printf("formula = %.3f\n", bound)
	// Output:
	// S_chunk = 8 MiB
	// n/k     = 1.333
	// formula = 1.500
}

// Comparing a measurement against both bounds, as Table 3 does.
func ExampleNewReport() {
	rep, _ := wamodel.NewReport(64<<20, 12, 9, 4<<20, 1.76)
	fmt.Printf("+%.1f%% vs n/k, +%.1f%% vs formula\n",
		rep.DiffVsTheory*100, rep.DiffVsFormula*100)
	// Output:
	// +32.0% vs n/k, +17.3% vs formula
}

package wamodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestChunkSizePaperExamples(t *testing.T) {
	// 64 MiB object, k=9, 4 MiB stripe unit: 2 units of 4 MiB -> 8 MiB.
	c, err := ChunkSize(64<<20, 9, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if c != 8<<20 {
		t.Fatalf("chunk = %d, want %d", c, 8<<20)
	}
	// k=12: 64/(12*4) = 1.33 -> 2 units -> 8 MiB.
	c, _ = ChunkSize(64<<20, 12, 4<<20)
	if c != 8<<20 {
		t.Fatalf("chunk = %d", c)
	}
	// Tiny object pads to one full stripe unit.
	c, _ = ChunkSize(100, 9, 4096)
	if c != 4096 {
		t.Fatalf("chunk = %d", c)
	}
	// 4 KiB unit, 64 MiB object, k=9: ceil(64Mi/36Ki)=1821 units.
	c, _ = ChunkSize(64<<20, 9, 4096)
	if c != 1821*4096 {
		t.Fatalf("chunk = %d, want %d", c, 1821*4096)
	}
}

func TestChunkSizeValidation(t *testing.T) {
	if _, err := ChunkSize(-1, 9, 4096); err == nil {
		t.Fatal("negative object accepted")
	}
	if _, err := ChunkSize(1, 0, 4096); err == nil {
		t.Fatal("zero k accepted")
	}
	if _, err := ChunkSize(1, 9, 0); err == nil {
		t.Fatal("zero unit accepted")
	}
	c, err := ChunkSize(0, 9, 4096)
	if err != nil || c != 0 {
		t.Fatal("zero object should give zero chunk")
	}
}

func TestTheoreticalWA(t *testing.T) {
	if math.Abs(TheoreticalWA(12, 9)-1.3333) > 0.001 {
		t.Fatal("RS(12,9) theory wrong")
	}
	if TheoreticalWA(15, 12) != 1.25 {
		t.Fatal("RS(15,12) theory wrong")
	}
}

func TestEstimateWAPaperShape(t *testing.T) {
	// With 4 MiB units and 64 MiB objects the padding-only bound is 1.5
	// for RS(12,9) and 1.875 for RS(15,12): both already above n/k,
	// demonstrating the paper's point.
	wa, err := LowerBoundWA(64<<20, 12, 9, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wa-1.5) > 1e-9 {
		t.Fatalf("bound = %f", wa)
	}
	wa, _ = LowerBoundWA(64<<20, 15, 12, 4<<20)
	if math.Abs(wa-1.875) > 1e-9 {
		t.Fatalf("bound = %f", wa)
	}
	// Adding S_meta raises the estimate.
	withMeta, _ := EstimateWA(64<<20, 12, 9, 4<<20, 17<<20)
	if withMeta <= 1.5 {
		t.Fatal("meta must increase the estimate")
	}
}

func TestEstimateWAValidation(t *testing.T) {
	if _, err := EstimateWA(100, 9, 12, 4096, 0); err == nil {
		t.Fatal("n < k accepted")
	}
	wa, err := EstimateWA(0, 12, 9, 4096, 0)
	if err != nil || wa != 0 {
		t.Fatal("zero object should estimate 0")
	}
}

func TestBoundIsAlwaysAtLeastTheory(t *testing.T) {
	f := func(objRaw uint32, kRaw, mRaw, unitRaw uint8) bool {
		object := int64(objRaw%(256<<20)) + 1
		k := int(kRaw%16) + 1
		n := k + int(mRaw%4) + 1
		unit := int64(1) << (unitRaw % 24)
		bound, err := LowerBoundWA(object, n, k, unit)
		if err != nil {
			return false
		}
		return bound >= TheoreticalWA(n, k)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNewReport(t *testing.T) {
	r, err := NewReport(64<<20, 12, 9, 4<<20, 1.76)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.DiffVsTheory-0.32) > 0.01 {
		t.Fatalf("DiffVsTheory = %f, want ~0.32 (Table 3)", r.DiffVsTheory)
	}
	if r.DiffVsFormula >= r.DiffVsTheory {
		t.Fatal("formula must be a tighter bound than n/k")
	}
	if _, err := NewReport(1, 3, 9, 1, 1); err == nil {
		t.Fatal("invalid geometry accepted")
	}
}

// Package durability estimates the reliability of an erasure code
// deployment: mean time to data loss (MTTDL) from an absorbing Markov
// chain over concurrent-failure states, and annual durability "nines".
// For MDS codes the chain's absorption happens exactly at m+1 failures;
// for pattern-dependent codes (LRC, SHEC) the per-state fatality
// probabilities come from sampling the code's CanRecover over random
// failure patterns, so locality-induced durability loss is captured.
//
// This complements the paper's storage-overhead analysis: stripe-unit and
// (n,k) choices trade write amplification against durability, and the
// tuner can weigh both.
package durability

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/erasure"
)

// Params describes the deployment.
type Params struct {
	// DeviceAFR is the annualized failure rate of one device (e.g. 0.02
	// for 2%/year).
	DeviceAFR float64
	// MTTRHours is the mean time to repair one failed chunk (detection +
	// recovery), e.g. from a RecoveryResult.
	MTTRHours float64
	// Samples bounds the Monte Carlo sampling per failure count for
	// pattern-dependent codes (default 2000).
	Samples int
	// Seed drives the sampling.
	Seed int64
}

func (p *Params) defaults() error {
	if p.DeviceAFR <= 0 || p.DeviceAFR >= 1 {
		return fmt.Errorf("durability: AFR must be in (0,1), got %f", p.DeviceAFR)
	}
	if p.MTTRHours <= 0 {
		return fmt.Errorf("durability: MTTR must be positive, got %f", p.MTTRHours)
	}
	if p.Samples <= 0 {
		p.Samples = 2000
	}
	return nil
}

const hoursPerYear = 8766

// FatalityProfile returns, for each failure count 0..m+1, the fraction of
// uniformly random failure patterns of that size the code cannot recover.
// MDS codes yield [0, 0, ..., 0, 1]; LRC/SHEC yield intermediate values.
func FatalityProfile(code erasure.Code, samples int, seed int64) []float64 {
	if samples <= 0 {
		samples = 2000
	}
	n := code.N()
	maxLoss := code.M() + 1
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, maxLoss+1)
	for size := 1; size <= maxLoss; size++ {
		if _, ok := code.(erasure.PatternChecker); !ok {
			// MDS: exact.
			if size > code.M() {
				out[size] = 1
			}
			continue
		}
		fatal := 0
		for s := 0; s < samples; s++ {
			pattern := rng.Perm(n)[:size]
			if !erasure.CanRecover(code, pattern) {
				fatal++
			}
		}
		out[size] = float64(fatal) / float64(samples)
	}
	return out
}

// MTTDLHours computes the mean time to data loss of one stripe.
//
// States are the number of concurrently failed chunks i = 0..m; failures
// arrive at rate (n-i)*lambda, repairs complete at rate mu. In the
// practically relevant regime mu >> n*lambda the chain is
// quasi-stationary with occupancy pi_i ~ prod_{j<i}(u_j/mu), and the
// loss rate is the fatality-weighted flux out of each state:
//
//	lossRate = sum_i pi_i * u_i * q_{i+1},   MTTDL = 1/lossRate
//
// where q_{i+1} is the conditional probability that the (i+1)-th
// concurrent failure creates an unrecoverable pattern (exactly 0/1 for
// MDS codes, sampled via CanRecover for LRC/SHEC). The product form is
// numerically stable at the ~1e20-hour magnitudes MDS codes reach, where
// a direct linear-system solve loses to cancellation.
func MTTDLHours(code erasure.Code, p Params) (float64, error) {
	if err := p.defaults(); err != nil {
		return 0, err
	}
	lambda := p.DeviceAFR / hoursPerYear // per-device hourly failure rate
	mu := 1 / p.MTTRHours

	prof := FatalityProfile(code, p.Samples, p.Seed)
	// Conditional fatality of the transition into state i: fraction of
	// newly-fatal patterns among those survivable at i-1.
	q := make([]float64, len(prof))
	for i := 1; i < len(prof); i++ {
		surviving := 1 - prof[i-1]
		if surviving <= 0 {
			q[i] = 1
			continue
		}
		qi := (prof[i] - prof[i-1]) / surviving
		if qi < 0 {
			qi = 0
		}
		if qi > 1 {
			qi = 1
		}
		q[i] = qi
	}

	n := code.N()
	m := code.M()
	lossRate := 0.0
	occupancy := 1.0 // pi_0
	for i := 0; i <= m; i++ {
		up := float64(n-i) * lambda
		lossRate += occupancy * up * q[i+1]
		occupancy *= up / mu
	}
	if lossRate <= 0 {
		return math.Inf(1), nil
	}
	return 1 / lossRate, nil
}

// AnnualLossProbability converts an MTTDL to the probability of losing
// the stripe within one year (exponential approximation).
func AnnualLossProbability(mttdlHours float64) float64 {
	if mttdlHours <= 0 {
		return 1
	}
	// -Expm1 keeps precision for the astronomically durable codes where
	// 1 - exp(-x) underflows to zero.
	return -math.Expm1(-hoursPerYear / mttdlHours)
}

// Nines expresses annual durability as the conventional "number of
// nines": -log10(annual loss probability).
func Nines(mttdlHours float64) float64 {
	p := AnnualLossProbability(mttdlHours)
	if p <= 0 {
		return math.Inf(1)
	}
	return -math.Log10(p)
}

// Report bundles the durability and cost of one code.
type Report struct {
	Code            string
	N, K            int
	MTTDLHours      float64
	DurabilityNines float64
	StorageOverhead float64
}

// Evaluate produces a Report for a code under the given deployment
// parameters.
func Evaluate(code erasure.Code, p Params) (Report, error) {
	mttdl, err := MTTDLHours(code, p)
	if err != nil {
		return Report{}, err
	}
	return Report{
		Code:            code.Name(),
		N:               code.N(),
		K:               code.K(),
		MTTDLHours:      mttdl,
		DurabilityNines: Nines(mttdl),
		StorageOverhead: float64(code.N()) / float64(code.K()),
	}, nil
}

package durability

import (
	"math"
	"testing"

	"repro/internal/erasure"

	_ "repro/internal/erasure/clay"
	_ "repro/internal/erasure/lrc"
	_ "repro/internal/erasure/reedsolomon"
	_ "repro/internal/erasure/shec"
)

func mustCode(t *testing.T, plugin string, k, m, d int) erasure.Code {
	t.Helper()
	c, err := erasure.New(plugin, k, m, d)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

var defaultParams = Params{DeviceAFR: 0.02, MTTRHours: 1}

func TestParamsValidation(t *testing.T) {
	code := mustCode(t, "jerasure_reed_sol_van", 4, 2, 0)
	if _, err := MTTDLHours(code, Params{DeviceAFR: 0, MTTRHours: 1}); err == nil {
		t.Fatal("zero AFR accepted")
	}
	if _, err := MTTDLHours(code, Params{DeviceAFR: 0.02, MTTRHours: 0}); err == nil {
		t.Fatal("zero MTTR accepted")
	}
	if _, err := MTTDLHours(code, Params{DeviceAFR: 1.5, MTTRHours: 1}); err == nil {
		t.Fatal("AFR above 1 accepted")
	}
}

func TestFatalityProfileMDS(t *testing.T) {
	code := mustCode(t, "jerasure_reed_sol_van", 9, 3, 0)
	prof := FatalityProfile(code, 100, 1)
	for i := 0; i <= 3; i++ {
		if prof[i] != 0 {
			t.Fatalf("MDS fatality at %d failures = %f", i, prof[i])
		}
	}
	if prof[4] != 1 {
		t.Fatalf("MDS fatality at m+1 = %f", prof[4])
	}
}

func TestFatalityProfileLRC(t *testing.T) {
	// LRC(8,2,2): m=4, but some 4-failure patterns (a whole group) are
	// fatal while many are fine.
	code := mustCode(t, "lrc", 8, 2, 2)
	prof := FatalityProfile(code, 3000, 7)
	if prof[1] != 0 || prof[2] != 0 {
		t.Fatalf("small patterns should never be fatal: %v", prof)
	}
	if prof[4] <= 0 || prof[4] >= 1 {
		t.Fatalf("LRC 4-failure fatality should be strictly between 0 and 1, got %f", prof[4])
	}
}

func TestMoreParityMoreDurability(t *testing.T) {
	rs93 := mustCode(t, "jerasure_reed_sol_van", 9, 3, 0)
	rs92 := mustCode(t, "jerasure_reed_sol_van", 9, 2, 0)
	d3, err := MTTDLHours(rs93, defaultParams)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := MTTDLHours(rs92, defaultParams)
	if err != nil {
		t.Fatal(err)
	}
	if d3 <= d2 {
		t.Fatalf("m=3 (%e) should far outlast m=2 (%e)", d3, d2)
	}
	if d3 < 100*d2 {
		t.Fatalf("an extra parity should buy orders of magnitude: %e vs %e", d3, d2)
	}
}

func TestFasterRepairMoreDurability(t *testing.T) {
	code := mustCode(t, "jerasure_reed_sol_van", 9, 3, 0)
	fast, _ := MTTDLHours(code, Params{DeviceAFR: 0.02, MTTRHours: 0.5})
	slow, _ := MTTDLHours(code, Params{DeviceAFR: 0.02, MTTRHours: 24})
	if fast <= slow {
		t.Fatalf("faster repair must improve MTTDL: %e vs %e", fast, slow)
	}
}

func TestLRCLessDurableThanMDSSameParityCount(t *testing.T) {
	// Same n and parity count: LRC(8,2,2) has 4 parities like RS(12,8);
	// locality costs durability (some quadruples are fatal).
	lrc := mustCode(t, "lrc", 8, 2, 2)
	rs := mustCode(t, "jerasure_reed_sol_van", 8, 4, 0)
	dl, err := MTTDLHours(lrc, Params{DeviceAFR: 0.02, MTTRHours: 1, Samples: 4000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dr, err := MTTDLHours(rs, defaultParams)
	if err != nil {
		t.Fatal(err)
	}
	if dl >= dr {
		t.Fatalf("LRC (%e) must be less durable than MDS with equal parities (%e)", dl, dr)
	}
}

func TestNinesAndLossProbability(t *testing.T) {
	if p := AnnualLossProbability(hoursPerYear); math.Abs(p-(1-math.Exp(-1))) > 1e-9 {
		t.Fatalf("loss probability = %f", p)
	}
	if AnnualLossProbability(0) != 1 {
		t.Fatal("zero MTTDL should mean certain loss")
	}
	n := Nines(1e12)
	if n < 7 {
		t.Fatalf("1e12 hours should exceed 7 nines, got %f", n)
	}
	if !math.IsInf(Nines(math.Inf(1)), 1) {
		t.Fatal("infinite MTTDL should be infinite nines")
	}
}

func TestEvaluateReport(t *testing.T) {
	code := mustCode(t, "clay", 9, 3, 11)
	rep, err := Evaluate(code, defaultParams)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Code != "clay" || rep.N != 12 || rep.K != 9 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.DurabilityNines < 6 {
		t.Fatalf("Clay(12,9) with 1h MTTR should exceed 6 nines, got %f", rep.DurabilityNines)
	}
	if math.Abs(rep.StorageOverhead-4.0/3) > 1e-9 {
		t.Fatalf("overhead = %f", rep.StorageOverhead)
	}
}

func TestDeterministicSampling(t *testing.T) {
	code := mustCode(t, "shec", 10, 6, 3)
	a := FatalityProfile(code, 500, 42)
	b := FatalityProfile(code, 500, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampling not deterministic")
		}
	}
}

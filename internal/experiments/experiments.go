// Package experiments reproduces every table and figure of the paper's
// evaluation (§4): the four recovery-time studies of Figure 2, the
// recovery-timeline breakdown of Figure 3, the write-amplification
// measurements of Table 3, and the §4.4 formula validation sweep.
//
// Each experiment builds profiles from the paper's baseline, runs them
// through the ECFault coordinator, and returns the same normalized series
// the paper plots. Scale divides the workload's object count to trade
// fidelity for speed; the normalized shapes are stable across scales.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/durability"
	"repro/internal/erasure/codecache"
	"repro/internal/logsys"
	"repro/internal/parallel"
	"repro/internal/wamodel"
)

// Codes under study (§4.1): RS(12,9) and Clay(12,9,11).
var Codes = []struct {
	Label  string
	Plugin string
	D      int
}{
	{"RS(12,9)", "jerasure_reed_sol_van", 0},
	{"Clay(12,9,11)", "clay", 11},
}

// Cell is one bar of a figure: a configuration label and the normalized
// recovery time per code.
type Cell struct {
	Config string
	Values map[string]float64 // code label -> normalized recovery time
}

// Figure is one sub-figure of Figure 2.
type Figure struct {
	ID       string
	Title    string
	Baseline time.Duration // the run every bar is normalized against
	Cells    []Cell
	Raw      map[string]time.Duration // "<config>/<code>" -> absolute time
}

// runCell executes one experiment cell, through the snapshot cache unless
// ECFAULT_NOSNAPSHOT disables it.
func runCell(p core.Profile) (*core.Result, error) {
	if snapshotsDisabled() {
		return core.Run(p)
	}
	return engineCache.Run(p)
}

// runRecovery executes a profile and returns the system recovery time.
func runRecovery(p core.Profile) (time.Duration, *core.Result, error) {
	res, err := runCell(p)
	if err != nil {
		return 0, nil, err
	}
	if res.Recovery == nil {
		return 0, nil, fmt.Errorf("experiments: profile %q ran no recovery", p.Name)
	}
	return res.Recovery.SystemRecoveryTime(), res, nil
}

// runProfiles executes independent experiment cells concurrently under the
// worker budget (parallel.Workers: ECFAULT_WORKERS, the -workers flag, or
// NumCPU). Every cell builds its own coordinator, simulated cluster, and
// message bus, so cells share no mutable state; results come back in input
// order and the first failing cell (by input order) decides the error, the
// same error the old serial loops would have hit first.
//
// Cells sharing a layout (same Profile.LayoutKey) populate one cluster
// between them through the snapshot cache and each run on a
// copy-on-write fork, which amortizes the dominant setup cost of a
// campaign. ECFAULT_NOSNAPSHOT reverts to building every cell from
// scratch.
func runProfiles(ps []core.Profile) ([]*core.Result, error) {
	results := make([]*core.Result, len(ps))
	errs := make([]error, len(ps))
	parallel.ForEach(len(ps), parallel.Workers(), func(i int) {
		results[i], errs[i] = runCell(ps[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// runRecoveries is runProfiles for cells that must produce a recovery.
func runRecoveries(ps []core.Profile) ([]time.Duration, []*core.Result, error) {
	results, err := runProfiles(ps)
	if err != nil {
		return nil, nil, err
	}
	times := make([]time.Duration, len(results))
	for i, res := range results {
		if res.Recovery == nil {
			return nil, nil, fmt.Errorf("experiments: profile %q ran no recovery", ps[i].Name)
		}
		times[i] = res.Recovery.SystemRecoveryTime()
	}
	return times, results, nil
}

func baseProfile(scale int) core.Profile {
	return core.DefaultProfile().ScaleWorkload(scale)
}

func withCode(p core.Profile, plugin string, d int) core.Profile {
	p.Pool.Plugin = plugin
	p.Pool.D = d
	return p
}

// normalize converts raw durations into cells normalized by the minimum
// (the paper's presentation for Fig. 2a-c) or by an explicit baseline.
func normalize(fig *Figure, baseline time.Duration) {
	if baseline == 0 {
		for _, d := range fig.Raw {
			if baseline == 0 || d < baseline {
				baseline = d
			}
		}
	}
	fig.Baseline = baseline
	for i := range fig.Cells {
		for code := range fig.Cells[i].Values {
			key := fig.Cells[i].Config + "/" + code
			fig.Cells[i].Values[code] = float64(fig.Raw[key]) / float64(baseline)
		}
	}
}

// runFigure runs one recovery cell per (config, code) pair — all cells
// concurrently under the worker budget — and fills the figure's Raw map
// and Cells in config order.
func runFigure(fig *Figure, configs []string, mkProfile func(cfgIdx, codeIdx int) core.Profile) error {
	var ps []core.Profile
	var keys []string
	for ci, cfg := range configs {
		for di, code := range Codes {
			ps = append(ps, mkProfile(ci, di))
			keys = append(keys, cfg+"/"+code.Label)
		}
	}
	times, _, err := runRecoveries(ps)
	if err != nil {
		return err
	}
	for i, key := range keys {
		fig.Raw[key] = times[i]
	}
	for _, cfg := range configs {
		cell := Cell{Config: cfg, Values: map[string]float64{}}
		for _, code := range Codes {
			cell.Values[code.Label] = 0
		}
		fig.Cells = append(fig.Cells, cell)
	}
	return nil
}

// Fig2aBackendCache reproduces Figure 2a: three BlueStore cache schemes
// under a single OSD-host failure.
func Fig2aBackendCache(scale int) (*Figure, error) {
	fig := &Figure{ID: "fig2a", Title: "Impact of Backend Cache on EC Recovery Time", Raw: map[string]time.Duration{}}
	schemes := []string{core.SchemeKVOptimized, core.SchemeDataOptimized, core.SchemeAutotune}
	err := runFigure(fig, schemes, func(ci, di int) core.Profile {
		code := Codes[di]
		p := withCode(baseProfile(scale), code.Plugin, code.D)
		p.Name = fmt.Sprintf("fig2a-%s-%s", schemes[ci], code.Label)
		p.Backend.CacheScheme = schemes[ci]
		return p
	})
	if err != nil {
		return nil, err
	}
	normalize(fig, 0)
	return fig, nil
}

// Fig2bPlacementGroups reproduces Figure 2b: pg_num in {1, 16, 256}.
func Fig2bPlacementGroups(scale int) (*Figure, error) {
	fig := &Figure{ID: "fig2b", Title: "Impact of Placement Groups on EC Recovery Time", Raw: map[string]time.Duration{}}
	pgNums := []int{1, 16, 256}
	labels := make([]string, len(pgNums))
	for i, pgs := range pgNums {
		labels[i] = fmt.Sprintf("%d PGs", pgs)
		if pgs == 1 {
			labels[i] = "1 PG"
		}
	}
	err := runFigure(fig, labels, func(ci, di int) core.Profile {
		code := Codes[di]
		p := withCode(baseProfile(scale), code.Plugin, code.D)
		p.Name = fmt.Sprintf("fig2b-%d-%s", pgNums[ci], code.Label)
		p.Pool.PGNum = pgNums[ci]
		return p
	})
	if err != nil {
		return nil, err
	}
	normalize(fig, 0)
	return fig, nil
}

// Fig2cStripeUnit reproduces Figure 2c: stripe_unit in {4KB, 4MB, 64MB}
// with pg_num = 256.
func Fig2cStripeUnit(scale int) (*Figure, error) {
	fig := &Figure{ID: "fig2c", Title: "Impact of Stripe Unit on EC Recovery Time", Raw: map[string]time.Duration{}}
	units := []struct {
		label string
		bytes int64
	}{
		{"4KB", 4 << 10},
		{"4MB", 4 << 20},
		{"64MB", 64 << 20},
	}
	labels := make([]string, len(units))
	for i, u := range units {
		labels[i] = u.label
	}
	err := runFigure(fig, labels, func(ci, di int) core.Profile {
		code := Codes[di]
		p := withCode(baseProfile(scale), code.Plugin, code.D)
		p.Name = fmt.Sprintf("fig2c-%s-%s", units[ci].label, code.Label)
		p.Pool.PGNum = 256
		p.Pool.StripeUnit = units[ci].bytes
		return p
	})
	if err != nil {
		return nil, err
	}
	normalize(fig, 0)
	return fig, nil
}

// Fig2dFailureMode reproduces Figure 2d: with failure domain OSD and
// three OSDs per host, two or three concurrent device failures placed on
// the same or different hosts. Bars are normalized against a single
// device failure of the RS pool (the paper's implicit baseline).
func Fig2dFailureMode(scale int) (*Figure, error) {
	fig := &Figure{ID: "fig2d", Title: "Impact of Failure Mode on EC Recovery Time", Raw: map[string]time.Duration{}}
	modes := []struct {
		label    string
		count    int
		locality string
	}{
		{"2 failures same host", 2, core.LocalitySameHost},
		{"2 failures diff. hosts", 2, core.LocalityDiffHosts},
		{"3 failures same host", 3, core.LocalitySameHost},
		{"3 failures diff. hosts", 3, core.LocalityDiffHosts},
	}
	shape := func(p core.Profile) core.Profile {
		p.Cluster.OSDsPerHost = 3 // the added SSD (§4.2, Failure Mode)
		p.Pool.FailureDomain = "osd"
		p.Pool.PGNum = 256
		return p
	}
	// One batch: the baseline (single device failure, RS) plus every
	// mode x code cell, all concurrent.
	var ps []core.Profile
	var keys []string
	{
		p := shape(withCode(baseProfile(scale), Codes[0].Plugin, Codes[0].D))
		p.Name = "fig2d-baseline"
		p.Faults = []core.FaultSpec{{Level: core.FaultLevelDevice, Count: 1, AtSeconds: 10}}
		ps = append(ps, p)
		keys = append(keys, "baseline")
	}
	for _, mode := range modes {
		for _, code := range Codes {
			p := shape(withCode(baseProfile(scale), code.Plugin, code.D))
			p.Name = fmt.Sprintf("fig2d-%s-%s", mode.label, code.Label)
			p.Faults = []core.FaultSpec{{
				Level: core.FaultLevelDevice, Count: mode.count,
				Locality: mode.locality, AtSeconds: 10,
			}}
			ps = append(ps, p)
			keys = append(keys, mode.label+"/"+code.Label)
		}
	}
	times, _, err := runRecoveries(ps)
	if err != nil {
		return nil, err
	}
	baseline := times[0]
	for i := 1; i < len(times); i++ {
		fig.Raw[keys[i]] = times[i]
	}
	for _, mode := range modes {
		cell := Cell{Config: mode.label, Values: map[string]float64{}}
		for _, code := range Codes {
			cell.Values[code.Label] = 0
		}
		fig.Cells = append(fig.Cells, cell)
	}
	normalize(fig, baseline)
	return fig, nil
}

// Fig2Suite runs all four Figure-2 experiments at the given scale and
// returns the figures in order (2a, 2b, 2c, 2d). Scale 1 is the paper's
// full 10,000-object workload — the full-fidelity mode exercised by
// BenchmarkSimEngine and recorded in BENCH_SIM.json.
func Fig2Suite(scale int) ([]*Figure, error) {
	figs := make([]*Figure, 0, 4)
	for _, fn := range []func(int) (*Figure, error){
		Fig2aBackendCache, Fig2bPlacementGroups, Fig2cStripeUnit, Fig2dFailureMode,
	} {
		fig, err := fn(scale)
		if err != nil {
			return nil, err
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// TimelineResult is the Figure 3 reproduction.
type TimelineResult struct {
	Detected         time.Duration // 0 by construction
	RecoveryStarted  time.Duration
	RecoveryFinished time.Duration
	CheckingFraction float64
	Events           []logsys.Entry
	// FractionRange is the checking fraction across workload scales
	// (§4.3: 41% to 58%).
	FractionRange [2]float64
}

// Fig3Timeline reproduces Figure 3 and the §4.3 sweep: one full recovery
// timeline at the default workload plus the checking-period fraction over
// smaller and larger workloads.
func Fig3Timeline(scale int) (*TimelineResult, error) {
	// One batch: the full-detail run plus the §4.3 workload sweep, matching
	// the volumes of prior work ([41, 54]: roughly 0.5 TB to 1 TB written)
	// with the checking window unchanged.
	p := baseProfile(scale)
	p.Name = "fig3"
	ps := []core.Profile{p}
	for _, mult := range []float64{0.8, 1, 1.6} {
		q := baseProfile(scale)
		q.Name = fmt.Sprintf("fig3-sweep-%gx", mult)
		q.Workload.Objects = int(float64(q.Workload.Objects) * mult)
		if q.Workload.Objects < 1 {
			q.Workload.Objects = 1
		}
		ps = append(ps, q)
	}
	_, results, err := runRecoveries(ps)
	if err != nil {
		return nil, err
	}
	rec := results[0].Recovery
	out := &TimelineResult{
		RecoveryStarted:  rec.CheckingPeriod(),
		RecoveryFinished: rec.SystemRecoveryTime(),
		CheckingFraction: rec.CheckingFraction(),
		Events:           results[0].Timeline,
		FractionRange:    [2]float64{1, 0},
	}
	for _, r := range results[1:] {
		f := r.Recovery.CheckingFraction()
		if f < out.FractionRange[0] {
			out.FractionRange[0] = f
		}
		if f > out.FractionRange[1] {
			out.FractionRange[1] = f
		}
	}
	return out, nil
}

// WARow is one row of Table 3.
type WARow struct {
	ID     string
	Report wamodel.Report
}

// Table3WriteAmplification reproduces Table 3: the OSD-level WA of
// RS(12,9) and RS(15,12) under the same fault tolerance (m=3).
func Table3WriteAmplification(scale int) ([]WARow, error) {
	rows := []struct {
		id   string
		k, m int
	}{
		{"J1 RS(12,9)", 9, 3},
		{"J2 RS(15,12)", 12, 3},
	}
	ps := make([]core.Profile, len(rows))
	for i, r := range rows {
		p := baseProfile(scale)
		p.Name = "table3-" + r.id
		p.Pool.K = r.k
		p.Pool.M = r.m
		p.Faults = nil // WA is measured on the healthy cluster
		ps[i] = p
	}
	results, err := runProfiles(ps)
	if err != nil {
		return nil, err
	}
	out := make([]WARow, len(rows))
	for i, r := range rows {
		out[i] = WARow{ID: r.id, Report: results[i].WA}
	}
	return out, nil
}

// WAValidationRow is one point of the §4.4 formula validation sweep.
type WAValidationRow struct {
	ObjectSize int64
	K, M       int
	StripeUnit int64
	Formula    float64 // lower bound (S_meta = 0)
	Measured   float64
	Holds      bool // measured >= formula
}

// WAFormulaValidation sweeps object size, (n,k) and stripe_unit and
// checks the paper's claim that the formula lower-bounds the measured WA.
func WAFormulaValidation(scale int) ([]WAValidationRow, error) {
	geometries := []struct{ k, m int }{{9, 3}, {12, 3}, {4, 2}, {10, 4}}
	sizes := []int64{4 << 20, 16 << 20, 64 << 20}
	units := []int64{1 << 20, 4 << 20, 16 << 20}
	var ps []core.Profile
	var rows []WAValidationRow
	for _, g := range geometries {
		for _, size := range sizes {
			for _, unit := range units {
				p := baseProfile(scale)
				p.Name = fmt.Sprintf("wa-k%d-m%d-%d-%d", g.k, g.m, size, unit)
				p.Pool.K = g.k
				p.Pool.M = g.m
				p.Pool.StripeUnit = unit
				p.Workload.ObjectSize = size
				p.Workload.Objects = maxInt(p.Workload.Objects/4, 8)
				p.Faults = nil
				ps = append(ps, p)
				rows = append(rows, WAValidationRow{
					ObjectSize: size,
					K:          g.k, M: g.m,
					StripeUnit: unit,
				})
			}
		}
	}
	results, err := runProfiles(ps)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		rows[i].Formula = res.WA.FormulaBound
		rows[i].Measured = res.WA.Measured
		rows[i].Holds = res.WA.Measured >= res.WA.FormulaBound-1e-9
	}
	return rows, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// PluginRow compares one erasure-code plugin on the paper's baseline
// experiment: single OSD-host failure, same fault tolerance where the
// construction allows it.
type PluginRow struct {
	Label           string
	Plugin          string
	K, M, D         int
	RecoveryTime    time.Duration
	CheckingPercent float64
	NetPerChunk     float64 // network bytes moved per repaired chunk, in chunk units
	ActualWA        float64
	DurabilityNines float64
}

// PluginComparison runs the paper's baseline failure experiment across
// all four EC plugins — the study §6 envisions extending to more codes.
// RS and Clay use the paper's (12,9); LRC uses 9 data chunks in 3 groups
// with 3 global parities; SHEC uses k=9, m=5, c=3.
func PluginComparison(scale int) ([]PluginRow, error) {
	configs := []struct {
		label   string
		plugin  string
		k, m, d int
	}{
		{"RS(12,9)", "jerasure_reed_sol_van", 9, 3, 0},
		{"Clay(12,9,11)", "clay", 9, 3, 11},
		{"LRC(9,3,3)", "lrc", 9, 3, 3},
		{"SHEC(9,5,3)", "shec", 9, 5, 3},
	}
	ps := make([]core.Profile, len(configs))
	for i, cfg := range configs {
		p := baseProfile(scale)
		p.Name = "plugins-" + cfg.label
		p.Pool.Plugin = cfg.plugin
		p.Pool.K = cfg.k
		p.Pool.M = cfg.m
		p.Pool.D = cfg.d
		ps[i] = p
	}
	results, err := runProfiles(ps)
	if err != nil {
		return nil, fmt.Errorf("experiments: plugin comparison: %w", err)
	}
	out := make([]PluginRow, len(configs))
	for i, cfg := range configs {
		res := results[i]
		rec := res.Recovery
		row := PluginRow{
			Label: cfg.label, Plugin: cfg.plugin, K: cfg.k, M: cfg.m, D: cfg.d,
			RecoveryTime:    rec.SystemRecoveryTime(),
			CheckingPercent: rec.CheckingFraction() * 100,
			ActualWA:        res.WA.Measured,
		}
		if rec.RepairedChunks > 0 {
			chunkBytes := float64(rec.WrittenBytes) / float64(rec.RepairedChunks)
			if chunkBytes > 0 {
				row.NetPerChunk = float64(rec.NetworkBytes-rec.WrittenBytes) / float64(rec.RepairedChunks) / chunkBytes
			}
		}
		out[i] = row
	}
	// The durability Monte Carlo is independent per plugin, so it fans out
	// over the worker pool; each worker writes only its own index, keeping
	// the rows input-order stable regardless of scheduling.
	parallel.ForEach(len(configs), parallel.Workers(), func(i int) {
		cfg := configs[i]
		code, err := codecache.Get(cfg.plugin, cfg.k, cfg.m, cfg.d)
		if err != nil {
			return
		}
		rep, derr := durability.Evaluate(code, durability.Params{
			DeviceAFR: 0.02,
			MTTRHours: out[i].RecoveryTime.Hours(),
			Samples:   1500,
			Seed:      7,
		})
		if derr == nil {
			out[i].DurabilityNines = rep.DurabilityNines
		}
	})
	return out, nil
}

package experiments

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
)

// The event-engine rewrite (value-typed 4-ary heap, pooled fixed-arg
// events, per-PG IO planning) must not change simulated physics: every
// schedule call happens in the same order at the same instant, so every
// RecoveryResult is bit-identical to the pre-rewrite engine. The goldens
// below were captured from the container/heap + closure engine at the
// current cost-model calibration; regenerate with
//
//	ECFAULT_CAPTURE_GOLDEN=1 go test ./internal/experiments -run EngineDeterminism -v
//
// only when the simulation physics (cost model, recovery protocol)
// changes intentionally — never to paper over an engine regression.

type timelineGolden struct {
	DetectedNS  int64
	StartNS     int64
	FinishedNS  int64
	HelperDisk  int64
	Network     int64
	Written     int64
	ObjRepairs  int
	RepChunks   int
	DegradedPGs int
}

func goldenProfiles() []struct {
	Name string
	P    core.Profile
} {
	return goldenProfilesAt(50) // 200 objects: every code path, sub-second cells
}

// goldenProfilesAt builds the golden shapes at an arbitrary workload
// scale divisor; the differential parallel-engine suite uses it to cover
// scales the stored goldens do not pin.
func goldenProfilesAt(scale int) []struct {
	Name string
	P    core.Profile
} {
	rs, clay := Codes[0], Codes[1]
	base := func(plugin string, d int) core.Profile {
		return withCode(baseProfile(scale), plugin, d)
	}
	osdShape := func(p core.Profile) core.Profile {
		p.Cluster.OSDsPerHost = 3
		p.Pool.FailureDomain = "osd"
		p.Pool.PGNum = 256
		return p
	}
	var out []struct {
		Name string
		P    core.Profile
	}
	add := func(name string, p core.Profile) {
		p.Name = "golden-" + name
		out = append(out, struct {
			Name string
			P    core.Profile
		}{name, p})
	}

	add("rs-host", base(rs.Plugin, rs.D))
	add("clay-host", base(clay.Plugin, clay.D))

	p := base(rs.Plugin, rs.D)
	p.Pool.PGNum = 16
	add("rs-pg16", p)

	p = base(clay.Plugin, clay.D)
	p.Pool.StripeUnit = 4096 // strided sub-chunk reads
	add("clay-su4k", p)

	p = osdShape(base(rs.Plugin, rs.D))
	p.Faults = []core.FaultSpec{{Level: core.FaultLevelDevice, Count: 2, Locality: core.LocalityDiffHosts, AtSeconds: 10}}
	add("rs-osd-2dev", p)

	p = osdShape(base(clay.Plugin, clay.D))
	p.Faults = []core.FaultSpec{{Level: core.FaultLevelDevice, Count: 3, Locality: core.LocalitySameHost, AtSeconds: 10}}
	add("clay-osd-3dev", p)
	return out
}

// engineGoldens: captured 2026-08-06 on the pre-rewrite engine.
var engineGoldens = map[string]timelineGolden{
	"rs-host":       {DetectedNS: 33000000000, StartNS: 45000000000, FinishedNS: 57707954609, HelperDisk: 7247757312, Network: 7247757312, Written: 805306368, ObjRepairs: 96, RepChunks: 96, DegradedPGs: 74},
	"clay-host":     {DetectedNS: 33000000000, StartNS: 45000000000, FinishedNS: 54206724166, HelperDisk: 2952789312, Network: 2952789312, Written: 805306368, ObjRepairs: 96, RepChunks: 96, DegradedPGs: 74},
	"rs-pg16":       {DetectedNS: 33000000000, StartNS: 45000000000, FinishedNS: 60221911325, HelperDisk: 9286189056, Network: 9286189056, Written: 1031798784, ObjRepairs: 123, RepChunks: 123, DegradedPGs: 10},
	"clay-su4k":     {DetectedNS: 33000000000, StartNS: 45000000000, FinishedNS: 132143830172, HelperDisk: 7876509696, Network: 2624862240, Written: 716046336, ObjRepairs: 96, RepChunks: 96, DegradedPGs: 74},
	"rs-osd-2dev":   {DetectedNS: 33000000000, StartNS: 57000000000, FinishedNS: 62949926672, HelperDisk: 5284823040, Network: 5284823040, Written: 629145600, ObjRepairs: 70, RepChunks: 75, DegradedPGs: 50},
	"clay-osd-3dev": {DetectedNS: 33000000000, StartNS: 45000000000, FinishedNS: 52756779095, HelperDisk: 3760892066, Network: 3760892066, Written: 931135488, ObjRepairs: 90, RepChunks: 111, DegradedPGs: 73},
}

func TestEngineDeterminism(t *testing.T) {
	capture := os.Getenv("ECFAULT_CAPTURE_GOLDEN") != ""
	for _, cfg := range goldenProfiles() {
		res, err := core.Run(cfg.P)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		r := res.Recovery
		if r == nil {
			t.Fatalf("%s: no recovery result", cfg.Name)
		}
		got := timelineGolden{
			DetectedNS:  int64(r.DetectedAt),
			StartNS:     int64(r.RecoveryStartAt),
			FinishedNS:  int64(r.FinishedAt),
			HelperDisk:  r.HelperDiskBytes,
			Network:     r.NetworkBytes,
			Written:     r.WrittenBytes,
			ObjRepairs:  r.ObjectRepairs,
			RepChunks:   r.RepairedChunks,
			DegradedPGs: r.DegradedPGs,
		}
		if capture {
			fmt.Printf("\t%q: {DetectedNS: %d, StartNS: %d, FinishedNS: %d, HelperDisk: %d, Network: %d, Written: %d, ObjRepairs: %d, RepChunks: %d, DegradedPGs: %d},\n",
				cfg.Name, got.DetectedNS, got.StartNS, got.FinishedNS, got.HelperDisk, got.Network, got.Written, got.ObjRepairs, got.RepChunks, got.DegradedPGs)
			continue
		}
		want, ok := engineGoldens[cfg.Name]
		if !ok {
			t.Fatalf("%s: no golden recorded", cfg.Name)
		}
		if got != want {
			t.Errorf("%s: timeline diverged from pre-rewrite engine\n got %+v\nwant %+v", cfg.Name, got, want)
		}
	}
}

package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/logsys"
	"repro/internal/parallel"
)

// The time-partitioned parallel engine (simclock.RunParallel, gated by
// ECFAULT_SIM_WORKERS) must be byte-identical to the serial engine: same
// recovery results, same iostat counter stream, same merged timeline, for
// every worker count, on fresh-built and snapshot-forked clusters alike.
// This suite is the differential harness that backs the engine: it runs
// every golden profile serially, then replays it under worker counts
// {2, 4, NumCPU} at two scales, comparing every observable output.
//
// It mirrors TestEngineDeterminismForked in structure, but compares
// against a freshly computed serial twin instead of the stored goldens,
// so it also covers scales the goldens do not pin.

// renderTimeline flattens a merged timeline to the raw on-node log
// format; comparing the rendered bytes is what "byte-identical timeline"
// means for the differential suite (entry order included).
func renderTimeline(entries []logsys.Entry) string {
	var b strings.Builder
	for _, e := range entries {
		b.WriteString(logsys.FormatLine(e.Time, e.Node, e.Category+" "+e.Message))
		b.WriteByte('\n')
	}
	return b.String()
}

// renderIOSamples flattens the iostat sample stream, order included.
func renderIOSamples(res *core.Result) string {
	var b strings.Builder
	for _, s := range res.IOSamples {
		fmt.Fprintf(&b, "%d %s r%d w%d rb%d wb%d\n",
			int64(s.Time), s.Device, s.ReadOps, s.WriteOps, s.ReadBytes, s.WriteBytes)
	}
	return b.String()
}

// compareRuns asserts every observable of two runs is identical.
func compareRuns(t *testing.T, label string, serial, par *core.Result) {
	t.Helper()
	if serial.Recovery == nil || par.Recovery == nil {
		t.Fatalf("%s: missing recovery result (serial=%v parallel=%v)",
			label, serial.Recovery != nil, par.Recovery != nil)
	}
	if *serial.Recovery != *par.Recovery {
		t.Errorf("%s: recovery result diverged\nserial %+v\nparallel %+v",
			label, *serial.Recovery, *par.Recovery)
	}
	if serial.UsedBytes != par.UsedBytes || serial.WrittenBytes != par.WrittenBytes {
		t.Errorf("%s: byte accounting diverged: serial used=%d written=%d, parallel used=%d written=%d",
			label, serial.UsedBytes, serial.WrittenBytes, par.UsedBytes, par.WrittenBytes)
	}
	if serial.LogLinesShipped != par.LogLinesShipped || serial.LogLinesDropped != par.LogLinesDropped {
		t.Errorf("%s: log accounting diverged: serial %d/%d, parallel %d/%d",
			label, serial.LogLinesShipped, serial.LogLinesDropped, par.LogLinesShipped, par.LogLinesDropped)
	}
	if s, p := renderIOSamples(serial), renderIOSamples(par); s != p {
		t.Errorf("%s: iostat sample stream diverged (%d vs %d samples)",
			label, len(serial.IOSamples), len(par.IOSamples))
	}
	if s, p := renderTimeline(serial.Timeline), renderTimeline(par.Timeline); s != p {
		i := 0
		for i < len(s) && i < len(p) && s[i] == p[i] {
			i++
		}
		lo := i - 80
		if lo < 0 {
			lo = 0
		}
		t.Errorf("%s: timeline diverged at byte %d\nserial   ...%q\nparallel ...%q",
			label, i, s[lo:min(i+80, len(s))], p[lo:min(i+80, len(p))])
	}
}

func parallelWorkerCounts() []int {
	counts := []int{2, 4}
	if n := runtime.NumCPU(); n != 2 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

func TestEngineDeterminismParallel(t *testing.T) {
	prev := parallel.SetSimWorkers(1)
	t.Cleanup(func() { parallel.SetSimWorkers(prev) })

	scales := []int{50, 10}
	if testing.Short() {
		scales = scales[:1]
	}
	for _, scale := range scales {
		for _, cfg := range goldenProfilesAt(scale) {
			p := cfg.P

			parallel.SetSimWorkers(1)
			serial, err := core.Run(p)
			if err != nil {
				t.Fatalf("%s/scale=%d: serial run: %v", cfg.Name, scale, err)
			}
			snap, err := core.Populate(p)
			if err != nil {
				t.Fatalf("%s/scale=%d: populate: %v", cfg.Name, scale, err)
			}
			serialForked, err := snap.Run(p)
			if err != nil {
				t.Fatalf("%s/scale=%d: serial forked run: %v", cfg.Name, scale, err)
			}
			compareRuns(t, fmt.Sprintf("%s/scale=%d/serial-forked", cfg.Name, scale), serial, serialForked)

			for _, workers := range parallelWorkerCounts() {
				label := fmt.Sprintf("%s/scale=%d/workers=%d", cfg.Name, scale, workers)
				parallel.SetSimWorkers(workers)

				cold, err := core.Run(p)
				if err != nil {
					t.Fatalf("%s/cold: %v", label, err)
				}
				compareRuns(t, label+"/cold", serial, cold)

				forked, err := snap.Run(p)
				if err != nil {
					t.Fatalf("%s/forked: %v", label, err)
				}
				compareRuns(t, label+"/forked", serial, forked)
			}
		}
	}
}

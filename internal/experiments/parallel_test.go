package experiments

import (
	"testing"

	"repro/internal/parallel"
)

// TestParallelCellsMatchSerial forces the cell worker pool on and off and
// requires identical raw measurements: parallelism must only change
// wall-clock time, never results (every cell owns its whole simulated
// cluster and the simulated clock is per-cluster).
func TestParallelCellsMatchSerial(t *testing.T) {
	const scale = 200
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	serial, err := Fig2aBackendCache(scale)
	if err != nil {
		t.Fatal(err)
	}
	parallel.SetWorkers(4)
	par, err := Fig2aBackendCache(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Raw) != len(serial.Raw) {
		t.Fatalf("cell count differs: %d vs %d", len(par.Raw), len(serial.Raw))
	}
	for key, want := range serial.Raw {
		if got := par.Raw[key]; got != want {
			t.Errorf("%s: parallel %v != serial %v", key, got, want)
		}
	}
	if par.Baseline != serial.Baseline {
		t.Errorf("baseline differs: %v vs %v", par.Baseline, serial.Baseline)
	}
}

// TestPluginComparisonParallel runs the 4-plugin study with the pool
// forced on; under -race this doubles as the concurrency audit of
// core.Run across all codec paths.
func TestPluginComparisonParallel(t *testing.T) {
	const scale = 200
	prev := parallel.SetWorkers(4)
	defer parallel.SetWorkers(prev)
	rows, err := PluginComparison(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.RecoveryTime <= 0 {
			t.Errorf("%s: non-positive recovery time", r.Label)
		}
	}
}

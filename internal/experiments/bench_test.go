package experiments

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/parallel"
)

// BenchmarkExperimentCells measures one full figure (six recovery cells)
// serial versus fanned out over the worker pool. On multi-core machines
// the speedup tracks the worker count until cells outnumber cores; on a
// single core it bounds the scheduling overhead of the pool itself.
// BenchmarkSimEngine measures the discrete-event engine itself: the
// Figure-2 suite with a single worker, so wall-clock tracks the event
// loop rather than the experiment fan-out. scale=50 is the quick
// regression guard; scale=1 is the paper's full 10,000-object workload
// (the full-fidelity mode) and is the number recorded in BENCH_SIM.json.
func BenchmarkSimEngine(b *testing.B) {
	for _, scale := range []int{50, 1} {
		b.Run(fmt.Sprintf("fig2suite/scale=%d", scale), func(b *testing.B) {
			prev := parallel.SetWorkers(1)
			defer parallel.SetWorkers(prev)
			for i := 0; i < b.N; i++ {
				// Each iteration is one cold campaign: cells share
				// populated-cluster snapshots within it, never across
				// iterations.
				ResetSnapshotCache()
				if _, err := Fig2Suite(scale); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSnapshotFork measures the per-cell setup cost a campaign pays
// after the one-time populate: one copy-on-write fork plus a full (tiny)
// recovery, so the fork-side construction and first-plan compilation
// dominate the iteration. The A/B lever is the shared code registry:
// with ECFAULT_NOCODECACHE=1 every fork rebuilds its erasure code and
// recompiles plans/programs; with the registry on (default) forks share
// one instance and its warm caches.
func BenchmarkSnapshotFork(b *testing.B) {
	const scale = 400 // 25 objects: recovery is small, setup dominates
	for _, c := range Codes {
		b.Run("plugin="+c.Plugin, func(b *testing.B) {
			prev := parallel.SetWorkers(1)
			defer parallel.SetWorkers(prev)
			p := withCode(baseProfile(scale), c.Plugin, c.D)
			snap, err := core.Populate(p)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := snap.Run(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkExperimentCells(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			prev := parallel.SetWorkers(workers)
			defer parallel.SetWorkers(prev)
			for i := 0; i < b.N; i++ {
				if _, err := Fig2aBackendCache(400); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

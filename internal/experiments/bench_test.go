package experiments

import (
	"fmt"
	"testing"

	"repro/internal/parallel"
)

// BenchmarkExperimentCells measures one full figure (six recovery cells)
// serial versus fanned out over the worker pool. On multi-core machines
// the speedup tracks the worker count until cells outnumber cores; on a
// single core it bounds the scheduling overhead of the pool itself.
func BenchmarkExperimentCells(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			prev := parallel.SetWorkers(workers)
			defer parallel.SetWorkers(prev)
			for i := 0; i < b.N; i++ {
				if _, err := Fig2aBackendCache(400); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

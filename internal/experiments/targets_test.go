package experiments

import (
	"math"
	"testing"
	"time"
)

func TestTargetsComplete(t *testing.T) {
	targets := Targets()
	wantBars := map[string]int{"fig2a": 6, "fig2b": 6, "fig2c": 6, "fig2d": 8}
	for fig, n := range wantBars {
		if len(targets.Figures[fig]) != n {
			t.Errorf("%s has %d target bars, want %d", fig, len(targets.Figures[fig]), n)
		}
	}
	if targets.Fig3CheckingFraction != 0.537 {
		t.Error("fig3 target wrong")
	}
	if targets.Table3["RS(12,9)"][0] != 1.76 || targets.Table3["RS(15,12)"][1] != 0.720 {
		t.Error("table3 targets wrong")
	}
}

func TestCompareFigureMechanics(t *testing.T) {
	fig := &Figure{
		ID:       "fig2c",
		Baseline: time.Second,
		Cells: []Cell{
			{Config: "4KB", Values: map[string]float64{"RS(12,9)": 1.0, "Clay(12,9,11)": 4.0}},
			{Config: "unpublished", Values: map[string]float64{"RS(12,9)": 2.0}},
		},
	}
	deltas := CompareFigure(fig)
	if len(deltas) != 2 {
		t.Fatalf("deltas = %d, want 2 (unpublished bars skipped)", len(deltas))
	}
	var clay Delta
	for _, d := range deltas {
		if d.Key == "4KB/Clay(12,9,11)" {
			clay = d
		}
	}
	if math.Abs(clay.AbsErr()-0.26) > 1e-9 {
		t.Fatalf("clay abs err = %f", clay.AbsErr())
	}
	if math.Abs(clay.RelErr()-0.26/4.26) > 1e-9 {
		t.Fatalf("clay rel err = %f", clay.RelErr())
	}
	if mae := MeanAbsErr(deltas); mae <= 0 || mae > 0.3 {
		t.Fatalf("mean abs err = %f", mae)
	}
	if MeanAbsErr(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
}

// TestReproductionAccuracy runs the two cheapest artifacts and bounds the
// deviation from the paper: Table 3 within a point, Figure 2c bars within
// a mean absolute error of 0.6 normalized units at test scale.
func TestReproductionAccuracy(t *testing.T) {
	rows, err := Table3WriteAmplification(testScale)
	if err != nil {
		t.Fatal(err)
	}
	targets := Targets().Table3
	for _, r := range rows {
		label := "RS(12,9)"
		if r.Report.K == 12 {
			label = "RS(15,12)"
		}
		want := targets[label][0]
		if math.Abs(r.Report.Measured-want) > 0.05 {
			t.Fatalf("%s WA %.3f vs paper %.2f", label, r.Report.Measured, want)
		}
	}
	fig, err := Fig2cStripeUnit(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if mae := MeanAbsErr(CompareFigure(fig)); mae > 0.6 {
		t.Fatalf("fig2c mean abs err %.2f exceeds bound", mae)
	}
}

package experiments

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/parallel"
)

// recoveryGolden extracts the golden-comparable fields from a result.
func recoveryGolden(res *core.Result) timelineGolden {
	r := res.Recovery
	return timelineGolden{
		DetectedNS:  int64(r.DetectedAt),
		StartNS:     int64(r.RecoveryStartAt),
		FinishedNS:  int64(r.FinishedAt),
		HelperDisk:  r.HelperDiskBytes,
		Network:     r.NetworkBytes,
		Written:     r.WrittenBytes,
		ObjRepairs:  r.ObjectRepairs,
		RepChunks:   r.RepairedChunks,
		DegradedPGs: r.DegradedPGs,
	}
}

// TestEngineDeterminismForked replays the engine goldens on forked
// clusters: populate once per profile, run the recovery side on a
// copy-on-write fork, and demand the exact numbers the pre-rewrite
// engine produced on fresh-built clusters.
func TestEngineDeterminismForked(t *testing.T) {
	for _, cfg := range goldenProfiles() {
		snap, err := core.Populate(cfg.P)
		if err != nil {
			t.Fatalf("%s: populate: %v", cfg.Name, err)
		}
		res, err := snap.Run(cfg.P)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if res.Recovery == nil {
			t.Fatalf("%s: no recovery result", cfg.Name)
		}
		want := engineGoldens[cfg.Name]
		if got := recoveryGolden(res); got != want {
			t.Errorf("%s: forked run diverged from golden\n got %+v\nwant %+v", cfg.Name, got, want)
		}
	}
}

// TestEngineDeterminismNoSnapshot drives the goldens through runProfiles
// with the snapshot layer disabled, covering the ECFAULT_NOSNAPSHOT
// escape hatch end to end.
func TestEngineDeterminismNoSnapshot(t *testing.T) {
	t.Setenv("ECFAULT_NOSNAPSHOT", "1")
	cfgs := goldenProfiles()
	ps := make([]core.Profile, len(cfgs))
	for i, cfg := range cfgs {
		ps[i] = cfg.P
	}
	results, err := runProfiles(ps)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		want := engineGoldens[cfgs[i].Name]
		if got := recoveryGolden(res); got != want {
			t.Errorf("%s: no-snapshot run diverged from golden\n got %+v\nwant %+v", cfgs[i].Name, got, want)
		}
	}
}

// TestForkMutationsDoNotLeakAcrossParallelCells runs many cells off one
// snapshot concurrently (run under -race): several recovery-side variants,
// each replicated, all forking the same frozen image at once. Every
// replica must match its serially computed fresh twin bit-identically —
// any cross-fork leak (shared chunk map, shared acting set, shared
// decode state) shows up as a divergent replica or a race report.
func TestForkMutationsDoNotLeakAcrossParallelCells(t *testing.T) {
	base := goldenProfiles()[0].P
	schemes := []string{core.SchemeKVOptimized, core.SchemeDataOptimized, core.SchemeAutotune}

	fresh := make([]*core.Result, len(schemes))
	for i, s := range schemes {
		p := base
		p.Backend.CacheScheme = s
		var err error
		fresh[i], err = core.Run(p)
		if err != nil {
			t.Fatalf("fresh %s: %v", s, err)
		}
	}

	cache := newSnapshotCache()
	const replicas = 4
	n := len(schemes) * replicas
	results := make([]*core.Result, n)
	errs := make([]error, n)
	parallel.ForEach(n, n, func(i int) {
		p := base
		p.Name = fmt.Sprintf("%s-fork-%d", base.Name, i)
		p.Backend.CacheScheme = schemes[i%len(schemes)]
		results[i], errs[i] = cache.Run(p)
	})
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("cell %d: %v", i, errs[i])
		}
		twin := fresh[i%len(schemes)]
		res := results[i]
		if *res.Recovery != *twin.Recovery {
			t.Errorf("cell %d (%s): recovery diverged\nfork  %+v\nfresh %+v",
				i, schemes[i%len(schemes)], res.Recovery, twin.Recovery)
		}
		if res.WA != twin.WA || res.UsedBytes != twin.UsedBytes || res.WrittenBytes != twin.WrittenBytes {
			t.Errorf("cell %d: accounting diverged", i)
		}
		if res.LogLinesShipped != twin.LogLinesShipped || res.LogLinesDropped != twin.LogLinesDropped {
			t.Errorf("cell %d: log counts diverged", i)
		}
	}
	hits, misses, _ := cache.Stats()
	if misses != 1 || hits != int64(n-1) {
		t.Errorf("cache stats: %d hits %d misses, want %d hits 1 miss", hits, misses, n-1)
	}
}

// TestSnapshotCacheBoundAndReset pins the LRU bound behavior and the
// ECFAULT_SNAPSHOTS override.
func TestSnapshotCacheBoundAndReset(t *testing.T) {
	t.Setenv("ECFAULT_SNAPSHOTS", "1")
	c := newSnapshotCache()
	if c.bound != 1 {
		t.Fatalf("bound = %d, want 1", c.bound)
	}

	a := goldenProfiles()[0].P // rs layout
	b := a
	b.Workload.Seed++ // layout-relevant: different snapshot

	if _, err := c.Run(a); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(a); err != nil { // hit
		t.Fatal(err)
	}
	if _, err := c.Run(b); err != nil { // miss, evicts a
		t.Fatal(err)
	}
	if _, err := c.Run(a); err != nil { // miss again: a was evicted
		t.Fatal(err)
	}
	hits, misses, evictions := c.Stats()
	if hits != 1 || misses != 3 || evictions != 2 {
		t.Errorf("stats = %d/%d/%d hits/misses/evictions, want 1/3/2", hits, misses, evictions)
	}

	c.Reset()
	hits, misses, evictions = c.Stats()
	if hits != 0 || misses != 0 || evictions != 0 {
		t.Error("reset did not clear stats")
	}
	if len(c.entries) != 0 || len(c.order) != 0 {
		t.Error("reset did not clear entries")
	}
}

package experiments

import (
	"testing"
	"time"
)

// All experiment tests run at a high scale factor so the suite stays
// fast; shape assertions hold across scales.
const testScale = 40

func values(fig *Figure, config string) (rs, clay float64) {
	for _, c := range fig.Cells {
		if c.Config == config {
			return c.Values["RS(12,9)"], c.Values["Clay(12,9,11)"]
		}
	}
	return 0, 0
}

func TestFig2aShape(t *testing.T) {
	fig, err := Fig2aBackendCache(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Cells) != 3 {
		t.Fatalf("cells = %d", len(fig.Cells))
	}
	if fig.Baseline <= 0 {
		t.Fatal("baseline missing")
	}
	// Normalization: the minimum must be 1.00.
	minV := 99.0
	for _, c := range fig.Cells {
		for _, v := range c.Values {
			if v < minV {
				minV = v
			}
			if v < 1.0-1e-9 {
				t.Fatalf("normalized value below 1: %f", v)
			}
		}
	}
	if minV > 1.0+1e-9 {
		t.Fatalf("minimum should normalize to 1.0, got %f", minV)
	}
	// kv-optimized must be the worst scheme for each code (§4.2).
	for _, code := range []string{"RS(12,9)", "Clay(12,9,11)"} {
		kv := fig.Cells[0].Values[code]
		for _, c := range fig.Cells[1:] {
			if kv < c.Values[code]-1e-9 {
				t.Fatalf("%s: kv-optimized (%f) should be slowest, %s is %f", code, kv, c.Config, c.Values[code])
			}
		}
	}
}

func TestFig2bShape(t *testing.T) {
	fig, err := Fig2bPlacementGroups(testScale)
	if err != nil {
		t.Fatal(err)
	}
	rs1, clay1 := values(fig, "1 PG")
	rs16, clay16 := values(fig, "16 PGs")
	rs256, clay256 := values(fig, "256 PGs")
	// Larger pg_num recovers faster, for both codes.
	if !(rs1 > rs16 && rs16 > rs256) {
		t.Fatalf("RS ordering wrong: %f %f %f", rs1, rs16, rs256)
	}
	if !(clay1 > clay16 && clay16 > clay256) {
		t.Fatalf("Clay ordering wrong: %f %f %f", clay1, clay16, clay256)
	}
}

func TestFig2cShape(t *testing.T) {
	fig, err := Fig2cStripeUnit(testScale)
	if err != nil {
		t.Fatal(err)
	}
	rs4k, clay4k := values(fig, "4KB")
	rs4m, clay4m := values(fig, "4MB")
	rs64m, clay64m := values(fig, "64MB")
	// RS: 4KB fastest, 64MB much slower (padding).
	if !(rs64m > 2.5*rs4k) {
		t.Fatalf("RS 64MB should be >2.5x 4KB: %f vs %f", rs64m, rs4k)
	}
	if rs4m > 1.5*rs4k {
		t.Fatalf("RS 4MB should be close to 4KB: %f vs %f", rs4m, rs4k)
	}
	// Clay: sub-packetization makes 4KB much slower than 4MB.
	if !(clay4k > 2*clay4m) {
		t.Fatalf("Clay 4KB should be >2x 4MB: %f vs %f", clay4k, clay4m)
	}
	// Clay at 4KB is also much slower than RS at 4KB (the paper's 4.26x).
	if !(clay4k > 2*rs4k) {
		t.Fatalf("Clay@4KB should be far slower than RS@4KB: %f vs %f", clay4k, rs4k)
	}
	if !(clay64m > 2.5*clay4m) {
		t.Fatalf("Clay 64MB should be slow too: %f vs %f", clay64m, clay4m)
	}
}

func TestFig2dShape(t *testing.T) {
	fig, err := Fig2dFailureMode(testScale)
	if err != nil {
		t.Fatal(err)
	}
	rs2s, _ := values(fig, "2 failures same host")
	rs3s, clay3s := values(fig, "3 failures same host")
	rs3d, _ := values(fig, "3 failures diff. hosts")
	// All bars exceed the single-failure baseline.
	for _, c := range fig.Cells {
		for code, v := range c.Values {
			if v < 1.0 {
				t.Fatalf("%s/%s = %f below single-failure baseline", c.Config, code, v)
			}
		}
	}
	// Three failures slower than two.
	if !(rs3s > rs2s) {
		t.Fatalf("3 same (%f) should exceed 2 same (%f)", rs3s, rs2s)
	}
	// The paper's same-host crossover: Clay recovers faster than RS when
	// all three failures share a host.
	if !(clay3s <= rs3s+1e-9) {
		t.Fatalf("Clay 3-same (%f) should not exceed RS 3-same (%f)", clay3s, rs3s)
	}
	// Locality matters: diff-hosts is not faster than same-host for RS.
	if rs3d < rs3s-0.25 {
		t.Fatalf("3 diff (%f) unexpectedly far below 3 same (%f)", rs3d, rs3s)
	}
}

func TestFig3TimelineShape(t *testing.T) {
	tl, err := Fig3Timeline(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if tl.RecoveryStarted <= 0 || tl.RecoveryFinished <= tl.RecoveryStarted {
		t.Fatalf("timeline degenerate: start=%v finish=%v", tl.RecoveryStarted, tl.RecoveryFinished)
	}
	// The checking period is a substantial share, §4.3's core claim.
	if tl.CheckingFraction < 0.3 || tl.CheckingFraction > 0.8 {
		t.Fatalf("checking fraction = %f", tl.CheckingFraction)
	}
	if tl.FractionRange[0] >= tl.FractionRange[1] {
		t.Fatalf("fraction range degenerate: %v", tl.FractionRange)
	}
	if len(tl.Events) == 0 {
		t.Fatal("no merged log events")
	}
	// Events are time sorted.
	for i := 1; i < len(tl.Events); i++ {
		if tl.Events[i].Time < tl.Events[i-1].Time {
			t.Fatal("events not sorted")
		}
	}
}

func TestTable3Shape(t *testing.T) {
	rows, err := Table3WriteAmplification(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	j1, j2 := rows[0].Report, rows[1].Report
	// Paper: actual WA always exceeds n/k, and by more for RS(15,12).
	if j1.DiffVsTheory < 0.15 || j1.DiffVsTheory > 0.55 {
		t.Fatalf("J1 diff = %f, want ~0.32", j1.DiffVsTheory)
	}
	if j2.DiffVsTheory < 0.5 || j2.DiffVsTheory > 0.95 {
		t.Fatalf("J2 diff = %f, want ~0.72", j2.DiffVsTheory)
	}
	if j2.DiffVsTheory <= j1.DiffVsTheory {
		t.Fatal("RS(15,12) must show a larger gap than RS(12,9)")
	}
	if j1.Measured < j1.FormulaBound || j2.Measured < j2.FormulaBound {
		t.Fatal("formula bound violated")
	}
}

func TestWAFormulaValidationHolds(t *testing.T) {
	rows, err := WAFormulaValidation(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 36 {
		t.Fatalf("rows = %d, want 4 geometries x 3 sizes x 3 units", len(rows))
	}
	for _, r := range rows {
		if !r.Holds {
			t.Fatalf("formula violated at k=%d m=%d size=%d unit=%d: measured %f < bound %f",
				r.K, r.M, r.ObjectSize, r.StripeUnit, r.Measured, r.Formula)
		}
	}
}

func TestRunRecoveryRejectsFaultFreeProfile(t *testing.T) {
	p := baseProfile(testScale)
	p.Faults = nil
	if _, _, err := runRecovery(p); err == nil {
		t.Fatal("fault-free profile accepted by runRecovery")
	}
}

func TestPluginComparison(t *testing.T) {
	rows, err := PluginComparison(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byLabel := map[string]PluginRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
		if r.RecoveryTime <= 0 || r.ActualWA <= 1 || r.DurabilityNines <= 0 {
			t.Fatalf("row %s incomplete: %+v", r.Label, r)
		}
	}
	rs := byLabel["RS(12,9)"]
	clay := byLabel["Clay(12,9,11)"]
	lrc := byLabel["LRC(9,3,3)"]
	shec := byLabel["SHEC(9,5,3)"]
	// Repair-traffic ordering: Clay < LRC < SHEC < RS.
	if !(clay.NetPerChunk < lrc.NetPerChunk && lrc.NetPerChunk < shec.NetPerChunk && shec.NetPerChunk < rs.NetPerChunk) {
		t.Fatalf("traffic ordering wrong: rs=%.2f clay=%.2f lrc=%.2f shec=%.2f",
			rs.NetPerChunk, clay.NetPerChunk, lrc.NetPerChunk, shec.NetPerChunk)
	}
	// RS and Clay store identically; LRC/SHEC pay more parities.
	if lrc.ActualWA <= rs.ActualWA || shec.ActualWA <= rs.ActualWA {
		t.Fatal("locality codes must cost more storage")
	}
}

func TestScaledRunsAreFast(t *testing.T) {
	start := time.Now()
	if _, err := Fig3Timeline(100); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("scaled fig3 took %v", elapsed)
	}
}

package experiments

import (
	"os"
	"strconv"
	"sync"

	"repro/internal/core"
)

// defaultSnapshotBound caps how many populated-cluster snapshots are kept
// alive at once. Each snapshot pins the frozen stores of one cluster
// image (tens of MB at bench scales), and campaign sweeps rarely use more
// than a handful of distinct layouts, so a small bound loses nothing.
const defaultSnapshotBound = 16

// snapshotEntry is one cached populate, guarded by a sync.Once so that
// concurrent cells sharing a layout populate exactly one cluster between
// them (singleflight) while the cache lock stays uncontended.
type snapshotEntry struct {
	once sync.Once
	snap *core.Snapshot
	err  error
}

// snapshotCache is a bounded LRU of populated-cluster snapshots keyed by
// core.Profile.LayoutKey. It is shared across the parallel cell fan-out
// of every experiment in the process. Snapshots carry no erasure codes:
// forks look their pool's code up in the process-wide codecache registry,
// so evicting a snapshot never discards compiled plans or programs.
type snapshotCache struct {
	mu      sync.Mutex
	bound   int
	entries map[string]*snapshotEntry
	order   []string // LRU order: least recently used first

	hits      int64
	misses    int64
	evictions int64
}

func newSnapshotCache() *snapshotCache {
	return &snapshotCache{bound: snapshotBound(), entries: map[string]*snapshotEntry{}}
}

// snapshotBound resolves the cache bound: ECFAULT_SNAPSHOTS overrides the
// default (values < 1 are clamped to 1 — disabling is ECFAULT_NOSNAPSHOT's
// job).
func snapshotBound() int {
	if v := os.Getenv("ECFAULT_SNAPSHOTS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			if n < 1 {
				n = 1
			}
			return n
		}
	}
	return defaultSnapshotBound
}

// snapshotsDisabled reports whether the snapshot layer is switched off
// (ECFAULT_NOSNAPSHOT set): every cell then builds its cluster from
// scratch, the pre-snapshot behavior.
func snapshotsDisabled() bool {
	return os.Getenv("ECFAULT_NOSNAPSHOT") != ""
}

// entry returns the cache slot for a layout key, creating and LRU-bumping
// it under the lock. Population happens outside the lock via the entry's
// once.
func (c *snapshotCache) entry(key string) *snapshotEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
		c.bump(key)
		return e
	}
	c.misses++
	e = &snapshotEntry{}
	c.entries[key] = e
	c.order = append(c.order, key)
	for len(c.entries) > c.bound {
		victim := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, victim)
		c.evictions++
	}
	return e
}

// bump moves a key to the most-recently-used end.
func (c *snapshotCache) bump(key string) {
	for i, k := range c.order {
		if k == key {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), key)
			return
		}
	}
}

// Run executes one cell: fetch (or populate exactly once) the snapshot
// for the profile's layout, then run the recovery side on a copy-on-write
// fork. Results are bit-identical to core.Run on a fresh cluster.
func (c *snapshotCache) Run(p core.Profile) (*core.Result, error) {
	e := c.entry(p.LayoutKey())
	e.once.Do(func() {
		e.snap, e.err = core.Populate(p)
	})
	if e.err != nil {
		return nil, e.err
	}
	return e.snap.Run(p)
}

// Reset drops every cached snapshot and re-reads the bound from the
// environment. Benchmarks use it to measure cold-cache behavior and to
// flip ECFAULT_SNAPSHOTS/ECFAULT_NOSNAPSHOT between runs.
func (c *snapshotCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bound = snapshotBound()
	c.entries = map[string]*snapshotEntry{}
	c.order = nil
	c.hits, c.misses, c.evictions = 0, 0, 0
}

// Stats returns (hits, misses, evictions) since the last Reset.
func (c *snapshotCache) Stats() (int64, int64, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// engineCache is the process-wide snapshot cache behind runProfiles.
var engineCache = newSnapshotCache()

// ResetSnapshotCache clears the process-wide snapshot cache and re-reads
// the ECFAULT_SNAPSHOTS bound. Exposed for benchmarks and tests.
func ResetSnapshotCache() { engineCache.Reset() }

// SnapshotCacheStats returns (hits, misses, evictions) of the process-wide
// snapshot cache since the last reset.
func SnapshotCacheStats() (int64, int64, int64) { return engineCache.Stats() }

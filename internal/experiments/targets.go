package experiments

import "math"

// PaperTargets holds the values read from the paper's figures and tables,
// used to report paper-vs-measured deltas. Figure bars are normalized
// recovery times; where a bar is only approximately legible from the
// published figure the closest consistent reading is recorded (flagged in
// EXPERIMENTS.md).
type PaperTargets struct {
	Figures map[string]map[string]float64 // figID -> "config/code" -> value
	// Fig3CheckingFraction is §4.3's 53.7% headline.
	Fig3CheckingFraction float64
	// Fig3Range is the 41%..58% sweep.
	Fig3Range [2]float64
	// Table3 maps code labels to (actual WA, diff vs n/k).
	Table3 map[string][2]float64
}

// Targets returns the paper's published values.
func Targets() PaperTargets {
	return PaperTargets{
		Figures: map[string]map[string]float64{
			"fig2a": {
				"kv-optimized/RS(12,9)":        1.08,
				"kv-optimized/Clay(12,9,11)":   1.11,
				"data-optimized/RS(12,9)":      1.03,
				"data-optimized/Clay(12,9,11)": 1.05,
				"autotune/RS(12,9)":            1.00,
				"autotune/Clay(12,9,11)":       1.01,
			},
			"fig2b": {
				"1 PG/RS(12,9)":         1.22,
				"1 PG/Clay(12,9,11)":    1.35,
				"16 PGs/RS(12,9)":       1.04,
				"16 PGs/Clay(12,9,11)":  1.03,
				"256 PGs/RS(12,9)":      1.00,
				"256 PGs/Clay(12,9,11)": 1.02,
			},
			"fig2c": {
				"4KB/RS(12,9)":       1.00,
				"4KB/Clay(12,9,11)":  4.26,
				"4MB/RS(12,9)":       1.08,
				"4MB/Clay(12,9,11)":  1.12,
				"64MB/RS(12,9)":      3.29,
				"64MB/Clay(12,9,11)": 3.40, // "relatively high"; exact bar not legible
			},
			"fig2d": {
				"2 failures same host/RS(12,9)":        1.08,
				"2 failures same host/Clay(12,9,11)":   1.09,
				"2 failures diff. hosts/RS(12,9)":      1.12,
				"2 failures diff. hosts/Clay(12,9,11)": 1.14,
				"3 failures same host/RS(12,9)":        1.49,
				"3 failures same host/Clay(12,9,11)":   1.45,
				"3 failures diff. hosts/RS(12,9)":      1.51,
				"3 failures diff. hosts/Clay(12,9,11)": 1.55,
			},
		},
		Fig3CheckingFraction: 0.537,
		Fig3Range:            [2]float64{0.41, 0.58},
		Table3: map[string][2]float64{
			"RS(12,9)":  {1.76, 0.323},
			"RS(15,12)": {2.15, 0.720},
		},
	}
}

// Delta is one paper-vs-measured comparison point.
type Delta struct {
	Key      string
	Paper    float64
	Measured float64
}

// AbsErr is |measured - paper|.
func (d Delta) AbsErr() float64 { return math.Abs(d.Measured - d.Paper) }

// RelErr is the error relative to the paper value.
func (d Delta) RelErr() float64 {
	if d.Paper == 0 {
		return math.Inf(1)
	}
	return d.AbsErr() / d.Paper
}

// CompareFigure lines a measured figure up against the paper's bars.
// Bars the paper does not publish are skipped.
func CompareFigure(fig *Figure) []Delta {
	targets := Targets().Figures[fig.ID]
	var out []Delta
	for _, cell := range fig.Cells {
		for code, v := range cell.Values {
			key := cell.Config + "/" + code
			if paper, ok := targets[key]; ok {
				out = append(out, Delta{Key: key, Paper: paper, Measured: v})
			}
		}
	}
	return out
}

// MeanAbsErr averages the absolute errors of a comparison.
func MeanAbsErr(deltas []Delta) float64 {
	if len(deltas) == 0 {
		return 0
	}
	sum := 0.0
	for _, d := range deltas {
		sum += d.AbsErr()
	}
	return sum / float64(len(deltas))
}

package cluster

import (
	"fmt"
	"sort"

	"repro/internal/bluestore"
	"repro/internal/erasure/codecache"
)

// snapPG captures one placement group's post-populate state. The acting
// set is copied per fork (recovery remaps it in place); the object
// records are shared read-only across forks — recovery only reads their
// fields — with the slice capacity clamped so a fork appending to its
// own PG reallocates instead of scribbling over shared backing memory.
type snapPG struct {
	id      int
	acting  []int
	objects []*ObjectRecord
}

// snapPool captures one pool: its normalized creation config (so forks
// look up the shared erasure code without re-running CRUSH for 256 PG
// placements) and its PGs.
type snapPool struct {
	cfg PoolConfig
	pgs []snapPG
}

// Snapshot is an immutable populated-cluster image. It holds the frozen
// per-OSD stores (shared copy-on-write bases) plus the logical pool/PG
// state, and can be forked any number of times, concurrently, into
// independent clusters that each pay only for the state they mutate
// during recovery.
type Snapshot struct {
	cfg    Config             // normalized parent config, Log stripped
	stores []*bluestore.Store // frozen, indexed by OSD id
	pools  []snapPool         // sorted by pool name
}

// Snapshot freezes the cluster's stores and captures its logical state.
// The cluster must be quiescent (no scheduled simulator events); after
// the call its stores reject writes, so the parent is only good for
// reads and further forks.
func (c *Cluster) Snapshot() *Snapshot {
	s := &Snapshot{cfg: c.cfg}
	s.cfg.Log = nil
	for _, o := range c.osds {
		o.Store.Freeze()
		s.stores = append(s.stores, o.Store)
	}
	names := make([]string, 0, len(c.pools))
	for name := range c.pools {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pool := c.pools[name]
		sp := snapPool{cfg: pool.cfg}
		for _, pg := range pool.PGs {
			objs := pg.Objects
			sp.pgs = append(sp.pgs, snapPG{
				id:      pg.ID,
				acting:  append([]int(nil), pg.Acting...),
				objects: objs[:len(objs):len(objs)],
			})
		}
		s.pools = append(s.pools, sp)
	}
	return s
}

// Config returns the snapshot's normalized cluster config (Log is nil).
func (s *Snapshot) Config() Config { return s.cfg }

// Fork builds a fresh cluster — new simulator, network, CRUSH map,
// monitor, queues — whose stores are copy-on-write forks of the
// snapshot and whose pools carry the captured PG placements and shared
// object records. cfg may change recovery-side knobs (Net, Cost, cache
// scheme, Log); geometry must match the snapshot, and bluestore rejects
// any layout-relevant store field change.
func (s *Snapshot) Fork(cfg Config) (*Cluster, error) {
	norm, err := normalizeClusterConfig(cfg)
	if err != nil {
		return nil, err
	}
	if norm.Hosts != s.cfg.Hosts || norm.OSDsPerHost != s.cfg.OSDsPerHost ||
		norm.Racks != s.cfg.Racks || norm.DeviceCapacity != s.cfg.DeviceCapacity {
		return nil, fmt.Errorf("%w: fork geometry %d×%d/%d racks %d != snapshot %d×%d/%d racks %d",
			ErrBadGeometry, norm.Hosts, norm.OSDsPerHost, norm.DeviceCapacity, norm.Racks,
			s.cfg.Hosts, s.cfg.OSDsPerHost, s.cfg.DeviceCapacity, s.cfg.Racks)
	}
	c, err := build(cfg, func(cfg Config, id, hostIdx, devIdx int) (*bluestore.Store, error) {
		return s.stores[id].Fork(cfg.Store)
	})
	if err != nil {
		return nil, err
	}
	for _, sp := range s.pools {
		// Forks receive the registry-shared code for the pool spec: the
		// construction is immutable and its plan/program caches are
		// concurrency-safe with singleflight fill, so the parallel
		// fan-out shares compiled state instead of rebuilding it per
		// fork. ECFAULT_NOCODECACHE restores private per-fork codes.
		code, err := codecache.Get(sp.cfg.Plugin, sp.cfg.K, sp.cfg.M, sp.cfg.D)
		if err != nil {
			return nil, err
		}
		pool := &Pool{
			Name:          sp.cfg.Name,
			Plugin:        sp.cfg.Plugin,
			Code:          code,
			PGCount:       sp.cfg.PGNum,
			StripeUnit:    sp.cfg.StripeUnit,
			FailureDomain: sp.cfg.FailureDomain,
			cfg:           sp.cfg,
		}
		for i := range sp.pgs {
			spg := &sp.pgs[i]
			pool.PGs = append(pool.PGs, &PG{
				ID:      spg.id,
				Acting:  append([]int(nil), spg.acting...),
				Objects: spg.objects,
			})
		}
		c.pools[sp.cfg.Name] = pool
	}
	return c, nil
}

package cluster

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/workload"
)

// TestLRCPoolRecovery runs an LRC pool through a device failure: the
// repair plan should stay within the local group.
func TestLRCPoolRecovery(t *testing.T) {
	c := smallCluster(t, 14, 2, nil)
	if _, err := c.CreatePool(PoolConfig{
		Name: "lrcpool", Plugin: "lrc", K: 8, M: 2, D: 2, // 2 groups + 2 globals
		PGNum: 16, StripeUnit: 1 << 20, FailureDomain: "host",
	}); err != nil {
		t.Fatal(err)
	}
	objs, _ := workload.Spec{Count: 64, ObjectSize: 8 << 20, NamePrefix: "o"}.Objects()
	if err := c.BulkLoad("lrcpool", objs); err != nil {
		t.Fatal(err)
	}
	host, err := c.HostWithMostChunks("lrcpool")
	if err != nil {
		t.Fatal(err)
	}
	victim := c.Crush().OSDsOnHost(host)[0]
	c.InjectOSDFailures(time.Second, victim)
	res, err := c.RecoverPool("lrcpool")
	if err != nil {
		t.Fatal(err)
	}
	if res.RepairedChunks == 0 {
		t.Fatal("nothing repaired")
	}
	// LRC local repair reads group size (4+1-1=4) chunks per object, so
	// helper traffic per object must be ~half of RS's k=8 chunks.
	perObject := float64(res.NetworkBytes-res.WrittenBytes) / float64(res.ObjectRepairs)
	chunk := float64((8 << 20) / 8)
	if ratio := perObject / chunk; ratio > 5 {
		t.Fatalf("LRC repair read %.2f chunks/object, expected ~4", ratio)
	}
}

// TestSHECPoolRecovery runs a SHEC pool through a device failure.
func TestSHECPoolRecovery(t *testing.T) {
	c := smallCluster(t, 18, 2, nil)
	if _, err := c.CreatePool(PoolConfig{
		Name: "shecpool", Plugin: "shec", K: 10, M: 6, D: 3,
		PGNum: 16, StripeUnit: 1 << 20, FailureDomain: "host",
	}); err != nil {
		t.Fatal(err)
	}
	objs, _ := workload.Spec{Count: 48, ObjectSize: 10 << 20, NamePrefix: "o"}.Objects()
	if err := c.BulkLoad("shecpool", objs); err != nil {
		t.Fatal(err)
	}
	host, _ := c.HostWithMostChunks("shecpool")
	victim := c.Crush().OSDsOnHost(host)[0]
	c.InjectOSDFailures(time.Second, victim)
	res, err := c.RecoverPool("shecpool")
	if err != nil {
		t.Fatal(err)
	}
	if res.RepairedChunks == 0 {
		t.Fatal("nothing repaired")
	}
	// SHEC single repair reads a window of 5 chunks, half of k=10.
	perObject := float64(res.NetworkBytes-res.WrittenBytes) / float64(res.ObjectRepairs)
	chunk := float64((10 << 20) / 10)
	if ratio := perObject / chunk; ratio > 6.5 {
		t.Fatalf("SHEC repair read %.2f chunks/object, expected ~5", ratio)
	}
}

// TestLRCPayloadRecovery verifies bit-exact payload restoration through
// the LRC code path.
func TestLRCPayloadRecovery(t *testing.T) {
	c := smallCluster(t, 14, 2, nil)
	p, err := c.CreatePool(PoolConfig{
		Name: "lrcpool", Plugin: "lrc", K: 4, M: 2, D: 2,
		PGNum: 8, StripeUnit: 64 << 10, FailureDomain: "host",
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	contents := map[string][]byte{}
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("obj-%d", i)
		data := make([]byte, 100_000+rng.Intn(50_000))
		rng.Read(data)
		contents[name] = data
		if err := c.WriteObject("lrcpool", name, data); err != nil {
			t.Fatal(err)
		}
	}
	victim := p.PGs[0].Acting[2]
	c.InjectOSDFailures(time.Second, victim)
	if _, err := c.RecoverPool("lrcpool"); err != nil {
		t.Fatal(err)
	}
	for name, want := range contents {
		got, err := c.ReadObject("lrcpool", name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s differs after LRC recovery", name)
		}
	}
}

// TestRepairTrafficComparison pins the repair-traffic ordering of all four
// plugins on comparable geometries: clay < lrc < shec < rs is not the
// point — the point is each matches its plan's prediction.
func TestRepairTrafficComparison(t *testing.T) {
	type result struct {
		plugin string
		ratio  float64
	}
	var results []result
	for _, cfg := range []struct {
		plugin  string
		k, m, d int
	}{
		{"jerasure_reed_sol_van", 9, 3, 0},
		{"clay", 9, 3, 11},
		{"lrc", 9, 3, 3},
		{"shec", 9, 3, 2},
	} {
		c := smallCluster(t, 16, 2, nil)
		if _, err := c.CreatePool(PoolConfig{
			Name: "p", Plugin: cfg.plugin, K: cfg.k, M: cfg.m, D: cfg.d,
			PGNum: 16, StripeUnit: 1 << 20, FailureDomain: "host",
		}); err != nil {
			t.Fatal(err)
		}
		objs, _ := workload.Spec{Count: 48, ObjectSize: 9 << 20, NamePrefix: "o"}.Objects()
		if err := c.BulkLoad("p", objs); err != nil {
			t.Fatal(err)
		}
		host, _ := c.HostWithMostChunks("p")
		c.InjectOSDFailures(time.Second, c.Crush().OSDsOnHost(host)[0])
		res, err := c.RecoverPool("p")
		if err != nil {
			t.Fatalf("%s: %v", cfg.plugin, err)
		}
		perObject := float64(res.NetworkBytes-res.WrittenBytes) / float64(res.ObjectRepairs)
		chunk := float64((9 << 20) / 9)
		results = append(results, result{cfg.plugin, perObject / chunk})
	}
	byName := map[string]float64{}
	for _, r := range results {
		byName[r.plugin] = r.ratio
	}
	if !(byName["clay"] < byName["jerasure_reed_sol_van"]) {
		t.Fatalf("clay (%f) should move less repair traffic than RS (%f)", byName["clay"], byName["jerasure_reed_sol_van"])
	}
	if !(byName["lrc"] < byName["jerasure_reed_sol_van"]) {
		t.Fatalf("lrc (%f) should move less repair traffic than RS (%f)", byName["lrc"], byName["jerasure_reed_sol_van"])
	}
	if !(byName["shec"] < byName["jerasure_reed_sol_van"]) {
		t.Fatalf("shec (%f) should move less repair traffic than RS (%f)", byName["shec"], byName["jerasure_reed_sol_van"])
	}
}

package cluster

import (
	"testing"
	"time"
)

func TestRecoveryFractionClamps(t *testing.T) {
	cm := DefaultCostModel()
	if f := cm.recoveryFraction(false); f != cm.RecoveryBWFraction {
		t.Fatalf("busy fraction = %f", f)
	}
	boosted := cm.recoveryFraction(true)
	if boosted <= cm.RecoveryBWFraction {
		t.Fatal("idle boost not applied")
	}
	if boosted > 1 {
		t.Fatal("fraction above 1")
	}
	cm.RecoveryBWFraction = 0
	if cm.recoveryFraction(false) != 1 {
		t.Fatal("zero fraction should disable throttling")
	}
	cm.RecoveryBWFraction = 0.9
	cm.IdleBoost = 5
	if cm.recoveryFraction(true) != 1 {
		t.Fatal("boost must clamp at 1")
	}
}

func TestThrottledTimeCap(t *testing.T) {
	cm := DefaultCostModel()
	cm.RecoveryBWFraction = 0.1
	cm.RecoveryOpCap = time.Second
	cm.IdleBoost = 1
	// Small op: pure throttled rate.
	small := cm.throttledTime(1<<20, 100e6, false)
	want := time.Duration(float64(1<<20) / 10e6 * float64(time.Second))
	if small != want {
		t.Fatalf("small op = %v, want %v", small, want)
	}
	// Huge op: cap + full-bandwidth transfer, well under the throttled time.
	huge := cm.throttledTime(1<<30, 100e6, false)
	throttled := time.Duration(float64(1<<30) / 10e6 * float64(time.Second))
	capped := time.Second + time.Duration(float64(1<<30)/100e6*float64(time.Second))
	if huge != capped {
		t.Fatalf("huge op = %v, want %v", huge, capped)
	}
	if huge >= throttled {
		t.Fatal("cap must beat pure throttling for large ops")
	}
	// Cap disabled.
	cm.RecoveryOpCap = 0
	if cm.throttledTime(1<<30, 100e6, false) != throttled {
		t.Fatal("no cap should mean pure throttled time")
	}
}

func TestDiskReadTimeComponents(t *testing.T) {
	cm := DefaultCostModel()
	base := cm.diskReadTime(0, 0, 0, false)
	if base != 0 {
		t.Fatalf("zero read costs %v", base)
	}
	withIOs := cm.diskReadTime(0, 10, 0, false)
	if withIOs != 10*cm.PerIOOverhead {
		t.Fatalf("ios cost = %v", withIOs)
	}
	withRuns := cm.diskReadTime(0, 0, 4, false)
	if withRuns != 4*cm.DiskSeek {
		t.Fatalf("runs cost = %v", withRuns)
	}
	// Bytes dominate for large sequential reads.
	big := cm.diskReadTime(100<<20, 1, 1, false)
	if big < time.Second {
		t.Fatalf("100 MiB at throttled rate should exceed 1s, got %v", big)
	}
}

func TestDiskWriteSlowerThanFullBW(t *testing.T) {
	cm := DefaultCostModel()
	throttled := cm.diskWriteTime(8<<20, false)
	idle := cm.diskWriteTime(8<<20, true)
	if idle >= throttled {
		t.Fatal("idle writes should be faster")
	}
}

func TestDecodeTime(t *testing.T) {
	cm := DefaultCostModel()
	pure := cm.decodeTime(1<<30, 0)
	want := time.Duration(float64(1<<30) / cm.DecodeBW * float64(time.Second))
	if pure != want {
		t.Fatalf("decode = %v want %v", pure, want)
	}
	withSub := cm.decodeTime(0, 100_000)
	if withSub != 100_000*(cm.ClaySubChunkCPU+cm.ClaySubChunkOp) {
		t.Fatalf("sub-chunk cost = %v", withSub)
	}
}

func TestReservationOrder(t *testing.T) {
	got := reservationOrder(7, []int{3, 7, 12, 3})
	want := []int{3, 7, 12}
	if len(got) != len(want) {
		t.Fatalf("order = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestPlanHelperIOModes(t *testing.T) {
	c := smallCluster(t, 16, 2, nil)
	// Clay pool with a large stripe unit: sub-chunks above the block size
	// take the strided path.
	pool, err := c.CreatePool(PoolConfig{
		Name: "p", Plugin: "clay", K: 9, M: 3, D: 11,
		PGNum: 4, StripeUnit: 4 << 20, FailureDomain: "host",
	})
	if err != nil {
		t.Fatal(err)
	}
	pg := pool.PGs[0]
	plan, err := pool.Code.RepairPlan([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	chunk := int64(8 << 20) // 2 stripe units
	hios := c.planHelperIO(pool, pg, plan, chunk)
	if len(hios) != 11 {
		t.Fatalf("helpers = %d", len(hios))
	}
	for _, h := range hios {
		if !h.strided {
			t.Fatal("4MB-unit clay sub-chunks should be strided")
		}
		// Network ships beta/alpha of the chunk.
		want := chunk * 27 / 81
		if h.netBytes != want {
			t.Fatalf("netBytes = %d, want %d", h.netBytes, want)
		}
		if h.diskBytes != h.netBytes {
			t.Fatal("strided path moves exactly the planned bytes")
		}
	}

	// Tiny stripe unit: sub-chunks below the block size coalesce.
	pool2, err := c.CreatePool(PoolConfig{
		Name: "p2", Plugin: "clay", K: 9, M: 3, D: 11,
		PGNum: 4, StripeUnit: 4096, FailureDomain: "host",
	})
	if err != nil {
		t.Fatal(err)
	}
	plan2, _ := pool2.Code.RepairPlan([]int{0})
	chunk2 := int64(1821 * 4096)
	hios2 := c.planHelperIO(pool2, pool2.PGs[0], plan2, chunk2)
	for _, h := range hios2 {
		if h.strided {
			t.Fatal("4KB-unit clay sub-chunks must coalesce")
		}
		if h.diskBytes != chunk2 {
			t.Fatalf("coalesced path should read the whole chunk, got %d", h.diskBytes)
		}
		if h.netBytes >= chunk2 {
			t.Fatal("network must still ship only planned bytes")
		}
	}

	// RS reads whole chunks in one run.
	pool3, err := c.CreatePool(PoolConfig{
		Name: "p3", Plugin: "jerasure_reed_sol_van", K: 9, M: 3,
		PGNum: 4, StripeUnit: 4 << 20, FailureDomain: "host",
	})
	if err != nil {
		t.Fatal(err)
	}
	plan3, _ := pool3.Code.RepairPlan([]int{0})
	hios3 := c.planHelperIO(pool3, pool3.PGs[0], plan3, 8<<20)
	if len(hios3) != 9 {
		t.Fatalf("rs helpers = %d", len(hios3))
	}
	for _, h := range hios3 {
		if h.ios != 1 || h.runs != 1 || h.diskBytes != 8<<20 || h.strided {
			t.Fatalf("rs helper io = %+v", h)
		}
	}
}

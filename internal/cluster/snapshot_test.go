package cluster

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/workload"
)

// populateSmall builds and loads the reference cluster for snapshot tests.
func populateSmall(t *testing.T, log LogFunc) *Cluster {
	t.Helper()
	c := smallCluster(t, 8, 2, log)
	rsPool(t, c, 16)
	objs, _ := workload.Spec{Count: 128, ObjectSize: 4 << 20, NamePrefix: "o"}.Objects()
	if err := c.BulkLoad("ecpool", objs); err != nil {
		t.Fatal(err)
	}
	return c
}

// runHostFailure drives a full host-failure recovery cycle and returns
// the measured result.
func runHostFailure(t *testing.T, c *Cluster) *RecoveryResult {
	t.Helper()
	host, err := c.HostWithMostChunks("ecpool")
	if err != nil {
		t.Fatal(err)
	}
	c.FailHost(10*time.Second, host)
	res, err := c.RecoverPool("ecpool")
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestForkRecoveryMatchesFresh(t *testing.T) {
	fresh := populateSmall(t, nil)
	freshRes := runHostFailure(t, fresh)

	parent := populateSmall(t, nil)
	snap := parent.Snapshot()
	fork, err := snap.Fork(snap.Config())
	if err != nil {
		t.Fatal(err)
	}
	forkRes := runHostFailure(t, fork)

	if *freshRes != *forkRes {
		t.Fatalf("fork recovery diverged:\nfresh %+v\nfork  %+v", freshRes, forkRes)
	}
	if fresh.UsedBytes() != fork.UsedBytes() {
		t.Fatalf("UsedBytes %d vs %d", fresh.UsedBytes(), fork.UsedBytes())
	}
}

func TestForkIsolationFromParentAndSiblings(t *testing.T) {
	parent := populateSmall(t, nil)
	parentUsed := parent.UsedBytes()
	snap := parent.Snapshot()

	f1, err := snap.Fork(snap.Config())
	if err != nil {
		t.Fatal(err)
	}
	f2, err := snap.Fork(snap.Config())
	if err != nil {
		t.Fatal(err)
	}

	// f1 loses a whole host; f2 loses a single different OSD.
	r1 := runHostFailure(t, f1)
	p2, _ := f2.Pool("ecpool")
	f2.InjectOSDFailures(time.Second, p2.PGs[0].Acting[1])
	r2, err := f2.RecoverPool("ecpool")
	if err != nil {
		t.Fatal(err)
	}
	if r1.RepairedChunks == 0 || r2.RepairedChunks == 0 {
		t.Fatal("both forks must repair something")
	}
	if r1.RepairedChunks <= r2.RepairedChunks {
		t.Fatalf("host failure repaired %d chunks, single-OSD %d", r1.RepairedChunks, r2.RepairedChunks)
	}

	// The parent saw none of it: same usage, all OSDs up, no degraded PGs.
	if got := parent.UsedBytes(); got != parentUsed {
		t.Fatalf("parent UsedBytes drifted %d -> %d", parentUsed, got)
	}
	for _, o := range parent.OSDs() {
		if !o.Up() {
			t.Fatalf("parent osd.%d marked down by a fork", o.ID)
		}
		if o.Store.Device().Removed() {
			t.Fatalf("parent osd.%d device removed by a fork", o.ID)
		}
	}
	pgs, _ := parent.DegradedPGs("ecpool")
	if len(pgs) != 0 {
		t.Fatalf("parent has %d degraded PGs", len(pgs))
	}
	pp, _ := parent.Pool("ecpool")
	for i, pg := range pp.PGs {
		f1p, _ := f1.Pool("ecpool")
		if pg.ID != f1p.PGs[i].ID {
			t.Fatal("pg order diverged")
		}
	}
}

func TestForkPayloadRecoveryIsolated(t *testing.T) {
	parent := smallCluster(t, 8, 2, nil)
	p := rsPool(t, parent, 4)
	contents := map[string][]byte{}
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("payload-%d", i)
		data := bytes.Repeat([]byte{byte(i + 1)}, 30_000)
		contents[name] = data
		if err := parent.WriteObject("ecpool", name, data); err != nil {
			t.Fatal(err)
		}
	}
	snap := parent.Snapshot()
	fork, err := snap.Fork(snap.Config())
	if err != nil {
		t.Fatal(err)
	}
	victim := p.PGs[0].Acting[1]
	fork.InjectOSDFailures(time.Second, victim)
	if _, err := fork.RecoverPool("ecpool"); err != nil {
		t.Fatal(err)
	}
	// Every object readable with correct bytes on the fork and the parent.
	for name, want := range contents {
		got, err := fork.ReadObject("ecpool", name)
		if err != nil {
			t.Fatalf("fork read %s: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("fork %s corrupted after recovery", name)
		}
		got, err = parent.ReadObject("ecpool", name)
		if err != nil {
			t.Fatalf("parent read %s: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("parent %s corrupted by fork recovery", name)
		}
	}
}

func TestForkRejectsGeometryChange(t *testing.T) {
	parent := smallCluster(t, 4, 2, nil)
	snap := parent.Snapshot()
	cfg := snap.Config()
	cfg.Hosts = 5
	if _, err := snap.Fork(cfg); err == nil {
		t.Fatal("geometry change accepted")
	}
	cfg = snap.Config()
	cfg.Store.MinAllocSize = 65536
	if _, err := snap.Fork(cfg); err == nil {
		t.Fatal("layout-relevant store change accepted")
	}
}

func TestSnapshotFreezesParentStores(t *testing.T) {
	parent := populateSmall(t, nil)
	parent.Snapshot()
	objs, _ := workload.Spec{Count: 1, ObjectSize: 1 << 20, NamePrefix: "late"}.Objects()
	if err := parent.BulkLoad("ecpool", objs); err == nil {
		t.Fatal("bulk load into frozen parent should fail")
	}
}

// TestForksShareCodeInstance: the parent pool and every fork receive the
// same registry code for the spec, so forks stop paying construction and
// share warm plan/program caches. ECFAULT_NOCODECACHE restores private
// instances per fork.
func TestForksShareCodeInstance(t *testing.T) {
	parent := populateSmall(t, nil)
	snap := parent.Snapshot()
	f1, err := snap.Fork(snap.Config())
	if err != nil {
		t.Fatal(err)
	}
	f2, err := snap.Fork(snap.Config())
	if err != nil {
		t.Fatal(err)
	}
	pp, _ := parent.Pool("ecpool")
	p1, _ := f1.Pool("ecpool")
	p2, _ := f2.Pool("ecpool")
	if pp.Code != p1.Code || p1.Code != p2.Code {
		t.Fatal("parent and forks should share one registry code instance")
	}

	t.Setenv("ECFAULT_NOCODECACHE", "1")
	private := populateSmall(t, nil)
	psnap := private.Snapshot()
	pf, err := psnap.Fork(psnap.Config())
	if err != nil {
		t.Fatal(err)
	}
	ppPool, _ := private.Pool("ecpool")
	pfPool, _ := pf.Pool("ecpool")
	if ppPool.Code == pfPool.Code {
		t.Fatal("ECFAULT_NOCODECACHE set but fork shares the parent code")
	}
}

package cluster

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/workload"
)

func payloadPool(t *testing.T) (*Cluster, *Pool, map[string][]byte) {
	t.Helper()
	c := smallCluster(t, 8, 2, nil)
	p, err := c.CreatePool(PoolConfig{
		Name: "scrubpool", Plugin: "jerasure_reed_sol_van",
		K: 4, M: 2, PGNum: 8, StripeUnit: 16 << 10, FailureDomain: "host",
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	contents := map[string][]byte{}
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("obj-%02d", i)
		data := make([]byte, 50_000+rng.Intn(30_000))
		rng.Read(data)
		contents[name] = data
		if err := c.WriteObject("scrubpool", name, data); err != nil {
			t.Fatal(err)
		}
	}
	return c, p, contents
}

func TestScrubCleanPool(t *testing.T) {
	c, _, _ := payloadPool(t)
	report, err := c.ScrubPool("scrubpool")
	if err != nil {
		t.Fatal(err)
	}
	if report.ChunksScrubbed != 12*6 {
		t.Fatalf("scrubbed %d chunks, want 72", report.ChunksScrubbed)
	}
	if len(report.Inconsistent) != 0 {
		t.Fatalf("clean pool reported %d inconsistencies", len(report.Inconsistent))
	}
}

func TestScrubDetectsCorruption(t *testing.T) {
	c, _, contents := payloadPool(t)
	// Corrupt two shards of one object and one shard of another.
	if err := c.CorruptChunk("scrubpool", "obj-03", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.CorruptChunk("scrubpool", "obj-03", 4); err != nil {
		t.Fatal(err)
	}
	if err := c.CorruptChunk("scrubpool", "obj-07", 0); err != nil {
		t.Fatal(err)
	}
	report, err := c.ScrubPool("scrubpool")
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Inconsistent) != 3 {
		t.Fatalf("found %d inconsistencies, want 3: %+v", len(report.Inconsistent), report.Inconsistent)
	}
	// Silent corruption: normal reads of obj-07 would return wrong data
	// when the damaged shard is a data shard, but scrub caught it first.
	repaired, err := c.RepairInconsistent("scrubpool", report)
	if err != nil {
		t.Fatal(err)
	}
	if repaired != 3 {
		t.Fatalf("repaired %d, want 3", repaired)
	}
	// Pool is clean again and data is intact.
	report2, err := c.ScrubPool("scrubpool")
	if err != nil {
		t.Fatal(err)
	}
	if len(report2.Inconsistent) != 0 {
		t.Fatalf("still %d inconsistencies after repair", len(report2.Inconsistent))
	}
	for name, want := range contents {
		got, err := c.ReadObject("scrubpool", name)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("%s wrong after scrub repair: %v", name, err)
		}
	}
}

func TestScrubAccountingMode(t *testing.T) {
	c := smallCluster(t, 8, 2, nil)
	if _, err := c.CreatePool(PoolConfig{
		Name: "acc", Plugin: "jerasure_reed_sol_van",
		K: 4, M: 2, PGNum: 4, StripeUnit: 1 << 20, FailureDomain: "host",
	}); err != nil {
		t.Fatal(err)
	}
	objs, _ := workload.Spec{Count: 8, ObjectSize: 4 << 20, NamePrefix: "o"}.Objects()
	if err := c.BulkLoad("acc", objs); err != nil {
		t.Fatal(err)
	}
	if err := c.CorruptChunk("acc", objs[2].Name, 3); err != nil {
		t.Fatal(err)
	}
	report, err := c.ScrubPool("acc")
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Inconsistent) != 1 || report.Inconsistent[0].Object != objs[2].Name {
		t.Fatalf("inconsistencies: %+v", report.Inconsistent)
	}
	if _, err := c.RepairInconsistent("acc", report); err != nil {
		t.Fatal(err)
	}
	report2, _ := c.ScrubPool("acc")
	if len(report2.Inconsistent) != 0 {
		t.Fatal("accounting-mode repair did not clear corruption")
	}
}

func TestCorruptChunkValidation(t *testing.T) {
	c, _, _ := payloadPool(t)
	if err := c.CorruptChunk("scrubpool", "missing", 0); err == nil {
		t.Fatal("missing object accepted")
	}
	if err := c.CorruptChunk("scrubpool", "obj-00", 99); err == nil {
		t.Fatal("bad shard accepted")
	}
	if err := c.CorruptChunk("nope", "obj-00", 0); err == nil {
		t.Fatal("missing pool accepted")
	}
}

func TestScrubSkipsDownOSDs(t *testing.T) {
	c, p, _ := payloadPool(t)
	c.OSD(p.PGs[0].Acting[0]).up = false
	report, err := c.ScrubPool("scrubpool")
	if err != nil {
		t.Fatal(err)
	}
	if report.SkippedDown == 0 {
		t.Fatal("down OSD chunks should be skipped")
	}
}

// TestSequentialFailureCycles runs two full failure/recovery rounds, the
// pattern a longer-running study would use.
func TestSequentialFailureCycles(t *testing.T) {
	c := smallCluster(t, 10, 2, nil)
	if _, err := c.CreatePool(PoolConfig{
		Name: "seq", Plugin: "jerasure_reed_sol_van",
		K: 4, M: 2, PGNum: 16, StripeUnit: 1 << 20, FailureDomain: "host",
	}); err != nil {
		t.Fatal(err)
	}
	objs, _ := workload.Spec{Count: 64, ObjectSize: 4 << 20, NamePrefix: "o"}.Objects()
	if err := c.BulkLoad("seq", objs); err != nil {
		t.Fatal(err)
	}

	host1, _ := c.HostWithMostChunks("seq")
	c.FailHost(c.Sim().Now()+time.Second, host1)
	res1, err := c.RecoverPool("seq")
	if err != nil {
		t.Fatal(err)
	}
	if res1.RepairedChunks == 0 {
		t.Fatal("first cycle repaired nothing")
	}

	// Second round: reset the batch, fail another host, recover again.
	c.ResetFailureState()
	host2, _ := c.HostWithMostChunks("seq")
	if host2 == host1 {
		t.Fatal("injector picked the dead host again")
	}
	c.FailHost(c.Sim().Now()+time.Second, host2)
	res2, err := c.RecoverPool("seq")
	if err != nil {
		t.Fatal(err)
	}
	if res2.RepairedChunks == 0 {
		t.Fatal("second cycle repaired nothing")
	}
	if res2.DetectedAt <= res1.FinishedAt {
		t.Fatal("second cycle must happen after the first")
	}
	pgs, _ := c.DegradedPGs("seq")
	if len(pgs) != 0 {
		t.Fatalf("%d PGs degraded after two cycles", len(pgs))
	}
}

package cluster

import (
	"testing"
	"time"

	"repro/internal/workload"
)

// TestRealRackTopology builds a cluster with explicit rack buckets and
// verifies rack-domain placement never co-locates two chunks in a rack,
// and that a whole-rack outage stays within fault tolerance.
func TestRealRackTopology(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hosts = 12
	cfg.OSDsPerHost = 2
	cfg.Racks = 6
	cfg.DeviceCapacity = 4 << 30
	cfg.Cost.MarkOutInterval = 20 * time.Second
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.CreatePool(PoolConfig{
		Name: "rp", Plugin: "jerasure_reed_sol_van",
		K: 4, M: 2, PGNum: 16, StripeUnit: 1 << 20, FailureDomain: "rack",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pg := range p.PGs {
		racks := map[string]bool{}
		for _, id := range pg.Acting {
			r := c.Crush().RackOf(id)
			if r == "" {
				t.Fatal("osd has no rack")
			}
			if racks[r] {
				t.Fatalf("pg %d places two chunks in %s", pg.ID, r)
			}
			racks[r] = true
		}
	}
	objs, _ := workload.Spec{Count: 32, ObjectSize: 2 << 20, NamePrefix: "o"}.Objects()
	if err := c.BulkLoad("rp", objs); err != nil {
		t.Fatal(err)
	}
	// Fail every host in one rack: each PG loses at most one chunk.
	victimRack := c.Crush().RackOf(p.PGs[0].Acting[0])
	var ids []int
	for _, osd := range c.OSDs() {
		if c.Crush().RackOf(osd.ID) == victimRack {
			ids = append(ids, osd.ID)
		}
	}
	c.InjectOSDFailures(time.Second, ids...)
	res, err := c.RecoverPool("rp")
	if err != nil {
		t.Fatal(err)
	}
	if res.RepairedChunks == 0 {
		t.Fatal("rack outage repaired nothing")
	}
}

// rackCluster builds a cluster with an explicit rack layer by driving the
// crush builder through cluster config — racks are exercised at the crush
// level; here we verify the pool-level rack domain path end to end using
// the "rack" failure domain over a flat map (hosts act as racks).
func TestRackFailureDomainPool(t *testing.T) {
	c := smallCluster(t, 8, 2, nil)
	p, err := c.CreatePool(PoolConfig{
		Name: "rackpool", Plugin: "jerasure_reed_sol_van",
		K: 4, M: 2, PGNum: 8, StripeUnit: 1 << 20, FailureDomain: "rack",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pg := range p.PGs {
		seen := map[string]bool{}
		for _, id := range pg.Acting {
			h := c.Crush().HostOf(id)
			if seen[h] {
				t.Fatalf("pg %d: two chunks in one rack-equivalent domain", pg.ID)
			}
			seen[h] = true
		}
	}
	objs, _ := workload.Spec{Count: 24, ObjectSize: 2 << 20, NamePrefix: "o"}.Objects()
	if err := c.BulkLoad("rackpool", objs); err != nil {
		t.Fatal(err)
	}
	host, _ := c.HostWithMostChunks("rackpool")
	c.FailHost(time.Second, host)
	if _, err := c.RecoverPool("rackpool"); err != nil {
		t.Fatal(err)
	}
}

// TestClayMultiLossFullDecode drives a Clay pool through concurrent
// same-host device failures under the OSD failure domain: some PGs lose
// two chunks and must take the full-decode path, which the result
// surfaces via FullDecodeObjects.
func TestClayMultiLossFullDecode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hosts = 8
	cfg.OSDsPerHost = 3
	cfg.DeviceCapacity = 4 << 30
	cfg.Cost.MarkOutInterval = 20 * time.Second
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreatePool(PoolConfig{
		Name: "clayosd", Plugin: "clay", K: 4, M: 2, D: 5,
		PGNum: 64, StripeUnit: 1 << 20, FailureDomain: "osd",
	}); err != nil {
		t.Fatal(err)
	}
	objs, _ := workload.Spec{Count: 256, ObjectSize: 4 << 20, NamePrefix: "o"}.Objects()
	if err := c.BulkLoad("clayosd", objs); err != nil {
		t.Fatal(err)
	}
	// Fail two OSDs on one host: with domain=osd some PGs have chunks on
	// both.
	host, _ := c.HostWithMostChunks("clayosd")
	ids := c.Crush().OSDsOnHost(host)[:2]
	c.InjectOSDFailures(time.Second, ids...)
	res, err := c.RecoverPool("clayosd")
	if err != nil {
		t.Fatal(err)
	}
	if res.FullDecodeObjects == 0 {
		t.Skip("placement produced no double-loss PG at this seed; geometry-dependent")
	}
	if res.FullDecodeObjects >= res.ObjectRepairs {
		t.Fatal("not all repairs should be full decodes")
	}
}

// TestLRCGuardBlocksWholeGroupLoss shows the pattern-aware guard in
// action at the cluster level: a fault plan that would wipe an entire LRC
// local group within one PG is refused during recovery.
func TestLRCGuardBlocksWholeGroupLoss(t *testing.T) {
	c := smallCluster(t, 14, 2, nil)
	p, err := c.CreatePool(PoolConfig{
		Name: "lrcguard", Plugin: "lrc", K: 4, M: 1, D: 2, // 2 groups of 2 + 1 global
		PGNum: 4, StripeUnit: 1 << 20, FailureDomain: "host",
	})
	if err != nil {
		t.Fatal(err)
	}
	objs, _ := workload.Spec{Count: 8, ObjectSize: 2 << 20, NamePrefix: "o"}.Objects()
	if err := c.BulkLoad("lrcguard", objs); err != nil {
		t.Fatal(err)
	}
	// Kill a whole group of one PG: data shards 0,1 plus local parity 4
	// (3 losses: the code's M() is 3, but the pattern is undecodable).
	pg := p.PGs[0]
	if len(pg.Objects) == 0 {
		pg = p.PGs[1]
	}
	c.InjectOSDFailures(time.Second, pg.Acting[0], pg.Acting[1], pg.Acting[4])
	if _, err := c.RecoverPool("lrcguard"); err == nil {
		t.Fatal("whole-group loss must be refused as unrecoverable")
	}
}

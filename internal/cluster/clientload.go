package cluster

import (
	"fmt"
	"time"

	"repro/internal/simclock"
)

// ClientLoad generates background client I/O against a pool for the
// duration of the simulation: a closed loop of readers issuing object
// reads at a target rate. Client ops run at full device bandwidth but
// share the same disk and NIC queues as recovery, so they lengthen the
// EC recovery phase exactly the way foreground traffic does in a real
// cluster — the contention mclock's recovery reservation exists to bound.
type ClientLoad struct {
	c    *Cluster
	pool *Pool

	opsPerSec   float64
	stopped     bool
	outstanding int
	maxInFlight int

	// Stats.
	OpsCompleted int
	OpsShed      int // dropped by admission control under saturation
	TotalLatency simclock.Time
}

// StartClientLoad begins issuing reads of random objects in the pool at
// the given rate. It returns a handle to stop the load and read its
// stats; the load also stops when the pool has no objects.
func (c *Cluster) StartClientLoad(poolName string, opsPerSec float64) (*ClientLoad, error) {
	pool, err := c.Pool(poolName)
	if err != nil {
		return nil, err
	}
	if opsPerSec <= 0 {
		return nil, fmt.Errorf("cluster: client load needs a positive rate")
	}
	total := 0
	for _, pg := range pool.PGs {
		total += len(pg.Objects)
	}
	if total == 0 {
		return nil, fmt.Errorf("cluster: pool %q has no objects to read", poolName)
	}
	load := &ClientLoad{c: c, pool: pool, opsPerSec: opsPerSec, maxInFlight: 32}
	interval := simclock.Time(float64(time.Second) / opsPerSec)
	var tick func()
	seq := uint64(0)
	tick = func() {
		if load.stopped {
			return
		}
		load.issueRead(seq)
		seq++
		c.sim.After(interval, tick)
	}
	c.sim.After(interval, tick)
	return load, nil
}

// Stop halts the load; already-issued ops complete.
func (l *ClientLoad) Stop() { l.stopped = true }

// MeanLatency reports the average completed-op latency.
func (l *ClientLoad) MeanLatency() simclock.Time {
	if l.OpsCompleted == 0 {
		return 0
	}
	return l.TotalLatency / simclock.Time(l.OpsCompleted)
}

// issueRead performs one client read: the k data chunks of a
// deterministically chosen object are fetched to the primary and shipped
// to the client, charged at full (non-recovery) rates.
func (l *ClientLoad) issueRead(seq uint64) {
	c := l.c
	pool := l.pool
	// Deterministic object choice.
	h := seq*0x9e3779b97f4a7c15 + 0x1234567
	pg := pool.PGs[h%uint64(len(pool.PGs))]
	if len(pg.Objects) == 0 {
		return
	}
	obj := pg.Objects[(h>>16)%uint64(len(pg.Objects))]
	code := pool.Code
	cm := &c.cfg.Cost

	primary := -1
	for _, id := range pg.Acting {
		if c.osds[id].up {
			primary = id
			break
		}
	}
	if primary == -1 {
		return // unreadable right now
	}
	// Admission control: real clients are closed loops with bounded
	// in-flight requests, so an over-provisioned rate self-clamps to
	// cluster capacity instead of growing queues without bound.
	if l.outstanding >= l.maxInFlight {
		l.OpsShed++
		return
	}
	l.outstanding++
	start := c.sim.Now()
	reads := 0
	for shard := 0; shard < code.K() && shard < len(pg.Acting); shard++ {
		if !c.osds[pg.Acting[shard]].up {
			continue
		}
		reads++
	}
	if reads == 0 {
		l.outstanding--
		return
	}
	// The op completes when the primary has assembled the object; client
	// machines are plentiful, so their own NICs are not modeled.
	join := simclock.NewJoin(reads, func() {
		l.outstanding--
		l.OpsCompleted++
		l.TotalLatency += c.sim.Now() - start
	})
	for shard := 0; shard < code.K() && shard < len(pg.Acting); shard++ {
		osd := c.osds[pg.Acting[shard]]
		if !osd.up {
			continue
		}
		service := simclock.Time(float64(obj.ChunkSize) / cm.DiskReadBW * float64(time.Second))
		osd.disk.Submit(service, func() {
			c.net.Transfer(osd.Host, c.osds[primary].Host, obj.ChunkSize, join.Done)
		})
	}
}

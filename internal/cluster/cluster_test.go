package cluster

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/simclock"
	"repro/internal/workload"
)

// smallCluster builds a fast cluster for tests.
func smallCluster(t *testing.T, hosts, osdsPerHost int, log LogFunc) *Cluster {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Hosts = hosts
	cfg.OSDsPerHost = osdsPerHost
	cfg.DeviceCapacity = 4 << 30
	cfg.Log = log
	// Shrink the checking period so tests run few events.
	cfg.Cost.MarkOutInterval = 30 * time.Second
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func rsPool(t *testing.T, c *Cluster, pgs int) *Pool {
	t.Helper()
	p, err := c.CreatePool(PoolConfig{
		Name: "ecpool", Plugin: "jerasure_reed_sol_van",
		K: 4, M: 2, PGNum: pgs, StripeUnit: 4096, FailureDomain: "host",
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidatesGeometry(t *testing.T) {
	if _, err := New(Config{Hosts: 0, OSDsPerHost: 1}); err == nil {
		t.Fatal("zero hosts accepted")
	}
}

func TestTopology(t *testing.T) {
	c := smallCluster(t, 8, 2, nil)
	if len(c.OSDs()) != 16 {
		t.Fatalf("osds = %d", len(c.OSDs()))
	}
	if c.Crush().NumOSDs() != 16 {
		t.Fatal("crush map size wrong")
	}
	if !c.OSD(3).Up() {
		t.Fatal("osd should start up")
	}
}

func TestCreatePoolPlacesPGs(t *testing.T) {
	c := smallCluster(t, 8, 2, nil)
	p := rsPool(t, c, 16)
	if len(p.PGs) != 16 {
		t.Fatal("pg count wrong")
	}
	for _, pg := range p.PGs {
		if len(pg.Acting) != 6 {
			t.Fatalf("pg %d acting = %v", pg.ID, pg.Acting)
		}
		hosts := map[string]bool{}
		for _, id := range pg.Acting {
			h := c.Crush().HostOf(id)
			if hosts[h] {
				t.Fatalf("pg %d places two chunks on %s", pg.ID, h)
			}
			hosts[h] = true
		}
	}
	if _, err := c.CreatePool(PoolConfig{Name: "ecpool", Plugin: "clay", K: 4, M: 2, PGNum: 1}); err == nil {
		t.Fatal("duplicate pool accepted")
	}
	if _, err := c.CreatePool(PoolConfig{Name: "bad", Plugin: "nope", K: 4, M: 2, PGNum: 1}); err == nil {
		t.Fatal("unknown plugin accepted")
	}
}

func TestBulkLoadDistributesChunks(t *testing.T) {
	c := smallCluster(t, 8, 2, nil)
	rsPool(t, c, 16)
	objs, _ := workload.Spec{Count: 64, ObjectSize: 1 << 20, NamePrefix: "o"}.Objects()
	if err := c.BulkLoad("ecpool", objs); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, o := range c.OSDs() {
		total += o.Store.Chunks()
	}
	if total != 64*6 {
		t.Fatalf("chunks = %d, want %d", total, 64*6)
	}
	if c.DataBytes() == 0 || c.UsedBytes() <= c.DataBytes() {
		t.Fatal("usage accounting wrong")
	}
}

func TestWriteReadObjectRoundTrip(t *testing.T) {
	c := smallCluster(t, 8, 2, nil)
	rsPool(t, c, 8)
	data := make([]byte, 100_000)
	rand.New(rand.NewSource(5)).Read(data)
	if err := c.WriteObject("ecpool", "hello", data); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadObject("ecpool", "hello")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	if _, err := c.ReadObject("ecpool", "missing"); err == nil {
		t.Fatal("missing object read succeeded")
	}
}

func TestDegradedRead(t *testing.T) {
	c := smallCluster(t, 8, 2, nil)
	p := rsPool(t, c, 8)
	data := make([]byte, 50_000)
	rand.New(rand.NewSource(6)).Read(data)
	if err := c.WriteObject("ecpool", "obj", data); err != nil {
		t.Fatal(err)
	}
	// Kill two OSDs holding shards of the object (max tolerable).
	pg := p.pgOf("obj")
	c.OSD(pg.Acting[0]).up = false
	c.OSD(pg.Acting[3]).up = false
	got, err := c.ReadObject("ecpool", "obj")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded read mismatch")
	}
	// Losing a third shard exceeds m=2.
	c.OSD(pg.Acting[5]).up = false
	if _, err := c.ReadObject("ecpool", "obj"); err == nil {
		t.Fatal("read beyond fault tolerance succeeded")
	}
}

func TestRecoveryEndToEndSynthetic(t *testing.T) {
	var logLines []string
	logFn := func(ts simclock.Time, node, msg string) {
		logLines = append(logLines, fmt.Sprintf("%v %s %s", ts, node, msg))
	}
	c := smallCluster(t, 8, 2, logFn)
	rsPool(t, c, 16)
	objs, _ := workload.Spec{Count: 128, ObjectSize: 4 << 20, NamePrefix: "o"}.Objects()
	if err := c.BulkLoad("ecpool", objs); err != nil {
		t.Fatal(err)
	}
	host, err := c.HostWithMostChunks("ecpool")
	if err != nil {
		t.Fatal(err)
	}
	c.FailHost(10*time.Second, host)
	res, err := c.RecoverPool("ecpool")
	if err != nil {
		t.Fatal(err)
	}
	if res.DegradedPGs == 0 || res.RepairedChunks == 0 {
		t.Fatalf("no recovery happened: %+v", res)
	}
	if res.DetectedAt <= res.InjectedAt {
		t.Fatal("detection must follow injection")
	}
	if res.RecoveryStartAt < res.DetectedAt+30*time.Second {
		t.Fatal("recovery must wait out the mark-out interval")
	}
	if res.FinishedAt <= res.RecoveryStartAt {
		t.Fatal("EC recovery phase must take time")
	}
	if res.CheckingFraction() <= 0 || res.CheckingFraction() >= 1 {
		t.Fatalf("checking fraction = %f", res.CheckingFraction())
	}
	if res.HelperDiskBytes == 0 || res.NetworkBytes == 0 || res.WrittenBytes == 0 {
		t.Fatalf("I/O accounting empty: %+v", res)
	}
	// Degraded PGs must be clean afterwards: no acting member down.
	pgs, _ := c.DegradedPGs("ecpool")
	if len(pgs) != 0 {
		t.Fatalf("%d PGs still degraded", len(pgs))
	}
	if len(logLines) == 0 {
		t.Fatal("no log lines emitted")
	}
}

func TestRecoveryRestoresPayloadBytes(t *testing.T) {
	c := smallCluster(t, 8, 2, nil)
	p := rsPool(t, c, 4)
	contents := map[string][]byte{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("payload-%d", i)
		data := make([]byte, 20_000+rng.Intn(10_000))
		rng.Read(data)
		contents[name] = data
		if err := c.WriteObject("ecpool", name, data); err != nil {
			t.Fatal(err)
		}
	}
	// Fail one OSD that holds chunks.
	victim := p.PGs[0].Acting[1]
	c.InjectOSDFailures(time.Second, victim)
	if _, err := c.RecoverPool("ecpool"); err != nil {
		t.Fatal(err)
	}
	// All objects readable with original bytes, including via recovered
	// chunks (the victim stays down, so reads use the new targets).
	for name, want := range contents {
		got, err := c.ReadObject("ecpool", name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: content mismatch after recovery", name)
		}
	}
}

func TestRecoveryWithoutFailuresErrors(t *testing.T) {
	c := smallCluster(t, 8, 2, nil)
	rsPool(t, c, 4)
	if _, err := c.RecoverPool("ecpool"); err == nil {
		t.Fatal("recovery without failures should error")
	}
}

func TestClayPoolRecovery(t *testing.T) {
	c := smallCluster(t, 8, 2, nil)
	if _, err := c.CreatePool(PoolConfig{
		Name: "claypool", Plugin: "clay", K: 4, M: 2, D: 5,
		PGNum: 8, StripeUnit: 65536, FailureDomain: "host",
	}); err != nil {
		t.Fatal(err)
	}
	objs, _ := workload.Spec{Count: 64, ObjectSize: 4 << 20, NamePrefix: "o"}.Objects()
	if err := c.BulkLoad("claypool", objs); err != nil {
		t.Fatal(err)
	}
	host, _ := c.HostWithMostChunks("claypool")
	// Single-OSD failure: Clay should use the bandwidth-optimal plan.
	victim := c.Crush().OSDsOnHost(host)[0]
	c.InjectOSDFailures(time.Second, victim)
	res, err := c.RecoverPool("claypool")
	if err != nil {
		t.Fatal(err)
	}
	if res.RepairedChunks == 0 {
		t.Fatal("nothing repaired")
	}
	// Clay single-failure repair moves less than k*chunk per object over
	// the network: (n-1)/q = 5/2 = 2.5 chunks vs k = 4 chunks.
	perObject := float64(res.NetworkBytes-res.WrittenBytes) / float64(res.ObjectRepairs)
	chunk := float64(4 << 20 / 4)
	if ratio := perObject / chunk; ratio > 3.0 {
		t.Fatalf("clay repair read %.2f chunks/object, expected ~2.5", ratio)
	}
}

func TestRecoveryDeterministic(t *testing.T) {
	run := func() simclock.Time {
		c := smallCluster(t, 8, 2, nil)
		rsPool(t, c, 16)
		objs, _ := workload.Spec{Count: 96, ObjectSize: 2 << 20, NamePrefix: "o"}.Objects()
		if err := c.BulkLoad("ecpool", objs); err != nil {
			t.Fatal(err)
		}
		host, _ := c.HostWithMostChunks("ecpool")
		c.FailHost(5*time.Second, host)
		res, err := c.RecoverPool("ecpool")
		if err != nil {
			t.Fatal(err)
		}
		return res.SystemRecoveryTime()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic recovery: %v vs %v", a, b)
	}
}

func TestMoreParallelismWithMorePGs(t *testing.T) {
	run := func(pgs int) simclock.Time {
		c := smallCluster(t, 10, 2, nil)
		p, err := c.CreatePool(PoolConfig{
			Name: "ecpool", Plugin: "jerasure_reed_sol_van",
			K: 6, M: 3, PGNum: pgs, StripeUnit: 4 << 20, FailureDomain: "host",
		})
		if err != nil {
			t.Fatal(err)
		}
		_ = p
		objs, _ := workload.Spec{Count: 200, ObjectSize: 8 << 20, NamePrefix: "o"}.Objects()
		if err := c.BulkLoad("ecpool", objs); err != nil {
			t.Fatal(err)
		}
		host, _ := c.HostWithMostChunks("ecpool")
		c.FailHost(time.Second, host)
		res, err := c.RecoverPool("ecpool")
		if err != nil {
			t.Fatal(err)
		}
		return res.ECRecoveryPeriod()
	}
	few := run(1)
	many := run(64)
	if many >= few {
		t.Fatalf("more PGs should recover faster: 1pg=%v 64pg=%v", few, many)
	}
}

func TestHostWithMostChunksNeedsData(t *testing.T) {
	c := smallCluster(t, 8, 2, nil)
	rsPool(t, c, 4)
	if _, err := c.HostWithMostChunks("ecpool"); err == nil {
		t.Fatal("empty pool should error")
	}
	if _, err := c.HostWithMostChunks("nope"); err == nil {
		t.Fatal("unknown pool should error")
	}
}

func TestWAMeasurementShape(t *testing.T) {
	// RS(12,9) with 4 MiB stripe unit on 64 MiB objects: actual WA must
	// exceed the n/k = 1.33 theory, matching Table 3's direction.
	cfg := DefaultConfig()
	cfg.Hosts = 15
	cfg.OSDsPerHost = 2
	cfg.DeviceCapacity = 8 << 30
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreatePool(PoolConfig{
		Name: "ecpool", Plugin: "jerasure_reed_sol_van",
		K: 9, M: 3, PGNum: 32, StripeUnit: 4 << 20, FailureDomain: "host",
	}); err != nil {
		t.Fatal(err)
	}
	objs, _ := workload.Spec{Count: 20, ObjectSize: 64 << 20, NamePrefix: "o"}.Objects()
	if err := c.BulkLoad("ecpool", objs); err != nil {
		t.Fatal(err)
	}
	written := int64(20) * (64 << 20)
	wa := float64(c.UsedBytes()) / float64(written)
	if wa < 1.6 || wa > 2.0 {
		t.Fatalf("actual WA = %.3f, want ~1.76", wa)
	}
}

package cluster

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/erasure"
	"repro/internal/simclock"
)

// monitor is the MON/MGR node: it tracks heartbeats, marks OSDs down and
// out, and drives the checking period that precedes EC recovery.
type monitor struct {
	c *Cluster

	epoch       int // osdmap epoch, bumped on every state change
	injectedAt  simclock.Time
	detectedAt  simclock.Time
	failedOSDs  []int
	failedHosts map[string]bool
}

func newMonitor(c *Cluster) *monitor {
	return &monitor{c: c, failedHosts: map[string]bool{}}
}

// InjectOSDFailures schedules the failure of the given OSDs at time at:
// their processes stop and their devices are removed. Detection happens
// after the heartbeat grace elapses, as in Ceph.
func (c *Cluster) InjectOSDFailures(at simclock.Time, ids ...int) {
	cm := &c.cfg.Cost
	if at > c.mon.injectedAt {
		c.mon.injectedAt = at
	}
	for _, id := range ids {
		id := id
		osd := c.osds[id]
		c.mon.failedOSDs = append(c.mon.failedOSDs, id)
		c.mon.failedHosts[osd.Host] = true
		c.sim.At(at, func() {
			osd.up = false
			osd.Store.Device().Remove()
			c.log(c.sim.Now(), osd.Host, fmt.Sprintf("osd.%d device removed (fault injected)", id))
		})
	}
	// Detection: the next heartbeat round after the grace expires.
	detect := at + cm.HeartbeatGrace + cm.HeartbeatInterval/2
	if detect > c.mon.detectedAt {
		c.mon.detectedAt = detect
	}
	for _, id := range ids {
		id := id
		c.sim.At(detect, func() {
			c.crush.SetOut(id, true)
			c.mon.epoch++
			c.log(c.sim.Now(), "mon0", fmt.Sprintf("osdmap e%d: osd.%d failure detected: no heartbeat for %v, marked down", c.mon.epoch, id, cm.HeartbeatGrace))
		})
	}
}

// OSDMapEpoch returns the monitor's current osdmap epoch.
func (c *Cluster) OSDMapEpoch() int { return c.mon.epoch }

// FailHost fails every OSD on a host at time at (node-level fault).
func (c *Cluster) FailHost(at simclock.Time, host string) {
	c.InjectOSDFailures(at, c.crush.OSDsOnHost(host)...)
}

// RecoveryResult captures the timeline and volume of one recovery cycle.
type RecoveryResult struct {
	InjectedAt      simclock.Time
	DetectedAt      simclock.Time
	RecoveryStartAt simclock.Time
	FinishedAt      simclock.Time

	DegradedPGs    int
	RepairedChunks int
	ObjectRepairs  int

	HelperDiskBytes int64 // bytes read from surviving OSD devices
	NetworkBytes    int64 // repair bytes moved between hosts
	WrittenBytes    int64 // reconstructed bytes written

	// FullDecodeObjects counts repairs that lost >1 chunk and (for Clay)
	// fell back to full decode.
	FullDecodeObjects int
}

// SystemRecoveryTime is detection to completion — the paper's "system
// recovery period".
func (r *RecoveryResult) SystemRecoveryTime() simclock.Time {
	return r.FinishedAt - r.DetectedAt
}

// CheckingPeriod is detection to the start of EC recovery I/O.
func (r *RecoveryResult) CheckingPeriod() simclock.Time {
	return r.RecoveryStartAt - r.DetectedAt
}

// ECRecoveryPeriod is the EC recovery I/O phase.
func (r *RecoveryResult) ECRecoveryPeriod() simclock.Time {
	return r.FinishedAt - r.RecoveryStartAt
}

// CheckingFraction is the checking period share of the whole cycle.
func (r *RecoveryResult) CheckingFraction() float64 {
	total := r.SystemRecoveryTime()
	if total <= 0 {
		return 0
	}
	return float64(r.CheckingPeriod()) / float64(total)
}

// RecoverPool runs the full recovery cycle of a pool after failures have
// been injected with InjectOSDFailures, driving the simulation to
// completion and returning the measured result.
func (c *Cluster) RecoverPool(poolName string) (*RecoveryResult, error) {
	res, err := c.ScheduleRecovery(poolName)
	if err != nil {
		return nil, err
	}
	c.RunSim()
	if res.FinishedAt == 0 {
		return nil, fmt.Errorf("cluster: recovery did not complete")
	}
	return res, nil
}

// ScheduleRecovery sets up the whole recovery cycle on the simulator and
// returns the result record, which is filled in as the simulation runs.
// Callers that need to interleave their own periodic events (iostat
// sampling, log flushing) schedule them against Sim() and then call
// Sim().Run() themselves; RecoverPool wraps both steps.
func (c *Cluster) ScheduleRecovery(poolName string) (*RecoveryResult, error) {
	pool, err := c.Pool(poolName)
	if err != nil {
		return nil, err
	}
	cm := &c.cfg.Cost
	mon := c.mon
	if len(mon.failedOSDs) == 0 {
		return nil, fmt.Errorf("cluster: no failures injected")
	}
	res := &RecoveryResult{InjectedAt: mon.injectedAt, DetectedAt: mon.detectedAt}

	// The checking period: mark-out countdown plus per-extra-host
	// coordination, during which the MGR exchanges heartbeats and OSDs
	// peer and compute missing sets.
	extraHosts := len(mon.failedHosts) - 1
	if extraHosts < 0 {
		extraHosts = 0
	}
	res.RecoveryStartAt = mon.detectedAt + cm.MarkOutInterval + simclock.Time(extraHosts)*cm.HostCoordination

	// Heartbeat chatter during the checking window (Figure 3's "MGR log:
	// receiving heartbeats").
	for t := mon.detectedAt; t < res.RecoveryStartAt; t += 10 * cm.HeartbeatInterval {
		t := t
		c.sim.At(t, func() {
			c.log(t, "mon0", "receiving heartbeats from osd peers")
		})
	}

	down := map[int]bool{}
	for _, id := range mon.failedOSDs {
		down[id] = true
	}

	// Identify degraded PGs and their lost shard positions.
	type pgWork struct {
		pg      *PG
		lostIdx []int
		primary int
		targets []int
		plan    *erasure.Plan
	}
	var work []*pgWork
	var emptyRemaps []*PG
	for _, pg := range pool.PGs {
		var lost []int
		for i, id := range pg.Acting {
			if down[id] {
				lost = append(lost, i)
			}
		}
		if len(lost) == 0 {
			continue
		}
		if len(pg.Objects) == 0 {
			// No data to move: the PG just remaps to live OSDs when the
			// failed ones are marked out.
			emptyRemaps = append(emptyRemaps, pg)
			continue
		}
		if !erasure.CanRecover(pool.Code, lost) {
			return nil, fmt.Errorf("cluster: pg %d lost chunks %v, beyond the code's fault tolerance", pg.ID, lost)
		}
		primary := -1
		for _, id := range pg.Acting {
			if !down[id] {
				primary = id
				break
			}
		}
		if primary == -1 {
			return nil, fmt.Errorf("cluster: pg %d has no surviving member", pg.ID)
		}
		plan, err := pool.Code.RepairPlan(lost)
		if err != nil {
			return nil, err
		}
		work = append(work, &pgWork{pg: pg, lostIdx: lost, primary: primary, plan: plan})
	}
	res.DegradedPGs = len(work)
	sort.Slice(work, func(i, j int) bool { return work[i].pg.ID < work[j].pg.ID })

	// Pick recovery targets: re-run CRUSH with the failed OSDs out. The
	// out-marking is applied eagerly here (the scheduled detection events
	// set it again, idempotently) so target selection sees the post-failure
	// map.
	for _, id := range mon.failedOSDs {
		c.crush.SetOut(id, true)
	}
	poolSeed := nameHash(pool.Name)
	for _, w := range work {
		// When the failure consumed a whole failure domain there may be
		// too few domains left for a clean re-selection; Ceph remaps such
		// PGs degraded across the remaining domains, which the sweep
		// below reproduces.
		newActing, err := c.crush.Select(poolSeed^uint64(w.pg.ID)*0x9e3779b97f4a7c15, pool.Code.N(), pool.FailureDomain)
		if err != nil {
			newActing = nil
		}
		inOld := map[int]bool{}
		for _, id := range w.pg.Acting {
			inOld[id] = true
		}
		var candidates []int
		for _, id := range newActing {
			if !inOld[id] && !down[id] {
				candidates = append(candidates, id)
			}
		}
		for ci := 0; len(candidates) < len(w.lostIdx); ci++ {
			// Fallback: deterministic sweep for any live OSD not in the set.
			if ci >= len(c.osds) {
				return nil, fmt.Errorf("cluster: no recovery target for pg %d", w.pg.ID)
			}
			if !inOld[ci] && !down[ci] {
				dup := false
				for _, id := range candidates {
					if id == ci {
						dup = true
					}
				}
				if !dup {
					candidates = append(candidates, ci)
				}
			}
		}
		w.targets = candidates[:len(w.lostIdx)]
	}

	// Tell every store how much data recovery will read from it, so the
	// cache model can size the hot set (drives the Fig. 2a effect).
	readPerOSD := map[int]int64{}
	for _, w := range work {
		// Per-object share of the plan's read bytes, summed once and then
		// credited to every helper — same integer arithmetic as the old
		// objects x helpers double loop (each object contributed
		// BytesRead/len(helpers), rounded down, to each helper), without
		// re-walking the helper list per object.
		var perHelper int64
		var lastSize, lastShare int64 = -1, 0
		for _, o := range w.pg.Objects {
			if o.ChunkSize != lastSize {
				lastSize = o.ChunkSize
				lastShare = w.plan.BytesRead(o.ChunkSize) / int64(len(w.plan.Helpers))
			}
			perHelper += lastShare
		}
		for _, h := range w.plan.Helpers {
			readPerOSD[w.pg.Acting[h.Shard]] += perHelper
		}
	}
	for id, bytes := range readPerOSD {
		c.osds[id].Store.SetDataWorkingSet(bytes)
	}

	// Peering during the checking window: each degraded PG's primary
	// exchanges infos and scans for missing objects.
	peerDone := simclock.NewJoin(len(work), nil)
	for _, w := range work {
		w := w
		c.sim.At(mon.detectedAt, func() {
			primary := c.osds[w.primary]
			alive := 0
			for _, id := range w.pg.Acting {
				if !down[id] {
					alive++
				}
			}
			scan := simclock.Time(len(w.pg.Objects)*len(w.lostIdx)) * cm.MissingScanPerChunk
			service := simclock.Time(alive)*cm.PeeringRoundTrip + scan
			c.log(c.sim.Now(), primary.Host, fmt.Sprintf("pg %d peering: check recovery resource", w.pg.ID))
			primary.cpu.Submit(service, func() {
				c.log(c.sim.Now(), primary.Host, fmt.Sprintf("pg %d collecting missing OSDs, queueing recovery (%d objects)", w.pg.ID, len(w.pg.Objects)))
				peerDone.Done()
			})
		})
	}

	// The EC recovery phase.
	allDone := simclock.NewJoin(len(work), func() {
		res.FinishedAt = c.sim.Now()
		c.log(c.sim.Now(), "mon0", "recovery completed: all placement groups active+clean")
	})
	c.sim.At(res.RecoveryStartAt, func() {
		mon.epoch++
		c.log(c.sim.Now(), "mon0", fmt.Sprintf("osdmap e%d: marking %d osds out, start recovery I/O", mon.epoch, len(mon.failedOSDs)))
		for _, pg := range emptyRemaps {
			newActing, err := c.crush.Select(poolSeed^uint64(pg.ID)*0x9e3779b97f4a7c15, pool.Code.N(), pool.FailureDomain)
			if err != nil {
				continue // stays degraded; surfaced via Health
			}
			copy(pg.Acting, newActing)
		}
		for _, w := range work {
			w := w
			// A PG reserves its primary and every recovery target before
			// repairing (osd_max_backfills); reservations are acquired in
			// OSD-id order so concurrent PGs cannot deadlock.
			resources := reservationOrder(w.primary, w.targets)
			var acquire func(i int)
			acquire = func(i int) {
				if i == len(resources) {
					c.startPGRecovery(pool, w.pg, w.lostIdx, w.primary, w.targets, w.plan, res, func() {
						for j := len(resources) - 1; j >= 0; j-- {
							c.osds[resources[j]].reserve.Release()
						}
						c.log(c.sim.Now(), c.osds[w.primary].Host, fmt.Sprintf("pg %d recovery completed", w.pg.ID))
						allDone.Done()
					})
					return
				}
				c.osds[resources[i]].reserve.Acquire(func() { acquire(i + 1) })
			}
			acquire(0)
		}
	})

	// Periodic MGR recovery reports while recovery runs.
	var report func()
	report = func() {
		if res.FinishedAt != 0 {
			return
		}
		c.log(c.sim.Now(), "mon0", fmt.Sprintf("report recovery I/O: %d objects repaired", res.ObjectRepairs))
		c.sim.After(60*time.Second, report)
	}
	c.sim.At(res.RecoveryStartAt, func() { c.sim.After(60*time.Second, report) })

	if len(work) == 0 {
		res.RecoveryStartAt = mon.detectedAt
		res.FinishedAt = mon.detectedAt
	}
	return res, nil
}

// Done reports whether the recovery cycle has completed.
func (r *RecoveryResult) Done() bool { return r.FinishedAt != 0 }

// helperIO describes one helper's read work for an object repair.
type helperIO struct {
	osd       int
	diskBytes int64 // bytes the device must move (after stride coalescing)
	netBytes  int64 // bytes shipped to the primary
	ios       int
	runs      int
	strided   bool // discontiguous sub-chunk reads (no read-ahead benefit)
}

// planHelperIO converts a repair plan into per-helper disk and network
// quantities for a chunk of the given size. The code is applied per stripe
// unit (the encoding unit, as in Ceph), so a chunk of u units incurs the
// plan's sub-chunk pattern u times with sub-chunks of stripe_unit/alpha
// bytes. Sub-chunks smaller than the disk block coalesce into whole-range
// reads (the read-ahead effect that erodes Clay's disk savings), while the
// network still ships only the planned bytes.
func (c *Cluster) planHelperIO(pool *Pool, pg *PG, plan *erasure.Plan, chunkSize int64) []helperIO {
	cm := &c.cfg.Cost
	alpha := int64(plan.SubChunkTotal)
	unit := pool.StripeUnit
	units := (chunkSize + unit - 1) / unit
	if units < 1 {
		units = 1
	}
	subBytes := unit / alpha
	if subBytes < 1 {
		subBytes = 1
	}
	out := make([]helperIO, 0, len(plan.Helpers))
	for _, h := range plan.Helpers {
		perUnitNet := int64(len(h.SubChunks)) * unit / alpha
		var hio helperIO
		hio.osd = pg.Acting[h.Shard]
		hio.netBytes = units * perUnitNet
		switch {
		case int64(len(h.SubChunks)) == alpha:
			// Whole chunk: one sequential read.
			hio.diskBytes = chunkSize
			hio.ios = 1
			hio.runs = 1
		case subBytes < cm.DiskBlock:
			// Strided sub-chunks below block granularity coalesce into a
			// whole-range read: the device moves the full chunk even
			// though the network ships only the planned bytes.
			hio.diskBytes = chunkSize
			hio.ios = int((chunkSize + cm.DiskBlock - 1) / cm.DiskBlock / 64) // batched requests
			if hio.ios < 1 {
				hio.ios = 1
			}
			hio.runs = 1
		default:
			hio.diskBytes = hio.netBytes
			hio.ios = int(units) * h.Runs
			hio.runs = int(units) * h.Runs
			hio.strided = true
		}
		out = append(out, hio)
	}
	return out
}

// pgRecovery drives one PG's object repairs. Every stage of the pipeline
// — helper read, ship to primary, decode, ship to target, target write —
// is a fixed-arg simulator event whose argument is a pooled node, so
// steady-state repair schedules events without allocating. The scheduling
// order matches the earlier closure-based pipeline call for call, which
// is what keeps RecoveryResult timelines bit-identical across the engine
// rewrite.
type pgRecovery struct {
	c       *Cluster
	cm      *CostModel
	pool    *Pool
	pg      *PG
	lostIdx []int
	targets []int
	plan    *erasure.Plan
	primary *OSD
	res     *RecoveryResult
	done    func()

	next     int
	inFlight int

	// hios/units are the per-helper IO plan for hioChunkSize, computed
	// once per PG and reused while objects keep that size (the common
	// uniform-workload case), instead of re-planned per object.
	hioChunkSize int64
	hios         []helperIO
	units        int64
}

// objRepair is one in-flight object repair; helperRead and chunkWrite are
// its per-helper and per-lost-chunk legs. All three recycle through
// cluster-level freelists.
type objRepair struct {
	pr          *pgRecovery
	obj         *ObjectRecord
	units       int64
	srcBytes    int64
	helpersLeft int
	writesLeft  int
	next        *objRepair
}

type helperRead struct {
	or   *objRepair
	hio  *helperIO
	next *helperRead
}

type chunkWrite struct {
	or   *objRepair
	li   int // index into pr.lostIdx / pr.targets
	next *chunkWrite
}

func (c *Cluster) newObjRepair() *objRepair {
	if or := c.freeObjs; or != nil {
		c.freeObjs = or.next
		or.next = nil
		return or
	}
	return &objRepair{}
}

func (c *Cluster) freeObjRepair(or *objRepair) {
	*or = objRepair{next: c.freeObjs}
	c.freeObjs = or
}

func (c *Cluster) newHelperRead() *helperRead {
	if hr := c.freeReads; hr != nil {
		c.freeReads = hr.next
		hr.next = nil
		return hr
	}
	return &helperRead{}
}

func (c *Cluster) freeHelperRead(hr *helperRead) {
	*hr = helperRead{next: c.freeReads}
	c.freeReads = hr
}

func (c *Cluster) newChunkWrite() *chunkWrite {
	if w := c.freeWrites; w != nil {
		c.freeWrites = w.next
		w.next = nil
		return w
	}
	return &chunkWrite{}
}

func (c *Cluster) freeChunkWrite(w *chunkWrite) {
	*w = chunkWrite{next: c.freeWrites}
	c.freeWrites = w
}

// startPGRecovery pumps the PG's missing objects through the repair
// pipeline with the configured recovery concurrency.
func (c *Cluster) startPGRecovery(pool *Pool, pg *PG, lostIdx []int, primaryID int, targets []int, plan *erasure.Plan, res *RecoveryResult, done func()) {
	primary := c.osds[primaryID]
	c.log(c.sim.Now(), primary.Host, fmt.Sprintf("pg %d start recovery I/O (%d objects, %d lost chunks each)", pg.ID, len(pg.Objects), len(lostIdx)))
	pr := &pgRecovery{
		c: c, cm: &c.cfg.Cost, pool: pool, pg: pg,
		lostIdx: lostIdx, targets: targets, plan: plan,
		primary: primary, res: res, done: done,
	}
	pr.pump()
}

func (pr *pgRecovery) pump() {
	for pr.inFlight < pr.cm.RecoveryMaxActive && pr.next < len(pr.pg.Objects) {
		obj := pr.pg.Objects[pr.next]
		pr.next++
		pr.inFlight++
		pr.repair(obj)
	}
	if pr.inFlight == 0 && pr.next >= len(pr.pg.Objects) {
		// Update the acting set: targets take over the lost slots.
		for li, lost := range pr.lostIdx {
			pr.pg.Acting[lost] = pr.targets[li]
		}
		pr.done()
	}
}

// hiosFor returns the per-helper IO plan for a chunk size, re-planning
// only when the size differs from the cached one.
func (pr *pgRecovery) hiosFor(chunkSize int64) []helperIO {
	if pr.hios == nil || chunkSize != pr.hioChunkSize {
		pr.hios = pr.c.planHelperIO(pr.pool, pr.pg, pr.plan, chunkSize)
		pr.hioChunkSize = chunkSize
		pr.units = (chunkSize + pr.pool.StripeUnit - 1) / pr.pool.StripeUnit
		if pr.units < 1 {
			pr.units = 1
		}
	}
	return pr.hios
}

func (pr *pgRecovery) repair(obj *ObjectRecord) {
	c, cm := pr.c, pr.cm
	hios := pr.hiosFor(obj.ChunkSize)
	or := c.newObjRepair()
	or.pr, or.obj, or.units = pr, obj, pr.units
	or.helpersLeft = len(hios)
	if len(hios) == 0 {
		or.decode()
		return
	}
	for i := range hios {
		hio := &hios[i]
		helper := c.osds[hio.osd]
		hMetaHit, hKVHit, hDataHit := helper.Store.AccessProfile()
		missFrac := 1 - (hMetaHit+hKVHit)/2
		effBytes := int64(float64(hio.diskBytes) * (1 - hDataHit*cm.ColdDataFraction))
		if hio.strided && cm.StrideEfficiency > 0 && cm.StrideEfficiency < 1 {
			// Strided reads forfeit read-ahead: the device spends
			// sequential-equivalent time moving fewer bytes.
			effBytes = int64(float64(effBytes) / cm.StrideEfficiency)
		}
		idle := helper.disk.InFlight() == 0 && helper.disk.QueueLen() == 0
		service := simclock.Time(float64(cm.MetaLookup)*missFrac) + cm.diskReadTime(effBytes, hio.ios, hio.runs, idle)
		hr := c.newHelperRead()
		hr.or, hr.hio = or, hio
		helper.disk.SubmitArg(service, helperReadDone, hr)
	}
}

// helperReadDone fires when a helper's disk read completes: account the
// device traffic and ship the planned bytes to the primary.
func helperReadDone(a any) {
	hr := a.(*helperRead)
	or := hr.or
	pr := or.pr
	hio := hr.hio
	helper := pr.c.osds[hio.osd]
	// Device-level accounting of the sub-chunk reads (what ReadSubChunks
	// did, minus building a chunk name only to discard it).
	_ = helper.Store.Device().AccountRead(hio.diskBytes)
	pr.res.HelperDiskBytes += hio.diskBytes
	or.srcBytes += hio.netBytes
	pr.c.net.TransferArg(helper.Host, pr.primary.Host, hio.netBytes, helperShipDone, hr)
}

func helperShipDone(a any) {
	hr := a.(*helperRead)
	or := hr.or
	pr := or.pr
	pr.res.NetworkBytes += hr.hio.netBytes
	pr.c.freeHelperRead(hr)
	or.helpersLeft--
	if or.helpersLeft == 0 {
		or.decode()
	}
}

// decode schedules the primary's reconstruction once every helper's bytes
// have arrived. Sub-chunk transforms per decode: the plan's pattern
// repeats once per encoding unit.
func (or *objRepair) decode() {
	pr := or.pr
	subOps := or.units * int64(pr.plan.SubChunksRead())
	service := pr.cm.decodeTime(or.srcBytes, subOps) + pr.cm.RepairOpOverhead
	pr.primary.cpu.SubmitArg(service, decodeDone, or)
}

func decodeDone(a any) {
	or := a.(*objRepair)
	pr := or.pr
	c := pr.c
	obj := or.obj
	// Reconstruct real bytes when the object has payload.
	if obj.Payload {
		if err := c.repairPayload(pr.pool, pr.pg, obj, pr.lostIdx, pr.targets); err != nil {
			c.log(c.sim.Now(), pr.primary.Host, fmt.Sprintf("pg %d object %s payload repair failed: %v", pr.pg.ID, obj.Name, err))
		}
	}
	or.writesLeft = len(pr.lostIdx)
	for li := range pr.lostIdx {
		target := c.osds[pr.targets[li]]
		w := c.newChunkWrite()
		w.or, w.li = or, li
		c.net.TransferArg(pr.primary.Host, target.Host, obj.ChunkSize, writeShipDone, w)
	}
}

func writeShipDone(a any) {
	w := a.(*chunkWrite)
	or := w.or
	pr := or.pr
	target := pr.c.osds[pr.targets[w.li]]
	idle := target.disk.InFlight() == 0 && target.disk.QueueLen() == 0
	target.disk.SubmitArg(pr.cm.diskWriteTime(or.obj.ChunkSize, idle), writeDiskDone, w)
}

func writeDiskDone(a any) {
	w := a.(*chunkWrite)
	or := w.or
	pr := or.pr
	c := pr.c
	obj := or.obj
	target := c.osds[pr.targets[w.li]]
	if !obj.Payload {
		name := chunkName(pr.pool.Name, pr.pg.ID, obj.Name, pr.lostIdx[w.li])
		share := obj.Size / int64(pr.pool.Code.N())
		if err := target.Store.WriteChunk(name, obj.ChunkSize, share, nil); err != nil {
			c.log(c.sim.Now(), target.Host, fmt.Sprintf("recovery write failed: %v", err))
		}
	}
	pr.res.WrittenBytes += obj.ChunkSize
	c.freeChunkWrite(w)
	or.writesLeft--
	if or.writesLeft == 0 {
		or.finish()
	}
}

func (or *objRepair) finish() {
	pr := or.pr
	pr.res.ObjectRepairs++
	pr.res.RepairedChunks += len(pr.lostIdx)
	if len(pr.lostIdx) > 1 {
		pr.res.FullDecodeObjects++
	}
	pr.c.freeObjRepair(or)
	pr.inFlight--
	pr.pump()
}

// reservationOrder returns the unique OSDs a PG must reserve, sorted by
// id (the global acquisition order that prevents deadlock).
func reservationOrder(primary int, targets []int) []int {
	seen := map[int]bool{primary: true}
	out := []int{primary}
	for _, t := range targets {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	sort.Ints(out)
	return out
}

// shardOf returns the acting-set position of an OSD in a PG.
func (c *Cluster) shardOf(pg *PG, osd int) int {
	for i, id := range pg.Acting {
		if id == osd {
			return i
		}
	}
	return -1
}

// repairPayload reconstructs the real bytes of an object's lost chunks and
// stores them on the target OSDs.
func (c *Cluster) repairPayload(pool *Pool, pg *PG, obj *ObjectRecord, lostIdx []int, targets []int) error {
	code := pool.Code
	shards := make([][]byte, code.N())
	lost := map[int]bool{}
	for _, l := range lostIdx {
		lost[l] = true
	}
	for shard, osdID := range pg.Acting {
		if lost[shard] {
			continue
		}
		osd := c.osds[osdID]
		if !osd.up {
			continue
		}
		_, buf, err := osd.Store.ReadChunk(chunkName(pool.Name, pg.ID, obj.Name, shard))
		if err != nil || buf == nil {
			continue
		}
		shards[shard] = buf
	}
	if err := code.Repair(shards, lostIdx); err != nil {
		return err
	}
	share := obj.Size / int64(code.N())
	for li, l := range lostIdx {
		target := c.osds[targets[li]]
		name := chunkName(pool.Name, pg.ID, obj.Name, l)
		if err := target.Store.WriteChunk(name, obj.ChunkSize, share, shards[l]); err != nil {
			return err
		}
	}
	return nil
}

package cluster

import (
	"testing"
	"time"

	"repro/internal/workload"
)

func TestHealthStates(t *testing.T) {
	c := smallCluster(t, 8, 2, nil)
	p := rsPool(t, c, 8) // RS(6,4) over 8 hosts
	objs, _ := workload.Spec{Count: 16, ObjectSize: 1 << 20, NamePrefix: "o"}.Objects()
	if err := c.BulkLoad("ecpool", objs); err != nil {
		t.Fatal(err)
	}
	h := c.Health()
	if h.Status != HealthOK || h.CleanPGs != 8 || h.TotalPGs != 8 {
		t.Fatalf("healthy cluster: %s", h)
	}

	// One OSD down: some PGs degrade, health warns.
	victim := p.PGs[0].Acting[0]
	c.OSD(victim).up = false
	h = c.Health()
	if h.Status != HealthWarn {
		t.Fatalf("status = %s, want WARN", h.Status)
	}
	if h.DegradedPGs == 0 || len(h.DownOSDs) != 1 || h.DownOSDs[0] != victim {
		t.Fatalf("health: %s", h)
	}
	if got := c.PGStateOf(p, p.PGs[0]); got != PGDegraded {
		t.Fatalf("pg state = %s", got)
	}

	// Lose more shards of one PG than m=2: incomplete, health error.
	c.OSD(p.PGs[0].Acting[1]).up = false
	c.OSD(p.PGs[0].Acting[2]).up = false
	h = c.Health()
	if h.Status != HealthErr || h.IncompletePGs == 0 {
		t.Fatalf("health: %s", h)
	}
	if got := c.PGStateOf(p, p.PGs[0]); got != PGIncomplete {
		t.Fatalf("pg state = %s", got)
	}
}

func TestReadLatencyHealthyVsDegraded(t *testing.T) {
	c := smallCluster(t, 10, 2, nil)
	if _, err := c.CreatePool(PoolConfig{
		Name: "ecpool", Plugin: "jerasure_reed_sol_van",
		K: 4, M: 2, PGNum: 8, StripeUnit: 1 << 20, FailureDomain: "host",
	}); err != nil {
		t.Fatal(err)
	}
	objs, _ := workload.Spec{Count: 8, ObjectSize: 4 << 20, NamePrefix: "o"}.Objects()
	if err := c.BulkLoad("ecpool", objs); err != nil {
		t.Fatal(err)
	}
	healthy, err := c.ReadLatency("ecpool", objs[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if healthy <= 0 {
		t.Fatal("zero healthy latency")
	}

	// Kill a data-shard OSD of this object's PG: degraded reads decode
	// and must be slower.
	pool, _ := c.Pool("ecpool")
	pg, _, _ := pool.findObject(objs[0].Name)
	c.OSD(pg.Acting[0]).up = false
	degraded, err := c.ReadLatency("ecpool", objs[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if degraded <= healthy {
		t.Fatalf("degraded read (%v) should be slower than healthy (%v)", degraded, healthy)
	}

	// Beyond fault tolerance: unreadable.
	c.OSD(pg.Acting[1]).up = false
	c.OSD(pg.Acting[2]).up = false
	if _, err := c.ReadLatency("ecpool", objs[0].Name); err == nil {
		t.Fatal("read beyond tolerance should fail")
	}
}

func TestReadLatencyUnknownObject(t *testing.T) {
	c := smallCluster(t, 8, 2, nil)
	rsPool(t, c, 4)
	if _, err := c.ReadLatency("ecpool", "ghost"); err == nil {
		t.Fatal("unknown object accepted")
	}
	if _, err := c.ReadLatency("ghostpool", "x"); err == nil {
		t.Fatal("unknown pool accepted")
	}
}

func TestHealthAfterRecoveryIsOKAgain(t *testing.T) {
	c := smallCluster(t, 10, 2, nil)
	rsPool(t, c, 16)
	objs, _ := workload.Spec{Count: 48, ObjectSize: 2 << 20, NamePrefix: "o"}.Objects()
	if err := c.BulkLoad("ecpool", objs); err != nil {
		t.Fatal(err)
	}
	host, _ := c.HostWithMostChunks("ecpool")
	c.FailHost(time.Second, host)
	if _, err := c.RecoverPool("ecpool"); err != nil {
		t.Fatal(err)
	}
	h := c.Health()
	// OSDs remain down (WARN), but every PG is clean again.
	if h.CleanPGs != h.TotalPGs {
		t.Fatalf("pgs not clean after recovery: %s", h)
	}
	if h.Status != HealthWarn || len(h.DownOSDs) != 2 {
		t.Fatalf("health: %s", h)
	}
}

package cluster

import (
	"testing"
	"time"

	"repro/internal/workload"
)

func loadedCluster(t *testing.T) *Cluster {
	t.Helper()
	c := smallCluster(t, 10, 2, nil)
	if _, err := c.CreatePool(PoolConfig{
		Name: "ecpool", Plugin: "jerasure_reed_sol_van",
		K: 4, M: 2, PGNum: 16, StripeUnit: 1 << 20, FailureDomain: "host",
	}); err != nil {
		t.Fatal(err)
	}
	objs, _ := workload.Spec{Count: 96, ObjectSize: 4 << 20, NamePrefix: "o"}.Objects()
	if err := c.BulkLoad("ecpool", objs); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClientLoadValidation(t *testing.T) {
	c := smallCluster(t, 8, 2, nil)
	rsPool(t, c, 4)
	if _, err := c.StartClientLoad("ecpool", 10); err == nil {
		t.Fatal("empty pool accepted")
	}
	if _, err := c.StartClientLoad("nope", 10); err == nil {
		t.Fatal("missing pool accepted")
	}
	objs, _ := workload.Spec{Count: 4, ObjectSize: 1 << 20, NamePrefix: "o"}.Objects()
	_ = c.BulkLoad("ecpool", objs)
	if _, err := c.StartClientLoad("ecpool", 0); err == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestClientLoadCompletesOps(t *testing.T) {
	c := loadedCluster(t)
	load, err := c.StartClientLoad("ecpool", 20)
	if err != nil {
		t.Fatal(err)
	}
	c.Sim().RunUntil(10 * time.Second)
	load.Stop()
	c.Sim().Run()
	if load.OpsCompleted < 150 {
		t.Fatalf("completed %d ops in 10s at 20/s", load.OpsCompleted)
	}
	if load.MeanLatency() <= 0 {
		t.Fatal("no latency recorded")
	}
}

// TestRecoverySlowerUnderClientLoad is the mclock story: foreground
// traffic contends with recovery for the same devices.
func TestRecoverySlowerUnderClientLoad(t *testing.T) {
	run := func(ops float64) time.Duration {
		c := loadedCluster(t)
		host, _ := c.HostWithMostChunks("ecpool")
		c.FailHost(time.Second, host)
		var load *ClientLoad
		if ops > 0 {
			var err error
			load, err = c.StartClientLoad("ecpool", ops)
			if err != nil {
				t.Fatal(err)
			}
		}
		res, err := c.ScheduleRecovery("ecpool")
		if err != nil {
			t.Fatal(err)
		}
		// Stop the load once recovery completes so the sim drains.
		var watch func()
		watch = func() {
			if res.Done() {
				if load != nil {
					load.Stop()
				}
				return
			}
			c.Sim().After(5*time.Second, watch)
		}
		c.Sim().After(5*time.Second, watch)
		c.Sim().Run()
		if !res.Done() {
			t.Fatal("recovery did not finish")
		}
		return res.ECRecoveryPeriod()
	}
	idle := run(0)
	busy := run(200)
	if busy <= idle {
		t.Fatalf("recovery under load (%v) should be slower than idle (%v)", busy, idle)
	}
}

package cluster

import (
	"time"

	"repro/internal/simclock"
)

// CostModel holds the calibrated constants that convert simulated I/O and
// CPU work into time. Defaults approximate the paper's testbed (m5.xlarge
// VMs, gp SSD volumes, 25 Gb/s network, Ceph Quincy defaults) and are
// calibrated once so the normalized figures land near the paper's values;
// see EXPERIMENTS.md for the calibration record.
type CostModel struct {
	// Disk characteristics of one OSD volume.
	DiskReadBW  float64 // bytes/sec
	DiskWriteBW float64 // bytes/sec
	// DiskSeek is charged once per discontiguous run of a read request
	// (sub-chunk reads of Clay are strided, whole-chunk reads are one run).
	DiskSeek simclock.Time
	// DiskBlock is the granularity below which strided sub-chunk reads
	// coalesce into whole-range reads (read-ahead / block granularity).
	DiskBlock int64

	// PerIOOverhead is charged per discrete I/O operation submitted to a
	// device (request setup, interrupt, completion).
	PerIOOverhead simclock.Time

	// MetaLookup is the cost of a cold onode/KV lookup before a chunk
	// read; cache hits (per the BlueStore cache model) waive a fraction.
	MetaLookup simclock.Time

	// DecodeBW is the GF(2^8) multiply-accumulate throughput of one OSD
	// core, in bytes/sec of *source* data processed.
	DecodeBW float64
	// ClaySubChunkCPU is the pure transform CPU per processed sub-chunk
	// of Clay's plane-by-plane repair (pairwise transforms, per-plane
	// solves), calibrated against BENCH_CODEC.json.
	ClaySubChunkCPU simclock.Time
	// ClaySubChunkOp is the per-sub-chunk operation overhead beyond the
	// transform itself — fragmented sub-chunk read handling, RPC
	// batching, plane bookkeeping in the OSD — which BENCH_CODEC's pure
	// codec benchmark cannot see but the paper's Fig. 2c blowup at tiny
	// stripe units requires. Together the two terms keep the calibrated
	// 10us/sub-chunk the figures were validated against.
	ClaySubChunkOp simclock.Time

	// RepairOpOverhead is the fixed cost per object-repair operation
	// (RPC round trips, queueing, commit), independent of size.
	RepairOpOverhead simclock.Time

	// Failure handling (Ceph defaults: 6s heartbeat, 20s grace, 600s
	// mon_osd_down_out_interval).
	HeartbeatInterval simclock.Time
	HeartbeatGrace    simclock.Time
	// MarkOutInterval is the delay between marking an OSD down and
	// marking it out, which starts recovery — the bulk of the paper's
	// "system checking period".
	MarkOutInterval simclock.Time

	// Peering costs within the checking period.
	PeeringRoundTrip    simclock.Time // per acting-set member info exchange
	MissingScanPerChunk simclock.Time // per object-chunk missing-set scan
	// HostCoordination is the extra MON/MGR work per additional failed
	// host (osdmap churn, separate down events).
	HostCoordination simclock.Time

	// RecoveryMaxActive is the per-PG limit of in-flight object repairs
	// (osd_recovery_max_active).
	RecoveryMaxActive int
	// MaxBackfills is the per-OSD recovery reservation limit
	// (osd_max_backfills): a PG must reserve its primary and every
	// recovery target before repairing, which serializes PG recovery the
	// way Ceph does.
	MaxBackfills int
	// RecoveryBWFraction is the share of device bandwidth recovery I/O is
	// allowed to use: Ceph's mClock/wpq scheduling deprioritizes recovery
	// against client I/O headroom.
	RecoveryBWFraction float64
	// RecoveryOpCap bounds the throttling cost of a single recovery op:
	// mclock charges per op, so one very large op saturates at the cap
	// plus its full-bandwidth transfer time instead of paying the
	// throttled rate on every byte.
	RecoveryOpCap simclock.Time
	// IdleBoost is the multiple of RecoveryBWFraction a recovery op may
	// use when it finds the device idle — mclock lets background recovery
	// consume idle headroom up to its limit, above its reservation.
	IdleBoost float64
	// StrideEfficiency is the throughput of strided sub-chunk reads
	// relative to sequential reads (they forfeit read-ahead), eroding
	// Clay's disk-side savings.
	StrideEfficiency float64
	// ColdDataFraction is the share of recovery reads that can ever be
	// served from the data cache; the rest is cold by construction
	// (written long before the failure).
	ColdDataFraction float64
}

// DefaultCostModel returns the calibrated constants.
func DefaultCostModel() CostModel {
	return CostModel{
		DiskReadBW:  240e6,
		DiskWriteBW: 220e6,
		DiskSeek:    1200 * time.Microsecond, // network-attached volume latency
		DiskBlock:   4096,

		PerIOOverhead: 16 * time.Microsecond,
		MetaLookup:    30 * time.Millisecond,

		// Recalibrated against BENCH_CODEC.json (post word-kernel numbers):
		// RS(12,9) repair of a 64 KiB shard consumes ~11 source shards in
		// ~273 µs => ~2.1 GB/s of source data through one core; Clay repair
		// at the same size (297 sub-chunk transform/solve ops, 466 µs total)
		// leaves ~1.2 µs of pure CPU per sub-chunk after the bulk GF work.
		// The remaining 8.8 µs of the calibrated 10 µs/sub-chunk total is
		// op overhead the codec bench cannot see (see ClaySubChunkOp).
		DecodeBW:        2.1e9,
		ClaySubChunkCPU: 1200 * time.Nanosecond,
		ClaySubChunkOp:  8800 * time.Nanosecond,

		RepairOpOverhead: 60 * time.Millisecond,

		HeartbeatInterval: 6 * time.Second,
		HeartbeatGrace:    20 * time.Second,
		MarkOutInterval:   600 * time.Second,

		PeeringRoundTrip:    2 * time.Millisecond,
		MissingScanPerChunk: 40 * time.Microsecond,
		HostCoordination:    12 * time.Second,

		RecoveryMaxActive:  10, // osd_recovery_max_active_ssd
		MaxBackfills:       1,
		RecoveryBWFraction: 0.13,
		RecoveryOpCap:      1200 * time.Millisecond,
		IdleBoost:          3,
		StrideEfficiency:   0.35,
		ColdDataFraction:   0.35,
	}
}

// recoveryFraction returns the recovery bandwidth share for one op. A
// busy device grants only the mclock reservation; an idle device lets
// recovery burst up to IdleBoost times the reservation (its limit).
func (cm *CostModel) recoveryFraction(deviceIdle bool) float64 {
	f := cm.RecoveryBWFraction
	if f <= 0 || f > 1 {
		return 1
	}
	if deviceIdle && cm.IdleBoost > 1 {
		f *= cm.IdleBoost
		if f > 1 {
			f = 1
		}
	}
	return f
}

// diskReadTime models one helper-side recovery read: ios discrete
// operations over a total of diskBytes, with runs discontiguous extents,
// at the deprioritized recovery bandwidth.
// throttledTime charges bytes at the recovery-priority rate, capped at
// RecoveryOpCap plus the full-bandwidth transfer time (the per-op mclock
// charge saturating for very large ops).
func (cm *CostModel) throttledTime(bytes int64, fullBW float64, deviceIdle bool) simclock.Time {
	throttled := simclock.Time(float64(bytes) / (fullBW * cm.recoveryFraction(deviceIdle)) * float64(time.Second))
	if cm.RecoveryOpCap > 0 {
		capped := cm.RecoveryOpCap + simclock.Time(float64(bytes)/fullBW*float64(time.Second))
		if capped < throttled {
			return capped
		}
	}
	return throttled
}

func (cm *CostModel) diskReadTime(diskBytes int64, ios, runs int, deviceIdle bool) simclock.Time {
	t := cm.throttledTime(diskBytes, cm.DiskReadBW, deviceIdle)
	t += simclock.Time(ios) * cm.PerIOOverhead
	t += simclock.Time(runs) * cm.DiskSeek
	return t
}

// diskWriteTime models writing a reconstructed chunk at recovery priority.
func (cm *CostModel) diskWriteTime(bytes int64, deviceIdle bool) simclock.Time {
	t := cm.throttledTime(bytes, cm.DiskWriteBW, deviceIdle)
	return t + cm.PerIOOverhead + cm.DiskSeek
}

// decodeTime models reconstructing lost chunks from srcBytes of helper
// data; subChunks > 1 adds Clay's per-sub-chunk overhead for
// subChunkOps processed sub-chunks.
func (cm *CostModel) decodeTime(srcBytes int64, subChunkOps int64) simclock.Time {
	t := simclock.Time(float64(srcBytes) / cm.DecodeBW * float64(time.Second))
	t += simclock.Time(subChunkOps) * (cm.ClaySubChunkCPU + cm.ClaySubChunkOp)
	return t
}

package cluster

import (
	"fmt"
	"sort"
)

// Inconsistency is one chunk a scrub found damaged.
type Inconsistency struct {
	Pool   string
	PG     int
	Object string
	Shard  int
	OSD    int
}

// ScrubReport summarizes a deep scrub.
type ScrubReport struct {
	ChunksScrubbed int
	Inconsistent   []Inconsistency
	// SkippedDown counts chunks that could not be scrubbed because their
	// OSD is down.
	SkippedDown int
}

// ScrubPool deep-scrubs every chunk of a pool (checksum verification on
// payload chunks, corruption markers otherwise), returning the damaged
// chunks. It mirrors Ceph's deep scrub, which is how silent corruption —
// the fault class CORDS studies — is detected in practice.
func (c *Cluster) ScrubPool(poolName string) (*ScrubReport, error) {
	pool, err := c.Pool(poolName)
	if err != nil {
		return nil, err
	}
	report := &ScrubReport{}
	for _, pg := range pool.PGs {
		for _, obj := range pg.Objects {
			for shard, osdID := range pg.Acting {
				osd := c.osds[osdID]
				if !osd.up {
					report.SkippedDown++
					continue
				}
				name := chunkName(pool.Name, pg.ID, obj.Name, shard)
				if !osd.Store.HasChunk(name) {
					continue // not yet recovered / degraded write hole
				}
				ok, err := osd.Store.ScrubChunk(name)
				if err != nil {
					return nil, fmt.Errorf("cluster: scrubbing %s on osd.%d: %w", name, osdID, err)
				}
				report.ChunksScrubbed++
				if !ok {
					report.Inconsistent = append(report.Inconsistent, Inconsistency{
						Pool: pool.Name, PG: pg.ID, Object: obj.Name, Shard: shard, OSD: osdID,
					})
					c.log(c.sim.Now(), osd.Host, fmt.Sprintf("deep-scrub: pg %d object %s shard %d checksum mismatch", pg.ID, obj.Name, shard))
				}
			}
		}
	}
	sort.Slice(report.Inconsistent, func(i, j int) bool {
		a, b := report.Inconsistent[i], report.Inconsistent[j]
		if a.PG != b.PG {
			return a.PG < b.PG
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return a.Shard < b.Shard
	})
	return report, nil
}

// RepairInconsistent reconstructs every chunk a scrub flagged, from the
// object's healthy shards (Ceph's `pg repair`). It returns the number of
// chunks rewritten.
func (c *Cluster) RepairInconsistent(poolName string, report *ScrubReport) (int, error) {
	pool, err := c.Pool(poolName)
	if err != nil {
		return 0, err
	}
	// Group inconsistencies by (pg, object) so multi-shard damage repairs
	// in one decode.
	type key struct {
		pg     int
		object string
	}
	damaged := map[key][]int{}
	for _, inc := range report.Inconsistent {
		if inc.Pool != poolName {
			continue
		}
		k := key{inc.PG, inc.Object}
		damaged[k] = append(damaged[k], inc.Shard)
	}
	keys := make([]key, 0, len(damaged))
	for k := range damaged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pg != keys[j].pg {
			return keys[i].pg < keys[j].pg
		}
		return keys[i].object < keys[j].object
	})
	repaired := 0
	for _, k := range keys {
		shards := damaged[k]
		pg := pool.PGs[k.pg]
		var rec *ObjectRecord
		for _, o := range pg.Objects {
			if o.Name == k.object {
				rec = o
				break
			}
		}
		if rec == nil {
			return repaired, fmt.Errorf("cluster: scrubbed object %s vanished", k.object)
		}
		if rec.Payload {
			targets := make([]int, len(shards))
			for i, s := range shards {
				targets[i] = pg.Acting[s]
			}
			if err := c.repairPayload(pool, pg, rec, shards, targets); err != nil {
				return repaired, fmt.Errorf("cluster: repairing %s: %w", k.object, err)
			}
		} else {
			share := rec.Size / int64(pool.Code.N())
			for _, s := range shards {
				osd := c.osds[pg.Acting[s]]
				name := chunkName(pool.Name, pg.ID, rec.Name, s)
				if err := osd.Store.WriteChunk(name, rec.ChunkSize, share, nil); err != nil {
					return repaired, err
				}
			}
		}
		repaired += len(shards)
		c.log(c.sim.Now(), "mon0", fmt.Sprintf("pg %d repair: object %s shards %v rewritten", k.pg, k.object, shards))
	}
	return repaired, nil
}

// CorruptChunk injects silent corruption into one object's shard, the
// CORDS-style fault (no I/O error, wrong bytes).
func (c *Cluster) CorruptChunk(poolName, object string, shard int) error {
	pool, err := c.Pool(poolName)
	if err != nil {
		return err
	}
	pg, rec, _ := pool.findObject(object)
	if rec == nil {
		return fmt.Errorf("%w: %s/%s", ErrNoObject, poolName, object)
	}
	if shard < 0 || shard >= len(pg.Acting) {
		return fmt.Errorf("cluster: shard %d out of range", shard)
	}
	osd := c.osds[pg.Acting[shard]]
	return osd.Store.CorruptChunk(chunkName(pool.Name, pg.ID, object, shard))
}

// ResetFailureState clears the monitor's pending-failure batch so a new
// fault/recovery cycle can run after a completed one. OSDs that are down
// stay down and out.
func (c *Cluster) ResetFailureState() {
	c.mon.injectedAt = 0
	c.mon.detectedAt = 0
	c.mon.failedOSDs = nil
	c.mon.failedHosts = map[string]bool{}
}

package cluster

import (
	"fmt"
	"sort"

	"repro/internal/erasure"
	"repro/internal/simclock"
)

// PG states, following Ceph's naming.
const (
	PGActiveClean = "active+clean"
	PGDegraded    = "active+undersized+degraded"
	PGIncomplete  = "incomplete"
)

// HealthStatus is the cluster-level verdict.
const (
	HealthOK   = "HEALTH_OK"
	HealthWarn = "HEALTH_WARN"
	HealthErr  = "HEALTH_ERR"
)

// Health summarizes cluster state, like `ceph health`.
type Health struct {
	Status        string
	TotalPGs      int
	CleanPGs      int
	DegradedPGs   int
	IncompletePGs int
	DownOSDs      []int
}

// String renders the health summary.
func (h Health) String() string {
	return fmt.Sprintf("%s: %d/%d pgs clean, %d degraded, %d incomplete, %d osds down",
		h.Status, h.CleanPGs, h.TotalPGs, h.DegradedPGs, h.IncompletePGs, len(h.DownOSDs))
}

// PGStateOf classifies one placement group given the current OSD states.
func (c *Cluster) PGStateOf(pool *Pool, pg *PG) string {
	var lost []int
	for shard, id := range pg.Acting {
		if !c.osds[id].up {
			lost = append(lost, shard)
		}
	}
	switch {
	case len(lost) == 0:
		return PGActiveClean
	case erasure.CanRecover(pool.Code, lost):
		return PGDegraded
	default:
		return PGIncomplete
	}
}

// Health computes the cluster-wide health across all pools.
func (c *Cluster) Health() Health {
	h := Health{Status: HealthOK}
	for _, osd := range c.osds {
		if !osd.up {
			h.DownOSDs = append(h.DownOSDs, osd.ID)
		}
	}
	sort.Ints(h.DownOSDs)
	names := make([]string, 0, len(c.pools))
	for name := range c.pools {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pool := c.pools[name]
		for _, pg := range pool.PGs {
			h.TotalPGs++
			switch c.PGStateOf(pool, pg) {
			case PGActiveClean:
				h.CleanPGs++
			case PGDegraded:
				h.DegradedPGs++
			default:
				h.IncompletePGs++
			}
		}
	}
	switch {
	case h.IncompletePGs > 0:
		h.Status = HealthErr
	case h.DegradedPGs > 0 || len(h.DownOSDs) > 0:
		h.Status = HealthWarn
	}
	return h
}

// ReadLatency measures the simulated client latency of reading one object
// in the cluster's current state: a healthy read fetches the k data
// chunks; a degraded read fetches k surviving chunks and decodes. Client
// I/O runs at full device bandwidth (it is not recovery-throttled). The
// simulation is driven to completion.
func (c *Cluster) ReadLatency(poolName, objectName string) (simclock.Time, error) {
	pool, err := c.Pool(poolName)
	if err != nil {
		return 0, err
	}
	pg, rec, _ := pool.findObject(objectName)
	if rec == nil {
		return 0, fmt.Errorf("%w: %s/%s", ErrNoObject, poolName, objectName)
	}
	code := pool.Code
	var lost []int
	for shard, id := range pg.Acting {
		if !c.osds[id].up {
			lost = append(lost, shard)
		}
	}
	if len(lost) > 0 && !erasure.CanRecover(code, lost) {
		return 0, fmt.Errorf("cluster: object %s unreadable: shards %v lost", objectName, lost)
	}
	// Primary assembles the object: data shards read directly, lost data
	// shards decoded from a repair plan's helpers.
	primary := -1
	for _, id := range pg.Acting {
		if c.osds[id].up {
			primary = id
			break
		}
	}
	if primary == -1 {
		return 0, fmt.Errorf("cluster: no surviving member for %s", objectName)
	}
	cm := &c.cfg.Cost

	// Choose the shards to read: all live data shards, plus (degraded)
	// the repair plan's helpers.
	reads := map[int]bool{} // shard index -> read
	lostData := false
	for shard := 0; shard < code.K(); shard++ {
		if contains(lost, shard) {
			lostData = true
			continue
		}
		reads[shard] = true
	}
	if lostData {
		var lostDataShards []int
		for _, l := range lost {
			if l < code.K() {
				lostDataShards = append(lostDataShards, l)
			}
		}
		plan, err := code.RepairPlan(lostDataShards)
		if err != nil {
			return 0, err
		}
		for _, h := range plan.Helpers {
			reads[h.Shard] = true
		}
	}

	var start = c.sim.Now()
	var finish simclock.Time
	shards := make([]int, 0, len(reads))
	for s := range reads {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	join := simclock.NewJoin(len(shards), func() {
		pOSD := c.osds[primary]
		var decode simclock.Time
		if lostData {
			decode = cm.decodeTime(rec.ChunkSize*int64(code.K()), int64(code.SubChunks()))
		}
		pOSD.cpu.Submit(decode, func() {
			c.net.Transfer(pOSD.Host, "mon0", rec.Size, func() {
				finish = c.sim.Now()
			})
		})
	})
	for _, shard := range shards {
		osd := c.osds[pg.Acting[shard]]
		metaHit, kvHit, _ := osd.Store.AccessProfile()
		miss := 1 - (metaHit+kvHit)/2
		service := simclock.Time(float64(cm.MetaLookup)*miss) +
			simclock.Time(float64(rec.ChunkSize)/cm.DiskReadBW*1e9)
		osd.disk.Submit(service, func() {
			c.net.Transfer(osd.Host, c.osds[primary].Host, rec.ChunkSize, join.Done)
		})
	}
	c.RunSim()
	if finish == 0 {
		return 0, fmt.Errorf("cluster: read of %s did not complete", objectName)
	}
	return finish - start, nil
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

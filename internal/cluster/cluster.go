// Package cluster simulates a Ceph-like erasure-coded distributed storage
// system: a MON/MGR node plus OSD hosts, CRUSH placement of placement
// groups, a BlueStore-like backend per OSD, heartbeat-based failure
// detection, the down->out checking period, and an EC recovery engine that
// charges disk, network and CPU time through a discrete-event simulator.
//
// Erasure coding is executed for real when objects carry payloads; large
// synthetic workloads run in accounting mode where only sizes flow, so the
// paper-scale experiments (10,000 x 64 MB) complete in seconds of wall
// time while producing faithful recovery timelines and storage usage.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/blockdev"
	"repro/internal/bluestore"
	"repro/internal/crush"
	"repro/internal/erasure"
	"repro/internal/erasure/codecache"

	// Load the erasure-code plugins, as Ceph loads its EC plugin shared
	// objects.
	_ "repro/internal/erasure/clay"
	_ "repro/internal/erasure/lrc"
	_ "repro/internal/erasure/reedsolomon"
	_ "repro/internal/erasure/shec"

	"repro/internal/parallel"
	"repro/internal/simclock"
	"repro/internal/simnet"
	"repro/internal/wamodel"
	"repro/internal/workload"
)

// Errors.
var (
	ErrNoPool      = errors.New("cluster: no such pool")
	ErrNoObject    = errors.New("cluster: no such object")
	ErrPoolExists  = errors.New("cluster: pool exists")
	ErrBadGeometry = errors.New("cluster: invalid cluster geometry")
)

// LogFunc receives framework log lines (simulated time, node, message).
type LogFunc func(t simclock.Time, node, msg string)

// Config describes the cluster under test.
type Config struct {
	Hosts          int
	OSDsPerHost    int
	DeviceCapacity int64
	// Racks, when > 0, distributes hosts round-robin over that many rack
	// buckets so pools can use the "rack" failure domain.
	Racks int
	Net   simnet.Config
	Store bluestore.Config
	Cost  CostModel
	// Log, if set, receives all node log lines.
	Log LogFunc
	// SimWorkers selects the event-engine execution mode RunSim uses:
	// > 1 drives the simulation through the conservative time-partitioned
	// parallel engine (byte-identical to serial execution), 1 stays on
	// the serial engine, and 0 resolves to parallel.SimWorkers()
	// (ECFAULT_SIM_WORKERS, default 1).
	SimWorkers int
}

// DefaultConfig mirrors the paper's testbed shape: 30 OSD hosts with two
// 100 GB NVMe volumes each, plus one MON/MGR host.
func DefaultConfig() Config {
	return Config{
		Hosts:          30,
		OSDsPerHost:    2,
		DeviceCapacity: 100 << 30,
		Net:            simnet.DefaultConfig(),
		Store:          bluestore.DefaultConfig(),
		Cost:           DefaultCostModel(),
	}
}

// OSD is one object storage daemon bound to one device.
type OSD struct {
	ID    int
	Host  string
	Store *bluestore.Store

	up bool // process alive
	in bool // in the CRUSH map

	disk    *simclock.Queue     // device service queue
	cpu     *simclock.Queue     // decode/peering CPU
	reserve *simclock.Semaphore // recovery/backfill reservations (osd_max_backfills)
}

// Up reports whether the OSD process is alive.
func (o *OSD) Up() bool { return o.up }

// MarkDown stops the OSD process immediately, without going through the
// simulator's failure scheduling — for constructing degraded states in
// measurements and tests. Recovery cycles should use InjectOSDFailures.
func (o *OSD) MarkDown() { o.up = false }

// ObjectRecord tracks one stored object within a PG.
type ObjectRecord struct {
	Name      string
	Size      int64
	ChunkSize int64
	Payload   bool // real bytes stored
}

// PG is a placement group: an ordered acting set of OSDs holding one
// chunk each for every object mapped to the group.
type PG struct {
	ID      int
	Acting  []int
	Objects []*ObjectRecord
}

// Pool is an erasure-coded pool.
type Pool struct {
	Name          string
	Plugin        string
	Code          erasure.Code
	PGCount       int
	StripeUnit    int64
	FailureDomain string
	PGs           []*PG

	// cfg is the normalized PoolConfig the pool was created with, kept so
	// Snapshot/Fork can rebuild the pool without re-running CRUSH.
	cfg PoolConfig
}

// PoolConfig parameterizes CreatePool.
type PoolConfig struct {
	Name          string
	Plugin        string // erasure plugin name, e.g. "jerasure_reed_sol_van", "clay"
	K, M, D       int
	PGNum         int
	StripeUnit    int64
	FailureDomain string // "osd", "host", or "rack"
}

// Cluster is the simulated DSS.
type Cluster struct {
	cfg   Config
	sim   *simclock.Sim
	net   *simnet.Network
	crush *crush.Map
	osds  []*OSD
	pools map[string]*Pool
	log   LogFunc

	mon *monitor

	// Freelists for the pooled recovery-pipeline nodes (see recovery.go).
	freeObjs   *objRepair
	freeReads  *helperRead
	freeWrites *chunkWrite
}

// New builds the cluster topology with fresh empty stores.
func New(cfg Config) (*Cluster, error) {
	return build(cfg, func(cfg Config, id, hostIdx, devIdx int) (*bluestore.Store, error) {
		dev, err := blockdev.New(fmt.Sprintf("host%02d-nvme%dn1", hostIdx, devIdx), cfg.DeviceCapacity, 4096)
		if err != nil {
			return nil, err
		}
		return bluestore.Open(dev, cfg.Store)
	})
}

// normalizeClusterConfig applies the zero-value defaults New documents.
func normalizeClusterConfig(cfg Config) (Config, error) {
	if cfg.Hosts <= 0 || cfg.OSDsPerHost <= 0 {
		return cfg, fmt.Errorf("%w: hosts=%d osdsPerHost=%d", ErrBadGeometry, cfg.Hosts, cfg.OSDsPerHost)
	}
	if cfg.DeviceCapacity <= 0 {
		cfg.DeviceCapacity = 100 << 30
	}
	if cfg.Net.BandwidthBytesPerSec == 0 {
		cfg.Net = simnet.DefaultConfig()
	}
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = DefaultCostModel()
	}
	if cfg.SimWorkers == 0 {
		cfg.SimWorkers = parallel.SimWorkers()
	}
	return cfg, nil
}

// build constructs the cluster skeleton — simulator, network, CRUSH map,
// OSD queues — and asks mkStore for each OSD's object store, so New can
// create empty stores and Snapshot.Fork can supply copy-on-write forks.
func build(cfg Config, mkStore func(cfg Config, id, hostIdx, devIdx int) (*bluestore.Store, error)) (*Cluster, error) {
	cfg, err := normalizeClusterConfig(cfg)
	if err != nil {
		return nil, err
	}
	sim := simclock.New()
	net := simnet.New(sim, cfg.Net)
	log := cfg.Log
	if log == nil {
		log = func(simclock.Time, string, string) {}
	}

	b := crush.NewBuilder()
	c := &Cluster{
		cfg:   cfg,
		sim:   sim,
		net:   net,
		pools: map[string]*Pool{},
		log:   log,
	}
	if err := net.AddHost("mon0"); err != nil {
		return nil, err
	}
	for r := 0; r < cfg.Racks; r++ {
		if err := b.AddRack(fmt.Sprintf("rack%02d", r)); err != nil {
			return nil, err
		}
	}
	for h := 0; h < cfg.Hosts; h++ {
		host := fmt.Sprintf("host%02d", h)
		rack := ""
		if cfg.Racks > 0 {
			rack = fmt.Sprintf("rack%02d", h%cfg.Racks)
		}
		if err := b.AddHost(host, rack); err != nil {
			return nil, err
		}
		if err := net.AddHost(host); err != nil {
			return nil, err
		}
		for d := 0; d < cfg.OSDsPerHost; d++ {
			id, err := b.AddOSD(host, 1.0)
			if err != nil {
				return nil, err
			}
			store, err := mkStore(cfg, id, h, d)
			if err != nil {
				return nil, err
			}
			backfills := cfg.Cost.MaxBackfills
			if backfills < 1 {
				backfills = 1
			}
			osd := &OSD{
				ID:      id,
				Host:    host,
				Store:   store,
				up:      true,
				in:      true,
				disk:    sim.NewQueue(1),
				cpu:     sim.NewQueue(1),
				reserve: sim.NewSemaphore(backfills),
			}
			c.osds = append(c.osds, osd)
		}
	}
	c.crush = b.Build()
	c.mon = newMonitor(c)
	return c, nil
}

// Sim exposes the simulator (for schedulers and tests).
func (c *Cluster) Sim() *simclock.Sim { return c.sim }

// RunSim drives the simulation to completion and returns the final
// simulated time. With a configured worker budget above one it uses the
// conservative time-partitioned parallel engine, with the lookahead
// window derived from the minimum simnet link latency; results are
// byte-identical to the serial engine either way.
func (c *Cluster) RunSim() simclock.Time {
	if w := c.cfg.SimWorkers; w > 1 {
		return c.sim.RunParallel(w, c.net.Lookahead())
	}
	return c.sim.Run()
}

// Net exposes the network fabric.
func (c *Cluster) Net() *simnet.Network { return c.net }

// Crush exposes the placement map.
func (c *Cluster) Crush() *crush.Map { return c.crush }

// OSDs returns all OSDs.
func (c *Cluster) OSDs() []*OSD { return c.osds }

// OSD returns one OSD by id.
func (c *Cluster) OSD(id int) *OSD { return c.osds[id] }

// Pool returns a pool by name.
func (c *Cluster) Pool(name string) (*Pool, error) {
	p, ok := c.pools[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoPool, name)
	}
	return p, nil
}

// CreatePool creates an erasure-coded pool and maps its placement groups.
func (c *Cluster) CreatePool(pc PoolConfig) (*Pool, error) {
	if _, dup := c.pools[pc.Name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrPoolExists, pc.Name)
	}
	if pc.PGNum <= 0 {
		return nil, fmt.Errorf("cluster: pool %q needs pg_num >= 1", pc.Name)
	}
	if pc.StripeUnit <= 0 {
		pc.StripeUnit = 4096
	}
	if pc.FailureDomain == "" {
		pc.FailureDomain = crush.TypeHost
	}
	// Codes come from the process-wide registry: constructions are
	// immutable and their derived-artifact caches are concurrency-safe,
	// so pools with the same spec — across clusters and snapshot forks —
	// share one instance and its compiled programs/plans.
	code, err := codecache.Get(pc.Plugin, pc.K, pc.M, pc.D)
	if err != nil {
		return nil, err
	}
	pool := &Pool{
		Name:          pc.Name,
		Plugin:        pc.Plugin,
		Code:          code,
		PGCount:       pc.PGNum,
		StripeUnit:    pc.StripeUnit,
		FailureDomain: pc.FailureDomain,
		cfg:           pc,
	}
	poolSeed := nameHash(pc.Name)
	for pg := 0; pg < pc.PGNum; pg++ {
		acting, err := c.crush.Select(poolSeed^uint64(pg)*0x9e3779b97f4a7c15, code.N(), pc.FailureDomain)
		if err != nil {
			return nil, fmt.Errorf("cluster: mapping pg %d: %w", pg, err)
		}
		pool.PGs = append(pool.PGs, &PG{ID: pg, Acting: acting})
	}
	c.pools[pc.Name] = pool
	c.log(c.sim.Now(), "mon0", fmt.Sprintf("pool %s created: plugin=%s k=%d m=%d pg_num=%d stripe_unit=%d", pc.Name, pc.Plugin, pc.K, pc.M, pc.PGNum, pc.StripeUnit))
	return pool, nil
}

func nameHash(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// pgOf maps an object name to its placement group.
func (p *Pool) pgOf(name string) *PG {
	return p.PGs[nameHash(name)%uint64(p.PGCount)]
}

// PGOf returns the placement group an object name maps to.
func (p *Pool) PGOf(name string) *PG { return p.pgOf(name) }

// chunkName is the per-shard object name on an OSD.
// chunkName formats "<pool>/<pg>/<object>/s<shard>". It is on the bulk
// load and recovery write paths (one call per stored chunk), so it
// appends into an exactly sized buffer instead of going through fmt.
func chunkName(pool string, pg int, object string, shard int) string {
	var sb strings.Builder
	var tmp [20]byte
	sb.Grow(len(pool) + len(object) + 24)
	sb.WriteString(pool)
	sb.WriteByte('/')
	sb.Write(strconv.AppendInt(tmp[:0], int64(pg), 10))
	sb.WriteByte('/')
	sb.WriteString(object)
	sb.WriteString("/s")
	sb.Write(strconv.AppendInt(tmp[:0], int64(shard), 10))
	return sb.String()
}

// storedChunkSize returns the on-disk chunk size for an object: the
// division-and-padding formula, rounded up so payload-mode shards divide
// evenly by the code's sub-chunk count.
func (p *Pool) storedChunkSize(objectSize int64, payload bool) (int64, error) {
	cs, err := wamodel.ChunkSize(objectSize, p.Code.K(), p.StripeUnit)
	if err != nil {
		return 0, err
	}
	if payload {
		alpha := int64(p.Code.SubChunks())
		cs = (cs + alpha - 1) / alpha * alpha
	}
	return cs, nil
}

// BulkLoad ingests a synthetic workload into a pool without payload bytes
// or simulated time: the steady state before the experiment's fault.
func (c *Cluster) BulkLoad(poolName string, objs []workload.Object) error {
	pool, err := c.Pool(poolName)
	if err != nil {
		return err
	}
	n := pool.Code.N()
	// Group the chunk writes per OSD and ingest each group in one
	// WriteChunksBulk call: identical accounting to per-chunk WriteChunk,
	// but one lock/KV/device round per store instead of one per chunk.
	perOSD := int64(len(objs)) * int64(n) / int64(len(c.osds))
	batches := make([][]bluestore.BulkChunk, len(c.osds))
	for id := range batches {
		batches[id] = make([]bluestore.BulkChunk, 0, perOSD+perOSD/4)
	}
	for i := range objs {
		o := objs[i]
		pg := pool.pgOf(o.Name)
		cs, err := pool.storedChunkSize(o.Size, false)
		if err != nil {
			return err
		}
		share := o.Size / int64(n)
		for shard, osdID := range pg.Acting {
			batches[osdID] = append(batches[osdID], bluestore.BulkChunk{
				Name:  chunkName(pool.Name, pg.ID, o.Name, shard),
				Size:  cs,
				Share: share,
			})
		}
		pg.Objects = append(pg.Objects, &ObjectRecord{Name: o.Name, Size: o.Size, ChunkSize: cs})
	}
	for osdID, batch := range batches {
		if len(batch) == 0 {
			continue
		}
		if err := c.osds[osdID].Store.WriteChunksBulk(batch); err != nil {
			return fmt.Errorf("cluster: bulk load on osd.%d: %w", osdID, err)
		}
	}
	return nil
}

// findObject locates an object's record in its PG, or returns nil.
func (p *Pool) findObject(name string) (*PG, *ObjectRecord, int) {
	pg := p.pgOf(name)
	for i, o := range pg.Objects {
		if o.Name == name {
			return pg, o, i
		}
	}
	return pg, nil, -1
}

// WriteObject stores an object with real payload bytes: it erasure-codes
// the data with the pool's plugin and writes one shard per acting-set OSD.
// Overwriting an existing object replaces its chunks.
//
// Payload layout: data shard i holds the contiguous byte range
// [i*chunk, (i+1)*chunk) of the object (zero-padded at the tail). Ceph
// interleaves stripe units across shards instead; the two layouts are
// equivalent for sizing, repair I/O and durability, and the stripe unit
// still governs chunk padding and sub-chunk granularity here.
func (c *Cluster) WriteObject(poolName, name string, data []byte) error {
	pool, err := c.Pool(poolName)
	if err != nil {
		return err
	}
	pg := pool.pgOf(name)
	code := pool.Code
	cs, err := pool.storedChunkSize(int64(len(data)), true)
	if err != nil {
		return err
	}
	shards := make([][]byte, code.N())
	for i := 0; i < code.K(); i++ {
		shards[i] = make([]byte, cs)
		lo := int64(i) * cs
		if lo < int64(len(data)) {
			hi := lo + cs
			if hi > int64(len(data)) {
				hi = int64(len(data))
			}
			copy(shards[i], data[lo:hi])
		}
	}
	if err := code.Encode(shards); err != nil {
		return err
	}
	share := int64(len(data)) / int64(code.N())
	for shard, osdID := range pg.Acting {
		osd := c.osds[osdID]
		if !osd.up {
			continue // degraded write: shard stays missing until recovery
		}
		cn := chunkName(pool.Name, pg.ID, name, shard)
		if err := osd.Store.WriteChunk(cn, cs, share, shards[shard]); err != nil {
			return err
		}
	}
	if _, existing, _ := pool.findObject(name); existing != nil {
		existing.Size = int64(len(data))
		existing.ChunkSize = cs
		existing.Payload = true
		return nil
	}
	pg.Objects = append(pg.Objects, &ObjectRecord{Name: name, Size: int64(len(data)), ChunkSize: cs, Payload: true})
	return nil
}

// DeleteObject removes an object's chunks from every acting OSD and drops
// its record.
func (c *Cluster) DeleteObject(poolName, name string) error {
	pool, err := c.Pool(poolName)
	if err != nil {
		return err
	}
	pg, rec, idx := pool.findObject(name)
	if rec == nil {
		return fmt.Errorf("%w: %s/%s", ErrNoObject, poolName, name)
	}
	for shard, osdID := range pg.Acting {
		osd := c.osds[osdID]
		if !osd.up {
			continue
		}
		// Chunks may be missing on OSDs that joined after a degraded
		// write; ignore not-found.
		_ = osd.Store.DeleteChunk(chunkName(pool.Name, pg.ID, name, shard))
	}
	pg.Objects = append(pg.Objects[:idx], pg.Objects[idx+1:]...)
	return nil
}

// StatObject returns an object's logical size.
func (c *Cluster) StatObject(poolName, name string) (int64, error) {
	pool, err := c.Pool(poolName)
	if err != nil {
		return 0, err
	}
	_, rec, _ := pool.findObject(name)
	if rec == nil {
		return 0, fmt.Errorf("%w: %s/%s", ErrNoObject, poolName, name)
	}
	return rec.Size, nil
}

// ReadObject reads an object, decoding around missing or failed shards
// (a degraded read) when necessary.
func (c *Cluster) ReadObject(poolName, name string) ([]byte, error) {
	pool, err := c.Pool(poolName)
	if err != nil {
		return nil, err
	}
	pg := pool.pgOf(name)
	var rec *ObjectRecord
	for _, o := range pg.Objects {
		if o.Name == name {
			rec = o
			break
		}
	}
	if rec == nil {
		return nil, fmt.Errorf("%w: %s/%s", ErrNoObject, poolName, name)
	}
	if !rec.Payload {
		return nil, fmt.Errorf("cluster: object %s has no payload (accounting mode)", name)
	}
	code := pool.Code
	shards := make([][]byte, code.N())
	available := 0
	for shard, osdID := range pg.Acting {
		osd := c.osds[osdID]
		if !osd.up {
			continue
		}
		_, buf, err := osd.Store.ReadChunk(chunkName(pool.Name, pg.ID, name, shard))
		if err != nil {
			continue
		}
		shards[shard] = buf
		available++
	}
	if available < code.K() {
		return nil, fmt.Errorf("cluster: object %s unreadable: %d of %d shards available", name, available, code.K())
	}
	if available < code.N() {
		if err := code.Decode(shards); err != nil {
			return nil, err
		}
	}
	out := make([]byte, 0, rec.Size)
	for i := 0; i < code.K() && int64(len(out)) < rec.Size; i++ {
		need := rec.Size - int64(len(out))
		if need > int64(len(shards[i])) {
			need = int64(len(shards[i]))
		}
		out = append(out, shards[i][:need]...)
	}
	return out, nil
}

// UsedBytes sums OSD-level storage usage across the cluster, the quantity
// behind the paper's Actual WA Factor.
func (c *Cluster) UsedBytes() int64 {
	var total int64
	for _, o := range c.osds {
		total += o.Store.UsedBytes()
	}
	return total
}

// DataBytes sums allocated payload bytes across OSDs.
func (c *Cluster) DataBytes() int64 {
	var total int64
	for _, o := range c.osds {
		total += o.Store.DataBytes()
	}
	return total
}

// DegradedPGs lists PGs of a pool that currently include a down OSD in
// their acting set.
func (c *Cluster) DegradedPGs(poolName string) ([]*PG, error) {
	pool, err := c.Pool(poolName)
	if err != nil {
		return nil, err
	}
	var out []*PG
	for _, pg := range pool.PGs {
		for _, id := range pg.Acting {
			if !c.osds[id].up {
				out = append(out, pg)
				break
			}
		}
	}
	return out, nil
}

// HostWithMostChunks returns the host whose OSDs hold the most chunks of
// the pool — the EC-aware target the white-box fault injector picks so a
// "host failure" is guaranteed to intersect stored data.
func (c *Cluster) HostWithMostChunks(poolName string) (string, error) {
	pool, err := c.Pool(poolName)
	if err != nil {
		return "", err
	}
	counts := map[string]int{}
	for _, pg := range pool.PGs {
		if len(pg.Objects) == 0 {
			continue
		}
		for _, id := range pg.Acting {
			counts[c.crush.HostOf(id)] += len(pg.Objects)
		}
	}
	best, bestCount := "", -1
	hosts := make([]string, 0, len(counts))
	for h := range counts {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	for _, h := range hosts {
		if counts[h] > bestCount {
			best, bestCount = h, counts[h]
		}
	}
	if best == "" {
		return "", fmt.Errorf("cluster: pool %q holds no data", poolName)
	}
	return best, nil
}

// Package iostat samples per-device I/O counters over simulated time, the
// role iostat plays on each DSS server in the paper's methodology. The
// samples feed the breakdown analysis (when did recovery I/O actually
// start and stop on each device).
package iostat

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/blockdev"
	"repro/internal/simclock"
)

// Sample is a point-in-time delta of a device's counters.
type Sample struct {
	Time       simclock.Time
	Device     string
	ReadOps    int64
	WriteOps   int64
	ReadBytes  int64
	WriteBytes int64
}

// Sampler tracks a set of devices and records counter deltas.
type Sampler struct {
	mu      sync.Mutex
	devices map[string]*blockdev.Device
	last    map[string]blockdev.Stats
	samples []Sample
}

// NewSampler creates an empty sampler.
func NewSampler() *Sampler {
	return &Sampler{devices: map[string]*blockdev.Device{}, last: map[string]blockdev.Stats{}}
}

// Track registers a device under a unique name. The first sample deltas
// against the device's counters at track time.
func (s *Sampler) Track(name string, dev *blockdev.Device) error {
	return s.TrackFrom(name, dev, dev.Snapshot())
}

// TrackFrom registers a device with an explicit baseline for the first
// delta. Forked clusters inherit their parent's populate-phase counters,
// so tracking them from a zero baseline reports the same first-sample
// deltas a fresh cluster tracked from birth would.
func (s *Sampler) TrackFrom(name string, dev *blockdev.Device, baseline blockdev.Stats) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.devices[name]; dup {
		return fmt.Errorf("iostat: device %q already tracked", name)
	}
	s.devices[name] = dev
	s.last[name] = baseline
	return nil
}

// Sample records deltas for all tracked devices at simulated time t.
func (s *Sampler) Sample(t simclock.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.devices))
	for n := range s.devices {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		cur := s.devices[name].Snapshot()
		prev := s.last[name]
		s.samples = append(s.samples, Sample{
			Time:       t,
			Device:     name,
			ReadOps:    cur.ReadOps - prev.ReadOps,
			WriteOps:   cur.WriteOps - prev.WriteOps,
			ReadBytes:  cur.ReadBytes - prev.ReadBytes,
			WriteBytes: cur.WriteBytes - prev.WriteBytes,
		})
		s.last[name] = cur
	}
}

// Samples returns all recorded samples in time order.
func (s *Sampler) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, len(s.samples))
	copy(out, s.samples)
	return out
}

// Busy returns, per device, the total bytes moved in [from, to].
func (s *Sampler) Busy(from, to simclock.Time) map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[string]int64{}
	for _, smp := range s.samples {
		if smp.Time < from || smp.Time > to {
			continue
		}
		out[smp.Device] += smp.ReadBytes + smp.WriteBytes
	}
	return out
}

// FirstActivity returns the earliest sample time at which the device moved
// any bytes, or false if it never did.
func (s *Sampler) FirstActivity(device string) (simclock.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, smp := range s.samples {
		if smp.Device == device && (smp.ReadBytes > 0 || smp.WriteBytes > 0) {
			return smp.Time, true
		}
	}
	return 0, false
}

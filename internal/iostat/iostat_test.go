package iostat

import (
	"testing"
	"time"

	"repro/internal/blockdev"
)

func TestSampleDeltas(t *testing.T) {
	s := NewSampler()
	dev, _ := blockdev.New("nvme0n1", 1<<20, 4096)
	if err := s.Track("osd0", dev); err != nil {
		t.Fatal(err)
	}
	if err := s.Track("osd0", dev); err == nil {
		t.Fatal("duplicate track accepted")
	}
	_, _ = dev.WriteAt(make([]byte, 100), 0)
	s.Sample(time.Second)
	_, _ = dev.ReadAt(make([]byte, 40), 0)
	s.Sample(2 * time.Second)

	samples := s.Samples()
	if len(samples) != 2 {
		t.Fatalf("samples = %d", len(samples))
	}
	if samples[0].WriteBytes != 100 || samples[0].ReadBytes != 0 {
		t.Fatalf("sample0 = %+v", samples[0])
	}
	if samples[1].WriteBytes != 0 || samples[1].ReadBytes != 40 {
		t.Fatalf("sample1 = %+v", samples[1])
	}
}

func TestBusyWindow(t *testing.T) {
	s := NewSampler()
	dev, _ := blockdev.New("d", 1<<20, 4096)
	_ = s.Track("osd0", dev)
	_ = dev.AccountWrite(10)
	s.Sample(time.Second)
	_ = dev.AccountWrite(20)
	s.Sample(2 * time.Second)
	_ = dev.AccountRead(5)
	s.Sample(3 * time.Second)

	busy := s.Busy(2*time.Second, 3*time.Second)
	if busy["osd0"] != 25 {
		t.Fatalf("busy = %v", busy)
	}
}

func TestFirstActivity(t *testing.T) {
	s := NewSampler()
	dev, _ := blockdev.New("d", 1<<20, 4096)
	_ = s.Track("osd0", dev)
	s.Sample(time.Second) // idle
	_ = dev.AccountRead(1)
	s.Sample(2 * time.Second)
	ts, ok := s.FirstActivity("osd0")
	if !ok || ts != 2*time.Second {
		t.Fatalf("first activity = %v ok=%v", ts, ok)
	}
	if _, ok := s.FirstActivity("missing"); ok {
		t.Fatal("activity for untracked device")
	}
}

func TestMultipleDevicesSortedInSample(t *testing.T) {
	s := NewSampler()
	d1, _ := blockdev.New("a", 1<<20, 4096)
	d2, _ := blockdev.New("b", 1<<20, 4096)
	_ = s.Track("osd1", d1)
	_ = s.Track("osd0", d2)
	s.Sample(time.Second)
	samples := s.Samples()
	if len(samples) != 2 || samples[0].Device != "osd0" || samples[1].Device != "osd1" {
		t.Fatalf("samples = %+v", samples)
	}
}

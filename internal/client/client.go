// Package client provides the Ceph-style access interfaces of Table 1 on
// top of an erasure-coded pool: a RADOS object client, an RBD-like block
// image striped over fixed-size objects, and an RGW-like object gateway
// with multipart uploads and bucket indexes. They exercise the "Ceph
// interface" configuration dimension of the study and give the examples a
// realistic client-side workload shape.
package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/cluster"
)

// Errors.
var (
	ErrNotFound    = errors.New("client: not found")
	ErrOutOfRange  = errors.New("client: offset out of range")
	ErrBadArgument = errors.New("client: bad argument")
)

// RADOS is the basic object interface over one pool.
type RADOS struct {
	c    *cluster.Cluster
	pool string
}

// NewRADOS binds a client to a pool.
func NewRADOS(c *cluster.Cluster, pool string) *RADOS {
	return &RADOS{c: c, pool: pool}
}

// Put stores (or replaces) an object.
func (r *RADOS) Put(name string, data []byte) error {
	return r.c.WriteObject(r.pool, name, data)
}

// Get reads an object, decoding around failures if needed.
func (r *RADOS) Get(name string) ([]byte, error) {
	data, err := r.c.ReadObject(r.pool, name)
	if err != nil {
		if errors.Is(err, cluster.ErrNoObject) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
		}
		return nil, err
	}
	return data, nil
}

// Delete removes an object.
func (r *RADOS) Delete(name string) error {
	if err := r.c.DeleteObject(r.pool, name); err != nil {
		if errors.Is(err, cluster.ErrNoObject) {
			return fmt.Errorf("%w: %s", ErrNotFound, name)
		}
		return err
	}
	return nil
}

// Stat returns an object's size.
func (r *RADOS) Stat(name string) (int64, error) {
	size, err := r.c.StatObject(r.pool, name)
	if err != nil {
		if errors.Is(err, cluster.ErrNoObject) {
			return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
		}
		return 0, err
	}
	return size, nil
}

// Image is an RBD-style block device striped over fixed-size objects.
// Unwritten regions read as zeros; backing objects are created lazily on
// first write, exactly like RBD's thin provisioning.
type Image struct {
	mu         sync.Mutex
	rados      *RADOS
	name       string
	size       int64
	objectSize int64
}

// CreateImage creates a thin-provisioned image of the given size striped
// over objects of objectSize bytes.
func CreateImage(r *RADOS, name string, size, objectSize int64) (*Image, error) {
	if size <= 0 || objectSize <= 0 {
		return nil, fmt.Errorf("%w: size=%d objectSize=%d", ErrBadArgument, size, objectSize)
	}
	im := &Image{rados: r, name: name, size: size, objectSize: objectSize}
	meta, _ := json.Marshal(map[string]int64{"size": size, "object_size": objectSize})
	if err := r.Put(im.headerName(), meta); err != nil {
		return nil, err
	}
	return im, nil
}

// OpenImage opens an existing image from its header object.
func OpenImage(r *RADOS, name string) (*Image, error) {
	data, err := r.Get("rbd/" + name + "/header")
	if err != nil {
		return nil, err
	}
	var meta map[string]int64
	if err := json.Unmarshal(data, &meta); err != nil {
		return nil, fmt.Errorf("client: corrupt image header: %w", err)
	}
	return &Image{rados: r, name: name, size: meta["size"], objectSize: meta["object_size"]}, nil
}

// Name returns the image name.
func (im *Image) Name() string { return im.name }

// Size returns the image size in bytes.
func (im *Image) Size() int64 { return im.size }

func (im *Image) headerName() string { return "rbd/" + im.name + "/header" }

func (im *Image) objectName(idx int64) string {
	return fmt.Sprintf("rbd/%s/%016x", im.name, idx)
}

// WriteAt writes p at off (io.WriterAt semantics).
func (im *Image) WriteAt(p []byte, off int64) (int, error) {
	im.mu.Lock()
	defer im.mu.Unlock()
	if off < 0 || off+int64(len(p)) > im.size {
		return 0, fmt.Errorf("%w: off=%d len=%d size=%d", ErrOutOfRange, off, len(p), im.size)
	}
	written := 0
	for written < len(p) {
		idx := (off + int64(written)) / im.objectSize
		inOff := (off + int64(written)) % im.objectSize
		n := im.objectSize - inOff
		if n > int64(len(p)-written) {
			n = int64(len(p) - written)
		}
		// Read-modify-write the backing object.
		obj, err := im.rados.Get(im.objectName(idx))
		if err != nil {
			if !errors.Is(err, ErrNotFound) {
				return written, err
			}
			obj = make([]byte, im.objectSize)
		}
		if int64(len(obj)) < im.objectSize {
			obj = append(obj, make([]byte, im.objectSize-int64(len(obj)))...)
		}
		copy(obj[inOff:inOff+n], p[written:written+int(n)])
		if err := im.rados.Put(im.objectName(idx), obj); err != nil {
			return written, err
		}
		written += int(n)
	}
	return written, nil
}

// ReadAt reads len(p) bytes at off (io.ReaderAt semantics).
func (im *Image) ReadAt(p []byte, off int64) (int, error) {
	im.mu.Lock()
	defer im.mu.Unlock()
	if off < 0 || off+int64(len(p)) > im.size {
		return 0, fmt.Errorf("%w: off=%d len=%d size=%d", ErrOutOfRange, off, len(p), im.size)
	}
	read := 0
	for read < len(p) {
		idx := (off + int64(read)) / im.objectSize
		inOff := (off + int64(read)) % im.objectSize
		n := im.objectSize - inOff
		if n > int64(len(p)-read) {
			n = int64(len(p) - read)
		}
		obj, err := im.rados.Get(im.objectName(idx))
		switch {
		case errors.Is(err, ErrNotFound):
			for i := read; i < read+int(n); i++ {
				p[i] = 0 // thin-provisioned hole
			}
		case err != nil:
			return read, err
		default:
			if int64(len(obj)) < inOff+n {
				obj = append(obj, make([]byte, inOff+n-int64(len(obj)))...)
			}
			copy(p[read:read+int(n)], obj[inOff:inOff+n])
		}
		read += int(n)
	}
	return read, nil
}

// Gateway is an RGW-style object gateway: large objects upload as
// multipart (a manifest plus fixed-size part objects), and each bucket
// keeps an index object for listing.
type Gateway struct {
	mu       sync.Mutex
	rados    *RADOS
	partSize int64
}

// manifest describes one gateway object.
type manifest struct {
	Size     int64 `json:"size"`
	PartSize int64 `json:"part_size"`
	Parts    int   `json:"parts"`
}

// NewGateway creates a gateway splitting uploads into partSize parts
// (default 4 MiB, RGW's rgw_obj_stripe_size).
func NewGateway(r *RADOS, partSize int64) *Gateway {
	if partSize <= 0 {
		partSize = 4 << 20
	}
	return &Gateway{rados: r, partSize: partSize}
}

func manifestName(bucket, key string) string { return "rgw/" + bucket + "/" + key + "/.manifest" }
func partName(bucket, key string, i int) string {
	return fmt.Sprintf("rgw/%s/%s/.part%06d", bucket, key, i)
}
func indexName(bucket string) string { return "rgw/" + bucket + "/.index" }

// PutObject uploads an object, splitting it into parts.
func (g *Gateway) PutObject(bucket, key string, data []byte) error {
	if bucket == "" || key == "" || strings.Contains(key, "/.") {
		return fmt.Errorf("%w: bucket=%q key=%q", ErrBadArgument, bucket, key)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	parts := 0
	for off := int64(0); off < int64(len(data)) || (len(data) == 0 && off == 0); off += g.partSize {
		end := off + g.partSize
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		if err := g.rados.Put(partName(bucket, key, parts), data[off:end]); err != nil {
			return err
		}
		parts++
		if len(data) == 0 {
			break
		}
	}
	m, _ := json.Marshal(manifest{Size: int64(len(data)), PartSize: g.partSize, Parts: parts})
	if err := g.rados.Put(manifestName(bucket, key), m); err != nil {
		return err
	}
	return g.updateIndex(bucket, key, true)
}

// GetObject downloads and reassembles an object.
func (g *Gateway) GetObject(bucket, key string) ([]byte, error) {
	raw, err := g.rados.Get(manifestName(bucket, key))
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("client: corrupt manifest for %s/%s: %w", bucket, key, err)
	}
	out := make([]byte, 0, m.Size)
	for i := 0; i < m.Parts; i++ {
		part, err := g.rados.Get(partName(bucket, key, i))
		if err != nil {
			return nil, err
		}
		out = append(out, part...)
	}
	if int64(len(out)) != m.Size {
		return nil, fmt.Errorf("client: %s/%s reassembled %d bytes, manifest says %d", bucket, key, len(out), m.Size)
	}
	return out, nil
}

// DeleteObject removes an object's parts, manifest, and index entry.
func (g *Gateway) DeleteObject(bucket, key string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	raw, err := g.rados.Get(manifestName(bucket, key))
	if err != nil {
		return err
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return err
	}
	for i := 0; i < m.Parts; i++ {
		if err := g.rados.Delete(partName(bucket, key, i)); err != nil {
			return err
		}
	}
	if err := g.rados.Delete(manifestName(bucket, key)); err != nil {
		return err
	}
	return g.updateIndex(bucket, key, false)
}

// ListBucket returns the keys in a bucket, sorted.
func (g *Gateway) ListBucket(bucket string) ([]string, error) {
	raw, err := g.rados.Get(indexName(bucket))
	if errors.Is(err, ErrNotFound) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var keys []string
	if err := json.Unmarshal(raw, &keys); err != nil {
		return nil, fmt.Errorf("client: corrupt bucket index %s: %w", bucket, err)
	}
	return keys, nil
}

func (g *Gateway) updateIndex(bucket, key string, add bool) error {
	keys, err := g.ListBucket(bucket)
	if err != nil {
		return err
	}
	set := map[string]bool{}
	for _, k := range keys {
		set[k] = true
	}
	if add {
		set[key] = true
	} else {
		delete(set, key)
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	raw, _ := json.Marshal(out)
	return g.rados.Put(indexName(bucket), raw)
}

package client

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
)

func newRADOS(t *testing.T) (*cluster.Cluster, *RADOS) {
	t.Helper()
	cfg := cluster.DefaultConfig()
	cfg.Hosts = 10
	cfg.OSDsPerHost = 2
	cfg.DeviceCapacity = 2 << 30
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreatePool(cluster.PoolConfig{
		Name: "rbdpool", Plugin: "jerasure_reed_sol_van",
		K: 4, M: 2, PGNum: 16, StripeUnit: 16 << 10, FailureDomain: "host",
	}); err != nil {
		t.Fatal(err)
	}
	return c, NewRADOS(c, "rbdpool")
}

func TestRADOSPutGetDeleteStat(t *testing.T) {
	_, r := newRADOS(t)
	data := []byte("hello erasure world")
	if err := r.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	got, err := r.Get("obj")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("get: %q %v", got, err)
	}
	size, err := r.Stat("obj")
	if err != nil || size != int64(len(data)) {
		t.Fatalf("stat: %d %v", size, err)
	}
	// Overwrite replaces.
	if err := r.Put("obj", []byte("short")); err != nil {
		t.Fatal(err)
	}
	got, _ = r.Get("obj")
	if string(got) != "short" {
		t.Fatalf("overwrite: %q", got)
	}
	if err := r.Delete("obj"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("obj"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after delete: %v", err)
	}
	if err := r.Delete("obj"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if _, err := r.Stat("obj"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stat after delete: %v", err)
	}
}

func TestImageRoundTrip(t *testing.T) {
	_, r := newRADOS(t)
	im, err := CreateImage(r, "vol0", 1<<20, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	// Unwritten regions read as zeros.
	buf := make([]byte, 1000)
	for i := range buf {
		buf[i] = 0xFF
	}
	if _, err := im.ReadAt(buf, 500_000); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("thin-provisioned hole not zero")
		}
	}
	// Write spanning object boundaries.
	data := make([]byte, 200_000)
	rand.New(rand.NewSource(1)).Read(data)
	if n, err := im.WriteAt(data, 60_000); err != nil || n != len(data) {
		t.Fatalf("write: %d %v", n, err)
	}
	got := make([]byte, len(data))
	if _, err := im.ReadAt(got, 60_000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("image round trip mismatch")
	}
	// Partial overwrite.
	if _, err := im.WriteAt([]byte{9, 9, 9}, 65_000); err != nil {
		t.Fatal(err)
	}
	small := make([]byte, 5)
	if _, err := im.ReadAt(small, 64_999); err != nil {
		t.Fatal(err)
	}
	if small[0] != data[64_999-60_000] {
		t.Fatalf("byte before overwrite changed: %v", small)
	}
	if small[1] != 9 || small[2] != 9 || small[3] != 9 {
		t.Fatalf("partial overwrite wrong: %v", small)
	}
	if small[4] != data[65_003-60_000] {
		t.Fatalf("byte after overwrite changed: %v", small)
	}
}

func TestImageBounds(t *testing.T) {
	_, r := newRADOS(t)
	im, err := CreateImage(r, "vol1", 100_000, 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := im.WriteAt(make([]byte, 10), 99_995); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("write past end: %v", err)
	}
	if _, err := im.ReadAt(make([]byte, 10), -1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("negative read: %v", err)
	}
	if _, err := CreateImage(r, "bad", 0, 1); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("zero size: %v", err)
	}
}

func TestOpenImage(t *testing.T) {
	_, r := newRADOS(t)
	if _, err := CreateImage(r, "vol2", 500_000, 64<<10); err != nil {
		t.Fatal(err)
	}
	im, err := OpenImage(r, "vol2")
	if err != nil {
		t.Fatal(err)
	}
	if im.Size() != 500_000 || im.Name() != "vol2" {
		t.Fatalf("reopened image: %d %s", im.Size(), im.Name())
	}
	if _, err := OpenImage(r, "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("open missing: %v", err)
	}
}

func TestGatewayMultipart(t *testing.T) {
	_, r := newRADOS(t)
	g := NewGateway(r, 64<<10)
	data := make([]byte, 300_000) // ~5 parts
	rand.New(rand.NewSource(2)).Read(data)
	if err := g.PutObject("photos", "cat.jpg", data); err != nil {
		t.Fatal(err)
	}
	got, err := g.GetObject("photos", "cat.jpg")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("gateway round trip: %v", err)
	}
	// Empty object.
	if err := g.PutObject("photos", "empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err = g.GetObject("photos", "empty")
	if err != nil || len(got) != 0 {
		t.Fatalf("empty object: %d bytes, %v", len(got), err)
	}
	keys, err := g.ListBucket("photos")
	if err != nil || len(keys) != 2 || keys[0] != "cat.jpg" || keys[1] != "empty" {
		t.Fatalf("list: %v %v", keys, err)
	}
	if err := g.DeleteObject("photos", "cat.jpg"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.GetObject("photos", "cat.jpg"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after delete: %v", err)
	}
	keys, _ = g.ListBucket("photos")
	if len(keys) != 1 {
		t.Fatalf("index not updated: %v", keys)
	}
	if keys2, err := g.ListBucket("nonexistent"); err != nil || keys2 != nil {
		t.Fatalf("empty bucket: %v %v", keys2, err)
	}
}

func TestGatewayValidation(t *testing.T) {
	_, r := newRADOS(t)
	g := NewGateway(r, 0) // default part size
	if err := g.PutObject("", "key", nil); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("empty bucket: %v", err)
	}
	if err := g.PutObject("b", "x/.sneaky", nil); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("reserved key: %v", err)
	}
}

// TestClientSurvivesRecovery drives RBD and RGW data through a failure
// and recovery cycle, verifying end-to-end integrity through the client
// interfaces.
func TestClientSurvivesRecovery(t *testing.T) {
	c, r := newRADOS(t)
	im, err := CreateImage(r, "vol", 512<<10, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	blockData := make([]byte, 256<<10)
	rand.New(rand.NewSource(3)).Read(blockData)
	if _, err := im.WriteAt(blockData, 128<<10); err != nil {
		t.Fatal(err)
	}
	g := NewGateway(r, 64<<10)
	objData := make([]byte, 200_000)
	rand.New(rand.NewSource(4)).Read(objData)
	if err := g.PutObject("bkt", "obj", objData); err != nil {
		t.Fatal(err)
	}

	host, err := c.HostWithMostChunks("rbdpool")
	if err != nil {
		t.Fatal(err)
	}
	c.FailHost(time.Second, host)
	if _, err := c.RecoverPool("rbdpool"); err != nil {
		t.Fatal(err)
	}

	got := make([]byte, len(blockData))
	if _, err := im.ReadAt(got, 128<<10); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blockData) {
		t.Fatal("image data corrupted by recovery")
	}
	objGot, err := g.GetObject("bkt", "obj")
	if err != nil || !bytes.Equal(objGot, objData) {
		t.Fatalf("gateway data corrupted by recovery: %v", err)
	}
}

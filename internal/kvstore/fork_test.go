package kvstore

import "testing"

func TestForkRequiresFreeze(t *testing.T) {
	db := Open(1.3)
	if _, err := db.Fork(); err == nil {
		t.Fatal("Fork of unfrozen store should fail")
	}
	db.Freeze()
	f, err := db.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Fork(); err == nil {
		t.Fatal("Fork of a fork should fail")
	}
}

func TestFrozenStorePanicsOnMutation(t *testing.T) {
	db := Open(1)
	db.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("Put on frozen store should panic")
		}
	}()
	db.Put("k", []byte("v"))
}

func TestForkIsolationAndAccounting(t *testing.T) {
	db := Open(1.5)
	db.Put("a", []byte("alpha"))
	db.Put("b", []byte("beta"))
	db.PutAccounted(3, 100)
	db.Freeze()

	f1, err := db.Fork()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := db.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if f1.Len() != db.Len() || f1.LogicalBytes() != db.LogicalBytes() ||
		f1.WALBytes() != db.WALBytes() || f1.Footprint() != db.Footprint() {
		t.Fatalf("fork accounting differs from parent")
	}

	// f1 overwrites a shared key, f2 deletes one.
	f1.Put("a", []byte("ALPHA-2"))
	f2.Delete("b")

	if v, _ := db.Get("a"); string(v) != "alpha" {
		t.Fatalf("parent a=%q, fork overwrite leaked", v)
	}
	if v, _ := f2.Get("a"); string(v) != "alpha" {
		t.Fatalf("sibling a=%q", v)
	}
	if v, _ := f1.Get("a"); string(v) != "ALPHA-2" {
		t.Fatalf("f1 a=%q", v)
	}
	if _, ok := f2.Get("b"); ok {
		t.Fatal("f2 still sees deleted b")
	}
	if v, ok := db.Get("b"); !ok || string(v) != "beta" {
		t.Fatal("parent lost b after fork delete")
	}
	if f1.Len() != db.Len() {
		t.Fatalf("f1 Len %d != parent %d after overwrite", f1.Len(), db.Len())
	}
	if f2.Len() != db.Len()-1 {
		t.Fatalf("f2 Len %d, parent %d", f2.Len(), db.Len())
	}
}

func TestForkScanMergesBase(t *testing.T) {
	db := Open(1)
	db.Put("p/1", []byte("one"))
	db.Put("p/2", []byte("two"))
	db.Put("q/1", []byte("other"))
	db.Freeze()
	f, _ := db.Fork()
	f.Put("p/3", []byte("three"))
	f.Put("p/1", []byte("ONE"))
	f.Delete("p/2")

	got := map[string]string{}
	f.Scan("p/", func(k string, v []byte) bool {
		if _, dup := got[k]; dup {
			t.Fatalf("duplicate key %s in scan", k)
		}
		got[k] = string(v)
		return true
	})
	want := map[string]string{"p/1": "ONE", "p/3": "three"}
	if len(got) != len(want) {
		t.Fatalf("scan got %v", got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("scan[%s]=%q want %q", k, got[k], v)
		}
	}
	// Parent scan unchanged.
	n := 0
	db.Scan("p/", func(k string, v []byte) bool { n++; return true })
	if n != 2 {
		t.Fatalf("parent scan saw %d keys", n)
	}
}

func TestForkReplayMatchesFresh(t *testing.T) {
	// The same mutation history applied to a fork and to a fresh store
	// that already contains the base entries must produce identical
	// accounting — this is what keeps WA results bit-identical.
	build := func() *DB {
		db := Open(1.35)
		db.Put("o/x", make([]byte, 512))
		db.Put("o/y", make([]byte, 512))
		return db
	}
	fresh := build()

	parent := build()
	parent.Freeze()
	fork, err := parent.Fork()
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(db *DB) {
		db.Put("o/x", make([]byte, 600)) // overwrite
		db.Delete("o/y")
		db.Put("o/z", make([]byte, 100))
	}
	mutate(fresh)
	mutate(fork)

	if fresh.Len() != fork.Len() {
		t.Fatalf("Len %d vs %d", fresh.Len(), fork.Len())
	}
	if fresh.LogicalBytes() != fork.LogicalBytes() {
		t.Fatalf("LogicalBytes %d vs %d", fresh.LogicalBytes(), fork.LogicalBytes())
	}
	if fresh.WALBytes() != fork.WALBytes() {
		t.Fatalf("WALBytes %d vs %d", fresh.WALBytes(), fork.WALBytes())
	}
	if fresh.Footprint() != fork.Footprint() {
		t.Fatalf("Footprint %d vs %d", fresh.Footprint(), fork.Footprint())
	}
}

package kvstore

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGetDelete(t *testing.T) {
	db := Open(1)
	if _, ok := db.Get("a"); ok {
		t.Fatal("empty store returned a value")
	}
	db.Put("a", []byte("hello"))
	v, ok := db.Get("a")
	if !ok || !bytes.Equal(v, []byte("hello")) {
		t.Fatalf("got %q %v", v, ok)
	}
	db.Delete("a")
	if _, ok := db.Get("a"); ok {
		t.Fatal("deleted key still present")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	db := Open(1)
	db.Put("k", []byte{1, 2, 3})
	v, _ := db.Get("k")
	v[0] = 99
	v2, _ := db.Get("k")
	if v2[0] != 1 {
		t.Fatal("Get leaked internal buffer")
	}
}

func TestScanSortedPrefix(t *testing.T) {
	db := Open(1)
	db.Put("obj/3", []byte("c"))
	db.Put("obj/1", []byte("a"))
	db.Put("obj/2", []byte("b"))
	db.Put("other/x", []byte("x"))
	var keys []string
	db.Scan("obj/", func(k string, v []byte) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 3 || keys[0] != "obj/1" || keys[1] != "obj/2" || keys[2] != "obj/3" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestScanEarlyStop(t *testing.T) {
	db := Open(1)
	for i := 0; i < 10; i++ {
		db.Put(fmt.Sprintf("k%02d", i), nil)
	}
	count := 0
	db.Scan("k", func(string, []byte) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("count = %d", count)
	}
}

func TestAccounting(t *testing.T) {
	db := Open(2.0)
	db.Put("key", make([]byte, 100)) // 3 + 100 + 24 = 127
	if db.LogicalBytes() != 127 {
		t.Fatalf("logical = %d", db.LogicalBytes())
	}
	if db.Footprint() != 254 {
		t.Fatalf("footprint = %d", db.Footprint())
	}
	if db.WALBytes() != 127 {
		t.Fatalf("wal = %d", db.WALBytes())
	}
	// Overwrite: logical stays flat, WAL grows.
	db.Put("key", make([]byte, 100))
	if db.LogicalBytes() != 127 {
		t.Fatalf("logical after overwrite = %d", db.LogicalBytes())
	}
	if db.WALBytes() != 254 {
		t.Fatalf("wal after overwrite = %d", db.WALBytes())
	}
	// Delete: logical drops to zero, WAL grows by tombstone.
	db.Delete("key")
	if db.LogicalBytes() != 0 {
		t.Fatalf("logical after delete = %d", db.LogicalBytes())
	}
	if db.WALBytes() != 254+3+24 {
		t.Fatalf("wal after delete = %d", db.WALBytes())
	}
}

func TestSpaceAmpClamped(t *testing.T) {
	db := Open(0.1)
	db.Put("k", make([]byte, 73)) // 1+73+24 = 98
	if db.Footprint() != db.LogicalBytes() {
		t.Fatal("spaceAmp below 1 must clamp to 1")
	}
}

func TestOpsCounters(t *testing.T) {
	db := Open(1)
	db.Put("a", nil)
	db.Get("a")
	db.Get("b")
	db.Delete("a")
	p, g, d := db.Ops()
	if p != 1 || g != 2 || d != 1 {
		t.Fatalf("ops = %d %d %d", p, g, d)
	}
}

func TestConcurrent(t *testing.T) {
	db := Open(1.5)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("g%d/k%d", g, i%10)
				db.Put(k, []byte{byte(i)})
				db.Get(k)
				if i%5 == 0 {
					db.Delete(k)
				}
			}
		}(g)
	}
	wg.Wait()
	// Each goroutine leaves keys i%10 in {6..9} plus any not deleted.
	if db.Len() == 0 {
		t.Fatal("expected surviving keys")
	}
}

func TestQuickShadowMap(t *testing.T) {
	db := Open(1)
	shadow := map[string]string{}
	f := func(op uint8, kRaw uint8, v string) bool {
		k := fmt.Sprintf("key%d", kRaw%20)
		switch op % 3 {
		case 0:
			db.Put(k, []byte(v))
			shadow[k] = v
		case 1:
			db.Delete(k)
			delete(shadow, k)
		case 2:
			got, ok := db.Get(k)
			want, wok := shadow[k]
			if ok != wok {
				return false
			}
			if ok && string(got) != want {
				return false
			}
		}
		return db.Len() == len(shadow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Package kvstore is a small ordered key-value store standing in for the
// RocksDB instance embedded in BlueStore. Besides Get/Put/Delete/Scan it
// tracks the quantities the write-amplification study needs: logical entry
// bytes, cumulative WAL bytes (every mutation is journaled), and an
// on-disk footprint that applies a configurable space-amplification factor
// representing LSM compaction overhead.
package kvstore

import (
	"errors"
	"sort"
	"strings"
	"sync"
)

// perEntryOverhead approximates per-record framing in the WAL and SSTs
// (sequence number, CRC, lengths).
const perEntryOverhead = 24

// DB is an ordered in-memory KV store with accounting.
type DB struct {
	mu sync.RWMutex

	data map[string][]byte

	// Copy-on-write fork state: base is the frozen parent's data map
	// (shared, read-only), baseDeleted tombstones base keys that this
	// fork deleted or shadowed with an overlay entry. Invariant:
	// data ∩ base ⊆ baseDeleted, so Scan can merge the two maps without
	// seeing a key twice. Nil base means a root store.
	base        map[string][]byte
	baseDeleted map[string]bool
	frozen      bool

	spaceAmp float64 // on-disk footprint multiplier, >= 1

	logicalBytes int64 // live keys+values
	walBytes     int64 // cumulative journaled bytes
	puts         int64
	deletes      int64
	gets         int64
}

// Open creates a store. spaceAmp < 1 is clamped to 1.
func Open(spaceAmp float64) *DB {
	if spaceAmp < 1 {
		spaceAmp = 1
	}
	return &DB{data: map[string][]byte{}, spaceAmp: spaceAmp}
}

// visibleLocked resolves a key through the overlay, then the
// untombstoned base. Callers must hold db.mu (read or write).
func (db *DB) visibleLocked(key string) ([]byte, bool) {
	if v, ok := db.data[key]; ok {
		return v, true
	}
	if db.base != nil && !db.baseDeleted[key] {
		if v, ok := db.base[key]; ok {
			return v, true
		}
	}
	return nil, false
}

// tombstoneLocked hides a base-resident key from future lookups.
// Callers must hold db.mu for writing.
func (db *DB) tombstoneLocked(key string) {
	if db.base == nil {
		return
	}
	if _, ok := db.base[key]; !ok {
		return
	}
	if db.baseDeleted == nil {
		db.baseDeleted = map[string]bool{}
	}
	db.baseDeleted[key] = true
}

func (db *DB) mutableLocked(op string) {
	if db.frozen {
		panic("kvstore: " + op + " on frozen store (snapshot parent)")
	}
}

// Put inserts or replaces a key.
func (db *DB) Put(key string, value []byte) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.mutableLocked("Put")
	entry := int64(len(key)+len(value)) + perEntryOverhead
	db.walBytes += entry
	if old, ok := db.visibleLocked(key); ok {
		db.logicalBytes -= int64(len(key)+len(old)) + perEntryOverhead
	}
	db.data[key] = append([]byte(nil), value...)
	db.tombstoneLocked(key)
	db.logicalBytes += entry
	db.puts++
}

// PutAccounted journals and accounts an entry of the given key and value
// lengths without materializing it. Bulk synthetic workloads store
// millions of onode records whose bytes nobody ever reads back; this
// keeps their WAL/logical/footprint arithmetic identical to Put at zero
// allocation. The entry is invisible to Get/Scan/Len, so callers must
// pair it with DeleteAccounted rather than Delete.
func (db *DB) PutAccounted(keyLen, valueLen int) {
	db.PutAccountedN(int64(keyLen), int64(valueLen), 1)
}

// PutAccountedN accounts n invisible entries totalling keyBytes of keys
// and valueBytes of values in one locked step.
func (db *DB) PutAccountedN(keyBytes, valueBytes, n int64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.mutableLocked("PutAccountedN")
	entry := keyBytes + valueBytes + n*perEntryOverhead
	db.walBytes += entry
	db.logicalBytes += entry
	db.puts += n
}

// DeleteAccounted reverses a PutAccounted entry, journaling the tombstone
// exactly as Delete would.
func (db *DB) DeleteAccounted(keyLen, valueLen int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.mutableLocked("DeleteAccounted")
	db.walBytes += int64(keyLen) + perEntryOverhead
	db.logicalBytes -= int64(keyLen+valueLen) + perEntryOverhead
	db.deletes++
}

// Get fetches a key, returning a copy.
func (db *DB) Get(key string) ([]byte, bool) {
	db.mu.Lock()
	db.gets++
	v, ok := db.visibleLocked(key)
	var out []byte
	if ok {
		out = append([]byte(nil), v...)
	}
	db.mu.Unlock()
	return out, ok
}

// Delete removes a key; the tombstone is journaled.
func (db *DB) Delete(key string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.mutableLocked("Delete")
	db.walBytes += int64(len(key)) + perEntryOverhead
	if old, ok := db.visibleLocked(key); ok {
		db.logicalBytes -= int64(len(key)+len(old)) + perEntryOverhead
		delete(db.data, key)
		db.tombstoneLocked(key)
	}
	db.deletes++
}

// Scan returns keys with the given prefix, sorted, calling fn for each.
// Returning false from fn stops the scan.
func (db *DB) Scan(prefix string, fn func(key string, value []byte) bool) {
	db.mu.RLock()
	keys := make([]string, 0, 16)
	for k := range db.data {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	// The overlay invariant guarantees base keys visible here are not
	// also in data, so the merge cannot duplicate.
	for k := range db.base {
		if strings.HasPrefix(k, prefix) && !db.baseDeleted[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	// Copy values under the lock, then release before the callbacks.
	vals := make([][]byte, len(keys))
	for i, k := range keys {
		v, _ := db.visibleLocked(k)
		vals[i] = append([]byte(nil), v...)
	}
	db.mu.RUnlock()
	for i, k := range keys {
		if !fn(k, vals[i]) {
			return
		}
	}
}

// Len returns the number of live keys.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := len(db.data)
	if db.base != nil {
		n += len(db.base) - len(db.baseDeleted)
	}
	return n
}

// LogicalBytes is the size of live entries (keys + values + framing).
func (db *DB) LogicalBytes() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.logicalBytes
}

// Footprint is the modeled on-disk size: live bytes times the LSM
// space-amplification factor.
func (db *DB) Footprint() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return int64(float64(db.logicalBytes) * db.spaceAmp)
}

// WALBytes is the cumulative journaled byte count (device write traffic).
func (db *DB) WALBytes() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.walBytes
}

// Ops reports operation counts (puts, gets, deletes).
func (db *DB) Ops() (puts, gets, deletes int64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.puts, db.gets, db.deletes
}

// Freeze makes the store immutable so it can serve as a shared
// copy-on-write base for forks. Mutations after Freeze panic (they
// would corrupt every fork); reads keep working. Idempotent.
func (db *DB) Freeze() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.frozen = true
}

// Fork returns a writable copy-on-write child of a frozen store. The
// child shares the parent's entries until it overwrites or deletes
// them, and starts from a copy of the parent's accounting so WAL and
// footprint deltas match a fresh store that replayed the same history.
// Only single-level forking is supported.
func (db *DB) Fork() (*DB, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if !db.frozen {
		return nil, errors.New("kvstore: Fork of unfrozen store")
	}
	if db.base != nil {
		return nil, errors.New("kvstore: Fork of forked store")
	}
	return &DB{
		data:         map[string][]byte{},
		base:         db.data,
		spaceAmp:     db.spaceAmp,
		logicalBytes: db.logicalBytes,
		walBytes:     db.walBytes,
		puts:         db.puts,
		deletes:      db.deletes,
		gets:         db.gets,
	}, nil
}

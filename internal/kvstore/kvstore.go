// Package kvstore is a small ordered key-value store standing in for the
// RocksDB instance embedded in BlueStore. Besides Get/Put/Delete/Scan it
// tracks the quantities the write-amplification study needs: logical entry
// bytes, cumulative WAL bytes (every mutation is journaled), and an
// on-disk footprint that applies a configurable space-amplification factor
// representing LSM compaction overhead.
package kvstore

import (
	"sort"
	"strings"
	"sync"
)

// perEntryOverhead approximates per-record framing in the WAL and SSTs
// (sequence number, CRC, lengths).
const perEntryOverhead = 24

// DB is an ordered in-memory KV store with accounting.
type DB struct {
	mu sync.RWMutex

	data map[string][]byte

	spaceAmp float64 // on-disk footprint multiplier, >= 1

	logicalBytes int64 // live keys+values
	walBytes     int64 // cumulative journaled bytes
	puts         int64
	deletes      int64
	gets         int64
}

// Open creates a store. spaceAmp < 1 is clamped to 1.
func Open(spaceAmp float64) *DB {
	if spaceAmp < 1 {
		spaceAmp = 1
	}
	return &DB{data: map[string][]byte{}, spaceAmp: spaceAmp}
}

// Put inserts or replaces a key.
func (db *DB) Put(key string, value []byte) {
	db.mu.Lock()
	defer db.mu.Unlock()
	entry := int64(len(key)+len(value)) + perEntryOverhead
	db.walBytes += entry
	if old, ok := db.data[key]; ok {
		db.logicalBytes -= int64(len(key)+len(old)) + perEntryOverhead
	}
	db.data[key] = append([]byte(nil), value...)
	db.logicalBytes += entry
	db.puts++
}

// PutAccounted journals and accounts an entry of the given key and value
// lengths without materializing it. Bulk synthetic workloads store
// millions of onode records whose bytes nobody ever reads back; this
// keeps their WAL/logical/footprint arithmetic identical to Put at zero
// allocation. The entry is invisible to Get/Scan/Len, so callers must
// pair it with DeleteAccounted rather than Delete.
func (db *DB) PutAccounted(keyLen, valueLen int) {
	db.PutAccountedN(int64(keyLen), int64(valueLen), 1)
}

// PutAccountedN accounts n invisible entries totalling keyBytes of keys
// and valueBytes of values in one locked step.
func (db *DB) PutAccountedN(keyBytes, valueBytes, n int64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	entry := keyBytes + valueBytes + n*perEntryOverhead
	db.walBytes += entry
	db.logicalBytes += entry
	db.puts += n
}

// DeleteAccounted reverses a PutAccounted entry, journaling the tombstone
// exactly as Delete would.
func (db *DB) DeleteAccounted(keyLen, valueLen int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.walBytes += int64(keyLen) + perEntryOverhead
	db.logicalBytes -= int64(keyLen+valueLen) + perEntryOverhead
	db.deletes++
}

// Get fetches a key, returning a copy.
func (db *DB) Get(key string) ([]byte, bool) {
	db.mu.Lock()
	db.gets++
	v, ok := db.data[key]
	var out []byte
	if ok {
		out = append([]byte(nil), v...)
	}
	db.mu.Unlock()
	return out, ok
}

// Delete removes a key; the tombstone is journaled.
func (db *DB) Delete(key string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.walBytes += int64(len(key)) + perEntryOverhead
	if old, ok := db.data[key]; ok {
		db.logicalBytes -= int64(len(key)+len(old)) + perEntryOverhead
		delete(db.data, key)
	}
	db.deletes++
}

// Scan returns keys with the given prefix, sorted, calling fn for each.
// Returning false from fn stops the scan.
func (db *DB) Scan(prefix string, fn func(key string, value []byte) bool) {
	db.mu.RLock()
	keys := make([]string, 0, 16)
	for k := range db.data {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	// Copy values under the lock, then release before the callbacks.
	vals := make([][]byte, len(keys))
	for i, k := range keys {
		vals[i] = append([]byte(nil), db.data[k]...)
	}
	db.mu.RUnlock()
	for i, k := range keys {
		if !fn(k, vals[i]) {
			return
		}
	}
}

// Len returns the number of live keys.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.data)
}

// LogicalBytes is the size of live entries (keys + values + framing).
func (db *DB) LogicalBytes() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.logicalBytes
}

// Footprint is the modeled on-disk size: live bytes times the LSM
// space-amplification factor.
func (db *DB) Footprint() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return int64(float64(db.logicalBytes) * db.spaceAmp)
}

// WALBytes is the cumulative journaled byte count (device write traffic).
func (db *DB) WALBytes() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.walBytes
}

// Ops reports operation counts (puts, gets, deletes).
func (db *DB) Ops() (puts, gets, deletes int64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.puts, db.gets, db.deletes
}

package msgbus

import (
	"errors"
	"fmt"
	"testing"
)

func TestCreateAndProduce(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("logs", 4); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateTopic("logs", 4); err == nil {
		t.Fatal("duplicate topic accepted")
	}
	if err := b.CreateTopic("bad", 0); err == nil {
		t.Fatal("zero partitions accepted")
	}
	p, off, err := b.Produce("logs", []byte("node1"), []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if off != 0 {
		t.Fatalf("first offset = %d", off)
	}
	if p < 0 || p >= 4 {
		t.Fatalf("partition = %d", p)
	}
	if _, _, err := b.Produce("nope", nil, nil); !errors.Is(err, ErrNoTopic) {
		t.Fatalf("got %v", err)
	}
}

func TestKeyStickiness(t *testing.T) {
	b := NewBroker()
	_ = b.CreateTopic("t", 8)
	first, _, _ := b.Produce("t", []byte("same-key"), []byte("a"))
	for i := 0; i < 10; i++ {
		p, _, _ := b.Produce("t", []byte("same-key"), []byte("b"))
		if p != first {
			t.Fatal("same key landed in different partitions")
		}
	}
}

func TestConsumeOrderAndBounds(t *testing.T) {
	b := NewBroker()
	_ = b.CreateTopic("t", 1)
	for i := 0; i < 5; i++ {
		_, _, _ = b.Produce("t", nil, []byte{byte(i)})
	}
	recs, err := b.Consume("t", 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Value[0] != 1 || recs[1].Value[0] != 2 {
		t.Fatalf("recs = %v", recs)
	}
	// Past the end: empty, no error.
	recs, err = b.Consume("t", 0, 99, 10)
	if err != nil || len(recs) != 0 {
		t.Fatalf("recs=%v err=%v", recs, err)
	}
	if _, err := b.Consume("t", 3, 0, 1); !errors.Is(err, ErrNoPartition) {
		t.Fatalf("got %v", err)
	}
}

func TestEndOffset(t *testing.T) {
	b := NewBroker()
	_ = b.CreateTopic("t", 1)
	if off, _ := b.EndOffset("t", 0); off != 0 {
		t.Fatalf("empty end = %d", off)
	}
	_, _, _ = b.Produce("t", nil, []byte("x"))
	if off, _ := b.EndOffset("t", 0); off != 1 {
		t.Fatalf("end = %d", off)
	}
}

func TestConsumerGroups(t *testing.T) {
	b := NewBroker()
	_ = b.CreateTopic("t", 1)
	for i := 0; i < 6; i++ {
		_, _, _ = b.Produce("t", nil, []byte{byte(i)})
	}
	// First poll gets 4, second gets the rest, third is empty.
	recs, _ := b.ConsumeGroup("g1", "t", 0, 4)
	if len(recs) != 4 || recs[0].Value[0] != 0 {
		t.Fatalf("poll1 = %v", recs)
	}
	recs, _ = b.ConsumeGroup("g1", "t", 0, 4)
	if len(recs) != 2 || recs[0].Value[0] != 4 {
		t.Fatalf("poll2 = %v", recs)
	}
	recs, _ = b.ConsumeGroup("g1", "t", 0, 4)
	if len(recs) != 0 {
		t.Fatalf("poll3 = %v", recs)
	}
	// A different group starts from zero.
	recs, _ = b.ConsumeGroup("g2", "t", 0, 100)
	if len(recs) != 6 {
		t.Fatalf("g2 = %v", recs)
	}
}

func TestRecordsAreCopies(t *testing.T) {
	b := NewBroker()
	_ = b.CreateTopic("t", 1)
	val := []byte("mutable")
	_, _, _ = b.Produce("t", nil, val)
	val[0] = 'X'
	recs, _ := b.Consume("t", 0, 0, 1)
	if recs[0].Value[0] != 'm' {
		t.Fatal("broker stored caller's buffer")
	}
	recs[0].Value[0] = 'Y'
	recs2, _ := b.Consume("t", 0, 0, 1)
	if recs2[0].Value[0] != 'm' {
		t.Fatal("consume leaked internal buffer")
	}
}

func TestManyPartitionsDistribute(t *testing.T) {
	b := NewBroker()
	_ = b.CreateTopic("t", 4)
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		p, _, _ := b.Produce("t", []byte(fmt.Sprintf("key%d", i)), nil)
		seen[p] = true
	}
	if len(seen) < 3 {
		t.Fatalf("keys hashed into only %d partitions", len(seen))
	}
}

// Package msgbus is a small publish/subscribe message broker standing in
// for the Kafka deployment ECFault uses to ship classified log entries
// from per-node Loggers to the Coordinator (§3.3). It supports topics with
// multiple partitions, key-based partitioning, offset-based consumption
// and per-group committed offsets.
package msgbus

import (
	"errors"
	"fmt"
	"sync"
)

// Errors.
var (
	ErrNoTopic     = errors.New("msgbus: no such topic")
	ErrNoPartition = errors.New("msgbus: no such partition")
)

// Record is one message in a partition log.
type Record struct {
	Offset int64
	Key    []byte
	Value  []byte
}

type partition struct {
	records []Record
}

type topic struct {
	partitions []*partition
}

// Broker holds topics and consumer-group offsets.
type Broker struct {
	mu      sync.RWMutex
	topics  map[string]*topic
	offsets map[string]int64 // group|topic|partition -> next offset
}

// NewBroker creates an empty broker.
func NewBroker() *Broker {
	return &Broker{topics: map[string]*topic{}, offsets: map[string]int64{}}
}

// CreateTopic registers a topic with the given partition count.
func (b *Broker) CreateTopic(name string, partitions int) error {
	if partitions < 1 {
		return fmt.Errorf("msgbus: topic %q needs at least one partition", name)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dup := b.topics[name]; dup {
		return fmt.Errorf("msgbus: topic %q exists", name)
	}
	t := &topic{partitions: make([]*partition, partitions)}
	for i := range t.partitions {
		t.partitions[i] = &partition{}
	}
	b.topics[name] = t
	return nil
}

// Partitions returns the partition count of a topic.
func (b *Broker) Partitions(name string) (int, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	t, ok := b.topics[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoTopic, name)
	}
	return len(t.partitions), nil
}

func keyHash(key []byte) uint64 {
	var h uint64 = 1469598103934665603
	for _, c := range key {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// Produce appends a record, choosing the partition by key hash (partition
// 0 for nil keys). It returns the partition and assigned offset.
func (b *Broker) Produce(topicName string, key, value []byte) (int, int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.topics[topicName]
	if !ok {
		return 0, 0, fmt.Errorf("%w: %q", ErrNoTopic, topicName)
	}
	p := 0
	if key != nil {
		p = int(keyHash(key) % uint64(len(t.partitions)))
	}
	part := t.partitions[p]
	off := int64(len(part.records))
	part.records = append(part.records, Record{
		Offset: off,
		Key:    append([]byte(nil), key...),
		Value:  append([]byte(nil), value...),
	})
	return p, off, nil
}

// Consume returns up to max records from a partition starting at offset.
func (b *Broker) Consume(topicName string, partition int, offset int64, max int) ([]Record, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	t, ok := b.topics[topicName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTopic, topicName)
	}
	if partition < 0 || partition >= len(t.partitions) {
		return nil, fmt.Errorf("%w: %d", ErrNoPartition, partition)
	}
	p := t.partitions[partition]
	if offset < 0 || offset >= int64(len(p.records)) {
		return nil, nil
	}
	end := offset + int64(max)
	if end > int64(len(p.records)) {
		end = int64(len(p.records))
	}
	out := make([]Record, end-offset)
	for i, r := range p.records[offset:end] {
		out[i] = Record{
			Offset: r.Offset,
			Key:    append([]byte(nil), r.Key...),
			Value:  append([]byte(nil), r.Value...),
		}
	}
	return out, nil
}

// EndOffset returns the next offset to be assigned in a partition.
func (b *Broker) EndOffset(topicName string, partition int) (int64, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	t, ok := b.topics[topicName]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoTopic, topicName)
	}
	if partition < 0 || partition >= len(t.partitions) {
		return 0, fmt.Errorf("%w: %d", ErrNoPartition, partition)
	}
	return int64(len(t.partitions[partition].records)), nil
}

func groupKey(group, topicName string, partition int) string {
	return fmt.Sprintf("%s|%s|%d", group, topicName, partition)
}

// Commit stores a consumer group's next offset for a partition.
func (b *Broker) Commit(group, topicName string, partition int, next int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.offsets[groupKey(group, topicName, partition)] = next
}

// Committed returns the group's next offset (0 if never committed).
func (b *Broker) Committed(group, topicName string, partition int) int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.offsets[groupKey(group, topicName, partition)]
}

// ConsumeGroup reads up to max records from a partition at the group's
// committed position and advances it.
func (b *Broker) ConsumeGroup(group, topicName string, partition, max int) ([]Record, error) {
	off := b.Committed(group, topicName, partition)
	recs, err := b.Consume(topicName, partition, off, max)
	if err != nil {
		return nil, err
	}
	if len(recs) > 0 {
		b.Commit(group, topicName, partition, recs[len(recs)-1].Offset+1)
	}
	return recs, nil
}

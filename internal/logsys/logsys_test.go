package logsys

import (
	"testing"
	"time"

	"repro/internal/msgbus"
)

func setup(t *testing.T) (*msgbus.Broker, *Classifier) {
	t.Helper()
	b := msgbus.NewBroker()
	if err := b.CreateTopic(Topic, 4); err != nil {
		t.Fatal(err)
	}
	return b, DefaultClassifier()
}

func TestClassify(t *testing.T) {
	c := DefaultClassifier()
	cases := []struct{ line, want string }{
		{"osd.3 start recovery I/O", CatRecovery},
		{"decoding stripe 17", CatDecoding},
		{"osd.5 marked down after grace", CatFailure},
		{"receiving heartbeats from osd.1", CatHeartbeat},
		{"collecting missing objects, queueing", CatPeering},
		{"iostat sample dev nvme0n1", CatIO},
		{"unrelated chatter", CatOther},
		// Priority: "recovery" beats "heartbeat" when both appear.
		{"heartbeat during recovery window", CatRecovery},
	}
	for _, tc := range cases {
		if got := c.Classify(tc.line); got != tc.want {
			t.Errorf("Classify(%q) = %s, want %s", tc.line, got, tc.want)
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	line := FormatLine(1500*time.Millisecond, "osd.7", "start recovery now")
	ts, node, msg, err := ParseLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if ts != 1500*time.Millisecond || node != "osd.7" || msg != "start recovery now" {
		t.Fatalf("parsed %v %q %q", ts, node, msg)
	}
	if _, _, _, err := ParseLine("garbage"); err == nil {
		t.Fatal("malformed line accepted")
	}
	if _, _, _, err := ParseLine("notanumber node msg"); err == nil {
		t.Fatal("bad timestamp accepted")
	}
}

func TestFlushShipsOnlyRelevant(t *testing.T) {
	b, cls := setup(t)
	l := NewNodeLogger("osd.1", cls, b)
	l.Log(time.Second, "start recovery")
	l.Log(2*time.Second, "totally irrelevant noise")
	l.Log(3*time.Second, "decoding chunk")
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if l.ShippedLines != 2 || l.DroppedLines != 1 {
		t.Fatalf("shipped=%d dropped=%d", l.ShippedLines, l.DroppedLines)
	}
	// Second flush ships nothing (buffer cleared).
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if l.ShippedLines != 2 {
		t.Fatal("flush re-shipped lines")
	}
}

func TestCollectorMergesAndSorts(t *testing.T) {
	b, cls := setup(t)
	l1 := NewNodeLogger("osd.1", cls, b)
	l2 := NewNodeLogger("mgr", cls, b)
	l1.Log(5*time.Second, "recovery completed")
	l2.Log(1*time.Second, "osd.1 failure detected")
	l2.Log(3*time.Second, "receiving heartbeats")
	_ = l1.Flush()
	_ = l2.Flush()

	col := NewCollector(b, "coord")
	n, err := col.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("collected %d", n)
	}
	es := col.Entries()
	if es[0].Time != time.Second || es[1].Time != 3*time.Second || es[2].Time != 5*time.Second {
		t.Fatalf("not time-sorted: %+v", es)
	}
	if es[0].Category != CatFailure || es[2].Category != CatRecovery {
		t.Fatalf("categories: %+v", es)
	}
}

func TestCollectorIncremental(t *testing.T) {
	b, cls := setup(t)
	l := NewNodeLogger("osd.1", cls, b)
	l.Log(time.Second, "failure on device")
	_ = l.Flush()
	col := NewCollector(b, "g")
	if n, _ := col.Collect(); n != 1 {
		t.Fatalf("first collect = %d", n)
	}
	l.Log(2*time.Second, "recovery started")
	_ = l.Flush()
	if n, _ := col.Collect(); n != 1 {
		t.Fatal("incremental collect wrong")
	}
	if len(col.Entries()) != 2 {
		t.Fatal("merged stream wrong length")
	}
}

func TestFirstLastDuration(t *testing.T) {
	b, cls := setup(t)
	l := NewNodeLogger("mgr", cls, b)
	l.Log(0, "osd.2 failure detected")
	l.Log(602*time.Second, "start recovery I/O")
	l.Log(1128*time.Second, "recovery completed")
	_ = l.Flush()
	col := NewCollector(b, "g")
	if _, err := col.Collect(); err != nil {
		t.Fatal(err)
	}
	first, ok := col.First(CatFailure, "")
	if !ok || first.Time != 0 {
		t.Fatalf("first failure: %+v ok=%v", first, ok)
	}
	last, ok := col.Last(CatRecovery, "completed")
	if !ok || last.Time != 1128*time.Second {
		t.Fatalf("last recovery: %+v", last)
	}
	d, ok := col.Duration(CatFailure, "", CatRecovery, "completed")
	if !ok || d != 1128*time.Second {
		t.Fatalf("duration = %v ok=%v", d, ok)
	}
	if _, ok := col.First("nope", ""); ok {
		t.Fatal("found entry for unknown category")
	}
}

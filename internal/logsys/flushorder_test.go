package logsys

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/msgbus"
	"repro/internal/simclock"
)

// The coordinator's timeline determinism rests on a three-part contract:
// per-node loggers buffer lines in production order, the coordinator
// flushes loggers in sorted node-name order (core/coordinator.go), and
// Collector.Collect stable-sorts by Time only. Pre-sort order is
// (partition index, then append order within the partition), and node
// names key the partitions, so colliding timestamps resolve to a fixed
// per-instant node pattern — a pure function of the node-name set, never
// of the order the simulation happened to produce the lines. This
// regression test pins that contract by producing colliding timestamps
// across nodes in adversarial (reversed, rotated) schedule order through
// a real Sim, on the serial engine and the time-partitioned parallel
// engine, and asserting the merged stream has the same tie pattern at
// every instant and is byte-identical across engines.

func runFlushOrder(t *testing.T, workers int) []Entry {
	t.Helper()
	sim := simclock.New()
	broker := msgbus.NewBroker()
	if err := broker.CreateTopic(Topic, 8); err != nil {
		t.Fatal(err)
	}
	cls := DefaultClassifier()
	nodes := []string{"host2", "host0", "host3", "host1"} // deliberately unsorted
	loggers := map[string]*NodeLogger{}
	for _, n := range nodes {
		loggers[n] = NewNodeLogger(n, cls, broker)
	}

	// Adversarial schedule: at every 100µs tick, each node logs one
	// recovery line, but the scheduling order rotates and reverses per
	// tick, so production order across nodes never matches name order.
	for tick := 0; tick < 16; tick++ {
		at := simclock.Time(tick) * 100 * time.Microsecond
		order := append([]string{}, nodes...)
		if tick%2 == 1 {
			for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
				order[i], order[j] = order[j], order[i]
			}
		}
		rot := tick % len(order)
		order = append(order[rot:], order[:rot]...)
		for i, n := range order {
			n, i := n, i
			sim.At(at, func() {
				loggers[n].Logf(sim.Now(), "recovery op %d", i)
				// A second same-instant line per node: per-node order
				// within one instant must also survive the merge.
				loggers[n].Logf(sim.Now(), "recovery op %d b", i)
			})
		}
	}
	if workers <= 1 {
		sim.Run()
	} else {
		sim.RunParallel(workers, 25*time.Microsecond)
	}

	// Flush in sorted node-name order, exactly as the coordinator does.
	names := make([]string, 0, len(loggers))
	for n := range loggers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := loggers[n].Flush(); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCollector(broker, "coordinator")
	if _, err := c.Collect(); err != nil {
		t.Fatal(err)
	}
	return c.Entries()
}

func TestFlushOrderBreaksTimestampTies(t *testing.T) {
	serial := runFlushOrder(t, 1)
	if len(serial) != 16*4*2 {
		t.Fatalf("merged %d entries, want %d", len(serial), 16*4*2)
	}

	// Every instant resolves its ties to the SAME node pattern: the tie
	// break depends only on the node-name set (partition keying + sorted
	// flush), so the adversarial per-tick production order must not leak
	// through. Each tick logged two lines per node, back to back.
	var pattern []string
	perInstant := map[simclock.Time][]string{}
	for i := 1; i < len(serial); i++ {
		if serial[i].Time < serial[i-1].Time {
			t.Fatalf("entry %d out of time order: %+v after %+v", i, serial[i], serial[i-1])
		}
	}
	for _, e := range serial {
		perInstant[e.Time] = append(perInstant[e.Time], e.Node)
	}
	for at, nodes := range perInstant {
		if pattern == nil {
			pattern = perInstant[at]
		}
		if len(nodes) != 8 {
			t.Fatalf("instant %v merged %d entries, want 8", at, len(nodes))
		}
		for i := 1; i < len(nodes); i += 2 {
			if nodes[i] != nodes[i-1] {
				t.Fatalf("instant %v: per-node line pair split: %v", at, nodes)
			}
		}
	}
	for at, nodes := range perInstant {
		for i := range nodes {
			if nodes[i] != pattern[i] {
				t.Fatalf("tie pattern differs across instants: %v at %v vs %v\n(production order leaked into the merge)",
					nodes, at, pattern)
			}
		}
	}
	// Per-node production order within an instant survives the merge.
	for i := 1; i < len(serial); i++ {
		prev, cur := serial[i-1], serial[i]
		if cur.Time == prev.Time && cur.Node == prev.Node {
			if fmt.Sprintf("%s b", prev.Message) != cur.Message {
				t.Fatalf("per-node order lost at %v: %q then %q", cur.Time, prev.Message, cur.Message)
			}
		}
	}

	// The parallel engine must reproduce the stream byte-for-byte.
	for _, workers := range []int{2, 4} {
		par := runFlushOrder(t, workers)
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d entries, serial %d", workers, len(par), len(serial))
		}
		for i := range serial {
			if serial[i] != par[i] {
				t.Fatalf("workers=%d: entry %d diverged\nserial   %+v\nparallel %+v",
					workers, i, serial[i], par[i])
			}
		}
	}
}

// Package logsys implements ECFault's Logger component (§3.3): per-node
// loggers parse raw log lines locally, classify entries by keyword, ship
// only the relevant ones to the Coordinator over the message bus, and the
// Coordinator merges them into a globally time-sorted stream for
// fine-grained analysis such as the recovery timeline of Figure 3.
package logsys

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/msgbus"
	"repro/internal/simclock"
)

// Topic is the bus topic classified entries are shipped on.
const Topic = "ecfault-logs"

// Entry is one classified log event.
type Entry struct {
	Time     simclock.Time
	Node     string
	Category string
	Message  string
}

// Classifier maps keywords to categories; lines matching no keyword are
// classified as "other" and not shipped.
type Classifier struct {
	keywords map[string]string // lowercase keyword -> category
}

// Categories used across the framework.
const (
	CatDecoding  = "decoding"
	CatFailure   = "failure"
	CatRecovery  = "recovery"
	CatHeartbeat = "heartbeat"
	CatPeering   = "peering"
	CatIO        = "io"
	CatOther     = "other"
)

// DefaultClassifier covers the keyword set the paper lists (decoding,
// failure, recovery, ...) plus the checking-period events of Figure 3.
func DefaultClassifier() *Classifier {
	return &Classifier{keywords: map[string]string{
		"decode":    CatDecoding,
		"decoding":  CatDecoding,
		"failure":   CatFailure,
		"failed":    CatFailure,
		"down":      CatFailure,
		"recovery":  CatRecovery,
		"recovered": CatRecovery,
		"backfill":  CatRecovery,
		"heartbeat": CatHeartbeat,
		"peering":   CatPeering,
		"missing":   CatPeering,
		"queueing":  CatPeering,
		"iostat":    CatIO,
		"read":      CatIO,
		"write":     CatIO,
	}}
}

// Classify returns the category of a log line.
func (c *Classifier) Classify(line string) string {
	lower := strings.ToLower(line)
	// Prefer more specific categories when several keywords match, in a
	// fixed priority order.
	priority := []string{CatRecovery, CatDecoding, CatFailure, CatPeering, CatHeartbeat, CatIO}
	matched := map[string]bool{}
	for kw, cat := range c.keywords {
		if strings.Contains(lower, kw) {
			matched[cat] = true
		}
	}
	for _, cat := range priority {
		if matched[cat] {
			return cat
		}
	}
	return CatOther
}

// FormatLine renders an entry as the raw on-node log format.
func FormatLine(t simclock.Time, node, msg string) string {
	return fmt.Sprintf("%d %s %s", int64(t), node, msg)
}

// ParseLine parses the raw on-node log format.
func ParseLine(line string) (simclock.Time, string, string, error) {
	parts := strings.SplitN(line, " ", 3)
	if len(parts) != 3 {
		return 0, "", "", fmt.Errorf("logsys: malformed line %q", line)
	}
	ns, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return 0, "", "", fmt.Errorf("logsys: bad timestamp in %q: %w", line, err)
	}
	return simclock.Time(ns), parts[1], parts[2], nil
}

// NodeLogger accumulates raw lines on one node and ships classified
// entries to the broker on Flush, mirroring the local parse-first design
// that reduces log network traffic.
type NodeLogger struct {
	node       string
	classifier *Classifier
	broker     *msgbus.Broker
	raw        []string

	// ShippedLines and DroppedLines count the traffic reduction.
	ShippedLines int
	DroppedLines int
}

// NewNodeLogger creates a logger for one node.
func NewNodeLogger(node string, classifier *Classifier, broker *msgbus.Broker) *NodeLogger {
	return &NodeLogger{node: node, classifier: classifier, broker: broker}
}

// Log records a raw line at the given simulated time.
func (l *NodeLogger) Log(t simclock.Time, msg string) {
	l.raw = append(l.raw, FormatLine(t, l.node, msg))
}

// Logf records a formatted raw line.
func (l *NodeLogger) Logf(t simclock.Time, format string, args ...any) {
	l.Log(t, fmt.Sprintf(format, args...))
}

// Flush classifies buffered lines and produces the relevant ones to the
// bus, keyed by node so one node's entries stay ordered in a partition.
func (l *NodeLogger) Flush() error {
	for _, line := range l.raw {
		_, _, msg, err := ParseLine(line)
		if err != nil {
			return err
		}
		cat := l.classifier.Classify(msg)
		if cat == CatOther {
			l.DroppedLines++
			continue
		}
		value := cat + "\x00" + line
		if _, _, err := l.broker.Produce(Topic, []byte(l.node), []byte(value)); err != nil {
			return err
		}
		l.ShippedLines++
	}
	l.raw = l.raw[:0]
	return nil
}

// Collector is the Coordinator-side consumer that merges entries from all
// partitions into one time-sorted stream.
type Collector struct {
	broker *msgbus.Broker
	group  string
	merged []Entry
}

// NewCollector creates a collector consuming as the given group.
func NewCollector(broker *msgbus.Broker, group string) *Collector {
	return &Collector{broker: broker, group: group}
}

// Collect drains all partitions and merges new entries into the sorted
// stream. It returns the number of new entries.
func (c *Collector) Collect() (int, error) {
	parts, err := c.broker.Partitions(Topic)
	if err != nil {
		return 0, err
	}
	added := 0
	for p := 0; p < parts; p++ {
		for {
			recs, err := c.broker.ConsumeGroup(c.group, Topic, p, 1024)
			if err != nil {
				return added, err
			}
			if len(recs) == 0 {
				break
			}
			for _, r := range recs {
				cat, line, ok := strings.Cut(string(r.Value), "\x00")
				if !ok {
					return added, fmt.Errorf("logsys: malformed bus record %q", r.Value)
				}
				ts, node, msg, err := ParseLine(line)
				if err != nil {
					return added, err
				}
				c.merged = append(c.merged, Entry{Time: ts, Node: node, Category: cat, Message: msg})
				added++
			}
		}
	}
	sort.SliceStable(c.merged, func(i, j int) bool { return c.merged[i].Time < c.merged[j].Time })
	return added, nil
}

// Entries returns the merged, time-sorted entries.
func (c *Collector) Entries() []Entry { return c.merged }

// First returns the earliest entry whose message contains substr
// (any category if cat == "").
func (c *Collector) First(cat, substr string) (Entry, bool) {
	for _, e := range c.merged {
		if cat != "" && e.Category != cat {
			continue
		}
		if substr != "" && !strings.Contains(e.Message, substr) {
			continue
		}
		return e, true
	}
	return Entry{}, false
}

// Last returns the latest matching entry.
func (c *Collector) Last(cat, substr string) (Entry, bool) {
	for i := len(c.merged) - 1; i >= 0; i-- {
		e := c.merged[i]
		if cat != "" && e.Category != cat {
			continue
		}
		if substr != "" && !strings.Contains(e.Message, substr) {
			continue
		}
		return e, true
	}
	return Entry{}, false
}

// Duration between the first match of (catA, subA) and the last match of
// (catB, subB); ok is false if either end is missing.
func (c *Collector) Duration(catA, subA, catB, subB string) (time.Duration, bool) {
	a, okA := c.First(catA, subA)
	b, okB := c.Last(catB, subB)
	if !okA || !okB || b.Time < a.Time {
		return 0, false
	}
	return b.Time - a.Time, true
}

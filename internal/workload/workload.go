// Package workload generates the client workloads the paper drives its
// experiments with — by default 10,000 writes of 64 MB objects (§4.1),
// scalable so smaller runs preserve the same shape.
package workload

import (
	"fmt"
	"math/rand"
)

// Object is one object write in the workload.
type Object struct {
	Name string
	Size int64
}

// Spec describes a workload.
type Spec struct {
	// NamePrefix prefixes generated object names.
	NamePrefix string
	// Count is the number of objects.
	Count int
	// ObjectSize is the per-object size in bytes.
	ObjectSize int64
	// SizeJitter, in [0,1), randomizes sizes uniformly within
	// ±SizeJitter*ObjectSize; 0 produces fixed-size objects.
	SizeJitter float64
	// Seed drives the jitter.
	Seed int64
}

// PaperDefault is the §4.1 workload: 10,000 x 64 MB object writes.
func PaperDefault() Spec {
	return Spec{NamePrefix: "obj", Count: 10000, ObjectSize: 64 << 20}
}

// Scaled returns the paper workload shrunk by the given factor (>= 1),
// keeping object size fixed and reducing the count, so per-object behaviour
// (padding, metadata) is preserved.
func Scaled(factor int) Spec {
	s := PaperDefault()
	if factor > 1 {
		s.Count /= factor
		if s.Count < 1 {
			s.Count = 1
		}
	}
	return s
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.Count <= 0 {
		return fmt.Errorf("workload: count must be positive, got %d", s.Count)
	}
	if s.ObjectSize <= 0 {
		return fmt.Errorf("workload: object size must be positive, got %d", s.ObjectSize)
	}
	if s.SizeJitter < 0 || s.SizeJitter >= 1 {
		return fmt.Errorf("workload: jitter must be in [0,1), got %f", s.SizeJitter)
	}
	return nil
}

// TotalBytes returns the workload's nominal write volume.
func (s Spec) TotalBytes() int64 { return int64(s.Count) * s.ObjectSize }

// Objects generates the object list deterministically.
func (s Spec) Objects() ([]Object, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	prefix := s.NamePrefix
	if prefix == "" {
		prefix = "obj"
	}
	out := make([]Object, s.Count)
	for i := range out {
		size := s.ObjectSize
		if s.SizeJitter > 0 {
			f := 1 + s.SizeJitter*(2*rng.Float64()-1)
			size = int64(float64(size) * f)
			if size < 1 {
				size = 1
			}
		}
		out[i] = Object{Name: fmt.Sprintf("%s-%07d", prefix, i), Size: size}
	}
	return out, nil
}

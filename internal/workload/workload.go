// Package workload generates the client workloads the paper drives its
// experiments with — by default 10,000 writes of 64 MB objects (§4.1),
// scalable so smaller runs preserve the same shape.
package workload

import (
	"fmt"
	"math/rand"
	"unsafe"
)

// Object is one object write in the workload.
type Object struct {
	Name string
	Size int64
}

// Spec describes a workload.
type Spec struct {
	// NamePrefix prefixes generated object names.
	NamePrefix string
	// Count is the number of objects.
	Count int
	// ObjectSize is the per-object size in bytes.
	ObjectSize int64
	// SizeJitter, in [0,1), randomizes sizes uniformly within
	// ±SizeJitter*ObjectSize; 0 produces fixed-size objects.
	SizeJitter float64
	// Seed drives the jitter.
	Seed int64
}

// PaperDefault is the §4.1 workload: 10,000 x 64 MB object writes.
func PaperDefault() Spec {
	return Spec{NamePrefix: "obj", Count: 10000, ObjectSize: 64 << 20}
}

// Scaled returns the paper workload shrunk by the given factor (>= 1),
// keeping object size fixed and reducing the count, so per-object behaviour
// (padding, metadata) is preserved.
func Scaled(factor int) Spec {
	s := PaperDefault()
	if factor > 1 {
		s.Count /= factor
		if s.Count < 1 {
			s.Count = 1
		}
	}
	return s
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.Count <= 0 {
		return fmt.Errorf("workload: count must be positive, got %d", s.Count)
	}
	if s.ObjectSize <= 0 {
		return fmt.Errorf("workload: object size must be positive, got %d", s.ObjectSize)
	}
	if s.SizeJitter < 0 || s.SizeJitter >= 1 {
		return fmt.Errorf("workload: jitter must be in [0,1), got %f", s.SizeJitter)
	}
	return nil
}

// TotalBytes returns the workload's nominal write volume.
func (s Spec) TotalBytes() int64 { return int64(s.Count) * s.ObjectSize }

// Objects generates the object list deterministically. The inner loop is
// allocation-free: every name ("<prefix>-<7 digits>", the width fmt used
// to produce) is a slice of one shared backing buffer filled up front,
// and the jitter RNG is only constructed when jitter is in play.
func (s Spec) Objects() ([]Object, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	prefix := s.NamePrefix
	if prefix == "" {
		prefix = "obj"
	}
	nameLen := len(prefix) + 1 + digitsFor(s.Count-1)
	names := make([]byte, s.Count*nameLen)
	out := make([]Object, s.Count)

	var rng *rand.Rand
	if s.SizeJitter > 0 {
		rng = rand.New(rand.NewSource(s.Seed))
	}
	for i := range out {
		base := i * nameLen
		copy(names[base:], prefix)
		names[base+len(prefix)] = '-'
		v := i
		for d := base + nameLen - 1; d > base+len(prefix); d-- {
			names[d] = byte('0' + v%10)
			v /= 10
		}
		size := s.ObjectSize
		if rng != nil {
			f := 1 + s.SizeJitter*(2*rng.Float64()-1)
			size = int64(float64(size) * f)
			if size < 1 {
				size = 1
			}
		}
		// The backing buffer is write-once, so exposing slices of it as
		// strings is safe.
		out[i] = Object{Name: unsafe.String(&names[base], nameLen), Size: size}
	}
	return out, nil
}

// digitsFor returns the digit count of max, at least the 7 the historical
// %07d name format always produced (names sort lexically either way).
func digitsFor(max int) int {
	n := 1
	for v := max; v >= 10; v /= 10 {
		n++
	}
	if n < 7 {
		n = 7
	}
	return n
}

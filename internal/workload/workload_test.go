package workload

import "testing"

func TestPaperDefault(t *testing.T) {
	s := PaperDefault()
	if s.Count != 10000 || s.ObjectSize != 64<<20 {
		t.Fatalf("spec = %+v", s)
	}
	if s.TotalBytes() != int64(10000)*(64<<20) {
		t.Fatal("total bytes wrong")
	}
}

func TestScaled(t *testing.T) {
	s := Scaled(100)
	if s.Count != 100 || s.ObjectSize != 64<<20 {
		t.Fatalf("scaled = %+v", s)
	}
	if Scaled(1_000_000).Count != 1 {
		t.Fatal("over-scaling should floor at 1")
	}
	if Scaled(0).Count != 10000 {
		t.Fatal("factor <= 1 should be identity")
	}
}

func TestValidate(t *testing.T) {
	bad := []Spec{
		{Count: 0, ObjectSize: 1},
		{Count: 1, ObjectSize: 0},
		{Count: 1, ObjectSize: 1, SizeJitter: 1.0},
		{Count: 1, ObjectSize: 1, SizeJitter: -0.1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, s)
		}
	}
}

func TestObjectsDeterministic(t *testing.T) {
	s := Spec{Count: 50, ObjectSize: 1000, SizeJitter: 0.5, Seed: 7}
	a, err := s.Objects()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := s.Objects()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestObjectsNamesUniqueAndSized(t *testing.T) {
	s := Spec{NamePrefix: "w", Count: 200, ObjectSize: 4096, SizeJitter: 0.25, Seed: 1}
	objs, err := s.Objects()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, o := range objs {
		if seen[o.Name] {
			t.Fatalf("duplicate name %s", o.Name)
		}
		seen[o.Name] = true
		if o.Size < 3072 || o.Size > 5120 {
			t.Fatalf("size %d outside jitter bounds", o.Size)
		}
	}
}

func TestFixedSizeWithoutJitter(t *testing.T) {
	s := Spec{Count: 10, ObjectSize: 777}
	objs, _ := s.Objects()
	for _, o := range objs {
		if o.Size != 777 {
			t.Fatal("jitterless sizes must be exact")
		}
	}
}

//go:build !amd64 || purego

package gf256

// Without the amd64 assembly (other architectures, or the purego build
// tag) the chain caps at the portable word kernels; the dispatch constants
// and ECFAULT_BACKEND handling are unchanged, so scalar can still be
// forced for reference runs.

// hwBackend returns the strongest backend this build supports.
func hwBackend() int32 { return backendWord }

// CPUFeatures reports no dispatch-relevant CPU features: the portable
// build never consults CPUID.
func CPUFeatures() []string { return nil }

// simdCompile is a no-op: there are no kernel constants to attach.
func simdCompile(rp *RowPlan) {}

// applySIMD is unreachable: currentBackend never exceeds backendWord here.
func (rp *RowPlan) applySIMD(srcs [][]byte, dst []byte, off, end int, overwrite bool, backend int32) {
	panic("gf256: SIMD backend selected without assembly support")
}

// stridedSIMD is unreachable for the same reason: ApplySegs and
// MulAddStrided only route here when the active backend is SIMD.
func (rp *RowPlan) stridedSIMD(srcs [][]byte, dst []byte, base int, delta []int32, segLen, segBytes, stride, count int, overwrite bool, backend int32) {
	panic("gf256: SIMD backend selected without assembly support")
}

// applyStridedSIMD reports that no strided SIMD kernel exists; ApplyStrided
// then walks per-segment windows on the word kernels.
func (rp *RowPlan) applyStridedSIMD(srcs [][]byte, dst []byte, dstBase, dstStride int, srcBase, srcStride []int, segn, count int, overwrite bool, backend int32) bool {
	return false
}

// simdMulAddSlice reports that no SIMD single-coefficient kernel exists.
func simdMulAddSlice(c byte, src, dst []byte, overwrite bool) bool { return false }

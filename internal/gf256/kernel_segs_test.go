package gf256

import (
	"bytes"
	"math/rand"
	"testing"
)

// refApplySegs is the oracle for the segment-batch entries: one scalar
// per-segment pass through the product tables, mirroring what a caller
// would get from issuing RowPlan.Apply once per segment.
func refApplySegs(coeffs []byte, srcs [][]byte, dst []byte, idx []int32, delta []int32, segLen int, overwrite bool) {
	for _, s := range idx {
		off := int(s) * segLen
		for i := 0; i < segLen; i++ {
			var acc byte
			for j, c := range coeffs {
				if c == 0 {
					continue
				}
				so := off + i
				if delta != nil {
					so += int(delta[j]) * segLen
				}
				acc ^= mulTable[c][srcs[j][so]]
			}
			if overwrite {
				dst[off+i] = acc
			} else {
				dst[off+i] ^= acc
			}
		}
	}
}

// segCase is one ApplySegs layout: an index pattern over a segment space,
// plus per-source deltas.
type segCase struct {
	name  string
	nSegs int     // segment-space size (buffers are nSegs*segLen+pad)
	idx   []int32 // destination segment indices, strictly increasing
	delta []int32 // per-source deltas (padded/truncated to the row width)
}

func segCases() []segCase {
	return []segCase{
		{"single", 4, []int32{2}, nil},
		{"contiguous", 8, []int32{1, 2, 3, 4, 5}, nil},
		{"uniform-stride", 27, []int32{0, 1, 2, 9, 10, 11, 18, 19, 20}, nil},
		{"uniform-stride-delta", 27, []int32{3, 4, 5, 12, 13, 14, 21, 22, 23}, []int32{-3, 0, 3, 0}},
		{"singletons", 16, []int32{0, 3, 6, 9, 12, 15}, nil},
		{"singletons-delta", 16, []int32{1, 4, 7, 10, 13}, []int32{1, -1, 0, 2}},
		{"ragged", 20, []int32{0, 1, 4, 5, 6, 11, 17, 18, 19}, nil},
		{"two-runs", 12, []int32{2, 3, 4, 8, 9, 10}, []int32{0, 1, 0, -2}},
		{"alternating", 10, []int32{0, 2, 4, 6, 8}, nil},
		{"all", 8, []int32{0, 1, 2, 3, 4, 5, 6, 7}, nil},
	}
}

// segLens crosses the word-kernel alignment cases (odd, sub-word), the
// SIMD tail cases (just under/over 32), Clay's typical 4 KiB sub-chunk
// (51), and run sizes straddling stridedMaxRun when multiplied out.
var segLens = []int{1, 3, 7, 8, 31, 32, 33, 51, 64, 200, 513}

func buildSegOperands(rng *rand.Rand, width, nSegs, segLen int) (coeffs []byte, srcs [][]byte, dst []byte) {
	// Leave slack on both sides so negative and positive deltas stay in
	// bounds: sources get 4 segments of margin at each end, reached by
	// slicing into the middle of a larger allocation.
	const margin = 4
	coeffs = make([]byte, width)
	for j := range coeffs {
		coeffs[j] = byte(rng.Intn(256))
	}
	coeffs[rng.Intn(width)] = 0 // always exercise a nil source slot
	srcs = make([][]byte, width)
	for j := range srcs {
		if coeffs[j] == 0 {
			continue
		}
		full := make([]byte, (nSegs+2*margin)*segLen)
		rng.Read(full)
		srcs[j] = full[margin*segLen : (margin+nSegs)*segLen]
	}
	dst = make([]byte, nSegs*segLen)
	rng.Read(dst)
	return coeffs, srcs, dst
}

func TestApplySegsMatchesPerSegment(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range segCases() {
		for _, segLen := range segLens {
			const width = 4
			coeffs, srcs, dst := buildSegOperands(rng, width, tc.nSegs, segLen)
			var delta []int32
			if tc.delta != nil {
				delta = append([]int32(nil), tc.delta[:width]...)
			}
			for _, overwrite := range []bool{false, true} {
				want := append([]byte(nil), dst...)
				refApplySegs(coeffs, srcs, want, tc.idx, delta, segLen, overwrite)
				rp := CompileRow(coeffs)
				eachBackend(t, func(t *testing.T) {
					got := append([]byte(nil), dst...)
					rp.ApplySegs(srcs, got, tc.idx, delta, segLen, overwrite)
					if !bytes.Equal(got, want) {
						t.Fatalf("ApplySegs mismatch: case=%s segLen=%d overwrite=%v backend=%s",
							tc.name, segLen, overwrite, Backend())
					}
				})
			}
		}
	}
}

// TestApplySegsAlignments re-runs a strided layout with the destination and
// sources sliced at every offset 0-7 from an allocation boundary, so the
// word kernels' alignment branches and the SIMD unaligned loads all see
// shifted operands.
func TestApplySegsAlignments(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	idx := []int32{2, 3, 11, 12, 20, 21}
	delta := []int32{0, 2, -2}
	const nSegs, width = 27, 3
	for _, segLen := range []int{16, 51, 33} {
		for align := 0; align < 8; align++ {
			coeffs := []byte{0x1d, 0x02, 0x8e}
			srcs := make([][]byte, width)
			for j := range srcs {
				full := make([]byte, (nSegs+8)*segLen+8)
				rng.Read(full)
				srcs[j] = full[align+4*segLen : align+4*segLen+nSegs*segLen]
			}
			full := make([]byte, nSegs*segLen+8)
			rng.Read(full)
			dst := full[align : align+nSegs*segLen]
			want := append([]byte(nil), dst...)
			refApplySegs(coeffs, srcs, want, idx, delta, segLen, false)
			rp := CompileRow(coeffs)
			eachBackend(t, func(t *testing.T) {
				got := append([]byte(nil), dst...)
				rp.ApplySegs(srcs, got, idx, delta, segLen, false)
				if !bytes.Equal(got, want) {
					t.Fatalf("alignment mismatch: segLen=%d align=%d backend=%s", segLen, align, Backend())
				}
			})
		}
	}
}

func TestMulAddStrided(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	coeffs := []byte{0x03, 0x00, 0xfe, 0x35}
	rp := CompileRow(coeffs)
	for _, segLen := range segLens {
		for _, layout := range []struct{ base, strideMul, count int }{
			{0, 1, 5},  // contiguous
			{0, 3, 4},  // strided from origin
			{2, 2, 7},  // strided with base offset
			{1, 5, 1},  // single segment
			{0, 2, 40}, // many segments
			{3, 30, 3}, // sparse
		} {
			stride := layout.strideMul * segLen
			extent := layout.base + (layout.count-1)*stride + segLen
			srcs := make([][]byte, len(coeffs))
			for j, c := range coeffs {
				if c == 0 {
					continue
				}
				srcs[j] = make([]byte, extent)
				rng.Read(srcs[j])
			}
			dst := make([]byte, extent)
			rng.Read(dst)
			want := append([]byte(nil), dst...)
			for s := 0; s < layout.count; s++ {
				off := layout.base + s*stride
				for i := 0; i < segLen; i++ {
					var acc byte
					for j, c := range coeffs {
						if c == 0 {
							continue
						}
						acc ^= mulTable[c][srcs[j][off+i]]
					}
					want[off+i] ^= acc
				}
			}
			eachBackend(t, func(t *testing.T) {
				got := append([]byte(nil), dst...)
				rp.MulAddStrided(srcs, got, layout.base, segLen, stride, layout.count)
				if !bytes.Equal(got, want) {
					t.Fatalf("MulAddStrided mismatch: segLen=%d stride=%d count=%d backend=%s",
						segLen, stride, layout.count, Backend())
				}
			})
		}
	}
}

func TestApplySegsZeroRow(t *testing.T) {
	coeffs := []byte{0, 0, 0}
	rp := CompileRow(coeffs)
	srcs := make([][]byte, 3)
	dst := bytes.Repeat([]byte{0xaa}, 40)
	idx := []int32{1, 3}
	rp.ApplySegs(srcs, dst, idx, nil, 10, false)
	if !bytes.Equal(dst, bytes.Repeat([]byte{0xaa}, 40)) {
		t.Fatal("accumulate with zero row modified dst")
	}
	rp.ApplySegs(srcs, dst, idx, nil, 10, true)
	for i, b := range dst {
		seg := i / 10
		if seg == 1 || seg == 3 {
			if b != 0 {
				t.Fatalf("overwrite with zero row left byte %d = %#x", i, b)
			}
		} else if b != 0xaa {
			t.Fatalf("overwrite with zero row touched untargeted byte %d", i)
		}
	}
}

// FuzzApplySegs drives random index sets, deltas, widths, and segment
// lengths through every backend against the scalar oracle.
func FuzzApplySegs(f *testing.F) {
	f.Add(int64(1), 8, 51, false)
	f.Add(int64(2), 27, 32, true)
	f.Add(int64(3), 16, 1, false)
	f.Add(int64(4), 40, 33, true)
	f.Fuzz(func(t *testing.T, seed int64, nSegs, segLen int, overwrite bool) {
		const margin = 3
		if nSegs < 2*margin+1 || nSegs > 64 || segLen < 1 || segLen > 600 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		width := 1 + rng.Intn(6)
		coeffs := make([]byte, width)
		for j := range coeffs {
			coeffs[j] = byte(rng.Intn(256))
		}
		// Keep idx inside [margin, nSegs-margin) so every idx+delta stays a
		// valid segment of the shared segment space.
		var idx []int32
		for s := margin; s < nSegs-margin; s++ {
			if rng.Intn(2) == 0 {
				idx = append(idx, int32(s))
			}
		}
		if len(idx) == 0 {
			idx = []int32{int32(margin + rng.Intn(nSegs-2*margin))}
		}
		delta := make([]int32, width)
		for j := range delta {
			delta[j] = int32(rng.Intn(2*margin+1) - margin)
		}
		srcs := make([][]byte, width)
		for j, c := range coeffs {
			if c == 0 {
				continue
			}
			srcs[j] = make([]byte, nSegs*segLen)
			rng.Read(srcs[j])
		}
		dst := make([]byte, nSegs*segLen)
		rng.Read(dst)
		want := append([]byte(nil), dst...)
		refApplySegs(coeffs, srcs, want, idx, delta, segLen, overwrite)
		rp := CompileRow(coeffs)
		eachBackend(t, func(t *testing.T) {
			got := append([]byte(nil), dst...)
			rp.ApplySegs(srcs, got, idx, delta, segLen, overwrite)
			if !bytes.Equal(got, want) {
				t.Fatalf("ApplySegs fuzz mismatch: backend=%s width=%d segLen=%d idx=%v delta=%v",
					Backend(), width, segLen, idx, delta)
			}
		})
	})
}

package gf256

import (
	"fmt"
	"testing"
)

// BenchmarkMulAddSliceSizes compares the word kernel on the
// single-coefficient path (one source into one destination).
func BenchmarkMulAddSliceSizes(b *testing.B) {
	for _, size := range []int{4 << 10, 64 << 10, 1 << 20} {
		src := make([]byte, size)
		dst := make([]byte, size)
		for i := range src {
			src[i] = byte(i)
		}
		b.Run(fmt.Sprintf("%dKiB", size>>10), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				MulAddSlice(0x53, src, dst)
			}
		})
	}
}

// BenchmarkMulAddRow measures the fused row kernel at the RS(12,9) shape:
// nine sources accumulated into one destination.
func BenchmarkMulAddRow(b *testing.B) {
	coeffs := make([]byte, 9)
	for j := range coeffs {
		coeffs[j] = byte(2 + j*17)
	}
	for _, size := range []int{4 << 10, 64 << 10, 1 << 20} {
		srcs := make([][]byte, len(coeffs))
		for j := range srcs {
			srcs[j] = make([]byte, size)
			for i := range srcs[j] {
				srcs[j][i] = byte(i * (j + 3))
			}
		}
		dst := make([]byte, size)
		b.Run(fmt.Sprintf("%dKiB", size>>10), func(b *testing.B) {
			b.SetBytes(int64(size * len(coeffs)))
			for i := 0; i < b.N; i++ {
				MulAddRow(coeffs, srcs, dst)
			}
		})
	}
}

package gf256

import "sync"

// Segment-batched row kernels.
//
// Sub-packetized codes (Clay) apply the same short coefficient row to many
// small slices at regular offsets: one sub-chunk per plane, with the same
// coupling coefficients in every plane. Issuing one RowPlan.Apply per
// sub-chunk leaves each call too small to amortize the SIMD kernels — at
// ~50 B segments the pointer setup, the overlap-tail fixup, and the call
// itself cost more than the arithmetic. The entries here batch a whole
// same-coefficient segment set into as few kernel invocations as possible:
//
//   - Adjacent segments coalesce into contiguous runs, each run handled by
//     one ordinary Apply pass (runs of b planes pay one call, not b).
//   - Uniformly strided runs below stridedMaxRun bytes go to a dedicated
//     strided assembly kernel (one call walks every segment, masked-store
//     tails included), so even stride-q plane sets stay fully vectorized.
//   - Runs shorter than one vector are gathered into a pooled scratch
//     arena, transformed contiguously at full SIMD width, and scattered
//     back — converting what would be per-byte scalar tails into one
//     vector pass at the cost of extra memmoves.
//
// Segment offsets are expressed in segment-index units (Clay plane
// numbers), with an optional per-source index delta (the coupling
// companion's plane shift). Every path computes the same elementwise
// GF(2^8) arithmetic, so results are byte-identical to per-segment Apply
// calls; the conformance suite enforces that across backends.

// stridedMaxRun is the run size (bytes) above which per-run Apply calls
// beat the strided kernel: long runs amortize their own call overhead and
// the contiguous kernels use wider strips. The zmm kernel runs the same
// strip widths as its contiguous counterpart with masked tails, so its cap
// sits at 4 KiB (stridedMaxRun512).
const (
	stridedMaxRun    = 1024
	stridedMaxRun512 = 4096
)

// stridedRunCap returns the strided-kernel run cap for a backend tier.
func stridedRunCap(b int32) int {
	if b >= backendGFNI512 {
		return stridedMaxRun512
	}
	return stridedMaxRun
}

// stridedMinRun returns the smallest run the tier's strided kernel takes:
// the ymm kernels need a full vector per segment, the zmm kernel's
// K-masked tails handle any size.
func stridedMinRun(b int32) int {
	if b >= backendGFNI512 {
		return 1
	}
	return 32
}

// segRun is a coalesced run of consecutive segments: segment indices
// [start, start+n).
type segRun struct{ start, n int32 }

// segArena pools gather/scatter scratch for the sub-vector segment path.
var segArena = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

func arenaGet(n int) *[]byte {
	bp := segArena.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

// MulAddSegs is ApplySegs with accumulate semantics, the batched analogue
// of MulAdd: for every segment index s in idx,
//
//	dst[s*segLen+i] ^= Σ_j coeffs[j] * srcs[j][(s+delta[j])*segLen+i]
//
// over i in [0, segLen). delta may be nil (all zero); sources under zero
// coefficients may be nil and their delta is ignored.
func (rp *RowPlan) MulAddSegs(srcs [][]byte, dst []byte, idx []int32, delta []int32, segLen int) {
	rp.ApplySegs(srcs, dst, idx, delta, segLen, false)
}

// MulSegs is ApplySegs with overwrite semantics.
func (rp *RowPlan) MulSegs(srcs [][]byte, dst []byte, idx []int32, delta []int32, segLen int) {
	rp.ApplySegs(srcs, dst, idx, delta, segLen, true)
}

// ApplySegs applies the plan to a batch of equal-length segments. Segment
// index s covers dst[s*segLen : (s+1)*segLen]; source j reads its bytes
// from segment index s+delta[j] of srcs[j]. idx lists the destination
// segment indices in strictly increasing order. The result is
// byte-identical to one Apply per segment; batching only changes how the
// work is grouped into kernel calls.
func (rp *RowPlan) ApplySegs(srcs [][]byte, dst []byte, idx []int32, delta []int32, segLen int, overwrite bool) {
	if len(srcs) != len(rp.coeffs) {
		panic("gf256: RowPlan source count mismatch")
	}
	if delta != nil && len(delta) != len(srcs) {
		panic("gf256: RowPlan delta count mismatch")
	}
	if len(idx) == 0 || segLen <= 0 {
		return
	}
	if rp.maxBit < 0 { // zero row
		if overwrite {
			for _, s := range idx {
				clear(dst[int(s)*segLen : (int(s)+1)*segLen])
			}
		}
		return
	}

	// Coalesce consecutive segment indices into runs, tracking whether
	// the runs form a uniform strided layout on the way.
	var runBuf [48]segRun
	runs := runBuf[:0]
	uniform := true
	for i := 0; i < len(idx); {
		j := i + 1
		for j < len(idx) && idx[j] == idx[j-1]+1 {
			j++
		}
		runs = append(runs, segRun{start: idx[i], n: int32(j - i)})
		if nr := len(runs); nr > 1 {
			if runs[nr-1].n != runs[0].n {
				uniform = false
			} else if nr > 2 && runs[nr-1].start-runs[nr-2].start != runs[1].start-runs[0].start {
				uniform = false
			}
		}
		i = j
	}

	if len(runs) == 1 {
		rp.applyWindow(srcs, dst, int(runs[0].start)*segLen, delta, segLen, int(runs[0].n)*segLen, overwrite)
		return
	}
	if b := currentBackend(); b >= backendAVX2 {
		rb := int(runs[0].n) * segLen
		if uniform && rb >= stridedMinRun(b) && rb < stridedRunCap(b) {
			stride := int(runs[1].start-runs[0].start) * segLen
			rp.stridedSIMD(srcs, dst, int(runs[0].start)*segLen, delta, segLen, rb, stride, len(runs), overwrite, b)
			return
		}
		maxRun := int32(0)
		for _, r := range runs {
			if r.n > maxRun {
				maxRun = r.n
			}
		}
		// The ymm tiers gather sub-vector runs into the arena; the zmm
		// kernel's masked tails make per-run windows cheaper than the
		// gather's three memcpy passes at any run size.
		if int(maxRun)*segLen < 32 && b < backendGFNI512 {
			rp.applyGather(srcs, dst, runs, delta, segLen, overwrite)
			return
		}
	}
	for _, r := range runs {
		rp.applyWindow(srcs, dst, int(r.start)*segLen, delta, segLen, int(r.n)*segLen, overwrite)
	}
}

// MulAddStrided accumulates the row across count segments of segLen bytes
// placed stride bytes apart: for s in [0, count),
//
//	dst[base+s*stride+i] ^= Σ_j coeffs[j] * srcs[j][base+s*stride+i]
//
// with base, stride and segLen in bytes and stride >= segLen. It is the
// uniform-layout entry for callers that know their segment geometry
// directly instead of holding an index list.
func (rp *RowPlan) MulAddStrided(srcs [][]byte, dst []byte, base, segLen, stride, count int) {
	if len(srcs) != len(rp.coeffs) {
		panic("gf256: RowPlan source count mismatch")
	}
	if segLen <= 0 || count <= 0 || rp.maxBit < 0 {
		return
	}
	if stride < segLen {
		panic("gf256: strided segments overlap")
	}
	if stride == segLen { // contiguous
		rp.applyWindow(srcs, dst, base, nil, segLen, segLen*count, false)
		return
	}
	if b := currentBackend(); b >= backendAVX2 && count > 1 && segLen >= stridedMinRun(b) && segLen < stridedRunCap(b) {
		rp.stridedSIMD(srcs, dst, base, nil, segLen, segLen, stride, count, false, b)
		return
	}
	for s := 0; s < count; s++ {
		rp.applyWindow(srcs, dst, base+s*stride, nil, segLen, segLen, false)
	}
}

// ApplyStrided applies the plan to count segments of segn bytes where
// every operand carries its own base offset and stride: for s in
// [0, count) and i in [0, segn),
//
//	dst[dstBase+s*dstStride+i] (^)= Σ_j coeffs[j] * srcs[j][srcBase[j]+s*srcStride[j]+i]
//
// A source stride of 0 re-reads the same window for every segment (virtual
// zero shards); destination segments must not overlap (dstStride >= segn),
// and no source window may alias the destination. This is the fully
// general layout entry: Clay's zero-copy repair uses it to combine
// shard-space operands (plane-run strides) with compact scratch (run-width
// strides) in single calls. The zmm strided kernel consumes the geometry
// directly; the ymm tiers fall back to a lockstep strided call when all
// strides agree, and every other case walks per-segment windows — all
// byte-identical.
func (rp *RowPlan) ApplyStrided(srcs [][]byte, dst []byte, dstBase, dstStride int, srcBase, srcStride []int, segn, count int, overwrite bool) {
	if len(srcs) != len(rp.coeffs) {
		panic("gf256: RowPlan source count mismatch")
	}
	if len(srcBase) != len(srcs) || len(srcStride) != len(srcs) {
		panic("gf256: RowPlan stride geometry mismatch")
	}
	if segn <= 0 || count <= 0 {
		return
	}
	if count > 1 && dstStride < segn {
		panic("gf256: strided segments overlap")
	}
	for _, j := range rp.nzSrc {
		if srcStride[j] < 0 {
			panic("gf256: negative source stride")
		}
	}
	if rp.maxBit < 0 { // zero row
		if overwrite {
			for s := 0; s < count; s++ {
				off := dstBase + s*dstStride
				clear(dst[off : off+segn])
			}
		}
		return
	}
	if count == 1 {
		rp.applyWindowAt(srcs, dst, dstBase, srcBase, segn, overwrite)
		return
	}
	if b := currentBackend(); b >= backendAVX2 &&
		rp.applyStridedSIMD(srcs, dst, dstBase, dstStride, srcBase, srcStride, segn, count, overwrite, b) {
		return
	}
	var offBuf [16]int
	var offs []int
	if len(srcs) <= len(offBuf) {
		offs = offBuf[:len(srcs)]
	} else {
		offs = make([]int, len(srcs))
	}
	for s := 0; s < count; s++ {
		for _, j := range rp.nzSrc {
			offs[j] = srcBase[j] + s*srcStride[j]
		}
		rp.applyWindowAt(srcs, dst, dstBase+s*dstStride, offs, segn, overwrite)
	}
}

// applyWindowAt runs Apply over one n-byte window with per-source absolute
// byte offsets (applyWindow's generalization from shared segment-index
// deltas to arbitrary operand bases).
func (rp *RowPlan) applyWindowAt(srcs [][]byte, dst []byte, dstOff int, srcOff []int, n int, overwrite bool) {
	var winBuf [16][]byte
	var wins [][]byte
	if len(srcs) <= len(winBuf) {
		wins = winBuf[:len(srcs)]
	} else {
		wins = make([][]byte, len(srcs))
	}
	for _, j := range rp.nzSrc {
		so := srcOff[j]
		wins[j] = srcs[j][so : so+n : so+n]
	}
	rp.Apply(wins, dst[dstOff:dstOff+n:dstOff+n], 0, n, overwrite)
}

// applyWindow runs Apply over one contiguous run of n bytes: the
// destination window starts at byte offset off, and source j's window at
// off + delta[j]*segLen. Building explicit window slices (rather than
// passing off/end through Apply) is what lets sources sit at shifted,
// possibly negative, segment deltas.
func (rp *RowPlan) applyWindow(srcs [][]byte, dst []byte, off int, delta []int32, segLen, n int, overwrite bool) {
	var winBuf [16][]byte
	var wins [][]byte
	if len(srcs) <= len(winBuf) {
		wins = winBuf[:len(srcs)]
	} else {
		wins = make([][]byte, len(srcs))
	}
	for _, j := range rp.nzSrc {
		so := off
		if delta != nil {
			so += int(delta[j]) * segLen
		}
		wins[j] = srcs[j][so : so+n : so+n]
	}
	rp.Apply(wins, dst[off:off+n:off+n], 0, n, overwrite)
}

// applyGather handles batches whose runs are all shorter than one vector:
// gather every non-zero source's segments into a contiguous arena, run the
// row once at full width, scatter the result back to the destination
// segments.
func (rp *RowPlan) applyGather(srcs [][]byte, dst []byte, runs []segRun, delta []int32, segLen int, overwrite bool) {
	total := 0
	for _, r := range runs {
		total += int(r.n) * segLen
	}
	nnz := len(rp.nzSrc)
	bp := arenaGet((nnz + 1) * total)
	defer segArena.Put(bp)
	scratch := *bp

	var gatherBuf [16][]byte
	var gsrcs [][]byte
	if len(srcs) <= len(gatherBuf) {
		gsrcs = gatherBuf[:len(srcs)]
	} else {
		gsrcs = make([][]byte, len(srcs))
	}
	for i := range gsrcs {
		gsrcs[i] = nil
	}
	for i, j := range rp.nzSrc {
		buf := scratch[i*total : (i+1)*total]
		d := 0
		if delta != nil {
			d = int(delta[j]) * segLen
		}
		cur := 0
		for _, r := range runs {
			rb := int(r.n) * segLen
			so := int(r.start)*segLen + d
			copy(buf[cur:cur+rb], srcs[j][so:so+rb])
			cur += rb
		}
		gsrcs[j] = buf
	}
	res := scratch[nnz*total : (nnz+1)*total]
	rp.Apply(gsrcs, res, 0, total, true)
	cur := 0
	for _, r := range runs {
		rb := int(r.n) * segLen
		off := int(r.start) * segLen
		if overwrite {
			copy(dst[off:off+rb], res[cur:cur+rb])
		} else {
			XorSlice(res[cur:cur+rb], dst[off:off+rb])
		}
		cur += rb
	}
}

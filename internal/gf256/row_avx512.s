//go:build amd64 && !purego

#include "textflag.h"

// AVX-512 GFNI row kernel: dst[i] (^)= XOR_j affine(mats[j], srcs[j][i])
// over [0, n) for any n >= 1. Full 64-byte strips run unrolled two at a
// time in zmm registers; the final partial strip (n % 64 bytes) is
// finished with K-masked loads and a masked store, so no overlap window or
// scalar tail exists at any length. Masked-off source bytes load as zero,
// and affine(M, 0) == 0, so they contribute nothing to the accumulator.
//
// Register plan:
//	R8  affine matrix array base
//	R9  source pointer array base
//	R10 source count
//	DI  destination base
//	DX  total bytes
//	R13 bytes covered by full 64-byte strips (DX &^ 63)
//	R14 xor flag (0 = overwrite, else accumulate)
//	R12 strip offset, CX source index, SI current source pointer
//	K1  tail byte mask: (1 << (DX & 63)) - 1
//	Z0/Z1 accumulators, Z2 broadcast matrix, Z3/Z4 source data

// func gfni512RowAsm(mats *uint64, srcs **byte, nsrc int, dst *byte, n int, xor int)
TEXT ·gfni512RowAsm(SB), NOSPLIT, $0-48
	MOVQ mats+0(FP), R8
	MOVQ srcs+8(FP), R9
	MOVQ nsrc+16(FP), R10
	MOVQ dst+24(FP), DI
	MOVQ n+32(FP), DX
	MOVQ xor+40(FP), R14

	MOVQ  DX, CX
	ANDQ  $63, CX
	MOVQ  $1, AX
	SHLQ  CX, AX
	DECQ  AX
	KMOVQ AX, K1         // (1<<(n%64))-1: byte mask of the final partial strip
	MOVQ  DX, R13
	ANDQ  $-64, R13      // bytes covered by full strips
	XORQ  R12, R12

r512Strip128:
	LEAQ 128(R12), AX
	CMPQ AX, R13
	JGT  r512Strip64
	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	XORQ   CX, CX

r512Src128:
	MOVQ (R9)(CX*8), SI
	VBROADCASTSD (R8)(CX*8), Z2
	VMOVDQU64 (SI)(R12*1), Z3
	VMOVDQU64 64(SI)(R12*1), Z4
	VGF2P8AFFINEQB $0, Z2, Z3, Z3
	VGF2P8AFFINEQB $0, Z2, Z4, Z4
	VPXORQ Z3, Z0, Z0
	VPXORQ Z4, Z1, Z1
	INCQ CX
	CMPQ CX, R10
	JLT  r512Src128

	TESTQ R14, R14
	JZ    r512Store128
	VPXORQ (DI)(R12*1), Z0, Z0
	VPXORQ 64(DI)(R12*1), Z1, Z1

r512Store128:
	VMOVDQU64 Z0, (DI)(R12*1)
	VMOVDQU64 Z1, 64(DI)(R12*1)
	ADDQ $128, R12
	JMP  r512Strip128

r512Strip64:
	CMPQ R12, R13
	JGE  r512Tail
	VPXORQ Z0, Z0, Z0
	XORQ   CX, CX

r512Src64:
	MOVQ (R9)(CX*8), SI
	VBROADCASTSD (R8)(CX*8), Z2
	VMOVDQU64 (SI)(R12*1), Z3
	VGF2P8AFFINEQB $0, Z2, Z3, Z3
	VPXORQ Z3, Z0, Z0
	INCQ CX
	CMPQ CX, R10
	JLT  r512Src64

	TESTQ R14, R14
	JZ    r512Store64
	VPXORQ (DI)(R12*1), Z0, Z0

r512Store64:
	VMOVDQU64 Z0, (DI)(R12*1)
	ADDQ $64, R12

r512Tail:
	CMPQ R12, DX
	JGE  r512Done
	VPXORQ Z0, Z0, Z0
	XORQ   CX, CX

r512SrcTail:
	MOVQ (R9)(CX*8), SI
	VBROADCASTSD (R8)(CX*8), Z2
	VMOVDQU8.Z (SI)(R12*1), K1, Z3
	VGF2P8AFFINEQB $0, Z2, Z3, Z3
	VPXORQ Z3, Z0, Z0
	INCQ CX
	CMPQ CX, R10
	JLT  r512SrcTail

	TESTQ R14, R14
	JZ    r512StoreTail
	VMOVDQU8.Z (DI)(R12*1), K1, Z4
	VPXORQ Z4, Z0, Z0

r512StoreTail:
	VMOVDQU8 Z0, K1, (DI)(R12*1)

r512Done:
	VZEROUPPER
	RET

package gf256

import "repro/internal/parallel"

// Parallel strided/segment execution.
//
// The strided entries below fan one batched row application out across
// the persistent worker pool. Both splits are pure geometry: a worker's
// sub-range is addressed by advancing every operand's base pointer, so
// each worker issues an ordinary serial ApplyStrided/ApplySegs over a
// disjoint slice of the destination. Every output byte depends only on
// the same offsets of the sources, so any split is byte-identical to the
// serial pass — the conformance and identity suites enforce that across
// backends and worker counts.
//
// These entries are mechanism only: they take an explicit worker count
// and always fan out when it exceeds 1. Policy — whether a call is big
// enough to be worth a pool handoff — lives one layer up in
// kernel.StridedWorkers, which prices the calibrated strided threshold
// against the kernel worker budget (ECFAULT_KERNEL_WORKERS).

// stridedParMinBytes is the smallest byte-split piece ApplyStridedParallel
// hands a worker when it divides segment bytes rather than segments:
// pieces below a few KiB spend more time in handoff than in the kernel.
const stridedParMinBytes = 4096

// ApplyStridedParallel is ApplyStrided fanned out over the worker pool.
// The segment range [0, count) splits into contiguous per-worker
// sub-ranges (base pointers advance by lo*stride); when there are fewer
// segments than workers and the segments are large, the segment bytes
// split as well (64-byte-aligned pieces, so the SIMD kernels keep full
// strips). workers <= 1, or a geometry too small to split, runs the
// serial entry on the calling goroutine.
func (rp *RowPlan) ApplyStridedParallel(srcs [][]byte, dst []byte, dstBase, dstStride int, srcBase, srcStride []int, segn, count int, overwrite bool, workers int) {
	if segn <= 0 || count <= 0 {
		return
	}
	// Split segments first: wC workers take ceil(count/wC) segments each.
	wC := min(workers, count)
	perC := (count + wC - 1) / wC
	wC = (count + perC - 1) / perC

	// Leftover budget splits segment bytes, pieces 64-byte aligned and at
	// least stridedParMinBytes.
	wB := 1
	perB := segn
	if w := workers / wC; w > 1 && segn >= 2*stridedParMinBytes {
		wB = min(w, segn/stridedParMinBytes)
		perB = (segn/wB + 63) &^ 63
		wB = (segn + perB - 1) / perB
	}
	if wC*wB <= 1 {
		rp.ApplyStrided(srcs, dst, dstBase, dstStride, srcBase, srcStride, segn, count, overwrite)
		return
	}
	parallel.ForEach(wC*wB, wC*wB, func(t int) {
		a, b := t/wB, t%wB
		c0 := a * perC
		cn := min(perC, count-c0)
		o0 := b * perB
		on := min(perB, segn-o0)
		sb := make([]int, len(srcs))
		for _, j := range rp.nzSrc {
			sb[j] = srcBase[j] + c0*srcStride[j] + o0
		}
		rp.ApplyStrided(srcs, dst, dstBase+c0*dstStride+o0, dstStride, sb, srcStride, on, cn, overwrite)
	})
}

// ApplySegsParallel is ApplySegs with the index list split into
// contiguous per-worker sub-lists. Splitting can land mid-run, changing
// which kernel route (strided, gather, window) each piece takes — all
// routes are byte-identical, so the output never depends on the split.
func (rp *RowPlan) ApplySegsParallel(srcs [][]byte, dst []byte, idx []int32, delta []int32, segLen int, overwrite bool, workers int) {
	workers = min(workers, len(idx))
	if workers <= 1 {
		rp.ApplySegs(srcs, dst, idx, delta, segLen, overwrite)
		return
	}
	per := (len(idx) + workers - 1) / workers
	workers = (len(idx) + per - 1) / per
	parallel.ForEach(workers, workers, func(w int) {
		lo := w * per
		hi := min(lo+per, len(idx))
		rp.ApplySegs(srcs, dst, idx[lo:hi], delta, segLen, overwrite)
	})
}

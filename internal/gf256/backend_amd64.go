//go:build amd64 && !purego

package gf256

import "sync"

// Hardware capability probing and the per-coefficient constant tables the
// SIMD row kernels consume. The kernels themselves are in row_amd64.s; the
// split-nibble layout and the affine-matrix construction are documented in
// DESIGN.md ("SIMD backend").

// cpuidAsm executes CPUID with the given leaf/subleaf.
func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbvAsm reads XCR0 (requires OSXSAVE, checked by the caller).
func xgetbvAsm() (eax, edx uint32)

// gfniRowAsm computes dst[i] (^)= XOR_j affine(mats[j], srcs[j][i]) over
// [0, n) for n a positive multiple of 32. xor != 0 accumulates into dst,
// xor == 0 overwrites. srcs points at nsrc segment base pointers.
//
//go:noescape
func gfniRowAsm(mats *uint64, srcs **byte, nsrc int, dst *byte, n int, xor int)

// avx2RowAsm is gfniRowAsm with 64-byte split-nibble tables (low 32 bytes:
// products of the low nibble; high 32: products of the high nibble).
//
//go:noescape
func avx2RowAsm(tbls *byte, srcs **byte, nsrc int, dst *byte, n int, xor int)

// gfni512RowAsm is the zmm row kernel: 64-byte strips (unrolled to 128)
// with the final partial strip finished by K-masked loads and a masked
// store, so any n >= 1 completes in-kernel — no overlap window, no scalar
// tail. Requires backendGFNI512.
//
//go:noescape
func gfni512RowAsm(mats *uint64, srcs **byte, nsrc int, dst *byte, n int, xor int)

// gfni512StridedAsm is the zmm strided kernel with per-operand geometry:
// count segments of segn bytes, the destination advancing dstride bytes
// per segment and source j advancing strides[j] (0 re-reads the same
// window — virtual zero shards). Segment tails are K-masked, so any
// segn >= 1 stays fully in-kernel. The srcs pointer array is advanced in
// place (clobbered); pointers always stay inside the segment just
// processed, so the array remains GC-safe throughout.
//
//go:noescape
func gfni512StridedAsm(mats *uint64, srcs **byte, strides *int, nsrc int, dst *byte, dstride, segn, count, xor int)

var hwLevel = sync.OnceValue(detectHW)

// hwBackend returns the strongest backend this machine supports.
func hwBackend() int32 { return hwLevel() }

// CPUID leaf 7 / XCR0 feature bits the dispatch chain cares about.
const (
	cpuidAVX2     = 1 << 5  // leaf 7 EBX
	cpuidAVX512F  = 1 << 16 // leaf 7 EBX
	cpuidAVX512DQ = 1 << 17 // leaf 7 EBX
	cpuidAVX512BW = 1 << 30 // leaf 7 EBX
	cpuidGFNI     = 1 << 8  // leaf 7 ECX

	// XCR0: x87+SSE+YMM (the AVX set) and opmask+zmm-hi256+hi16-zmm
	// (the AVX-512 state the OS must context-switch for zmm kernels).
	xcr0YMM = 0x6
	xcr0ZMM = 0xe6
)

func detectHW() int32 {
	maxLeaf, _, _, _ := cpuidAsm(0, 0)
	if maxLeaf < 7 {
		return backendWord
	}
	_, _, c1, _ := cpuidAsm(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if c1&osxsave == 0 || c1&avx == 0 {
		return backendWord
	}
	xlo, _ := xgetbvAsm()
	if xlo&xcr0YMM != xcr0YMM {
		return backendWord // OS does not preserve YMM state
	}
	_, b7, c7, _ := cpuidAsm(7, 0)
	if b7&cpuidAVX2 == 0 {
		return backendWord
	}
	if c7&cpuidGFNI == 0 {
		return backendAVX2
	}
	// The zmm tier needs the EVEX forms: AVX512F for zmm arithmetic,
	// AVX512BW for the byte-granular masked loads/stores (VMOVDQU8 with a
	// K register), AVX512DQ for KMOVQ — plus an OS that saves the opmask
	// and zmm register state (XCR0 bits 5-7 alongside x87/SSE/YMM).
	const avx512 = cpuidAVX512F | cpuidAVX512DQ | cpuidAVX512BW
	if b7&avx512 == avx512 && xlo&xcr0ZMM == xcr0ZMM {
		return backendGFNI512
	}
	// The Go assembler emits the VEX form of VGF2P8AFFINEQB on ymm
	// operands (verified via objdump: C4-prefixed), which needs only
	// GFNI + AVX — no AVX-512 state beyond the YMM save already checked.
	return backendGFNI
}

// CPUFeatures returns the CPU/OS feature flags the kernel dispatch keys
// off, for bench-record metadata and the CI backend matrix: a subset of
// {avx2, gfni, avx512f, avx512dq, avx512bw, os-ymm, os-zmm}.
func CPUFeatures() []string {
	var out []string
	maxLeaf, _, _, _ := cpuidAsm(0, 0)
	if maxLeaf < 7 {
		return out
	}
	_, b7, c7, _ := cpuidAsm(7, 0)
	for _, f := range []struct {
		name string
		reg  uint32
		bit  uint32
	}{
		{"avx2", b7, cpuidAVX2},
		{"gfni", c7, cpuidGFNI},
		{"avx512f", b7, cpuidAVX512F},
		{"avx512dq", b7, cpuidAVX512DQ},
		{"avx512bw", b7, cpuidAVX512BW},
	} {
		if f.reg&f.bit != 0 {
			out = append(out, f.name)
		}
	}
	_, _, c1, _ := cpuidAsm(1, 0)
	if c1&(1<<27) != 0 { // OSXSAVE: XGETBV is legal
		xlo, _ := xgetbvAsm()
		if xlo&xcr0YMM == xcr0YMM {
			out = append(out, "os-ymm")
		}
		if xlo&xcr0ZMM == xcr0ZMM {
			out = append(out, "os-zmm")
		}
	}
	return out
}

// Per-coefficient kernel constants, built once the first time a RowPlan is
// compiled with SIMD available. 256 x 64 B nibble tables (16 KiB) plus
// 256 affine matrices (2 KiB); RowPlans reference them by value copy so
// each plan's constants are contiguous for the assembly inner loop.
var (
	simdTablesOnce sync.Once
	nibTables      [256][64]byte
	gfniMats       [256]uint64
)

func buildSIMDTables() {
	for c := 0; c < 256; c++ {
		t := &nibTables[c]
		for i := 0; i < 16; i++ {
			lo := Mul(byte(c), byte(i))
			hi := Mul(byte(c), byte(i<<4))
			// Each 16-byte VPSHUFB table is doubled to span a ymm lane pair.
			t[i], t[16+i] = lo, lo
			t[32+i], t[48+i] = hi, hi
		}
		gfniMats[c] = gfniMatrix(byte(c))
	}
}

// gfniMatrix returns the 8x8 bit matrix M with VGF2P8AFFINEQB(M, x) ==
// Mul(c, x) for every byte x. Per the instruction's semantics, output bit
// i of each byte is the parity of (matrix byte 7-i AND input byte), so
// matrix byte b must hold, at bit j, bit 7-b of c*x^j.
func gfniMatrix(c byte) uint64 {
	var m uint64
	for b := 0; b < 8; b++ {
		var row byte
		for j := 0; j < 8; j++ {
			if Mul(c, 1<<j)>>(7-b)&1 == 1 {
				row |= 1 << j
			}
		}
		m |= uint64(row) << (8 * b)
	}
	return m
}

// simdCompile attaches the per-coefficient kernel constants for the plan's
// non-zero coefficients. Constants are built from the hardware cap, not
// the active backend, so plans compiled while ECFAULT_NOSIMD (or a test
// override) lowers the chain still work after SetBackend raises it.
func simdCompile(rp *RowPlan) {
	if hwBackend() < backendAVX2 {
		return
	}
	simdTablesOnce.Do(buildSIMDTables)
	rp.nzTbl = make([]byte, 0, len(rp.nzSrc)*64)
	rp.nzMat = make([]uint64, 0, len(rp.nzSrc))
	for _, j := range rp.nzSrc {
		c := rp.coeffs[j]
		rp.nzTbl = append(rp.nzTbl, nibTables[c][:]...)
		rp.nzMat = append(rp.nzMat, gfniMats[c])
	}
}

// applySIMD runs the vectorized row kernel over dst[off:end). The SIMD
// loads are unaligned, so arbitrary shard offsets (Clay sub-slices, fuzzed
// alignments) take the same path. A sub-32-byte remainder of a segment
// that is itself >= 32 bytes is finished by re-running the kernel over the
// overlapping final 32-byte window into a scratch buffer and merging only
// the new bytes, so the scalar tail handles nothing but segments shorter
// than one vector.
func (rp *RowPlan) applySIMD(srcs [][]byte, dst []byte, off, end int, overwrite bool, backend int32) {
	if backend == backendGFNI512 {
		// The zmm kernel's K-masked tail covers any length in one call.
		if end == off {
			return
		}
		var ptrBuf [32]*byte
		ptrs := ptrBuf[:0]
		if len(rp.nzSrc) > len(ptrBuf) {
			ptrs = make([]*byte, 0, len(rp.nzSrc))
		}
		for _, j := range rp.nzSrc {
			ptrs = append(ptrs, &srcs[j][off])
		}
		xor := 1
		if overwrite {
			xor = 0
		}
		gfni512RowAsm(&rp.nzMat[0], &ptrs[0], len(ptrs), &dst[off], end-off, xor)
		return
	}
	if end-off < 32 {
		rp.tail(srcs, dst, off, end, overwrite)
		return
	}
	var ptrBuf [32]*byte
	ptrs := ptrBuf[:0]
	if len(rp.nzSrc) > len(ptrBuf) {
		ptrs = make([]*byte, 0, len(rp.nzSrc))
	}
	for _, j := range rp.nzSrc {
		ptrs = append(ptrs, &srcs[j][off])
	}
	xor := 1
	if overwrite {
		xor = 0
	}
	n := (end - off) &^ 31
	if backend == backendGFNI {
		gfniRowAsm(&rp.nzMat[0], &ptrs[0], len(ptrs), &dst[off], n, xor)
	} else {
		avx2RowAsm(&rp.nzTbl[0], &ptrs[0], len(ptrs), &dst[off], n, xor)
	}
	if rem := end - off - n; rem > 0 {
		w := end - 32 // overlapping final window, w >= off
		for i, j := range rp.nzSrc {
			ptrs[i] = &srcs[j][w]
		}
		var tmp [32]byte
		if backend == backendGFNI {
			gfniRowAsm(&rp.nzMat[0], &ptrs[0], len(ptrs), &tmp[0], 32, 0)
		} else {
			avx2RowAsm(&rp.nzTbl[0], &ptrs[0], len(ptrs), &tmp[0], 32, 0)
		}
		tail := dst[off+n : end]
		if overwrite {
			copy(tail, tmp[32-rem:])
		} else {
			for i, v := range tmp[32-rem:] {
				tail[i] ^= v
			}
		}
	}
}

// gfniStridedAsm runs the GFNI row kernel over count segments of segn
// bytes placed stride bytes apart (stride >= segn >= 32), one call for the
// whole batch. Each source pointer advances in lockstep with dst. Segment
// remainders below 32 bytes are finished in-asm with a masked merge, so no
// scalar tail ever runs.
//
//go:noescape
func gfniStridedAsm(mats *uint64, srcs **byte, nsrc int, dst *byte, segn int, stride int, count int, xor int)

// avx2StridedAsm is gfniStridedAsm with 64-byte split-nibble tables.
//
//go:noescape
func avx2StridedAsm(tbls *byte, srcs **byte, nsrc int, dst *byte, segn int, stride int, count int, xor int)

// stridedSIMD dispatches the strided assembly kernel: count segments of
// segBytes each, stride bytes apart, destination starting at dst[base]
// and source j at base + delta[j]*segLen. Requires segBytes >= 32 and an
// active SIMD backend.
func (rp *RowPlan) stridedSIMD(srcs [][]byte, dst []byte, base int, delta []int32, segLen, segBytes, stride, count int, overwrite bool, backend int32) {
	extent := (count-1)*stride + segBytes
	_ = dst[base+extent-1] // bounds-check the full destination span
	var ptrBuf [32]*byte
	ptrs := ptrBuf[:0]
	if len(rp.nzSrc) > len(ptrBuf) {
		ptrs = make([]*byte, 0, len(rp.nzSrc))
	}
	for _, j := range rp.nzSrc {
		so := base
		if delta != nil {
			so += int(delta[j]) * segLen
		}
		_ = srcs[j][so+extent-1] // bounds-check the full source span
		ptrs = append(ptrs, &srcs[j][so])
	}
	xor := 1
	if overwrite {
		xor = 0
	}
	switch backend {
	case backendGFNI512:
		var strideBuf [32]int
		strides := strideBuf[:0]
		if len(ptrs) > len(strideBuf) {
			strides = make([]int, 0, len(ptrs))
		}
		for range ptrs {
			strides = append(strides, stride)
		}
		gfni512StridedAsm(&rp.nzMat[0], &ptrs[0], &strides[0], len(ptrs), &dst[base], stride, segBytes, count, xor)
	case backendGFNI:
		gfniStridedAsm(&rp.nzMat[0], &ptrs[0], len(ptrs), &dst[base], segBytes, stride, count, xor)
	default:
		avx2StridedAsm(&rp.nzTbl[0], &ptrs[0], len(ptrs), &dst[base], segBytes, stride, count, xor)
	}
}

// applyStridedSIMD runs the per-operand-geometry segment batch on the
// active SIMD backend: count segments of segn bytes, the destination at
// dstBase advancing dstStride per segment and source j at srcBase[j]
// advancing srcStride[j] (0 pins a window — virtual zero shards). The zmm
// kernel consumes the geometry directly; the ymm kernels only fit when
// every operand shares one stride and the segment fills a vector. Returns
// false when no kernel fits (the caller walks per-segment windows).
func (rp *RowPlan) applyStridedSIMD(srcs [][]byte, dst []byte, dstBase, dstStride int, srcBase, srcStride []int, segn, count int, overwrite bool, backend int32) bool {
	if backend < backendGFNI512 {
		// Lockstep ymm kernels: one shared stride, >= one vector per
		// segment, below the run cap (longer runs amortize per-window
		// calls on their own).
		if segn < 32 || segn >= stridedMaxRun {
			return false
		}
		for _, j := range rp.nzSrc {
			if srcStride[j] != dstStride {
				return false
			}
		}
	}
	var ptrBuf [32]*byte
	ptrs := ptrBuf[:0]
	if len(rp.nzSrc) > len(ptrBuf) {
		ptrs = make([]*byte, 0, len(rp.nzSrc))
	}
	for _, j := range rp.nzSrc {
		so := srcBase[j]
		_ = srcs[j][so+(count-1)*srcStride[j]+segn-1] // bounds-check the span
		ptrs = append(ptrs, &srcs[j][so])
	}
	_ = dst[dstBase+(count-1)*dstStride+segn-1]
	xor := 1
	if overwrite {
		xor = 0
	}
	switch backend {
	case backendGFNI512:
		var strideBuf [32]int
		strides := strideBuf[:0]
		if len(rp.nzSrc) > len(strideBuf) {
			strides = make([]int, 0, len(rp.nzSrc))
		}
		for _, j := range rp.nzSrc {
			strides = append(strides, srcStride[j])
		}
		gfni512StridedAsm(&rp.nzMat[0], &ptrs[0], &strides[0], len(ptrs), &dst[dstBase], dstStride, segn, count, xor)
	case backendGFNI:
		gfniStridedAsm(&rp.nzMat[0], &ptrs[0], len(ptrs), &dst[dstBase], segn, dstStride, count, xor)
	default:
		avx2StridedAsm(&rp.nzTbl[0], &ptrs[0], len(ptrs), &dst[dstBase], segn, dstStride, count, xor)
	}
	return true
}

// simdMulAddSlice is the single-coefficient entry used by MulAddSlice and
// MulSlice for c outside {0, 1}: one source, the shared per-coefficient
// constants. Returns false when the active backend has no SIMD.
func simdMulAddSlice(c byte, src, dst []byte, overwrite bool) bool {
	b := currentBackend()
	if b == backendGFNI512 && len(dst) >= 16 {
		// Masked tails make a single zmm call worthwhile down to one
		// vector's worth of work; shorter slices stay on the word path.
		simdTablesOnce.Do(buildSIMDTables)
		ptr := &src[0]
		xor := 1
		if overwrite {
			xor = 0
		}
		gfni512RowAsm(&gfniMats[c], &ptr, 1, &dst[0], len(dst), xor)
		return true
	}
	if b < backendAVX2 || len(dst) < 32 {
		return false
	}
	simdTablesOnce.Do(buildSIMDTables)
	n := len(dst) &^ 31
	ptr := &src[0]
	xor := 1
	if overwrite {
		xor = 0
	}
	if b == backendGFNI {
		gfniRowAsm(&gfniMats[c], &ptr, 1, &dst[0], n, xor)
	} else {
		avx2RowAsm(&nibTables[c][0], &ptr, 1, &dst[0], n, xor)
	}
	if rem := len(dst) - n; rem > 0 {
		// Same overlapping-window trick as applySIMD for the remainder.
		var tmp [32]byte
		wptr := &src[len(src)-32]
		if b == backendGFNI {
			gfniRowAsm(&gfniMats[c], &wptr, 1, &tmp[0], 32, 0)
		} else {
			avx2RowAsm(&nibTables[c][0], &wptr, 1, &tmp[0], 32, 0)
		}
		tail := dst[n:]
		if overwrite {
			copy(tail, tmp[32-rem:])
		} else {
			for i, v := range tmp[32-rem:] {
				tail[i] ^= v
			}
		}
	}
	return true
}

package gf256

import (
	"bytes"
	"testing"
)

// refMulAdd is the oracle for the fuzzers below: dst[i] ^= c*src[i] using
// the bit-by-bit refMul from gf256_test.go, fully independent of the
// product tables and the word kernels.
func refMulAdd(c byte, src, dst []byte) {
	for i, s := range src {
		dst[i] ^= refMul(c, s)
	}
}

// eachBackend runs fn under every available backend (SIMD tiers included
// when the hardware has them), so one fuzz execution cross-checks the
// whole dispatch chain against the oracle.
func eachBackend(t *testing.T, fn func(t *testing.T)) {
	t.Helper()
	for _, backend := range Backends() {
		restore, err := SetBackend(backend)
		if err != nil {
			t.Fatal(err)
		}
		fn(t)
		restore()
	}
}

// FuzzMulAddSliceKernel checks MulAddSlice (table loop plus the c=0/1 fast
// paths) against the bit-by-bit oracle for arbitrary coefficients,
// payloads, and lengths, on every backend.
func FuzzMulAddSliceKernel(f *testing.F) {
	f.Add(byte(2), []byte("hello, erasure coding world"))
	f.Add(byte(0), []byte{1, 2, 3})
	f.Add(byte(1), []byte{0xff})
	f.Add(byte(0x8e), bytes.Repeat([]byte{0xa5, 0x3c}, 33))
	f.Fuzz(func(t *testing.T, c byte, src []byte) {
		eachBackend(t, func(t *testing.T) {
			dst := make([]byte, len(src))
			for i := range dst {
				dst[i] = byte(i*7 + 13)
			}
			want := append([]byte(nil), dst...)
			refMulAdd(c, src, want)
			MulAddSlice(c, src, dst)
			if !bytes.Equal(dst, want) {
				t.Fatalf("MulAddSlice(c=%#x, len=%d, backend=%s) diverges from reference", c, len(src), Backend())
			}
		})
	})
}

// FuzzMulSliceKernel checks MulSlice against the bit-by-bit oracle.
func FuzzMulSliceKernel(f *testing.F) {
	f.Add(byte(3), []byte("0123456789abcdef-tail"))
	f.Add(byte(0), []byte{9})
	f.Fuzz(func(t *testing.T, c byte, src []byte) {
		dst := make([]byte, len(src))
		want := make([]byte, len(src))
		for i, s := range src {
			want[i] = refMul(c, s)
		}
		MulSlice(c, src, dst)
		if !bytes.Equal(dst, want) {
			t.Fatalf("MulSlice(c=%#x, len=%d) diverges from reference", c, len(src))
		}
	})
}

// FuzzMulAddRow checks the bit-plane Horner row kernel against a loop of
// bit-by-bit reference multiply-accumulates. The fuzzer drives the
// coefficients and one payload; the remaining sources are deterministic
// permutations of it, so the row width varies with the coefficient count
// and the payload length exercises non-8-byte-aligned tails.
func FuzzMulAddRow(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0x53}, []byte("a moderately sized source shard payload"))
	f.Add([]byte{1}, []byte{})
	f.Add([]byte{0xff, 0xfe}, bytes.Repeat([]byte{0x11}, 71))
	f.Fuzz(func(t *testing.T, coeffs, src []byte) {
		if len(coeffs) > 64 {
			coeffs = coeffs[:64]
		}
		srcs := make([][]byte, len(coeffs))
		for j := range srcs {
			s := make([]byte, len(src))
			for i, b := range src {
				s[i] = b ^ byte(j*31+i)
			}
			srcs[j] = s
		}
		want := make([]byte, len(src))
		for i := range want {
			want[i] = byte(i * 3)
		}
		for j, c := range coeffs {
			refMulAdd(c, srcs[j], want)
		}
		eachBackend(t, func(t *testing.T) {
			dst := make([]byte, len(src))
			for i := range dst {
				dst[i] = byte(i * 3)
			}
			MulAddRow(coeffs, srcs, dst)
			if !bytes.Equal(dst, want) {
				t.Fatalf("MulAddRow(%d coeffs, len=%d, backend=%s) diverges from reference", len(coeffs), len(src), Backend())
			}
		})
	})
}

// FuzzRowPlanRanges checks that a RowPlan applied as two disjoint Apply
// ranges split at an arbitrary (not word-aligned) boundary is
// byte-identical to one serial pass, in both accumulate and overwrite
// modes. This is the property the parallel stripe executor relies on when
// it fans bands out to workers.
func FuzzRowPlanRanges(f *testing.F) {
	f.Add([]byte{2, 3, 0, 9}, []byte("split me at an odd boundary please"), uint16(5))
	f.Add([]byte{1, 1}, bytes.Repeat([]byte{0x77}, 40), uint16(17))
	f.Fuzz(func(t *testing.T, coeffs, src []byte, cutRaw uint16) {
		if len(coeffs) > 32 {
			coeffs = coeffs[:32]
		}
		srcs := make([][]byte, len(coeffs))
		for j := range srcs {
			s := make([]byte, len(src))
			for i, b := range src {
				s[i] = b ^ byte(j*89+i*5)
			}
			srcs[j] = s
		}
		rp := CompileRow(coeffs)
		for _, overwrite := range []bool{false, true} {
			serial := make([]byte, len(src))
			split := make([]byte, len(src))
			for i := range serial {
				serial[i] = byte(i*11 + 1)
				split[i] = serial[i]
			}
			rp.Apply(srcs, serial, 0, len(serial), overwrite)
			cut := 0
			if len(src) > 0 {
				cut = int(cutRaw) % (len(src) + 1)
			}
			rp.Apply(srcs, split, 0, cut, overwrite)
			rp.Apply(srcs, split, cut, len(split), overwrite)
			if !bytes.Equal(serial, split) {
				t.Fatalf("split Apply at %d (overwrite=%v, len=%d) diverges from serial pass", cut, overwrite, len(src))
			}
		}
	})
}

// TestRowPlanUnalignedOperands drives Apply through the byte-slice
// fallback and the head/tail alignment fixups: sources and destination
// offset by every sub-word amount, at lengths around band boundaries.
func TestRowPlanUnalignedOperands(t *testing.T) {
	coeffs := []byte{2, 0, 1, 0x8e, 0xfd}
	for _, n := range []int{0, 1, 7, 8, 9, 63, 2048, 2055, 4096 + 5} {
		for shift := 0; shift < 8; shift++ {
			srcs := make([][]byte, len(coeffs))
			for j := range srcs {
				backing := make([]byte, n+shift)
				for i := range backing {
					backing[i] = byte(i*13 + j*7 + 5)
				}
				srcs[j] = backing[shift:]
			}
			backing := make([]byte, n+shift)
			for i := range backing {
				backing[i] = byte(i * 29)
			}
			dst := backing[shift:]
			want := append([]byte(nil), dst...)
			for j, c := range coeffs {
				refMulAdd(c, srcs[j], want)
			}
			MulAddRow(coeffs, srcs, dst)
			if !bytes.Equal(dst, want) {
				t.Fatalf("n=%d shift=%d: MulAddRow diverges from reference", n, shift)
			}
		}
	}
}

//go:build amd64 && !purego

#include "textflag.h"

// Vectorized GF(2^8) row kernels: dst[i] (^)= XOR_j c_j * srcs[j][i].
//
// Both kernels walk the destination in 64-byte strips (with a single
// 32-byte strip when n % 64 == 32), accumulate the full row sum in ymm
// registers, and touch the destination once per strip regardless of row
// width. All loads and stores are unaligned (VMOVDQU), so callers pass
// arbitrary shard offsets; sub-32-byte tails are the caller's problem.
//
// Register plan (both kernels):
//	R8  constant table base (affine matrices / nibble tables)
//	R9  source pointer array base
//	R10 source count
//	DI  destination base
//	R13 total bytes (multiple of 32)
//	R14 xor flag (0 = overwrite, else accumulate)
//	R12 strip offset, CX source index, SI current source pointer
//	Y0/Y1 accumulators

// tailMask provides 32-byte masks for the strided kernels' in-segment
// tails: loading 32 bytes at offset rem (0 < rem < 32) yields a mask whose
// final rem bytes are 0xFF and the rest 0x00 — exactly the new bytes of an
// overlapping final window ending at the segment boundary.
DATA tailMask<>+0(SB)/8, $0x0000000000000000
DATA tailMask<>+8(SB)/8, $0x0000000000000000
DATA tailMask<>+16(SB)/8, $0x0000000000000000
DATA tailMask<>+24(SB)/8, $0x0000000000000000
DATA tailMask<>+32(SB)/8, $0xffffffffffffffff
DATA tailMask<>+40(SB)/8, $0xffffffffffffffff
DATA tailMask<>+48(SB)/8, $0xffffffffffffffff
DATA tailMask<>+56(SB)/8, $0xffffffffffffffff
GLOBL tailMask<>(SB), RODATA|NOPTR, $64

DATA nibMask<>+0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibMask<>+8(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibMask<>+16(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibMask<>+24(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibMask<>(SB), RODATA|NOPTR, $32

// func gfniRowAsm(mats *uint64, srcs **byte, nsrc int, dst *byte, n int, xor int)
//
// One VGF2P8AFFINEQB per 32 source bytes: mats[j] is the 8x8 bit matrix of
// multiplication by c_j over the field polynomial 0x11d.
TEXT ·gfniRowAsm(SB), NOSPLIT, $0-48
	MOVQ mats+0(FP), R8
	MOVQ srcs+8(FP), R9
	MOVQ nsrc+16(FP), R10
	MOVQ dst+24(FP), DI
	MOVQ n+32(FP), R13
	MOVQ xor+40(FP), R14
	XORQ R12, R12

gfniStrip64:
	LEAQ 64(R12), AX
	CMPQ AX, R13
	JGT  gfniStrip32
	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	XORQ CX, CX

gfniSrc64:
	VBROADCASTSD (R8)(CX*8), Y2
	MOVQ (R9)(CX*8), SI
	VMOVDQU (SI)(R12*1), Y3
	VMOVDQU 32(SI)(R12*1), Y4
	VGF2P8AFFINEQB $0, Y2, Y3, Y3
	VGF2P8AFFINEQB $0, Y2, Y4, Y4
	VPXOR Y3, Y0, Y0
	VPXOR Y4, Y1, Y1
	INCQ CX
	CMPQ CX, R10
	JLT  gfniSrc64

	TESTQ R14, R14
	JZ    gfniStore64
	VPXOR (DI)(R12*1), Y0, Y0
	VPXOR 32(DI)(R12*1), Y1, Y1

gfniStore64:
	VMOVDQU Y0, (DI)(R12*1)
	VMOVDQU Y1, 32(DI)(R12*1)
	ADDQ $64, R12
	JMP  gfniStrip64

gfniStrip32:
	CMPQ R12, R13
	JGE  gfniDone
	VPXOR Y0, Y0, Y0
	XORQ CX, CX

gfniSrc32:
	VBROADCASTSD (R8)(CX*8), Y2
	MOVQ (R9)(CX*8), SI
	VMOVDQU (SI)(R12*1), Y3
	VGF2P8AFFINEQB $0, Y2, Y3, Y3
	VPXOR Y3, Y0, Y0
	INCQ CX
	CMPQ CX, R10
	JLT  gfniSrc32

	TESTQ R14, R14
	JZ    gfniStore32
	VPXOR (DI)(R12*1), Y0, Y0

gfniStore32:
	VMOVDQU Y0, (DI)(R12*1)

gfniDone:
	VZEROUPPER
	RET

// func avx2RowAsm(tbls *byte, srcs **byte, nsrc int, dst *byte, n int, xor int)
//
// ISA-L-style split-nibble scheme: tbls holds 64 bytes per source — the
// 16-entry low-nibble product table doubled across both ymm lanes, then
// the high-nibble table likewise. Each 32 source bytes cost two VPSHUFBs.
// BX cursors through the tables (64 per source); Y8 holds the 0x0f mask.
TEXT ·avx2RowAsm(SB), NOSPLIT, $0-48
	MOVQ tbls+0(FP), R8
	MOVQ srcs+8(FP), R9
	MOVQ nsrc+16(FP), R10
	MOVQ dst+24(FP), DI
	MOVQ n+32(FP), R13
	MOVQ xor+40(FP), R14
	VMOVDQU nibMask<>(SB), Y8
	XORQ R12, R12

avx2Strip64:
	LEAQ 64(R12), AX
	CMPQ AX, R13
	JGT  avx2Strip32
	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	XORQ CX, CX
	MOVQ R8, BX

avx2Src64:
	VMOVDQU (BX), Y5
	VMOVDQU 32(BX), Y6
	MOVQ (R9)(CX*8), SI
	VMOVDQU (SI)(R12*1), Y2
	VMOVDQU 32(SI)(R12*1), Y3
	VPSRLW $4, Y2, Y4
	VPSRLW $4, Y3, Y7
	VPAND  Y8, Y2, Y2
	VPAND  Y8, Y3, Y3
	VPAND  Y8, Y4, Y4
	VPAND  Y8, Y7, Y7
	VPSHUFB Y2, Y5, Y2
	VPSHUFB Y3, Y5, Y3
	VPSHUFB Y4, Y6, Y4
	VPSHUFB Y7, Y6, Y7
	VPXOR Y4, Y2, Y2
	VPXOR Y7, Y3, Y3
	VPXOR Y2, Y0, Y0
	VPXOR Y3, Y1, Y1
	ADDQ $64, BX
	INCQ CX
	CMPQ CX, R10
	JLT  avx2Src64

	TESTQ R14, R14
	JZ    avx2Store64
	VPXOR (DI)(R12*1), Y0, Y0
	VPXOR 32(DI)(R12*1), Y1, Y1

avx2Store64:
	VMOVDQU Y0, (DI)(R12*1)
	VMOVDQU Y1, 32(DI)(R12*1)
	ADDQ $64, R12
	JMP  avx2Strip64

avx2Strip32:
	CMPQ R12, R13
	JGE  avx2Done
	VPXOR Y0, Y0, Y0
	XORQ CX, CX
	MOVQ R8, BX

avx2Src32:
	VMOVDQU (BX), Y5
	VMOVDQU 32(BX), Y6
	MOVQ (R9)(CX*8), SI
	VMOVDQU (SI)(R12*1), Y2
	VPSRLW $4, Y2, Y4
	VPAND  Y8, Y2, Y2
	VPAND  Y8, Y4, Y4
	VPSHUFB Y2, Y5, Y2
	VPSHUFB Y4, Y6, Y4
	VPXOR Y4, Y2, Y2
	VPXOR Y2, Y0, Y0
	ADDQ $64, BX
	INCQ CX
	CMPQ CX, R10
	JLT  avx2Src32

	TESTQ R14, R14
	JZ    avx2Store32
	VPXOR (DI)(R12*1), Y0, Y0

avx2Store32:
	VMOVDQU Y0, (DI)(R12*1)

avx2Done:
	VZEROUPPER
	RET

// Strided variants: the same row sum applied to count segments of segn
// bytes (segn >= 32) placed stride bytes apart, one call for the whole
// batch. Every source pointer tracks the destination offset, so segment s
// spans byte offsets [s*stride, s*stride+segn) of every operand. Segment
// remainders under 32 bytes are finished in-asm: the row sum is recomputed
// over the overlapping final 32-byte window of the segment and merged
// under a byte mask from tailMask, so only the rem new bytes change and
// xor mode never double-accumulates the overlap.
//
// Additional registers on top of the contiguous kernels' plan:
//	R11 segment bytes, R15 remaining segments, R13 stride
//	R12 current segment base offset, DX segment end offset
//	Y9 tail byte mask

// func gfniStridedAsm(mats *uint64, srcs **byte, nsrc int, dst *byte, segn int, stride int, count int, xor int)
TEXT ·gfniStridedAsm(SB), NOSPLIT, $0-64
	MOVQ mats+0(FP), R8
	MOVQ srcs+8(FP), R9
	MOVQ nsrc+16(FP), R10
	MOVQ dst+24(FP), DI
	MOVQ segn+32(FP), R11
	MOVQ stride+40(FP), R13
	MOVQ count+48(FP), R15
	MOVQ xor+56(FP), R14
	XORQ R12, R12

gfniSSeg:
	TESTQ R15, R15
	JZ    gfniSDone
	LEAQ (R12)(R11*1), DX // segment end offset
	MOVQ R12, BX          // strip cursor

gfniSStrip:
	LEAQ 32(BX), AX
	CMPQ AX, DX
	JGT  gfniSTail
	VPXOR Y0, Y0, Y0
	XORQ CX, CX

gfniSSrc:
	VBROADCASTSD (R8)(CX*8), Y2
	MOVQ (R9)(CX*8), SI
	VMOVDQU (SI)(BX*1), Y3
	VGF2P8AFFINEQB $0, Y2, Y3, Y3
	VPXOR Y3, Y0, Y0
	INCQ CX
	CMPQ CX, R10
	JLT  gfniSSrc

	TESTQ R14, R14
	JZ    gfniSStore
	VPXOR (DI)(BX*1), Y0, Y0

gfniSStore:
	VMOVDQU Y0, (DI)(BX*1)
	ADDQ $32, BX
	JMP  gfniSStrip

gfniSTail:
	CMPQ BX, DX
	JGE  gfniSNext
	MOVQ DX, AX
	SUBQ BX, AX             // rem = end - cursor, 0 < rem < 32
	LEAQ tailMask<>(SB), CX
	VMOVDQU (CX)(AX*1), Y9  // 0x00^(32-rem) ++ 0xff^rem
	LEAQ -32(DX), BX        // overlapping final window
	VPXOR Y0, Y0, Y0
	XORQ CX, CX

gfniSTSrc:
	VBROADCASTSD (R8)(CX*8), Y2
	MOVQ (R9)(CX*8), SI
	VMOVDQU (SI)(BX*1), Y3
	VGF2P8AFFINEQB $0, Y2, Y3, Y3
	VPXOR Y3, Y0, Y0
	INCQ CX
	CMPQ CX, R10
	JLT  gfniSTSrc

	VMOVDQU (DI)(BX*1), Y3 // prior destination bytes
	TESTQ R14, R14
	JZ    gfniSTMask
	VPXOR Y3, Y0, Y0

gfniSTMask:
	VPAND  Y9, Y0, Y0 // new bytes of the result
	VPANDN Y3, Y9, Y3 // prior bytes outside the tail
	VPOR   Y3, Y0, Y0
	VMOVDQU Y0, (DI)(BX*1)

gfniSNext:
	ADDQ R13, R12
	DECQ R15
	JMP  gfniSSeg

gfniSDone:
	VZEROUPPER
	RET

// func avx2StridedAsm(tbls *byte, srcs **byte, nsrc int, dst *byte, segn int, stride int, count int, xor int)
//
// AX doubles as the strip cursor (BX cursors the nibble tables inside the
// source loops, as in avx2RowAsm).
TEXT ·avx2StridedAsm(SB), NOSPLIT, $0-64
	MOVQ tbls+0(FP), R8
	MOVQ srcs+8(FP), R9
	MOVQ nsrc+16(FP), R10
	MOVQ dst+24(FP), DI
	MOVQ segn+32(FP), R11
	MOVQ stride+40(FP), R13
	MOVQ count+48(FP), R15
	MOVQ xor+56(FP), R14
	VMOVDQU nibMask<>(SB), Y8
	XORQ R12, R12

avx2SSeg:
	TESTQ R15, R15
	JZ    avx2SDone
	LEAQ (R12)(R11*1), DX // segment end offset
	MOVQ R12, AX          // strip cursor

avx2SStrip:
	LEAQ 32(AX), BX
	CMPQ BX, DX
	JGT  avx2STail
	VPXOR Y0, Y0, Y0
	XORQ CX, CX
	MOVQ R8, BX

avx2SSrc:
	VMOVDQU (BX), Y5
	VMOVDQU 32(BX), Y6
	MOVQ (R9)(CX*8), SI
	VMOVDQU (SI)(AX*1), Y2
	VPSRLW $4, Y2, Y4
	VPAND  Y8, Y2, Y2
	VPAND  Y8, Y4, Y4
	VPSHUFB Y2, Y5, Y2
	VPSHUFB Y4, Y6, Y4
	VPXOR Y4, Y2, Y2
	VPXOR Y2, Y0, Y0
	ADDQ $64, BX
	INCQ CX
	CMPQ CX, R10
	JLT  avx2SSrc

	TESTQ R14, R14
	JZ    avx2SStore
	VPXOR (DI)(AX*1), Y0, Y0

avx2SStore:
	VMOVDQU Y0, (DI)(AX*1)
	ADDQ $32, AX
	JMP  avx2SStrip

avx2STail:
	CMPQ AX, DX
	JGE  avx2SNext
	MOVQ DX, BX
	SUBQ AX, BX             // rem = end - cursor, 0 < rem < 32
	LEAQ tailMask<>(SB), CX
	VMOVDQU (CX)(BX*1), Y9  // 0x00^(32-rem) ++ 0xff^rem
	LEAQ -32(DX), AX        // overlapping final window
	VPXOR Y0, Y0, Y0
	XORQ CX, CX
	MOVQ R8, BX

avx2STSrc:
	VMOVDQU (BX), Y5
	VMOVDQU 32(BX), Y6
	MOVQ (R9)(CX*8), SI
	VMOVDQU (SI)(AX*1), Y2
	VPSRLW $4, Y2, Y4
	VPAND  Y8, Y2, Y2
	VPAND  Y8, Y4, Y4
	VPSHUFB Y2, Y5, Y2
	VPSHUFB Y4, Y6, Y4
	VPXOR Y4, Y2, Y2
	VPXOR Y2, Y0, Y0
	ADDQ $64, BX
	INCQ CX
	CMPQ CX, R10
	JLT  avx2STSrc

	VMOVDQU (DI)(AX*1), Y3 // prior destination bytes
	TESTQ R14, R14
	JZ    avx2STMask
	VPXOR Y3, Y0, Y0

avx2STMask:
	VPAND  Y9, Y0, Y0 // new bytes of the result
	VPANDN Y3, Y9, Y3 // prior bytes outside the tail
	VPOR   Y3, Y0, Y0
	VMOVDQU Y0, (DI)(AX*1)

avx2SNext:
	ADDQ R13, R12
	DECQ R15
	JMP  avx2SSeg

avx2SDone:
	VZEROUPPER
	RET

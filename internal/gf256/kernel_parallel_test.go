package gf256

import (
	"bytes"
	"math/rand"
	"runtime"
	"testing"
)

// parWorkerCounts are the worker budgets the identity tests force. The CI
// machine may have one CPU, so the counts are explicit rather than
// derived — the pool oversizes past NumCPU precisely so these runs still
// exercise real cross-goroutine handoff (and the race detector).
func parWorkerCounts() []int {
	return []int{1, 2, 7, runtime.NumCPU()}
}

// parStridedCases extends the serial geometry table with shapes that
// trigger each parallel split: many segments (segment-range split), one
// huge segment (64-byte-aligned byte split), and a mid shape where both
// splits compose. Sizes are deliberately unaligned.
func parStridedCases() []stridedCase {
	id := func(v int) func(int) int { return func(int) int { return v } }
	cases := stridedCases()
	return append(cases,
		stridedCase{segn: 257, count: 33, dstStride: 300, srcStrideOf: id(260), dstBase: 1, srcBaseOf: id(3)},
		stridedCase{segn: 13001, count: 1, dstStride: 13001, srcStrideOf: id(0), dstBase: 0, srcBaseOf: id(5)},
		stridedCase{segn: 9001, count: 3, dstStride: 9050, srcStrideOf: func(j int) int { return 9001 + 17*j }, dstBase: 2, srcBaseOf: func(j int) int { return j }},
	)
}

// TestApplyStridedParallelIdentity requires ApplyStridedParallel to be
// byte-identical to the serial ApplyStrided on every available backend,
// across worker counts and unaligned geometries. Run with -race this also
// checks the split never writes overlapping destination bytes.
func TestApplyStridedParallelIdentity(t *testing.T) {
	rows := [][]byte{
		{2},
		{1, 2},
		{0x8e, 0, 0x1d},
		{7, 0, 113, 214, 0xaa},
	}
	for _, backend := range Backends() {
		t.Run(backend, func(t *testing.T) {
			forceBackend(t, backend)
			rng := rand.New(rand.NewSource(99))
			for _, coeffs := range rows {
				rp := CompileRow(coeffs)
				for _, tc := range parStridedCases() {
					srcs := make([][]byte, len(coeffs))
					srcBase := make([]int, len(coeffs))
					srcStride := make([]int, len(coeffs))
					for j := range srcs {
						srcBase[j] = tc.srcBaseOf(j)
						srcStride[j] = tc.srcStrideOf(j)
						srcs[j] = make([]byte, srcBase[j]+(tc.count-1)*srcStride[j]+tc.segn)
						rng.Read(srcs[j])
					}
					dn := tc.dstBase + (tc.count-1)*tc.dstStride + tc.segn
					base := make([]byte, dn)
					rng.Read(base)
					for _, overwrite := range []bool{false, true} {
						want := append([]byte(nil), base...)
						rp.ApplyStrided(srcs, want, tc.dstBase, tc.dstStride, srcBase, srcStride, tc.segn, tc.count, overwrite)
						for _, workers := range parWorkerCounts() {
							got := append([]byte(nil), base...)
							rp.ApplyStridedParallel(srcs, got, tc.dstBase, tc.dstStride, srcBase, srcStride, tc.segn, tc.count, overwrite, workers)
							if !bytes.Equal(got, want) {
								t.Fatalf("parallel diverges from serial: coeffs=%v segn=%d count=%d workers=%d overwrite=%v",
									coeffs, tc.segn, tc.count, workers, overwrite)
							}
						}
					}
				}
			}
		})
	}
}

// TestApplySegsParallelIdentity requires ApplySegsParallel to match the
// serial ApplySegs across index patterns (including per-source deltas,
// run-coalescing boundaries, and singletons), worker counts, and
// backends.
func TestApplySegsParallelIdentity(t *testing.T) {
	coeffs := []byte{0x8e, 0x1d}
	idxCases := []struct {
		name  string
		idx   []int32
		delta []int32
	}{
		{"contiguous", []int32{0, 1, 2, 3, 4, 5, 6, 7}, nil},
		{"runs", []int32{0, 1, 2, 9, 10, 11, 18, 19, 20}, nil},
		{"singletons", []int32{1, 4, 7, 10, 13, 16, 19, 22}, nil},
		{"ragged", []int32{0, 2, 3, 4, 11, 17, 18, 23, 24}, nil},
		{"delta", []int32{0, 1, 2, 9, 10, 11}, []int32{0, 3}},
	}
	for _, backend := range Backends() {
		t.Run(backend, func(t *testing.T) {
			forceBackend(t, backend)
			rng := rand.New(rand.NewSource(7))
			rp := CompileRow(coeffs)
			for _, segLen := range []int{37, 512, 4096} {
				const space = 30
				srcs := make([][]byte, len(coeffs))
				for j := range srcs {
					srcs[j] = make([]byte, space*segLen)
					rng.Read(srcs[j])
				}
				base := make([]byte, space*segLen)
				rng.Read(base)
				for _, tc := range idxCases {
					for _, overwrite := range []bool{false, true} {
						want := append([]byte(nil), base...)
						rp.ApplySegs(srcs, want, tc.idx, tc.delta, segLen, overwrite)
						for _, workers := range parWorkerCounts() {
							got := append([]byte(nil), base...)
							rp.ApplySegsParallel(srcs, got, tc.idx, tc.delta, segLen, overwrite, workers)
							if !bytes.Equal(got, want) {
								t.Fatalf("case=%s segLen=%d workers=%d overwrite=%v: parallel diverges from serial",
									tc.name, segLen, workers, overwrite)
							}
						}
					}
				}
			}
		})
	}
}

// Package gf256 implements arithmetic over the finite field GF(2^8).
//
// The field is constructed with the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the same polynomial used by the
// Jerasure and ISA-L libraries that back Ceph's Reed-Solomon plugins, so
// encodings produced here are bit-compatible with matrices built the same
// way over that polynomial.
//
// Addition and subtraction are XOR. Multiplication uses log/exp tables,
// and a full 256x256 product table accelerates the bulk slice operations
// that dominate encode/decode time.
package gf256

import (
	"encoding/binary"
	"fmt"
)

// Poly is the primitive polynomial (with the x^8 term implicit) used to
// construct the field.
const Poly = 0x1d

var (
	expTable [512]byte // expTable[i] = alpha^i, doubled to avoid mod 255 in Mul
	logTable [256]byte // logTable[x] = log_alpha(x), logTable[0] unused
	mulTable [256][256]byte
	invTable [256]byte
)

func init() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		expTable[i] = x
		logTable[x] = byte(i)
		// multiply x by alpha (= 2) in GF(2^8)
		carry := x&0x80 != 0
		x <<= 1
		if carry {
			x ^= Poly
		}
	}
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
	for a := 1; a < 256; a++ {
		la := int(logTable[a])
		for b := 1; b < 256; b++ {
			mulTable[a][b] = expTable[la+int(logTable[b])]
		}
		invTable[a] = expTable[255-la]
	}
}

// Add returns a+b in GF(2^8). Addition and subtraction coincide.
func Add(a, b byte) byte { return a ^ b }

// Mul returns the product a*b in GF(2^8).
func Mul(a, b byte) byte { return mulTable[a][b] }

// Inv returns the multiplicative inverse of a. It panics if a == 0,
// which indicates a logic error in the caller (singular matrix rows are
// rejected before inversion is attempted).
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return invTable[a]
}

// Div returns a/b in GF(2^8). It panics if b == 0.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])+255-int(logTable[b])]
}

// Exp returns alpha^n for n >= 0, where alpha=2 generates the
// multiplicative group.
func Exp(n int) byte { return expTable[n%255] }

// Log returns log_alpha(a). It panics if a == 0.
func Log(a byte) int {
	if a == 0 {
		panic("gf256: log of zero")
	}
	return int(logTable[a])
}

// Pow returns a**n in GF(2^8), with Pow(a, 0) == 1 for any a, and
// Pow(0, n) == 0 for n > 0.
func Pow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return expTable[(int(logTable[a])*n)%255]
}

// MulSlice sets dst[i] = c*src[i]. The slices must be the same length.
func MulSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic(fmt.Sprintf("gf256: slice length mismatch %d != %d", len(src), len(dst)))
	}
	switch c {
	case 0:
		clear(dst)
	case 1:
		copy(dst, src)
	default:
		if !simdMulAddSlice(c, src, dst, true) {
			mulSliceRef(c, src, dst)
		}
	}
}

// MulAddSlice sets dst[i] ^= c*src[i], the fused multiply-accumulate at the
// heart of matrix-based erasure coding. The slices must be the same length.
func MulAddSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic(fmt.Sprintf("gf256: slice length mismatch %d != %d", len(src), len(dst)))
	}
	switch c {
	case 0:
	case 1:
		xorWords(src, dst)
	default:
		if !simdMulAddSlice(c, src, dst, false) {
			mulAddSliceRef(c, src, dst)
		}
	}
}

// XorSlice sets dst[i] ^= src[i].
func XorSlice(src, dst []byte) {
	if len(src) != len(dst) {
		panic(fmt.Sprintf("gf256: slice length mismatch %d != %d", len(src), len(dst)))
	}
	xorWords(src, dst)
}

// xorWords XORs src into dst eight bytes at a time, falling back to bytes
// for the tail. Encoding and decoding are XOR-heavy (coefficient 1 rows,
// local parities), so the word-wide path matters.
func xorWords(src, dst []byte) {
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		v := binary.LittleEndian.Uint64(dst[i:]) ^ binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], v)
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= src[i]
	}
}

package gf256

import (
	"fmt"
	"os"
	"sync/atomic"
)

// Row-kernel backends, ordered from weakest to strongest. Dispatch picks
// the strongest backend the hardware (and build tags) support, and the
// chain degrades one tier at a time:
// gfni512 -> gfni -> avx2 -> word -> scalar.
//
//   - scalar:  byte-at-a-time product-table loop (the tail path).
//   - word:    pure-Go SWAR bit-plane Horner over 64-bit words.
//   - avx2:    split-nibble VPSHUFB row kernel, 32 bytes per step.
//   - gfni:    VGF2P8AFFINEQB row kernel, one affine multiply per 32 bytes.
//   - gfni512: zmm VGF2P8AFFINEQB, 64-byte strips with K-register masked
//     tails — no overlap window or scalar tail at any segment size.
//
// The amd64 assembly backends live behind the `purego` build tag; building
// with -tags purego (or running on another architecture) caps the chain at
// the word kernels. At runtime the ECFAULT_BACKEND environment variable
// caps the chain without rebuilding:
//
//	ECFAULT_BACKEND=gfni512|gfni|avx2|word|scalar
//
// Unrecognised values fail safe to the portable word kernels. A tier above
// what the hardware supports is a no-op (the hardware cap wins), so
// Backends() under ECFAULT_BACKEND enumerates exactly the forced tier and
// its fallbacks. ECFAULT_NOSIMD is kept as a legacy alias with the same
// value syntax (ECFAULT_NOSIMD=1 means "word"); ECFAULT_BACKEND wins when
// both are set.
const (
	backendScalar int32 = iota
	backendWord
	backendAVX2
	backendGFNI
	backendGFNI512
)

var backendNames = [...]string{"scalar", "word", "avx2", "gfni", "gfni512"}

// activeBackend is the backend RowPlan.Apply dispatches on. It is set in
// init from the hardware cap and ECFAULT_BACKEND/ECFAULT_NOSIMD, and
// mutated only by SetBackend (tests and benchmarks).
var activeBackend atomic.Int32

// maxBackend is the strongest backend this process may select: the
// hardware cap lowered by the environment override. Backends() and
// SetBackend enumerate from it, so a forced tier bounds what the identity
// sweeps and the CI backend matrix exercise. Written once in init.
var maxBackend int32

func init() {
	maxBackend = capBackend(hwBackend(), backendEnv())
	activeBackend.Store(maxBackend)
}

// backendEnv resolves the environment override: ECFAULT_BACKEND first,
// then the legacy ECFAULT_NOSIMD alias.
func backendEnv() string {
	if v := os.Getenv("ECFAULT_BACKEND"); v != "" {
		return v
	}
	return os.Getenv("ECFAULT_NOSIMD")
}

// backendLevel maps a backend name to its dispatch level.
func backendLevel(name string) (int32, bool) {
	for i, n := range backendNames {
		if n == name {
			return int32(i), true
		}
	}
	return 0, false
}

// capBackend applies the environment cap to the hardware backend.
func capBackend(hw int32, env string) int32 {
	cap := hw
	if env != "" {
		if lvl, ok := backendLevel(env); ok {
			cap = lvl
		} else {
			// "1", "true", and anything unrecognised all mean "no SIMD":
			// fail safe to the portable word kernels.
			cap = backendWord
		}
	}
	if cap > hw {
		cap = hw
	}
	return cap
}

// currentBackend returns the backend Apply dispatches on.
func currentBackend() int32 { return activeBackend.Load() }

// Backend returns the name of the active row-kernel backend: "gfni512",
// "gfni", "avx2", "word", or "scalar".
func Backend() string { return backendNames[currentBackend()] }

// Vectorized reports whether the active backend runs vector kernels with
// unaligned loads. Callers that pad or realign buffers purely to keep the
// word kernels on their aligned fast path (Clay's sub-chunk slots) can
// skip that work when this is true.
func Vectorized() bool { return currentBackend() >= backendAVX2 }

// Backends returns the names of every backend available in this build on
// this machine under the current environment cap, strongest first. The
// weaker tiers are always present: they are the fallback chain. Identity
// sweeps and fuzzers enumerate this list, so any new dispatch tier is
// covered automatically.
func Backends() []string {
	out := make([]string, 0, len(backendNames))
	for b := maxBackend; b >= backendScalar; b-- {
		out = append(out, backendNames[b])
	}
	return out
}

// StridedRunCap returns the run size (bytes) up to which the active
// backend's strided segment kernel keeps whole runs in single calls: the
// zmm kernel's masked tails make runs up to 4 KiB profitable, the ymm
// kernels cap at 1 KiB. Callers sizing batch gates (Clay's sub-chunk
// limits) key off it.
func StridedRunCap() int { return stridedRunCap(currentBackend()) }

// SetBackend forces the named backend and returns a function restoring the
// previous one. It errors if the backend is not available in this build on
// this machine. It is meant for tests and benchmarks comparing tiers; the
// swap is atomic but callers running concurrent kernels should not expect
// a mid-flight Apply to switch over.
func SetBackend(name string) (restore func(), err error) {
	for i, n := range backendNames {
		if n != name {
			continue
		}
		if int32(i) > maxBackend {
			return nil, fmt.Errorf("gf256: backend %q not available (have %q)", name, backendNames[maxBackend])
		}
		prev := activeBackend.Swap(int32(i))
		return func() { activeBackend.Store(prev) }, nil
	}
	return nil, fmt.Errorf("gf256: unknown backend %q", name)
}

package gf256

import (
	"fmt"
	"os"
	"sync/atomic"
)

// Row-kernel backends, ordered from weakest to strongest. Dispatch picks
// the strongest backend the hardware (and build tags) support, and the
// chain degrades one tier at a time: GFNI -> AVX2 -> word -> scalar.
//
//   - scalar: byte-at-a-time product-table loop (the tail path).
//   - word:   pure-Go SWAR bit-plane Horner over 64-bit words.
//   - avx2:   split-nibble VPSHUFB row kernel, 32 bytes per step.
//   - gfni:   VGF2P8AFFINEQB row kernel, one affine multiply per 32 bytes.
//
// The amd64 assembly backends live behind the `purego` build tag; building
// with -tags purego (or running on another architecture) caps the chain at
// the word kernels. At runtime the ECFAULT_NOSIMD environment variable
// lowers the cap without rebuilding:
//
//	ECFAULT_NOSIMD=avx2    disable GFNI, keep AVX2
//	ECFAULT_NOSIMD=word    disable all SIMD (also: 1, true, or any other value)
//	ECFAULT_NOSIMD=scalar  force the byte-at-a-time reference path
const (
	backendScalar int32 = iota
	backendWord
	backendAVX2
	backendGFNI
)

var backendNames = [...]string{"scalar", "word", "avx2", "gfni"}

// activeBackend is the backend RowPlan.Apply dispatches on. It is set in
// init from the hardware cap and ECFAULT_NOSIMD, and mutated only by
// SetBackend (tests and benchmarks).
var activeBackend atomic.Int32

func init() {
	activeBackend.Store(capBackend(hwBackend(), os.Getenv("ECFAULT_NOSIMD")))
}

// capBackend applies the ECFAULT_NOSIMD cap to the hardware backend.
func capBackend(hw int32, env string) int32 {
	cap := hw
	switch env {
	case "":
		// no cap
	case "gfni":
		cap = backendGFNI
	case "avx2":
		cap = backendAVX2
	case "scalar":
		cap = backendScalar
	default:
		// "1", "true", "word", and anything unrecognised all mean
		// "no SIMD": fail safe to the portable word kernels.
		cap = backendWord
	}
	if cap > hw {
		cap = hw
	}
	return cap
}

// currentBackend returns the backend Apply dispatches on.
func currentBackend() int32 { return activeBackend.Load() }

// Backend returns the name of the active row-kernel backend: "gfni",
// "avx2", "word", or "scalar".
func Backend() string { return backendNames[currentBackend()] }

// Vectorized reports whether the active backend runs vector kernels with
// unaligned loads. Callers that pad or realign buffers purely to keep the
// word kernels on their aligned fast path (Clay's sub-chunk slots) can
// skip that work when this is true.
func Vectorized() bool { return currentBackend() >= backendAVX2 }

// Backends returns the names of every backend available in this build on
// this machine, strongest first. The weaker tiers are always present: they
// are the fallback chain.
func Backends() []string {
	out := make([]string, 0, 4)
	for b := hwBackend(); b >= backendScalar; b-- {
		out = append(out, backendNames[b])
	}
	return out
}

// SetBackend forces the named backend and returns a function restoring the
// previous one. It errors if the backend is not available in this build on
// this machine. It is meant for tests and benchmarks comparing tiers; the
// swap is atomic but callers running concurrent kernels should not expect
// a mid-flight Apply to switch over.
func SetBackend(name string) (restore func(), err error) {
	for i, n := range backendNames {
		if n != name {
			continue
		}
		if int32(i) > hwBackend() {
			return nil, fmt.Errorf("gf256: backend %q not available (have %q)", name, backendNames[hwBackend()])
		}
		prev := activeBackend.Swap(int32(i))
		return func() { activeBackend.Store(prev) }, nil
	}
	return nil, fmt.Errorf("gf256: unknown backend %q", name)
}

package gf256

import (
	"bytes"
	"fmt"
	"testing"
)

// forceBackend switches the active backend for one subtest, restoring on
// cleanup. Tests using it must not run in parallel.
func forceBackend(t *testing.T, name string) {
	t.Helper()
	restore, err := SetBackend(name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(restore)
}

func TestBackendReporting(t *testing.T) {
	avail := Backends()
	if len(avail) < 2 || avail[len(avail)-1] != "scalar" || avail[len(avail)-2] != "word" {
		t.Fatalf("fallback chain missing from Backends(): %v", avail)
	}
	found := false
	for _, b := range avail {
		if b == Backend() {
			found = true
		}
	}
	if !found {
		t.Fatalf("active backend %q not in available set %v", Backend(), avail)
	}
	if _, err := SetBackend("no-such-backend"); err == nil {
		t.Fatal("SetBackend accepted an unknown backend")
	}
}

func TestSetBackendRestores(t *testing.T) {
	was := Backend()
	restore, err := SetBackend("word")
	if err != nil {
		t.Fatal(err)
	}
	if Backend() != "word" {
		t.Fatalf("SetBackend(word) left backend %q", Backend())
	}
	restore()
	if Backend() != was {
		t.Fatalf("restore left backend %q, want %q", Backend(), was)
	}
}

func TestCapBackend(t *testing.T) {
	cases := []struct {
		hw   int32
		env  string
		want int32
	}{
		{backendGFNI, "", backendGFNI},
		{backendGFNI, "avx2", backendAVX2},
		{backendGFNI, "gfni", backendGFNI},
		{backendGFNI, "1", backendWord},
		{backendGFNI, "true", backendWord},
		{backendGFNI, "word", backendWord},
		{backendGFNI, "scalar", backendScalar},
		{backendGFNI, "garbage", backendWord},
		{backendAVX2, "gfni", backendAVX2}, // cap above hardware is a no-op
		{backendWord, "", backendWord},
		{backendWord, "avx2", backendWord},
		{backendGFNI512, "", backendGFNI512},
		{backendGFNI512, "gfni512", backendGFNI512},
		{backendGFNI512, "gfni", backendGFNI},
		{backendGFNI512, "avx2", backendAVX2},
		{backendGFNI512, "word", backendWord},
		{backendGFNI512, "1", backendWord},
		{backendGFNI, "gfni512", backendGFNI}, // cap above hardware is a no-op
	}
	for _, c := range cases {
		if got := capBackend(c.hw, c.env); got != c.want {
			t.Errorf("capBackend(%s, %q) = %s, want %s",
				backendNames[c.hw], c.env, backendNames[got], backendNames[c.want])
		}
	}
}

func TestBackendEnvPrecedence(t *testing.T) {
	t.Setenv("ECFAULT_BACKEND", "avx2")
	t.Setenv("ECFAULT_NOSIMD", "scalar")
	if got := backendEnv(); got != "avx2" {
		t.Fatalf("ECFAULT_BACKEND should win over ECFAULT_NOSIMD, got %q", got)
	}
	t.Setenv("ECFAULT_BACKEND", "")
	if got := backendEnv(); got != "scalar" {
		t.Fatalf("ECFAULT_NOSIMD alias not honoured, got %q", got)
	}
}

// backendRowCases are the coefficient rows the identity tests sweep:
// zero rows, identity rows, mixes of 0/1 with general coefficients, and
// dense high-bit rows.
var backendRowCases = [][]byte{
	{0},
	{1},
	{2},
	{0x8e},
	{0, 0, 0},
	{1, 1, 1, 1},
	{0, 1, 2, 0x53},
	{0xff, 0xfe, 0x80, 0x1d, 1, 0, 29},
	{7, 0, 0, 1, 113, 214, 0xaa, 0x55, 3, 99, 250, 17},
}

// TestBackendsRowIdentity requires every available backend to produce
// byte-identical row-kernel output across fuzzed lengths, operand
// alignments 0-7, and accumulate/overwrite modes. The reference is the
// bit-by-bit refMul oracle, independent of tables and kernels.
func TestBackendsRowIdentity(t *testing.T) {
	lengths := []int{0, 1, 7, 8, 19, 31, 32, 33, 50, 63, 64, 65, 127, 200, 1024, 4096 + 21}
	for _, backend := range Backends() {
		t.Run(backend, func(t *testing.T) {
			forceBackend(t, backend)
			for _, coeffs := range backendRowCases {
				rp := CompileRow(coeffs)
				for _, n := range lengths {
					for _, align := range []int{0, 1, 3, 7} {
						for _, overwrite := range []bool{false, true} {
							checkRowIdentity(t, rp, coeffs, n, align, overwrite)
						}
					}
				}
			}
		})
	}
}

func checkRowIdentity(t *testing.T, rp *RowPlan, coeffs []byte, n, align int, overwrite bool) {
	t.Helper()
	srcs := make([][]byte, len(coeffs))
	for j := range srcs {
		backing := make([]byte, n+8)
		s := backing[align : align+n]
		for i := range s {
			s[i] = byte(i*13 + j*101 + 7)
		}
		srcs[j] = s
	}
	dstBacking := make([]byte, n+8)
	dst := dstBacking[align : align+n]
	want := make([]byte, n)
	for i := range dst {
		dst[i] = byte(i*29 + 3)
		want[i] = dst[i]
	}
	if overwrite {
		clear(want)
	}
	for j, c := range coeffs {
		for i := range want {
			want[i] ^= refMul(c, srcs[j][i])
		}
	}
	rp.Apply(srcs, dst, 0, n, overwrite)
	if !bytes.Equal(dst, want) {
		i := 0
		for ; dst[i] == want[i]; i++ {
		}
		t.Fatalf("row %v len=%d align=%d overwrite=%v: byte %d = %#x, want %#x",
			coeffs, n, align, overwrite, i, dst[i], want[i])
	}
}

// TestBackendsSliceIdentity covers the single-coefficient MulSlice /
// MulAddSlice entries (used by LRC locals and Clay's direct path) across
// backends, lengths, and alignments.
func TestBackendsSliceIdentity(t *testing.T) {
	lengths := []int{0, 1, 31, 32, 33, 50, 64, 100, 1000}
	for _, backend := range Backends() {
		t.Run(backend, func(t *testing.T) {
			forceBackend(t, backend)
			for _, c := range []byte{0, 1, 2, 29, 0x8e, 0xff} {
				for _, n := range lengths {
					for _, align := range []int{0, 5} {
						backing := make([]byte, n+8)
						src := backing[align : align+n]
						for i := range src {
							src[i] = byte(i*7 + 11)
						}
						addDst := make([]byte, n)
						mulDst := make([]byte, n)
						wantAdd := make([]byte, n)
						wantMul := make([]byte, n)
						for i := range addDst {
							addDst[i] = byte(i + 1)
							wantAdd[i] = addDst[i] ^ refMul(c, src[i])
							wantMul[i] = refMul(c, src[i])
						}
						MulAddSlice(c, src, addDst)
						MulSlice(c, src, mulDst)
						if !bytes.Equal(addDst, wantAdd) {
							t.Fatalf("MulAddSlice(c=%#x, n=%d, align=%d) diverges", c, n, align)
						}
						if !bytes.Equal(mulDst, wantMul) {
							t.Fatalf("MulSlice(c=%#x, n=%d, align=%d) diverges", c, n, align)
						}
					}
				}
			}
		})
	}
}

// TestBackendsApplyRanges checks that split Apply ranges (the parallel
// executor's contract) stay byte-identical to one pass on every backend,
// with cuts that strand sub-vector tails in the middle of the stripe.
func TestBackendsApplyRanges(t *testing.T) {
	coeffs := []byte{3, 0, 1, 0x9c, 77}
	n := 1000
	for _, backend := range Backends() {
		t.Run(backend, func(t *testing.T) {
			forceBackend(t, backend)
			rp := CompileRow(coeffs)
			srcs := make([][]byte, len(coeffs))
			for j := range srcs {
				srcs[j] = make([]byte, n)
				for i := range srcs[j] {
					srcs[j][i] = byte(i ^ (j * 37))
				}
			}
			serial := make([]byte, n)
			rp.Apply(srcs, serial, 0, n, true)
			for _, cuts := range [][]int{{500}, {33}, {1, 999}, {31, 65, 800}} {
				split := make([]byte, n)
				prev := 0
				for _, cut := range append(cuts, n) {
					rp.Apply(srcs, split, prev, cut, true)
					prev = cut
				}
				if !bytes.Equal(split, serial) {
					t.Fatalf("cuts %v: split apply differs from serial", cuts)
				}
			}
		})
	}
}

func BenchmarkBackendsMulAddRow(b *testing.B) {
	coeffs := []byte{2, 29, 113, 0x8e, 7, 250, 99, 1, 173}
	for _, backend := range Backends() {
		restore, err := SetBackend(backend)
		if err != nil {
			b.Fatal(err)
		}
		for _, n := range []int{4 << 10, 64 << 10} {
			srcs := make([][]byte, len(coeffs))
			for j := range srcs {
				srcs[j] = make([]byte, n)
			}
			dst := make([]byte, n)
			rp := CompileRow(coeffs)
			b.Run(fmt.Sprintf("%s/%dKiB", backend, n>>10), func(b *testing.B) {
				b.SetBytes(int64(n * len(coeffs)))
				for i := 0; i < b.N; i++ {
					rp.MulAdd(srcs, dst)
				}
			})
		}
		restore()
	}
}

package gf256

import (
	"testing"
	"testing/quick"
)

func TestAddIsXor(t *testing.T) {
	if Add(0x53, 0xCA) != 0x53^0xCA {
		t.Fatalf("Add(0x53,0xCA) = %#x", Add(0x53, 0xCA))
	}
}

// refMul is a bit-by-bit "Russian peasant" multiplication modulo the field
// polynomial, used as an independent oracle for the table-based Mul.
func refMul(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		carry := a&0x80 != 0
		a <<= 1
		if carry {
			a ^= Poly
		}
		b >>= 1
	}
	return p
}

func TestMulKnownValues(t *testing.T) {
	cases := []struct{ a, b, want byte }{
		{0, 0, 0},
		{0, 7, 0},
		{1, 7, 7},
		{2, 2, 4},
		{0x80, 2, 0x1d}, // overflow wraps through the polynomial
	}
	for _, c := range cases {
		if got := Mul(c.a, c.b); got != c.want {
			t.Errorf("Mul(%#x,%#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
	}
}

func TestMulMatchesReference(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if Mul(byte(a), byte(b)) != refMul(byte(a), byte(b)) {
				t.Fatalf("Mul(%#x,%#x) diverges from reference", a, b)
			}
		}
	}
}

func TestMulCommutative(t *testing.T) {
	f := func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulAssociative(t *testing.T) {
	f := func(a, b, c byte) bool { return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistributive(t *testing.T) {
	f := func(a, b, c byte) bool { return Mul(a, b^c) == Mul(a, b)^Mul(a, c) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInverse(t *testing.T) {
	for a := 1; a < 256; a++ {
		inv := Inv(byte(a))
		if Mul(byte(a), inv) != 1 {
			t.Fatalf("Inv(%#x) = %#x but product != 1", a, inv)
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestDiv(t *testing.T) {
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Mul(Div(a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	Div(3, 0)
}

func TestExpLogRoundTrip(t *testing.T) {
	for a := 1; a < 256; a++ {
		if Exp(Log(byte(a))) != byte(a) {
			t.Fatalf("Exp(Log(%#x)) != %#x", a, a)
		}
	}
}

func TestExpGeneratesWholeGroup(t *testing.T) {
	seen := map[byte]bool{}
	for i := 0; i < 255; i++ {
		seen[Exp(i)] = true
	}
	if len(seen) != 255 {
		t.Fatalf("alpha generates %d elements, want 255", len(seen))
	}
	if seen[0] {
		t.Fatal("alpha^i produced zero")
	}
}

func TestPow(t *testing.T) {
	if Pow(0, 0) != 1 || Pow(5, 0) != 1 {
		t.Fatal("x^0 must be 1")
	}
	if Pow(0, 3) != 0 {
		t.Fatal("0^n must be 0 for n>0")
	}
	f := func(a byte, nRaw uint8) bool {
		n := int(nRaw%10) + 1
		want := byte(1)
		for i := 0; i < n; i++ {
			want = Mul(want, a)
		}
		return Pow(a, n) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulAddSlice(t *testing.T) {
	src := []byte{1, 2, 3, 0xff, 0x80}
	dst := []byte{9, 8, 7, 6, 5}
	want := make([]byte, len(src))
	for i := range src {
		want[i] = dst[i] ^ Mul(0x1b, src[i])
	}
	MulAddSlice(0x1b, src, dst)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("index %d: got %#x want %#x", i, dst[i], want[i])
		}
	}
}

func TestMulAddSliceSpecialCoefficients(t *testing.T) {
	src := []byte{1, 2, 3}
	dst := []byte{4, 5, 6}
	MulAddSlice(0, src, dst) // no-op
	if dst[0] != 4 || dst[1] != 5 || dst[2] != 6 {
		t.Fatal("c=0 must not modify dst")
	}
	MulAddSlice(1, src, dst) // pure xor
	if dst[0] != 5 || dst[1] != 7 || dst[2] != 5 {
		t.Fatalf("c=1 xor wrong: %v", dst)
	}
}

func TestSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	MulAddSlice(2, []byte{1}, []byte{1, 2})
}

func TestMulSlice(t *testing.T) {
	src := []byte{0, 1, 2, 0xaa}
	dst := make([]byte, 4)
	MulSlice(3, src, dst)
	for i := range src {
		if dst[i] != Mul(3, src[i]) {
			t.Fatalf("index %d mismatch", i)
		}
	}
}

func TestXorSlice(t *testing.T) {
	a := []byte{1, 2, 3}
	b := []byte{7, 7, 7}
	XorSlice(a, b)
	if b[0] != 6 || b[1] != 5 || b[2] != 4 {
		t.Fatalf("XorSlice wrong: %v", b)
	}
}

func TestXorWordsAllLengths(t *testing.T) {
	// Word-wide XOR must agree with the byte loop at every length and
	// alignment tail.
	for n := 0; n < 64; n++ {
		src := make([]byte, n)
		dst := make([]byte, n)
		want := make([]byte, n)
		for i := 0; i < n; i++ {
			src[i] = byte(i*13 + 7)
			dst[i] = byte(i * 31)
			want[i] = dst[i] ^ src[i]
		}
		XorSlice(src, dst)
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("len %d index %d: got %#x want %#x", n, i, dst[i], want[i])
			}
		}
	}
}

func BenchmarkXorSlice(b *testing.B) {
	src := make([]byte, 64*1024)
	dst := make([]byte, 64*1024)
	for i := range src {
		src[i] = byte(i)
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		XorSlice(src, dst)
	}
}

func BenchmarkMulAddSlice(b *testing.B) {
	src := make([]byte, 64*1024)
	dst := make([]byte, 64*1024)
	for i := range src {
		src[i] = byte(i * 7)
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAddSlice(0x8e, src, dst)
	}
}

package gf256

import (
	"encoding/binary"
	"unsafe"
)

// Word-wide row kernels.
//
// The scalar loops in gf256.go process one byte per step through the full
// 256x256 product table; they already run near one byte per cycle and are
// the wall any per-byte table scheme hits in pure Go (the ISA-L/SIMD
// split-nibble technique needs a byte-shuffle instruction to pay off —
// emulated nibble lookups in scalar code are slower than the byte table).
//
// The kernels here restructure the algebra instead of the table. A
// matrix-row application computes
//
//	dst ^= c_0*src_0 ^ c_1*src_1 ^ ... ^ c_{k-1}*src_{k-1}
//
// and every coefficient is a sum of powers of two: c = Σ_b bit_b(c)·2^b.
// Because GF(2^8) addition is XOR and multiplication distributes, the row
// sum regroups by bit plane:
//
//	Σ_j c_j·v_j  =  Σ_b 2^b · ( XOR of v_j over j with bit b set in c_j )
//
// Multiplying a whole 64-bit word of packed field elements by 2 is six
// scalar ops (shift + carry fold of the 0x1d polynomial, SWAR-style), so
// the per-word work becomes a Horner descent over the eight bit planes —
// one doubling pass plus the plane's XORs — instead of one table lookup
// per byte per source. Eight bytes advance per step, the L1-resident
// accumulator band is the only intermediate, and the destination is
// touched once per word regardless of row width.
//
// When every operand is 8-byte aligned the kernels run over []uint64
// views of the shard buffers (the same technique crypto/subtle.XORBytes
// uses); equal-length guards ahead of the loops let the compiler drop the
// per-word bounds checks. Unaligned operands take an equivalent
// byte-slice path. The SWAR doubling only moves bits within byte lanes,
// so the word view is correct for either endianness.
//
// CompileRow turns a coefficient row into its bit-plane lists once;
// MulAddRow is the convenience entry that compiles and runs in one call.
// The erasure kernel package compiles whole matrices into RowPlan programs
// and adds banding across outputs and worker fan-out.

// bandWords is the accumulator band size in 64-bit words (2 KiB), chosen
// so the accumulator plus a dozen source bands stay L1-resident.
const bandWords = 256

const bandBytes = bandWords * 8

// mul2x8 multiplies each of the eight packed GF(2^8) elements in v by 2:
// shift every byte left one bit and fold the carry bits back with the
// field polynomial 0x1d. Every operation stays within its byte lane.
func mul2x8(v uint64) uint64 {
	hi := v & 0x8080808080808080
	return ((v ^ hi) << 1) ^ ((hi >> 7) * Poly)
}

// wordView returns b viewed as machine words when b is 8-byte aligned,
// nil otherwise. The view shares b's backing array.
func wordView(b []byte) []uint64 {
	if len(b) < 8 {
		return nil
	}
	p := unsafe.Pointer(unsafe.SliceData(b))
	if uintptr(p)&7 != 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(p), len(b)/8)
}

// RowPlan is a coefficient row compiled into bit-plane form, ready to be
// applied to source slices. A RowPlan is immutable after CompileRow and
// safe for concurrent use.
type RowPlan struct {
	coeffs []byte     // original row, for the scalar tail
	bits   [8][]int32 // bits[b] = source indices with bit b set, b = 0 is LSB
	maxBit int        // highest b with a non-empty list, -1 if the row is zero

	// SIMD program: the non-zero columns in source order, plus their
	// per-coefficient kernel constants packed contiguously for the
	// assembly inner loop (64-byte split-nibble tables for AVX2, 8-byte
	// affine matrices for GFNI). Empty off amd64 / under purego.
	nzSrc []int32
	nzTbl []byte
	nzMat []uint64
}

// CompileRow compiles a coefficient row. Zero coefficients vanish from the
// program; a pure-XOR row (all coefficients 0 or 1) compiles to a single
// bit-plane with no doubling passes.
func CompileRow(coeffs []byte) *RowPlan {
	rp := &RowPlan{coeffs: append([]byte(nil), coeffs...), maxBit: -1}
	for j, c := range coeffs {
		if c != 0 {
			rp.nzSrc = append(rp.nzSrc, int32(j))
		}
		for b := 0; b < 8; b++ {
			if c>>b&1 == 1 {
				rp.bits[b] = append(rp.bits[b], int32(j))
				if b > rp.maxBit {
					rp.maxBit = b
				}
			}
		}
	}
	simdCompile(rp)
	return rp
}

// Width returns the number of source slots the plan was compiled for.
func (rp *RowPlan) Width() int { return len(rp.coeffs) }

// MulAdd computes dst[i] ^= Σ_j coeffs[j]*srcs[j][i] over the whole
// destination. Sources under zero coefficients may be nil; all others must
// match len(dst).
func (rp *RowPlan) MulAdd(srcs [][]byte, dst []byte) {
	rp.Apply(srcs, dst, 0, len(dst), false)
}

// Mul is MulAdd with overwrite semantics: dst[i] = Σ_j coeffs[j]*srcs[j][i].
func (rp *RowPlan) Mul(srcs [][]byte, dst []byte) {
	rp.Apply(srcs, dst, 0, len(dst), true)
}

// Apply runs the plan over dst[off:end) (overwrite or accumulate). Ranges
// from concurrent Apply calls may interleave freely as long as they do not
// overlap; results are byte-identical to a single serial pass because
// every output byte depends only on the same byte offset of the sources.
func (rp *RowPlan) Apply(srcs [][]byte, dst []byte, off, end int, overwrite bool) {
	if len(srcs) != len(rp.coeffs) {
		panic("gf256: RowPlan source count mismatch")
	}
	for j, c := range rp.coeffs {
		if c != 0 && len(srcs[j]) != len(dst) {
			panic("gf256: slice length mismatch in RowPlan")
		}
	}
	if off < 0 || end > len(dst) || off > end {
		panic("gf256: RowPlan range out of bounds")
	}
	if rp.maxBit < 0 { // zero row
		if overwrite {
			clear(dst[off:end])
		}
		return
	}
	switch b := currentBackend(); {
	case b >= backendAVX2:
		// SIMD loads are unaligned, so every operand layout takes this
		// path; only the sub-32-byte remainder is scalar.
		rp.applySIMD(srcs, dst, off, end, overwrite, b)
		return
	case b == backendScalar:
		rp.tail(srcs, dst, off, end, overwrite)
		return
	}
	// Word path: all operands must be 8-byte aligned. Shard buffers come
	// from make([]byte, ...), which the allocator aligns, so in practice
	// only odd sub-chunk offsets (e.g. Clay sub-slices) fall back.
	dw := wordView(dst)
	if dw != nil && end-off >= 8 {
		// Keep the view table on the stack for typical row widths.
		var viewBuf [16][]uint64
		var views [][]uint64
		if len(srcs) <= len(viewBuf) {
			views = viewBuf[:len(srcs)]
		} else {
			views = make([][]uint64, len(srcs))
		}
		ok := true
		for j, c := range rp.coeffs {
			if c == 0 {
				continue
			}
			if views[j] = wordView(srcs[j]); views[j] == nil {
				ok = false
				break
			}
		}
		if ok {
			// Align the start to a word boundary, run the word kernels,
			// finish the sub-word remainder with the scalar tail.
			head := (8 - off%8) % 8
			rp.tail(srcs, dst, off, off+head, overwrite)
			off += head
			woff, wend := off/8, end/8
			rp.applyWords(views, dw, woff, wend, overwrite)
			rp.tail(srcs, dst, wend*8, end, overwrite)
			return
		}
	}
	rp.applySlices(srcs, dst, off, end, overwrite)
}

// applyWords runs the banded Horner descent over word views, covering
// destination words [woff, wend).
func (rp *RowPlan) applyWords(views [][]uint64, dst []uint64, woff, wend int, overwrite bool) {
	var acc [bandWords]uint64
	for woff < wend {
		nw := wend - woff
		if nw > bandWords {
			nw = bandWords
		}
		a := acc[:nw]
		first := true
		for b := rp.maxBit; b >= 0; b-- {
			list := rp.bits[b]
			i := 0
			for i == 0 || i < len(list) {
				g := len(list) - i
				if g > 4 {
					g = 4
				}
				stepWords(a, views, list[i:i+g], woff, i == 0 && !first, first && i == 0)
				if g == 0 {
					break
				}
				i += g
				first = false
			}
		}
		mergeWords(a, dst[woff:woff+nw], overwrite)
		woff += nw
	}
}

// stepWords advances one accumulator band pass: optionally doubles acc,
// then XORs in up to four source bands. init overwrites acc instead of
// accumulating (the first pass of a band). The equal-length guards ahead
// of each loop let the compiler prove every index in bounds.
func stepWords(acc []uint64, views [][]uint64, list []int32, woff int, double, init bool) {
	nw := len(acc)
	switch len(list) {
	case 0:
		if init {
			clear(acc)
			return
		}
		if double {
			for w := range acc {
				acc[w] = mul2x8(acc[w])
			}
		}
	case 1:
		a := views[list[0]][woff : woff+nw : woff+nw]
		if len(a) != len(acc) {
			panic("gf256: step operand length mismatch")
		}
		switch {
		case init:
			copy(acc, a)
		case double:
			for w := range acc {
				acc[w] = mul2x8(acc[w]) ^ a[w]
			}
		default:
			for w := range acc {
				acc[w] ^= a[w]
			}
		}
	case 2:
		a := views[list[0]][woff : woff+nw : woff+nw]
		b := views[list[1]][woff : woff+nw : woff+nw]
		if len(a) != len(acc) || len(b) != len(acc) {
			panic("gf256: step operand length mismatch")
		}
		switch {
		case init:
			for w := range acc {
				acc[w] = a[w] ^ b[w]
			}
		case double:
			for w := range acc {
				acc[w] = mul2x8(acc[w]) ^ a[w] ^ b[w]
			}
		default:
			for w := range acc {
				acc[w] ^= a[w] ^ b[w]
			}
		}
	case 3:
		a := views[list[0]][woff : woff+nw : woff+nw]
		b := views[list[1]][woff : woff+nw : woff+nw]
		c := views[list[2]][woff : woff+nw : woff+nw]
		if len(a) != len(acc) || len(b) != len(acc) || len(c) != len(acc) {
			panic("gf256: step operand length mismatch")
		}
		switch {
		case init:
			for w := range acc {
				acc[w] = a[w] ^ b[w] ^ c[w]
			}
		case double:
			for w := range acc {
				acc[w] = mul2x8(acc[w]) ^ a[w] ^ b[w] ^ c[w]
			}
		default:
			for w := range acc {
				acc[w] ^= a[w] ^ b[w] ^ c[w]
			}
		}
	default:
		a := views[list[0]][woff : woff+nw : woff+nw]
		b := views[list[1]][woff : woff+nw : woff+nw]
		c := views[list[2]][woff : woff+nw : woff+nw]
		d := views[list[3]][woff : woff+nw : woff+nw]
		if len(a) != len(acc) || len(b) != len(acc) || len(c) != len(acc) || len(d) != len(acc) {
			panic("gf256: step operand length mismatch")
		}
		switch {
		case init:
			for w := range acc {
				acc[w] = a[w] ^ b[w] ^ c[w] ^ d[w]
			}
		case double:
			for w := range acc {
				acc[w] = mul2x8(acc[w]) ^ a[w] ^ b[w] ^ c[w] ^ d[w]
			}
		default:
			for w := range acc {
				acc[w] ^= a[w] ^ b[w] ^ c[w] ^ d[w]
			}
		}
	}
}

// mergeWords moves the finished accumulator band into the destination.
func mergeWords(acc []uint64, dst []uint64, overwrite bool) {
	if len(dst) != len(acc) {
		panic("gf256: merge length mismatch")
	}
	if overwrite {
		copy(dst, acc)
		return
	}
	for w := range acc {
		dst[w] ^= acc[w]
	}
}

// applySlices is the byte-slice fallback for unaligned operands: the same
// banded Horner descent reading sources through encoding/binary.
func (rp *RowPlan) applySlices(srcs [][]byte, dst []byte, off, end int, overwrite bool) {
	var acc [bandWords]uint64
	for off+8 <= end {
		n := end - off
		if n > bandBytes {
			n = bandBytes
		}
		nw := n / 8
		first := true
		for b := rp.maxBit; b >= 0; b-- {
			list := rp.bits[b]
			i := 0
			for i == 0 || i < len(list) {
				g := len(list) - i
				if g > 4 {
					g = 4
				}
				stepSlices(&acc, srcs, list[i:i+g], off, nw, i == 0 && !first, first && i == 0)
				if g == 0 {
					break
				}
				i += g
				first = false
			}
		}
		mergeSlices(&acc, dst[off:off+nw*8], overwrite)
		off += nw * 8
	}
	rp.tail(srcs, dst, off, end, overwrite)
}

// stepSlices is stepWords reading byte slices via encoding/binary.
func stepSlices(acc *[bandWords]uint64, srcs [][]byte, list []int32, off, nw int, double, init bool) {
	switch len(list) {
	case 0:
		if init {
			clear(acc[:nw])
			return
		}
		if double {
			for w := range acc[:nw] {
				acc[w] = mul2x8(acc[w])
			}
		}
	case 1:
		a := srcs[list[0]][off : off+nw*8 : off+nw*8]
		w := 0
		switch {
		case init:
			for i := 0; i+8 <= len(a); i += 8 {
				acc[w] = binary.LittleEndian.Uint64(a[i:])
				w++
			}
		case double:
			for i := 0; i+8 <= len(a); i += 8 {
				acc[w] = mul2x8(acc[w]) ^ binary.LittleEndian.Uint64(a[i:])
				w++
			}
		default:
			for i := 0; i+8 <= len(a); i += 8 {
				acc[w] ^= binary.LittleEndian.Uint64(a[i:])
				w++
			}
		}
	case 2:
		a := srcs[list[0]][off : off+nw*8 : off+nw*8]
		b := srcs[list[1]][off : off+nw*8 : off+nw*8]
		w := 0
		switch {
		case init:
			for i := 0; i+8 <= len(a); i += 8 {
				acc[w] = binary.LittleEndian.Uint64(a[i:]) ^ binary.LittleEndian.Uint64(b[i:])
				w++
			}
		case double:
			for i := 0; i+8 <= len(a); i += 8 {
				acc[w] = mul2x8(acc[w]) ^ binary.LittleEndian.Uint64(a[i:]) ^ binary.LittleEndian.Uint64(b[i:])
				w++
			}
		default:
			for i := 0; i+8 <= len(a); i += 8 {
				acc[w] ^= binary.LittleEndian.Uint64(a[i:]) ^ binary.LittleEndian.Uint64(b[i:])
				w++
			}
		}
	case 3:
		a := srcs[list[0]][off : off+nw*8 : off+nw*8]
		b := srcs[list[1]][off : off+nw*8 : off+nw*8]
		c := srcs[list[2]][off : off+nw*8 : off+nw*8]
		w := 0
		switch {
		case init:
			for i := 0; i+8 <= len(a); i += 8 {
				acc[w] = binary.LittleEndian.Uint64(a[i:]) ^ binary.LittleEndian.Uint64(b[i:]) ^ binary.LittleEndian.Uint64(c[i:])
				w++
			}
		case double:
			for i := 0; i+8 <= len(a); i += 8 {
				acc[w] = mul2x8(acc[w]) ^ binary.LittleEndian.Uint64(a[i:]) ^ binary.LittleEndian.Uint64(b[i:]) ^ binary.LittleEndian.Uint64(c[i:])
				w++
			}
		default:
			for i := 0; i+8 <= len(a); i += 8 {
				acc[w] ^= binary.LittleEndian.Uint64(a[i:]) ^ binary.LittleEndian.Uint64(b[i:]) ^ binary.LittleEndian.Uint64(c[i:])
				w++
			}
		}
	default:
		a := srcs[list[0]][off : off+nw*8 : off+nw*8]
		b := srcs[list[1]][off : off+nw*8 : off+nw*8]
		c := srcs[list[2]][off : off+nw*8 : off+nw*8]
		d := srcs[list[3]][off : off+nw*8 : off+nw*8]
		w := 0
		switch {
		case init:
			for i := 0; i+8 <= len(a); i += 8 {
				acc[w] = binary.LittleEndian.Uint64(a[i:]) ^ binary.LittleEndian.Uint64(b[i:]) ^
					binary.LittleEndian.Uint64(c[i:]) ^ binary.LittleEndian.Uint64(d[i:])
				w++
			}
		case double:
			for i := 0; i+8 <= len(a); i += 8 {
				acc[w] = mul2x8(acc[w]) ^ binary.LittleEndian.Uint64(a[i:]) ^ binary.LittleEndian.Uint64(b[i:]) ^
					binary.LittleEndian.Uint64(c[i:]) ^ binary.LittleEndian.Uint64(d[i:])
				w++
			}
		default:
			for i := 0; i+8 <= len(a); i += 8 {
				acc[w] ^= binary.LittleEndian.Uint64(a[i:]) ^ binary.LittleEndian.Uint64(b[i:]) ^
					binary.LittleEndian.Uint64(c[i:]) ^ binary.LittleEndian.Uint64(d[i:])
				w++
			}
		}
	}
}

// mergeSlices moves the finished accumulator band into the destination.
func mergeSlices(acc *[bandWords]uint64, dst []byte, overwrite bool) {
	w := 0
	if overwrite {
		for i := 0; i+8 <= len(dst); i += 8 {
			binary.LittleEndian.PutUint64(dst[i:], acc[w])
			w++
		}
		return
	}
	for i := 0; i+8 <= len(dst); i += 8 {
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^acc[w])
		w++
	}
}

// tail finishes sub-word ranges with the scalar table.
func (rp *RowPlan) tail(srcs [][]byte, dst []byte, off, end int, overwrite bool) {
	for i := off; i < end; i++ {
		var acc byte
		for j, c := range rp.coeffs {
			if c == 0 {
				continue
			}
			acc ^= mulTable[c][srcs[j][i]]
		}
		if overwrite {
			dst[i] = acc
		} else {
			dst[i] ^= acc
		}
	}
}

// MulAddRow computes dst[i] ^= Σ_j coeffs[j]*srcs[j][i], the fused form of
// applying one generator-matrix row to a set of source shards: one pass
// over the destination regardless of row width. Sources under zero
// coefficients may be nil; all others must match len(dst). Callers
// applying the same row repeatedly should CompileRow once instead.
func MulAddRow(coeffs []byte, srcs [][]byte, dst []byte) {
	if len(coeffs) != len(srcs) {
		panic("gf256: coeffs/srcs length mismatch")
	}
	CompileRow(coeffs).MulAdd(srcs, dst)
}

// mulAddSliceRef is the scalar byte-at-a-time loop behind MulAddSlice.
func mulAddSliceRef(c byte, src, dst []byte) {
	mt := &mulTable[c]
	for i, s := range src {
		dst[i] ^= mt[s]
	}
}

// mulSliceRef is the scalar byte-at-a-time loop behind MulSlice.
func mulSliceRef(c byte, src, dst []byte) {
	mt := &mulTable[c]
	for i, s := range src {
		dst[i] = mt[s]
	}
}

//go:build amd64 && !purego

#include "textflag.h"

// AVX-512 GFNI strided segment kernel with per-operand geometry: count
// segments of segn bytes; after each segment the destination pointer
// advances dstride bytes and source pointer j advances strides[j] bytes
// (a zero stride re-reads the same window — virtual zero shards, or a
// compact buffer walked at a different pace than the shard space). The
// segment interior runs in full 64-byte zmm strips; the segn % 64 tail is
// finished with K-masked loads and a masked store, computed once per call
// since segn is uniform. Any segn >= 1 therefore stays fully in-kernel.
//
// The source pointer array is advanced in place and left clobbered.
// Pointers are only advanced while further segments remain, so every
// element always points inside a segment the caller bounds-checked —
// never one-past-the-end — keeping the array safe under GC stack scans.
//
// Register plan:
//	R8  affine matrix array base
//	R9  source pointer array base (elements advanced in place)
//	R10 source stride array base
//	R11 source count
//	DI  current destination segment base
//	BX  destination stride
//	DX  segment bytes (segn)
//	R13 segn &^ 63 (bytes covered by full strips)
//	R15 segments remaining
//	R14 xor flag (0 = overwrite, else accumulate)
//	R12 offset within segment, CX source index, SI source pointer
//	K1  tail byte mask: (1 << (segn & 63)) - 1
//	Z0/Z1 accumulators, Z2 broadcast matrix, Z3/Z4 source data

// func gfni512StridedAsm(mats *uint64, srcs **byte, strides *int, nsrc int, dst *byte, dstride, segn, count, xor int)
TEXT ·gfni512StridedAsm(SB), NOSPLIT, $0-72
	MOVQ mats+0(FP), R8
	MOVQ srcs+8(FP), R9
	MOVQ strides+16(FP), R10
	MOVQ nsrc+24(FP), R11
	MOVQ dst+32(FP), DI
	MOVQ dstride+40(FP), BX
	MOVQ segn+48(FP), DX
	MOVQ count+56(FP), R15
	MOVQ xor+64(FP), R14

	MOVQ  DX, CX
	ANDQ  $63, CX
	MOVQ  $1, AX
	SHLQ  CX, AX
	DECQ  AX
	KMOVQ AX, K1         // (1<<(segn%64))-1: in-segment tail byte mask
	MOVQ  DX, R13
	ANDQ  $-64, R13

	TESTQ R15, R15
	JZ    s512Done

s512Seg:
	XORQ R12, R12

s512Strip128:
	LEAQ 128(R12), AX
	CMPQ AX, R13
	JGT  s512Strip64
	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	XORQ   CX, CX

s512Src128:
	MOVQ (R9)(CX*8), SI
	VBROADCASTSD (R8)(CX*8), Z2
	VMOVDQU64 (SI)(R12*1), Z3
	VMOVDQU64 64(SI)(R12*1), Z4
	VGF2P8AFFINEQB $0, Z2, Z3, Z3
	VGF2P8AFFINEQB $0, Z2, Z4, Z4
	VPXORQ Z3, Z0, Z0
	VPXORQ Z4, Z1, Z1
	INCQ CX
	CMPQ CX, R11
	JLT  s512Src128

	TESTQ R14, R14
	JZ    s512Store128
	VPXORQ (DI)(R12*1), Z0, Z0
	VPXORQ 64(DI)(R12*1), Z1, Z1

s512Store128:
	VMOVDQU64 Z0, (DI)(R12*1)
	VMOVDQU64 Z1, 64(DI)(R12*1)
	ADDQ $128, R12
	JMP  s512Strip128

s512Strip64:
	CMPQ R12, R13
	JGE  s512Tail
	VPXORQ Z0, Z0, Z0
	XORQ   CX, CX

s512Src64:
	MOVQ (R9)(CX*8), SI
	VBROADCASTSD (R8)(CX*8), Z2
	VMOVDQU64 (SI)(R12*1), Z3
	VGF2P8AFFINEQB $0, Z2, Z3, Z3
	VPXORQ Z3, Z0, Z0
	INCQ CX
	CMPQ CX, R11
	JLT  s512Src64

	TESTQ R14, R14
	JZ    s512Store64
	VPXORQ (DI)(R12*1), Z0, Z0

s512Store64:
	VMOVDQU64 Z0, (DI)(R12*1)
	ADDQ $64, R12

s512Tail:
	CMPQ R12, DX
	JGE  s512Next
	VPXORQ Z0, Z0, Z0
	XORQ   CX, CX

s512SrcTail:
	MOVQ (R9)(CX*8), SI
	VBROADCASTSD (R8)(CX*8), Z2
	VMOVDQU8.Z (SI)(R12*1), K1, Z3
	VGF2P8AFFINEQB $0, Z2, Z3, Z3
	VPXORQ Z3, Z0, Z0
	INCQ CX
	CMPQ CX, R11
	JLT  s512SrcTail

	TESTQ R14, R14
	JZ    s512StoreTail
	VMOVDQU8.Z (DI)(R12*1), K1, Z4
	VPXORQ Z4, Z0, Z0

s512StoreTail:
	VMOVDQU8 Z0, K1, (DI)(R12*1)

s512Next:
	DECQ R15
	JZ   s512Done
	ADDQ BX, DI
	XORQ CX, CX

s512Adv:
	MOVQ (R10)(CX*8), AX
	ADDQ AX, (R9)(CX*8)
	INCQ CX
	CMPQ CX, R11
	JLT  s512Adv
	JMP  s512Seg

s512Done:
	VZEROUPPER
	RET

package gf256

import (
	"bytes"
	"math/rand"
	"testing"
)

// refApplyStrided is the scalar oracle for ApplyStrided: per segment, per
// byte, straight Mul/XOR arithmetic — independent of every kernel path.
func refApplyStrided(coeffs []byte, srcs [][]byte, dst []byte, dstBase, dstStride int, srcBase, srcStride []int, segn, count int, overwrite bool) {
	for s := 0; s < count; s++ {
		for i := 0; i < segn; i++ {
			var acc byte
			for j, c := range coeffs {
				if c == 0 {
					continue
				}
				acc ^= Mul(c, srcs[j][srcBase[j]+s*srcStride[j]+i])
			}
			d := dstBase + s*dstStride + i
			if overwrite {
				dst[d] = acc
			} else {
				dst[d] ^= acc
			}
		}
	}
}

// stridedCase is one ApplyStrided geometry: per-source strides may differ
// from the destination stride and from each other, and may be zero.
type stridedCase struct {
	segn, count int
	dstStride   int
	srcStrideOf func(j int) int
	dstBase     int
	srcBaseOf   func(j int) int
}

func stridedCases() []stridedCase {
	id := func(v int) func(int) int { return func(int) int { return v } }
	return []stridedCase{
		{segn: 1, count: 7, dstStride: 3, srcStrideOf: id(5), dstBase: 0, srcBaseOf: id(2)},
		{segn: 3, count: 4, dstStride: 3, srcStrideOf: id(9), dstBase: 1, srcBaseOf: id(0)},
		{segn: 31, count: 3, dstStride: 40, srcStrideOf: id(40), dstBase: 5, srcBaseOf: id(3)},
		{segn: 32, count: 5, dstStride: 32, srcStrideOf: id(64), dstBase: 0, srcBaseOf: id(7)},
		{segn: 33, count: 4, dstStride: 50, srcStrideOf: id(0), dstBase: 2, srcBaseOf: id(11)},
		{segn: 64, count: 3, dstStride: 100, srcStrideOf: id(100), dstBase: 0, srcBaseOf: id(0)},
		{segn: 65, count: 3, dstStride: 65, srcStrideOf: func(j int) int { return 65 + 13*j }, dstBase: 3, srcBaseOf: func(j int) int { return j }},
		{segn: 100, count: 2, dstStride: 128, srcStrideOf: id(256), dstBase: 9, srcBaseOf: id(1)},
		{segn: 513, count: 3, dstStride: 600, srcStrideOf: id(520), dstBase: 0, srcBaseOf: id(5)},
		{segn: 1025, count: 2, dstStride: 1025, srcStrideOf: id(2048), dstBase: 1, srcBaseOf: id(0)},
		{segn: 4095, count: 2, dstStride: 4100, srcStrideOf: id(4096), dstBase: 0, srcBaseOf: id(3)},
	}
}

// TestApplyStridedIdentity checks ApplyStrided against the scalar oracle
// on every available backend, over geometries that exercise the zmm
// multi-stride kernel, the ymm lockstep path (all strides equal), zero
// strides, and the per-segment window fallback.
func TestApplyStridedIdentity(t *testing.T) {
	rows := [][]byte{
		{2},
		{0, 0},
		{1, 2},
		{0x8e, 0x1d},
		{7, 0, 113, 214, 0xaa},
	}
	for _, backend := range Backends() {
		t.Run(backend, func(t *testing.T) {
			forceBackend(t, backend)
			rng := rand.New(rand.NewSource(42))
			for _, coeffs := range rows {
				rp := CompileRow(coeffs)
				for _, tc := range stridedCases() {
					for _, overwrite := range []bool{false, true} {
						checkApplyStrided(t, rng, rp, coeffs, tc, overwrite)
					}
				}
			}
		})
	}
}

func checkApplyStrided(t *testing.T, rng *rand.Rand, rp *RowPlan, coeffs []byte, tc stridedCase, overwrite bool) {
	t.Helper()
	srcs := make([][]byte, len(coeffs))
	srcBase := make([]int, len(coeffs))
	srcStride := make([]int, len(coeffs))
	for j := range srcs {
		srcBase[j] = tc.srcBaseOf(j)
		srcStride[j] = tc.srcStrideOf(j)
		n := srcBase[j] + (tc.count-1)*srcStride[j] + tc.segn
		srcs[j] = make([]byte, n)
		rng.Read(srcs[j])
	}
	dn := tc.dstBase + (tc.count-1)*tc.dstStride + tc.segn
	dst := make([]byte, dn)
	rng.Read(dst)
	want := append([]byte(nil), dst...)

	refApplyStrided(coeffs, srcs, want, tc.dstBase, tc.dstStride, srcBase, srcStride, tc.segn, tc.count, overwrite)
	rp.ApplyStrided(srcs, dst, tc.dstBase, tc.dstStride, srcBase, srcStride, tc.segn, tc.count, overwrite)
	if !bytes.Equal(dst, want) {
		t.Fatalf("ApplyStrided mismatch: coeffs=%v segn=%d count=%d dstStride=%d overwrite=%v",
			coeffs, tc.segn, tc.count, tc.dstStride, overwrite)
	}
}

// FuzzApplyStrided fuzzes the geometry across every backend in the
// dispatch chain; any mismatch against the scalar oracle fails.
func FuzzApplyStrided(f *testing.F) {
	f.Add(uint16(3), uint8(2), uint8(1), uint8(4), int64(1))
	f.Add(uint16(64), uint8(3), uint8(0), uint8(9), int64(2))
	f.Add(uint16(600), uint8(4), uint8(7), uint8(2), int64(3))
	f.Fuzz(func(t *testing.T, segn16 uint16, count8, pad8, width8 uint8, seed int64) {
		segn := int(segn16)%1200 + 1
		count := int(count8)%5 + 1
		pad := int(pad8) % 64
		width := int(width8)%4 + 1
		rng := rand.New(rand.NewSource(seed))
		coeffs := make([]byte, width)
		rng.Read(coeffs)
		rp := CompileRow(coeffs)
		dstStride := segn + pad
		srcBase := make([]int, width)
		srcStride := make([]int, width)
		srcs := make([][]byte, width)
		for j := range srcs {
			srcBase[j] = rng.Intn(8)
			srcStride[j] = rng.Intn(3) * (segn + rng.Intn(64)) // 0, or >= segn
			srcs[j] = make([]byte, srcBase[j]+(count-1)*srcStride[j]+segn)
			rng.Read(srcs[j])
		}
		dst := make([]byte, (count-1)*dstStride+segn)
		rng.Read(dst)
		want := append([]byte(nil), dst...)
		refApplyStrided(coeffs, srcs, want, 0, dstStride, srcBase, srcStride, segn, count, false)
		for _, backend := range Backends() {
			restore, err := SetBackend(backend)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(dst))
			copy(got, dst)
			rp.ApplyStrided(srcs, got, 0, dstStride, srcBase, srcStride, segn, count, false)
			restore()
			if !bytes.Equal(got, want) {
				t.Fatalf("backend %s: ApplyStrided mismatch (segn=%d count=%d)", backend, segn, count)
			}
		}
	})
}

package erasure_test

import (
	"fmt"

	"repro/internal/erasure"

	_ "repro/internal/erasure/clay"
	_ "repro/internal/erasure/reedsolomon"
)

// Instantiating the paper's two codes from the plugin registry and
// comparing their single-failure repair plans.
func ExampleNew() {
	rs, _ := erasure.New("jerasure_reed_sol_van", 9, 3, 0)
	clay, _ := erasure.New("clay", 9, 3, 11)

	rsPlan, _ := rs.RepairPlan([]int{0})
	clayPlan, _ := clay.RepairPlan([]int{0})

	fmt.Printf("RS(12,9):      %d helpers, %.2f chunks read\n", len(rsPlan.Helpers), rsPlan.ReadFraction())
	fmt.Printf("Clay(12,9,11): %d helpers, %.2f chunks read\n", len(clayPlan.Helpers), clayPlan.ReadFraction())
	// Output:
	// RS(12,9):      9 helpers, 9.00 chunks read
	// Clay(12,9,11): 11 helpers, 3.67 chunks read
}

// Encoding, losing the maximum tolerable chunks, and decoding.
func ExampleCode() {
	code, _ := erasure.New("jerasure_reed_sol_van", 4, 2, 0)
	shards := make([][]byte, code.N())
	for i := 0; i < code.K(); i++ {
		shards[i] = []byte{byte(i), byte(i * 2)}
	}
	_ = code.Encode(shards)
	shards[1], shards[4] = nil, nil // lose one data and one parity chunk
	_ = code.Decode(shards)
	fmt.Println(shards[1])
	// Output:
	// [1 2]
}

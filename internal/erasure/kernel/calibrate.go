package kernel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/gf256"
	"repro/internal/parallel"
)

// Program chunking was originally tuned by hand for one core (16 KiB
// chunks, 64 KiB parallel threshold). Those numbers are now only the
// fallback: the first Run derives both from the machine — a one-shot
// microprobe times the active gf256 backend at candidate chunk sizes and
// measures worker-pool handoff, and runtime.NumCPU scales the parallel
// threshold. Environment overrides pin either value for reproducible
// benchmarking:
//
//	ECFAULT_CHUNK=bytes     stripe chunk processed per pass over all rows
//	ECFAULT_PARALLEL=bytes  min rows*stripe work before fanning out
//
// The choice never affects output bytes — every chunking of a Program run
// is byte-identical by construction — only throughput.
const (
	defaultChunkBytes        = 16 << 10
	defaultParallelThreshold = 64 << 10

	minChunkBytes = 4 << 10
	maxChunkBytes = 256 << 10

	minParallelThreshold = 32 << 10
	maxParallelThreshold = 8 << 20
)

var tuningOnce = sync.OnceValues(func() (int, int) {
	return computeTuning(runtime.NumCPU(), os.Getenv("ECFAULT_CHUNK"), os.Getenv("ECFAULT_PARALLEL"))
})

// tuning returns the calibrated (chunkBytes, parallelThreshold) pair,
// probing on first use.
func tuning() (int, int) { return tuningOnce() }

// Tuning exposes the calibrated chunk size and parallel threshold (tests,
// benchmarks, and diagnostics; the hot path uses the internal accessor).
func Tuning() (chunkBytes, parallelThreshold int) { return tuning() }

// computeTuning resolves the chunk size and parallel threshold from the
// env overrides, running the microprobe only for values not pinned.
func computeTuning(ncpu int, chunkEnv, parEnv string) (chunk, thresh int) {
	chunk = clampEnvBytes(chunkEnv, minChunkBytes, maxChunkBytes)
	thresh = clampEnvBytes(parEnv, minParallelThreshold, maxParallelThreshold)
	if chunk > 0 && thresh > 0 {
		return chunk, thresh
	}
	pc, pt := probeTuning(ncpu)
	if chunk <= 0 {
		chunk = pc
	}
	if thresh <= 0 {
		thresh = pt
	}
	return chunk, thresh
}

// clampEnvBytes parses an integer byte count from an env value, clamping
// into [lo, hi]. Empty or invalid values return 0 (not set).
func clampEnvBytes(v string, lo, hi int) int {
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		return 0
	}
	return min(max(n, lo), hi)
}

// probeTuning times a representative program (three parity rows over nine
// sources, the paper's RS(12,9) shape) across candidate chunk sizes and
// picks the fastest, then prices worker handoff to place the parallel
// threshold. Total budget is a few milliseconds, paid once per process.
func probeTuning(ncpu int) (chunk, thresh int) {
	const stripe = 128 << 10
	const width, rows = 9, 3
	srcs := make([][]byte, width)
	for j := range srcs {
		srcs[j] = make([]byte, stripe)
		for i := range srcs[j] {
			srcs[j][i] = byte(i*31 + j*7 + 1)
		}
	}
	dsts := make([][]byte, rows)
	rowCoeffs := make([][]byte, rows)
	for i := range dsts {
		dsts[i] = make([]byte, stripe)
		row := make([]byte, width)
		for j := range row {
			row[j] = gf256.Exp(i*width + j)
		}
		rowCoeffs[i] = row
	}
	prog := Compile(rowCoeffs)

	chunk = defaultChunkBytes
	best := time.Duration(1<<63 - 1)
	var bestBytesPerNs float64
	for _, cand := range []int{8 << 10, 16 << 10, 32 << 10, 64 << 10} {
		// One warm pass per candidate, then the timed pass; keep the
		// fastest so a stray scheduler hiccup cannot pick a bad chunk.
		elapsed := best
		for rep := 0; rep < 2; rep++ {
			start := time.Now()
			prog.runRange(srcs, dsts, 0, stripe, true, cand)
			if d := time.Since(start); d < elapsed {
				elapsed = d
			}
		}
		if elapsed < best {
			best = elapsed
			chunk = cand
			bestBytesPerNs = float64(rows) * stripe / float64(max(int(elapsed.Nanoseconds()), 1))
		}
	}

	// Price a pool dispatch, then require the fanned-out work to be worth
	// several dispatches per worker so handoff stays in the noise.
	const dispatches = 32
	start := time.Now()
	for i := 0; i < dispatches; i++ {
		parallel.ForEach(2, 2, func(int) {})
	}
	handoffNs := float64(time.Since(start).Nanoseconds()) / dispatches
	thresh = int(handoffNs * bestBytesPerNs * 8 * float64(max(ncpu, 1)))
	return chunk, min(max(thresh, minParallelThreshold), maxParallelThreshold)
}

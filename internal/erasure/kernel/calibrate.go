package kernel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/gf256"
	"repro/internal/parallel"
)

// Program chunking was originally tuned by hand for one core (16 KiB
// chunks, 64 KiB parallel threshold). Those numbers are now only the
// fallback: the first Run derives them from the machine — a one-shot
// microprobe times the active gf256 backend at candidate chunk sizes and
// measures worker-pool handoff, and runtime.NumCPU scales the parallel
// threshold. The same probe prices the strided parallel threshold: the
// minimum total bytes a strided/segment batch (RunSegs, the clay repair
// calls) must carry before fanning out across the pool. Strided batches
// fan out per call rather than per stripe, so their threshold is a
// handoff multiple without the NumCPU scaling. Environment overrides pin
// the values for reproducible benchmarking:
//
//	ECFAULT_CHUNK=bytes     stripe chunk processed per pass over all rows
//	ECFAULT_PARALLEL=bytes  min rows*stripe work before fanning out; also
//	                        pins the strided threshold (each clamped into
//	                        its own range)
//
// The choice never affects output bytes — every chunking or split of a
// run is byte-identical by construction — only throughput.
const (
	defaultChunkBytes        = 16 << 10
	defaultParallelThreshold = 64 << 10

	minChunkBytes = 4 << 10
	maxChunkBytes = 256 << 10

	minParallelThreshold = 32 << 10
	maxParallelThreshold = 8 << 20

	minStridedThreshold = 16 << 10
	maxStridedThreshold = 96 << 10
)

var tuningOnce = sync.OnceValue(func() tuned {
	return computeTuning(runtime.NumCPU(), os.Getenv("ECFAULT_CHUNK"), os.Getenv("ECFAULT_PARALLEL"))
})

// tuned is the calibrated tuple: stripe chunk bytes, the rows*stripe
// work floor for Program.Run fan-out, and the total-bytes floor for
// strided/segment fan-out.
type tuned struct {
	chunkBytes        int
	parallelThreshold int
	stridedThreshold  int
}

// tuning returns the calibrated tuple, probing on first use.
func tuning() tuned { return tuningOnce() }

// Tuning exposes the calibrated chunk size and thresholds (tests,
// benchmarks, and `ecbench -backends` diagnostics; the hot path uses the
// internal accessor).
func Tuning() (chunkBytes, parallelThreshold, stridedThreshold int) {
	t := tuning()
	return t.chunkBytes, t.parallelThreshold, t.stridedThreshold
}

// StridedWorkers returns the worker count a strided/segment batch of
// total output-side bytes should fan out across: 1 (stay serial) below
// the calibrated strided threshold, else the kernel worker budget capped
// so every worker keeps at least half a threshold of work. Callers pass
// the result to the gf256 *Parallel entries.
func StridedWorkers(total int) int {
	t := tuning()
	if total < t.stridedThreshold {
		return 1
	}
	w := parallel.KernelWorkers()
	if most := total / (t.stridedThreshold / 2); w > most {
		w = most
	}
	return w
}

// computeTuning resolves the tuple from the env overrides, running the
// microprobe only when something is left unpinned.
func computeTuning(ncpu int, chunkEnv, parEnv string) tuned {
	chunk := clampEnvBytes(chunkEnv, minChunkBytes, maxChunkBytes)
	thresh := clampEnvBytes(parEnv, minParallelThreshold, maxParallelThreshold)
	strided := clampEnvBytes(parEnv, minStridedThreshold, maxStridedThreshold)
	if chunk > 0 && thresh > 0 {
		return tuned{chunk, thresh, strided}
	}
	pc, pt, ps := probeTuning(ncpu)
	if chunk <= 0 {
		chunk = pc
	}
	if thresh <= 0 {
		thresh = pt
	}
	if strided <= 0 {
		strided = ps
	}
	return tuned{chunk, thresh, strided}
}

// clampEnvBytes parses an integer byte count from an env value, clamping
// into [lo, hi]. Empty or invalid values return 0 (not set).
func clampEnvBytes(v string, lo, hi int) int {
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		return 0
	}
	return min(max(n, lo), hi)
}

// probeTuning times a representative program (three parity rows over nine
// sources, the paper's RS(12,9) shape) across candidate chunk sizes and
// picks the fastest, then prices worker handoff to place both parallel
// thresholds. Total budget is a few milliseconds, paid once per process.
func probeTuning(ncpu int) (chunk, thresh, strided int) {
	const stripe = 128 << 10
	const width, rows = 9, 3
	srcs := make([][]byte, width)
	for j := range srcs {
		srcs[j] = make([]byte, stripe)
		for i := range srcs[j] {
			srcs[j][i] = byte(i*31 + j*7 + 1)
		}
	}
	dsts := make([][]byte, rows)
	rowCoeffs := make([][]byte, rows)
	for i := range dsts {
		dsts[i] = make([]byte, stripe)
		row := make([]byte, width)
		for j := range row {
			row[j] = gf256.Exp(i*width + j)
		}
		rowCoeffs[i] = row
	}
	prog := Compile(rowCoeffs)

	chunk = defaultChunkBytes
	best := time.Duration(1<<63 - 1)
	var bestBytesPerNs float64
	for _, cand := range []int{8 << 10, 16 << 10, 32 << 10, 64 << 10} {
		// One warm pass per candidate, then the timed pass; keep the
		// fastest so a stray scheduler hiccup cannot pick a bad chunk.
		elapsed := best
		for rep := 0; rep < 2; rep++ {
			start := time.Now()
			prog.runRange(srcs, dsts, 0, stripe, true, cand)
			if d := time.Since(start); d < elapsed {
				elapsed = d
			}
		}
		if elapsed < best {
			best = elapsed
			chunk = cand
			bestBytesPerNs = float64(rows) * stripe / float64(max(int(elapsed.Nanoseconds()), 1))
		}
	}

	// Price a pool dispatch, then require the fanned-out work to be worth
	// several dispatches per worker so handoff stays in the noise. The
	// first ForEach also warms the persistent pool, so the measured cost
	// is a parked-worker handoff, not goroutine creation.
	const dispatches = 32
	parallel.ForEach(2, 2, func(int) {})
	start := time.Now()
	for i := 0; i < dispatches; i++ {
		parallel.ForEach(2, 2, func(int) {})
	}
	handoffNs := float64(time.Since(start).Nanoseconds()) / dispatches
	thresh = int(handoffNs * bestBytesPerNs * 8 * float64(max(ncpu, 1)))
	// Strided batches dispatch once per kernel call, so the floor is a
	// plain handoff multiple: eight handoffs' worth of serial work.
	strided = int(handoffNs * bestBytesPerNs * 8)
	return chunk, min(max(thresh, minParallelThreshold), maxParallelThreshold),
		min(max(strided, minStridedThreshold), maxStridedThreshold)
}

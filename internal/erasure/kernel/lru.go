// Package kernel compiles erasure-code matrices into executable coding
// programs and provides the shared survivor-pattern cache used by the
// matrix codecs.
//
// A Program is a set of gf256 row plans compiled once from a generator or
// decode matrix; Run executes it over stripe shards in cache-friendly
// bands, optionally fanning contiguous shard ranges out to a bounded
// worker pool. The LRU replaces the ad-hoc "wipe the map when it gets
// big" pseudo-caches that previously lived in each codec: it has real
// eviction order, a hard capacity, and an allocation-free lookup path
// keyed by survivor bitmask.
package kernel

import (
	"errors"
	"math/bits"
	"sync"
)

// Mask is a bitmask over shard (or sub-chunk row) indices, used as the
// cache key for erasure/survivor patterns. 256 bits covers the largest
// index space any codec here produces (GF(2^8) caps n at 256, and Clay's
// internal row space q*t stays under that).
type Mask [4]uint64

// MaskOf returns the mask with the given bits set. Indices outside
// [0, 256) panic: a key that silently dropped bits would alias distinct
// erasure patterns.
func MaskOf(indices ...int) Mask {
	var m Mask
	for _, i := range indices {
		m.Set(i)
	}
	return m
}

// MaskOfBools returns the mask with bit i set wherever flags[i] is true.
func MaskOfBools(flags []bool) Mask {
	var m Mask
	for i, f := range flags {
		if f {
			m.Set(i)
		}
	}
	return m
}

// Set sets bit i.
func (m *Mask) Set(i int) {
	if i < 0 || i >= 256 {
		panic("kernel: mask index out of range")
	}
	m[i>>6] |= 1 << (i & 63)
}

// Has reports whether bit i is set.
func (m Mask) Has(i int) bool {
	if i < 0 || i >= 256 {
		return false
	}
	return m[i>>6]&(1<<(i&63)) != 0
}

// Count returns the number of set bits.
func (m Mask) Count() int {
	return bits.OnesCount64(m[0]) + bits.OnesCount64(m[1]) +
		bits.OnesCount64(m[2]) + bits.OnesCount64(m[3])
}

// lruEntry is an intrusive doubly-linked node in recency order.
type lruEntry[V any] struct {
	key        Mask
	val        V
	prev, next *lruEntry[V]
}

// LRU is a bounded map from Mask keys to values with least-recently-used
// eviction. It is safe for concurrent use. Get performs no allocations,
// so cache hits on the decode hot path cost a mutex and a map lookup.
// GetOrCompute fills misses singleflight-style: one goroutine computes
// while concurrent callers for the same key wait for its result, so a
// shared code instance never compiles the same program twice.
type LRU[V any] struct {
	mu       sync.Mutex
	capacity int
	entries  map[Mask]*lruEntry[V]
	head     *lruEntry[V] // most recently used
	tail     *lruEntry[V] // least recently used

	fills map[Mask]*fill[V] // in-flight GetOrCompute computations
}

// fill tracks one in-flight computation. Waiters block on done; the
// leader stores the outcome before closing it.
type fill[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// NewLRU returns an LRU holding at most capacity entries. capacity < 1
// panics.
func NewLRU[V any](capacity int) *LRU[V] {
	if capacity < 1 {
		panic("kernel: LRU capacity must be positive")
	}
	return &LRU[V]{
		capacity: capacity,
		entries:  make(map[Mask]*lruEntry[V], capacity),
		fills:    make(map[Mask]*fill[V]),
	}
}

// Get returns the value for key and promotes it to most recently used.
func (l *LRU[V]) Get(key Mask) (V, bool) {
	l.mu.Lock()
	e, ok := l.entries[key]
	if !ok {
		l.mu.Unlock()
		var zero V
		return zero, false
	}
	l.moveToFront(e)
	v := e.val
	l.mu.Unlock()
	return v, true
}

// Put inserts or updates key, promoting it to most recently used, and
// evicts the least recently used entry when over capacity.
func (l *LRU[V]) Put(key Mask, val V) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.putLocked(key, val)
}

func (l *LRU[V]) putLocked(key Mask, val V) {
	if e, ok := l.entries[key]; ok {
		e.val = val
		l.moveToFront(e)
		return
	}
	e := &lruEntry[V]{key: key, val: val}
	l.entries[key] = e
	l.pushFront(e)
	if len(l.entries) > l.capacity {
		evict := l.tail
		l.unlink(evict)
		delete(l.entries, evict.key)
	}
}

// errComputePanicked is handed to waiters when the leading computation
// panicked; the panic itself propagates on the leader's goroutine.
var errComputePanicked = errors.New("kernel: cache fill panicked")

// GetOrCompute returns the cached value for key, or computes, caches, and
// returns it. Fills are singleflight: when several goroutines miss on the
// same key, one runs compute (without the cache lock) and the rest block
// until it finishes, then share its result. Errors are not cached — a
// later caller retries the computation. Values must be immutable, as one
// value is returned to every caller.
func (l *LRU[V]) GetOrCompute(key Mask, compute func() (V, error)) (V, error) {
	l.mu.Lock()
	if e, ok := l.entries[key]; ok {
		l.moveToFront(e)
		v := e.val
		l.mu.Unlock()
		return v, nil
	}
	if f, ok := l.fills[key]; ok {
		l.mu.Unlock()
		<-f.done
		return f.val, f.err
	}
	f := &fill[V]{done: make(chan struct{})}
	l.fills[key] = f
	l.mu.Unlock()

	finished := false
	defer func() {
		if !finished {
			// compute panicked: unblock waiters with an error and let the
			// panic propagate on this goroutine.
			f.err = errComputePanicked
		}
		l.mu.Lock()
		delete(l.fills, key)
		if f.err == nil {
			l.putLocked(key, f.val)
		}
		l.mu.Unlock()
		close(f.done)
	}()
	f.val, f.err = compute()
	finished = true
	if f.err != nil {
		var zero V
		return zero, f.err
	}
	return f.val, nil
}

// Len returns the current entry count.
func (l *LRU[V]) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Keys returns the keys from most to least recently used (for tests).
func (l *LRU[V]) Keys() []Mask {
	l.mu.Lock()
	defer l.mu.Unlock()
	keys := make([]Mask, 0, len(l.entries))
	for e := l.head; e != nil; e = e.next {
		keys = append(keys, e.key)
	}
	return keys
}

func (l *LRU[V]) pushFront(e *lruEntry[V]) {
	e.prev = nil
	e.next = l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
}

func (l *LRU[V]) unlink(e *lruEntry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (l *LRU[V]) moveToFront(e *lruEntry[V]) {
	if l.head == e {
		return
	}
	l.unlink(e)
	l.pushFront(e)
}

package kernel

import (
	"repro/internal/gf256"
	"repro/internal/parallel"
)

// The stripe range a worker (or the serial loop) processes per pass over
// all output rows — within one chunk every output row reads the same
// source window, so for multi-parity codes the sources are fetched from
// memory once per chunk instead of once per row — and the minimum total
// output work (rows x bytes) worth fanning out to the worker pool are
// both machine-calibrated on first use; see calibrate.go.

// Program is a coding matrix compiled into executable row plans: one plan
// per output row, each mapping the same source shard slots to one
// destination. Programs are immutable after Compile and safe for
// concurrent use.
type Program struct {
	plans []*gf256.RowPlan
	width int
}

// Compile compiles one coefficient row per output. All rows must have the
// same width (number of source slots).
func Compile(rows [][]byte) *Program {
	p := &Program{plans: make([]*gf256.RowPlan, len(rows))}
	for i, row := range rows {
		if i == 0 {
			p.width = len(row)
		} else if len(row) != p.width {
			panic("kernel: ragged coding matrix")
		}
		p.plans[i] = gf256.CompileRow(row)
	}
	return p
}

// CompileMatrix is Compile for callers holding a flat row accessor.
func CompileMatrix(n int, row func(i int) []byte) *Program {
	rows := make([][]byte, n)
	for i := range rows {
		rows[i] = row(i)
	}
	return Compile(rows)
}

// Rows returns the number of output rows.
func (p *Program) Rows() int { return len(p.plans) }

// Width returns the number of source slots per row.
func (p *Program) Width() int { return p.width }

// Plan returns the compiled plan for output row i (for single-row
// callers such as repair paths).
func (p *Program) Plan(i int) *gf256.RowPlan { return p.plans[i] }

// Run executes the program: for every output row i,
//
//	dsts[i] = Σ_j rows[i][j] * srcs[j]   (overwrite)
//	dsts[i] ^= ...                       (accumulate)
//
// Sources under all-zero columns may be nil; every other slice must have
// equal length. The stripe is processed in chunks, all rows per chunk, so
// source windows are fetched once per chunk. When the worker budget
// (parallel.Workers) allows and the stripe is large enough, contiguous
// chunk ranges fan out to a bounded pool; the output is byte-identical to
// the serial pass because every output byte depends only on the same byte
// offset of the sources.
func (p *Program) Run(srcs, dsts [][]byte, overwrite bool) {
	p.run(srcs, dsts, overwrite, parallel.KernelWorkers())
}

// RunSerial executes the program on the calling goroutine regardless of
// the worker budget.
func (p *Program) RunSerial(srcs, dsts [][]byte, overwrite bool) {
	p.run(srcs, dsts, overwrite, 1)
}

// RunParallel executes the program with an explicit worker count (tests
// use this to force the pool on single-core machines).
func (p *Program) RunParallel(srcs, dsts [][]byte, overwrite bool, workers int) {
	p.run(srcs, dsts, overwrite, workers)
}

func (p *Program) run(srcs, dsts [][]byte, overwrite bool, workers int) {
	if len(dsts) != len(p.plans) {
		panic("kernel: destination count does not match program rows")
	}
	if len(p.plans) == 0 {
		return
	}
	if len(srcs) != p.width {
		panic("kernel: source count does not match program width")
	}
	size := len(dsts[0])
	t := tuning()
	chunkBytes := t.chunkBytes
	if workers > 1 && len(p.plans)*size >= t.parallelThreshold {
		nChunks := (size + chunkBytes - 1) / chunkBytes
		if workers > nChunks {
			workers = nChunks
		}
		// Split the stripe into one contiguous, word-aligned range per
		// worker so each range stays a sequential stream. When the
		// ceiling division rounds per up, fewer than workers ranges cover
		// the stripe; clamp so no worker is dispatched onto an empty
		// range.
		per := (nChunks + workers - 1) / workers * chunkBytes
		if nw := (size + per - 1) / per; nw < workers {
			workers = nw
		}
		parallel.ForEach(workers, workers, func(w int) {
			off := w * per
			end := off + per
			if end > size {
				end = size
			}
			p.runRange(srcs, dsts, off, end, overwrite, chunkBytes)
		})
		return
	}
	p.runRange(srcs, dsts, 0, size, overwrite, chunkBytes)
}

// RunSegs executes the program over a batch of equal-length segments
// instead of one contiguous stripe: for every output row i and every
// segment index s in idx,
//
//	dsts[i][s*segLen : (s+1)*segLen] (^)= Σ_j rows[i][j] * srcs[j][same]
//
// idx must be strictly increasing. Sub-packetized codes use this to solve
// many scattered planes in one call per output row; the gf256 segment
// layer coalesces adjacent planes and dispatches the strided SIMD kernels
// (runs up to 1 KiB on the ymm tiers, 4 KiB on the zmm tier, longer runs
// as windowed calls), so callers need no layout knowledge. Output is
// byte-identical to one Run per segment. Batches whose total output bytes
// (rows x segments x segLen) clear the calibrated strided parallel
// threshold fan out across the worker pool on a (row, index-range) grid —
// every grid cell writes a disjoint destination region, so the split is
// byte-identical to the serial pass; smaller batches stay on the calling
// goroutine.
func (p *Program) RunSegs(srcs, dsts [][]byte, idx []int32, segLen int, overwrite bool) {
	p.runSegs(srcs, dsts, idx, segLen, overwrite, parallel.KernelWorkers())
}

// RunSegsParallel executes the segment batch with an explicit worker
// count (tests use this to force the pool on single-core machines).
func (p *Program) RunSegsParallel(srcs, dsts [][]byte, idx []int32, segLen int, overwrite bool, workers int) {
	p.runSegs(srcs, dsts, idx, segLen, overwrite, workers)
}

func (p *Program) runSegs(srcs, dsts [][]byte, idx []int32, segLen int, overwrite bool, workers int) {
	if len(dsts) != len(p.plans) {
		panic("kernel: destination count does not match program rows")
	}
	if len(p.plans) == 0 {
		return
	}
	if len(srcs) != p.width {
		panic("kernel: source count does not match program width")
	}
	rows := len(p.plans)
	if workers > 1 && rows*len(idx)*segLen >= tuning().stridedThreshold &&
		p.runSegsGrid(srcs, dsts, idx, segLen, overwrite, workers) {
		return
	}
	for i, plan := range p.plans {
		plan.ApplySegs(srcs, dsts[i], idx, nil, segLen, overwrite)
	}
}

// runSegsGrid fans the segment batch out on a flattened (row,
// index-range) grid: rows alone are often fewer than the workers
// available (q lost nodes), so the index list splits into nc contiguous
// ranges per row. Returns false when the geometry leaves nothing to fan
// out (a single grid cell).
func (p *Program) runSegsGrid(srcs, dsts [][]byte, idx []int32, segLen int, overwrite bool, workers int) bool {
	rows := len(p.plans)
	nc := (workers + rows - 1) / rows
	if nc > len(idx) {
		nc = len(idx)
	}
	if nc < 1 {
		return false
	}
	per := (len(idx) + nc - 1) / nc
	nc = (len(idx) + per - 1) / per
	if rows*nc <= 1 {
		return false
	}
	parallel.ForEach(rows*nc, workers, func(t int) {
		i, c := t/nc, t%nc
		lo := c * per
		hi := min(lo+per, len(idx))
		p.plans[i].ApplySegs(srcs, dsts[i], idx[lo:hi], nil, segLen, overwrite)
	})
	return true
}

// runRange processes dst bytes [off, end) chunk by chunk, all rows per
// chunk.
func (p *Program) runRange(srcs, dsts [][]byte, off, end int, overwrite bool, chunkBytes int) {
	for off < end {
		n := end - off
		if n > chunkBytes {
			n = chunkBytes
		}
		for i, plan := range p.plans {
			plan.Apply(srcs, dsts[i], off, off+n, overwrite)
		}
		off += n
	}
}

package kernel

import (
	"testing"
)

func TestMaskBasics(t *testing.T) {
	m := MaskOf(0, 63, 64, 200)
	for _, i := range []int{0, 63, 64, 200} {
		if !m.Has(i) {
			t.Fatalf("bit %d should be set", i)
		}
	}
	if m.Has(1) || m.Has(255) {
		t.Fatal("unexpected bits set")
	}
	if m.Count() != 4 {
		t.Fatalf("Count = %d, want 4", m.Count())
	}
	b := MaskOfBools([]bool{true, false, true})
	if b != MaskOf(0, 2) {
		t.Fatalf("MaskOfBools mismatch: %v", b)
	}
}

func TestMaskOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set(256) did not panic")
		}
	}()
	var m Mask
	m.Set(256)
}

// TestLRUEvictionOrder checks true least-recently-used behavior: Get
// promotes, Put evicts from the cold end, and the eviction order reflects
// accesses rather than insertion alone.
func TestLRUEvictionOrder(t *testing.T) {
	l := NewLRU[int](3)
	k := func(i int) Mask { return MaskOf(i) }
	l.Put(k(1), 1)
	l.Put(k(2), 2)
	l.Put(k(3), 3)

	// Touch 1 so 2 becomes the coldest entry.
	if v, ok := l.Get(k(1)); !ok || v != 1 {
		t.Fatalf("Get(1) = %d, %v", v, ok)
	}
	l.Put(k(4), 4) // evicts 2
	if _, ok := l.Get(k(2)); ok {
		t.Fatal("2 should have been evicted")
	}
	for _, i := range []int{1, 3, 4} {
		if _, ok := l.Get(k(i)); !ok {
			t.Fatalf("%d should still be cached", i)
		}
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}

	// Recency order after the gets above: 4 was inserted, then 1, 3, 4
	// were touched in that order -> head is 4, tail is 1.
	keys := l.Keys()
	if keys[0] != k(4) || keys[2] != k(1) {
		t.Fatalf("unexpected recency order: %v", keys)
	}

	// Updating an existing key must not evict.
	l.Put(k(3), 33)
	if l.Len() != 3 {
		t.Fatalf("Len after update = %d, want 3", l.Len())
	}
	if v, _ := l.Get(k(3)); v != 33 {
		t.Fatalf("update lost: %d", v)
	}
}

// TestLRUGetAllocs locks in the allocation-free lookup path: neither hits
// nor misses may allocate, in particular the Mask key must not escape to
// the heap the way the old fmt.Sprint keys did.
func TestLRUGetAllocs(t *testing.T) {
	l := NewLRU[*int](8)
	v := 42
	hit := MaskOf(1, 9, 17)
	miss := MaskOf(2, 200)
	l.Put(hit, &v)

	if n := testing.AllocsPerRun(200, func() {
		if _, ok := l.Get(hit); !ok {
			t.Fatal("expected hit")
		}
	}); n != 0 {
		t.Fatalf("Get (hit) allocates %v times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, ok := l.Get(miss); ok {
			t.Fatal("expected miss")
		}
	}); n != 0 {
		t.Fatalf("Get (miss) allocates %v times per call, want 0", n)
	}
}

func TestLRUGetOrCompute(t *testing.T) {
	l := NewLRU[int](2)
	calls := 0
	f := func() (int, error) { calls++; return 7, nil }
	for i := 0; i < 3; i++ {
		v, err := l.GetOrCompute(MaskOf(5), f)
		if err != nil || v != 7 {
			t.Fatalf("GetOrCompute = %d, %v", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
}

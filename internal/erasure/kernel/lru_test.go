package kernel

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMaskBasics(t *testing.T) {
	m := MaskOf(0, 63, 64, 200)
	for _, i := range []int{0, 63, 64, 200} {
		if !m.Has(i) {
			t.Fatalf("bit %d should be set", i)
		}
	}
	if m.Has(1) || m.Has(255) {
		t.Fatal("unexpected bits set")
	}
	if m.Count() != 4 {
		t.Fatalf("Count = %d, want 4", m.Count())
	}
	b := MaskOfBools([]bool{true, false, true})
	if b != MaskOf(0, 2) {
		t.Fatalf("MaskOfBools mismatch: %v", b)
	}
}

func TestMaskOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set(256) did not panic")
		}
	}()
	var m Mask
	m.Set(256)
}

// TestLRUEvictionOrder checks true least-recently-used behavior: Get
// promotes, Put evicts from the cold end, and the eviction order reflects
// accesses rather than insertion alone.
func TestLRUEvictionOrder(t *testing.T) {
	l := NewLRU[int](3)
	k := func(i int) Mask { return MaskOf(i) }
	l.Put(k(1), 1)
	l.Put(k(2), 2)
	l.Put(k(3), 3)

	// Touch 1 so 2 becomes the coldest entry.
	if v, ok := l.Get(k(1)); !ok || v != 1 {
		t.Fatalf("Get(1) = %d, %v", v, ok)
	}
	l.Put(k(4), 4) // evicts 2
	if _, ok := l.Get(k(2)); ok {
		t.Fatal("2 should have been evicted")
	}
	for _, i := range []int{1, 3, 4} {
		if _, ok := l.Get(k(i)); !ok {
			t.Fatalf("%d should still be cached", i)
		}
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}

	// Recency order after the gets above: 4 was inserted, then 1, 3, 4
	// were touched in that order -> head is 4, tail is 1.
	keys := l.Keys()
	if keys[0] != k(4) || keys[2] != k(1) {
		t.Fatalf("unexpected recency order: %v", keys)
	}

	// Updating an existing key must not evict.
	l.Put(k(3), 33)
	if l.Len() != 3 {
		t.Fatalf("Len after update = %d, want 3", l.Len())
	}
	if v, _ := l.Get(k(3)); v != 33 {
		t.Fatalf("update lost: %d", v)
	}
}

// TestLRUGetAllocs locks in the allocation-free lookup path: neither hits
// nor misses may allocate, in particular the Mask key must not escape to
// the heap the way the old fmt.Sprint keys did.
func TestLRUGetAllocs(t *testing.T) {
	l := NewLRU[*int](8)
	v := 42
	hit := MaskOf(1, 9, 17)
	miss := MaskOf(2, 200)
	l.Put(hit, &v)

	if n := testing.AllocsPerRun(200, func() {
		if _, ok := l.Get(hit); !ok {
			t.Fatal("expected hit")
		}
	}); n != 0 {
		t.Fatalf("Get (hit) allocates %v times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, ok := l.Get(miss); ok {
			t.Fatal("expected miss")
		}
	}); n != 0 {
		t.Fatalf("Get (miss) allocates %v times per call, want 0", n)
	}
}

func TestLRUGetOrCompute(t *testing.T) {
	l := NewLRU[int](2)
	calls := 0
	f := func() (int, error) { calls++; return 7, nil }
	for i := 0; i < 3; i++ {
		v, err := l.GetOrCompute(MaskOf(5), f)
		if err != nil || v != 7 {
			t.Fatalf("GetOrCompute = %d, %v", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
}

// TestLRUGetOrComputeSingleflight: concurrent misses on one key run the
// compute function exactly once; every caller receives the same value.
func TestLRUGetOrComputeSingleflight(t *testing.T) {
	l := NewLRU[*int](4)
	var calls int32
	started := make(chan struct{})
	release := make(chan struct{})
	compute := func() (*int, error) {
		if atomic.AddInt32(&calls, 1) == 1 {
			close(started)
		}
		<-release
		v := 99
		return &v, nil
	}

	const waiters = 8
	results := make(chan *int, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			v, err := l.GetOrCompute(MaskOf(3), compute)
			if err != nil {
				t.Error(err)
			}
			results <- v
		}()
	}
	<-started // the leader is inside compute; everyone else must wait
	close(release)

	var first *int
	for i := 0; i < waiters; i++ {
		v := <-results
		if first == nil {
			first = v
		} else if v != first {
			t.Fatal("waiters received distinct values")
		}
	}
	if n := atomic.LoadInt32(&calls); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
}

// TestLRUGetOrComputeErrorNotCached: a failed fill is retried by the next
// caller rather than poisoning the key.
func TestLRUGetOrComputeError(t *testing.T) {
	l := NewLRU[int](2)
	calls := 0
	boom := errors.New("boom")
	fail := func() (int, error) { calls++; return 0, boom }
	if _, err := l.GetOrCompute(MaskOf(1), fail); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, err := l.GetOrCompute(MaskOf(1), fail); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2 (errors are not cached)", calls)
	}
	if l.Len() != 0 {
		t.Fatalf("Len = %d after failed fills, want 0", l.Len())
	}
}

// TestLRUGetOrComputePanic: a panicking fill propagates on the leader,
// unblocks waiters with an error, and leaves the cache usable.
func TestLRUGetOrComputePanic(t *testing.T) {
	l := NewLRU[int](2)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		l.GetOrCompute(MaskOf(2), func() (int, error) { panic("kaboom") })
	}()
	v, err := l.GetOrCompute(MaskOf(2), func() (int, error) { return 5, nil })
	if err != nil || v != 5 {
		t.Fatalf("GetOrCompute after panic = %d, %v", v, err)
	}
}

func TestShardedBasics(t *testing.T) {
	s := NewSharded[int](64)
	for i := 0; i < 32; i++ {
		s.Put(MaskOf(i), i)
	}
	for i := 0; i < 32; i++ {
		if v, ok := s.Get(MaskOf(i)); !ok || v != i {
			t.Fatalf("Get(%d) = %d, %v", i, v, ok)
		}
	}
	if s.Len() != 32 {
		t.Fatalf("Len = %d, want 32", s.Len())
	}
	calls := 0
	v, err := s.GetOrCompute(MaskOf(100), func() (int, error) { calls++; return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("GetOrCompute = %d, %v", v, err)
	}
	s.GetOrCompute(MaskOf(100), func() (int, error) { calls++; return 7, nil })
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
}

// TestShardedTinyCapacity: capacities below the shard count collapse to
// one shard so the bound stays exact.
func TestShardedTinyCapacity(t *testing.T) {
	s := NewSharded[int](2)
	s.Put(MaskOf(1), 1)
	s.Put(MaskOf(2), 2)
	s.Put(MaskOf(3), 3)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (strict bound for tiny caches)", s.Len())
	}
}

// TestShardedConcurrent drives mixed hits/misses from many goroutines;
// meaningful mostly under -race.
func TestShardedConcurrent(t *testing.T) {
	s := NewSharded[int](128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := MaskOf((w*7 + i) % 64)
				want := (w*7 + i) % 64
				v, err := s.GetOrCompute(key, func() (int, error) { return want, nil })
				if err != nil || v != want {
					t.Errorf("GetOrCompute = %d, %v; want %d", v, err, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestDecodeCacheSizeEnv(t *testing.T) {
	if got := DecodeCacheSize(); got != DefaultDecodeCacheSize {
		t.Fatalf("default = %d, want %d", got, DefaultDecodeCacheSize)
	}
	t.Setenv("ECFAULT_DECODE_CACHE", "32")
	if got := DecodeCacheSize(); got != 32 {
		t.Fatalf("override = %d, want 32", got)
	}
	t.Setenv("ECFAULT_DECODE_CACHE", "-5")
	if got := DecodeCacheSize(); got != 1 {
		t.Fatalf("clamp = %d, want 1", got)
	}
	t.Setenv("ECFAULT_DECODE_CACHE", "not-a-number")
	if got := DecodeCacheSize(); got != DefaultDecodeCacheSize {
		t.Fatalf("garbage = %d, want default %d", got, DefaultDecodeCacheSize)
	}
}

package kernel

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/gf256"
)

// refRun applies the matrix rows with scalar slice operations.
func refRun(rows [][]byte, srcs, dsts [][]byte, overwrite bool) {
	for i, row := range rows {
		if overwrite {
			clear(dsts[i])
		}
		for j, c := range row {
			gf256.MulAddSlice(c, srcs[j], dsts[i])
		}
	}
}

func randomCase(t testing.TB, rowsN, width, size int, seed int64) (rows, srcs, a, b [][]byte) {
	rng := rand.New(rand.NewSource(seed))
	rows = make([][]byte, rowsN)
	for i := range rows {
		rows[i] = make([]byte, width)
		rng.Read(rows[i])
	}
	srcs = make([][]byte, width)
	for j := range srcs {
		srcs[j] = make([]byte, size)
		rng.Read(srcs[j])
	}
	a = make([][]byte, rowsN)
	b = make([][]byte, rowsN)
	for i := range a {
		a[i] = make([]byte, size)
		rng.Read(a[i])
		b[i] = append([]byte(nil), a[i]...)
	}
	return
}

func TestProgramMatchesScalar(t *testing.T) {
	for _, size := range []int{1, 7, 8, 1023, 4096, 16384 + 3} {
		for _, overwrite := range []bool{false, true} {
			rows, srcs, got, want := randomCase(t, 3, 9, size, int64(size))
			p := Compile(rows)
			p.RunSerial(srcs, got, overwrite)
			refRun(rows, srcs, want, overwrite)
			for i := range got {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("size %d overwrite=%v: row %d diverges from scalar", size, overwrite, i)
				}
			}
		}
	}
}

// TestProgramParallelIdentical forces the worker pool (this repo's CI
// machine may have a single CPU) and requires byte-identical output to
// the serial pass across worker counts and sizes, including sizes that
// do not divide evenly into chunks or words.
func TestProgramParallelIdentical(t *testing.T) {
	_, parallelThreshold, _ := Tuning()
	for _, size := range []int{parallelThreshold, 64<<10 + 5, 256<<10 + 1} {
		rows, srcs, serial, par := randomCase(t, 3, 9, size, int64(size)*7)
		p := Compile(rows)
		p.RunSerial(srcs, serial, true)
		for _, workers := range []int{2, 3, 4, 16} {
			for i := range par {
				clear(par[i])
			}
			p.RunParallel(srcs, par, true, workers)
			for i := range par {
				if !bytes.Equal(par[i], serial[i]) {
					t.Fatalf("size %d workers %d: row %d parallel output differs from serial", size, workers, i)
				}
			}
		}
	}
}

// TestProgramRunSegs checks the segment-batch entry against per-segment
// Run calls over assorted index patterns and segment sizes (sub-vector,
// odd, and strided layouts included).
func TestProgramRunSegs(t *testing.T) {
	cases := []struct {
		name string
		idx  []int32
	}{
		{"single", []int32{3}},
		{"contiguous", []int32{0, 1, 2, 3}},
		{"strided", []int32{0, 1, 9, 10, 18, 19}},
		{"singletons", []int32{1, 4, 7, 10, 13, 16}},
		{"ragged", []int32{0, 2, 3, 4, 11, 17, 18}},
	}
	for _, segLen := range []int{1, 8, 51, 64, 513} {
		for _, tc := range cases {
			for _, overwrite := range []bool{false, true} {
				const nSegs = 20
				rows, srcs, got, want := randomCase(t, 3, 9, nSegs*segLen, int64(segLen)*31)
				p := Compile(rows)
				p.RunSegs(srcs, got, tc.idx, segLen, overwrite)
				// Reference: one contiguous Run per segment over sub-slices.
				for _, s := range tc.idx {
					off := int(s) * segLen
					subSrcs := make([][]byte, len(srcs))
					for j := range srcs {
						subSrcs[j] = srcs[j][off : off+segLen]
					}
					subDsts := make([][]byte, len(want))
					for i := range want {
						subDsts[i] = want[i][off : off+segLen]
					}
					p.RunSerial(subSrcs, subDsts, overwrite)
				}
				for i := range got {
					if !bytes.Equal(got[i], want[i]) {
						t.Fatalf("RunSegs diverges: case=%s segLen=%d overwrite=%v row=%d",
							tc.name, segLen, overwrite, i)
					}
				}
			}
		}
	}
}

// TestProgramRunSegsParallelIdentical forces the (row, index-range) grid
// split and requires byte-identical output to the serial segment batch,
// including index lists that do not divide evenly across workers.
func TestProgramRunSegsParallelIdentical(t *testing.T) {
	idxCases := [][]int32{
		{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
		{0, 2, 3, 4, 11, 17, 18, 23, 24, 29, 30, 31, 37},
		{5},
	}
	for _, segLen := range []int{64, 1024, 4097} {
		for _, idx := range idxCases {
			const nSegs = 40
			rows, srcs, serial, par := randomCase(t, 3, 9, nSegs*segLen, int64(segLen)*13+int64(len(idx)))
			p := Compile(rows)
			// serial and par start byte-identical (randomCase clones); keep
			// the pristine content so unlisted segments compare equal too.
			orig := make([][]byte, len(par))
			for i := range par {
				orig[i] = append([]byte(nil), par[i]...)
			}
			p.runSegs(srcs, serial, idx, segLen, true, 1)
			for _, workers := range []int{2, 3, 7, 16} {
				for i := range par {
					copy(par[i], orig[i])
				}
				// Call the grid split directly: the public entries gate on
				// total bytes, which the smaller cases here may not clear.
				if !p.runSegsGrid(srcs, par, idx, segLen, true, workers) {
					p.runSegs(srcs, par, idx, segLen, true, 1)
				}
				for i := range par {
					if !bytes.Equal(par[i], serial[i]) {
						t.Fatalf("segLen=%d idx=%d workers=%d: row %d parallel segment batch differs from serial",
							segLen, len(idx), workers, i)
					}
				}
			}
		}
	}
}

func TestProgramZeroColumnsAllowNilSources(t *testing.T) {
	rows := [][]byte{{0, 2, 0, 3}}
	srcs := make([][]byte, 4)
	srcs[1] = []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	srcs[3] = []byte{9, 8, 7, 6, 5, 4, 3, 2, 1}
	dst := [][]byte{make([]byte, 9)}
	want := make([]byte, 9)
	gf256.MulAddSlice(2, srcs[1], want)
	gf256.MulAddSlice(3, srcs[3], want)
	Compile(rows).Run(srcs, dst, true)
	if !bytes.Equal(dst[0], want) {
		t.Fatal("nil sources under zero columns mishandled")
	}
}

package kernel

import "testing"

func TestComputeTuningEnvOverrides(t *testing.T) {
	chunk, thresh := computeTuning(4, "32768", "1048576")
	if chunk != 32768 {
		t.Fatalf("chunk override: got %d, want 32768", chunk)
	}
	if thresh != 1048576 {
		t.Fatalf("threshold override: got %d, want 1048576", thresh)
	}
}

func TestComputeTuningClampsEnv(t *testing.T) {
	chunk, thresh := computeTuning(1, "64", "1")
	if chunk != minChunkBytes {
		t.Fatalf("tiny chunk not clamped: got %d, want %d", chunk, minChunkBytes)
	}
	if thresh != minParallelThreshold {
		t.Fatalf("tiny threshold not clamped: got %d, want %d", thresh, minParallelThreshold)
	}
	chunk, thresh = computeTuning(1, "99999999", "999999999999")
	if chunk != maxChunkBytes {
		t.Fatalf("huge chunk not clamped: got %d, want %d", chunk, maxChunkBytes)
	}
	if thresh != maxParallelThreshold {
		t.Fatalf("huge threshold not clamped: got %d, want %d", thresh, maxParallelThreshold)
	}
}

func TestComputeTuningInvalidEnvFallsBackToProbe(t *testing.T) {
	chunk, thresh := computeTuning(2, "not-a-number", "")
	if chunk < minChunkBytes || chunk > maxChunkBytes {
		t.Fatalf("probed chunk %d outside [%d, %d]", chunk, minChunkBytes, maxChunkBytes)
	}
	if thresh < minParallelThreshold || thresh > maxParallelThreshold {
		t.Fatalf("probed threshold %d outside [%d, %d]", thresh, minParallelThreshold, maxParallelThreshold)
	}
}

func TestTuningStable(t *testing.T) {
	c1, t1 := Tuning()
	c2, t2 := Tuning()
	if c1 != c2 || t1 != t2 {
		t.Fatalf("tuning not stable across calls: (%d,%d) then (%d,%d)", c1, t1, c2, t2)
	}
	if c1 < minChunkBytes || t1 < minParallelThreshold {
		t.Fatalf("tuning out of range: chunk=%d threshold=%d", c1, t1)
	}
}

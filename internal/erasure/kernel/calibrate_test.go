package kernel

import "testing"

func TestComputeTuningEnvOverrides(t *testing.T) {
	tu := computeTuning(4, "32768", "1048576")
	if tu.chunkBytes != 32768 {
		t.Fatalf("chunk override: got %d, want 32768", tu.chunkBytes)
	}
	if tu.parallelThreshold != 1048576 {
		t.Fatalf("threshold override: got %d, want 1048576", tu.parallelThreshold)
	}
	// ECFAULT_PARALLEL also pins the strided threshold, clamped into its
	// own (narrower) range.
	if tu.stridedThreshold != maxStridedThreshold {
		t.Fatalf("strided override: got %d, want clamp to %d", tu.stridedThreshold, maxStridedThreshold)
	}
	tu = computeTuning(4, "32768", "65536")
	if tu.stridedThreshold != 65536 {
		t.Fatalf("strided override in range: got %d, want 65536", tu.stridedThreshold)
	}
}

func TestComputeTuningClampsEnv(t *testing.T) {
	tu := computeTuning(1, "64", "1")
	if tu.chunkBytes != minChunkBytes {
		t.Fatalf("tiny chunk not clamped: got %d, want %d", tu.chunkBytes, minChunkBytes)
	}
	if tu.parallelThreshold != minParallelThreshold {
		t.Fatalf("tiny threshold not clamped: got %d, want %d", tu.parallelThreshold, minParallelThreshold)
	}
	if tu.stridedThreshold != minStridedThreshold {
		t.Fatalf("tiny strided threshold not clamped: got %d, want %d", tu.stridedThreshold, minStridedThreshold)
	}
	tu = computeTuning(1, "99999999", "999999999999")
	if tu.chunkBytes != maxChunkBytes {
		t.Fatalf("huge chunk not clamped: got %d, want %d", tu.chunkBytes, maxChunkBytes)
	}
	if tu.parallelThreshold != maxParallelThreshold {
		t.Fatalf("huge threshold not clamped: got %d, want %d", tu.parallelThreshold, maxParallelThreshold)
	}
	if tu.stridedThreshold != maxStridedThreshold {
		t.Fatalf("huge strided threshold not clamped: got %d, want %d", tu.stridedThreshold, maxStridedThreshold)
	}
}

func TestComputeTuningInvalidEnvFallsBackToProbe(t *testing.T) {
	tu := computeTuning(2, "not-a-number", "")
	if tu.chunkBytes < minChunkBytes || tu.chunkBytes > maxChunkBytes {
		t.Fatalf("probed chunk %d outside [%d, %d]", tu.chunkBytes, minChunkBytes, maxChunkBytes)
	}
	if tu.parallelThreshold < minParallelThreshold || tu.parallelThreshold > maxParallelThreshold {
		t.Fatalf("probed threshold %d outside [%d, %d]", tu.parallelThreshold, minParallelThreshold, maxParallelThreshold)
	}
	if tu.stridedThreshold < minStridedThreshold || tu.stridedThreshold > maxStridedThreshold {
		t.Fatalf("probed strided threshold %d outside [%d, %d]", tu.stridedThreshold, minStridedThreshold, maxStridedThreshold)
	}
}

func TestTuningStable(t *testing.T) {
	c1, t1, s1 := Tuning()
	c2, t2, s2 := Tuning()
	if c1 != c2 || t1 != t2 || s1 != s2 {
		t.Fatalf("tuning not stable across calls: (%d,%d,%d) then (%d,%d,%d)", c1, t1, s1, c2, t2, s2)
	}
	if c1 < minChunkBytes || t1 < minParallelThreshold || s1 < minStridedThreshold {
		t.Fatalf("tuning out of range: chunk=%d threshold=%d strided=%d", c1, t1, s1)
	}
}

func TestStridedWorkersGating(t *testing.T) {
	_, _, strided := Tuning()
	if got := StridedWorkers(strided - 1); got != 1 {
		t.Fatalf("below-threshold batch got %d workers, want 1", got)
	}
	// Above threshold the count is the kernel budget capped by total work;
	// with total exactly one threshold the per-worker-minimum cap allows at
	// most 2 workers.
	if got := StridedWorkers(strided); got < 1 || got > 2 {
		t.Fatalf("at-threshold batch got %d workers, want 1 or 2", got)
	}
}

package kernel

import (
	"os"
	"strconv"
)

// DefaultDecodeCacheSize bounds the per-code derived-artifact caches
// (decode programs, Clay plane solvers, gensolve pattern solvers, repair
// plans). Patterns repeat heavily in practice — a cluster has few
// concurrent failure sets — so a modest bound with real LRU eviction
// keeps the hit rate high. Override with ECFAULT_DECODE_CACHE for
// memory-constrained runs.
const DefaultDecodeCacheSize = 1024

// DecodeCacheSize returns the bound for derived-artifact caches:
// DefaultDecodeCacheSize, or the value of ECFAULT_DECODE_CACHE when set
// to a positive integer (values below 1 clamp to 1). It is read at code
// construction time, so changing the variable mid-process only affects
// codes built afterwards.
func DecodeCacheSize() int {
	if v := os.Getenv("ECFAULT_DECODE_CACHE"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			if n < 1 {
				n = 1
			}
			return n
		}
	}
	return DefaultDecodeCacheSize
}

// shardCount is the number of LRU shards in a Sharded cache. Power of two
// so shard selection is a mask. Eight shards keeps lock hold times short
// under the experiment fan-out (worker count is CPU-bounded) without
// fragmenting small caches.
const shardCount = 8

// Sharded is a Mask-keyed cache that spreads entries over several LRU
// shards to cut mutex contention when many goroutines share one code
// instance. Each shard retains singleflight fills, so a given key is
// still computed at most once concurrently. Capacity is split evenly
// across shards (LRU eviction is per shard, i.e. approximate globally);
// caches smaller than the shard count collapse to a single shard to keep
// strict LRU semantics.
type Sharded[V any] struct {
	shards []*LRU[V]
}

// NewSharded returns a sharded cache holding roughly capacity entries.
// capacity < 1 panics.
func NewSharded[V any](capacity int) *Sharded[V] {
	if capacity < 1 {
		panic("kernel: Sharded capacity must be positive")
	}
	n := shardCount
	if capacity < n {
		n = 1
	}
	per := (capacity + n - 1) / n
	s := &Sharded[V]{shards: make([]*LRU[V], n)}
	for i := range s.shards {
		s.shards[i] = NewLRU[V](per)
	}
	return s
}

// shard hashes the mask down to one shard. The multiply-xor mix spreads
// the sparse, low-entropy masks real erasure patterns produce.
func (s *Sharded[V]) shard(key Mask) *LRU[V] {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	h := key[0]
	h = h*0x9e3779b97f4a7c15 + key[1]
	h = h*0x9e3779b97f4a7c15 + key[2]
	h = h*0x9e3779b97f4a7c15 + key[3]
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return s.shards[h&uint64(len(s.shards)-1)]
}

// Get returns the value for key and promotes it within its shard.
func (s *Sharded[V]) Get(key Mask) (V, bool) {
	return s.shard(key).Get(key)
}

// Put inserts or updates key in its shard.
func (s *Sharded[V]) Put(key Mask, val V) {
	s.shard(key).Put(key, val)
}

// GetOrCompute returns the cached value for key, computing it singleflight
// on a miss. See LRU.GetOrCompute.
func (s *Sharded[V]) GetOrCompute(key Mask, compute func() (V, error)) (V, error) {
	return s.shard(key).GetOrCompute(key, compute)
}

// Len returns the total entry count across shards.
func (s *Sharded[V]) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

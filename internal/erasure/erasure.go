// Package erasure defines the common interface implemented by the erasure
// codes in this repository (Reed-Solomon and Clay), along with repair-plan
// types that describe the I/O a reconstruction requires. The plan types are
// what the cluster simulator uses to charge network and disk costs, so they
// carry not just byte counts but also the contiguity of sub-chunk reads,
// which matters for codes with sub-packetization.
package erasure

import (
	"errors"
	"fmt"
	"sort"
)

// Common errors.
var (
	ErrTooManyErasures = errors.New("erasure: more shards lost than the code can repair")
	ErrShardCount      = errors.New("erasure: wrong number of shards")
	ErrShardSize       = errors.New("erasure: shard sizes invalid")
	ErrUnknownPlugin   = errors.New("erasure: unknown plugin")
)

// Code is a systematic erasure code over n = k + m shards.
type Code interface {
	// Name identifies the code and its technique, e.g. "reed_sol_van" or
	// "clay".
	Name() string
	// K is the number of data shards.
	K() int
	// M is the number of parity shards.
	M() int
	// N is the total number of shards (K+M).
	N() int
	// SubChunks is the sub-packetization level alpha: each shard is
	// logically divided into alpha equal sub-chunks. Reed-Solomon has
	// alpha = 1; Clay has alpha = q^t.
	SubChunks() int
	// Encode computes the parity shards from the data shards. shards must
	// have length N; the first K entries must be non-nil, equal length,
	// and divisible by SubChunks. Parity entries are allocated if nil.
	Encode(shards [][]byte) error
	// Decode reconstructs all nil shards in place. At most M shards may
	// be nil.
	Decode(shards [][]byte) error
	// RepairPlan describes the sub-chunk reads needed to reconstruct the
	// given failed shard indices.
	RepairPlan(failed []int) (*Plan, error)
	// Repair reconstructs exactly the shards listed in failed, reading
	// only the sub-chunks prescribed by RepairPlan(failed) from the
	// surviving shards. Failed entries of shards may be nil and are
	// allocated.
	Repair(shards [][]byte, failed []int) error
}

// PatternChecker is implemented by non-MDS codes (LRC, SHEC) whose
// decodability depends on the erasure pattern, not only its size. MDS
// codes need not implement it: any pattern of at most M erasures decodes.
type PatternChecker interface {
	// CanRecover reports whether the given failed shard indices are
	// decodable from the survivors.
	CanRecover(failed []int) bool
}

// CanRecover reports whether a code tolerates the given erasure pattern,
// consulting PatternChecker when implemented and the M bound otherwise.
func CanRecover(c Code, failed []int) bool {
	if pc, ok := c.(PatternChecker); ok {
		return pc.CanRecover(failed)
	}
	return len(failed) <= c.M()
}

// HelperRead lists the sub-chunks a repair must read from one surviving
// shard.
type HelperRead struct {
	Shard     int   // helper shard index
	SubChunks []int // sorted sub-chunk indices to read
	Runs      int   // number of contiguous runs within SubChunks
}

// Plan is the I/O plan for a repair. Plans returned by RepairPlan are
// memoized and shared between concurrent callers (and between snapshot
// forks of a registry code), so callers must treat them as immutable.
type Plan struct {
	Failed        []int
	Helpers       []HelperRead
	SubChunkTotal int // alpha of the code
}

// SubChunksRead returns the total number of sub-chunks the plan reads.
func (p *Plan) SubChunksRead() int {
	total := 0
	for _, h := range p.Helpers {
		total += len(h.SubChunks)
	}
	return total
}

// ReadFraction is the fraction of one full stripe (n * alpha sub-chunks
// worth k*chunk of data) that must be read, expressed in units of whole
// chunks: reading all alpha sub-chunks of one helper counts as 1.0.
func (p *Plan) ReadFraction() float64 {
	return float64(p.SubChunksRead()) / float64(p.SubChunkTotal)
}

// BytesRead returns the bytes read from helpers to repair shards of the
// given chunk size.
func (p *Plan) BytesRead(chunkSize int64) int64 {
	sub := chunkSize / int64(p.SubChunkTotal)
	return int64(p.SubChunksRead()) * sub
}

// countRuns returns the number of maximal contiguous runs in a sorted
// index slice.
func countRuns(idx []int) int {
	if len(idx) == 0 {
		return 0
	}
	runs := 1
	for i := 1; i < len(idx); i++ {
		if idx[i] != idx[i-1]+1 {
			runs++
		}
	}
	return runs
}

// NewHelperRead builds a HelperRead, sorting the indices and counting runs.
func NewHelperRead(shard int, subChunks []int) HelperRead {
	s := append([]int(nil), subChunks...)
	sort.Ints(s)
	return HelperRead{Shard: shard, SubChunks: s, Runs: countRuns(s)}
}

// CheckShards validates a shard slice against the code geometry: length n,
// all non-nil shards equal-sized and divisible by alpha. It returns the
// shard size (0 if all shards are nil).
func CheckShards(shards [][]byte, n, alpha int) (int, error) {
	if len(shards) != n {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrShardCount, len(shards), n)
	}
	size := 0
	for i, s := range shards {
		if s == nil {
			continue
		}
		if size == 0 {
			size = len(s)
		}
		if len(s) != size {
			return 0, fmt.Errorf("%w: shard %d has %d bytes, want %d", ErrShardSize, i, len(s), size)
		}
	}
	if size == 0 {
		return 0, fmt.Errorf("%w: all shards nil", ErrShardSize)
	}
	if size%alpha != 0 {
		return 0, fmt.Errorf("%w: shard size %d not divisible by sub-chunk count %d", ErrShardSize, size, alpha)
	}
	return size, nil
}

// Factory builds a code from (k, m, d). Codes that do not use d ignore it.
type Factory func(k, m, d int) (Code, error)

var registry = map[string]Factory{}

// Register adds a named plugin factory, mirroring Ceph's EC plugin
// registry (jerasure, isa, clay, ...). It panics on duplicates, which would
// indicate an init-order bug.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic("erasure: duplicate plugin " + name)
	}
	registry[name] = f
}

// New instantiates a registered plugin by name.
func New(name string, k, m, d int) (Code, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPlugin, name)
	}
	return f(k, m, d)
}

// Plugins returns the sorted names of all registered plugins.
func Plugins() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

package shec

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/erasure"
)

func newSHEC(t *testing.T, k, m, c int) *SHEC {
	t.Helper()
	s, err := New(k, m, c)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func encodeRandom(t *testing.T, s *SHEC, size int, seed int64) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	shards := make([][]byte, s.N())
	for i := 0; i < s.K(); i++ {
		shards[i] = make([]byte, size)
		rng.Read(shards[i])
	}
	if err := s.Encode(shards); err != nil {
		t.Fatal(err)
	}
	return shards
}

func clone(s [][]byte) [][]byte {
	out := make([][]byte, len(s))
	for i, v := range s {
		if v != nil {
			out[i] = append([]byte(nil), v...)
		}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1, 1); err == nil {
		t.Fatal("zero k accepted")
	}
	if _, err := New(4, 2, 3); err == nil {
		t.Fatal("c > m accepted")
	}
	if _, err := New(4, 5, 2); err == nil {
		t.Fatal("m > k accepted")
	}
	if _, err := New(200, 60, 30); err == nil {
		t.Fatal("n > 256 accepted")
	}
}

func TestWindowCoverage(t *testing.T) {
	s := newSHEC(t, 10, 6, 3)
	if s.Window() != 5 {
		t.Fatalf("window = %d, want ceil(10*3/6)=5", s.Window())
	}
	// Every data chunk must be covered by at least c parities (the
	// necessary condition for c-durability).
	for d := 0; d < s.K(); d++ {
		if got := len(s.coveredBy(d)); got < s.C() {
			t.Fatalf("chunk %d covered by %d parities, want >= %d", d, got, s.C())
		}
	}
}

func TestEveryPatternUpToCDecodes(t *testing.T) {
	for _, params := range []struct{ k, m, c int }{
		{6, 4, 2}, {10, 6, 3}, {8, 4, 2},
	} {
		s := newSHEC(t, params.k, params.m, params.c)
		orig := encodeRandom(t, s, 16, 7)
		n := s.N()
		var patterns [][]int
		var rec func(start int, cur []int)
		rec = func(start int, cur []int) {
			if len(cur) > 0 {
				patterns = append(patterns, append([]int(nil), cur...))
			}
			if len(cur) == params.c {
				return
			}
			for i := start; i < n; i++ {
				rec(i+1, append(cur, i))
			}
		}
		rec(0, nil)
		for _, p := range patterns {
			if !s.CanRecover(p) {
				t.Fatalf("shec(%d,%d,%d): designed-durability pattern %v not recoverable", params.k, params.m, params.c, p)
			}
			work := clone(orig)
			for _, f := range p {
				work[f] = nil
			}
			if err := s.Decode(work); err != nil {
				t.Fatalf("pattern %v: %v", p, err)
			}
			for _, f := range p {
				if !bytes.Equal(work[f], orig[f]) {
					t.Fatalf("shec(%d,%d,%d) pattern %v wrong", params.k, params.m, params.c, p)
				}
			}
		}
	}
}

func TestSomeWidePatternsUnrecoverable(t *testing.T) {
	// SHEC is not MDS: some pattern of m failures must be unrecoverable
	// (that is the trade for cheap repair).
	s := newSHEC(t, 10, 6, 3)
	n := s.N()
	found := false
	var rec func(start int, cur []int) bool
	rec = func(start int, cur []int) bool {
		if len(cur) == s.M() {
			return !s.CanRecover(cur)
		}
		for i := start; i < n; i++ {
			if rec(i+1, append(cur, i)) {
				return true
			}
		}
		return false
	}
	found = rec(0, nil)
	if !found {
		t.Fatal("every m-failure pattern recoverable — that would make shec MDS, which it is not designed to be")
	}
}

func TestSingleRepairReadsWindowNotK(t *testing.T) {
	s := newSHEC(t, 10, 6, 3)
	plan, err := s.RepairPlan([]int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Helpers) != s.Window() {
		t.Fatalf("single repair reads %d chunks, want window=%d (vs k=%d)", len(plan.Helpers), s.Window(), s.K())
	}
	if len(plan.Helpers) >= s.K() {
		t.Fatal("shec repair should beat reading k chunks")
	}
}

func TestRepairAllSingles(t *testing.T) {
	s := newSHEC(t, 10, 6, 3)
	orig := encodeRandom(t, s, 128, 9)
	for f := 0; f < s.N(); f++ {
		work := clone(orig)
		work[f] = nil
		if err := s.Repair(work, []int{f}); err != nil {
			t.Fatalf("repair %d: %v", f, err)
		}
		if !bytes.Equal(work[f], orig[f]) {
			t.Fatalf("repair %d wrong", f)
		}
	}
}

func TestRepairReadsOnlyPlannedHelpers(t *testing.T) {
	s := newSHEC(t, 10, 6, 3)
	orig := encodeRandom(t, s, 64, 11)
	for _, failed := range [][]int{{0}, {9}, {12}, {2, 7}, {3, 11, 15}} {
		if !s.CanRecover(failed) {
			continue
		}
		plan, err := s.RepairPlan(failed)
		if err != nil {
			t.Fatal(err)
		}
		planned := map[int]bool{}
		for _, h := range plan.Helpers {
			planned[h.Shard] = true
		}
		work := clone(orig)
		for _, f := range failed {
			work[f] = nil
		}
		for i := range work {
			if work[i] != nil && !planned[i] {
				for b := range work[i] {
					work[i][b] = 0xEE
				}
			}
		}
		if err := s.Repair(work, failed); err != nil {
			t.Fatalf("repair %v: %v", failed, err)
		}
		for _, f := range failed {
			if !bytes.Equal(work[f], orig[f]) {
				t.Fatalf("repair %v consulted unplanned shards", failed)
			}
		}
	}
}

func TestParityRepairUsesOwnWindow(t *testing.T) {
	s := newSHEC(t, 10, 6, 3)
	plan, err := s.RepairPlan([]int{s.K() + 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Helpers) != s.Window() {
		t.Fatalf("parity repair reads %d, want %d", len(plan.Helpers), s.Window())
	}
	for _, h := range plan.Helpers {
		if h.Shard >= s.K() {
			t.Fatal("parity repair should read only data chunks")
		}
	}
}

func TestRegistry(t *testing.T) {
	code, err := erasure.New("shec", 10, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if code.N() != 16 || code.Name() != "shec" {
		t.Fatalf("registry shec: n=%d", code.N())
	}
	// d=0 defaults c to ceil(m/2).
	code, err = erasure.New("shec", 10, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if code.(*SHEC).C() != 3 {
		t.Fatalf("default c = %d", code.(*SHEC).C())
	}
}

// Package shec implements a Shingled Erasure Code in the style of Ceph's
// "shec" plugin (Miyamae et al.): SHEC(k, m, c) computes m parities, each
// over a sliding ("shingled") window of the k data chunks, sized so that
// any c concurrent failures remain recoverable while single-failure
// repair reads only a window of roughly k*c/m chunks instead of k.
//
// SHEC trades a little durability certainty for recovery efficiency: some
// erasure patterns wider than c are unrecoverable even though m chunks
// are redundant. CanRecover answers pattern decodability exactly (by
// generator rank), and the ECFault white-box guard consults it.
package shec

import (
	"fmt"

	"repro/internal/erasure"
	"repro/internal/erasure/gensolve"
	"repro/internal/erasure/kernel"
	"repro/internal/gf256"
	"repro/internal/gfmat"
)

// SHEC is a SHEC(k, m, c) instance. Chunk order: k data then m parities.
// The construction (generator, window layout, encode program) is
// immutable after New; pattern solvers and repair plans live in
// concurrency-safe singleflight caches, so one instance is safe to share
// across goroutines and snapshot forks.
type SHEC struct {
	k, m, c int
	window  int
	starts  []int // window start (data index) per parity
	gen     *gfmat.Matrix
	enc     *kernel.Program // parity rows of gen, compiled once

	solvers *gensolve.Cache
	plans   *erasure.PlanCache // failed mask -> repair plan
}

// New constructs SHEC(k, m, c): m shingled parities with target
// durability c (1 <= c <= m <= k).
func New(k, m, c int) (*SHEC, error) {
	if k <= 0 || m <= 0 || c <= 0 {
		return nil, fmt.Errorf("shec: k, m, c must be positive (k=%d m=%d c=%d)", k, m, c)
	}
	if c > m {
		return nil, fmt.Errorf("shec: c=%d cannot exceed m=%d", c, m)
	}
	if m > k {
		return nil, fmt.Errorf("shec: m=%d cannot exceed k=%d", m, k)
	}
	if k+m > 256 {
		return nil, fmt.Errorf("shec: n=%d exceeds GF(2^8) limit", k+m)
	}
	// Window width w = ceil(k*c/m); parity j starts at floor(j*k/m) and
	// wraps around the data chunks.
	w := (k*c + m - 1) / m
	if w > k {
		w = k
	}
	s := &SHEC{k: k, m: m, c: c, window: w}
	gen := gfmat.New(k+m, k)
	for i := 0; i < k; i++ {
		gen.Set(i, i, 1)
	}
	for j := 0; j < m; j++ {
		start := j * k / m
		s.starts = append(s.starts, start)
		row := k + j
		for o := 0; o < w; o++ {
			col := (start + o) % k
			// Cauchy-style coefficients keep overlapping windows jointly
			// independent where possible.
			gen.Set(row, col, gf256.Inv(byte(k+j)^byte(col)^0x80))
		}
	}
	s.gen = gen
	s.enc = kernel.CompileMatrix(m, func(i int) []byte { return gen.Row(k + i) })
	s.solvers = gensolve.NewCache(gen)
	s.plans = erasure.NewPlanCache(k + m)
	return s, nil
}

func init() {
	// Registry signature (k, m, d): d carries the durability target c,
	// defaulting to ceil(m/2) as Ceph's shec examples commonly use.
	erasure.Register("shec", func(k, m, d int) (erasure.Code, error) {
		c := d
		if c == 0 {
			c = (m + 1) / 2
		}
		return New(k, m, c)
	})
}

// Name implements erasure.Code.
func (s *SHEC) Name() string { return "shec" }

// K implements erasure.Code.
func (s *SHEC) K() int { return s.k }

// M implements erasure.Code. Patterns of up to C failures are always
// recoverable; wider patterns may or may not be (see CanRecover).
func (s *SHEC) M() int { return s.m }

// N implements erasure.Code.
func (s *SHEC) N() int { return s.k + s.m }

// C is the designed durability (guaranteed recoverable failures).
func (s *SHEC) C() int { return s.c }

// Window is the data-chunk span of each parity.
func (s *SHEC) Window() int { return s.window }

// SubChunks implements erasure.Code.
func (s *SHEC) SubChunks() int { return 1 }

// coveredBy lists the parities whose window contains data chunk d.
func (s *SHEC) coveredBy(d int) []int {
	var out []int
	for j, start := range s.starts {
		for o := 0; o < s.window; o++ {
			if (start+o)%s.k == d {
				out = append(out, j)
				break
			}
		}
	}
	return out
}

// windowMembers returns the data chunks covered by parity j.
func (s *SHEC) windowMembers(j int) []int {
	out := make([]int, 0, s.window)
	for o := 0; o < s.window; o++ {
		out = append(out, (s.starts[j]+o)%s.k)
	}
	return out
}

// Encode implements erasure.Code.
func (s *SHEC) Encode(shards [][]byte) error {
	n := s.N()
	if len(shards) != n {
		return fmt.Errorf("%w: got %d, want %d", erasure.ErrShardCount, len(shards), n)
	}
	size := -1
	for i := 0; i < s.k; i++ {
		if shards[i] == nil {
			return fmt.Errorf("%w: data shard %d is nil", erasure.ErrShardSize, i)
		}
		if size == -1 {
			size = len(shards[i])
		} else if len(shards[i]) != size {
			return fmt.Errorf("%w: shard %d", erasure.ErrShardSize, i)
		}
	}
	for i := s.k; i < n; i++ {
		if shards[i] == nil || len(shards[i]) != size {
			shards[i] = make([]byte, size)
		}
	}
	s.enc.Run(shards[:s.k], shards[s.k:], true)
	return nil
}

// CanRecover reports whether the erasure pattern is decodable.
func (s *SHEC) CanRecover(failed []int) bool {
	erased := make([]bool, s.N())
	for _, f := range failed {
		if f < 0 || f >= s.N() {
			return false
		}
		erased[f] = true
	}
	return s.solvers.CanRecover(erased)
}

// Decode implements erasure.Code.
func (s *SHEC) Decode(shards [][]byte) error {
	size, err := erasure.CheckShards(shards, s.N(), 1)
	if err != nil {
		return err
	}
	erased := make([]bool, s.N())
	any := false
	for i, sh := range shards {
		if sh == nil {
			erased[i] = true
			any = true
		}
	}
	if !any {
		return nil
	}
	sol, err := s.solvers.Solver(erased)
	if err != nil {
		return fmt.Errorf("%w: %v", erasure.ErrTooManyErasures, err)
	}
	sol.Apply(shards, size)
	return nil
}

// RepairPlan implements erasure.Code. A single data failure reads one
// covering parity's window (window-1 data chunks plus the parity, fewer
// than Reed-Solomon's k); other patterns use the decode input set. Plans
// are memoized per failed set and shared; callers must not mutate them.
func (s *SHEC) RepairPlan(failed []int) (*erasure.Plan, error) {
	return s.plans.Get(failed, func() (*erasure.Plan, error) {
		return s.buildRepairPlan(failed)
	})
}

func (s *SHEC) buildRepairPlan(failed []int) (*erasure.Plan, error) {
	if len(failed) == 0 {
		return &erasure.Plan{SubChunkTotal: 1}, nil
	}
	erased := make([]bool, s.N())
	for _, f := range failed {
		if f < 0 || f >= s.N() {
			return nil, fmt.Errorf("shec: invalid shard index %d", f)
		}
		erased[f] = true
	}
	plan := &erasure.Plan{Failed: append([]int(nil), failed...), SubChunkTotal: 1}
	if len(failed) == 1 && failed[0] < s.k {
		if cover := s.coveredBy(failed[0]); len(cover) > 0 {
			j := cover[0]
			for _, d := range s.windowMembers(j) {
				if d != failed[0] {
					plan.Helpers = append(plan.Helpers, erasure.NewHelperRead(d, []int{0}))
				}
			}
			plan.Helpers = append(plan.Helpers, erasure.NewHelperRead(s.k+j, []int{0}))
			return plan, nil
		}
	}
	if len(failed) == 1 && failed[0] >= s.k {
		// A parity rebuilds from its own window.
		for _, d := range s.windowMembers(failed[0] - s.k) {
			plan.Helpers = append(plan.Helpers, erasure.NewHelperRead(d, []int{0}))
		}
		return plan, nil
	}
	sol, err := s.solvers.Solver(erased)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", erasure.ErrTooManyErasures, err)
	}
	for _, in := range sol.Inputs {
		plan.Helpers = append(plan.Helpers, erasure.NewHelperRead(in, []int{0}))
	}
	return plan, nil
}

// Repair implements erasure.Code, reading only the plan's shards.
func (s *SHEC) Repair(shards [][]byte, failed []int) error {
	if len(failed) == 0 {
		return nil
	}
	plan, err := s.RepairPlan(failed)
	if err != nil {
		return err
	}
	size := -1
	for _, h := range plan.Helpers {
		if shards[h.Shard] == nil {
			return fmt.Errorf("shec: helper shard %d is nil", h.Shard)
		}
		if size == -1 {
			size = len(shards[h.Shard])
		}
	}
	if len(failed) == 1 {
		f := failed[0]
		if f >= s.k {
			// Re-encode the parity from its window (the compiled row skips
			// the zero columns outside it).
			buf := make([]byte, size)
			s.enc.Plan(f-s.k).Mul(shards[:s.k], buf)
			shards[f] = buf
			return nil
		}
		if cover := s.coveredBy(f); len(cover) > 0 {
			// Solve the covering parity's equation for the lost chunk in a
			// single kernel pass: fold the 1/row[f] scaling into the
			// coefficients instead of rescaling the result.
			j := cover[0]
			row := s.gen.Row(s.k + j)
			inv := gf256.Inv(row[f])
			coeffs := make([]byte, s.k+1)
			for _, d := range s.windowMembers(j) {
				if d != f {
					coeffs[d] = gf256.Mul(inv, row[d])
				}
			}
			coeffs[s.k] = inv // the parity shard itself
			buf := make([]byte, size)
			gf256.MulAddRow(coeffs, append(shards[:s.k:s.k], shards[s.k+j]), buf)
			shards[f] = buf
			return nil
		}
	}
	work := make([][]byte, s.N())
	for _, h := range plan.Helpers {
		work[h.Shard] = shards[h.Shard]
	}
	if err := s.Decode(work); err != nil {
		return err
	}
	for _, f := range failed {
		shards[f] = work[f]
	}
	return nil
}

package erasure

import (
	"testing"
)

func TestCountRunsViaHelperRead(t *testing.T) {
	cases := []struct {
		in   []int
		runs int
	}{
		{nil, 0},
		{[]int{3}, 1},
		{[]int{0, 1, 2}, 1},
		{[]int{0, 2, 4}, 3},
		{[]int{5, 6, 9, 10, 11, 20}, 3},
		{[]int{2, 0, 1}, 1}, // unsorted input gets sorted
	}
	for _, c := range cases {
		h := NewHelperRead(0, c.in)
		if h.Runs != c.runs {
			t.Errorf("runs(%v) = %d, want %d", c.in, h.Runs, c.runs)
		}
	}
}

func TestPlanAccounting(t *testing.T) {
	p := &Plan{
		Failed: []int{1},
		Helpers: []HelperRead{
			NewHelperRead(0, []int{0, 1}),
			NewHelperRead(2, []int{2, 3}),
		},
		SubChunkTotal: 4,
	}
	if p.SubChunksRead() != 4 {
		t.Fatalf("SubChunksRead = %d", p.SubChunksRead())
	}
	if p.ReadFraction() != 1.0 {
		t.Fatalf("ReadFraction = %f", p.ReadFraction())
	}
	if p.BytesRead(4096) != 4096 {
		t.Fatalf("BytesRead = %d", p.BytesRead(4096))
	}
}

func TestCheckShards(t *testing.T) {
	shards := [][]byte{make([]byte, 8), nil, make([]byte, 8)}
	size, err := CheckShards(shards, 3, 4)
	if err != nil || size != 8 {
		t.Fatalf("size=%d err=%v", size, err)
	}
	if _, err := CheckShards(shards, 4, 1); err == nil {
		t.Fatal("wrong count accepted")
	}
	bad := [][]byte{make([]byte, 8), make([]byte, 9)}
	if _, err := CheckShards(bad, 2, 1); err == nil {
		t.Fatal("unequal sizes accepted")
	}
	odd := [][]byte{make([]byte, 7)}
	if _, err := CheckShards(odd, 1, 4); err == nil {
		t.Fatal("non-divisible size accepted")
	}
	empty := [][]byte{nil, nil}
	if _, err := CheckShards(empty, 2, 1); err == nil {
		t.Fatal("all-nil accepted")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register("dup-test", nil)
	Register("dup-test", nil)
}

func TestPluginsSorted(t *testing.T) {
	names := Plugins()
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatal("Plugins() not sorted")
		}
	}
}

package gensolve

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/gfmat"
)

// rsGen builds an MDS systematic generator for testing.
func rsGen(n, k int) *gfmat.Matrix { return gfmat.Cauchy(n, k) }

func TestSolverRecoversMDS(t *testing.T) {
	gen := rsGen(8, 5)
	cache := NewCache(gen)
	rng := rand.New(rand.NewSource(1))
	data := make([][]byte, 5)
	for i := range data {
		data[i] = make([]byte, 32)
		rng.Read(data[i])
	}
	// Encode all 8 shards.
	shards := make([][]byte, 8)
	for i := 0; i < 8; i++ {
		shards[i] = make([]byte, 32)
		row := gen.Row(i)
		for j := 0; j < 5; j++ {
			for b := 0; b < 32; b++ {
				shards[i][b] ^= mulByte(row[j], data[j][b])
			}
		}
	}
	orig := make([][]byte, 8)
	for i := range shards {
		orig[i] = append([]byte(nil), shards[i]...)
	}
	erased := make([]bool, 8)
	erased[1], erased[4], erased[7] = true, true, true
	sol, err := cache.Solver(erased)
	if err != nil {
		t.Fatal(err)
	}
	shards[1], shards[4], shards[7] = nil, nil, nil
	sol.Apply(shards, 32)
	for _, i := range []int{1, 4, 7} {
		if !bytes.Equal(shards[i], orig[i]) {
			t.Fatalf("shard %d wrong", i)
		}
	}
}

func mulByte(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a&0x80 != 0
		a <<= 1
		if hi {
			a ^= 0x1d
		}
		b >>= 1
	}
	return p
}

func TestUndecodablePattern(t *testing.T) {
	// A degenerate generator: two identical parity rows.
	gen := gfmat.New(4, 2)
	gen.Set(0, 0, 1)
	gen.Set(1, 1, 1)
	gen.Set(2, 0, 1)
	gen.Set(2, 1, 1)
	gen.Set(3, 0, 1)
	gen.Set(3, 1, 1) // duplicate of row 2
	cache := NewCache(gen)
	// Losing both data shards leaves two dependent rows.
	if _, err := cache.Solver([]bool{true, true, false, false}); !errors.Is(err, ErrUndecodable) {
		t.Fatalf("got %v", err)
	}
	if cache.CanRecover([]bool{true, true, false, false}) {
		t.Fatal("CanRecover should be false")
	}
	// Losing one data shard is fine.
	if !cache.CanRecover([]bool{true, false, false, false}) {
		t.Fatal("single loss should recover")
	}
}

func TestSolverCacheReuse(t *testing.T) {
	cache := NewCache(rsGen(6, 4))
	erased := []bool{false, true, false, false, false, false}
	a, err := cache.Solver(erased)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cache.Solver(erased)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("solver not memoized")
	}
}

func TestSolverMaskLengthValidation(t *testing.T) {
	cache := NewCache(rsGen(6, 4))
	if _, err := cache.Solver([]bool{true}); err == nil {
		t.Fatal("short mask accepted")
	}
}

func TestIndependentRowsSelection(t *testing.T) {
	gen := rsGen(8, 5)
	basis, chosen := IndependentRows(gen, []int{0, 1, 2, 3, 4}, 5)
	if basis == nil || len(chosen) != 5 {
		t.Fatal("identity-prefix rows must be independent")
	}
	// Candidates with duplicates of the same row can't reach rank 5.
	_, chosen = IndependentRows(gen, []int{0, 0, 0, 0, 0}, 5)
	if len(chosen) != 1 {
		t.Fatalf("chose %d rows from duplicates", len(chosen))
	}
}

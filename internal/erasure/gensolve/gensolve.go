// Package gensolve provides erasure decoding for arbitrary
// generator-matrix codes (LRC, SHEC, ...): given the code's n x k
// generator and an erasure pattern, it selects k linearly independent
// surviving rows and expresses every lost symbol as a combination of
// them. Codes whose decodability is pattern-dependent (non-MDS) use the
// same machinery to answer "is this pattern recoverable" exactly.
package gensolve

import (
	"errors"
	"fmt"

	"repro/internal/erasure/kernel"
	"repro/internal/gf256"
	"repro/internal/gfmat"
)

// ErrUndecodable is returned when the surviving rows do not span the data.
var ErrUndecodable = errors.New("gensolve: erasure pattern not decodable")

// Solver expresses lost shards over a set of surviving input shards. The
// reconstruction rows are compiled into a kernel program at build time, so
// Apply is a single program execution per stripe.
type Solver struct {
	// Inputs are the surviving shard indices the solution reads.
	Inputs []int
	// Lost are the erased shard indices, in ascending order.
	Lost []int
	// LostRows[i] are the coefficients over Inputs reconstructing Lost[i].
	LostRows [][]byte

	prog *kernel.Program
}

// Apply reconstructs the lost shards in place. Input shards must be
// non-nil and equally sized.
func (s *Solver) Apply(shards [][]byte, size int) {
	if len(s.Lost) == 0 {
		return
	}
	if s.prog == nil {
		// Solvers built by hand in tests compile on first use.
		s.prog = kernel.Compile(s.LostRows)
	}
	srcs := make([][]byte, len(s.Inputs))
	for j, src := range s.Inputs {
		srcs[j] = shards[src]
	}
	dsts := make([][]byte, len(s.Lost))
	for i := range dsts {
		dsts[i] = make([]byte, size)
	}
	s.prog.Run(srcs, dsts, true)
	for i, lost := range s.Lost {
		shards[lost] = dsts[i]
	}
}

// Cache memoizes solvers per erasure pattern for one generator. Fills
// are singleflight and the cache is bounded by the shared
// derived-artifact size (ECFAULT_DECODE_CACHE), so one Cache serves
// concurrent goroutines without duplicate solves.
type Cache struct {
	gen *gfmat.Matrix
	k   int

	lru *kernel.Sharded[*Solver]
}

// NewCache wraps a generator matrix (n rows, k columns).
func NewCache(gen *gfmat.Matrix) *Cache {
	return &Cache{gen: gen, k: gen.Cols, lru: kernel.NewSharded[*Solver](kernel.DecodeCacheSize())}
}

// Solver returns the decode solution for the given erasure flags (length
// n), or ErrUndecodable.
func (c *Cache) Solver(erased []bool) (*Solver, error) {
	if len(erased) != c.gen.Rows {
		return nil, fmt.Errorf("gensolve: erased mask has %d entries, want %d", len(erased), c.gen.Rows)
	}
	return c.lru.GetOrCompute(kernel.MaskOfBools(erased), func() (*Solver, error) {
		return c.build(erased)
	})
}

func (c *Cache) build(erased []bool) (*Solver, error) {
	var surviving, lost []int
	for i := 0; i < c.gen.Rows; i++ {
		if erased[i] {
			lost = append(lost, i)
		} else {
			surviving = append(surviving, i)
		}
	}
	basis, inputs := IndependentRows(c.gen, surviving, c.k)
	if len(inputs) < c.k {
		return nil, fmt.Errorf("%w: lost %v", ErrUndecodable, lost)
	}
	inv, err := basis.Invert()
	if err != nil {
		return nil, fmt.Errorf("gensolve: selected rows not invertible: %w", err)
	}
	s := &Solver{Inputs: inputs, Lost: lost}
	for _, li := range lost {
		row := c.gen.SubMatrix([]int{li}).Mul(inv)
		s.LostRows = append(s.LostRows, row.Row(0))
	}
	s.prog = kernel.Compile(s.LostRows)
	return s, nil
}

// CanRecover reports whether the erasure flags are decodable.
func (c *Cache) CanRecover(erased []bool) bool {
	_, err := c.Solver(erased)
	return err == nil
}

// IndependentRows selects up to want linearly independent rows (in
// candidate order) from m, returning the selected square matrix and the
// chosen indices. When fewer than want independent rows exist the matrix
// is nil and the short index list is returned.
func IndependentRows(m *gfmat.Matrix, candidates []int, want int) (*gfmat.Matrix, []int) {
	cols := m.Cols
	echelon := make([][]byte, 0, want)
	pivots := make([]int, 0, want)
	chosen := make([]int, 0, want)
	for _, r := range candidates {
		row := append([]byte(nil), m.Row(r)...)
		for i, p := range pivots {
			if row[p] != 0 {
				gf256.MulAddSlice(row[p], echelon[i], row)
			}
		}
		pivot := -1
		for j := 0; j < cols; j++ {
			if row[j] != 0 {
				pivot = j
				break
			}
		}
		if pivot == -1 {
			continue
		}
		gf256.MulSlice(gf256.Inv(row[pivot]), row, row)
		echelon = append(echelon, row)
		pivots = append(pivots, pivot)
		chosen = append(chosen, r)
		if len(chosen) == want {
			break
		}
	}
	if len(chosen) < want {
		return nil, chosen
	}
	return m.SubMatrix(chosen), chosen
}

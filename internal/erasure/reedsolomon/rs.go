// Package reedsolomon implements classic systematic Reed-Solomon erasure
// coding over GF(2^8), in both the Vandermonde-derived form used by
// Jerasure's reed_sol_van technique and the Cauchy form used by
// cauchy_orig. Any k of the n shards reconstruct the original data; repair
// of any set of <= m lost shards reads k whole surviving chunks.
package reedsolomon

import (
	"fmt"

	"repro/internal/erasure"
	"repro/internal/erasure/kernel"
	"repro/internal/gfmat"
)

// Technique selects how the generator matrix is constructed.
type Technique int

const (
	// Vandermonde mirrors Jerasure's reed_sol_van construction.
	Vandermonde Technique = iota
	// Cauchy mirrors Jerasure's cauchy_orig construction.
	Cauchy
)

func (t Technique) String() string {
	if t == Cauchy {
		return "cauchy_orig"
	}
	return "reed_sol_van"
}

// decProgram is a compiled reconstruction for one survivor set: the rows
// of the inverted sub-generator belonging to the missing data shards,
// ready to run over the k survivor shards.
type decProgram struct {
	rows    []int // survivor shard indices feeding the program, len k
	missing []int // data shard indices the program reconstructs
	prog    *kernel.Program
}

// RS is a Reed-Solomon code instance. The construction (generator matrix,
// encode program) is immutable after New; decode programs and repair
// plans are derived artifacts held in concurrency-safe singleflight
// caches, so one instance is safe to share across goroutines and
// snapshot forks.
type RS struct {
	k, m      int
	technique Technique
	gen       *gfmat.Matrix   // n x k systematic generator
	enc       *kernel.Program // parity rows of gen, compiled once

	decodeLRU *kernel.Sharded[*decProgram] // survivor mask -> compiled decode
	plans     *erasure.PlanCache           // failed mask -> repair plan
}

// New constructs an RS(k+m, k) code.
func New(k, m int, technique Technique) (*RS, error) {
	if k <= 0 || m <= 0 {
		return nil, fmt.Errorf("reedsolomon: k and m must be positive (k=%d m=%d)", k, m)
	}
	if k+m > 256 {
		return nil, fmt.Errorf("reedsolomon: k+m = %d exceeds GF(2^8) limit of 256", k+m)
	}
	var gen *gfmat.Matrix
	if technique == Cauchy {
		gen = gfmat.Cauchy(k+m, k)
	} else {
		gen = gfmat.SystematicVandermonde(k+m, k)
	}
	parity := make([][]byte, m)
	for i := range parity {
		parity[i] = gen.Row(k + i)
	}
	return &RS{
		k: k, m: m, technique: technique, gen: gen,
		enc:       kernel.Compile(parity),
		decodeLRU: kernel.NewSharded[*decProgram](kernel.DecodeCacheSize()),
		plans:     erasure.NewPlanCache(k + m),
	}, nil
}

func init() {
	// Plugin names follow Table 1 of the paper: the jerasure and isa
	// plugins expose RS techniques.
	erasure.Register("jerasure_reed_sol_van", func(k, m, d int) (erasure.Code, error) {
		return New(k, m, Vandermonde)
	})
	erasure.Register("jerasure_cauchy_orig", func(k, m, d int) (erasure.Code, error) {
		return New(k, m, Cauchy)
	})
	erasure.Register("isa_reed_sol_van", func(k, m, d int) (erasure.Code, error) {
		return New(k, m, Vandermonde)
	})
}

// Name implements erasure.Code.
func (r *RS) Name() string { return r.technique.String() }

// K implements erasure.Code.
func (r *RS) K() int { return r.k }

// M implements erasure.Code.
func (r *RS) M() int { return r.m }

// N implements erasure.Code.
func (r *RS) N() int { return r.k + r.m }

// SubChunks implements erasure.Code. Reed-Solomon has no
// sub-packetization.
func (r *RS) SubChunks() int { return 1 }

// Generator exposes the n x k generator matrix (for tests and tooling).
func (r *RS) Generator() *gfmat.Matrix { return r.gen.Clone() }

// Encode implements erasure.Code.
func (r *RS) Encode(shards [][]byte) error {
	n := r.N()
	if len(shards) != n {
		return fmt.Errorf("%w: got %d, want %d", erasure.ErrShardCount, len(shards), n)
	}
	size := -1
	for i := 0; i < r.k; i++ {
		if shards[i] == nil {
			return fmt.Errorf("%w: data shard %d is nil", erasure.ErrShardSize, i)
		}
		if size == -1 {
			size = len(shards[i])
		} else if len(shards[i]) != size {
			return fmt.Errorf("%w: shard %d has %d bytes, want %d", erasure.ErrShardSize, i, len(shards[i]), size)
		}
	}
	for i := r.k; i < n; i++ {
		if shards[i] == nil || len(shards[i]) != size {
			shards[i] = make([]byte, size)
		}
	}
	r.enc.Run(shards[:r.k], shards[r.k:], true)
	return nil
}

// Decode implements erasure.Code.
func (r *RS) Decode(shards [][]byte) error {
	size, err := erasure.CheckShards(shards, r.N(), 1)
	if err != nil {
		return err
	}
	var missing, present []int
	for i, s := range shards {
		if s == nil {
			missing = append(missing, i)
		} else {
			present = append(present, i)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	if len(missing) > r.m {
		return fmt.Errorf("%w: %d lost, max %d", erasure.ErrTooManyErasures, len(missing), r.m)
	}
	// Recover the data vector from the first k surviving shards, then
	// re-encode whatever is missing.
	dp, err := r.decodeProgram(present[:r.k])
	if err != nil {
		return err
	}
	srcs := make([][]byte, r.k)
	for j, src := range dp.rows {
		srcs[j] = shards[src]
	}
	dsts := make([][]byte, len(dp.missing))
	for i := range dsts {
		dsts[i] = make([]byte, size)
	}
	dp.prog.Run(srcs, dsts, true)
	for i, idx := range dp.missing {
		shards[idx] = dsts[i]
	}
	for _, idx := range missing {
		if idx < r.k {
			continue // already rebuilt above
		}
		buf := make([]byte, size)
		r.enc.Plan(idx-r.k).Mul(shards[:r.k], buf)
		shards[idx] = buf
	}
	return nil
}

// decodeProgram returns the compiled reconstruction for the given k
// surviving rows, memoized per survivor set in a bounded LRU keyed by the
// survivor bitmask (an allocation-free lookup, unlike the fmt.Sprint keys
// this replaces).
func (r *RS) decodeProgram(rows []int) (*decProgram, error) {
	return r.decodeLRU.GetOrCompute(kernel.MaskOf(rows...), func() (*decProgram, error) {
		sub := r.gen.SubMatrix(rows)
		inv, err := sub.Invert()
		if err != nil {
			return nil, fmt.Errorf("reedsolomon: decode matrix for rows %v: %w", rows, err)
		}
		dp := &decProgram{rows: append([]int(nil), rows...)}
		have := make([]bool, r.k)
		for _, idx := range rows {
			if idx < r.k {
				have[idx] = true
			}
		}
		var recon [][]byte
		for i := 0; i < r.k; i++ {
			if !have[i] {
				dp.missing = append(dp.missing, i)
				recon = append(recon, inv.Row(i))
			}
		}
		dp.prog = kernel.Compile(recon)
		return dp, nil
	})
}

// RepairPlan implements erasure.Code: RS repair reads k whole surviving
// chunks (data shards preferred, matching Ceph's shard ordering). Plans
// are memoized per failed set and shared; callers must not mutate them.
func (r *RS) RepairPlan(failed []int) (*erasure.Plan, error) {
	return r.plans.Get(failed, func() (*erasure.Plan, error) {
		return r.buildRepairPlan(failed)
	})
}

func (r *RS) buildRepairPlan(failed []int) (*erasure.Plan, error) {
	if len(failed) == 0 {
		return &erasure.Plan{SubChunkTotal: 1}, nil
	}
	if len(failed) > r.m {
		return nil, fmt.Errorf("%w: %d lost, max %d", erasure.ErrTooManyErasures, len(failed), r.m)
	}
	lost := map[int]bool{}
	for _, f := range failed {
		if f < 0 || f >= r.N() {
			return nil, fmt.Errorf("reedsolomon: invalid shard index %d", f)
		}
		lost[f] = true
	}
	plan := &erasure.Plan{Failed: append([]int(nil), failed...), SubChunkTotal: 1}
	for i := 0; i < r.N() && len(plan.Helpers) < r.k; i++ {
		if lost[i] {
			continue
		}
		plan.Helpers = append(plan.Helpers, erasure.NewHelperRead(i, []int{0}))
	}
	if len(plan.Helpers) < r.k {
		return nil, erasure.ErrTooManyErasures
	}
	return plan, nil
}

// Repair implements erasure.Code. For RS it reduces to Decode on the shards
// the plan reads.
func (r *RS) Repair(shards [][]byte, failed []int) error {
	plan, err := r.RepairPlan(failed)
	if err != nil {
		return err
	}
	// Build a working set containing only planned helpers + holes, so the
	// implementation provably uses nothing else.
	work := make([][]byte, r.N())
	for _, h := range plan.Helpers {
		work[h.Shard] = shards[h.Shard]
	}
	if err := r.Decode(work); err != nil {
		return err
	}
	for _, f := range failed {
		shards[f] = work[f]
	}
	return nil
}

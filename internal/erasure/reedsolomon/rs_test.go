package reedsolomon

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/erasure"
)

func newRS(t *testing.T, k, m int, tech Technique) *RS {
	t.Helper()
	r, err := New(k, m, tech)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func encodeRandom(t *testing.T, r *RS, size int, seed int64) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	shards := make([][]byte, r.N())
	for i := 0; i < r.K(); i++ {
		shards[i] = make([]byte, size)
		rng.Read(shards[i])
	}
	if err := r.Encode(shards); err != nil {
		t.Fatal(err)
	}
	return shards
}

func clone(s [][]byte) [][]byte {
	out := make([][]byte, len(s))
	for i, v := range s {
		if v != nil {
			out[i] = append([]byte(nil), v...)
		}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 3, Vandermonde); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := New(200, 100, Vandermonde); err == nil {
		t.Fatal("n>256 accepted")
	}
}

func TestEncodeDecodeBothTechniques(t *testing.T) {
	for _, tech := range []Technique{Vandermonde, Cauchy} {
		r := newRS(t, 9, 3, tech)
		orig := encodeRandom(t, r, 1024, 7)
		for a := 0; a < r.N(); a++ {
			for b := a + 1; b < r.N(); b++ {
				for c := b + 1; c < r.N(); c++ {
					work := clone(orig)
					work[a], work[b], work[c] = nil, nil, nil
					if err := r.Decode(work); err != nil {
						t.Fatalf("%v decode (%d,%d,%d): %v", tech, a, b, c, err)
					}
					for _, i := range []int{a, b, c} {
						if !bytes.Equal(work[i], orig[i]) {
							t.Fatalf("%v shard %d wrong after (%d,%d,%d)", tech, i, a, b, c)
						}
					}
				}
			}
		}
	}
}

func TestSystematic(t *testing.T) {
	r := newRS(t, 4, 2, Vandermonde)
	orig := encodeRandom(t, r, 64, 3)
	// Data shards must pass through unchanged (systematic property).
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < r.K(); i++ {
		want := make([]byte, 64)
		rng.Read(want)
		if !bytes.Equal(orig[i], want) {
			t.Fatal("encode modified a data shard")
		}
	}
}

func TestDecodeNoErasuresIsNoop(t *testing.T) {
	r := newRS(t, 3, 2, Cauchy)
	orig := encodeRandom(t, r, 32, 5)
	work := clone(orig)
	if err := r.Decode(work); err != nil {
		t.Fatal(err)
	}
	for i := range work {
		if !bytes.Equal(work[i], orig[i]) {
			t.Fatal("no-op decode changed shards")
		}
	}
}

func TestTooManyErasures(t *testing.T) {
	r := newRS(t, 3, 2, Vandermonde)
	orig := encodeRandom(t, r, 16, 1)
	work := clone(orig)
	work[0], work[1], work[2] = nil, nil, nil
	if err := r.Decode(work); err == nil {
		t.Fatal("expected too-many-erasures error")
	}
}

func TestRepairPlanReadsKChunks(t *testing.T) {
	r := newRS(t, 9, 3, Vandermonde)
	plan, err := r.RepairPlan([]int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Helpers) != 9 {
		t.Fatalf("helpers = %d, want k=9", len(plan.Helpers))
	}
	if plan.ReadFraction() != 9 {
		t.Fatalf("read fraction %.2f, want 9", plan.ReadFraction())
	}
	for _, h := range plan.Helpers {
		if h.Shard == 2 {
			t.Fatal("plan reads the failed shard")
		}
		if h.Runs != 1 || len(h.SubChunks) != 1 {
			t.Fatal("RS helper reads must be one whole chunk")
		}
	}
}

func TestRepairUsesOnlyPlannedHelpers(t *testing.T) {
	r := newRS(t, 6, 3, Cauchy)
	orig := encodeRandom(t, r, 128, 9)
	plan, err := r.RepairPlan([]int{1, 7})
	if err != nil {
		t.Fatal(err)
	}
	planned := map[int]bool{}
	for _, h := range plan.Helpers {
		planned[h.Shard] = true
	}
	work := clone(orig)
	work[1], work[7] = nil, nil
	for i := range work {
		if i == 1 || i == 7 || planned[i] {
			continue
		}
		for b := range work[i] {
			work[i][b] = 0xEE // poison unplanned helpers
		}
	}
	if err := r.Repair(work, []int{1, 7}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(work[1], orig[1]) || !bytes.Equal(work[7], orig[7]) {
		t.Fatal("repair consulted shards outside its plan")
	}
}

func TestRepairPlanErrors(t *testing.T) {
	r := newRS(t, 3, 2, Vandermonde)
	if _, err := r.RepairPlan([]int{0, 1, 2}); err == nil {
		t.Fatal("3 failures on m=2 accepted")
	}
	if _, err := r.RepairPlan([]int{9}); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	r := newRS(t, 5, 3, Vandermonde)
	f := func(seed int64, sizeRaw uint8, lossRaw uint8) bool {
		size := 1 + int(sizeRaw)
		rng := rand.New(rand.NewSource(seed))
		shards := make([][]byte, r.N())
		for i := 0; i < r.K(); i++ {
			shards[i] = make([]byte, size)
			rng.Read(shards[i])
		}
		if err := r.Encode(shards); err != nil {
			return false
		}
		orig := clone(shards)
		nLost := 1 + int(lossRaw)%r.M()
		for _, i := range rng.Perm(r.N())[:nLost] {
			shards[i] = nil
		}
		if err := r.Decode(shards); err != nil {
			return false
		}
		for i := range shards {
			if !bytes.Equal(shards[i], orig[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRegistryNames(t *testing.T) {
	for _, name := range []string{"jerasure_reed_sol_van", "jerasure_cauchy_orig", "isa_reed_sol_van"} {
		code, err := erasure.New(name, 9, 3, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if code.K() != 9 || code.M() != 3 || code.SubChunks() != 1 {
			t.Fatalf("%s geometry wrong", name)
		}
	}
	if _, err := erasure.New("nonsense", 9, 3, 0); err == nil {
		t.Fatal("unknown plugin accepted")
	}
}

func TestDecodeMatrixCacheConcurrency(t *testing.T) {
	r := newRS(t, 6, 3, Vandermonde)
	orig := encodeRandom(t, r, 256, 17)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			work := clone(orig)
			work[g%r.N()] = nil
			done <- r.Decode(work)
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func BenchmarkRSEncode12_9(b *testing.B) {
	r, _ := New(9, 3, Vandermonde)
	size := 64 * 1024
	shards := make([][]byte, r.N())
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < r.K(); i++ {
		shards[i] = make([]byte, size)
		rng.Read(shards[i])
	}
	b.SetBytes(int64(size * r.K()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSDecode12_9(b *testing.B) {
	r, _ := New(9, 3, Vandermonde)
	size := 64 * 1024
	shards := make([][]byte, r.N())
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < r.K(); i++ {
		shards[i] = make([]byte, size)
		rng.Read(shards[i])
	}
	if err := r.Encode(shards); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := make([][]byte, len(shards))
		copy(work, shards)
		work[0] = nil
		if err := r.Decode(work); err != nil {
			b.Fatal(err)
		}
	}
}

package conformance

import (
	"testing"

	"repro/internal/erasure"

	_ "repro/internal/erasure/clay"
	_ "repro/internal/erasure/lrc"
	_ "repro/internal/erasure/reedsolomon"
	_ "repro/internal/erasure/shec"
)

// TestAllPluginsConform runs the compliance suite over every registered
// plugin at representative geometries, including the paper's RS(12,9) and
// Clay(12,9,11).
func TestAllPluginsConform(t *testing.T) {
	cases := []struct {
		plugin  string
		k, m, d int
	}{
		{"jerasure_reed_sol_van", 9, 3, 0},
		{"jerasure_reed_sol_van", 4, 2, 0},
		{"jerasure_cauchy_orig", 9, 3, 0},
		{"isa_reed_sol_van", 6, 3, 0},
		{"clay", 9, 3, 11},
		{"clay", 4, 2, 5},
		{"clay", 8, 3, 10}, // shortened (q does not divide n)
		{"lrc", 8, 2, 2},
		{"lrc", 12, 2, 3},
		{"shec", 10, 6, 3},
		{"shec", 6, 4, 2},
	}
	for _, tc := range cases {
		code, err := erasure.New(tc.plugin, tc.k, tc.m, tc.d)
		if err != nil {
			t.Fatalf("%s(k=%d,m=%d,d=%d): %v", tc.plugin, tc.k, tc.m, tc.d, err)
		}
		t.Run(Describe(code), func(t *testing.T) {
			Run(t, code, Options{Seed: int64(tc.k*100 + tc.m)})
		})
	}
}

// TestRegistryComplete pins the plugin list against Table 1.
func TestRegistryComplete(t *testing.T) {
	want := []string{"clay", "isa_reed_sol_van", "jerasure_cauchy_orig", "jerasure_reed_sol_van", "lrc", "shec"}
	got := erasure.Plugins()
	for _, w := range want {
		found := false
		for _, g := range got {
			if g == w {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("plugin %q missing from registry %v", w, got)
		}
	}
}

package conformance

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/erasure"
	"repro/internal/erasure/clay"
	"repro/internal/gf256"
)

// clayUnderBatch encodes data (copied to backing arrays at the given byte
// alignment) with the batched paths toggled as requested and returns the
// full shard set.
func clayUnderBatch(t testing.TB, code erasure.Code, data [][]byte, align int, batched bool) [][]byte {
	t.Helper()
	restore := clay.SetBatching(batched)
	defer restore()
	shards := alignedShards(code, data, align)
	if err := code.Encode(shards); err != nil {
		t.Fatalf("encode (batch=%v): %v", batched, err)
	}
	return shards
}

// clayBatchScan runs encode, decode, and single repair for one
// (code, scs, align, backend) point under both the batched and per-plane
// Clay paths and requires byte-identical output everywhere.
func clayBatchScan(t testing.TB, code erasure.Code, scs, align int, rng *rand.Rand) {
	data := make([][]byte, code.K())
	for i := range data {
		data[i] = make([]byte, code.SubChunks()*scs)
		rng.Read(data[i])
	}
	batched := clayUnderBatch(t, code, data, align, true)
	baseline := clayUnderBatch(t, code, data, align, false)
	for i := range batched {
		if !bytes.Equal(batched[i], baseline[i]) {
			t.Fatalf("scs=%d align=%d: encode shard %d differs between batched and per-plane paths", scs, align, i)
		}
	}

	losses := [][]int{{0}}
	if erasure.CanRecover(code, []int{1, code.K()}) {
		losses = append(losses, []int{1, code.K()})
	}
	for _, lost := range losses {
		var want [][]byte
		for _, batch := range []bool{true, false} {
			restore := clay.SetBatching(batch)
			shards := alignedShards(code, baseline, align)
			for i := code.K(); i < code.N(); i++ {
				shards[i] = append([]byte(nil), baseline[i]...)
			}
			for _, f := range lost {
				shards[f] = nil
			}
			err := code.Decode(shards)
			restore()
			if err != nil {
				t.Fatalf("decode lost=%v batch=%v: %v", lost, batch, err)
			}
			if batch {
				want = shards
				continue
			}
			for i := range shards {
				if !bytes.Equal(shards[i], want[i]) {
					t.Fatalf("scs=%d align=%d lost=%v: decode shard %d differs between batched and per-plane paths",
						scs, align, lost, i)
				}
			}
		}
	}

	for _, f := range []int{0, code.K()} {
		var want []byte
		for _, batch := range []bool{true, false} {
			restore := clay.SetBatching(batch)
			shards := alignedShards(code, baseline, align)
			for i := code.K(); i < code.N(); i++ {
				shards[i] = append([]byte(nil), baseline[i]...)
			}
			shards[f] = nil
			err := code.Repair(shards, []int{f})
			restore()
			if err != nil {
				t.Fatalf("repair %d batch=%v: %v", f, batch, err)
			}
			if batch {
				want = shards[f]
				continue
			}
			if !bytes.Equal(shards[f], want) {
				t.Fatalf("scs=%d align=%d: repair of shard %d differs between batched and per-plane paths", scs, align, f)
			}
		}
	}
}

// TestClayBatchIdentity sweeps sub-chunk sizes across 1-513 (covering the
// gather, strided-SIMD, and per-run window routes plus every tail width)
// and operand alignments 0-7 on every available gf256 backend, requiring
// the batched multi-plane Clay paths to be byte-identical to the
// per-plane baseline for encode, decode, and repair. The size gates are
// lifted so large sub-chunks exercise the batched code rather than the
// gated fallback.
func TestClayBatchIdentity(t *testing.T) {
	defer clay.SetBatchLimits(1<<30, 1<<30)()
	small, err := erasure.New("clay", 4, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	big, err := erasure.New("clay", 9, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Full cross-product on the cheap shape; spot sizes per route on the
	// paper's headline shape.
	smallSizes := []int{1, 2, 3, 7, 8, 9, 31, 32, 33, 63, 65, 127, 128, 129, 255, 257, 511, 512, 513}
	bigSizes := []int{1, 33, 129, 513}
	for _, backend := range gf256.Backends() {
		restore, err := gf256.SetBackend(backend)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(backend, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(backend))))
			for _, scs := range smallSizes {
				for align := 0; align < 8; align++ {
					clayBatchScan(t, small, scs, align, rng)
				}
			}
			for _, scs := range bigSizes {
				for _, align := range []int{0, 3, 7} {
					clayBatchScan(t, big, scs, align, rng)
				}
			}
		})
		restore()
	}
}

// FuzzClayBatchIdentity fuzzes shape, sub-chunk size, alignment, and data
// seed through the batched/per-plane identity check on the current
// backend. The seed corpus pins the kernel route boundaries (gather cap,
// strided window width, tail remainders).
func FuzzClayBatchIdentity(f *testing.F) {
	f.Add(uint8(4), uint8(2), uint16(1), uint8(0), int64(1))
	f.Add(uint8(4), uint8(2), uint16(31), uint8(3), int64(2))
	f.Add(uint8(6), uint8(3), uint16(32), uint8(7), int64(3))
	f.Add(uint8(9), uint8(3), uint16(51), uint8(1), int64(4))
	f.Add(uint8(5), uint8(2), uint16(513), uint8(5), int64(5))
	f.Fuzz(func(t *testing.T, k, m uint8, scs uint16, align uint8, seed int64) {
		kk := 2 + int(k)%8
		mm := 2 + int(m)%2
		s := 1 + int(scs)%513
		code, err := erasure.New("clay", kk, mm, kk+mm-1)
		if err != nil {
			t.Skip(err)
		}
		defer clay.SetBatchLimits(1<<30, 1<<30)()
		rng := rand.New(rand.NewSource(seed))
		clayBatchScan(t, code, s, int(align)%8, rng)
	})
}

// BenchmarkClayBatchAB reports the paper's headline Clay shape at 4 KiB
// and 64 KiB with the batched paths on and off; scripts/bench_codec.sh
// parses these names for the CI ratio guard.
func BenchmarkClayBatchAB(b *testing.B) {
	code, err := erasure.New("clay", 9, 3, 11)
	if err != nil {
		b.Fatal(err)
	}
	for _, sizeKiB := range []int{4, 64} {
		size := sizeKiB << 10
		size = (size + code.SubChunks() - 1) / code.SubChunks() * code.SubChunks()
		data := make([][]byte, code.K())
		rng := rand.New(rand.NewSource(int64(size)))
		for i := range data {
			data[i] = make([]byte, size)
			rng.Read(data[i])
		}
		full := make([][]byte, code.N())
		for i := range data {
			full[i] = append([]byte(nil), data[i]...)
		}
		if err := code.Encode(full); err != nil {
			b.Fatal(err)
		}
		for _, mode := range []struct {
			name    string
			batched bool
		}{{"batched", true}, {"perplane", false}} {
			restore := clay.SetBatching(mode.batched)
			b.Run(fmt.Sprintf("encode/%dKiB/%s", sizeKiB, mode.name), func(b *testing.B) {
				shards := make([][]byte, code.N())
				copy(shards, full)
				for i := code.K(); i < code.N(); i++ {
					shards[i] = nil
				}
				b.SetBytes(int64(size * code.K()))
				for i := 0; i < b.N; i++ {
					if err := code.Encode(shards); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("repair/%dKiB/%s", sizeKiB, mode.name), func(b *testing.B) {
				b.SetBytes(int64(size))
				for i := 0; i < b.N; i++ {
					shards := make([][]byte, code.N())
					copy(shards, full)
					shards[1] = nil
					if err := code.Repair(shards, []int{1}); err != nil {
						b.Fatal(err)
					}
				}
			})
			restore()
		}
	}
}

// BenchmarkKernelClayRepairSweep sweeps the single-repair sub-chunk size
// from 128 B to 8 KiB — the operating region the zero-copy strided repair
// claims, extended one size class past the worker-aware gate — with the
// batched and per-plane formulations at every point. Shard size is
// scs * alpha, so the sweep drives the size gate's own axis directly; the
// batched gate is lifted so both paths cover the full range and the
// crossover (if any) is visible in the numbers rather than hidden by the
// gate. Run with ECFAULT_KERNEL_WORKERS=1 to A/B the parallel strided
// execution against a serial kernel (scripts/bench_codec.sh -p records
// that comparison into BENCH_CODEC.json).
func BenchmarkKernelClayRepairSweep(b *testing.B) {
	code, err := erasure.New("clay", 9, 3, 11)
	if err != nil {
		b.Fatal(err)
	}
	for _, scs := range []int{128, 256, 512, 1024, 2048, 4096, 8192} {
		size := scs * code.SubChunks()
		rng := rand.New(rand.NewSource(int64(scs)))
		full := make([][]byte, code.N())
		for i := 0; i < code.K(); i++ {
			full[i] = make([]byte, size)
			rng.Read(full[i])
		}
		if err := code.Encode(full); err != nil {
			b.Fatal(err)
		}
		for _, mode := range []struct {
			name    string
			batched bool
		}{{"batched", true}, {"perplane", false}} {
			restoreB := clay.SetBatching(mode.batched)
			restoreL := clay.SetBatchLimits(0, 1<<30)
			b.Run(fmt.Sprintf("scs%dB/%s", scs, mode.name), func(b *testing.B) {
				b.SetBytes(int64(size))
				for i := 0; i < b.N; i++ {
					shards := make([][]byte, code.N())
					copy(shards, full)
					shards[1] = nil
					if err := code.Repair(shards, []int{1}); err != nil {
						b.Fatal(err)
					}
				}
			})
			restoreL()
			restoreB()
		}
	}
}

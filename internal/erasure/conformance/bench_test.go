package conformance

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/erasure"

	_ "repro/internal/erasure/clay"
	_ "repro/internal/erasure/lrc"
	_ "repro/internal/erasure/reedsolomon"
	_ "repro/internal/erasure/shec"
)

// benchCodes are the geometries benchmarked per plugin. RS(12,9) is the
// paper's headline code and the acceptance target for encode throughput.
var benchCodes = []struct {
	label   string
	plugin  string
	k, m, d int
}{
	{"rs_12_9", "jerasure_reed_sol_van", 9, 3, 0},
	{"cauchy_12_9", "jerasure_cauchy_orig", 9, 3, 0},
	{"clay_12_9", "clay", 9, 3, 11},
	{"lrc_14_9", "lrc", 9, 3, 3},
	{"shec_14_9", "shec", 9, 5, 3},
}

// benchSizes are shard sizes from 4 KiB to 1 MiB, rounded up to the code's
// sub-chunk count at setup.
var benchSizes = []int{4 << 10, 64 << 10, 256 << 10, 1 << 20}

func benchShards(code erasure.Code, size int) [][]byte {
	size = roundUp(size, code.SubChunks())
	rng := rand.New(rand.NewSource(1))
	shards := make([][]byte, code.N())
	for i := 0; i < code.K(); i++ {
		shards[i] = make([]byte, size)
		rng.Read(shards[i])
	}
	return shards
}

// BenchmarkKernelEncode measures full-stripe encode throughput per plugin
// and shard size. Throughput counts data bytes encoded (k * shard).
func BenchmarkKernelEncode(b *testing.B) {
	for _, bc := range benchCodes {
		code, err := erasure.New(bc.plugin, bc.k, bc.m, bc.d)
		if err != nil {
			b.Fatal(err)
		}
		for _, size := range benchSizes {
			shards := benchShards(code, size)
			if err := code.Encode(shards); err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/%dKiB", bc.label, size>>10), func(b *testing.B) {
				b.SetBytes(int64(code.K() * len(shards[0])))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := code.Encode(shards); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkKernelRepair measures single-shard repair (shard 1: a data
// shard for every geometry) per plugin and shard size. Throughput counts
// the bytes of the repaired shard.
func BenchmarkKernelRepair(b *testing.B) {
	for _, bc := range benchCodes {
		code, err := erasure.New(bc.plugin, bc.k, bc.m, bc.d)
		if err != nil {
			b.Fatal(err)
		}
		for _, size := range benchSizes {
			shards := benchShards(code, size)
			if err := code.Encode(shards); err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/%dKiB", bc.label, size>>10), func(b *testing.B) {
				b.SetBytes(int64(len(shards[0])))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					work := make([][]byte, len(shards))
					copy(work, shards)
					work[1] = nil
					if err := code.Repair(work, []int{1}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// Package conformance is a reusable compliance suite for erasure.Code
// implementations: encode/decode round trips, single- and multi-failure
// repair, plan/IO consistency, and the read-only-planned-sub-chunks
// contract. Every plugin in this repository runs it; a new code
// implementation passes by construction or fails loudly.
package conformance

import (
	"bytes"
	"fmt"
	"math/rand"

	"repro/internal/erasure"
)

// TB is the subset of testing.TB the suite needs, kept as an interface so
// the package stays importable outside tests.
type TB interface {
	Helper()
	Fatalf(format string, args ...any)
	Logf(format string, args ...any)
}

// Options tunes the suite.
type Options struct {
	// ShardSize is the shard size in bytes; it is rounded up to a
	// multiple of the code's sub-chunk count. Default 4 KiB.
	ShardSize int
	// Seed drives the deterministic payloads.
	Seed int64
	// MaxPatterns bounds how many multi-erasure patterns are exercised.
	MaxPatterns int
}

func (o *Options) defaults() {
	if o.ShardSize <= 0 {
		o.ShardSize = 4096
	}
	if o.MaxPatterns <= 0 {
		o.MaxPatterns = 200
	}
}

// Run executes the full suite against a code.
func Run(t TB, code erasure.Code, opts Options) {
	t.Helper()
	opts.defaults()
	size := roundUp(opts.ShardSize, code.SubChunks())
	rng := rand.New(rand.NewSource(opts.Seed))

	original := encode(t, code, size, rng)
	checkSystematic(t, code)
	checkDecodeNoop(t, code, original)
	checkSingleFailures(t, code, original)
	checkMultiFailures(t, code, original, rng, opts.MaxPatterns)
	checkPlans(t, code)
	checkPoisonedRepair(t, code, original, size)
}

func roundUp(v, to int) int { return (v + to - 1) / to * to }

func cloneShards(s [][]byte) [][]byte {
	out := make([][]byte, len(s))
	for i, v := range s {
		if v != nil {
			out[i] = append([]byte(nil), v...)
		}
	}
	return out
}

func encode(t TB, code erasure.Code, size int, rng *rand.Rand) [][]byte {
	t.Helper()
	shards := make([][]byte, code.N())
	for i := 0; i < code.K(); i++ {
		shards[i] = make([]byte, size)
		rng.Read(shards[i])
	}
	if err := code.Encode(shards); err != nil {
		t.Fatalf("%s: encode: %v", code.Name(), err)
	}
	for i, s := range shards {
		if len(s) != size {
			t.Fatalf("%s: shard %d has %d bytes after encode, want %d", code.Name(), i, len(s), size)
		}
	}
	return shards
}

func checkSystematic(t TB, code erasure.Code) {
	t.Helper()
	// Encode fixed data twice: data shards must pass through unchanged
	// and parities must be deterministic.
	size := 64 * code.SubChunks()
	mk := func() [][]byte {
		shards := make([][]byte, code.N())
		for i := 0; i < code.K(); i++ {
			shards[i] = make([]byte, size)
			for b := range shards[i] {
				shards[i][b] = byte(i*31 + b)
			}
		}
		return shards
	}
	a, b := mk(), mk()
	if err := code.Encode(a); err != nil {
		t.Fatalf("%s: encode: %v", code.Name(), err)
	}
	if err := code.Encode(b); err != nil {
		t.Fatalf("%s: encode: %v", code.Name(), err)
	}
	for i := 0; i < code.K(); i++ {
		for bb := range a[i] {
			if a[i][bb] != byte(i*31+bb) {
				t.Fatalf("%s: encode mutated data shard %d", code.Name(), i)
			}
		}
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("%s: encode not deterministic at shard %d", code.Name(), i)
		}
	}
}

func checkDecodeNoop(t TB, code erasure.Code, original [][]byte) {
	t.Helper()
	work := cloneShards(original)
	if err := code.Decode(work); err != nil {
		t.Fatalf("%s: decode with no erasures: %v", code.Name(), err)
	}
	for i := range work {
		if !bytes.Equal(work[i], original[i]) {
			t.Fatalf("%s: no-op decode changed shard %d", code.Name(), i)
		}
	}
}

func checkSingleFailures(t TB, code erasure.Code, original [][]byte) {
	t.Helper()
	for f := 0; f < code.N(); f++ {
		if !erasure.CanRecover(code, []int{f}) {
			t.Fatalf("%s: single failure %d not recoverable", code.Name(), f)
		}
		work := cloneShards(original)
		work[f] = nil
		if err := code.Decode(work); err != nil {
			t.Fatalf("%s: decode single %d: %v", code.Name(), f, err)
		}
		if !bytes.Equal(work[f], original[f]) {
			t.Fatalf("%s: decode single %d wrong", code.Name(), f)
		}
		work = cloneShards(original)
		work[f] = nil
		if err := code.Repair(work, []int{f}); err != nil {
			t.Fatalf("%s: repair single %d: %v", code.Name(), f, err)
		}
		if !bytes.Equal(work[f], original[f]) {
			t.Fatalf("%s: repair single %d wrong", code.Name(), f)
		}
	}
}

func checkMultiFailures(t TB, code erasure.Code, original [][]byte, rng *rand.Rand, maxPatterns int) {
	t.Helper()
	n := code.N()
	tried := 0
	for count := 2; count <= code.M() && tried < maxPatterns; count++ {
		for trial := 0; trial < maxPatterns/code.M() && tried < maxPatterns; trial++ {
			failed := rng.Perm(n)[:count]
			tried++
			if !erasure.CanRecover(code, failed) {
				// Non-MDS codes may reject the pattern; decode must too.
				work := cloneShards(original)
				for _, f := range failed {
					work[f] = nil
				}
				if err := code.Decode(work); err == nil {
					t.Fatalf("%s: pattern %v decoded but CanRecover says no", code.Name(), failed)
				}
				continue
			}
			work := cloneShards(original)
			for _, f := range failed {
				work[f] = nil
			}
			if err := code.Decode(work); err != nil {
				t.Fatalf("%s: decode %v: %v", code.Name(), failed, err)
			}
			for _, f := range failed {
				if !bytes.Equal(work[f], original[f]) {
					t.Fatalf("%s: decode %v shard %d wrong", code.Name(), failed, f)
				}
			}
		}
	}
}

func checkPlans(t TB, code erasure.Code) {
	t.Helper()
	for f := 0; f < code.N(); f++ {
		plan, err := code.RepairPlan([]int{f})
		if err != nil {
			t.Fatalf("%s: plan %d: %v", code.Name(), f, err)
		}
		if plan.SubChunkTotal != code.SubChunks() {
			t.Fatalf("%s: plan sub-chunk total %d != alpha %d", code.Name(), plan.SubChunkTotal, code.SubChunks())
		}
		if len(plan.Helpers) == 0 {
			t.Fatalf("%s: plan %d has no helpers", code.Name(), f)
		}
		seen := map[int]bool{}
		for _, h := range plan.Helpers {
			if h.Shard == f {
				t.Fatalf("%s: plan %d reads the failed shard", code.Name(), f)
			}
			if seen[h.Shard] {
				t.Fatalf("%s: plan %d lists helper %d twice", code.Name(), f, h.Shard)
			}
			seen[h.Shard] = true
			if len(h.SubChunks) == 0 || len(h.SubChunks) > code.SubChunks() {
				t.Fatalf("%s: plan %d helper %d reads %d sub-chunks", code.Name(), f, h.Shard, len(h.SubChunks))
			}
			for i := 1; i < len(h.SubChunks); i++ {
				if h.SubChunks[i] <= h.SubChunks[i-1] {
					t.Fatalf("%s: plan %d helper %d sub-chunks not sorted", code.Name(), f, h.Shard)
				}
			}
		}
		// The plan never reads more than a full decode would.
		if plan.ReadFraction() > float64(code.N()-1) {
			t.Fatalf("%s: plan %d reads %.2f chunks", code.Name(), f, plan.ReadFraction())
		}
	}
	// Empty and invalid plans.
	if _, err := code.RepairPlan(nil); err != nil {
		t.Fatalf("%s: empty plan: %v", code.Name(), err)
	}
	if _, err := code.RepairPlan([]int{-1}); err == nil {
		t.Fatalf("%s: negative shard accepted", code.Name())
	}
	if _, err := code.RepairPlan([]int{code.N()}); err == nil {
		t.Fatalf("%s: out-of-range shard accepted", code.Name())
	}
}

// checkPoisonedRepair verifies the contract that Repair touches only the
// sub-chunks its plan lists.
func checkPoisonedRepair(t TB, code erasure.Code, original [][]byte, size int) {
	t.Helper()
	sub := size / code.SubChunks()
	for f := 0; f < code.N(); f++ {
		plan, err := code.RepairPlan([]int{f})
		if err != nil {
			t.Fatalf("%s: plan: %v", code.Name(), err)
		}
		planned := map[int]map[int]bool{}
		for _, h := range plan.Helpers {
			set := map[int]bool{}
			for _, s := range h.SubChunks {
				set[s] = true
			}
			planned[h.Shard] = set
		}
		work := cloneShards(original)
		work[f] = nil
		for i := range work {
			if i == f {
				continue
			}
			for z := 0; z < code.SubChunks(); z++ {
				if planned[i] == nil || !planned[i][z] {
					for b := 0; b < sub; b++ {
						work[i][z*sub+b] = 0xEE
					}
				}
			}
		}
		if err := code.Repair(work, []int{f}); err != nil {
			t.Fatalf("%s: poisoned repair %d: %v", code.Name(), f, err)
		}
		if !bytes.Equal(work[f], original[f]) {
			t.Fatalf("%s: repair %d read outside its plan", code.Name(), f)
		}
	}
}

// Describe returns a short identity string for logging.
func Describe(code erasure.Code) string {
	return fmt.Sprintf("%s k=%d m=%d alpha=%d", code.Name(), code.K(), code.M(), code.SubChunks())
}

package conformance

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/erasure"
	"repro/internal/erasure/codecache"
	"repro/internal/gf256"
)

// backendGeometries covers every plugin family at a shape small enough to
// sweep sizes and alignments quickly: classic RS, Cauchy RS, the ISA-L
// table variant, Clay (sub-packetized, pairwise-coupled), LRC, and SHEC.
var backendGeometries = []struct {
	plugin  string
	k, m, d int
}{
	{"jerasure_reed_sol_van", 9, 3, 0},
	{"jerasure_cauchy_orig", 4, 2, 0},
	{"isa_reed_sol_van", 6, 3, 0},
	{"clay", 4, 2, 5},
	{"lrc", 8, 2, 2},
	{"shec", 6, 4, 2},
}

// backendSizes returns shard sizes to sweep for a code: always multiples
// of alpha, chosen so sub-chunk sizes hit 1 byte, an odd width (exercising
// Clay's padding detour and the sub-vector tails of the SIMD kernels), a
// sub-word remainder, and a vector-friendly power of two.
func backendSizes(code erasure.Code) []int {
	alpha := code.SubChunks()
	sizes := []int{alpha * 1, alpha * 51, alpha * 512}
	if alpha == 1 {
		sizes = append(sizes, 4096+5)
	}
	return sizes
}

// alignedShards copies the data shards into fresh backing arrays at the
// given byte offset so kernel head/tail fixups see misaligned operands,
// and leaves parity slots nil for Encode to allocate.
func alignedShards(code erasure.Code, data [][]byte, align int) [][]byte {
	shards := make([][]byte, code.N())
	for i, d := range data {
		backing := make([]byte, len(d)+8)
		copy(backing[align:], d)
		shards[i] = backing[align : align+len(d)]
	}
	return shards
}

// TestBackendsEncodeIdentity requires every available gf256 backend to
// produce byte-identical parity for every plugin, across shard sizes and
// operand alignments 0-7. The scalar backend is the reference.
func TestBackendsEncodeIdentity(t *testing.T) {
	for _, g := range backendGeometries {
		code, err := erasure.New(g.plugin, g.k, g.m, g.d)
		if err != nil {
			t.Fatalf("%s(k=%d,m=%d,d=%d): %v", g.plugin, g.k, g.m, g.d, err)
		}
		t.Run(Describe(code), func(t *testing.T) {
			for _, size := range backendSizes(code) {
				rng := rand.New(rand.NewSource(int64(g.k*1000 + size)))
				data := make([][]byte, code.K())
				for i := range data {
					data[i] = make([]byte, size)
					rng.Read(data[i])
				}
				want := encodeUnder(t, code, "scalar", data, 0)
				for _, backend := range gf256.Backends() {
					for _, align := range []int{0, 1, 3, 7} {
						got := encodeUnder(t, code, backend, data, align)
						for i := code.K(); i < code.N(); i++ {
							if !bytes.Equal(got[i], want[i]) {
								t.Fatalf("size=%d backend=%s align=%d: parity shard %d differs from scalar reference",
									size, backend, align, i)
							}
						}
					}
				}
			}
		})
	}
}

func encodeUnder(t *testing.T, code erasure.Code, backend string, data [][]byte, align int) [][]byte {
	t.Helper()
	restore, err := gf256.SetBackend(backend)
	if err != nil {
		t.Fatal(err)
	}
	defer restore()
	shards := alignedShards(code, data, align)
	if err := code.Encode(shards); err != nil {
		t.Fatalf("%s encode under %s: %v", code.Name(), backend, err)
	}
	return shards
}

// TestBackendsRepairIdentity requires repair output to be byte-identical
// across backends for single data-shard, single parity-shard, and (where
// the code tolerates it) double failures. Reconstructed shards must equal
// the originals, so the originals are the reference — no scalar pass
// needed.
func TestBackendsRepairIdentity(t *testing.T) {
	for _, g := range backendGeometries {
		code, err := erasure.New(g.plugin, g.k, g.m, g.d)
		if err != nil {
			t.Fatalf("%s(k=%d,m=%d,d=%d): %v", g.plugin, g.k, g.m, g.d, err)
		}
		t.Run(Describe(code), func(t *testing.T) {
			size := code.SubChunks() * 51
			rng := rand.New(rand.NewSource(int64(g.k*7 + g.m)))
			data := make([][]byte, code.K())
			for i := range data {
				data[i] = make([]byte, size)
				rng.Read(data[i])
			}
			original := encodeUnder(t, code, "scalar", data, 0)
			patterns := [][]int{{0}, {code.K()}}
			if erasure.CanRecover(code, []int{1, code.K() + 1}) {
				patterns = append(patterns, []int{1, code.K() + 1})
			}
			for _, backend := range gf256.Backends() {
				restore, err := gf256.SetBackend(backend)
				if err != nil {
					t.Fatal(err)
				}
				for _, failed := range patterns {
					for _, align := range []int{0, 5} {
						shards := alignedShards(code, original, align)
						for _, f := range failed {
							shards[f] = nil
						}
						if err := code.Repair(shards, failed); err != nil {
							t.Fatalf("backend=%s failed=%v: repair: %v", backend, failed, err)
						}
						for _, f := range failed {
							if !bytes.Equal(shards[f], original[f]) {
								t.Fatalf("backend=%s failed=%v align=%d: shard %d repaired incorrectly",
									backend, failed, align, f)
							}
						}
					}
				}
				restore()
			}
		})
	}
}

// TestBackendsDecodeIdentity runs full Decode (all parities lost, then a
// mixed data+parity loss) under every backend and checks the result
// against the scalar-encoded originals.
func TestBackendsDecodeIdentity(t *testing.T) {
	for _, g := range backendGeometries {
		code, err := erasure.New(g.plugin, g.k, g.m, g.d)
		if err != nil {
			t.Fatalf("%s(k=%d,m=%d,d=%d): %v", g.plugin, g.k, g.m, g.d, err)
		}
		t.Run(Describe(code), func(t *testing.T) {
			size := code.SubChunks() * 128
			rng := rand.New(rand.NewSource(int64(g.k + g.m*13)))
			data := make([][]byte, code.K())
			for i := range data {
				data[i] = make([]byte, size)
				rng.Read(data[i])
			}
			original := encodeUnder(t, code, "scalar", data, 0)
			losses := [][]int{{0}}
			if erasure.CanRecover(code, []int{0, code.N() - 1}) {
				losses = append(losses, []int{0, code.N() - 1})
			}
			for _, backend := range gf256.Backends() {
				restore, err := gf256.SetBackend(backend)
				if err != nil {
					t.Fatal(err)
				}
				for _, lost := range losses {
					shards := alignedShards(code, original, 0)
					for _, f := range lost {
						shards[f] = nil
					}
					if err := code.Decode(shards); err != nil {
						t.Fatalf("backend=%s lost=%v: decode: %v", backend, lost, err)
					}
					for i := range shards {
						if !bytes.Equal(shards[i], original[i]) {
							t.Fatalf("backend=%s lost=%v: shard %d decoded incorrectly", backend, lost, i)
						}
					}
				}
				restore()
			}
		})
	}
}

// BenchmarkBackendsEncode reports encode throughput per backend for the
// paper's RS(12,9) at 64 KiB (the BENCH_CODEC.json headline shape).
func BenchmarkBackendsEncode(b *testing.B) {
	code, err := erasure.New("jerasure_reed_sol_van", 9, 3, 0)
	if err != nil {
		b.Fatal(err)
	}
	const size = 64 << 10
	for _, backend := range gf256.Backends() {
		restore, err := gf256.SetBackend(backend)
		if err != nil {
			b.Fatal(err)
		}
		shards := make([][]byte, code.N())
		for i := 0; i < code.K(); i++ {
			shards[i] = make([]byte, size)
		}
		b.Run(fmt.Sprintf("%s", backend), func(b *testing.B) {
			b.SetBytes(int64(size * code.K()))
			for i := 0; i < b.N; i++ {
				if err := code.Encode(shards); err != nil {
					b.Fatal(err)
				}
			}
		})
		restore()
	}
}

// TestBackendsSharedRegistryIdentity re-runs the SetBackend sweep against
// the registry-shared instance of each geometry: encode, repair, and
// decode under every backend must be byte-identical between the shared
// code (whose cached programs may have been compiled under a different
// backend earlier in the sweep) and a cold private instance.
func TestBackendsSharedRegistryIdentity(t *testing.T) {
	for _, g := range backendGeometries {
		shared, err := codecache.Get(g.plugin, g.k, g.m, g.d)
		if err != nil {
			t.Fatalf("%s(k=%d,m=%d,d=%d): %v", g.plugin, g.k, g.m, g.d, err)
		}
		again, err := codecache.Get(g.plugin, g.k, g.m, g.d)
		if err != nil {
			t.Fatal(err)
		}
		if shared != again {
			t.Fatalf("%s: registry returned distinct instances", g.plugin)
		}
		private, err := erasure.New(g.plugin, g.k, g.m, g.d)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(Describe(shared), func(t *testing.T) {
			size := shared.SubChunks() * 51
			rng := rand.New(rand.NewSource(int64(g.k*29 + g.m)))
			data := make([][]byte, shared.K())
			for i := range data {
				data[i] = make([]byte, size)
				rng.Read(data[i])
			}
			patterns := [][]int{{0}, {shared.K()}}
			if erasure.CanRecover(private, []int{1, shared.K() + 1}) {
				patterns = append(patterns, []int{1, shared.K() + 1})
			}
			for _, backend := range gf256.Backends() {
				want := encodeUnder(t, private, backend, data, 0)
				got := encodeUnder(t, shared, backend, data, 0)
				for i := shared.K(); i < shared.N(); i++ {
					if !bytes.Equal(got[i], want[i]) {
						t.Fatalf("backend=%s: shared parity shard %d differs from private", backend, i)
					}
				}
				restore, err := gf256.SetBackend(backend)
				if err != nil {
					t.Fatal(err)
				}
				for _, failed := range patterns {
					shards := alignedShards(shared, want, 0)
					for _, f := range failed {
						shards[f] = nil
					}
					if err := shared.Repair(shards, failed); err != nil {
						t.Fatalf("backend=%s failed=%v: shared repair: %v", backend, failed, err)
					}
					for _, f := range failed {
						if !bytes.Equal(shards[f], want[f]) {
							t.Fatalf("backend=%s failed=%v: shared repair of shard %d diverges", backend, failed, f)
						}
					}
					dec := alignedShards(shared, want, 0)
					for _, f := range failed {
						dec[f] = nil
					}
					if err := shared.Decode(dec); err != nil {
						t.Fatalf("backend=%s lost=%v: shared decode: %v", backend, failed, err)
					}
					for i := range dec {
						if !bytes.Equal(dec[i], want[i]) {
							t.Fatalf("backend=%s lost=%v: shared decode of shard %d diverges", backend, failed, i)
						}
					}
				}
				restore()
			}
		})
	}
}

package conformance

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/erasure"
	"repro/internal/erasure/clay"
	"repro/internal/parallel"
)

// serialParallelCases covers every registered plugin family.
var serialParallelCases = []struct {
	plugin  string
	k, m, d int
}{
	{"jerasure_reed_sol_van", 9, 3, 0},
	{"jerasure_cauchy_orig", 9, 3, 0},
	{"isa_reed_sol_van", 6, 3, 0},
	{"clay", 9, 3, 11},
	{"clay", 8, 3, 10}, // shortened grid
	{"lrc", 9, 3, 3},
	{"shec", 9, 5, 3},
}

// shardSizes returns per-code shard sizes that exercise the word kernel's
// aligned path, its scalar head/tail handling (sizes not divisible by 8),
// and — for sub-chunked codes — odd sub-chunk sizes.
func shardSizes(code erasure.Code) []int {
	alpha := code.SubChunks()
	if alpha == 1 {
		// 37 and 64KiB+5 are deliberately not multiples of 8; the big one
		// crosses the kernel's parallel threshold.
		return []int{37, 1003, 64<<10 + 5}
	}
	// Odd sub-chunk sizes (37, 811 bytes) keep every plane slice unaligned;
	// alpha*811 exceeds the parallel threshold.
	return []int{alpha * 37, alpha * 811}
}

func encodeWith(t *testing.T, code erasure.Code, size, workers int, seed int64) [][]byte {
	t.Helper()
	prev := parallel.SetWorkers(workers)
	defer parallel.SetWorkers(prev)
	rng := rand.New(rand.NewSource(seed))
	shards := make([][]byte, code.N())
	for i := 0; i < code.K(); i++ {
		shards[i] = make([]byte, size)
		rng.Read(shards[i])
	}
	if err := code.Encode(shards); err != nil {
		t.Fatalf("encode (workers=%d): %v", workers, err)
	}
	return shards
}

func compareShards(t *testing.T, what string, serial, par [][]byte) {
	t.Helper()
	for i := range serial {
		if !bytes.Equal(serial[i], par[i]) {
			t.Errorf("%s: shard %d differs between serial and parallel execution", what, i)
		}
	}
}

// TestClayStridedParallelIdentical pushes the zero-copy strided repair
// and the batched decode through the parallel gf256 entries at forced
// kernel worker counts (the pool oversizes past NumCPU, so single-core CI
// still exercises real cross-goroutine splits) and requires byte-identity
// with the single-worker pass. Sub-chunk sizes straddle the strided
// parallel threshold; batch gates are forced open so the strided path is
// exercised at every size.
func TestClayStridedParallelIdentical(t *testing.T) {
	code, err := erasure.New("clay", 9, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	defer clay.SetBatchLimits(1<<30, 1<<30)()
	for _, scs := range []int{512, 1024, 4096} {
		rng := rand.New(rand.NewSource(int64(scs)))
		data := make([][]byte, code.K())
		for i := range data {
			data[i] = make([]byte, code.SubChunks()*scs)
			rng.Read(data[i])
		}
		shards := alignedShards(code, data, 0)
		if err := code.Encode(shards); err != nil {
			t.Fatalf("encode scs=%d: %v", scs, err)
		}

		// Repair each of a few failure positions (different y0 geometries)
		// and a two-loss decode, serial baseline vs forced worker counts.
		for _, failed := range []int{0, 1, code.K()} {
			var want []byte
			for _, workers := range []int{1, 2, 7} {
				rep := cloneShards(shards)
				rep[failed] = nil
				prev := parallel.SetKernelWorkers(workers)
				err := code.Repair(rep, []int{failed})
				parallel.SetKernelWorkers(prev)
				if err != nil {
					t.Fatalf("repair scs=%d failed=%d workers=%d: %v", scs, failed, workers, err)
				}
				if workers == 1 {
					want = rep[failed]
					continue
				}
				if !bytes.Equal(rep[failed], want) {
					t.Errorf("scs=%d failed=%d workers=%d: parallel strided repair differs from serial", scs, failed, workers)
				}
				if !bytes.Equal(rep[failed], shards[failed]) {
					t.Errorf("scs=%d failed=%d workers=%d: repair does not reproduce the encoded shard", scs, failed, workers)
				}
			}
		}

		var want [][]byte
		for _, workers := range []int{1, 2, 7} {
			dec := cloneShards(shards)
			dec[0], dec[code.K()] = nil, nil
			prev := parallel.SetKernelWorkers(workers)
			err := code.Decode(dec)
			parallel.SetKernelWorkers(prev)
			if err != nil {
				t.Fatalf("decode scs=%d workers=%d: %v", scs, workers, err)
			}
			if workers == 1 {
				want = dec
				continue
			}
			compareShards(t, "batched decode", want, dec)
		}
	}
}

// TestSerialParallelIdentical requires, for every plugin, that encode,
// decode, and repair through the kernel produce byte-identical shards
// whether the stripe runs serially or fanned out over a forced worker
// pool — including shard sizes with non-8-byte-aligned tails.
func TestSerialParallelIdentical(t *testing.T) {
	for _, tc := range serialParallelCases {
		code, err := erasure.New(tc.plugin, tc.k, tc.m, tc.d)
		if err != nil {
			t.Fatalf("%s(k=%d,m=%d,d=%d): %v", tc.plugin, tc.k, tc.m, tc.d, err)
		}
		t.Run(Describe(code), func(t *testing.T) {
			for _, size := range shardSizes(code) {
				seed := int64(size) * 31
				serial := encodeWith(t, code, size, 1, seed)
				par := encodeWith(t, code, size, 8, seed)
				compareShards(t, "encode", serial, par)

				// Decode with the first data shard and the first parity
				// erased (a single data erasure when m == 1).
				erase := []int{0}
				if code.M() > 1 {
					erase = append(erase, code.K())
				}
				serialDec := cloneShards(serial)
				parDec := cloneShards(serial)
				for _, e := range erase {
					serialDec[e] = nil
					parDec[e] = nil
				}
				prev := parallel.SetWorkers(1)
				err := code.Decode(serialDec)
				parallel.SetWorkers(8)
				errPar := code.Decode(parDec)
				parallel.SetWorkers(prev)
				if err != nil || errPar != nil {
					t.Fatalf("decode size %d: serial err %v, parallel err %v", size, err, errPar)
				}
				compareShards(t, "decode", serialDec, parDec)

				// Repair of shard 1 from the plan's helpers only.
				serialRep := cloneShards(serial)
				parRep := cloneShards(serial)
				serialRep[1] = nil
				parRep[1] = nil
				prev = parallel.SetWorkers(1)
				err = code.Repair(serialRep, []int{1})
				parallel.SetWorkers(8)
				errPar = code.Repair(parRep, []int{1})
				parallel.SetWorkers(prev)
				if err != nil || errPar != nil {
					t.Fatalf("repair size %d: serial err %v, parallel err %v", size, err, errPar)
				}
				compareShards(t, "repair", serialRep, parRep)

				// Both must reproduce the original content.
				compareShards(t, "decode vs encode", serial, serialDec)
				compareShards(t, "repair vs encode", serial, serialRep)
			}
		})
	}
}

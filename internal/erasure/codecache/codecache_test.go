package codecache

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/erasure"

	_ "repro/internal/erasure/clay"
	_ "repro/internal/erasure/lrc"
	_ "repro/internal/erasure/reedsolomon"
	_ "repro/internal/erasure/shec"
)

// geometries mirrors the conformance backend sweep: one spec per plugin
// family, sized so every code path (locality, sub-packetization,
// shingling) is exercised.
var geometries = []struct {
	plugin  string
	k, m, d int
}{
	{"jerasure_reed_sol_van", 6, 3, 0},
	{"jerasure_cauchy_orig", 6, 3, 0},
	{"clay", 4, 2, 5},
	{"lrc", 8, 2, 2},
	{"shec", 6, 4, 2},
}

func TestSharedInstancePerSpec(t *testing.T) {
	Reset()
	defer Reset()
	for _, g := range geometries {
		a, err := Get(g.plugin, g.k, g.m, g.d)
		if err != nil {
			t.Fatalf("Get(%s): %v", g.plugin, err)
		}
		b, err := Get(g.plugin, g.k, g.m, g.d)
		if err != nil {
			t.Fatalf("Get(%s) again: %v", g.plugin, err)
		}
		if a != b {
			t.Errorf("%s: repeated Get returned distinct instances", g.plugin)
		}
	}
	if h, m := Stats(); h != int64(len(geometries)) || m != int64(len(geometries)) {
		t.Errorf("Stats = (%d, %d), want (%d, %d)", h, m, len(geometries), len(geometries))
	}
	if Len() != len(geometries) {
		t.Errorf("Len = %d, want %d", Len(), len(geometries))
	}
}

// TestNormalizeMatchesPluginDefaults guards against the registry's
// d-defaults drifting from the plugin init registrations: a d=0 request
// and its normalized spec must build geometrically identical codes (and
// therefore share one entry).
func TestNormalizeMatchesPluginDefaults(t *testing.T) {
	Reset()
	defer Reset()
	for _, g := range geometries {
		raw, err := erasure.New(g.plugin, g.k, g.m, 0)
		if err != nil {
			t.Fatalf("New(%s, d=0): %v", g.plugin, err)
		}
		spec := Normalize(Spec{Plugin: g.plugin, K: g.k, M: g.m, D: 0})
		norm, err := erasure.New(spec.Plugin, spec.K, spec.M, spec.D)
		if err != nil {
			t.Fatalf("New(normalized %+v): %v", spec, err)
		}
		if raw.Name() != norm.Name() || raw.K() != norm.K() || raw.M() != norm.M() ||
			raw.N() != norm.N() || raw.SubChunks() != norm.SubChunks() {
			t.Errorf("%s: normalized spec %+v builds different geometry than d=0", g.plugin, spec)
		}
		a, _ := Get(g.plugin, g.k, g.m, 0)
		b, _ := Get(spec.Plugin, spec.K, spec.M, spec.D)
		if a != b {
			t.Errorf("%s: d=0 and normalized d map to different registry entries", g.plugin)
		}
	}
}

func TestDisabledViaEnv(t *testing.T) {
	t.Setenv("ECFAULT_NOCODECACHE", "1")
	Reset()
	defer Reset()
	a, err := Get("jerasure_reed_sol_van", 4, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Get("jerasure_reed_sol_van", 4, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("ECFAULT_NOCODECACHE set but Get returned a shared instance")
	}
	if Len() != 0 {
		t.Errorf("registry grew (%d entries) while disabled", Len())
	}
}

func TestConstructionErrorCached(t *testing.T) {
	Reset()
	defer Reset()
	if _, err := Get("clay", 4, 2, 3); err == nil { // clay requires d = k+m-1
		t.Fatal("expected construction error")
	}
	if _, err := Get("clay", 4, 2, 3); err == nil {
		t.Fatal("expected cached construction error")
	}
}

// patternsFor returns recoverable erasure patterns covering single and
// multi failures across data and parity shards.
func patternsFor(code erasure.Code) [][]int {
	n := code.N()
	var out [][]int
	for i := 0; i < n; i++ {
		out = append(out, []int{i})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if erasure.CanRecover(code, []int{i, j}) {
				out = append(out, []int{i, j})
			}
		}
	}
	return out
}

func encoded(t *testing.T, code erasure.Code, rng *rand.Rand) [][]byte {
	t.Helper()
	size := 64 * code.SubChunks()
	shards := make([][]byte, code.N())
	for i := 0; i < code.K(); i++ {
		shards[i] = make([]byte, size)
		rng.Read(shards[i])
	}
	if err := code.Encode(shards); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return shards
}

// TestSharedCodeStress hammers one registry-shared code from many
// goroutines across distinct erasure patterns, asserting byte-identity
// with a cold private instance. Run under -race this is the concurrency
// proof for the shared plan/solver/program caches.
func TestSharedCodeStress(t *testing.T) {
	Reset()
	defer Reset()
	const goroutines = 16
	const iters = 8
	for _, g := range geometries {
		g := g
		t.Run(fmt.Sprintf("%s_%d_%d_%d", g.plugin, g.k, g.m, g.d), func(t *testing.T) {
			shared, err := Get(g.plugin, g.k, g.m, g.d)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := erasure.New(g.plugin, g.k, g.m, g.d)
			if err != nil {
				t.Fatal(err)
			}
			golden := encoded(t, cold, rand.New(rand.NewSource(42)))
			patterns := patternsFor(cold)
			var wg sync.WaitGroup
			errc := make(chan error, goroutines)
			for w := 0; w < goroutines; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for it := 0; it < iters; it++ {
						failed := patterns[(w*iters+it)%len(patterns)]
						if err := checkPattern(shared, cold, golden, failed); err != nil {
							errc <- fmt.Errorf("worker %d pattern %v: %w", w, failed, err)
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Error(err)
			}
		})
	}
}

// checkPattern exercises RepairPlan, Repair, and Decode on the shared
// instance and compares every reconstructed byte (and the plan) against
// the cold private instance.
func checkPattern(shared, cold erasure.Code, golden [][]byte, failed []int) error {
	sp, err := shared.RepairPlan(failed)
	if err != nil {
		return fmt.Errorf("shared RepairPlan: %w", err)
	}
	cp, err := cold.RepairPlan(failed)
	if err != nil {
		return fmt.Errorf("cold RepairPlan: %w", err)
	}
	if !reflect.DeepEqual(sp, cp) {
		return fmt.Errorf("plans diverge: shared %+v cold %+v", sp, cp)
	}

	work := make([][]byte, len(golden))
	copy(work, golden)
	for _, f := range failed {
		work[f] = nil
	}
	if err := shared.Repair(work, failed); err != nil {
		return fmt.Errorf("shared Repair: %w", err)
	}
	for _, f := range failed {
		if !bytes.Equal(work[f], golden[f]) {
			return fmt.Errorf("Repair shard %d diverges from cold encode", f)
		}
	}

	dec := make([][]byte, len(golden))
	copy(dec, golden)
	for _, f := range failed {
		dec[f] = nil
	}
	if err := shared.Decode(dec); err != nil {
		return fmt.Errorf("shared Decode: %w", err)
	}
	for i := range golden {
		if !bytes.Equal(dec[i], golden[i]) {
			return fmt.Errorf("Decode shard %d diverges from cold encode", i)
		}
	}
	return nil
}

// TestEncodeParamsCanonical checks the Params encoding is order-free and
// injective-by-construction, and that malformed keys/values are rejected.
func TestEncodeParamsCanonical(t *testing.T) {
	got, err := EncodeParams(map[string]string{"scheme": "opt", "groups": "2"})
	if err != nil {
		t.Fatal(err)
	}
	if want := "groups=2,scheme=opt"; got != want {
		t.Errorf("EncodeParams = %q, want %q", got, want)
	}
	if s, err := EncodeParams(nil); err != nil || s != "" {
		t.Errorf("EncodeParams(nil) = (%q, %v), want empty", s, err)
	}
	for _, bad := range []map[string]string{
		{"": "v"},
		{"a=b": "v"},
		{"a": "x,y"},
	} {
		if _, err := EncodeParams(bad); err == nil {
			t.Errorf("EncodeParams(%v) succeeded, want error", bad)
		}
	}
}

// TestGetSpecRejectsExtraParams: construction parameters outside the
// (plugin, k, m, d) tuple must fail loudly instead of aliasing onto a
// shared instance that silently ignored them — no registered plugin
// consumes such parameters.
func TestGetSpecRejectsExtraParams(t *testing.T) {
	Reset()
	defer Reset()
	params, err := EncodeParams(map[string]string{"groupmap": "custom"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = GetSpec(Spec{Plugin: "lrc", K: 8, M: 2, D: 2, Params: params})
	if err == nil {
		t.Fatal("GetSpec with extra params succeeded, want error")
	}
	for _, frag := range []string{"groupmap=custom", "lrc", "(plugin, k, m, d)"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not mention %q", err, frag)
		}
	}
	if Len() != 0 {
		t.Errorf("rejected spec polluted the registry: Len = %d", Len())
	}
	// The plain tuple spec still resolves through GetSpec.
	if _, err := GetSpec(Spec{Plugin: "lrc", K: 8, M: 2, D: 2}); err != nil {
		t.Fatalf("GetSpec without params: %v", err)
	}
}

// Package codecache is the process-wide registry of shared erasure code
// instances, keyed by plugin spec (plugin, k, m, d). The paper's study
// sweeps many configurations of the same few codes, so cluster pools,
// snapshot forks, and experiment cells that share a spec all receive one
// Code instance instead of rebuilding constructions per fork — and with
// it the instance's derived-artifact caches (decode programs, plane
// solvers, repair plans), which are concurrency-safe with singleflight
// fill.
//
// Ownership rules: everything a code builds in New is frozen there;
// everything derived afterwards is cached inside the instance; nothing
// is ever invalidated, so the registry itself is append-only and
// unbounded (the spec space a process touches is tiny). Set
// ECFAULT_NOCODECACHE to bypass sharing and hand every caller a private
// instance, e.g. to A/B the construction cost.
package codecache

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"repro/internal/erasure"
)

// Spec identifies one code configuration. D is the plugin-specific extra
// parameter (Clay's repair degree, LRC's locality, SHEC's durability).
// Params carries any construction parameters beyond that tuple in the
// canonical encoding produced by EncodeParams; it is part of the registry
// key so configurations differing only in such parameters can never alias
// to one shared instance. No current plugin accepts extra parameters, so
// Get rejects non-empty Params with a clear error instead of silently
// dropping them (see GetSpec).
type Spec struct {
	Plugin  string
	K, M, D int
	Params  string
}

// EncodeParams canonicalizes construction parameters beyond
// (plugin, k, m, d) into the comparable Spec.Params form: keys sorted,
// "key=value" pairs joined with commas. Keys and values must not contain
// '=' or ',' and keys must be non-empty, so the encoding stays injective.
func EncodeParams(params map[string]string) (string, error) {
	if len(params) == 0 {
		return "", nil
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		if k == "" || strings.ContainsAny(k, "=,") {
			return "", fmt.Errorf("codecache: invalid parameter key %q (must be non-empty, without '=' or ',')", k)
		}
		if v := params[k]; strings.ContainsAny(v, "=,") {
			return "", fmt.Errorf("codecache: invalid value %q for parameter %q (must not contain '=' or ',')", v, k)
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(params[k])
	}
	return b.String(), nil
}

// Normalize resolves the plugins' d-defaults so that callers passing 0
// and callers passing the resolved value share one entry. The defaults
// mirror the plugin init registrations (clay: k+m-1, lrc: 2 groups,
// shec: ceil(m/2)); codecache tests cross-check them against the
// registry so drift gets caught.
func Normalize(s Spec) Spec {
	if s.D == 0 {
		switch s.Plugin {
		case "clay":
			s.D = s.K + s.M - 1
		case "lrc":
			s.D = 2
		case "shec":
			s.D = (s.M + 1) / 2
		}
	}
	return s
}

// entry holds one shared instance; the sync.Once makes construction
// singleflight without holding the registry lock.
type entry struct {
	once sync.Once
	code erasure.Code
	err  error
}

var (
	mu           sync.Mutex
	entries      = map[Spec]*entry{}
	hits, misses int64
)

// Enabled reports whether the registry shares instances; it is off when
// ECFAULT_NOCODECACHE is set.
func Enabled() bool { return os.Getenv("ECFAULT_NOCODECACHE") == "" }

// Get returns the shared code instance for the spec, constructing it on
// first use. Construction errors are cached too: the plugin set and spec
// are fixed at init/config time, so a failing spec keeps failing. With
// sharing disabled it returns a fresh private instance per call.
func Get(plugin string, k, m, d int) (erasure.Code, error) {
	return GetSpec(Spec{Plugin: plugin, K: k, M: m, D: d})
}

// GetSpec is Get for callers holding a full Spec, including construction
// parameters outside the (plugin, k, m, d) tuple. Such parameters are
// part of the registry key, so they can never alias distinct
// configurations onto one instance — but no registered plugin consumes
// them yet, so rather than construct a code that silently ignores them,
// GetSpec rejects non-empty Params before touching the registry.
func GetSpec(s Spec) (erasure.Code, error) {
	if s.Params != "" {
		return nil, fmt.Errorf(
			"codecache: spec %s(k=%d,m=%d,d=%d) carries construction parameters %q outside the (plugin, k, m, d) tuple; no registered plugin accepts them — construct the code directly instead of through the registry",
			s.Plugin, s.K, s.M, s.D, s.Params)
	}
	if !Enabled() {
		return erasure.New(s.Plugin, s.K, s.M, s.D)
	}
	spec := Normalize(s)
	mu.Lock()
	e, ok := entries[spec]
	if ok {
		hits++
	} else {
		e = &entry{}
		entries[spec] = e
		misses++
	}
	mu.Unlock()
	e.once.Do(func() {
		e.code, e.err = erasure.New(spec.Plugin, spec.K, spec.M, spec.D)
	})
	return e.code, e.err
}

// Stats returns the registry hit/miss counters (for tests and benchmarks).
func Stats() (h, m int64) {
	mu.Lock()
	defer mu.Unlock()
	return hits, misses
}

// Len returns the number of distinct specs constructed.
func Len() int {
	mu.Lock()
	defer mu.Unlock()
	return len(entries)
}

// Reset drops all shared instances and counters. Tests only: callers
// holding codes from before a Reset keep working, they just stop being
// shared with later callers.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	entries = map[Spec]*entry{}
	hits, misses = 0, 0
}

// Package codecache is the process-wide registry of shared erasure code
// instances, keyed by plugin spec (plugin, k, m, d). The paper's study
// sweeps many configurations of the same few codes, so cluster pools,
// snapshot forks, and experiment cells that share a spec all receive one
// Code instance instead of rebuilding constructions per fork — and with
// it the instance's derived-artifact caches (decode programs, plane
// solvers, repair plans), which are concurrency-safe with singleflight
// fill.
//
// Ownership rules: everything a code builds in New is frozen there;
// everything derived afterwards is cached inside the instance; nothing
// is ever invalidated, so the registry itself is append-only and
// unbounded (the spec space a process touches is tiny). Set
// ECFAULT_NOCODECACHE to bypass sharing and hand every caller a private
// instance, e.g. to A/B the construction cost.
package codecache

import (
	"os"
	"sync"

	"repro/internal/erasure"
)

// Spec identifies one code configuration. D is the plugin-specific extra
// parameter (Clay's repair degree, LRC's locality, SHEC's durability).
type Spec struct {
	Plugin  string
	K, M, D int
}

// Normalize resolves the plugins' d-defaults so that callers passing 0
// and callers passing the resolved value share one entry. The defaults
// mirror the plugin init registrations (clay: k+m-1, lrc: 2 groups,
// shec: ceil(m/2)); codecache tests cross-check them against the
// registry so drift gets caught.
func Normalize(s Spec) Spec {
	if s.D == 0 {
		switch s.Plugin {
		case "clay":
			s.D = s.K + s.M - 1
		case "lrc":
			s.D = 2
		case "shec":
			s.D = (s.M + 1) / 2
		}
	}
	return s
}

// entry holds one shared instance; the sync.Once makes construction
// singleflight without holding the registry lock.
type entry struct {
	once sync.Once
	code erasure.Code
	err  error
}

var (
	mu           sync.Mutex
	entries      = map[Spec]*entry{}
	hits, misses int64
)

// Enabled reports whether the registry shares instances; it is off when
// ECFAULT_NOCODECACHE is set.
func Enabled() bool { return os.Getenv("ECFAULT_NOCODECACHE") == "" }

// Get returns the shared code instance for the spec, constructing it on
// first use. Construction errors are cached too: the plugin set and spec
// are fixed at init/config time, so a failing spec keeps failing. With
// sharing disabled it returns a fresh private instance per call.
func Get(plugin string, k, m, d int) (erasure.Code, error) {
	if !Enabled() {
		return erasure.New(plugin, k, m, d)
	}
	spec := Normalize(Spec{Plugin: plugin, K: k, M: m, D: d})
	mu.Lock()
	e, ok := entries[spec]
	if ok {
		hits++
	} else {
		e = &entry{}
		entries[spec] = e
		misses++
	}
	mu.Unlock()
	e.once.Do(func() {
		e.code, e.err = erasure.New(spec.Plugin, spec.K, spec.M, spec.D)
	})
	return e.code, e.err
}

// Stats returns the registry hit/miss counters (for tests and benchmarks).
func Stats() (h, m int64) {
	mu.Lock()
	defer mu.Unlock()
	return hits, misses
}

// Len returns the number of distinct specs constructed.
func Len() int {
	mu.Lock()
	defer mu.Unlock()
	return len(entries)
}

// Reset drops all shared instances and counters. Tests only: callers
// holding codes from before a Reset keep working, they just stop being
// shared with later callers.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	entries = map[Spec]*entry{}
	hits, misses = 0, 0
}

package lrc

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/erasure"
)

func newLRC(t *testing.T, k, l, g int) *LRC {
	t.Helper()
	c, err := New(k, l, g)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func encodeRandom(t *testing.T, c *LRC, size int, seed int64) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	shards := make([][]byte, c.N())
	for i := 0; i < c.K(); i++ {
		shards[i] = make([]byte, size)
		rng.Read(shards[i])
	}
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	return shards
}

func clone(s [][]byte) [][]byte {
	out := make([][]byte, len(s))
	for i, v := range s {
		if v != nil {
			out[i] = append([]byte(nil), v...)
		}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(10, 3, 2); err == nil {
		t.Fatal("l must divide k")
	}
	if _, err := New(0, 1, 1); err == nil {
		t.Fatal("zero k accepted")
	}
	if _, err := New(200, 2, 60); err == nil {
		t.Fatal("n > 256 accepted")
	}
}

func TestGeometry(t *testing.T) {
	c := newLRC(t, 8, 2, 2) // two groups of 4, two global parities
	if c.N() != 12 || c.M() != 4 || c.Groups() != 2 || c.GlobalParities() != 2 {
		t.Fatalf("geometry: n=%d m=%d", c.N(), c.M())
	}
	if c.groupOf(3) != 0 || c.groupOf(4) != 1 || c.groupOf(8) != 0 || c.groupOf(9) != 1 || c.groupOf(10) != -1 {
		t.Fatal("group mapping wrong")
	}
	members := c.groupMembers(1)
	want := []int{4, 5, 6, 7, 9}
	for i := range want {
		if members[i] != want[i] {
			t.Fatalf("members = %v", members)
		}
	}
}

func TestLocalParityIsXOR(t *testing.T) {
	c := newLRC(t, 4, 2, 1)
	shards := encodeRandom(t, c, 64, 1)
	for grp := 0; grp < 2; grp++ {
		xor := make([]byte, 64)
		for j := grp * 2; j < grp*2+2; j++ {
			for b := range xor {
				xor[b] ^= shards[j][b]
			}
		}
		if !bytes.Equal(xor, shards[4+grp]) {
			t.Fatalf("group %d parity is not the XOR of its members", grp)
		}
	}
}

func TestSingleFailureLocalRepair(t *testing.T) {
	c := newLRC(t, 8, 2, 2)
	orig := encodeRandom(t, c, 256, 2)
	for f := 0; f < c.N(); f++ {
		plan, err := c.RepairPlan([]int{f})
		if err != nil {
			t.Fatal(err)
		}
		if f < c.K()+c.Groups() {
			// Data or local parity: repair stays within the group.
			if len(plan.Helpers) != 4 {
				t.Fatalf("shard %d: local repair should read 4 chunks, reads %d", f, len(plan.Helpers))
			}
		} else {
			if len(plan.Helpers) != c.K() {
				t.Fatalf("global parity %d: should read k chunks", f)
			}
		}
		work := clone(orig)
		work[f] = nil
		if err := c.Repair(work, []int{f}); err != nil {
			t.Fatalf("repair %d: %v", f, err)
		}
		if !bytes.Equal(work[f], orig[f]) {
			t.Fatalf("repair %d wrong bytes", f)
		}
	}
}

func TestLocalRepairBeatsRS(t *testing.T) {
	c := newLRC(t, 12, 3, 2) // groups of 4
	plan, err := c.RepairPlan([]int{5})
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.ReadFraction(); got != 4 {
		t.Fatalf("LRC(12,3,2) single repair reads %.0f chunks, want 4 (vs RS's 12)", got)
	}
}

func TestRepairReadsOnlyPlannedHelpers(t *testing.T) {
	c := newLRC(t, 8, 2, 2)
	orig := encodeRandom(t, c, 64, 3)
	for _, failed := range [][]int{{2}, {9}, {10}, {1, 6}, {0, 1}} {
		plan, err := c.RepairPlan(failed)
		if err != nil {
			t.Fatal(err)
		}
		planned := map[int]bool{}
		for _, h := range plan.Helpers {
			planned[h.Shard] = true
		}
		work := clone(orig)
		for _, f := range failed {
			work[f] = nil
		}
		for i := range work {
			if work[i] != nil && !planned[i] {
				for b := range work[i] {
					work[i][b] = 0xEE
				}
			}
		}
		if err := c.Repair(work, failed); err != nil {
			t.Fatalf("repair %v: %v", failed, err)
		}
		for _, f := range failed {
			if !bytes.Equal(work[f], orig[f]) {
				t.Fatalf("repair %v consulted unplanned shards (shard %d wrong)", failed, f)
			}
		}
	}
}

func TestDecodeAllPatternsUpToGPlusOne(t *testing.T) {
	// Any g+1 = 3 failures that CanRecover accepts must decode exactly.
	c := newLRC(t, 8, 2, 2)
	orig := encodeRandom(t, c, 32, 4)
	n := c.N()
	recoverable, unrecoverable := 0, 0
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			for d := b + 1; d < n; d++ {
				failed := []int{a, b, d}
				work := clone(orig)
				for _, f := range failed {
					work[f] = nil
				}
				err := c.Decode(work)
				if c.CanRecover(failed) {
					recoverable++
					if err != nil {
						t.Fatalf("CanRecover(%v) but decode failed: %v", failed, err)
					}
					for _, f := range failed {
						if !bytes.Equal(work[f], orig[f]) {
							t.Fatalf("pattern %v decoded wrong", failed)
						}
					}
				} else {
					unrecoverable++
					if err == nil {
						t.Fatalf("pattern %v decoded despite CanRecover false", failed)
					}
				}
			}
		}
	}
	// LRC(8,2,2) meets the Gopalan bound d <= n-k-ceil(k/r)+2 = 4 with
	// equality, so every triple must be recoverable.
	if unrecoverable != 0 {
		t.Fatalf("%d triples unrecoverable; construction should achieve distance 4", unrecoverable)
	}
	t.Logf("triples: %d recoverable, %d not", recoverable, unrecoverable)
}

func TestSomeQuadrupleUnrecoverable(t *testing.T) {
	// Four failures wiping a whole local group (3 data + the local
	// parity... a group has 4 data; take 3 data + local parity + ...) —
	// concretely: a group's 4 data chunks all lost leaves only its XOR
	// parity and 2 globals: 3 equations for 4 unknowns.
	c := newLRC(t, 8, 2, 2)
	if c.CanRecover([]int{0, 1, 2, 3}) {
		t.Fatal("losing a whole 4-chunk group must be unrecoverable with 1 local + 2 global parities")
	}
	// While a spread-out quadruple is recoverable.
	if !c.CanRecover([]int{0, 4, 8, 10}) {
		t.Fatal("one loss per group plus parities should be recoverable")
	}
}

func TestAllDoubleFailuresRecoverable(t *testing.T) {
	// One local parity per group + 2 global parities: every pattern of
	// up to g+1 failures hitting distinct groups must be recoverable;
	// verify the stronger empirical claim that all doubles decode.
	c := newLRC(t, 8, 2, 2)
	orig := encodeRandom(t, c, 16, 5)
	for a := 0; a < c.N(); a++ {
		for b := a + 1; b < c.N(); b++ {
			if !c.CanRecover([]int{a, b}) {
				t.Fatalf("double (%d,%d) not recoverable", a, b)
			}
			work := clone(orig)
			work[a], work[b] = nil, nil
			if err := c.Decode(work); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(work[a], orig[a]) || !bytes.Equal(work[b], orig[b]) {
				t.Fatalf("double (%d,%d) wrong", a, b)
			}
		}
	}
}

func TestMultiFailureDistinctGroupsUsesLocalRepairs(t *testing.T) {
	c := newLRC(t, 12, 3, 2)               // groups of 4 data + 1 local parity
	plan, err := c.RepairPlan([]int{1, 5}) // groups 0 and 1
	if err != nil {
		t.Fatal(err)
	}
	// Each group's 4 surviving members: 8 reads total, below k=12 and
	// confined to the two affected groups.
	if len(plan.Helpers) != 8 {
		t.Fatalf("distinct-group repair reads %d, want 8", len(plan.Helpers))
	}
	for _, h := range plan.Helpers {
		grp := c.groupOf(h.Shard)
		if grp != 0 && grp != 1 {
			t.Fatalf("helper %d outside the affected groups", h.Shard)
		}
	}
}

func TestRegistry(t *testing.T) {
	code, err := erasure.New("lrc", 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if code.N() != 12 {
		t.Fatalf("registry lrc n=%d", code.N())
	}
	if _, err := erasure.New("lrc", 9, 2, 2); err == nil {
		t.Fatal("l=2 does not divide k=9, should error")
	}
}

func TestCanRecoverRejectsOutOfRange(t *testing.T) {
	c := newLRC(t, 4, 2, 1)
	if c.CanRecover([]int{99}) {
		t.Fatal("out of range accepted")
	}
}

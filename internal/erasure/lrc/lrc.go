// Package lrc implements Locally Repairable Codes in the layered style of
// Azure-LRC and Ceph's "lrc" plugin: k data chunks are partitioned into l
// local groups, each protected by one XOR local parity, plus g global
// Reed-Solomon parities over all data.
//
// The headline property (Gopalan et al., Huang et al.): a single chunk
// failure repairs by reading only its local group — k/l chunks instead of
// Reed-Solomon's k — trading extra storage (l+g parities) for repair I/O.
// Unlike MDS codes, not every pattern of l+g erasures is decodable;
// CanRecover reports decodability per pattern and the fault-injection
// guard consults it.
package lrc

import (
	"fmt"

	"repro/internal/erasure"
	"repro/internal/erasure/gensolve"
	"repro/internal/erasure/kernel"
	"repro/internal/gf256"
	"repro/internal/gfmat"
)

// LRC is an LRC(k, l, g) code instance. Chunk order: k data, then l local
// parities (one per group), then g global parities. The construction
// (generator, group structure, encode program) is immutable after New;
// pattern solvers and repair plans live in concurrency-safe singleflight
// caches, so one instance is safe to share across goroutines and
// snapshot forks.
type LRC struct {
	k, l, g   int
	groupSize int
	gen       *gfmat.Matrix   // n x k generator
	enc       *kernel.Program // parity rows of gen, compiled once

	solvers *gensolve.Cache
	plans   *erasure.PlanCache // failed mask -> repair plan
}

// New constructs an LRC with k data chunks in l local groups (l must
// divide k) and g global parities.
func New(k, l, g int) (*LRC, error) {
	if k <= 0 || l <= 0 || g <= 0 {
		return nil, fmt.Errorf("lrc: k, l, g must be positive (k=%d l=%d g=%d)", k, l, g)
	}
	if k%l != 0 {
		return nil, fmt.Errorf("lrc: locality l=%d must divide k=%d", l, k)
	}
	n := k + l + g
	if n > 256 {
		return nil, fmt.Errorf("lrc: n=%d exceeds GF(2^8) limit", n)
	}
	gen := gfmat.New(n, k)
	for i := 0; i < k; i++ {
		gen.Set(i, i, 1)
	}
	groupSize := k / l
	for grp := 0; grp < l; grp++ {
		row := k + grp
		for j := grp * groupSize; j < (grp+1)*groupSize; j++ {
			gen.Set(row, j, 1) // XOR local parity
		}
	}
	// Global parities: Cauchy rows, guaranteed jointly independent with
	// any data subset.
	for gi := 0; gi < g; gi++ {
		row := k + l + gi
		x := byte(k + gi)
		for j := 0; j < k; j++ {
			gen.Set(row, j, gf256.Inv(x^byte(j)^0x80))
		}
	}
	return &LRC{
		k: k, l: l, g: g, groupSize: groupSize, gen: gen,
		enc:     kernel.CompileMatrix(l+g, func(i int) []byte { return gen.Row(k + i) }),
		solvers: gensolve.NewCache(gen),
		plans:   erasure.NewPlanCache(n),
	}, nil
}

func init() {
	// Registry signature is (k, m, d); for LRC, m is the global parity
	// count and d carries the locality l (Ceph's lrc plugin similarly
	// takes k/m/l). d == 0 defaults to 2 groups.
	erasure.Register("lrc", func(k, m, d int) (erasure.Code, error) {
		l := d
		if l == 0 {
			l = 2
		}
		return New(k, l, m)
	})
}

// Name implements erasure.Code.
func (c *LRC) Name() string { return "lrc" }

// K implements erasure.Code.
func (c *LRC) K() int { return c.k }

// M implements erasure.Code: the total parity count. Note that unlike MDS
// codes not every pattern of M erasures is decodable; see CanRecover.
func (c *LRC) M() int { return c.l + c.g }

// N implements erasure.Code.
func (c *LRC) N() int { return c.k + c.l + c.g }

// SubChunks implements erasure.Code.
func (c *LRC) SubChunks() int { return 1 }

// Groups returns the number of local groups.
func (c *LRC) Groups() int { return c.l }

// GlobalParities returns the number of global parities.
func (c *LRC) GlobalParities() int { return c.g }

// groupOf returns the local group of a chunk, or -1 for global parities.
func (c *LRC) groupOf(chunk int) int {
	switch {
	case chunk < c.k:
		return chunk / c.groupSize
	case chunk < c.k+c.l:
		return chunk - c.k
	default:
		return -1
	}
}

// groupMembers returns the chunk indices of a group: its data chunks plus
// the local parity.
func (c *LRC) groupMembers(grp int) []int {
	out := make([]int, 0, c.groupSize+1)
	for j := grp * c.groupSize; j < (grp+1)*c.groupSize; j++ {
		out = append(out, j)
	}
	return append(out, c.k+grp)
}

// Encode implements erasure.Code.
func (c *LRC) Encode(shards [][]byte) error {
	n := c.N()
	if len(shards) != n {
		return fmt.Errorf("%w: got %d, want %d", erasure.ErrShardCount, len(shards), n)
	}
	size := -1
	for i := 0; i < c.k; i++ {
		if shards[i] == nil {
			return fmt.Errorf("%w: data shard %d is nil", erasure.ErrShardSize, i)
		}
		if size == -1 {
			size = len(shards[i])
		} else if len(shards[i]) != size {
			return fmt.Errorf("%w: shard %d", erasure.ErrShardSize, i)
		}
	}
	for i := c.k; i < n; i++ {
		if shards[i] == nil || len(shards[i]) != size {
			shards[i] = make([]byte, size)
		}
	}
	c.enc.Run(shards[:c.k], shards[c.k:], true)
	return nil
}

// CanRecover reports whether the erasure pattern is decodable.
func (c *LRC) CanRecover(failed []int) bool {
	erased := make([]bool, c.N())
	for _, f := range failed {
		if f < 0 || f >= c.N() {
			return false
		}
		erased[f] = true
	}
	return c.solvers.CanRecover(erased)
}

// Decode implements erasure.Code.
func (c *LRC) Decode(shards [][]byte) error {
	size, err := erasure.CheckShards(shards, c.N(), 1)
	if err != nil {
		return err
	}
	erased := make([]bool, c.N())
	any := false
	for i, s := range shards {
		if s == nil {
			erased[i] = true
			any = true
		}
	}
	if !any {
		return nil
	}
	sol, err := c.solvers.Solver(erased)
	if err != nil {
		return fmt.Errorf("%w: %v", erasure.ErrTooManyErasures, err)
	}
	sol.Apply(shards, size)
	return nil
}

// RepairPlan implements erasure.Code. Single failures within a group read
// only that group (the locality win); other patterns fall back to the
// full decode's input set. Plans are memoized per failed set and shared;
// callers must not mutate them.
func (c *LRC) RepairPlan(failed []int) (*erasure.Plan, error) {
	return c.plans.Get(failed, func() (*erasure.Plan, error) {
		return c.buildRepairPlan(failed)
	})
}

func (c *LRC) buildRepairPlan(failed []int) (*erasure.Plan, error) {
	if len(failed) == 0 {
		return &erasure.Plan{SubChunkTotal: 1}, nil
	}
	erased := make([]bool, c.N())
	for _, f := range failed {
		if f < 0 || f >= c.N() {
			return nil, fmt.Errorf("lrc: invalid shard index %d", f)
		}
		erased[f] = true
	}
	plan := &erasure.Plan{Failed: append([]int(nil), failed...), SubChunkTotal: 1}
	if len(failed) == 1 {
		if grp := c.groupOf(failed[0]); grp >= 0 {
			for _, m := range c.groupMembers(grp) {
				if m != failed[0] {
					plan.Helpers = append(plan.Helpers, erasure.NewHelperRead(m, []int{0}))
				}
			}
			return plan, nil
		}
		// A global parity rebuilds from all data chunks.
		for j := 0; j < c.k; j++ {
			plan.Helpers = append(plan.Helpers, erasure.NewHelperRead(j, []int{0}))
		}
		return plan, nil
	}
	// Multiple failures in distinct groups, one each: per-group local
	// repairs.
	if c.allSinglePerGroup(failed) {
		seen := map[int]bool{}
		for _, f := range failed {
			for _, m := range c.groupMembers(c.groupOf(f)) {
				if !erased[m] && !seen[m] {
					seen[m] = true
					plan.Helpers = append(plan.Helpers, erasure.NewHelperRead(m, []int{0}))
				}
			}
		}
		return plan, nil
	}
	sol, err := c.solvers.Solver(erased)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", erasure.ErrTooManyErasures, err)
	}
	for _, in := range sol.Inputs {
		plan.Helpers = append(plan.Helpers, erasure.NewHelperRead(in, []int{0}))
	}
	return plan, nil
}

// allSinglePerGroup reports whether every failure is in a distinct local
// group (and none is a global parity).
func (c *LRC) allSinglePerGroup(failed []int) bool {
	seen := map[int]bool{}
	for _, f := range failed {
		grp := c.groupOf(f)
		if grp < 0 || seen[grp] {
			return false
		}
		seen[grp] = true
	}
	return true
}

// Repair implements erasure.Code, reading only the shards the plan lists.
func (c *LRC) Repair(shards [][]byte, failed []int) error {
	if len(failed) == 0 {
		return nil
	}
	plan, err := c.RepairPlan(failed)
	if err != nil {
		return err
	}
	lost := map[int]bool{}
	for _, f := range failed {
		lost[f] = true
	}
	// Local repairs: reconstruct each failed chunk by XOR-solving within
	// its group when the plan is group-local.
	if len(failed) == 1 || c.allSinglePerGroup(failed) {
		size := -1
		for _, h := range plan.Helpers {
			if shards[h.Shard] == nil {
				return fmt.Errorf("lrc: helper shard %d is nil", h.Shard)
			}
			if size == -1 {
				size = len(shards[h.Shard])
			}
		}
		for _, f := range failed {
			grp := c.groupOf(f)
			if grp < 0 {
				// Global parity: re-encode from data.
				buf := make([]byte, size)
				c.enc.Plan(f-c.k).Mul(shards[:c.k], buf)
				shards[f] = buf
				continue
			}
			buf := make([]byte, size)
			for _, m := range c.groupMembers(grp) {
				if m != f {
					gf256.XorSlice(shards[m], buf)
				}
			}
			shards[f] = buf
		}
		return nil
	}
	// General pattern: decode over the plan's inputs only.
	work := make([][]byte, c.N())
	for _, h := range plan.Helpers {
		work[h.Shard] = shards[h.Shard]
	}
	if err := c.Decode(work); err != nil {
		return err
	}
	for _, f := range failed {
		shards[f] = work[f]
	}
	return nil
}

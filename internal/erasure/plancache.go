package erasure

import "repro/internal/erasure/kernel"

// PlanCache memoizes the repair plans a code builds per failed-shard set.
// Plans are pure functions of the immutable code construction, so one
// cached *Plan serves every caller — including concurrent cells and
// snapshot forks sharing a registry code — and is never invalidated.
// Cached plans must therefore never be mutated after RepairPlan returns.
//
// The key is the bitmask of failed indices, so permutations and
// duplicates of a set share one entry; the cached plan's Failed order is
// the first builder's, which no consumer depends on.
type PlanCache struct {
	n   int // shard count; indices outside [0, n) bypass the cache
	lru *kernel.Sharded[*Plan]
}

// NewPlanCache returns a plan cache for a code with n shards, bounded by
// the shared derived-artifact cache size (ECFAULT_DECODE_CACHE).
func NewPlanCache(n int) *PlanCache {
	return &PlanCache{n: n, lru: kernel.NewSharded[*Plan](kernel.DecodeCacheSize())}
}

// Get returns the memoized plan for the failed set, building it
// singleflight on first use. Sets with out-of-range indices fall through
// to build directly so it can report the error without a mask panic.
func (pc *PlanCache) Get(failed []int, build func() (*Plan, error)) (*Plan, error) {
	for _, f := range failed {
		if f < 0 || f >= pc.n {
			return build()
		}
	}
	return pc.lru.GetOrCompute(kernel.MaskOf(failed...), build)
}

// Len returns the number of cached plans (for tests).
func (pc *PlanCache) Len() int { return pc.lru.Len() }

// Package clay implements the Clay (coupled-layer) code of Vajha et al.
// (FAST '18), the minimum-storage-regenerating construction shipped as
// Ceph's "clay" erasure-code plugin.
//
// A Clay(n=k+m, k, d) code with d = n-1 arranges the n chunks on a q x t
// grid (q = m, t = n/q) and divides every chunk into alpha = q^t
// sub-chunks, one per "plane" z in [q]^t. Coupled symbols C (what is
// stored) relate to uncoupled symbols U through an invertible pairwise
// transform; within every plane the uncoupled symbols form a codeword of an
// [nt, nt-q] MDS code. Single-chunk repair touches only the beta = alpha/q
// planes that intersect the failed chunk, reading beta sub-chunks from each
// of the d = n-1 helpers: repair traffic (n-1)/q chunks instead of
// Reed-Solomon's k chunks.
//
// When q does not divide n the code is shortened: virtual all-zero data
// chunks pad the grid, exactly as Ceph does.
//
// Multiple erasures fall back to a full decode that reads every sub-chunk
// of the surviving chunks and recovers planes in increasing
// intersection-score order, also matching the Ceph plugin's behaviour.
package clay

import (
	"fmt"
	"sync"

	"repro/internal/erasure"
	"repro/internal/erasure/kernel"
	"repro/internal/gf256"
	"repro/internal/gfmat"
)

// smallSubChunk is the sub-chunk size below which the per-plane solves use
// the direct row path (plain coefficient-slice ops) instead of the
// compiled kernel.Program, and below which odd sizes skip the 8-byte
// padding detour: at ~50 B sub-chunks (4 KiB shards, alpha=81) the program
// chunking, padding copies, and cache bookkeeping cost more than the
// arithmetic they accelerate.
const smallSubChunk = 256

// gamma is the coupling coefficient of the pairwise transforms. Any value
// outside {0, 1} yields an invertible transform; 2 matches the generator
// of the field.
const gamma byte = 2

// Clay is a Clay code instance. The construction (base generator,
// coupling transforms, plane geometry) is immutable after New; plane
// solvers and repair plans are derived artifacts held in concurrency-safe
// singleflight caches, so one instance is safe to share across goroutines
// and snapshot forks.
type Clay struct {
	k, m, d int
	q, t    int
	nt      int   // q*t internal grid nodes (>= n, extras are virtual zeros)
	kInt    int   // nt - q internal data nodes
	alpha   int   // q^t sub-chunks per chunk
	beta    int   // alpha / q sub-chunks read per helper on single repair
	pow     []int // pow[i] = q^i, i in [0, t]

	base *gfmat.Matrix // nt x kInt MDS generator for the uncoupled planes

	// digitPlanes[y*q+x] lists the planes z with digit(z, y) == x, in
	// ascending order: the segment-index sets the batched transforms hand
	// to the gf256 segment kernels when a group spans the whole plane
	// space. Built once in New; immutable.
	digitPlanes [][]int32

	// The pairwise coupling transforms, compiled once into two-source row
	// kernels (both inputs stream through the word-wide gf256 kernel
	// instead of per-byte table lookups):
	//
	//	pairRow:     U1 = C1/(1+gamma^2) + gamma*C2/(1+gamma^2)
	//	coupleRow:   C1 = U1 + gamma*U2
	//	uncoupleRow: U2 = C1/gamma + U1/gamma
	pairRow, coupleRow, uncoupleRow *gf256.RowPlan

	decodeLRU *kernel.Sharded[*planeSolver] // erased-node mask -> compiled plane solver
	plans     *erasure.PlanCache            // failed mask -> repair plan
}

// New constructs a Clay(k+m, k, d) code. Only the repair-optimal
// configuration d = k+m-1 is supported (Ceph's default); other values
// return an error.
func New(k, m, d int) (*Clay, error) {
	if k <= 0 || m <= 1 {
		return nil, fmt.Errorf("clay: require k >= 1 and m >= 2 (k=%d m=%d)", k, m)
	}
	if d != k+m-1 {
		return nil, fmt.Errorf("clay: only d = k+m-1 is supported (k=%d m=%d d=%d)", k, m, d)
	}
	q := d - k + 1 // == m
	n := k + m
	t := (n + q - 1) / q
	nt := q * t
	alpha := 1
	for i := 0; i < t; i++ {
		alpha *= q
		if alpha > 1<<20 {
			return nil, fmt.Errorf("clay: sub-packetization q^t = %d^%d too large", q, t)
		}
	}
	pow := make([]int, t+1)
	pow[0] = 1
	for i := 1; i <= t; i++ {
		pow[i] = pow[i-1] * q
	}
	if nt > 256 {
		return nil, fmt.Errorf("clay: internal width %d exceeds GF(2^8) limit", nt)
	}
	invG2 := gf256.Inv(gf256.Mul(gamma, gamma) ^ 1)
	invG := gf256.Inv(gamma)
	c := &Clay{
		k: k, m: m, d: d,
		q: q, t: t, nt: nt, kInt: nt - q,
		alpha: alpha, beta: alpha / q,
		pow:         pow,
		base:        gfmat.Cauchy(nt, nt-q),
		pairRow:     gf256.CompileRow([]byte{invG2, gf256.Mul(invG2, gamma)}),
		coupleRow:   gf256.CompileRow([]byte{1, gamma}),
		uncoupleRow: gf256.CompileRow([]byte{invG, invG}),
		decodeLRU:   kernel.NewSharded[*planeSolver](kernel.DecodeCacheSize()),
		plans:       erasure.NewPlanCache(n),
	}
	// Planes with digit(z, y) == x form q^y runs of q^(t-1-y) consecutive
	// planes, q^(t-y) apart.
	c.digitPlanes = make([][]int32, t*q)
	slab := make([]int32, 0, t*alpha)
	for y := 0; y < t; y++ {
		runLen, stride := pow[t-1-y], pow[t-y]
		for x := 0; x < q; x++ {
			start := len(slab)
			for base := x * runLen; base < alpha; base += stride {
				for i := 0; i < runLen; i++ {
					slab = append(slab, int32(base+i))
				}
			}
			c.digitPlanes[y*q+x] = slab[start:len(slab):len(slab)]
		}
	}
	return c, nil
}

func init() {
	erasure.Register("clay", func(k, m, d int) (erasure.Code, error) {
		if d == 0 {
			d = k + m - 1
		}
		return New(k, m, d)
	})
}

// Name implements erasure.Code.
func (c *Clay) Name() string { return "clay" }

// K implements erasure.Code.
func (c *Clay) K() int { return c.k }

// M implements erasure.Code.
func (c *Clay) M() int { return c.m }

// N implements erasure.Code.
func (c *Clay) N() int { return c.k + c.m }

// D is the number of helpers contacted for a single-chunk repair.
func (c *Clay) D() int { return c.d }

// SubChunks implements erasure.Code.
func (c *Clay) SubChunks() int { return c.alpha }

// Beta is the number of sub-chunks read from each helper during
// single-chunk repair (alpha / q).
func (c *Clay) Beta() int { return c.beta }

// internalIndex maps an external shard index (0..n-1, data first then
// parity) to the internal grid index. Virtual zero-data nodes occupy
// internal indices k..kInt-1; parity shards occupy kInt..nt-1.
func (c *Clay) internalIndex(ext int) int {
	if ext < c.k {
		return ext
	}
	return c.kInt + (ext - c.k)
}

// externalIndex is the inverse of internalIndex; virtual nodes return -1.
func (c *Clay) externalIndex(internal int) int {
	if internal < c.k {
		return internal
	}
	if internal < c.kInt {
		return -1
	}
	return c.k + (internal - c.kInt)
}

// nodeXY decomposes an internal node index into grid coordinates.
func (c *Clay) nodeXY(u int) (x, y int) { return u % c.q, u / c.q }

// digit returns coordinate y of plane z.
func (c *Clay) digit(z, y int) int { return (z / c.pow[c.t-1-y]) % c.q }

// setDigit returns plane z with coordinate y replaced by v.
func (c *Clay) setDigit(z, y, v int) int {
	old := c.digit(z, y)
	return z + (v-old)*c.pow[c.t-1-y]
}

// padWorthwhile reports whether decode/repair should re-run on 8-byte
// padded sub-chunk slots: only when the sub-chunk size is odd and the
// active gf256 backend actually needs alignment — the SIMD tiers load
// unaligned, so for them the copies are pure overhead at every size, while
// the word kernels fall to their byte path without the padding.
func padWorthwhile(scs int) bool {
	return scs&7 != 0 && !gf256.Vectorized()
}

// padCopy lays src's sub-chunks of scs bytes out in scsPad-byte slots of
// dst, so every sub-chunk starts on an 8-byte boundary of dst's (aligned)
// backing array. unpadCopy is the inverse.
func padCopy(dst, src []byte, scs, scsPad int) {
	for off, poff := 0, 0; off < len(src); off, poff = off+scs, poff+scsPad {
		copy(dst[poff:poff+scs], src[off:off+scs])
	}
}

func unpadCopy(dst, src []byte, scs, scsPad int) {
	for off, poff := 0, 0; off < len(dst); off, poff = off+scs, poff+scsPad {
		copy(dst[off:off+scs], src[poff:poff+scs])
	}
}

// mulPair applies a compiled two-source transform: dst = plan(a, b). The
// scratch pair slice avoids a per-call header allocation on the plane hot
// loops.
func mulPair(plan *gf256.RowPlan, pair [][]byte, a, b, dst []byte) {
	pair[0], pair[1] = a, b
	plan.Mul(pair, dst)
}

// Encode implements erasure.Code. Encoding is performed as a decode with
// the m parity chunks treated as erasures, the same strategy the Ceph
// plugin uses.
func (c *Clay) Encode(shards [][]byte) error {
	n := c.N()
	if len(shards) != n {
		return fmt.Errorf("%w: got %d, want %d", erasure.ErrShardCount, len(shards), n)
	}
	size := -1
	for i := 0; i < c.k; i++ {
		if shards[i] == nil {
			return fmt.Errorf("%w: data shard %d is nil", erasure.ErrShardSize, i)
		}
		if size == -1 {
			size = len(shards[i])
		} else if len(shards[i]) != size {
			return fmt.Errorf("%w: shard %d has %d bytes, want %d", erasure.ErrShardSize, i, len(shards[i]), size)
		}
	}
	if size%c.alpha != 0 {
		return fmt.Errorf("%w: shard size %d not divisible by alpha=%d", erasure.ErrShardSize, size, c.alpha)
	}
	for i := c.k; i < n; i++ {
		shards[i] = nil
	}
	return c.Decode(shards)
}

// Decode implements erasure.Code: full decode of up to m missing shards by
// processing planes in increasing intersection-score order.
func (c *Clay) Decode(shards [][]byte) error {
	size, err := erasure.CheckShards(shards, c.N(), c.alpha)
	if err != nil {
		return err
	}
	var missingExt []int
	for i, s := range shards {
		if s == nil {
			missingExt = append(missingExt, i)
		}
	}
	if len(missingExt) == 0 {
		return nil
	}
	if len(missingExt) > c.m {
		return fmt.Errorf("%w: %d lost, max %d", erasure.ErrTooManyErasures, len(missingExt), c.m)
	}
	scs := size / c.alpha
	if padWorthwhile(scs) {
		// An odd sub-chunk size leaves every plane slice at an unaligned
		// offset, forcing the word kernels onto their byte fallback for
		// the whole decode. Re-run on a copy whose sub-chunks sit in
		// 8-byte-padded slots (word kernels throughout), then strip the
		// padding from the recovered shards: GF arithmetic is elementwise,
		// so the real bytes are identical either way, and the two extra
		// memmoves are far cheaper than byte-path transforms over every
		// plane. The SIMD backends load unaligned, and below smallSubChunk
		// the copies outweigh the arithmetic, so both skip the detour.
		scsPad := (scs + 7) &^ 7
		work := make([][]byte, len(shards))
		for i, s := range shards {
			if s == nil {
				continue
			}
			w := make([]byte, scsPad*c.alpha)
			padCopy(w, s, scs, scsPad)
			work[i] = w
		}
		if err := c.Decode(work); err != nil {
			return err
		}
		for _, e := range missingExt {
			out := make([]byte, size)
			unpadCopy(out, work[e], scs, scsPad)
			shards[e] = out
		}
		return nil
	}

	erased := make([]bool, c.nt)
	for _, e := range missingExt {
		erased[c.internalIndex(e)] = true
		shards[e] = make([]byte, size)
	}

	// C holds coupled symbols per internal node: virtual nodes are zero;
	// real nodes alias the shard buffers. U is computed per plane.
	C := make([][]byte, c.nt)
	zero := make([]byte, size)
	for u := 0; u < c.nt; u++ {
		ext := c.externalIndex(u)
		if ext == -1 {
			C[u] = zero
		} else {
			C[u] = shards[ext]
		}
	}
	// U for every node and plane; filled as planes are processed.
	U := make([][]byte, c.nt)
	for u := range U {
		U[u] = make([]byte, size)
	}

	// Group planes by intersection score.
	byScore := make([][]int32, c.t+1)
	for z := 0; z < c.alpha; z++ {
		s := c.intersectionScore(z, erased)
		byScore[s] = append(byScore[s], int32(z))
	}

	dec, err := c.planeDecoder(erased)
	if err != nil {
		return err
	}

	srcs := make([][]byte, len(dec.survivors))
	dsts := make([][]byte, len(dec.lost))
	if Batching() && scs < batchDecodeLimit() {
		for s := 0; s <= c.t; s++ {
			if len(byScore[s]) == 0 {
				continue
			}
			c.decodeGroupBatched(byScore[s], erased, C, U, dec, scs, srcs, dsts)
		}
		c.convertUCBatched(erased, C, U, scs)
		return nil
	}
	for s := 0; s <= c.t; s++ {
		for _, z := range byScore[s] {
			c.decodePlane(int(z), erased, C, U, dec, scs, srcs, dsts)
		}
	}

	// All U known everywhere; convert U -> C for the erased nodes.
	pair := make([][]byte, 2)
	for u := 0; u < c.nt; u++ {
		if !erased[u] {
			continue
		}
		x, y := c.nodeXY(u)
		for z := 0; z < c.alpha; z++ {
			off := z * scs
			dst := C[u][off : off+scs]
			if c.digit(z, y) == x {
				copy(dst, U[u][off:off+scs])
				continue
			}
			comp := c.digit(z, y) + y*c.q // companion node (z_y, y)
			zc := c.setDigit(z, y, x)
			co := zc * scs
			mulPair(c.coupleRow, pair, U[u][off:off+scs], U[comp][co:co+scs], dst)
		}
	}
	return nil
}

// intersectionScore counts erased nodes (x,y) whose grid column intersects
// plane z, i.e. z_y == x.
func (c *Clay) intersectionScore(z int, erased []bool) int {
	s := 0
	for u := 0; u < c.nt; u++ {
		if !erased[u] {
			continue
		}
		x, y := c.nodeXY(u)
		if c.digit(z, y) == x {
			s++
		}
	}
	return s
}

// planeDecoder returns the compiled solver recovering a plane's erased
// uncoupled symbols from its first kInt survivors, memoized per erasure
// set in the bounded LRU (the whole compiled solver is cached, where the
// old map kept only the inverse and rebuilt the reconstruction rows on
// every call).
func (c *Clay) planeDecoder(erased []bool) (*planeSolver, error) {
	return c.decodeLRU.GetOrCompute(kernel.MaskOfBools(erased), func() (*planeSolver, error) {
		survivors := make([]int, 0, c.kInt)
		var lost []int
		for u := 0; u < c.nt; u++ {
			if erased[u] {
				lost = append(lost, u)
			} else if len(survivors) < c.kInt {
				survivors = append(survivors, u)
			}
		}
		sub := c.base.SubMatrix(survivors)
		inv, err := sub.Invert()
		if err != nil {
			return nil, fmt.Errorf("clay: plane decode matrix: %w", err)
		}
		// rows[i] = generator row of lost node i times inv: maps survivor
		// symbols directly to the lost symbol.
		rows := make([][]byte, len(lost))
		for i, l := range lost {
			rows[i] = c.base.SubMatrix([]int{l}).Mul(inv).Row(0)
		}
		return &planeSolver{survivors: survivors, lost: lost, rows: rows}, nil
	})
}

// planeSolver recovers erased uncoupled symbols within one plane from the
// first kInt surviving symbols. Only the inverted reconstruction rows are
// built eagerly (that is the expensive, always-needed part); the
// kernel.Program is compiled on first use with a sub-chunk size worth
// program chunking, so small-sub-chunk workloads never pay for it.
type planeSolver struct {
	survivors []int    // kInt surviving node indices used as inputs
	lost      []int    // erased node indices
	rows      [][]byte // reconstruction rows, survivor symbols -> lost symbol

	planOnce sync.Once
	plans    []*gf256.RowPlan // direct row path for small sub-chunks

	progOnce sync.Once
	prog     *kernel.Program
}

// solve runs the plane's MDS reconstruction: for each lost node, its U
// sub-slice (select(lost node)) is overwritten with the combination of the
// survivor sub-slices. srcs/dsts are caller scratch of lengths
// len(survivors) and len(lost). Sub-chunks below smallSubChunk apply the
// reconstruction rows directly with coefficient-slice ops; the result is
// byte-identical either way because GF arithmetic is elementwise.
func (dec *planeSolver) solve(srcs, dsts [][]byte, sel func(u int) []byte) {
	if len(dec.lost) == 0 {
		return
	}
	for si, sv := range dec.survivors {
		srcs[si] = sel(sv)
	}
	for li, l := range dec.lost {
		dsts[li] = sel(l)
	}
	if len(dsts[0]) < smallSubChunk {
		// Direct row path: one fused row kernel per lost symbol, no
		// program chunking or worker dispatch.
		for li, plan := range dec.rowPlans() {
			plan.Mul(srcs, dsts[li])
		}
		return
	}
	dec.progOnce.Do(func() { dec.prog = kernel.Compile(dec.rows) })
	dec.prog.Run(srcs, dsts, true)
}

// rowPlans returns the compiled per-lost-symbol row kernels, building them
// on first use.
func (dec *planeSolver) rowPlans() []*gf256.RowPlan {
	dec.planOnce.Do(func() {
		dec.plans = make([]*gf256.RowPlan, len(dec.rows))
		for i, row := range dec.rows {
			dec.plans[i] = gf256.CompileRow(row)
		}
	})
	return dec.plans
}

// decodePlane computes U for every node in plane z. Survivor U values come
// from the pairwise reverse transform (using companion C from this plane,
// or companion U from an already-processed lower-score plane when the
// companion node is erased); erased U values come from the per-plane MDS
// solve.
func (c *Clay) decodePlane(z int, erased []bool, C, U [][]byte, dec *planeSolver, scs int, srcs, dsts [][]byte) {
	off := z * scs
	var pairBuf [2][]byte
	pair := pairBuf[:]
	for u := 0; u < c.nt; u++ {
		if erased[u] {
			continue
		}
		x, y := c.nodeXY(u)
		zy := c.digit(z, y)
		dst := U[u][off : off+scs]
		if zy == x {
			copy(dst, C[u][off:off+scs]) // unpaired vertex
			continue
		}
		comp := zy + y*c.q // companion node (z_y, y)
		zc := c.setDigit(z, y, x)
		co := zc * scs
		if !erased[comp] {
			// Both coupled symbols are available.
			mulPair(c.pairRow, pair, C[u][off:off+scs], C[comp][co:co+scs], dst)
		} else {
			// Companion plane has score-1 and is already solved:
			// U1 = C1 + gamma * U2.
			mulPair(c.coupleRow, pair, C[u][off:off+scs], U[comp][co:co+scs], dst)
		}
	}
	// Solve for erased U values from the plane's MDS codeword.
	dec.solve(srcs, dsts, func(u int) []byte { return U[u][off : off+scs] })
}

// repairPlanes returns the plane indices intersecting internal node u0.
func (c *Clay) repairPlanes(u0 int) []int {
	x0, y0 := c.nodeXY(u0)
	planes := make([]int, 0, c.beta)
	for z := 0; z < c.alpha; z++ {
		if c.digit(z, y0) == x0 {
			planes = append(planes, z)
		}
	}
	return planes
}

// RepairPlan implements erasure.Code. A single failure uses the
// repair-optimal plan (beta sub-chunks from each of the d = n-1 helpers);
// multiple failures fall back to reading all sub-chunks from every
// survivor, as the Ceph plugin does. Plans are memoized per failed set
// and shared; callers must not mutate them.
func (c *Clay) RepairPlan(failed []int) (*erasure.Plan, error) {
	return c.plans.Get(failed, func() (*erasure.Plan, error) {
		return c.buildRepairPlan(failed)
	})
}

func (c *Clay) buildRepairPlan(failed []int) (*erasure.Plan, error) {
	if len(failed) == 0 {
		return &erasure.Plan{SubChunkTotal: c.alpha}, nil
	}
	if len(failed) > c.m {
		return nil, fmt.Errorf("%w: %d lost, max %d", erasure.ErrTooManyErasures, len(failed), c.m)
	}
	lost := map[int]bool{}
	for _, f := range failed {
		if f < 0 || f >= c.N() {
			return nil, fmt.Errorf("clay: invalid shard index %d", f)
		}
		lost[f] = true
	}
	plan := &erasure.Plan{Failed: append([]int(nil), failed...), SubChunkTotal: c.alpha}
	if len(failed) == 1 {
		planes := c.repairPlanes(c.internalIndex(failed[0]))
		for i := 0; i < c.N(); i++ {
			if lost[i] {
				continue
			}
			plan.Helpers = append(plan.Helpers, erasure.NewHelperRead(i, planes))
		}
		return plan, nil
	}
	all := make([]int, c.alpha)
	for i := range all {
		all[i] = i
	}
	for i := 0; i < c.N(); i++ {
		if lost[i] {
			continue
		}
		plan.Helpers = append(plan.Helpers, erasure.NewHelperRead(i, all))
	}
	return plan, nil
}

// Repair implements erasure.Code. Single failures use the plane-repair
// algorithm and provably touch only the planned sub-chunks; multiple
// failures delegate to Decode.
func (c *Clay) Repair(shards [][]byte, failed []int) error {
	if len(failed) == 0 {
		return nil
	}
	if len(failed) > 1 {
		work := make([][]byte, len(shards))
		copy(work, shards)
		for _, f := range failed {
			if f < 0 || f >= len(work) {
				return fmt.Errorf("clay: invalid shard index %d", f)
			}
			work[f] = nil
		}
		if err := c.Decode(work); err != nil {
			return err
		}
		for _, f := range failed {
			shards[f] = work[f]
		}
		return nil
	}
	return c.repairSingle(shards, failed[0])
}

// repairSingle reconstructs one failed shard reading only the beta repair
// planes from each survivor.
func (c *Clay) repairSingle(shards [][]byte, failedExt int) error {
	if len(shards) != c.N() {
		return fmt.Errorf("%w: got %d, want %d", erasure.ErrShardCount, len(shards), c.N())
	}
	size := -1
	for i, s := range shards {
		if i == failedExt {
			continue
		}
		if s == nil {
			return fmt.Errorf("clay: helper shard %d is nil", i)
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return fmt.Errorf("%w: shard %d has %d bytes, want %d", erasure.ErrShardSize, i, len(s), size)
		}
	}
	if size%c.alpha != 0 {
		return fmt.Errorf("%w: shard size %d not divisible by alpha=%d", erasure.ErrShardSize, size, c.alpha)
	}
	scs := size / c.alpha
	if padWorthwhile(scs) {
		// Same padding detour as Decode: repair on 8-byte-padded sub-chunk
		// slots so the plane transforms run on the word kernels.
		scsPad := (scs + 7) &^ 7
		work := make([][]byte, len(shards))
		for i, s := range shards {
			if i == failedExt || s == nil {
				continue
			}
			w := make([]byte, scsPad*c.alpha)
			padCopy(w, s, scs, scsPad)
			work[i] = w
		}
		if err := c.repairSingle(work, failedExt); err != nil {
			return err
		}
		out := make([]byte, size)
		unpadCopy(out, work[failedExt], scs, scsPad)
		shards[failedExt] = out
		return nil
	}
	out := make([]byte, size)
	if Batching() && scs < batchRepairLimit() {
		return c.repairStrided(shards, failedExt, scs, out)
	}
	u0 := c.internalIndex(failedExt)
	x0, y0 := c.nodeXY(u0)
	planes := c.repairPlanes(u0)

	// C access: virtual nodes read as zero; the failed node must never be
	// read.
	zero := make([]byte, scs)
	readC := func(u, z int) []byte {
		ext := c.externalIndex(u)
		if ext == -1 {
			return zero
		}
		if ext == failedExt {
			panic("clay: repair read from failed shard")
		}
		return shards[ext][z*scs : (z+1)*scs]
	}

	erased := make([]bool, c.nt)
	// In the repair formulation the whole failed column y0 is "unknown" in
	// U-space within each repair plane.
	colUnknown := make([]int, 0, c.q)
	for x := 0; x < c.q; x++ {
		colUnknown = append(colUnknown, x+y0*c.q)
	}
	for _, u := range colUnknown {
		erased[u] = true
	}
	dec, err := c.planeDecoder(erased)
	if err != nil {
		return err
	}

	uPlane := make([][]byte, c.nt) // U values within the current plane
	for u := range uPlane {
		uPlane[u] = make([]byte, scs)
	}
	srcs := make([][]byte, len(dec.survivors))
	dsts := make([][]byte, len(dec.lost))
	u2 := make([]byte, scs)
	var pairBuf [2][]byte
	pair := pairBuf[:]

	for _, z := range planes {
		// Step 1: U for all nodes outside column y0.
		for u := 0; u < c.nt; u++ {
			x, y := c.nodeXY(u)
			if y == y0 {
				continue
			}
			zy := c.digit(z, y)
			if zy == x {
				copy(uPlane[u], readC(u, z))
				continue
			}
			comp := zy + y*c.q
			zc := c.setDigit(z, y, x)
			mulPair(c.pairRow, pair, readC(u, z), readC(comp, zc), uPlane[u])
		}
		// Step 2: MDS-solve the q unknowns of column y0.
		dec.solve(srcs, dsts, func(u int) []byte { return uPlane[u] })
		// Step 3: the failed node's sub-chunk in this plane is unpaired:
		// C = U.
		copy(out[z*scs:(z+1)*scs], uPlane[u0])
		// Step 4: recover the failed node's sub-chunks in the companion
		// (non-repair) planes via the coupling relations with column-y0
		// survivors.
		for x := 0; x < c.q; x++ {
			if x == x0 {
				continue
			}
			us := x + y0*c.q // surviving node (x, y0)
			w := c.setDigit(z, y0, x)
			// U2 = U(x0,y0,w) = (C(x,y0,z) - U(x,y0,z)) / gamma
			mulPair(c.uncoupleRow, pair, readC(us, z), uPlane[us], u2)
			// C(x0,y0,w) = U(x0,y0,w) + gamma * U(x,y0,z)
			mulPair(c.coupleRow, pair, u2, uPlane[us], out[w*scs:(w+1)*scs])
		}
	}
	shards[failedExt] = out
	return nil
}

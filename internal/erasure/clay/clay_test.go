package clay

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/erasure"
)

func randShards(t *testing.T, c *Clay, scs int, seed int64) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	size := c.SubChunks() * scs
	shards := make([][]byte, c.N())
	for i := 0; i < c.K(); i++ {
		shards[i] = make([]byte, size)
		rng.Read(shards[i])
	}
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	return shards
}

func cloneShards(s [][]byte) [][]byte {
	out := make([][]byte, len(s))
	for i, v := range s {
		if v != nil {
			out[i] = append([]byte(nil), v...)
		}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(9, 3, 10); err == nil {
		t.Fatal("d != k+m-1 must be rejected")
	}
	if _, err := New(9, 1, 9); err == nil {
		t.Fatal("m=1 must be rejected")
	}
	c, err := New(9, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if c.SubChunks() != 81 {
		t.Fatalf("Clay(12,9,11) alpha = %d, want 81 (q=3,t=4)", c.SubChunks())
	}
	if c.Beta() != 27 {
		t.Fatalf("beta = %d, want 27", c.Beta())
	}
}

func TestGeometrySmall(t *testing.T) {
	c, err := New(2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.q != 2 || c.t != 2 || c.alpha != 4 || c.nt != 4 || c.kInt != 2 {
		t.Fatalf("unexpected geometry q=%d t=%d alpha=%d nt=%d kInt=%d", c.q, c.t, c.alpha, c.nt, c.kInt)
	}
}

func TestDigitSetDigit(t *testing.T) {
	c, _ := New(9, 3, 11) // q=3, t=4
	for z := 0; z < c.alpha; z++ {
		for y := 0; y < c.t; y++ {
			d := c.digit(z, y)
			if d < 0 || d >= c.q {
				t.Fatalf("digit out of range")
			}
			for v := 0; v < c.q; v++ {
				z2 := c.setDigit(z, y, v)
				if c.digit(z2, y) != v {
					t.Fatalf("setDigit failed")
				}
				// Other digits unchanged.
				for y2 := 0; y2 < c.t; y2++ {
					if y2 != y && c.digit(z2, y2) != c.digit(z, y2) {
						t.Fatalf("setDigit disturbed digit %d", y2)
					}
				}
			}
		}
	}
}

func TestEncodeDecodeRoundTripAllSinglePatterns(t *testing.T) {
	c, err := New(4, 2, 5) // q=2, t=3, alpha=8
	if err != nil {
		t.Fatal(err)
	}
	orig := randShards(t, c, 3, 1)
	for lost := 0; lost < c.N(); lost++ {
		work := cloneShards(orig)
		work[lost] = nil
		if err := c.Decode(work); err != nil {
			t.Fatalf("decode with shard %d lost: %v", lost, err)
		}
		if !bytes.Equal(work[lost], orig[lost]) {
			t.Fatalf("shard %d not recovered correctly", lost)
		}
	}
}

func TestDecodeAllDoublePatterns(t *testing.T) {
	c, err := New(4, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	orig := randShards(t, c, 2, 7)
	for a := 0; a < c.N(); a++ {
		for b := a + 1; b < c.N(); b++ {
			work := cloneShards(orig)
			work[a], work[b] = nil, nil
			if err := c.Decode(work); err != nil {
				t.Fatalf("decode with %d,%d lost: %v", a, b, err)
			}
			if !bytes.Equal(work[a], orig[a]) || !bytes.Equal(work[b], orig[b]) {
				t.Fatalf("shards %d,%d not recovered", a, b)
			}
		}
	}
}

func TestDecodeTriplePatternsClay12_9(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive triple erasure is slow")
	}
	c, err := New(9, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	orig := randShards(t, c, 1, 99)
	// Sample of triple patterns including all-data, all-parity, mixed.
	patterns := [][]int{
		{0, 1, 2}, {0, 5, 8}, {9, 10, 11}, {0, 9, 11}, {3, 7, 10}, {6, 8, 9},
	}
	for _, p := range patterns {
		work := cloneShards(orig)
		for _, i := range p {
			work[i] = nil
		}
		if err := c.Decode(work); err != nil {
			t.Fatalf("decode %v: %v", p, err)
		}
		for _, i := range p {
			if !bytes.Equal(work[i], orig[i]) {
				t.Fatalf("pattern %v: shard %d wrong", p, i)
			}
		}
	}
}

func TestTooManyErasures(t *testing.T) {
	c, _ := New(4, 2, 5)
	orig := randShards(t, c, 1, 3)
	work := cloneShards(orig)
	work[0], work[1], work[2] = nil, nil, nil
	if err := c.Decode(work); err == nil {
		t.Fatal("expected error with 3 erasures on m=2 code")
	}
}

func TestRepairSingleMatchesOriginal(t *testing.T) {
	c, err := New(9, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	orig := randShards(t, c, 2, 5)
	for lost := 0; lost < c.N(); lost++ {
		work := cloneShards(orig)
		work[lost] = nil
		if err := c.Repair(work, []int{lost}); err != nil {
			t.Fatalf("repair shard %d: %v", lost, err)
		}
		if !bytes.Equal(work[lost], orig[lost]) {
			t.Fatalf("repair of shard %d produced wrong bytes", lost)
		}
	}
}

// TestOddSubChunkSizePadding drives the 8-byte padding detour with a
// realistic odd sub-chunk size (809 bytes, the 4 KB stripe-unit case:
// 65536/81 rounds to an odd per-plane slice). Encode, repair and full
// decode must all round-trip exactly; the padded word-kernel path and the
// unpadded byte path compute the same elementwise GF arithmetic.
func TestOddSubChunkSizePadding(t *testing.T) {
	c, err := New(9, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	orig := randShards(t, c, 809, 17)
	for _, lost := range []int{0, 5, 11} {
		work := cloneShards(orig)
		work[lost] = nil
		if err := c.Repair(work, []int{lost}); err != nil {
			t.Fatalf("repair shard %d: %v", lost, err)
		}
		if !bytes.Equal(work[lost], orig[lost]) {
			t.Fatalf("odd-scs repair of shard %d produced wrong bytes", lost)
		}
	}
	work := cloneShards(orig)
	work[2], work[9] = nil, nil
	if err := c.Decode(work); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(work[2], orig[2]) || !bytes.Equal(work[9], orig[9]) {
		t.Fatal("odd-scs double decode produced wrong bytes")
	}
}

// TestRepairReadsOnlyPlannedSubChunks poisons every sub-chunk the repair
// plan does not list; a correct implementation must still reconstruct the
// lost shard exactly.
func TestRepairReadsOnlyPlannedSubChunks(t *testing.T) {
	c, err := New(9, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	orig := randShards(t, c, 2, 11)
	scs := len(orig[0]) / c.SubChunks()
	for lost := 0; lost < c.N(); lost++ {
		plan, err := c.RepairPlan([]int{lost})
		if err != nil {
			t.Fatal(err)
		}
		planned := map[int]map[int]bool{}
		for _, h := range plan.Helpers {
			sub := map[int]bool{}
			for _, s := range h.SubChunks {
				sub[s] = true
			}
			planned[h.Shard] = sub
		}
		work := cloneShards(orig)
		work[lost] = nil
		for i := range work {
			if i == lost {
				continue
			}
			for z := 0; z < c.SubChunks(); z++ {
				if !planned[i][z] {
					for b := 0; b < scs; b++ {
						work[i][z*scs+b] = 0xEE // poison
					}
				}
			}
		}
		if err := c.Repair(work, []int{lost}); err != nil {
			t.Fatalf("repair %d: %v", lost, err)
		}
		if !bytes.Equal(work[lost], orig[lost]) {
			t.Fatalf("repair of %d read outside its plan (wrong output)", lost)
		}
	}
}

func TestRepairPlanBandwidth(t *testing.T) {
	c, _ := New(9, 3, 11)
	plan, err := c.RepairPlan([]int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Helpers) != c.N()-1 {
		t.Fatalf("helpers = %d, want %d", len(plan.Helpers), c.N()-1)
	}
	for _, h := range plan.Helpers {
		if len(h.SubChunks) != c.Beta() {
			t.Fatalf("helper %d reads %d sub-chunks, want beta=%d", h.Shard, len(h.SubChunks), c.Beta())
		}
	}
	// Repair traffic must be (n-1)/q chunks vs Reed-Solomon's k chunks.
	got := plan.ReadFraction()
	want := float64(c.N()-1) / float64(c.q)
	if got != want {
		t.Fatalf("read fraction %.3f, want %.3f", got, want)
	}
	if got >= float64(c.K()) {
		t.Fatal("clay repair should beat RS k-chunk reads")
	}
}

func TestRepairPlanMultiFailureFallsBack(t *testing.T) {
	c, _ := New(9, 3, 11)
	plan, err := c.RepairPlan([]int{2, 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Helpers) != c.N()-2 {
		t.Fatalf("helpers = %d", len(plan.Helpers))
	}
	for _, h := range plan.Helpers {
		if len(h.SubChunks) != c.SubChunks() {
			t.Fatal("multi-failure plan must read all sub-chunks")
		}
		if h.Runs != 1 {
			t.Fatal("full read should be one contiguous run")
		}
	}
}

func TestRepairMultiFailure(t *testing.T) {
	c, _ := New(9, 3, 11)
	orig := randShards(t, c, 1, 13)
	work := cloneShards(orig)
	work[1], work[10] = nil, nil
	if err := c.Repair(work, []int{1, 10}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(work[1], orig[1]) || !bytes.Equal(work[10], orig[10]) {
		t.Fatal("multi-failure repair wrong")
	}
}

func TestShortenedCode(t *testing.T) {
	// n=11 with m=3: q=3 does not divide 11, so one virtual zero chunk
	// pads the grid.
	c, err := New(8, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.nt != 12 || c.kInt != 9 {
		t.Fatalf("shortened geometry nt=%d kInt=%d", c.nt, c.kInt)
	}
	orig := randShards(t, c, 1, 21)
	// Single repair.
	work := cloneShards(orig)
	work[5] = nil
	if err := c.Repair(work, []int{5}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(work[5], orig[5]) {
		t.Fatal("shortened repair wrong")
	}
	// Triple decode.
	work = cloneShards(orig)
	work[0], work[6], work[9] = nil, nil, nil
	if err := c.Decode(work); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 6, 9} {
		if !bytes.Equal(work[i], orig[i]) {
			t.Fatalf("shortened decode shard %d wrong", i)
		}
	}
}

func TestRunsCountReflectsColumnPosition(t *testing.T) {
	c, _ := New(9, 3, 11) // q=3, t=4
	// Failing a node in grid column y=0 (most significant digit) gives one
	// contiguous run; column y=t-1 gives beta runs.
	plan0, _ := c.RepairPlan([]int{0}) // node 0 -> (x=0, y=0)
	for _, h := range plan0.Helpers {
		if h.Runs != 1 {
			t.Fatalf("y=0 failure: runs=%d, want 1", h.Runs)
		}
	}
	planLast, _ := c.RepairPlan([]int{9}) // parity 0 -> internal 9 -> (x=0,y=3)
	for _, h := range planLast.Helpers {
		if h.Runs != c.Beta() {
			t.Fatalf("y=t-1 failure: runs=%d, want %d", h.Runs, c.Beta())
		}
	}
}

func TestQuickPropertyRoundTrip(t *testing.T) {
	c, err := New(4, 3, 6) // n=7, q=3, nt=9, alpha=27, 2 virtual chunks
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, lossPattern uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		shards := make([][]byte, c.N())
		for i := 0; i < c.K(); i++ {
			shards[i] = make([]byte, c.SubChunks())
			rng.Read(shards[i])
		}
		if err := c.Encode(shards); err != nil {
			return false
		}
		orig := cloneShards(shards)
		// Pick 1..m distinct shards to lose.
		nLost := 1 + int(lossPattern)%c.M()
		perm := rng.Perm(c.N())[:nLost]
		for _, i := range perm {
			shards[i] = nil
		}
		if err := c.Decode(shards); err != nil {
			return false
		}
		for i := range shards {
			if !bytes.Equal(shards[i], orig[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRegistry(t *testing.T) {
	code, err := erasure.New("clay", 9, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if code.SubChunks() != 81 {
		t.Fatal("registry clay should default to d=k+m-1")
	}
}

func TestEncodeRejectsBadShardSize(t *testing.T) {
	c, _ := New(4, 2, 5)
	shards := make([][]byte, c.N())
	for i := 0; i < c.K(); i++ {
		shards[i] = make([]byte, 7) // not divisible by alpha=8
	}
	if err := c.Encode(shards); err == nil {
		t.Fatal("expected shard-size error")
	}
}

func BenchmarkClayEncode12_9(b *testing.B) {
	c, _ := New(9, 3, 11)
	size := 81 * 512 // ~40 KiB shards
	shards := make([][]byte, c.N())
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < c.K(); i++ {
		shards[i] = make([]byte, size)
		rng.Read(shards[i])
	}
	b.SetBytes(int64(size * c.K()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClayRepairSingle12_9(b *testing.B) {
	c, _ := New(9, 3, 11)
	size := 81 * 512
	shards := make([][]byte, c.N())
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < c.K(); i++ {
		shards[i] = make([]byte, size)
		rng.Read(shards[i])
	}
	if err := c.Encode(shards); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := make([][]byte, len(shards))
		copy(work, shards)
		work[3] = nil
		if err := c.Repair(work, []int{3}); err != nil {
			b.Fatal(err)
		}
	}
}

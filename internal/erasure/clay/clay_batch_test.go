package clay

import (
	"bytes"
	"math/rand"
	"testing"
)

// encodeWith runs a fresh encode of the given data shards under the given
// batching setting and returns the full shard set.
func encodeWith(t *testing.T, c *Clay, data [][]byte, batched bool) [][]byte {
	t.Helper()
	restore := SetBatching(batched)
	defer restore()
	shards := make([][]byte, c.N())
	for i := range data {
		shards[i] = append([]byte(nil), data[i]...)
	}
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	return shards
}

// TestBatchedEncodeDecodeRepairIdentity checks that the batched paths are
// byte-identical to the per-plane baseline for encode, every decode
// pattern up to m erasures, and every single repair, across shapes and
// sub-chunk sizes covering the gather, strided, and per-run kernel routes.
func TestBatchedEncodeDecodeRepairIdentity(t *testing.T) {
	// Lift the size gates so every sub-chunk size below exercises the
	// batched code paths, not the gated fallbacks.
	defer SetBatchLimits(1<<30, 1<<30)()

	shapes := []struct{ k, m int }{{4, 2}, {9, 3}, {6, 2}, {2, 2}}
	for _, sh := range shapes {
		c, err := New(sh.k, sh.m, sh.k+sh.m-1)
		if err != nil {
			t.Fatal(err)
		}
		for _, scs := range []int{1, 3, 8, 32, 51, 200} {
			data := make([][]byte, c.K())
			rng := rand.New(rand.NewSource(int64(sh.k*1000 + scs)))
			for i := range data {
				data[i] = make([]byte, c.SubChunks()*scs)
				rng.Read(data[i])
			}
			batched := encodeWith(t, c, data, true)
			baseline := encodeWith(t, c, data, false)
			for i := range batched {
				if !bytes.Equal(batched[i], baseline[i]) {
					t.Fatalf("k=%d m=%d scs=%d: encode shard %d diverges from per-plane path",
						sh.k, sh.m, scs, i)
				}
			}

			// Every single- and double-erasure decode.
			for a := 0; a < c.N(); a++ {
				for b := a; b < c.N(); b++ {
					for _, batch := range []bool{true, false} {
						restore := SetBatching(batch)
						work := cloneShards(baseline)
						work[a], work[b] = nil, nil
						err := c.Decode(work)
						restore()
						if err != nil {
							t.Fatal(err)
						}
						for i := range work {
							if !bytes.Equal(work[i], baseline[i]) {
								t.Fatalf("k=%d m=%d scs=%d erase(%d,%d) batch=%v: decode shard %d wrong",
									sh.k, sh.m, scs, a, b, batch, i)
							}
						}
					}
				}
			}

			// Every single repair.
			for f := 0; f < c.N(); f++ {
				for _, batch := range []bool{true, false} {
					restore := SetBatching(batch)
					work := make([][]byte, len(baseline))
					copy(work, baseline)
					work[f] = nil
					err := c.Repair(work, []int{f})
					restore()
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(work[f], baseline[f]) {
						t.Fatalf("k=%d m=%d scs=%d batch=%v: repair of shard %d wrong",
							sh.k, sh.m, scs, batch, f)
					}
				}
			}
		}
	}
}

// TestBatchingToggle checks the gate plumbing.
func TestBatchingToggle(t *testing.T) {
	if !Batching() {
		t.Skip("ECFAULT_NOBATCH set in environment")
	}
	restore := SetBatching(false)
	if Batching() {
		t.Fatal("SetBatching(false) did not disable batching")
	}
	restore()
	if !Batching() {
		t.Fatal("restore did not re-enable batching")
	}
}

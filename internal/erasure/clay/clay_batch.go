package clay

import (
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/erasure/kernel"
	"repro/internal/gf256"
	"repro/internal/parallel"
)

// Multi-plane batched transforms.
//
// Clay's hot loops apply the same coupling coefficients in every plane;
// only the sub-chunk offsets differ. The per-plane formulation therefore
// issues alpha tiny kernel calls per pairwise transform pass — at 4 KiB
// shards (~50 B sub-chunks) the call overhead dwarfs the arithmetic. The
// batched paths here gather all planes sharing a coefficient pair into
// one gf256.ApplySegs / kernel.Program.RunSegs invocation:
//
//   - Decode processes each intersection-score group with one segment
//     batch per (node, companion-column) pair plus one batched MDS solve;
//     for encode (every parity erased) the single group covers all alpha
//     planes, so the solve collapses to full-buffer Program.Run calls.
//   - Single repair solves directly over the shard layout: the pairwise
//     transforms, the failed node's row of the MDS solve, and the
//     companion-plane recovery address every helper's beta repair-plane
//     sub-chunks in place through gf256.ApplyStrided's per-operand
//     base/stride geometry, so no coupled symbol is ever gathered or
//     scattered; only the uncoupled scratch is compact.
//
// Both paths compute the exact same GF(2^8) operations on the same bytes
// as the per-plane code, so outputs are byte-identical; the conformance
// suite enforces that across backends with batching toggled. Set
// ECFAULT_NOBATCH=1 (or SetBatching(false)) to force the per-plane
// baseline for A/B comparisons.

// batchOff disables the batched paths when set. Stored inverted so the
// zero value means "batching on".
var batchOff atomic.Bool

// Batching pays off while per-call kernel dispatch dominates the
// arithmetic; once sub-chunks grow large every per-plane call already
// streams enough bytes to amortize itself. Decode reaches parity near
// scs≈1600 on the ymm tiers and rides the wider zmm strided kernels to
// 4 KiB; zero-copy repair (no gather/scatter to degrade into memcpy)
// wins through 1 KiB sub-chunks on every measured tier with a single
// worker, with the per-plane path pulling ahead from 2 KiB
// (BenchmarkKernelClayRepairSweep tracks the crossover). With a kernel
// worker budget above 1 the strided calls themselves fan out across the
// pool (stridedPar below), so the batched path stays ahead to larger
// sub-chunks: the gate moves to 4 KiB on the ymm tiers and 8 KiB on the
// zmm tier, where the wide strided kernels keep whole runs in one call.
// The per-plane alternative at those sizes parallelizes only across
// planes through kernel.Program, paying alpha small dispatches where the
// strided path pays a handful of large ones. The gates are vars
// overridable by SetBatchLimits (identity tests push arbitrarily large
// sub-chunks through the batched paths); 0 means "derive the measured
// default".
var (
	batchMaxSubChunk       = 0
	batchRepairMaxSubChunk = 0
)

// batchDecodeLimit returns the sub-chunk size gate for batched decode.
// Like the repair gate it doubles when the kernel worker budget lets the
// segment batches fan out: the batched formulation pays a handful of
// large dispatches where the per-plane one pays alpha small ones, so the
// parallel crossover sits one size class higher.
func batchDecodeLimit() int {
	if batchMaxSubChunk != 0 {
		return batchMaxSubChunk
	}
	lim := 2048
	if gf256.StridedRunCap() >= 4096 {
		lim = 4096
	}
	if parallel.KernelWorkers() > 1 {
		lim *= 2
	}
	return lim
}

// batchRepairLimit returns the sub-chunk size gate for zero-copy batched
// repair. With parallel strided execution available (kernel worker budget
// above 1) the batched path amortizes across workers and the gate rises;
// on a single worker the serial crossover at 2 KiB still holds.
func batchRepairLimit() int {
	if batchRepairMaxSubChunk != 0 {
		return batchRepairMaxSubChunk
	}
	if parallel.KernelWorkers() > 1 {
		if gf256.StridedRunCap() >= 4096 {
			return 8192
		}
		return 4096
	}
	return 2048
}

// stridedPar routes one strided batch through the parallel gf256 entry
// when the calibrated policy (kernel.StridedWorkers) says the total bytes
// clear the strided threshold; smaller calls stay serial on the calling
// goroutine. Argument-buffer reuse across call sites is safe because the
// parallel entry returns only after the whole fan-out drains.
func stridedPar(rp *gf256.RowPlan, srcs [][]byte, dst []byte, dstBase, dstStride int, srcBase, srcStride []int, segn, count int, overwrite bool) {
	if w := kernel.StridedWorkers(segn * count); w > 1 {
		rp.ApplyStridedParallel(srcs, dst, dstBase, dstStride, srcBase, srcStride, segn, count, overwrite, w)
		return
	}
	rp.ApplyStrided(srcs, dst, dstBase, dstStride, srcBase, srcStride, segn, count, overwrite)
}

// segsPar is stridedPar for segment batches (MulSegs call sites): the
// index list splits into contiguous per-worker sub-lists when the batch
// clears the strided threshold.
func segsPar(rp *gf256.RowPlan, srcs [][]byte, dst []byte, idx []int32, delta []int32, segLen int) {
	if w := kernel.StridedWorkers(len(idx) * segLen); w > 1 {
		rp.ApplySegsParallel(srcs, dst, idx, delta, segLen, true, w)
		return
	}
	rp.MulSegs(srcs, dst, idx, delta, segLen)
}

func init() {
	if os.Getenv("ECFAULT_NOBATCH") != "" {
		batchOff.Store(true)
	}
}

// Batching reports whether the multi-plane batched decode/repair paths are
// active.
func Batching() bool { return !batchOff.Load() }

// SetBatching toggles the batched paths and returns a function restoring
// the previous setting. It is meant for tests and benchmarks comparing the
// batched and per-plane formulations; both produce byte-identical output.
func SetBatching(on bool) (restore func()) {
	prev := batchOff.Load()
	batchOff.Store(!on)
	return func() { batchOff.Store(prev) }
}

// SetBatchLimits overrides the sub-chunk size gates above which the
// batched paths yield to the per-plane code, returning a restore
// function; 0 restores the backend-derived defaults. Identity tests use
// it to push arbitrarily large sub-chunks through the batched
// implementations; it is not safe concurrently with Decode/Repair calls.
func SetBatchLimits(decodeMax, repairMax int) (restore func()) {
	prevD, prevR := batchMaxSubChunk, batchRepairMaxSubChunk
	batchMaxSubChunk, batchRepairMaxSubChunk = decodeMax, repairMax
	return func() { batchMaxSubChunk, batchRepairMaxSubChunk = prevD, prevR }
}

// repairScratch pools the compact-space slab for repairStrided. Pooling
// (rather than a per-call make) matters because the slab is written and
// discarded every repair: at mid-size sub-chunks the allocator's zeroing
// plus GC scan cost rivals the GF arithmetic itself. The pool is
// package-level, never hung off a code instance, so repairs racing on a
// shared registry instance each grab independent slabs.
var repairScratch = sync.Pool{New: func() any { b := []byte(nil); return &b }}

// copySegs copies the listed scs-byte segments from src to dst, coalescing
// adjacent segment indices into single copies.
func copySegs(dst, src []byte, idx []int32, scs int) {
	for i := 0; i < len(idx); {
		j := i + 1
		for j < len(idx) && idx[j] == idx[j-1]+1 {
			j++
		}
		off, end := int(idx[i])*scs, (int(idx[j-1])+1)*scs
		copy(dst[off:end], src[off:end])
		i = j
	}
}

// solveBatch runs the plane MDS reconstruction across a batch of planes in
// one program invocation per lost node: sel(u) returns node u's full
// buffer, idx lists the plane indices to solve. full indicates idx covers
// every segment of the buffers contiguously, letting the solve run as a
// plain full-width Program.Run.
func (dec *planeSolver) solveBatch(srcs, dsts [][]byte, sel func(u int) []byte, idx []int32, scs int, full bool) {
	if len(dec.lost) == 0 {
		return
	}
	for si, sv := range dec.survivors {
		srcs[si] = sel(sv)
	}
	for li, l := range dec.lost {
		dsts[li] = sel(l)
	}
	dec.progOnce.Do(func() { dec.prog = kernel.Compile(dec.rows) })
	if full {
		dec.prog.Run(srcs, dsts, true)
		return
	}
	dec.prog.RunSegs(srcs, dsts, idx, scs, true)
}

// decodeGroupBatched computes U for every node across all planes of one
// intersection-score group. Within a group the transforms only read C
// (any plane) and U of strictly lower-score planes — when a companion node
// is erased, its companion plane's score is one lower — so running every
// transform of the group before every solve preserves the per-plane data
// dependencies exactly.
func (c *Clay) decodeGroupBatched(group []int32, erased []bool, C, U [][]byte, dec *planeSolver, scs int, srcs, dsts [][]byte) {
	full := len(group) == c.alpha
	var pairBuf [2][]byte
	var deltaBuf [2]int32
	pair, delta := pairBuf[:], deltaBuf[:]

	// Per-row plane buckets by digit value; full groups use the
	// precomputed whole-space lists.
	var bucket [][]int32
	var counts []int
	var slab []int32
	if !full {
		bucket = make([][]int32, c.q)
		counts = make([]int, c.q)
		slab = make([]int32, len(group))
	}
	for y := 0; y < c.t; y++ {
		if !full {
			clear(counts)
			pw := c.pow[c.t-1-y]
			for _, z := range group {
				counts[(int(z)/pw)%c.q]++
			}
			off := 0
			for x := 0; x < c.q; x++ {
				bucket[x] = slab[off : off : off+counts[x]]
				off += counts[x]
			}
			for _, z := range group {
				x := (int(z) / pw) % c.q
				bucket[x] = append(bucket[x], z)
			}
		}
		for x := 0; x < c.q; x++ {
			u := x + y*c.q
			if erased[u] {
				continue
			}
			for xp := 0; xp < c.q; xp++ {
				idx := c.digitPlanes[y*c.q+xp]
				if !full {
					idx = bucket[xp]
				}
				if len(idx) == 0 {
					continue
				}
				if xp == x {
					copySegs(U[u], C[u], idx, scs) // unpaired vertices
					continue
				}
				comp := xp + y*c.q
				delta[0], delta[1] = 0, int32((x-xp)*c.pow[c.t-1-y])
				pair[0] = C[u]
				if !erased[comp] {
					pair[1] = C[comp]
					segsPar(c.pairRow, pair, U[u], idx, delta, scs)
				} else {
					pair[1] = U[comp]
					segsPar(c.coupleRow, pair, U[u], idx, delta, scs)
				}
			}
		}
	}
	dec.solveBatch(srcs, dsts, func(u int) []byte { return U[u] }, group, scs, full)
}

// convertUCBatched is the batched form of the final U -> C conversion for
// erased nodes: every plane's U is known, so each (node, companion-column)
// pair converts in one segment batch over the whole plane space.
func (c *Clay) convertUCBatched(erased []bool, C, U [][]byte, scs int) {
	var pairBuf [2][]byte
	var deltaBuf [2]int32
	pair, delta := pairBuf[:], deltaBuf[:]
	for u := 0; u < c.nt; u++ {
		if !erased[u] {
			continue
		}
		x, y := c.nodeXY(u)
		for xp := 0; xp < c.q; xp++ {
			idx := c.digitPlanes[y*c.q+xp]
			if xp == x {
				copySegs(C[u], U[u], idx, scs)
				continue
			}
			comp := xp + y*c.q
			delta[0], delta[1] = 0, int32((x-xp)*c.pow[c.t-1-y])
			pair[0], pair[1] = U[u], U[comp]
			segsPar(c.coupleRow, pair, C[u], idx, delta, scs)
		}
	}
}

// repairStrided is the zero-copy batched single-failure repair: it solves
// directly over the shard layout. All coupled-symbol reads during single
// repair hit only the beta repair-plane sub-chunks — planes z with
// digit(z, y0) == x0, which form nRuns = pow[y0] runs of runLen =
// pow[t-1-y0] consecutive planes spaced runStride = pow[t-y0] apart. The
// pairwise transforms, the failed node's row of the MDS solve, and the
// companion-plane recovery address those sub-chunks in place through
// gf256.ApplyStrided's per-operand base/stride geometry (shard space:
// stride runStride*scs per run; compact scratch: stride runLen*scs), so
// helper bytes are never gathered through an arena and recovered bytes
// are written straight into the output shard. Only the uncoupled symbols
// live in compact rank-ordered scratch — rank p = a*runLen + i maps to
// plane z = a*runStride + first + i. Scratch is a pooled slab held
// exclusively for the duration of the call — nothing hangs off the code
// instance, so concurrent repairs on a shared registry instance stay
// independent.
//
// Every strided call routes through stridedPar, fanning out across the
// kernel worker pool when it clears the calibrated threshold. The slab is
// shared across those workers without per-worker copies because each
// parallel call's writes are disjoint by construction (workers own
// distinct segment/byte ranges of the one destination) and the shared
// reads are immutable for the duration of the call: zeroRun is read-only,
// and uComp/u2 regions read by one call were fully written by earlier
// calls that drained before this one started (the fan-out blocks until
// complete).
func (c *Clay) repairStrided(shards [][]byte, failedExt int, scs int, out []byte) error {
	u0 := c.internalIndex(failedExt)
	x0, y0 := c.nodeXY(u0)
	bb := c.beta * scs

	runLen := c.pow[c.t-1-y0]
	runStride := c.pow[c.t-y0]
	nRuns := c.pow[y0]
	first := x0 * runLen
	rl := runLen * scs    // run bytes, compact space (runs are contiguous)
	rs := runStride * scs // run stride, shard space

	erased := make([]bool, c.nt)
	for x := 0; x < c.q; x++ {
		erased[x+y0*c.q] = true // whole column y0 unknown in U-space
	}
	dec, err := c.planeDecoder(erased)
	if err != nil {
		return err
	}

	// One pooled slab: compact U per node, the step-3 scratch, and one
	// run-width zero window standing in for virtual shards (read with
	// stride 0). Every uComp byte is overwritten before it is read, so
	// only the zero window needs clearing on reuse.
	need := (c.nt+1)*bb + rl
	sp := repairScratch.Get().(*[]byte)
	if cap(*sp) < need {
		*sp = make([]byte, need)
	}
	slab := (*sp)[:need]
	defer repairScratch.Put(sp)
	clear(slab[(c.nt+1)*bb:])
	uComp := make([][]byte, c.nt)
	for u := range uComp {
		uComp[u] = slab[u*bb : (u+1)*bb]
	}
	u2 := slab[c.nt*bb : (c.nt+1)*bb]
	zeroRun := slab[(c.nt+1)*bb:]

	// cBuf returns the buffer holding node u's coupled symbols: the shard
	// itself for real helpers (addressed strided), the shared zero window
	// for virtual nodes (stride 0). The failed node's C is never read.
	cBuf := func(u int) (buf []byte, real bool) {
		ext := c.externalIndex(u)
		if ext == -1 {
			return zeroRun, false
		}
		if ext == failedExt {
			panic("clay: repair read from failed shard")
		}
		return shards[ext], true
	}

	pair := make([][]byte, 2)
	pb := make([]int, 2) // per-source base offsets
	ps := make([]int, 2) // per-source strides

	// Step 1: U for all nodes outside column y0, one strided batch per
	// (node, companion-column, run-group), reading C from the shards in
	// place. The repair-plane selection with digit(z, y) == xp splits on
	// whether digit y is encoded above or below digit y0 in the plane
	// number.
	for u := 0; u < c.nt; u++ {
		x, y := c.nodeXY(u)
		if y == y0 {
			continue
		}
		cu, realU := cBuf(u)
		if y < y0 {
			// Digit y lives in the run index a = (z - first - i)/runStride:
			// selected a's form runs of aRL consecutive values, q*aRL
			// apart; each a-run is one ApplyStrided call whose segments are
			// whole plane runs (contiguous in compact space, runStride
			// apart in shard space). The companion plane shift
			// (x-xp)*pow[t-1-y] is (x-xp)*aRL runs.
			aRL := c.pow[y0-1-y]
			nA := c.pow[y]
			for xp := 0; xp < c.q; xp++ {
				var cp []byte
				var realC bool
				comp := xp + y*c.q
				if xp != x {
					cp, realC = cBuf(comp)
				}
				for j := 0; j < nA; j++ {
					a := xp*aRL + j*c.q*aRL
					if xp == x {
						// Unpaired vertices: U = C (zero for virtual nodes).
						if !realU {
							clear(uComp[u][a*rl : (a+aRL)*rl])
							continue
						}
						for i := 0; i < aRL; i++ {
							zo := (a+i)*rs + first*scs
							copy(uComp[u][(a+i)*rl:(a+i+1)*rl], cu[zo:zo+rl])
						}
						continue
					}
					pair[0], pair[1] = cu, cp
					pb[0], ps[0] = 0, 0
					if realU {
						pb[0], ps[0] = a*rs+first*scs, rs
					}
					pb[1], ps[1] = 0, 0
					if realC {
						pb[1], ps[1] = (a+(x-xp)*aRL)*rs+first*scs, rs
					}
					stridedPar(c.pairRow, pair, uComp[u], a*rl, rl, pb, ps, rl, aRL, true)
				}
			}
		} else {
			// y > y0: digit y lives inside each run — blocks of iRL bytes,
			// iStr apart, at matching offsets in shard and compact space
			// (runs are contiguous in both). One call per plane run.
			iRL := c.pow[c.t-1-y] * scs
			iStr := c.pow[c.t-y] * scs
			nI := rl / iStr
			for xp := 0; xp < c.q; xp++ {
				var cp []byte
				var realC bool
				comp := xp + y*c.q
				shift := (x - xp) * iRL
				if xp != x {
					cp, realC = cBuf(comp)
				}
				for a := 0; a < nRuns; a++ {
					dstBase := a*rl + xp*iRL
					srcZ := a*rs + first*scs + xp*iRL
					if xp == x {
						if !realU {
							for l := 0; l < nI; l++ {
								clear(uComp[u][dstBase+l*iStr : dstBase+l*iStr+iRL])
							}
							continue
						}
						for l := 0; l < nI; l++ {
							copy(uComp[u][dstBase+l*iStr:dstBase+l*iStr+iRL], cu[srcZ+l*iStr:srcZ+l*iStr+iRL])
						}
						continue
					}
					pair[0], pair[1] = cu, cp
					pb[0], ps[0] = 0, 0
					if realU {
						pb[0], ps[0] = srcZ, iStr
					}
					pb[1], ps[1] = 0, 0
					if realC {
						pb[1], ps[1] = srcZ+shift, iStr
					}
					stridedPar(c.pairRow, pair, uComp[u], dstBase, iStr, pb, ps, iRL, nI, true)
				}
			}
		}
	}

	// Step 2: MDS-solve the q unknowns of column y0 across all repair
	// planes at once. The failed node's repair-plane sub-chunks are
	// unpaired (C = U), so its reconstruction row writes strided straight
	// into the output shard — the other lost rows stay compact for the
	// step-3 coupling.
	srcs := make([][]byte, len(dec.survivors))
	sb := make([]int, len(srcs)) // all zero: compact buffers start at 0
	st := make([]int, len(srcs))
	for si, sv := range dec.survivors {
		srcs[si] = uComp[sv]
		st[si] = rl
	}
	for li, plan := range dec.rowPlans() {
		l := dec.lost[li]
		if l == u0 {
			stridedPar(plan, srcs, out, first*scs, rs, sb, st, rl, nRuns, true)
		} else {
			// Compact rows are contiguous, so the full-buffer multiply is
			// one strided call with a single bb-byte segment; the parallel
			// entry byte-splits it across workers when it is large enough.
			stridedPar(plan, srcs, uComp[l], 0, bb, sb, st, bb, 1, true)
		}
	}

	// Step 3: recover the failed node's sub-chunks in the companion planes
	// via the coupling relations with the column-y0 survivors. Both
	// transforms per survivor are single strided batches: the uncouple
	// reads the survivor's C from its shard in place, and the couple
	// writes the companion planes w = setDigit(z, y0, x) — byte offset
	// x*rl + a*rs — straight into the output shard.
	for x := 0; x < c.q; x++ {
		if x == x0 {
			continue
		}
		us := x + y0*c.q
		cu, realC := cBuf(us)
		// U2 = (C(x,y0) - U(x,y0)) / gamma
		pair[0], pair[1] = cu, uComp[us]
		pb[0], ps[0] = 0, 0
		if realC {
			pb[0], ps[0] = first*scs, rs
		}
		pb[1], ps[1] = 0, rl
		stridedPar(c.uncoupleRow, pair, u2, 0, rl, pb, ps, rl, nRuns, true)
		// C(x0,y0,w) = U2 + gamma * U(x,y0)
		pair[0], pair[1] = u2, uComp[us]
		pb[0], ps[0] = 0, rl
		pb[1], ps[1] = 0, rl
		stridedPar(c.coupleRow, pair, out, x*rl, rs, pb, ps, rl, nRuns, true)
	}
	shards[failedExt] = out
	return nil
}

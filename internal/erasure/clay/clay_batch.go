package clay

import (
	"os"
	"sync/atomic"

	"repro/internal/erasure/kernel"
)

// Multi-plane batched transforms.
//
// Clay's hot loops apply the same coupling coefficients in every plane;
// only the sub-chunk offsets differ. The per-plane formulation therefore
// issues alpha tiny kernel calls per pairwise transform pass — at 4 KiB
// shards (~50 B sub-chunks) the call overhead dwarfs the arithmetic. The
// batched paths here gather all planes sharing a coefficient pair into
// one gf256.ApplySegs / kernel.Program.RunSegs invocation:
//
//   - Decode processes each intersection-score group with one segment
//     batch per (node, companion-column) pair plus one batched MDS solve;
//     for encode (every parity erased) the single group covers all alpha
//     planes, so the solve collapses to full-buffer Program.Run calls.
//   - Single repair compacts the beta repair-plane sub-chunks of every
//     helper into contiguous scratch, which turns the MDS solve and the
//     companion-plane recovery into full-width contiguous kernel runs and
//     leaves only the pairwise step strided (in the compact space).
//
// Both paths compute the exact same GF(2^8) operations on the same bytes
// as the per-plane code, so outputs are byte-identical; the conformance
// suite enforces that across backends with batching toggled. Set
// ECFAULT_NOBATCH=1 (or SetBatching(false)) to force the per-plane
// baseline for A/B comparisons.

// batchOff disables the batched paths when set. Stored inverted so the
// zero value means "batching on".
var batchOff atomic.Bool

// Batching pays off while per-call kernel dispatch dominates the
// arithmetic; once sub-chunks grow large every per-plane call already
// streams enough bytes to amortize itself, and the batched repair's
// compact-space gather/scatter degrades into pure memcpy overhead on top.
// Measured crossovers on the reference host (GFNI): decode/encode reach
// parity near scs≈1600, repair near scs≈128. Vars, not consts, so the
// identity tests can push large sub-chunks through the batched paths.
var (
	batchMaxSubChunk       = 2048
	batchRepairMaxSubChunk = 128
)

func init() {
	if os.Getenv("ECFAULT_NOBATCH") != "" {
		batchOff.Store(true)
	}
}

// Batching reports whether the multi-plane batched decode/repair paths are
// active.
func Batching() bool { return !batchOff.Load() }

// SetBatching toggles the batched paths and returns a function restoring
// the previous setting. It is meant for tests and benchmarks comparing the
// batched and per-plane formulations; both produce byte-identical output.
func SetBatching(on bool) (restore func()) {
	prev := batchOff.Load()
	batchOff.Store(!on)
	return func() { batchOff.Store(prev) }
}

// SetBatchLimits overrides the sub-chunk size gates above which the
// batched paths yield to the per-plane code, returning a restore
// function. Identity tests use it to push arbitrarily large sub-chunks
// through the batched implementations; it is not safe concurrently with
// Decode/Repair calls.
func SetBatchLimits(decodeMax, repairMax int) (restore func()) {
	prevD, prevR := batchMaxSubChunk, batchRepairMaxSubChunk
	batchMaxSubChunk, batchRepairMaxSubChunk = decodeMax, repairMax
	return func() { batchMaxSubChunk, batchRepairMaxSubChunk = prevD, prevR }
}

// copySegs copies the listed scs-byte segments from src to dst, coalescing
// adjacent segment indices into single copies.
func copySegs(dst, src []byte, idx []int32, scs int) {
	for i := 0; i < len(idx); {
		j := i + 1
		for j < len(idx) && idx[j] == idx[j-1]+1 {
			j++
		}
		off, end := int(idx[i])*scs, (int(idx[j-1])+1)*scs
		copy(dst[off:end], src[off:end])
		i = j
	}
}

// solveBatch runs the plane MDS reconstruction across a batch of planes in
// one program invocation per lost node: sel(u) returns node u's full
// buffer, idx lists the plane indices to solve. full indicates idx covers
// every segment of the buffers contiguously, letting the solve run as a
// plain full-width Program.Run.
func (dec *planeSolver) solveBatch(srcs, dsts [][]byte, sel func(u int) []byte, idx []int32, scs int, full bool) {
	if len(dec.lost) == 0 {
		return
	}
	for si, sv := range dec.survivors {
		srcs[si] = sel(sv)
	}
	for li, l := range dec.lost {
		dsts[li] = sel(l)
	}
	dec.progOnce.Do(func() { dec.prog = kernel.Compile(dec.rows) })
	if full {
		dec.prog.Run(srcs, dsts, true)
		return
	}
	dec.prog.RunSegs(srcs, dsts, idx, scs, true)
}

// decodeGroupBatched computes U for every node across all planes of one
// intersection-score group. Within a group the transforms only read C
// (any plane) and U of strictly lower-score planes — when a companion node
// is erased, its companion plane's score is one lower — so running every
// transform of the group before every solve preserves the per-plane data
// dependencies exactly.
func (c *Clay) decodeGroupBatched(group []int32, erased []bool, C, U [][]byte, dec *planeSolver, scs int, srcs, dsts [][]byte) {
	full := len(group) == c.alpha
	var pairBuf [2][]byte
	var deltaBuf [2]int32
	pair, delta := pairBuf[:], deltaBuf[:]

	// Per-row plane buckets by digit value; full groups use the
	// precomputed whole-space lists.
	var bucket [][]int32
	var counts []int
	var slab []int32
	if !full {
		bucket = make([][]int32, c.q)
		counts = make([]int, c.q)
		slab = make([]int32, len(group))
	}
	for y := 0; y < c.t; y++ {
		if !full {
			clear(counts)
			pw := c.pow[c.t-1-y]
			for _, z := range group {
				counts[(int(z)/pw)%c.q]++
			}
			off := 0
			for x := 0; x < c.q; x++ {
				bucket[x] = slab[off : off : off+counts[x]]
				off += counts[x]
			}
			for _, z := range group {
				x := (int(z) / pw) % c.q
				bucket[x] = append(bucket[x], z)
			}
		}
		for x := 0; x < c.q; x++ {
			u := x + y*c.q
			if erased[u] {
				continue
			}
			for xp := 0; xp < c.q; xp++ {
				idx := c.digitPlanes[y*c.q+xp]
				if !full {
					idx = bucket[xp]
				}
				if len(idx) == 0 {
					continue
				}
				if xp == x {
					copySegs(U[u], C[u], idx, scs) // unpaired vertices
					continue
				}
				comp := xp + y*c.q
				delta[0], delta[1] = 0, int32((x-xp)*c.pow[c.t-1-y])
				pair[0] = C[u]
				if !erased[comp] {
					pair[1] = C[comp]
					c.pairRow.MulSegs(pair, U[u], idx, delta, scs)
				} else {
					pair[1] = U[comp]
					c.coupleRow.MulSegs(pair, U[u], idx, delta, scs)
				}
			}
		}
	}
	dec.solveBatch(srcs, dsts, func(u int) []byte { return U[u] }, group, scs, full)
}

// convertUCBatched is the batched form of the final U -> C conversion for
// erased nodes: every plane's U is known, so each (node, companion-column)
// pair converts in one segment batch over the whole plane space.
func (c *Clay) convertUCBatched(erased []bool, C, U [][]byte, scs int) {
	var pairBuf [2][]byte
	var deltaBuf [2]int32
	pair, delta := pairBuf[:], deltaBuf[:]
	for u := 0; u < c.nt; u++ {
		if !erased[u] {
			continue
		}
		x, y := c.nodeXY(u)
		for xp := 0; xp < c.q; xp++ {
			idx := c.digitPlanes[y*c.q+xp]
			if xp == x {
				copySegs(C[u], U[u], idx, scs)
				continue
			}
			comp := xp + y*c.q
			delta[0], delta[1] = 0, int32((x-xp)*c.pow[c.t-1-y])
			pair[0], pair[1] = U[u], U[comp]
			c.coupleRow.MulSegs(pair, C[u], idx, delta, scs)
		}
	}
}

// repairBatched is the batched single-failure repair. All coupled-symbol
// reads during single repair hit only the beta repair-plane sub-chunks, so
// every helper's repair planes are gathered into a compact contiguous
// buffer first (position = rank of the plane among the repair planes).
// Companion planes map to constant rank shifts in the compact space, the
// MDS solve and the companion-plane recovery become full-width contiguous
// kernel runs, and only the pairwise transforms remain strided. Scratch is
// a single slab owned by this call — nothing is shared with the code
// registry, so concurrent repairs on a shared instance stay independent.
func (c *Clay) repairBatched(shards [][]byte, failedExt int, scs int, out []byte) error {
	u0 := c.internalIndex(failedExt)
	x0, y0 := c.nodeXY(u0)
	bb := c.beta * scs

	// The repair planes (digit y0 == x0) form pow[y0] runs of
	// pow[t-1-y0] consecutive planes, runStride apart.
	runLen := c.pow[c.t-1-y0]
	runStride := c.pow[c.t-y0]
	nRuns := c.pow[y0]
	first := x0 * runLen

	erased := make([]bool, c.nt)
	for x := 0; x < c.q; x++ {
		erased[x+y0*c.q] = true // whole column y0 unknown in U-space
	}
	dec, err := c.planeDecoder(erased)
	if err != nil {
		return err
	}

	// One slab: compact C for every real helper, compact U for every node,
	// plus the two step-4 scratch buffers.
	nReal := 0
	for u := 0; u < c.nt; u++ {
		if ext := c.externalIndex(u); ext != -1 && ext != failedExt {
			nReal++
		}
	}
	slab := make([]byte, (nReal+c.nt+2)*bb)
	off := 0
	take := func() []byte { b := slab[off : off+bb]; off += bb; return b }
	zero := make([]byte, bb)

	Ccomp := make([][]byte, c.nt)
	uComp := make([][]byte, c.nt)
	for u := 0; u < c.nt; u++ {
		ext := c.externalIndex(u)
		switch {
		case ext == -1:
			Ccomp[u] = zero
		case ext == failedExt:
			// The failed node's C is never read.
		default:
			b := take()
			p := 0
			for a := 0; a < nRuns; a++ {
				z := a*runStride + first
				n := runLen * scs
				copy(b[p*scs:p*scs+n], shards[ext][z*scs:z*scs+n])
				p += runLen
			}
			Ccomp[u] = b
		}
		uComp[u] = take()
	}
	u2, cout := take(), take()

	// Compact-space digit geometry: rank p = Σ_{y != y0} digit(z,y)*red[y],
	// so companion plane zc = setDigit(z,y,x) sits at rank shift
	// (x - digit)*red[y], and the planes with digit(z,y) == x' form uniform
	// red[y]-long runs q*red[y] apart.
	red := make([]int, c.t)
	r := 1
	for y := c.t - 1; y >= 0; y-- {
		if y == y0 {
			continue
		}
		red[y] = r
		r *= c.q
	}
	idxRed := make([][]int32, c.t*c.q)
	islab := make([]int32, 0, (c.t-1)*c.beta)
	for y := 0; y < c.t; y++ {
		if y == y0 {
			continue
		}
		rl := red[y]
		for xp := 0; xp < c.q; xp++ {
			start := len(islab)
			for base := xp * rl; base < c.beta; base += c.q * rl {
				for i := 0; i < rl; i++ {
					islab = append(islab, int32(base+i))
				}
			}
			idxRed[y*c.q+xp] = islab[start:len(islab):len(islab)]
		}
	}

	var pairBuf [2][]byte
	var deltaBuf [2]int32
	pair, delta := pairBuf[:], deltaBuf[:]

	// Step 1: U for all nodes outside column y0, batched per
	// (node, companion-column) pair across every repair plane.
	for u := 0; u < c.nt; u++ {
		x, y := c.nodeXY(u)
		if y == y0 {
			continue
		}
		for xp := 0; xp < c.q; xp++ {
			idx := idxRed[y*c.q+xp]
			if xp == x {
				copySegs(uComp[u], Ccomp[u], idx, scs)
				continue
			}
			comp := xp + y*c.q
			delta[0], delta[1] = 0, int32((x-xp)*red[y])
			pair[0], pair[1] = Ccomp[u], Ccomp[comp]
			c.pairRow.MulSegs(pair, uComp[u], idx, delta, scs)
		}
	}

	// Step 2: MDS-solve the q unknowns of column y0, all repair planes in
	// one contiguous program run.
	srcs := make([][]byte, len(dec.survivors))
	dsts := make([][]byte, len(dec.lost))
	dec.solveBatch(srcs, dsts, func(u int) []byte { return uComp[u] }, nil, scs, true)

	// Step 3: the failed node's repair-plane sub-chunks are unpaired:
	// C = U. Scatter back to the full plane space.
	p := 0
	for a := 0; a < nRuns; a++ {
		z := a*runStride + first
		n := runLen * scs
		copy(out[z*scs:z*scs+n], uComp[u0][p*scs:p*scs+n])
		p += runLen
	}

	// Step 4: recover the failed node's sub-chunks in the companion planes
	// via the coupling relations with the column-y0 survivors — two
	// full-width contiguous transforms per survivor, then a run scatter to
	// the shifted companion planes w = setDigit(z, y0, x).
	for x := 0; x < c.q; x++ {
		if x == x0 {
			continue
		}
		us := x + y0*c.q
		pair[0], pair[1] = Ccomp[us], uComp[us]
		c.uncoupleRow.Mul(pair, u2) // U2 = (C(x,y0) - U(x,y0)) / gamma
		pair[0], pair[1] = u2, uComp[us]
		c.coupleRow.Mul(pair, cout) // C(x0,y0,w) = U2 + gamma * U(x,y0)
		shift := (x - x0) * runLen
		p := 0
		for a := 0; a < nRuns; a++ {
			w := a*runStride + first + shift
			n := runLen * scs
			copy(out[w*scs:w*scs+n], cout[p*scs:p*scs+n])
			p += runLen
		}
	}
	shards[failedExt] = out
	return nil
}

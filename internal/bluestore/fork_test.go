package bluestore

import (
	"bytes"
	"testing"

	"repro/internal/blockdev"
)

func newTestStore(t *testing.T) *Store {
	t.Helper()
	dev, err := blockdev.New("dev", 64<<20, 4096)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreForkRequiresFreeze(t *testing.T) {
	s := newTestStore(t)
	if _, err := s.Fork(s.Config()); err == nil {
		t.Fatal("Fork of unfrozen store should fail")
	}
	s.Freeze()
	f, err := s.Fork(s.Config())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Fork(f.Config()); err == nil {
		t.Fatal("Fork of a fork should fail")
	}
}

func TestStoreForkRejectsLayoutChange(t *testing.T) {
	s := newTestStore(t)
	s.Freeze()
	cfg := s.Config()
	cfg.MinAllocSize = 65536
	if _, err := s.Fork(cfg); err == nil {
		t.Fatal("Fork changing MinAllocSize should fail")
	}
	// Cache knobs are recovery-side and may change.
	cfg = s.Config()
	cfg.Cache = CacheKVOptimized
	cfg.CacheBytes = 1 << 30
	f, err := s.Fork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f.Config().Cache != CacheKVOptimized {
		t.Fatal("fork did not take new cache config")
	}
}

func TestFrozenStoreRejectsWrites(t *testing.T) {
	s := newTestStore(t)
	if err := s.WriteChunk("c1", 4096, 4096, nil); err != nil {
		t.Fatal(err)
	}
	s.Freeze()
	if err := s.WriteChunk("c2", 4096, 4096, nil); err == nil {
		t.Fatal("WriteChunk on frozen store should fail")
	}
	if err := s.DeleteChunk("c1"); err == nil {
		t.Fatal("DeleteChunk on frozen store should fail")
	}
	// Reads still work.
	if !s.HasChunk("c1") {
		t.Fatal("frozen store lost c1")
	}
	if _, _, err := s.ReadChunk("c1"); err != nil {
		t.Fatal(err)
	}
}

func TestStoreForkIsolationPayload(t *testing.T) {
	s := newTestStore(t)
	pay := bytes.Repeat([]byte{7}, 4096)
	if err := s.WriteChunk("obj.a", 4096, 4096, pay); err != nil {
		t.Fatal(err)
	}
	s.Freeze()
	f1, err := s.Fork(s.Config())
	if err != nil {
		t.Fatal(err)
	}
	f2, err := s.Fork(s.Config())
	if err != nil {
		t.Fatal(err)
	}

	// f1 rewrites the chunk with different bytes; f2 deletes it.
	pay2 := bytes.Repeat([]byte{9}, 4096)
	if err := f1.WriteChunk("obj.a", 4096, 4096, pay2); err != nil {
		t.Fatal(err)
	}
	if err := f2.DeleteChunk("obj.a"); err != nil {
		t.Fatal(err)
	}

	if _, got, err := s.ReadChunk("obj.a"); err != nil || !bytes.Equal(got, pay) {
		t.Fatalf("parent payload changed: %v", err)
	}
	if _, got, err := f1.ReadChunk("obj.a"); err != nil || !bytes.Equal(got, pay2) {
		t.Fatalf("f1 payload wrong: %v", err)
	}
	if f2.HasChunk("obj.a") {
		t.Fatal("f2 still sees deleted chunk")
	}
	if !s.HasChunk("obj.a") {
		t.Fatal("parent lost chunk after fork delete")
	}
}

func TestStoreForkAccountingMatchesFresh(t *testing.T) {
	// Populate two identical stores; freeze and fork one, then apply the
	// same recovery-style mutations to the fork and to the fresh store.
	// All externally observable accounting must stay bit-identical.
	populate := func(s *Store) {
		var chunks []BulkChunk
		for i := 0; i < 100; i++ {
			chunks = append(chunks, BulkChunk{
				Name:  "obj" + string(rune('a'+i%26)) + string(rune('0'+i/26)),
				Size:  16384,
				Share: 18204,
			})
		}
		if err := s.WriteChunksBulk(chunks); err != nil {
			t.Fatal(err)
		}
	}
	fresh := newTestStore(t)
	populate(fresh)

	parent := newTestStore(t)
	populate(parent)
	parent.Freeze()
	fork, err := parent.Fork(parent.Config())
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(s *Store) {
		// Recovery writes a reconstructed chunk and reads helpers.
		if err := s.WriteChunk("obja0", 16384, 18204, nil); err != nil {
			t.Fatal(err)
		}
		if err := s.ReadSubChunks("objb0", 2048); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.ReadChunk("objc0"); err != nil {
			t.Fatal(err)
		}
		s.SetDataWorkingSet(1 << 20)
	}
	mutate(fresh)
	mutate(fork)

	if fresh.Chunks() != fork.Chunks() {
		t.Fatalf("Chunks %d vs %d", fresh.Chunks(), fork.Chunks())
	}
	if fresh.DataBytes() != fork.DataBytes() {
		t.Fatalf("DataBytes %d vs %d", fresh.DataBytes(), fork.DataBytes())
	}
	if fresh.MetaBytes() != fork.MetaBytes() {
		t.Fatalf("MetaBytes %d vs %d", fresh.MetaBytes(), fork.MetaBytes())
	}
	if fresh.UsedBytes() != fork.UsedBytes() {
		t.Fatalf("UsedBytes %d vs %d", fresh.UsedBytes(), fork.UsedBytes())
	}
	fm, fk, fd := fresh.AccessProfile()
	gm, gk, gd := fork.AccessProfile()
	if fm != gm || fk != gk || fd != gd {
		t.Fatalf("AccessProfile (%v,%v,%v) vs (%v,%v,%v)", fm, fk, fd, gm, gk, gd)
	}
	if fresh.Device().Snapshot() != fork.Device().Snapshot() {
		t.Fatalf("device stats %+v vs %+v", fresh.Device().Snapshot(), fork.Device().Snapshot())
	}
	if fresh.KV().WALBytes() != fork.KV().WALBytes() {
		t.Fatalf("WAL %d vs %d", fresh.KV().WALBytes(), fork.KV().WALBytes())
	}
}

package bluestore

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/blockdev"
)

func newStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	dev, err := blockdev.New("nvme0n1", 1<<30, 4096)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPayloadRoundTrip(t *testing.T) {
	s := newStore(t, Config{})
	data := make([]byte, 10_000)
	rand.New(rand.NewSource(1)).Read(data)
	if err := s.WriteChunk("pg1/obj1/shard0", 10_000, 8_000, data); err != nil {
		t.Fatal(err)
	}
	size, got, err := s.ReadChunk("pg1/obj1/shard0")
	if err != nil {
		t.Fatal(err)
	}
	if size != 10_000 || !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestAccountingOnlyMode(t *testing.T) {
	s := newStore(t, Config{})
	if err := s.WriteChunk("c0", 1<<20, 1<<20, nil); err != nil {
		t.Fatal(err)
	}
	size, payload, err := s.ReadChunk("c0")
	if err != nil {
		t.Fatal(err)
	}
	if size != 1<<20 || payload != nil {
		t.Fatal("accounting-only read should return size and nil payload")
	}
	st := s.Device().Snapshot()
	if st.WriteBytes != 1<<20 || st.ReadBytes != 1<<20 {
		t.Fatalf("device counters: %+v", st)
	}
}

func TestMinAllocRounding(t *testing.T) {
	s := newStore(t, Config{MinAllocSize: 65536})
	if err := s.WriteChunk("c", 100, 100, nil); err != nil {
		t.Fatal(err)
	}
	if s.DataBytes() != 65536 {
		t.Fatalf("DataBytes = %d, want 65536", s.DataBytes())
	}
}

func TestUsedBytesGrowsWithMetadata(t *testing.T) {
	s := newStore(t, Config{ECMetaFraction: 0.25, KVSpaceAmp: 1})
	if err := s.WriteChunk("c", 1<<20, 1<<20, nil); err != nil {
		t.Fatal(err)
	}
	used := s.UsedBytes()
	if used <= 1<<20 {
		t.Fatalf("UsedBytes = %d, must exceed data bytes", used)
	}
	// EC metadata should be ~25% of the object share.
	if s.MetaBytes() < 1<<18 {
		t.Fatalf("MetaBytes = %d, want >= %d", s.MetaBytes(), 1<<18)
	}
}

func TestDeleteChunkReleasesEverything(t *testing.T) {
	s := newStore(t, Config{ECMetaFraction: 0.26})
	if err := s.WriteChunk("c", 4096, 4096, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteChunk("c"); err != nil {
		t.Fatal(err)
	}
	if s.DataBytes() != 0 {
		t.Fatalf("DataBytes = %d after delete", s.DataBytes())
	}
	if s.Chunks() != 0 {
		t.Fatal("chunk still listed")
	}
	if s.MetaBytes() != 0 {
		t.Fatalf("MetaBytes = %d after delete", s.MetaBytes())
	}
	if err := s.DeleteChunk("c"); !errors.Is(err, ErrNoSuchChunk) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestOverwriteReplaces(t *testing.T) {
	s := newStore(t, Config{})
	_ = s.WriteChunk("c", 8192, 8192, nil)
	_ = s.WriteChunk("c", 4096, 4096, nil)
	if s.DataBytes() != 4096 {
		t.Fatalf("DataBytes = %d after overwrite", s.DataBytes())
	}
	if s.Chunks() != 1 {
		t.Fatal("chunk count wrong")
	}
}

func TestReadMissingChunk(t *testing.T) {
	s := newStore(t, Config{})
	if _, _, err := s.ReadChunk("nope"); !errors.Is(err, ErrNoSuchChunk) {
		t.Fatalf("got %v", err)
	}
	if err := s.ReadSubChunks("nope", 10); !errors.Is(err, ErrNoSuchChunk) {
		t.Fatalf("got %v", err)
	}
}

func TestReadSubChunksAccounts(t *testing.T) {
	s := newStore(t, Config{})
	_ = s.WriteChunk("c", 81*100, 81*100, nil)
	if err := s.ReadSubChunks("c", 27*100); err != nil {
		t.Fatal(err)
	}
	if s.Device().Snapshot().ReadBytes != 27*100 {
		t.Fatal("sub-chunk read not accounted")
	}
}

func TestWriteFailsOnRemovedDevice(t *testing.T) {
	s := newStore(t, Config{})
	s.Device().Remove()
	if err := s.WriteChunk("c", 100, 100, nil); err == nil {
		t.Fatal("write to removed device succeeded")
	}
}

func TestCacheProfileSchemes(t *testing.T) {
	mk := func(cache CacheConfig) *Store {
		s := newStore(t, Config{CacheBytes: 1 << 20, Cache: cache, ECMetaFraction: 0.26})
		// Populate: KV-need ends up well above 1 MiB so ratios matter.
		for i := 0; i < 50; i++ {
			_ = s.WriteChunk(string(rune('a'+i%26))+string(rune('0'+i/26)), 1<<20, 1<<20, nil)
		}
		s.SetDataWorkingSet(8 << 20)
		return s
	}
	kvOpt := mk(CacheKVOptimized)
	dataOpt := mk(CacheDataOptimized)
	auto := mk(CacheAutotune)

	_, kvHitA, dataHitA := kvOpt.AccessProfile()
	_, kvHitB, dataHitB := dataOpt.AccessProfile()
	metaHitC, kvHitC, dataHitC := auto.AccessProfile()

	if kvHitA <= kvHitB {
		t.Fatalf("kv-optimized should have higher kv hits: %f vs %f", kvHitA, kvHitB)
	}
	if dataHitB <= dataHitA {
		t.Fatalf("data-optimized should have higher data hits: %f vs %f", dataHitB, dataHitA)
	}
	for _, h := range []float64{metaHitC, kvHitC, dataHitC} {
		if h < 0 || h > 1 {
			t.Fatalf("hit fraction out of range: %f", h)
		}
	}
}

func TestAutotuneWaterFillsSmallNeeds(t *testing.T) {
	s := newStore(t, Config{CacheBytes: 1 << 30, Cache: CacheAutotune})
	_ = s.WriteChunk("c", 4096, 4096, nil)
	s.SetDataWorkingSet(1 << 20)
	metaHit, kvHit, dataHit := s.AccessProfile()
	// Cache far exceeds all needs: everything should hit.
	if metaHit != 1 || kvHit != 1 || dataHit != 1 {
		t.Fatalf("hits = %f %f %f, want all 1", metaHit, kvHit, dataHit)
	}
}

func TestDeviceFull(t *testing.T) {
	dev, _ := blockdev.New("d", 1<<20, 4096)
	s, _ := Open(dev, Config{})
	big := make([]byte, 1<<20)
	if err := s.WriteChunk("a", 1<<20, 1<<20, big); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteChunk("b", 1<<20, 1<<20, big); err == nil {
		t.Fatal("second write should exceed capacity")
	}
}

func TestWAExampleMatchesFormulaPlusMeta(t *testing.T) {
	// A 64 MiB object under RS(12,9) with 4 MiB stripe unit: each chunk is
	// padded to 8 MiB; usage must be n*chunk + meta.
	s := newStore(t, Config{ECMetaFraction: 0.26, KVSpaceAmp: 1, MinAllocSize: 4096})
	object := int64(64 << 20)
	n := int64(12)
	chunk := int64(8 << 20)
	for i := int64(0); i < n; i++ {
		name := string(rune('a' + i))
		if err := s.WriteChunk(name, chunk, object/n, nil); err != nil {
			t.Fatal(err)
		}
	}
	if s.DataBytes() != n*chunk {
		t.Fatalf("DataBytes = %d, want %d", s.DataBytes(), n*chunk)
	}
	wa := float64(s.UsedBytes()) / float64(object)
	if wa < 1.70 || wa > 1.85 {
		t.Fatalf("WA = %.3f, want ~1.76 (Table 3 calibration)", wa)
	}
}

func TestOpenValidation(t *testing.T) {
	dev, _ := blockdev.New("d", 4096, 4096)
	if _, err := Open(dev, Config{ECMetaFraction: -1}); err == nil {
		t.Fatal("negative ECMetaFraction accepted")
	}
}

func TestPayloadSizeMismatch(t *testing.T) {
	s := newStore(t, Config{})
	if err := s.WriteChunk("c", 100, 100, make([]byte, 50)); err == nil {
		t.Fatal("payload/size mismatch accepted")
	}
}

func TestCorruptAndScrubChunk(t *testing.T) {
	s := newStore(t, Config{})
	data := make([]byte, 8192)
	for i := range data {
		data[i] = byte(i)
	}
	if err := s.WriteChunk("c", 8192, 8192, data); err != nil {
		t.Fatal(err)
	}
	ok, err := s.ScrubChunk("c")
	if err != nil || !ok {
		t.Fatalf("clean chunk scrub: ok=%v err=%v", ok, err)
	}
	if err := s.CorruptChunk("c"); err != nil {
		t.Fatal(err)
	}
	ok, err = s.ScrubChunk("c")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("corrupted chunk passed scrub")
	}
	// Rewriting the chunk clears the corruption.
	if err := s.WriteChunk("c", 8192, 8192, data); err != nil {
		t.Fatal(err)
	}
	if ok, _ = s.ScrubChunk("c"); !ok {
		t.Fatal("rewritten chunk still dirty")
	}
	// Accounting-mode chunks use the marker path.
	if err := s.WriteChunk("acc", 4096, 4096, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.CorruptChunk("acc"); err != nil {
		t.Fatal(err)
	}
	if ok, _ = s.ScrubChunk("acc"); ok {
		t.Fatal("accounting corruption not detected")
	}
	// Unknown chunks error.
	if err := s.CorruptChunk("nope"); err == nil {
		t.Fatal("corrupting missing chunk accepted")
	}
	if _, err := s.ScrubChunk("nope"); err == nil {
		t.Fatal("scrubbing missing chunk accepted")
	}
}

func TestAccessors(t *testing.T) {
	s := newStore(t, Config{MinAllocSize: 8192})
	if s.Config().MinAllocSize != 8192 {
		t.Fatal("Config not reflecting options")
	}
	if s.KV() == nil {
		t.Fatal("KV accessor nil")
	}
	if s.HasChunk("x") {
		t.Fatal("phantom chunk")
	}
	if err := s.WriteChunk("x", 100, 100, nil); err != nil {
		t.Fatal(err)
	}
	if !s.HasChunk("x") {
		t.Fatal("chunk missing")
	}
	size, err := s.ChunkSize("x")
	if err != nil || size != 100 {
		t.Fatalf("ChunkSize = %d, %v", size, err)
	}
	if _, err := s.ChunkSize("y"); err == nil {
		t.Fatal("missing chunk size accepted")
	}
}

// Package bluestore models the Ceph BlueStore object store closely enough
// to reproduce the paper's two backend-sensitive results: the effect of the
// KV/metadata/data cache ratios on recovery time (Fig. 2a) and OSD-level
// write amplification (Table 3, §4.4).
//
// Each OSD owns one Store sitting on a virtual block device plus an
// embedded key-value store (the RocksDB stand-in). Chunk writes allocate
// min_alloc-rounded space, record onode/extent/checksum metadata in the KV
// store, and account the EC-related metadata whose aggregate size the
// paper observes but does not decompose (see Config.ECMetaFraction).
package bluestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"repro/internal/blockdev"
	"repro/internal/kvstore"
)

// ErrNoSuchChunk is returned when reading or deleting an unknown chunk.
var ErrNoSuchChunk = errors.New("bluestore: no such chunk")

// CacheConfig is the BlueStore cache split of Table 2. Ratios should sum
// to 1; they are normalized defensively.
type CacheConfig struct {
	KVRatio   float64
	MetaRatio float64
	DataRatio float64
	Autotune  bool
}

// Named cache schemes from Table 2 of the paper.
var (
	CacheKVOptimized   = CacheConfig{KVRatio: 0.70, MetaRatio: 0.20, DataRatio: 0.10}
	CacheDataOptimized = CacheConfig{KVRatio: 0.20, MetaRatio: 0.20, DataRatio: 0.60}
	CacheAutotune      = CacheConfig{KVRatio: 0.45, MetaRatio: 0.45, DataRatio: 0.10, Autotune: true}
)

// Config parameterizes the store. Zero values take defaults.
type Config struct {
	// MinAllocSize is the allocation granularity (bluestore_min_alloc_size).
	MinAllocSize int64
	// BlobSize caps a single blob; one extent-map entry is recorded per
	// blob of a chunk write.
	BlobSize int64
	// CsumChunkSize is the checksum granularity; CsumEntryBytes are stored
	// per checksum chunk.
	CsumChunkSize  int64
	CsumEntryBytes int64
	// OnodeBytes is the serialized onode record size per chunk object.
	OnodeBytes int64
	// ExtentEntryBytes is the extent-map entry size per blob.
	ExtentEntryBytes int64
	// ECMetaFraction models the EC-related metadata the paper's S_meta
	// term aggregates (hash_info attributes, PG-log dup entries, LSM
	// overhead attributable to the object). It is charged as a fraction
	// of the chunk's logical share of the object and calibrated once
	// against Table 3 (see EXPERIMENTS.md).
	ECMetaFraction float64
	// KVSpaceAmp is the RocksDB space-amplification factor.
	KVSpaceAmp float64
	// CacheBytes is the total cache available to the three pools.
	CacheBytes int64
	Cache      CacheConfig
}

// DefaultConfig mirrors a Quincy-era SSD OSD.
func DefaultConfig() Config {
	return Config{
		MinAllocSize:     4096,
		BlobSize:         512 << 10,
		CsumChunkSize:    4096,
		CsumEntryBytes:   4,
		OnodeBytes:       520,
		ExtentEntryBytes: 48,
		ECMetaFraction:   0.26,
		KVSpaceAmp:       1.35,
		CacheBytes:       3 << 30,
		Cache:            CacheAutotune,
	}
}

type chunkInfo struct {
	size      int64
	allocated int64
	share     int64 // logical object share used for EC metadata accounting
	hasData   bool
	checksum  uint32 // crc32 of the payload at write time (payload mode)
	corrupted bool   // accounting-mode corruption marker
}

// Store is one OSD's object store.
type Store struct {
	mu  sync.Mutex
	cfg Config
	dev *blockdev.Device
	kv  *kvstore.DB

	chunks map[string]chunkInfo

	// Copy-on-write fork state: base is the frozen parent's chunks map
	// (shared, read-only), baseDeleted tombstones base names deleted or
	// shadowed by this fork. Invariant: chunks ∩ base ⊆ baseDeleted.
	// Nil base means a root store.
	base        map[string]chunkInfo
	baseDeleted map[string]bool
	frozen      bool

	// bulk holds accounting-mode chunks ingested through WriteChunksBulk
	// whose byte/metadata accounting is already applied but whose map
	// entries are deferred: synthetic bulk loads write millions of chunks
	// that are usually never looked up by name again, so the hash-map
	// cost is paid lazily, per store, on the first name lookup.
	bulk []bulkEntry

	dataAllocated int64
	nextOffset    int64 // bump allocator for payload placement

	// accountedMeta tracks extent-map and checksum record bytes, which are
	// accounted rather than materialized to keep large synthetic workloads
	// cheap.
	accountedMeta int64
	// ecMetaBytes is the accounted EC metadata (see Config.ECMetaFraction).
	ecMetaBytes int64

	dataWorkingSet int64 // set by the experiment runner; see SetDataWorkingSet
}

// normalizeConfig applies the zero-value defaults Open documents.
func normalizeConfig(cfg Config) (Config, error) {
	def := DefaultConfig()
	if cfg.MinAllocSize <= 0 {
		cfg.MinAllocSize = def.MinAllocSize
	}
	if cfg.BlobSize <= 0 {
		cfg.BlobSize = def.BlobSize
	}
	if cfg.CsumChunkSize <= 0 {
		cfg.CsumChunkSize = def.CsumChunkSize
	}
	if cfg.CsumEntryBytes <= 0 {
		cfg.CsumEntryBytes = def.CsumEntryBytes
	}
	if cfg.OnodeBytes <= 0 {
		cfg.OnodeBytes = def.OnodeBytes
	}
	if cfg.ExtentEntryBytes <= 0 {
		cfg.ExtentEntryBytes = def.ExtentEntryBytes
	}
	if cfg.KVSpaceAmp <= 0 {
		cfg.KVSpaceAmp = def.KVSpaceAmp
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = def.CacheBytes
	}
	if cfg.Cache == (CacheConfig{}) {
		cfg.Cache = def.Cache
	}
	if cfg.ECMetaFraction < 0 {
		return cfg, fmt.Errorf("bluestore: negative ECMetaFraction")
	}
	return cfg, nil
}

// Open creates a store over a device.
func Open(dev *blockdev.Device, cfg Config) (*Store, error) {
	cfg, err := normalizeConfig(cfg)
	if err != nil {
		return nil, err
	}
	return &Store{
		cfg:    cfg,
		dev:    dev,
		kv:     kvstore.Open(cfg.KVSpaceAmp),
		chunks: map[string]chunkInfo{},
	}, nil
}

// Config returns the effective configuration.
func (s *Store) Config() Config { return s.cfg }

func roundUp(v, to int64) int64 { return (v + to - 1) / to * to }

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// lookupLocked resolves a chunk through the overlay, then the
// untombstoned base. Callers must hold s.mu and have materialized bulk
// entries if they care about them.
func (s *Store) lookupLocked(name string) (chunkInfo, bool) {
	if info, ok := s.chunks[name]; ok {
		return info, true
	}
	if s.base != nil && !s.baseDeleted[name] {
		if info, ok := s.base[name]; ok {
			return info, true
		}
	}
	return chunkInfo{}, false
}

// setLocked writes a chunk record into the overlay, tombstoning any
// base entry of the same name. Callers must hold s.mu.
func (s *Store) setLocked(name string, info chunkInfo) {
	s.chunks[name] = info
	if s.base != nil {
		if _, ok := s.base[name]; ok {
			if s.baseDeleted == nil {
				s.baseDeleted = map[string]bool{}
			}
			s.baseDeleted[name] = true
		}
	}
}

// chunkCountLocked is the number of visible chunks, deferred bulk
// entries included. Callers must hold s.mu.
func (s *Store) chunkCountLocked() int {
	n := len(s.chunks) + len(s.bulk)
	if s.base != nil {
		n += len(s.base) - len(s.baseDeleted)
	}
	return n
}

func (s *Store) mutableLocked(op string) error {
	if s.frozen {
		return fmt.Errorf("bluestore: %s on frozen store (snapshot parent)", op)
	}
	return nil
}

// WriteChunk stores an EC chunk. size is the padded chunk size on disk;
// objectShare is the chunk's logical share of the client object
// (S_object / n), which drives EC metadata accounting; payload, if
// non-nil, carries real bytes (len(payload) must equal size), otherwise
// the write is accounting-only.
func (s *Store) WriteChunk(name string, size, objectShare int64, payload []byte) error {
	if size < 0 || objectShare < 0 {
		return fmt.Errorf("bluestore: negative sizes")
	}
	if payload != nil && int64(len(payload)) != size {
		return fmt.Errorf("bluestore: payload length %d != size %d", len(payload), size)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.mutableLocked("WriteChunk"); err != nil {
		return err
	}
	s.materializeBulkLocked()
	if old, ok := s.lookupLocked(name); ok {
		s.dropLocked(name, old)
	}
	info := chunkInfo{size: size, share: objectShare}
	info.allocated = roundUp(size, s.cfg.MinAllocSize)

	var off int64
	if payload != nil {
		info.checksum = crc32.ChecksumIEEE(payload)
		off = s.nextOffset
		if off+info.allocated > s.dev.Capacity() {
			return fmt.Errorf("bluestore: device full (%d + %d > %d)", off, info.allocated, s.dev.Capacity())
		}
		if _, err := s.dev.WriteAt(payload, off); err != nil {
			return fmt.Errorf("bluestore: %w", err)
		}
		s.nextOffset = off + info.allocated
		info.hasData = true
	} else {
		if err := s.dev.AccountWrite(size); err != nil {
			return fmt.Errorf("bluestore: %w", err)
		}
	}
	s.dataAllocated += info.allocated

	if info.hasData {
		// Onode record: placement offset + sizes, padded to the modeled
		// onode size. Only payload-mode chunks ever read it back.
		onode := make([]byte, s.cfg.OnodeBytes)
		binary.BigEndian.PutUint64(onode[0:8], uint64(off))
		binary.BigEndian.PutUint64(onode[8:16], uint64(size))
		binary.BigEndian.PutUint64(onode[16:24], uint64(objectShare))
		onode[24] = 1
		s.kv.Put("o/"+name, onode)
	} else {
		// Accounting-mode chunks account the identical KV entry without
		// materializing the key or the onode bytes (the synthetic-workload
		// hot path: millions of onodes nobody reads).
		s.kv.PutAccounted(len("o/")+len(name), int(s.cfg.OnodeBytes))
	}

	s.accountedMeta += s.metaRecordBytes(size)
	s.ecMetaBytes += int64(s.cfg.ECMetaFraction * float64(objectShare))
	s.setLocked(name, info)
	return nil
}

// BulkChunk is one accounting-mode chunk of a bulk ingest.
type BulkChunk struct {
	Name  string
	Size  int64 // padded chunk size on disk
	Share int64 // logical object share (S_object / n)
}

type bulkEntry struct {
	name string
	info chunkInfo
}

// WriteChunksBulk ingests accounting-mode chunks in one locked pass:
// byte-for-byte the same device, KV and metadata accounting as calling
// WriteChunk(name, size, share, nil) per chunk, but with one device and
// one KV accounting call for the whole batch, and the per-name map
// entries deferred until some lookup actually needs them. Names must be
// new — bulk ingest targets a freshly created pool.
func (s *Store) WriteChunksBulk(chunks []BulkChunk) error {
	var devBytes, keyBytes, allocSum, metaSum, ecSum int64
	for i := range chunks {
		ch := &chunks[i]
		if ch.Size < 0 || ch.Share < 0 {
			return fmt.Errorf("bluestore: negative sizes")
		}
		devBytes += ch.Size
		keyBytes += int64(len("o/") + len(ch.Name))
		allocSum += roundUp(ch.Size, s.cfg.MinAllocSize)
		metaSum += s.metaRecordBytes(ch.Size)
		ecSum += int64(s.cfg.ECMetaFraction * float64(ch.Share))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.mutableLocked("WriteChunksBulk"); err != nil {
		return err
	}
	if err := s.dev.AccountWrites(devBytes, int64(len(chunks))); err != nil {
		return fmt.Errorf("bluestore: %w", err)
	}
	s.kv.PutAccountedN(keyBytes, int64(len(chunks))*s.cfg.OnodeBytes, int64(len(chunks)))
	s.dataAllocated += allocSum
	s.accountedMeta += metaSum
	s.ecMetaBytes += ecSum
	for _, ch := range chunks {
		s.bulk = append(s.bulk, bulkEntry{name: ch.Name, info: chunkInfo{
			size:      ch.Size,
			allocated: roundUp(ch.Size, s.cfg.MinAllocSize),
			share:     ch.Share,
		}})
	}
	return nil
}

// materializeBulkLocked moves deferred bulk entries into the chunks map.
// Every name-keyed code path calls it first, so the deferral is invisible
// to callers.
func (s *Store) materializeBulkLocked() {
	if len(s.bulk) == 0 {
		return
	}
	for _, e := range s.bulk {
		if old, ok := s.lookupLocked(e.name); ok {
			s.dropLocked(e.name, old)
		}
		s.setLocked(e.name, e.info)
	}
	s.bulk = nil
}

// metaRecordBytes is the extent-map plus checksum record size for a chunk.
func (s *Store) metaRecordBytes(size int64) int64 {
	extents := ceilDiv(size, s.cfg.BlobSize)
	csums := ceilDiv(size, s.cfg.CsumChunkSize)
	return extents*s.cfg.ExtentEntryBytes + csums*s.cfg.CsumEntryBytes
}

// ReadChunk returns the chunk size and, for payload-mode chunks, its
// bytes. Device read counters are bumped either way.
func (s *Store) ReadChunk(name string) (int64, []byte, error) {
	s.mu.Lock()
	s.materializeBulkLocked()
	info, ok := s.lookupLocked(name)
	if !ok {
		s.mu.Unlock()
		return 0, nil, fmt.Errorf("%w: %s", ErrNoSuchChunk, name)
	}
	var off int64
	if info.hasData {
		onode, ok := s.kv.Get("o/" + name)
		if !ok {
			s.mu.Unlock()
			return 0, nil, fmt.Errorf("%w: onode for %s", ErrNoSuchChunk, name)
		}
		off = int64(binary.BigEndian.Uint64(onode[0:8]))
	}
	size, hasData := info.size, info.hasData
	s.mu.Unlock()

	if hasData {
		buf := make([]byte, size)
		if _, err := s.dev.ReadAt(buf, off); err != nil {
			return 0, nil, fmt.Errorf("bluestore: %w", err)
		}
		return size, buf, nil
	}
	if err := s.dev.AccountRead(size); err != nil {
		return 0, nil, fmt.Errorf("bluestore: %w", err)
	}
	return size, nil, nil
}

// ReadSubChunks accounts a partial read of the chunk (count sub-chunk
// reads totalling bytes), used by Clay repair I/O accounting.
func (s *Store) ReadSubChunks(name string, bytes int64) error {
	s.mu.Lock()
	s.materializeBulkLocked()
	_, ok := s.lookupLocked(name)
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchChunk, name)
	}
	return s.dev.AccountRead(bytes)
}

// CorruptChunk simulates silent data corruption (bit rot) in a stored
// chunk: payload-mode chunks get their on-device bytes flipped, and
// accounting-mode chunks are marked corrupt. The stored checksum is left
// intact, so only a scrub can tell.
func (s *Store) CorruptChunk(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.mutableLocked("CorruptChunk"); err != nil {
		return err
	}
	s.materializeBulkLocked()
	info, ok := s.lookupLocked(name)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchChunk, name)
	}
	info.corrupted = true
	s.setLocked(name, info)
	if info.hasData {
		onode, ok := s.kv.Get("o/" + name)
		if !ok {
			return fmt.Errorf("%w: onode for %s", ErrNoSuchChunk, name)
		}
		off := int64(binary.BigEndian.Uint64(onode[0:8]))
		// Flip a byte somewhere in the middle of the chunk.
		pos := off + info.size/2
		buf := make([]byte, 1)
		if _, err := s.dev.ReadAt(buf, pos); err != nil {
			return err
		}
		buf[0] ^= 0xFF
		if _, err := s.dev.WriteAt(buf, pos); err != nil {
			return err
		}
	}
	return nil
}

// ScrubChunk deep-scrubs a chunk: payload-mode chunks are re-read and
// their crc32 compared against the write-time checksum; accounting-mode
// chunks report their corruption marker. It returns true when the chunk
// is consistent.
func (s *Store) ScrubChunk(name string) (bool, error) {
	s.mu.Lock()
	s.materializeBulkLocked()
	info, ok := s.lookupLocked(name)
	s.mu.Unlock()
	if !ok {
		return false, fmt.Errorf("%w: %s", ErrNoSuchChunk, name)
	}
	if !info.hasData {
		return !info.corrupted, nil
	}
	_, payload, err := s.ReadChunk(name)
	if err != nil {
		return false, err
	}
	return crc32.ChecksumIEEE(payload) == info.checksum, nil
}

// HasChunk reports whether the named chunk exists.
func (s *Store) HasChunk(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.materializeBulkLocked()
	_, ok := s.lookupLocked(name)
	return ok
}

// ChunkSize returns the stored (padded) size of a chunk.
func (s *Store) ChunkSize(name string) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.materializeBulkLocked()
	info, ok := s.lookupLocked(name)
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoSuchChunk, name)
	}
	return info.size, nil
}

// DeleteChunk removes a chunk and its metadata.
func (s *Store) DeleteChunk(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.mutableLocked("DeleteChunk"); err != nil {
		return err
	}
	s.materializeBulkLocked()
	info, ok := s.lookupLocked(name)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchChunk, name)
	}
	s.dropLocked(name, info)
	return nil
}

func (s *Store) dropLocked(name string, info chunkInfo) {
	s.dataAllocated -= info.allocated
	s.accountedMeta -= s.metaRecordBytes(info.size)
	s.ecMetaBytes -= int64(s.cfg.ECMetaFraction * float64(info.share))
	if info.hasData {
		s.kv.Delete("o/" + name)
	} else {
		s.kv.DeleteAccounted(len("o/")+len(name), int(s.cfg.OnodeBytes))
	}
	delete(s.chunks, name)
	if s.base != nil {
		if _, ok := s.base[name]; ok {
			if s.baseDeleted == nil {
				s.baseDeleted = map[string]bool{}
			}
			s.baseDeleted[name] = true
		}
	}
}

// Chunks returns the number of stored chunks.
func (s *Store) Chunks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.chunkCountLocked()
}

// DataBytes is the allocated payload space (min_alloc rounded).
func (s *Store) DataBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dataAllocated
}

// MetaBytes is the KV footprint plus the accounted extent/checksum
// records (both LSM-resident, so space-amplified) plus the EC metadata
// aggregate, which is calibrated directly against Table 3 and therefore
// not amplified again.
func (s *Store) MetaBytes() int64 {
	s.mu.Lock()
	acc := s.accountedMeta
	ec := s.ecMetaBytes
	s.mu.Unlock()
	return s.kv.Footprint() + int64(s.cfg.KVSpaceAmp*float64(acc)) + ec
}

// UsedBytes is the OSD-level storage usage the paper measures for its
// Actual WA Factor: data allocation plus metadata footprint.
func (s *Store) UsedBytes() int64 {
	return s.DataBytes() + s.MetaBytes()
}

// SetDataWorkingSet tells the cache model how much data is hot (e.g. the
// bytes a recovery will read on this OSD).
func (s *Store) SetDataWorkingSet(bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frozen {
		panic("bluestore: SetDataWorkingSet on frozen store")
	}
	s.dataWorkingSet = bytes
}

// Freeze materializes any deferred bulk entries, then makes the store
// and its device and KV store immutable so they can serve as shared
// copy-on-write bases for Fork. Idempotent.
func (s *Store) Freeze() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.materializeBulkLocked()
	s.frozen = true
	s.kv.Freeze()
	s.dev.Freeze()
}

// Fork returns a writable copy-on-write child of a frozen store. cfg may
// change only recovery-side knobs (cache scheme and size); every field
// that shaped the on-disk layout during populate must match the parent,
// because the child shares the parent's chunk map, device blocks and KV
// entries and starts from a copy of its accounting. Only single-level
// forking is supported.
func (s *Store) Fork(cfg Config) (*Store, error) {
	cfg, err := normalizeConfig(cfg)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.frozen {
		return nil, errors.New("bluestore: Fork of unfrozen store")
	}
	if s.base != nil {
		return nil, errors.New("bluestore: Fork of forked store")
	}
	layout := func(c Config) Config {
		c.Cache = CacheConfig{}
		c.CacheBytes = 0
		return c
	}
	if layout(cfg) != layout(s.cfg) {
		return nil, fmt.Errorf("bluestore: Fork config changes layout-relevant fields (%+v vs %+v)", layout(cfg), layout(s.cfg))
	}
	dev, err := s.dev.Fork()
	if err != nil {
		return nil, err
	}
	kv, err := s.kv.Fork()
	if err != nil {
		return nil, err
	}
	return &Store{
		cfg:            cfg,
		dev:            dev,
		kv:             kv,
		chunks:         map[string]chunkInfo{},
		base:           s.chunks,
		dataAllocated:  s.dataAllocated,
		nextOffset:     s.nextOffset,
		accountedMeta:  s.accountedMeta,
		ecMetaBytes:    s.ecMetaBytes,
		dataWorkingSet: s.dataWorkingSet,
	}, nil
}

// AccessProfile returns the modeled cache hit fractions for onode/meta
// lookups, KV reads, and data reads, under the configured cache scheme.
// Autotune performs a water-filling allocation across the three pools in
// proportion to their demand, which is what BlueStore's cache autotuner
// converges to.
func (s *Store) AccessProfile() (metaHit, kvHit, dataHit float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	kvNeed := float64(s.kv.Footprint()) + s.cfg.KVSpaceAmp*float64(s.accountedMeta) + float64(s.ecMetaBytes)
	metaNeed := float64(int64(s.chunkCountLocked()) * s.cfg.OnodeBytes)
	dataNeed := float64(s.dataWorkingSet)
	total := float64(s.cfg.CacheBytes)

	var kvCache, metaCache, dataCache float64
	if s.cfg.Cache.Autotune {
		kvCache, metaCache, dataCache = waterFill(total, kvNeed, metaNeed, dataNeed)
	} else {
		rk, rm, rd := s.cfg.Cache.KVRatio, s.cfg.Cache.MetaRatio, s.cfg.Cache.DataRatio
		sum := rk + rm + rd
		if sum <= 0 {
			sum, rk, rm, rd = 1, 1.0/3, 1.0/3, 1.0/3
		}
		kvCache = total * rk / sum
		metaCache = total * rm / sum
		dataCache = total * rd / sum
	}
	hit := func(cache, need float64) float64 {
		if need <= 0 {
			return 1
		}
		f := cache / need
		if f > 1 {
			return 1
		}
		return f
	}
	return hit(metaCache, metaNeed), hit(kvCache, kvNeed), hit(dataCache, dataNeed)
}

// waterFill splits cache across pools proportionally to demand, never
// granting a pool more than it needs, and redistributing the surplus.
func waterFill(total float64, needs ...float64) (a, b, c float64) {
	grant := make([]float64, len(needs))
	remainingNeeds := append([]float64(nil), needs...)
	remaining := total
	for iter := 0; iter < 4; iter++ {
		sum := 0.0
		for _, n := range remainingNeeds {
			sum += n
		}
		if sum <= 0 || remaining <= 0 {
			break
		}
		for i, n := range remainingNeeds {
			if n <= 0 {
				continue
			}
			share := remaining * n / sum
			if share > n {
				share = n
			}
			grant[i] += share
			remainingNeeds[i] -= share
		}
		granted := 0.0
		for i := range grant {
			granted += grant[i]
		}
		remaining = total - granted
	}
	return grant[0], grant[1], grant[2]
}

// KV exposes the embedded KV store (for tests and the logger).
func (s *Store) KV() *kvstore.DB { return s.kv }

// Device exposes the backing device.
func (s *Store) Device() *blockdev.Device { return s.dev }

// Package crush implements a CRUSH-style deterministic placement function:
// straw2 bucket selection over a root/rack/host/osd hierarchy with
// failure-domain constraints. Placement groups map to ordered sets of OSDs
// without any central lookup table, exactly the property the cluster
// simulator needs to distribute EC chunks the way Ceph does.
package crush

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Node types in the hierarchy.
const (
	TypeRoot = "root"
	TypeRack = "rack"
	TypeHost = "host"
	TypeOSD  = "osd"
)

// Errors.
var (
	ErrNotEnoughDomains = errors.New("crush: not enough failure domains for selection")
	ErrUnknownDomain    = errors.New("crush: unknown failure domain type")
)

// Node is one vertex of the CRUSH hierarchy.
type Node struct {
	Name     string
	Type     string
	Weight   float64
	Children []*Node
	OSDID    int // valid for TypeOSD
	out      bool
}

// Map is a CRUSH map: a tree rooted at a single root node.
type Map struct {
	Root   *Node
	osds   []*Node        // by OSD id
	hostOf map[int]string // osd id -> host name
	rackOf map[int]string // osd id -> rack name
	byName map[string]*Node
}

// Builder assembles a map.
type Builder struct {
	root   *Node
	byName map[string]*Node
	nextID int
}

// NewBuilder starts a map with an empty root.
func NewBuilder() *Builder {
	root := &Node{Name: "default", Type: TypeRoot}
	return &Builder{root: root, byName: map[string]*Node{"default": root}}
}

// AddRack adds a rack under the root.
func (b *Builder) AddRack(name string) error {
	return b.addBucket(name, TypeRack, b.root)
}

// AddHost adds a host under the given rack ("" for directly under root).
func (b *Builder) AddHost(name, rack string) error {
	parent := b.root
	if rack != "" {
		p, ok := b.byName[rack]
		if !ok || p.Type != TypeRack {
			return fmt.Errorf("crush: unknown rack %q", rack)
		}
		parent = p
	}
	return b.addBucket(name, TypeHost, parent)
}

func (b *Builder) addBucket(name, typ string, parent *Node) error {
	if _, dup := b.byName[name]; dup {
		return fmt.Errorf("crush: duplicate node %q", name)
	}
	n := &Node{Name: name, Type: typ}
	parent.Children = append(parent.Children, n)
	b.byName[name] = n
	return nil
}

// AddOSD adds an OSD with the given weight under a host, returning its id.
func (b *Builder) AddOSD(host string, weight float64) (int, error) {
	p, ok := b.byName[host]
	if !ok || p.Type != TypeHost {
		return 0, fmt.Errorf("crush: unknown host %q", host)
	}
	id := b.nextID
	b.nextID++
	n := &Node{Name: fmt.Sprintf("osd.%d", id), Type: TypeOSD, Weight: weight, OSDID: id}
	p.Children = append(p.Children, n)
	b.byName[n.Name] = n
	return id, nil
}

// Build finalizes the map, computing subtree weights.
func (b *Builder) Build() *Map {
	m := &Map{
		Root:   b.root,
		hostOf: map[int]string{},
		rackOf: map[int]string{},
		byName: b.byName,
	}
	var walk func(n *Node, host, rack string) float64
	walk = func(n *Node, host, rack string) float64 {
		switch n.Type {
		case TypeHost:
			host = n.Name
		case TypeRack:
			rack = n.Name
		case TypeOSD:
			for len(m.osds) <= n.OSDID {
				m.osds = append(m.osds, nil)
			}
			m.osds[n.OSDID] = n
			m.hostOf[n.OSDID] = host
			m.rackOf[n.OSDID] = rack
			return n.Weight
		}
		total := 0.0
		for _, c := range n.Children {
			total += walk(c, host, rack)
		}
		n.Weight = total
		return total
	}
	walk(b.root, "", "")
	return m
}

// NumOSDs returns the number of OSDs in the map.
func (m *Map) NumOSDs() int { return len(m.osds) }

// HostOf returns the host name of an OSD.
func (m *Map) HostOf(osd int) string { return m.hostOf[osd] }

// RackOf returns the rack name of an OSD ("" if none).
func (m *Map) RackOf(osd int) string { return m.rackOf[osd] }

// Hosts returns all host names, sorted.
func (m *Map) Hosts() []string {
	seen := map[string]bool{}
	var hosts []string
	for _, h := range m.hostOf {
		if !seen[h] {
			seen[h] = true
			hosts = append(hosts, h)
		}
	}
	sort.Strings(hosts)
	return hosts
}

// OSDsOnHost returns the OSD ids on a host, sorted.
func (m *Map) OSDsOnHost(host string) []int {
	var ids []int
	for id, h := range m.hostOf {
		if h == host {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// SetOut marks an OSD in or out of the map; out OSDs are skipped by
// Select, which is how the cluster recomputes placement after a failure.
func (m *Map) SetOut(osd int, out bool) {
	if osd >= 0 && osd < len(m.osds) && m.osds[osd] != nil {
		m.osds[osd].out = out
	}
}

// splitmix64 is the deterministic hash behind straw2 draws.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hash3(a, b, c uint64) uint64 {
	return splitmix64(splitmix64(splitmix64(a)^b) ^ c)
}

// strawDraw computes the straw2 "length" for an item: higher wins.
// Following straw2, draw = ln(u)/weight with u uniform in (0,1]; items
// with larger weight win proportionally more often.
func strawDraw(seed uint64, itemKey uint64, r int, weight float64) float64 {
	if weight <= 0 {
		return math.Inf(-1)
	}
	return math.Log(strawU(seed, itemKey, r)) / weight
}

// strawU is the uniform variate behind strawDraw. ln is strictly
// monotonic, so when every candidate has the same weight,
// argmax ln(u)/w == argmax u and Select can skip the (expensive) log —
// the chosen item is bit-identical either way.
func strawU(seed uint64, itemKey uint64, r int) float64 {
	h := hash3(seed, itemKey, uint64(r))
	return (float64(h>>11) + 1) / float64(1<<53) // (0, 1]
}

func nameKey(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Select maps a placement seed to n distinct OSDs with at most one OSD per
// failure domain ("osd", "host", or "rack"). It is deterministic in
// (seed, n, failureDomain) and skips out-marked OSDs.
func (m *Map) Select(seed uint64, n int, failureDomain string) ([]int, error) {
	switch failureDomain {
	case TypeOSD, TypeHost, TypeRack:
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownDomain, failureDomain)
	}
	type candidate struct {
		domainKey string
		osd       int
		itemKey   uint64
		weight    float64
	}
	// Enumerate live OSDs with their domain keys. Item keys and weights
	// are hoisted here so the draw loop below touches no maps.
	var cands []candidate
	uniform := true
	for id, node := range m.osds {
		if node == nil || node.out || node.Weight <= 0 {
			continue
		}
		var key string
		switch failureDomain {
		case TypeOSD:
			key = node.Name
		case TypeHost:
			key = m.hostOf[id]
		case TypeRack:
			key = m.rackOf[id]
			if key == "" {
				key = m.hostOf[id] // flat maps: host acts as rack
			}
		}
		if len(cands) > 0 && node.Weight != cands[0].weight {
			uniform = false
		}
		cands = append(cands, candidate{domainKey: key, osd: id, itemKey: nameKey(node.Name), weight: node.Weight})
	}
	chosen := make([]int, 0, n)
	for r := 0; len(chosen) < n; r++ {
		if r > 16*n+64 {
			return nil, fmt.Errorf("%w: placed %d of %d", ErrNotEnoughDomains, len(chosen), n)
		}
		best := -1
		bestDraw := math.Inf(-1)
		for i, c := range cands {
			var d float64
			if uniform {
				d = strawU(seed, c.itemKey, r)
			} else {
				d = strawDraw(seed, c.itemKey, r, c.weight)
			}
			if d > bestDraw {
				bestDraw = d
				best = i
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("%w: placed %d of %d", ErrNotEnoughDomains, len(chosen), n)
		}
		chosen = append(chosen, cands[best].osd)
		// Drop the winning domain's candidates in place: later rounds
		// could never pick them, exactly as the old used-domain skip.
		usedKey := cands[best].domainKey
		kept := cands[:0]
		for _, c := range cands {
			if c.domainKey != usedKey {
				kept = append(kept, c)
			}
		}
		cands = kept
	}
	return chosen, nil
}

package crush

import (
	"errors"
	"testing"
)

// buildCluster makes hosts x osdsPerHost OSDs of weight 1.
func buildCluster(t *testing.T, hosts, osdsPerHost int) *Map {
	t.Helper()
	b := NewBuilder()
	for h := 0; h < hosts; h++ {
		name := hostName(h)
		if err := b.AddHost(name, ""); err != nil {
			t.Fatal(err)
		}
		for d := 0; d < osdsPerHost; d++ {
			if _, err := b.AddOSD(name, 1.0); err != nil {
				t.Fatal(err)
			}
		}
	}
	return b.Build()
}

func hostName(h int) string { return "host" + string(rune('a'+h%26)) + string(rune('0'+h/26)) }

func TestBuildTopology(t *testing.T) {
	m := buildCluster(t, 5, 2)
	if m.NumOSDs() != 10 {
		t.Fatalf("NumOSDs = %d", m.NumOSDs())
	}
	if len(m.Hosts()) != 5 {
		t.Fatalf("Hosts = %v", m.Hosts())
	}
	if m.HostOf(0) != m.HostOf(1) {
		t.Fatal("osd 0 and 1 should share a host")
	}
	if m.HostOf(0) == m.HostOf(2) {
		t.Fatal("osd 0 and 2 should be on different hosts")
	}
	ids := m.OSDsOnHost(m.HostOf(0))
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Fatalf("OSDsOnHost = %v", ids)
	}
	if m.Root.Weight != 10 {
		t.Fatalf("root weight = %f", m.Root.Weight)
	}
}

func TestSelectDeterministic(t *testing.T) {
	m := buildCluster(t, 15, 2)
	a, err := m.Select(42, 12, TypeHost)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Select(42, 12, TypeHost)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("selection not deterministic")
		}
	}
}

func TestSelectDistinctDomains(t *testing.T) {
	m := buildCluster(t, 15, 2)
	for seed := uint64(0); seed < 200; seed++ {
		sel, err := m.Select(seed, 12, TypeHost)
		if err != nil {
			t.Fatal(err)
		}
		if len(sel) != 12 {
			t.Fatalf("len = %d", len(sel))
		}
		hosts := map[string]bool{}
		osds := map[int]bool{}
		for _, o := range sel {
			if osds[o] {
				t.Fatal("duplicate OSD selected")
			}
			osds[o] = true
			h := m.HostOf(o)
			if hosts[h] {
				t.Fatalf("seed %d: host %s selected twice", seed, h)
			}
			hosts[h] = true
		}
	}
}

func TestSelectOSDDomainAllowsSameHost(t *testing.T) {
	m := buildCluster(t, 4, 3) // 12 OSDs over 4 hosts
	sel, err := m.Select(7, 12, TypeOSD)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 12 {
		t.Fatalf("len = %d", len(sel))
	}
	// Must include multiple OSDs of the same host (only 4 hosts).
	seen := map[int]bool{}
	for _, o := range sel {
		if seen[o] {
			t.Fatal("duplicate OSD")
		}
		seen[o] = true
	}
}

func TestSelectInsufficientDomains(t *testing.T) {
	m := buildCluster(t, 5, 2)
	if _, err := m.Select(1, 6, TypeHost); !errors.Is(err, ErrNotEnoughDomains) {
		t.Fatalf("got %v", err)
	}
}

func TestSelectUnknownDomain(t *testing.T) {
	m := buildCluster(t, 3, 1)
	if _, err := m.Select(1, 2, "datacenter"); !errors.Is(err, ErrUnknownDomain) {
		t.Fatalf("got %v", err)
	}
}

func TestSetOutExcludesOSD(t *testing.T) {
	m := buildCluster(t, 15, 2)
	sel, _ := m.Select(9, 12, TypeHost)
	victim := sel[0]
	m.SetOut(victim, true)
	sel2, err := m.Select(9, 12, TypeHost)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range sel2 {
		if o == victim {
			t.Fatal("out OSD still selected")
		}
	}
	// Bring it back: mapping returns to the original.
	m.SetOut(victim, false)
	sel3, _ := m.Select(9, 12, TypeHost)
	for i := range sel {
		if sel[i] != sel3[i] {
			t.Fatal("mapping did not return after SetOut(false)")
		}
	}
}

func TestDistributionRoughlyUniform(t *testing.T) {
	m := buildCluster(t, 10, 2)
	counts := make([]int, m.NumOSDs())
	const pgs = 4000
	for seed := uint64(0); seed < pgs; seed++ {
		sel, err := m.Select(seed, 3, TypeHost)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range sel {
			counts[o]++
		}
	}
	mean := float64(pgs*3) / float64(m.NumOSDs())
	for id, c := range counts {
		if float64(c) < mean*0.7 || float64(c) > mean*1.3 {
			t.Fatalf("osd %d has %d placements, mean %.0f — distribution too skewed", id, c, mean)
		}
	}
}

func TestWeightBias(t *testing.T) {
	b := NewBuilder()
	_ = b.AddHost("h1", "")
	_ = b.AddHost("h2", "")
	heavy, _ := b.AddOSD("h1", 4.0)
	light, _ := b.AddOSD("h2", 1.0)
	m := b.Build()
	hc, lc := 0, 0
	for seed := uint64(0); seed < 2000; seed++ {
		sel, err := m.Select(seed, 1, TypeOSD)
		if err != nil {
			t.Fatal(err)
		}
		switch sel[0] {
		case heavy:
			hc++
		case light:
			lc++
		}
	}
	// Expect roughly 4:1; accept 2.5:1 as a loose bound.
	if float64(hc) < 2.5*float64(lc) {
		t.Fatalf("weight bias too weak: heavy=%d light=%d", hc, lc)
	}
}

func TestRacks(t *testing.T) {
	b := NewBuilder()
	_ = b.AddRack("r1")
	_ = b.AddRack("r2")
	_ = b.AddHost("h1", "r1")
	_ = b.AddHost("h2", "r1")
	_ = b.AddHost("h3", "r2")
	_ = b.AddHost("h4", "r2")
	for _, h := range []string{"h1", "h2", "h3", "h4"} {
		if _, err := b.AddOSD(h, 1); err != nil {
			t.Fatal(err)
		}
	}
	m := b.Build()
	if m.RackOf(0) != "r1" || m.RackOf(3) != "r2" {
		t.Fatal("rack mapping wrong")
	}
	for seed := uint64(0); seed < 50; seed++ {
		sel, err := m.Select(seed, 2, TypeRack)
		if err != nil {
			t.Fatal(err)
		}
		if m.RackOf(sel[0]) == m.RackOf(sel[1]) {
			t.Fatal("rack domain violated")
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	if err := b.AddHost("h", ""); err != nil {
		t.Fatal(err)
	}
	if err := b.AddHost("h", ""); err == nil {
		t.Fatal("duplicate host accepted")
	}
	if err := b.AddHost("x", "norack"); err == nil {
		t.Fatal("unknown rack accepted")
	}
	if _, err := b.AddOSD("nohost", 1); err == nil {
		t.Fatal("unknown host accepted")
	}
}

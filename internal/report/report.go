// Package report renders experiment results as the tables and bar series
// the paper presents, in plain text suitable for terminals and logs.
package report

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/logsys"
	"repro/internal/wamodel"
)

// Figure renders a Figure-2-style normalized bar table.
func Figure(fig *experiments.Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", fig.ID, fig.Title)
	fmt.Fprintf(&b, "(normalized recovery time; baseline %.1fs)\n", fig.Baseline.Seconds())

	codes := codeOrder(fig)
	w := 0
	for _, c := range fig.Cells {
		if len(c.Config) > w {
			w = len(c.Config)
		}
	}
	fmt.Fprintf(&b, "  %-*s", w, "config")
	for _, code := range codes {
		fmt.Fprintf(&b, "  %14s", code)
	}
	b.WriteString("\n")
	for _, c := range fig.Cells {
		fmt.Fprintf(&b, "  %-*s", w, c.Config)
		for _, code := range codes {
			fmt.Fprintf(&b, "  %14.2f", c.Values[code])
		}
		b.WriteString("\n")
	}
	return b.String()
}

func codeOrder(fig *experiments.Figure) []string {
	seen := map[string]bool{}
	var codes []string
	for _, c := range fig.Cells {
		for code := range c.Values {
			if !seen[code] {
				seen[code] = true
				codes = append(codes, code)
			}
		}
	}
	sort.Slice(codes, func(i, j int) bool {
		// RS before Clay, then lexical.
		ri, rj := strings.HasPrefix(codes[i], "RS"), strings.HasPrefix(codes[j], "RS")
		if ri != rj {
			return ri
		}
		return codes[i] < codes[j]
	})
	return codes
}

// FigureBars renders a figure as horizontal ASCII bars, one row per
// (config, code), scaled so the largest value spans barWidth cells.
func FigureBars(fig *experiments.Figure) string {
	const barWidth = 40
	codes := codeOrder(fig)
	maxV := 0.0
	labelW := 0
	for _, c := range fig.Cells {
		for _, code := range codes {
			if v := c.Values[code]; v > maxV {
				maxV = v
			}
			if l := len(c.Config) + len(code) + 1; l > labelW {
				labelW = l
			}
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", fig.ID, fig.Title)
	for _, c := range fig.Cells {
		for _, code := range codes {
			v := c.Values[code]
			n := int(v / maxV * barWidth)
			if n < 1 && v > 0 {
				n = 1
			}
			fmt.Fprintf(&b, "  %-*s %s %.2f\n", labelW, c.Config+" "+code, strings.Repeat("█", n), v)
		}
	}
	return b.String()
}

// Timeline renders the Figure 3 recovery anatomy.
func Timeline(tl *experiments.TimelineResult) string {
	var b strings.Builder
	b.WriteString("fig3 — Timeline of System Recovery\n")
	fmt.Fprintf(&b, "  failure detected      %8.0fs\n", 0.0)
	fmt.Fprintf(&b, "  EC recovery started   %8.0fs\n", tl.RecoveryStarted.Seconds())
	fmt.Fprintf(&b, "  EC recovery finished  %8.0fs\n", tl.RecoveryFinished.Seconds())
	fmt.Fprintf(&b, "  system checking period: %.1f%% of system recovery time\n", tl.CheckingFraction*100)
	fmt.Fprintf(&b, "  checking fraction across workload sizes: %.0f%% to %.0f%%\n",
		tl.FractionRange[0]*100, tl.FractionRange[1]*100)
	return b.String()
}

// TimelineEvents renders the first matching log line of each recovery
// phase, echoing the annotations of Figure 3.
func TimelineEvents(entries []logsys.Entry, origin time.Duration) string {
	wanted := []struct{ substr, label string }{
		{"failure detected", "failure detected"},
		{"receiving heartbeats", "MGR log: receiving heartbeats"},
		{"check recovery resource", "OSD log: check recovery resource"},
		{"collecting missing", "OSD log: collecting missing OSDs, queueing recovery"},
		{"start recovery I/O", "OSD log: start recovery I/O"},
		{"report recovery I/O", "MGR log: report recovery I/O"},
		{"recovery completed", "OSD log: recovery completed"},
	}
	var b strings.Builder
	for _, w := range wanted {
		for _, e := range entries {
			if strings.Contains(e.Message, w.substr) {
				fmt.Fprintf(&b, "  %8.0fs  %s\n", (e.Time - origin).Seconds(), w.label)
				break
			}
		}
	}
	return b.String()
}

// Table3 renders the write-amplification table.
func Table3(rows []experiments.WARow) string {
	var b strings.Builder
	b.WriteString("table3 — Write amplification of RS codes\n")
	b.WriteString("  ID            Code(n,k)    n/k    Actual WA Factor    Diff.%\n")
	for _, r := range rows {
		rep := r.Report
		fmt.Fprintf(&b, "  %-12s  RS(%d,%d)%s  %5.2f  %18.2f  %+7.1f%%\n",
			strings.Fields(r.ID)[0], rep.N, rep.K, pad(rep.N, rep.K), rep.Theoretical, rep.Measured, rep.DiffVsTheory*100)
	}
	return b.String()
}

func pad(n, k int) string {
	if n >= 10 && k >= 10 {
		return ""
	}
	if n >= 10 || k >= 10 {
		return " "
	}
	return "  "
}

// WAValidation renders the formula-validation sweep.
func WAValidation(rows []experiments.WAValidationRow) string {
	var b strings.Builder
	b.WriteString("§4.4 — WA formula validation (measured must be >= formula bound)\n")
	b.WriteString("  object      (n,k)     stripe_unit   formula   measured   holds\n")
	violations := 0
	for _, r := range rows {
		ok := "yes"
		if !r.Holds {
			ok = "NO"
			violations++
		}
		fmt.Fprintf(&b, "  %8s  RS(%2d,%2d)  %10s  %8.3f  %9.3f   %s\n",
			size(r.ObjectSize), r.K+r.M, r.K, size(r.StripeUnit), r.Formula, r.Measured, ok)
	}
	fmt.Fprintf(&b, "  %d points, %d violations\n", len(rows), violations)
	return b.String()
}

// Comparison renders paper-vs-measured deltas for a figure.
func Comparison(fig *experiments.Figure) string {
	deltas := experiments.CompareFigure(fig)
	if len(deltas) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s vs paper (mean abs err %.2f):\n", fig.ID, experiments.MeanAbsErr(deltas))
	w := 0
	for _, d := range deltas {
		if len(d.Key) > w {
			w = len(d.Key)
		}
	}
	for _, d := range deltas {
		fmt.Fprintf(&b, "  %-*s  paper %5.2f  measured %5.2f  (Δ %+5.2f)\n",
			w, d.Key, d.Paper, d.Measured, d.Measured-d.Paper)
	}
	return b.String()
}

// Plugins renders the cross-plugin comparison table.
func Plugins(rows []experiments.PluginRow) string {
	var b strings.Builder
	b.WriteString("plugins — single OSD-host failure across EC plugins (extension)\n")
	b.WriteString("  code            recovery   checking%   net/chunk   actual WA   durability\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-14s  %7.1fs  %9.1f%%  %9.2fx  %10.3f  %8.1f 9s\n",
			r.Label, r.RecoveryTime.Seconds(), r.CheckingPercent, r.NetPerChunk, r.ActualWA, r.DurabilityNines)
	}
	return b.String()
}

// WAReport renders a single wamodel comparison.
func WAReport(rep wamodel.Report) string {
	return fmt.Sprintf("RS(%d,%d) object=%s stripe_unit=%s: theory %.3f, formula bound %.3f, measured %.3f (%+.1f%% vs theory)",
		rep.N, rep.K, size(rep.ObjectSize), size(rep.StripeUnit), rep.Theoretical, rep.FormulaBound, rep.Measured, rep.DiffVsTheory*100)
}

func size(b int64) string {
	switch {
	case b >= 1<<30 && b%(1<<30) == 0:
		return fmt.Sprintf("%dGB", b>>30)
	case b >= 1<<20 && b%(1<<20) == 0:
		return fmt.Sprintf("%dMB", b>>20)
	case b >= 1<<10 && b%(1<<10) == 0:
		return fmt.Sprintf("%dKB", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}

package report

import (
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/logsys"
	"repro/internal/wamodel"
)

func sampleFigure() *experiments.Figure {
	return &experiments.Figure{
		ID:       "fig2x",
		Title:    "Sample",
		Baseline: 100 * time.Second,
		Cells: []experiments.Cell{
			{Config: "one", Values: map[string]float64{"RS(12,9)": 1.0, "Clay(12,9,11)": 1.11}},
			{Config: "two longer", Values: map[string]float64{"RS(12,9)": 2.5, "Clay(12,9,11)": 3.33}},
		},
	}
}

func TestFigureRendering(t *testing.T) {
	out := Figure(sampleFigure())
	for _, want := range []string{"fig2x", "baseline 100.0s", "RS(12,9)", "Clay(12,9,11)", "1.00", "1.11", "2.50", "3.33", "two longer"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// RS column comes before Clay.
	if strings.Index(out, "RS(12,9)") > strings.Index(out, "Clay(12,9,11)") {
		t.Error("RS should be the first column")
	}
}

func TestFigureBars(t *testing.T) {
	out := FigureBars(sampleFigure())
	if !strings.Contains(out, "█") {
		t.Fatal("no bars rendered")
	}
	// The largest value (3.33) gets the longest bar.
	lines := strings.Split(out, "\n")
	longest, longestVal := 0, ""
	for _, l := range lines {
		if n := strings.Count(l, "█"); n > longest {
			longest = n
			longestVal = l
		}
	}
	if !strings.Contains(longestVal, "3.33") {
		t.Fatalf("longest bar is %q, want the 3.33 row", longestVal)
	}
}

func TestTimelineRendering(t *testing.T) {
	tl := &experiments.TimelineResult{
		RecoveryStarted:  602 * time.Second,
		RecoveryFinished: 1128 * time.Second,
		CheckingFraction: 0.537,
		FractionRange:    [2]float64{0.41, 0.58},
	}
	out := Timeline(tl)
	for _, want := range []string{"602s", "1128s", "53.7%", "41% to 58%"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTimelineEvents(t *testing.T) {
	entries := []logsys.Entry{
		{Time: 100 * time.Second, Node: "mon0", Category: logsys.CatFailure, Message: "osd.3 failure detected: no heartbeat"},
		{Time: 130 * time.Second, Node: "mon0", Category: logsys.CatHeartbeat, Message: "receiving heartbeats from osd peers"},
		{Time: 702 * time.Second, Node: "host01", Category: logsys.CatRecovery, Message: "pg 7 start recovery I/O (5 objects)"},
		{Time: 1228 * time.Second, Node: "mon0", Category: logsys.CatRecovery, Message: "recovery completed: all placement groups active+clean"},
	}
	out := TimelineEvents(entries, 100*time.Second)
	if !strings.Contains(out, "0s  failure detected") {
		t.Errorf("origin not applied:\n%s", out)
	}
	if !strings.Contains(out, "602s  OSD log: start recovery I/O") {
		t.Errorf("recovery start missing:\n%s", out)
	}
	if !strings.Contains(out, "1128s  OSD log: recovery completed") {
		t.Errorf("completion missing:\n%s", out)
	}
}

func TestTable3Rendering(t *testing.T) {
	rep1, _ := wamodel.NewReport(64<<20, 12, 9, 4<<20, 1.76)
	rep2, _ := wamodel.NewReport(64<<20, 15, 12, 4<<20, 2.15)
	out := Table3([]experiments.WARow{
		{ID: "J1 RS(12,9)", Report: rep1},
		{ID: "J2 RS(15,12)", Report: rep2},
	})
	for _, want := range []string{"RS(12,9)", "RS(15,12)", "1.33", "1.25", "1.76", "2.15", "+32.0%", "+72.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWAValidationRendering(t *testing.T) {
	rows := []experiments.WAValidationRow{
		{ObjectSize: 64 << 20, K: 9, M: 3, StripeUnit: 4 << 20, Formula: 1.5, Measured: 1.76, Holds: true},
		{ObjectSize: 4 << 20, K: 4, M: 2, StripeUnit: 1 << 20, Formula: 1.5, Measured: 1.4, Holds: false},
	}
	out := WAValidation(rows)
	if !strings.Contains(out, "2 points, 1 violations") {
		t.Errorf("violation count wrong:\n%s", out)
	}
	if !strings.Contains(out, "64MB") || !strings.Contains(out, "RS(12, 9)") {
		t.Errorf("formatting wrong:\n%s", out)
	}
}

func TestWAReportString(t *testing.T) {
	rep, _ := wamodel.NewReport(64<<20, 12, 9, 4<<20, 1.76)
	out := WAReport(rep)
	for _, want := range []string{"RS(12,9)", "64MB", "4MB", "1.333", "1.500", "1.760", "+32.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
}

func TestSizeFormatting(t *testing.T) {
	cases := map[int64]string{
		4096:    "4KB",
		1 << 20: "1MB",
		1 << 30: "1GB",
		1234:    "1234B",
	}
	for in, want := range cases {
		if got := size(in); got != want {
			t.Errorf("size(%d) = %s, want %s", in, got, want)
		}
	}
}

package tuner

import (
	"testing"
	"time"

	"repro/internal/core"
)

// fastBase is a small profile so searches stay quick.
func fastBase() core.Profile {
	p := core.DefaultProfile().ScaleWorkload(100)
	p.Cluster.Hosts = 15
	p.Pool.PGNum = 32
	return p
}

func TestCandidatesCartesianProduct(t *testing.T) {
	space := Space{
		Plugins: []PluginChoice{
			{Plugin: "jerasure_reed_sol_van", K: 9, M: 3},
			{Plugin: "clay", K: 9, M: 3, D: 11},
		},
		PGNums:      []int{16, 64},
		StripeUnits: []int64{4 << 20},
	}
	cands := space.Candidates(fastBase())
	if len(cands) != 4 {
		t.Fatalf("candidates = %d, want 2*2*1*1", len(cands))
	}
	// Empty space keeps base values: exactly one candidate.
	if got := (Space{}).Candidates(fastBase()); len(got) != 1 {
		t.Fatalf("empty space candidates = %d", len(got))
	}
}

func TestGridSearchRanksByRecoveryTime(t *testing.T) {
	space := Space{PGNums: []int{1, 64}}
	ranked, err := GridSearch(fastBase(), space, MinRecoveryTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 2 {
		t.Fatalf("ranked = %d", len(ranked))
	}
	if ranked[0].Profile.Pool.PGNum != 64 {
		t.Fatalf("winner pg_num = %d, want 64 (more parallel recovery)", ranked[0].Profile.Pool.PGNum)
	}
	if ranked[0].Score > ranked[1].Score {
		t.Fatal("not sorted best-first")
	}
	if ranked[0].RecoveryTime <= 0 || ranked[0].WA <= 1 {
		t.Fatalf("metrics missing: %+v", ranked[0])
	}
}

func TestGridSearchRanksByWA(t *testing.T) {
	// RS(12,9) vs RS(15,12) at the same stripe unit: the latter has
	// lower n/k but much higher padding WA (Table 3), so for 64 MB
	// objects at 4 MB units RS(12,9) must win on WA.
	space := Space{Plugins: []PluginChoice{
		{Plugin: "jerasure_reed_sol_van", K: 9, M: 3},
		{Plugin: "jerasure_reed_sol_van", K: 12, M: 3},
	}}
	ranked, err := GridSearch(fastBase(), space, MinWriteAmplification)
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Profile.Pool.K != 9 {
		t.Fatalf("WA winner k = %d, want 9", ranked[0].Profile.Pool.K)
	}
}

func TestGridSearchSkipsInvalidCandidates(t *testing.T) {
	space := Space{PGNums: []int{0, 32}} // pg_num 0 is invalid
	ranked, err := GridSearch(fastBase(), space, Balanced)
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Err != nil {
		t.Fatal("best candidate must be the valid one")
	}
	last := ranked[len(ranked)-1]
	if last.Err == nil {
		t.Fatal("invalid candidate should rank last with an error")
	}
}

func TestGridSearchAllInvalid(t *testing.T) {
	space := Space{PGNums: []int{0}}
	if _, err := GridSearch(fastBase(), space, Balanced); err == nil {
		t.Fatal("expected ErrEmptySpace")
	}
}

func TestGreedySearchConverges(t *testing.T) {
	space := Space{
		PGNums:       []int{1, 64},
		StripeUnits:  []int64{4 << 20},
		CacheSchemes: []string{core.SchemeKVOptimized, core.SchemeAutotune},
	}
	best, runs, err := GreedySearch(fastBase(), space, MinRecoveryTime)
	if err != nil {
		t.Fatal(err)
	}
	if best.Err != nil {
		t.Fatal(best.Err)
	}
	if best.Profile.Pool.PGNum != 64 {
		t.Fatalf("greedy picked pg_num=%d, want 64", best.Profile.Pool.PGNum)
	}
	// Greedy runs at most 1 + sum(knob sizes) evaluations.
	if runs > 1+2+1+2 {
		t.Fatalf("greedy ran %d evaluations", runs)
	}
	if best.RecoveryTime <= 0 {
		t.Fatal("metrics missing")
	}
}

func TestObjectiveStrings(t *testing.T) {
	for _, o := range []Objective{MinRecoveryTime, MinWriteAmplification, Balanced, MaxDurability} {
		if o.String() == "" {
			t.Fatal("objective string empty")
		}
	}
}

func TestMaxDurabilityObjective(t *testing.T) {
	// m=3 vs m=2 at the same k: more parity must win on durability.
	space := Space{Plugins: []PluginChoice{
		{Plugin: "jerasure_reed_sol_van", K: 9, M: 3},
		{Plugin: "jerasure_reed_sol_van", K: 9, M: 2},
	}}
	ranked, err := GridSearch(fastBase(), space, MaxDurability)
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Profile.Pool.M != 3 {
		t.Fatalf("durability winner m = %d, want 3", ranked[0].Profile.Pool.M)
	}
	if ranked[0].DurabilityNines <= ranked[1].DurabilityNines {
		t.Fatalf("nines not ordered: %f vs %f", ranked[0].DurabilityNines, ranked[1].DurabilityNines)
	}
	if ranked[0].DurabilityNines < 5 {
		t.Fatalf("RS(12,9) should exceed 5 nines, got %f", ranked[0].DurabilityNines)
	}
}

func TestCandidateDescribe(t *testing.T) {
	c := Candidate{Profile: fastBase(), RecoveryTime: time.Second, WA: 1.5}
	if c.Describe() == "" {
		t.Fatal("empty description")
	}
}

// Package tuner implements the paper's proposed follow-up (§6): using the
// quantitative configuration-sensitivity measurements to tune EC-based
// DSS automatically. Given a base profile and a search space of
// configuration knobs (plugin, pg_num, stripe_unit, cache scheme), it
// evaluates candidates through the ECFault coordinator and ranks them by
// an objective over recovery time and write amplification.
//
// Two strategies are provided: exhaustive grid search, and greedy
// coordinate descent for larger spaces (tune one knob at a time, keeping
// the best value before moving to the next).
package tuner

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/durability"
	"repro/internal/erasure/codecache"
	"repro/internal/parallel"
)

// Objective scores a candidate; lower is better.
type Objective int

const (
	// MinRecoveryTime optimizes the system recovery time alone.
	MinRecoveryTime Objective = iota
	// MinWriteAmplification optimizes storage overhead alone.
	MinWriteAmplification
	// Balanced optimizes the product of normalized recovery time and WA.
	Balanced
	// MaxDurability optimizes MTTDL, with the candidate's measured
	// recovery time feeding the repair rate — fast recovery is durability.
	MaxDurability
)

func (o Objective) String() string {
	switch o {
	case MinRecoveryTime:
		return "min-recovery-time"
	case MinWriteAmplification:
		return "min-write-amplification"
	case MaxDurability:
		return "max-durability"
	default:
		return "balanced"
	}
}

// PluginChoice is one erasure-code candidate.
type PluginChoice struct {
	Plugin string
	K, M   int
	D      int
}

func (p PluginChoice) String() string {
	if p.D > 0 {
		return fmt.Sprintf("%s(k=%d,m=%d,d=%d)", p.Plugin, p.K, p.M, p.D)
	}
	return fmt.Sprintf("%s(k=%d,m=%d)", p.Plugin, p.K, p.M)
}

// Space enumerates the knobs to explore. Empty slices keep the base
// profile's value for that knob.
type Space struct {
	Plugins      []PluginChoice
	PGNums       []int
	StripeUnits  []int64
	CacheSchemes []string
}

// Candidates returns the cartesian product of the space applied to base.
func (s Space) Candidates(base core.Profile) []core.Profile {
	plugins := s.Plugins
	if len(plugins) == 0 {
		plugins = []PluginChoice{{Plugin: base.Pool.Plugin, K: base.Pool.K, M: base.Pool.M, D: base.Pool.D}}
	}
	pgs := s.PGNums
	if len(pgs) == 0 {
		pgs = []int{base.Pool.PGNum}
	}
	units := s.StripeUnits
	if len(units) == 0 {
		units = []int64{base.Pool.StripeUnit}
	}
	caches := s.CacheSchemes
	if len(caches) == 0 {
		caches = []string{base.Backend.CacheScheme}
	}
	var out []core.Profile
	for _, pl := range plugins {
		for _, pg := range pgs {
			for _, u := range units {
				for _, cs := range caches {
					p := base
					p.Pool.Plugin = pl.Plugin
					p.Pool.K = pl.K
					p.Pool.M = pl.M
					p.Pool.D = pl.D
					p.Pool.PGNum = pg
					p.Pool.StripeUnit = u
					p.Backend.CacheScheme = cs
					p.Name = fmt.Sprintf("tune-%s-pg%d-su%d-%s", pl, pg, u, cs)
					out = append(out, p)
				}
			}
		}
	}
	return out
}

// Candidate is one evaluated configuration.
type Candidate struct {
	Profile      core.Profile
	RecoveryTime time.Duration
	WA           float64
	// DurabilityNines is the annual durability implied by the code's
	// geometry and the measured recovery time (AFR 2%/year).
	DurabilityNines float64
	Score           float64
	Err             error // non-nil when the profile failed to run
}

// Describe summarizes the candidate's knobs.
func (c Candidate) Describe() string {
	p := c.Profile.Pool
	return fmt.Sprintf("%s k=%d m=%d pg_num=%d stripe_unit=%d cache=%s",
		p.Plugin, p.K, p.M, p.PGNum, p.StripeUnit, c.Profile.Backend.CacheScheme)
}

// ErrEmptySpace is returned when the space yields no runnable candidate.
var ErrEmptySpace = errors.New("tuner: no candidate could be evaluated")

// evaluate runs one profile and extracts the raw metrics.
func evaluate(p core.Profile) Candidate {
	cand := Candidate{Profile: p}
	if err := p.Validate(); err != nil {
		cand.Err = err
		return cand
	}
	res, err := core.Run(p)
	if err != nil {
		cand.Err = err
		return cand
	}
	if res.Recovery != nil {
		cand.RecoveryTime = res.Recovery.SystemRecoveryTime()
	}
	cand.WA = res.WA.Measured

	// Durability: the measured recovery time is the repair MTTR.
	if cand.RecoveryTime > 0 {
		code, err := codecache.Get(p.Pool.Plugin, p.Pool.K, p.Pool.M, p.Pool.D)
		if err == nil {
			rep, derr := durability.Evaluate(code, durability.Params{
				DeviceAFR: 0.02,
				MTTRHours: cand.RecoveryTime.Hours(),
				Samples:   800,
				Seed:      1,
			})
			if derr == nil {
				cand.DurabilityNines = rep.DurabilityNines
			}
		}
	}
	return cand
}

// score computes the objective over metrics normalized by the bests seen.
func score(obj Objective, c Candidate, bestTime time.Duration, bestWA float64) float64 {
	tNorm := 1.0
	if bestTime > 0 && c.RecoveryTime > 0 {
		tNorm = float64(c.RecoveryTime) / float64(bestTime)
	}
	waNorm := 1.0
	if bestWA > 0 && c.WA > 0 {
		waNorm = c.WA / bestWA
	}
	switch obj {
	case MinRecoveryTime:
		return tNorm
	case MinWriteAmplification:
		return waNorm
	case MaxDurability:
		// Lower is better: invert the nines (clamped away from zero).
		if c.DurabilityNines <= 0 {
			return math.Inf(1)
		}
		return 100 / c.DurabilityNines
	default:
		return tNorm * waNorm
	}
}

// rank scores and sorts evaluated candidates, best first.
func rank(obj Objective, cands []Candidate) []Candidate {
	bestTime := time.Duration(math.MaxInt64)
	bestWA := math.MaxFloat64
	ok := 0
	for _, c := range cands {
		if c.Err != nil {
			continue
		}
		ok++
		if c.RecoveryTime > 0 && c.RecoveryTime < bestTime {
			bestTime = c.RecoveryTime
		}
		if c.WA > 0 && c.WA < bestWA {
			bestWA = c.WA
		}
	}
	if ok == 0 {
		return nil
	}
	for i := range cands {
		if cands[i].Err != nil {
			cands[i].Score = math.Inf(1)
			continue
		}
		cands[i].Score = score(obj, cands[i], bestTime, bestWA)
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].Score < cands[j].Score })
	return cands
}

// GridSearch evaluates every candidate in the space and returns them
// ranked best-first. Candidates run concurrently (each experiment is an
// independent simulated cluster), bounded by the shared worker budget
// (parallel.Workers: ECFAULT_WORKERS, the -workers flag, or NumCPU).
func GridSearch(base core.Profile, space Space, obj Objective) ([]Candidate, error) {
	profiles := space.Candidates(base)
	cands := make([]Candidate, len(profiles))
	parallel.ForEach(len(profiles), parallel.Workers(), func(i int) {
		cands[i] = evaluate(profiles[i])
	})
	ranked := rank(obj, cands)
	if ranked == nil {
		return nil, ErrEmptySpace
	}
	return ranked, nil
}

// GreedySearch tunes one knob at a time in a fixed order (plugin, pg_num,
// stripe_unit, cache scheme), keeping the best value of each before
// moving on — O(sum of knob sizes) runs instead of the product.
func GreedySearch(base core.Profile, space Space, obj Objective) (Candidate, int, error) {
	current := base
	runs := 0
	better := func(a, b Candidate) bool {
		if b.Err != nil {
			return true
		}
		if a.Err != nil {
			return false
		}
		return score(obj, a, minDur(a.RecoveryTime, b.RecoveryTime), math.Min(orInf(a.WA), orInf(b.WA))) <=
			score(obj, b, minDur(a.RecoveryTime, b.RecoveryTime), math.Min(orInf(a.WA), orInf(b.WA)))
	}
	best := evaluate(current)
	runs++
	tryAll := func(apply func(*core.Profile, int), count int) {
		for v := 0; v < count; v++ {
			p := current
			apply(&p, v)
			if p.Pool == current.Pool && p.Backend == current.Backend {
				continue // same as current, skip duplicate run
			}
			cand := evaluate(p)
			runs++
			if better(cand, best) {
				best = cand
				current = p
			}
		}
	}
	if len(space.Plugins) > 0 {
		tryAll(func(p *core.Profile, v int) {
			pl := space.Plugins[v]
			p.Pool.Plugin, p.Pool.K, p.Pool.M, p.Pool.D = pl.Plugin, pl.K, pl.M, pl.D
		}, len(space.Plugins))
	}
	if len(space.PGNums) > 0 {
		tryAll(func(p *core.Profile, v int) { p.Pool.PGNum = space.PGNums[v] }, len(space.PGNums))
	}
	if len(space.StripeUnits) > 0 {
		tryAll(func(p *core.Profile, v int) { p.Pool.StripeUnit = space.StripeUnits[v] }, len(space.StripeUnits))
	}
	if len(space.CacheSchemes) > 0 {
		tryAll(func(p *core.Profile, v int) { p.Backend.CacheScheme = space.CacheSchemes[v] }, len(space.CacheSchemes))
	}
	if best.Err != nil {
		return best, runs, ErrEmptySpace
	}
	best.Score = 1 // normalized against itself; grid ranks are relative
	return best, runs, nil
}

func minDur(a, b time.Duration) time.Duration {
	if a > 0 && (b <= 0 || a < b) {
		return a
	}
	return b
}

func orInf(v float64) float64 {
	if v <= 0 {
		return math.Inf(1)
	}
	return v
}

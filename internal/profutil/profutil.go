// Package profutil wires runtime/pprof collection into the CLIs so
// campaign hot spots (cluster build, GF kernels, event engine) can be
// inspected with `go tool pprof` without ad-hoc instrumentation.
package profutil

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty). The returned
// stop function ends the CPU profile and, when memPath is non-empty,
// writes a heap profile; call it exactly once on the way out of main.
func Start(cpuPath, memPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profutil: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("profutil: %w", err)
		}
		cpuFile = f
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profutil: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profutil: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile is stable
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profutil: %w", err)
			}
		}
		return nil
	}, nil
}

package blockdev

import (
	"bytes"
	"errors"
	"testing"
)

func TestForkRequiresFreeze(t *testing.T) {
	d, _ := New("dev", 1<<20, 4096)
	if _, err := d.Fork(); err == nil {
		t.Fatal("Fork of unfrozen device should fail")
	}
	d.Freeze()
	f, err := d.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Fork(); err == nil {
		t.Fatal("Fork of a fork should fail")
	}
}

func TestFrozenDeviceRejectsWrites(t *testing.T) {
	d, _ := New("dev", 1<<20, 4096)
	if _, err := d.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	d.Freeze()
	if _, err := d.WriteAt([]byte("x"), 0); !errors.Is(err, ErrFrozen) {
		t.Fatalf("WriteAt on frozen device: %v", err)
	}
	if err := d.Trim(0, 4096); !errors.Is(err, ErrFrozen) {
		t.Fatalf("Trim on frozen device: %v", err)
	}
	if err := d.AccountWrite(1); !errors.Is(err, ErrFrozen) {
		t.Fatalf("AccountWrite on frozen device: %v", err)
	}
	// Reads still work.
	buf := make([]byte, 5)
	if _, err := d.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("read %q", buf)
	}
}

func TestForkCopyOnWriteIsolation(t *testing.T) {
	d, _ := New("dev", 1<<20, 4096)
	if _, err := d.WriteAt(bytes.Repeat([]byte{0xAA}, 8192), 0); err != nil {
		t.Fatal(err)
	}
	d.Freeze()
	f1, err := d.Fork()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := d.Fork()
	if err != nil {
		t.Fatal(err)
	}

	// f1 overwrites part of a shared block; f2 trims the other block.
	if _, err := f1.WriteAt([]byte{0xBB}, 100); err != nil {
		t.Fatal(err)
	}
	if err := f2.Trim(4096, 4096); err != nil {
		t.Fatal(err)
	}

	read := func(dev *Device, off int64) byte {
		b := make([]byte, 1)
		if _, err := dev.ReadAt(b, off); err != nil {
			t.Fatal(err)
		}
		return b[0]
	}
	if got := read(f1, 100); got != 0xBB {
		t.Fatalf("f1[100]=%x", got)
	}
	if got := read(d, 100); got != 0xAA {
		t.Fatalf("parent[100]=%x, fork write leaked", got)
	}
	if got := read(f2, 100); got != 0xAA {
		t.Fatalf("f2[100]=%x, sibling write leaked", got)
	}
	if got := read(f2, 5000); got != 0 {
		t.Fatalf("f2[5000]=%x after trim", got)
	}
	if got := read(d, 5000); got != 0xAA {
		t.Fatalf("parent[5000]=%x, fork trim leaked", got)
	}
	if got := read(f1, 101); got != 0xAA {
		t.Fatalf("f1[101]=%x, CoW lost base bytes", got)
	}
}

func TestForkUsedAndStats(t *testing.T) {
	d, _ := New("dev", 1<<20, 4096)
	if _, err := d.WriteAt(make([]byte, 8192), 0); err != nil {
		t.Fatal(err)
	}
	d.Freeze()
	f, err := d.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if f.Used() != d.Used() {
		t.Fatalf("fork Used %d != parent %d", f.Used(), d.Used())
	}
	if f.Snapshot() != d.Snapshot() {
		t.Fatalf("fork stats %+v != parent %+v", f.Snapshot(), d.Snapshot())
	}
	// Overwriting a shared block must not double-count it.
	if _, err := f.WriteAt([]byte{1}, 0); err != nil {
		t.Fatal(err)
	}
	if f.Used() != d.Used() {
		t.Fatalf("fork Used %d != parent %d after CoW overwrite", f.Used(), d.Used())
	}
	// Trimming a shared block shrinks only the fork.
	if err := f.Trim(4096, 4096); err != nil {
		t.Fatal(err)
	}
	if f.Used() != d.Used()-4096 {
		t.Fatalf("fork Used %d after trim, parent %d", f.Used(), d.Used())
	}
}

func TestForkRemoveIndependent(t *testing.T) {
	d, _ := New("dev", 1<<20, 4096)
	if _, err := d.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	d.Freeze()
	f, _ := d.Fork()
	f.Remove()
	if !f.Removed() {
		t.Fatal("fork not removed")
	}
	buf := make([]byte, 5)
	if _, err := d.ReadAt(buf, 0); err != nil || string(buf) != "hello" {
		t.Fatalf("parent affected by fork removal: %q %v", buf, err)
	}
}

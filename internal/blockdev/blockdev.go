// Package blockdev provides the virtual block devices that back the
// DataNodes' storage. A device is sparse and in-memory; it tracks
// iostat-style counters and can be "removed" at runtime, after which all
// I/O fails — the device-level fault the paper injects by deleting NVMe
// subsystems with nvmetcli.
package blockdev

import (
	"errors"
	"fmt"
	"sync"
)

// Errors returned by device I/O.
var (
	ErrRemoved     = errors.New("blockdev: device removed")
	ErrOutOfRange  = errors.New("blockdev: I/O beyond device capacity")
	ErrInvalidArgs = errors.New("blockdev: invalid arguments")
)

// Stats are cumulative I/O counters, in the spirit of /proc/diskstats.
type Stats struct {
	ReadOps    int64
	WriteOps   int64
	ReadBytes  int64
	WriteBytes int64
	TrimOps    int64
}

// Device is a sparse in-memory block device. All methods are safe for
// concurrent use.
type Device struct {
	name      string
	capacity  int64
	blockSize int64

	mu      sync.Mutex
	blocks  map[int64][]byte
	stats   Stats
	removed bool
}

// New creates a device. blockSize must divide capacity.
func New(name string, capacity, blockSize int64) (*Device, error) {
	if capacity <= 0 || blockSize <= 0 || capacity%blockSize != 0 {
		return nil, fmt.Errorf("%w: capacity=%d blockSize=%d", ErrInvalidArgs, capacity, blockSize)
	}
	return &Device{
		name:      name,
		capacity:  capacity,
		blockSize: blockSize,
		blocks:    map[int64][]byte{},
	}, nil
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Capacity returns the device size in bytes.
func (d *Device) Capacity() int64 { return d.capacity }

// BlockSize returns the allocation block size.
func (d *Device) BlockSize() int64 { return d.blockSize }

func (d *Device) checkRange(off int64, n int) error {
	if off < 0 || n < 0 {
		return ErrInvalidArgs
	}
	if off+int64(n) > d.capacity {
		return fmt.Errorf("%w: off=%d len=%d cap=%d", ErrOutOfRange, off, n, d.capacity)
	}
	return nil
}

// ReadAt implements io.ReaderAt semantics over the sparse store;
// unwritten regions read as zero.
func (d *Device) ReadAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.removed {
		return 0, ErrRemoved
	}
	if err := d.checkRange(off, len(p)); err != nil {
		return 0, err
	}
	d.stats.ReadOps++
	d.stats.ReadBytes += int64(len(p))
	for n := 0; n < len(p); {
		blk := (off + int64(n)) / d.blockSize
		inOff := (off + int64(n)) % d.blockSize
		chunk := int(d.blockSize - inOff)
		if chunk > len(p)-n {
			chunk = len(p) - n
		}
		if b, ok := d.blocks[blk]; ok {
			copy(p[n:n+chunk], b[inOff:inOff+int64(chunk)])
		} else {
			for i := n; i < n+chunk; i++ {
				p[i] = 0
			}
		}
		n += chunk
	}
	return len(p), nil
}

// WriteAt implements io.WriterAt semantics, allocating blocks lazily.
func (d *Device) WriteAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.removed {
		return 0, ErrRemoved
	}
	if err := d.checkRange(off, len(p)); err != nil {
		return 0, err
	}
	d.stats.WriteOps++
	d.stats.WriteBytes += int64(len(p))
	for n := 0; n < len(p); {
		blk := (off + int64(n)) / d.blockSize
		inOff := (off + int64(n)) % d.blockSize
		chunk := int(d.blockSize - inOff)
		if chunk > len(p)-n {
			chunk = len(p) - n
		}
		b, ok := d.blocks[blk]
		if !ok {
			b = make([]byte, d.blockSize)
			d.blocks[blk] = b
		}
		copy(b[inOff:inOff+int64(chunk)], p[n:n+chunk])
		n += chunk
	}
	return len(p), nil
}

// Trim discards whole blocks covered by the range and counts a trim op.
func (d *Device) Trim(off, length int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.removed {
		return ErrRemoved
	}
	if err := d.checkRange(off, int(length)); err != nil {
		return err
	}
	d.stats.TrimOps++
	first := (off + d.blockSize - 1) / d.blockSize
	last := (off + length) / d.blockSize
	for blk := first; blk < last; blk++ {
		delete(d.blocks, blk)
	}
	return nil
}

// AccountRead records a read of n bytes without moving data, used by the
// accounting-only simulation path for large synthetic workloads.
func (d *Device) AccountRead(n int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.removed {
		return ErrRemoved
	}
	d.stats.ReadOps++
	d.stats.ReadBytes += n
	return nil
}

// AccountWrite records a write of n bytes without moving data.
func (d *Device) AccountWrite(n int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.removed {
		return ErrRemoved
	}
	d.stats.WriteOps++
	d.stats.WriteBytes += n
	return nil
}

// AccountWrites records n writes totalling bytes without moving data,
// one locked step for a whole bulk ingest.
func (d *Device) AccountWrites(bytes, n int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.removed {
		return ErrRemoved
	}
	d.stats.WriteOps += n
	d.stats.WriteBytes += bytes
	return nil
}

// Used reports allocated bytes (whole blocks).
func (d *Device) Used() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(len(d.blocks)) * d.blockSize
}

// Remove simulates pulling the device: every subsequent operation fails
// with ErrRemoved. Contents are dropped.
func (d *Device) Remove() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.removed = true
	d.blocks = map[int64][]byte{}
}

// Removed reports whether the device has been removed.
func (d *Device) Removed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.removed
}

// Snapshot returns a copy of the cumulative counters.
func (d *Device) Snapshot() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

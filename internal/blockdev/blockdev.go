// Package blockdev provides the virtual block devices that back the
// DataNodes' storage. A device is sparse and in-memory; it tracks
// iostat-style counters and can be "removed" at runtime, after which all
// I/O fails — the device-level fault the paper injects by deleting NVMe
// subsystems with nvmetcli.
package blockdev

import (
	"errors"
	"fmt"
	"sync"
)

// Errors returned by device I/O.
var (
	ErrRemoved     = errors.New("blockdev: device removed")
	ErrOutOfRange  = errors.New("blockdev: I/O beyond device capacity")
	ErrInvalidArgs = errors.New("blockdev: invalid arguments")
	ErrFrozen      = errors.New("blockdev: device is frozen (snapshot parent)")
)

// Stats are cumulative I/O counters, in the spirit of /proc/diskstats.
type Stats struct {
	ReadOps    int64
	WriteOps   int64
	ReadBytes  int64
	WriteBytes int64
	TrimOps    int64
}

// Device is a sparse in-memory block device. All methods are safe for
// concurrent use.
type Device struct {
	name      string
	capacity  int64
	blockSize int64

	mu      sync.Mutex
	blocks  map[int64][]byte
	stats   Stats
	removed bool

	// Copy-on-write fork state: base holds the frozen parent's blocks
	// (shared, never written through), masked marks base blocks hidden by
	// an overlay write or a trim. For root devices base is nil and every
	// access takes the short path. Invariants: masked keys are a subset of
	// base keys, and every overlay block whose key exists in base is
	// masked, so the visible set is blocks ∪ (base − masked).
	base   map[int64][]byte
	masked map[int64]bool
	frozen bool
}

// New creates a device. blockSize must divide capacity.
func New(name string, capacity, blockSize int64) (*Device, error) {
	if capacity <= 0 || blockSize <= 0 || capacity%blockSize != 0 {
		return nil, fmt.Errorf("%w: capacity=%d blockSize=%d", ErrInvalidArgs, capacity, blockSize)
	}
	return &Device{
		name:      name,
		capacity:  capacity,
		blockSize: blockSize,
		blocks:    map[int64][]byte{},
	}, nil
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Capacity returns the device size in bytes.
func (d *Device) Capacity() int64 { return d.capacity }

// BlockSize returns the allocation block size.
func (d *Device) BlockSize() int64 { return d.blockSize }

func (d *Device) checkRange(off int64, n int) error {
	if off < 0 || n < 0 {
		return ErrInvalidArgs
	}
	if off+int64(n) > d.capacity {
		return fmt.Errorf("%w: off=%d len=%d cap=%d", ErrOutOfRange, off, n, d.capacity)
	}
	return nil
}

// ReadAt implements io.ReaderAt semantics over the sparse store;
// unwritten regions read as zero.
func (d *Device) ReadAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.removed {
		return 0, ErrRemoved
	}
	if err := d.checkRange(off, len(p)); err != nil {
		return 0, err
	}
	d.stats.ReadOps++
	d.stats.ReadBytes += int64(len(p))
	for n := 0; n < len(p); {
		blk := (off + int64(n)) / d.blockSize
		inOff := (off + int64(n)) % d.blockSize
		chunk := int(d.blockSize - inOff)
		if chunk > len(p)-n {
			chunk = len(p) - n
		}
		if b, ok := d.visibleLocked(blk); ok {
			copy(p[n:n+chunk], b[inOff:inOff+int64(chunk)])
		} else {
			for i := n; i < n+chunk; i++ {
				p[i] = 0
			}
		}
		n += chunk
	}
	return len(p), nil
}

// visibleLocked resolves a block through the overlay, then the unmasked
// base. Callers must hold d.mu.
func (d *Device) visibleLocked(blk int64) ([]byte, bool) {
	if b, ok := d.blocks[blk]; ok {
		return b, true
	}
	if d.base != nil && !d.masked[blk] {
		if b, ok := d.base[blk]; ok {
			return b, true
		}
	}
	return nil, false
}

// WriteAt implements io.WriterAt semantics, allocating blocks lazily.
func (d *Device) WriteAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.removed {
		return 0, ErrRemoved
	}
	if d.frozen {
		return 0, ErrFrozen
	}
	if err := d.checkRange(off, len(p)); err != nil {
		return 0, err
	}
	d.stats.WriteOps++
	d.stats.WriteBytes += int64(len(p))
	for n := 0; n < len(p); {
		blk := (off + int64(n)) / d.blockSize
		inOff := (off + int64(n)) % d.blockSize
		chunk := int(d.blockSize - inOff)
		if chunk > len(p)-n {
			chunk = len(p) - n
		}
		b, ok := d.blocks[blk]
		if !ok {
			b = make([]byte, d.blockSize)
			// Copy-on-write: pull the shared base block into the
			// overlay before mutating it.
			if d.base != nil && !d.masked[blk] {
				if pb, okBase := d.base[blk]; okBase {
					copy(b, pb)
				}
				d.maskLocked(blk)
			}
			d.blocks[blk] = b
		}
		copy(b[inOff:inOff+int64(chunk)], p[n:n+chunk])
		n += chunk
	}
	return len(p), nil
}

// maskLocked hides a base-resident block from future lookups. Callers
// must hold d.mu and have base != nil.
func (d *Device) maskLocked(blk int64) {
	if _, ok := d.base[blk]; !ok {
		return
	}
	if d.masked == nil {
		d.masked = map[int64]bool{}
	}
	d.masked[blk] = true
}

// Trim discards whole blocks covered by the range and counts a trim op.
func (d *Device) Trim(off, length int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.removed {
		return ErrRemoved
	}
	if d.frozen {
		return ErrFrozen
	}
	if err := d.checkRange(off, int(length)); err != nil {
		return err
	}
	d.stats.TrimOps++
	first := (off + d.blockSize - 1) / d.blockSize
	last := (off + length) / d.blockSize
	for blk := first; blk < last; blk++ {
		delete(d.blocks, blk)
		if d.base != nil {
			d.maskLocked(blk)
		}
	}
	return nil
}

// AccountRead records a read of n bytes without moving data, used by the
// accounting-only simulation path for large synthetic workloads.
func (d *Device) AccountRead(n int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.removed {
		return ErrRemoved
	}
	d.stats.ReadOps++
	d.stats.ReadBytes += n
	return nil
}

// AccountWrite records a write of n bytes without moving data.
func (d *Device) AccountWrite(n int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.removed {
		return ErrRemoved
	}
	if d.frozen {
		return ErrFrozen
	}
	d.stats.WriteOps++
	d.stats.WriteBytes += n
	return nil
}

// AccountWrites records n writes totalling bytes without moving data,
// one locked step for a whole bulk ingest.
func (d *Device) AccountWrites(bytes, n int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.removed {
		return ErrRemoved
	}
	if d.frozen {
		return ErrFrozen
	}
	d.stats.WriteOps += n
	d.stats.WriteBytes += bytes
	return nil
}

// Used reports allocated bytes (whole blocks) across overlay and
// visible base.
func (d *Device) Used() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := int64(len(d.blocks))
	if d.base != nil {
		n += int64(len(d.base) - len(d.masked))
	}
	return n * d.blockSize
}

// Remove simulates pulling the device: every subsequent operation fails
// with ErrRemoved. Contents are dropped. Removing a frozen snapshot
// parent would invalidate its forks, so that is a programming error.
func (d *Device) Remove() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.frozen {
		panic("blockdev: Remove on frozen device " + d.name)
	}
	d.removed = true
	d.blocks = map[int64][]byte{}
	d.base = nil
	d.masked = nil
}

// Removed reports whether the device has been removed.
func (d *Device) Removed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.removed
}

// Snapshot returns a copy of the cumulative counters.
func (d *Device) Snapshot() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Freeze makes the device immutable so it can serve as a shared
// copy-on-write base for forks. All subsequent writes fail with
// ErrFrozen; reads keep working. Freeze is idempotent.
func (d *Device) Freeze() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.frozen = true
}

// Fork returns a writable copy-on-write child of a frozen device. The
// child shares the parent's blocks until it writes or trims them and
// starts from a copy of the parent's counters, so iostat deltas line up
// with a fresh-built device that replayed the same history. Only
// single-level forking is supported: the parent must be a root device
// (not itself a fork).
func (d *Device) Fork() (*Device, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.removed {
		return nil, ErrRemoved
	}
	if !d.frozen {
		return nil, fmt.Errorf("blockdev: Fork of unfrozen device %s", d.name)
	}
	if d.base != nil {
		return nil, fmt.Errorf("blockdev: Fork of forked device %s", d.name)
	}
	return &Device{
		name:      d.name,
		capacity:  d.capacity,
		blockSize: d.blockSize,
		blocks:    map[int64][]byte{},
		base:      d.blocks,
		stats:     d.stats,
	}, nil
}

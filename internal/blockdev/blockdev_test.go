package blockdev

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func newDev(t *testing.T) *Device {
	t.Helper()
	d, err := New("nvme0n1", 1<<20, 4096)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	if _, err := New("x", 0, 4096); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := New("x", 1000, 4096); err == nil {
		t.Fatal("misaligned capacity accepted")
	}
	if _, err := New("x", 4096, 0); err == nil {
		t.Fatal("zero block accepted")
	}
}

func TestReadUnwrittenIsZero(t *testing.T) {
	d := newDev(t)
	p := make([]byte, 100)
	for i := range p {
		p[i] = 0xFF
	}
	if _, err := d.ReadAt(p, 12345); err != nil {
		t.Fatal(err)
	}
	for _, b := range p {
		if b != 0 {
			t.Fatal("unwritten region not zero")
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := newDev(t)
	data := make([]byte, 10000) // spans multiple blocks, unaligned
	rand.New(rand.NewSource(1)).Read(data)
	if _, err := d.WriteAt(data, 1234); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := d.ReadAt(got, 1234); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestOutOfRange(t *testing.T) {
	d := newDev(t)
	if _, err := d.WriteAt(make([]byte, 10), d.Capacity()-5); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("got %v", err)
	}
	if _, err := d.ReadAt(make([]byte, 1), -1); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestRemove(t *testing.T) {
	d := newDev(t)
	if _, err := d.WriteAt([]byte{1}, 0); err != nil {
		t.Fatal(err)
	}
	d.Remove()
	if !d.Removed() {
		t.Fatal("Removed() false")
	}
	if _, err := d.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrRemoved) {
		t.Fatalf("read after remove: %v", err)
	}
	if _, err := d.WriteAt([]byte{1}, 0); !errors.Is(err, ErrRemoved) {
		t.Fatalf("write after remove: %v", err)
	}
	if err := d.AccountWrite(10); !errors.Is(err, ErrRemoved) {
		t.Fatalf("account after remove: %v", err)
	}
}

func TestStats(t *testing.T) {
	d := newDev(t)
	_, _ = d.WriteAt(make([]byte, 100), 0)
	_, _ = d.ReadAt(make([]byte, 40), 0)
	_ = d.AccountWrite(1000)
	_ = d.AccountRead(2000)
	s := d.Snapshot()
	if s.WriteOps != 2 || s.WriteBytes != 1100 {
		t.Fatalf("writes: %+v", s)
	}
	if s.ReadOps != 2 || s.ReadBytes != 2040 {
		t.Fatalf("reads: %+v", s)
	}
}

func TestUsedCountsWholeBlocks(t *testing.T) {
	d := newDev(t)
	_, _ = d.WriteAt([]byte{1}, 0) // one byte allocates one block
	if d.Used() != 4096 {
		t.Fatalf("Used = %d", d.Used())
	}
	_, _ = d.WriteAt([]byte{1}, 4096*3) // new block
	if d.Used() != 8192 {
		t.Fatalf("Used = %d", d.Used())
	}
	_, _ = d.WriteAt([]byte{2}, 1) // same block as first
	if d.Used() != 8192 {
		t.Fatalf("Used = %d", d.Used())
	}
}

func TestTrim(t *testing.T) {
	d := newDev(t)
	_, _ = d.WriteAt(make([]byte, 4096*4), 0)
	if d.Used() != 4096*4 {
		t.Fatal("setup")
	}
	// Trim covering blocks 1 and 2 entirely, block 0 and 3 partially.
	if err := d.Trim(100, 4096*3); err != nil {
		t.Fatal(err)
	}
	if d.Used() != 4096*2 {
		t.Fatalf("Used after trim = %d", d.Used())
	}
	if d.Snapshot().TrimOps != 1 {
		t.Fatal("trim not counted")
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := newDev(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := []byte{byte(g)}
			for i := 0; i < 100; i++ {
				_, _ = d.WriteAt(buf, int64(g*4096))
				_, _ = d.ReadAt(buf, int64(g*4096))
			}
		}(g)
	}
	wg.Wait()
	s := d.Snapshot()
	if s.WriteOps != 800 || s.ReadOps != 800 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestQuickSparseEquivalence(t *testing.T) {
	// Property: the device behaves like a flat byte array.
	d := newDev(t)
	shadow := make([]byte, d.Capacity())
	f := func(offRaw uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 8192 {
			data = data[:8192]
		}
		off := int64(offRaw) % (d.Capacity() - int64(len(data)))
		if _, err := d.WriteAt(data, off); err != nil {
			return false
		}
		copy(shadow[off:], data)
		got := make([]byte, len(data)+64)
		readOff := off - 32
		if readOff < 0 {
			readOff = 0
		}
		if readOff+int64(len(got)) > d.Capacity() {
			got = got[:d.Capacity()-readOff]
		}
		if _, err := d.ReadAt(got, readOff); err != nil {
			return false
		}
		return bytes.Equal(got, shadow[readOff:readOff+int64(len(got))])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

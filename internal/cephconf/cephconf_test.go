package cephconf

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
)

const sample = `
# cluster tuning for the stripe-unit study
[global]
osd pool default pg num = 256
osd_pool_erasure_code_stripe_unit = 4M   ; binary units
erasure_code_plugin = clay
erasure_code_k = 9
erasure_code_m = 3
erasure_code_d = 11

[osd]
osd_max_backfills = 2
mon_osd_down_out_interval = 300
bluestore_cache_kv_ratio = 0.70
bluestore_cache_meta_ratio = 0.20
bluestore_cache_data_ratio = 0.10
`

func TestParseBasics(t *testing.T) {
	cfg, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := cfg.Get("global", "osd_pool_default_pg_num"); !ok || v != "256" {
		t.Fatalf("pg_num: %q %v", v, ok)
	}
	// Spaces and dashes normalize to underscores; keys are
	// case-insensitive.
	if v, ok := cfg.Get("GLOBAL", "OSD POOL DEFAULT PG NUM"); !ok || v != "256" {
		t.Fatalf("normalized lookup: %q %v", v, ok)
	}
	// Section fallback: osd-specific key, then global.
	if v, ok := cfg.Get("osd", "erasure_code_plugin"); !ok || v != "clay" {
		t.Fatalf("fallback: %q %v", v, ok)
	}
	if v, ok := cfg.Get("osd", "osd_max_backfills"); !ok || v != "2" {
		t.Fatalf("osd section: %q %v", v, ok)
	}
	// Inline comments stripped.
	if v, _ := cfg.Get("global", "osd_pool_erasure_code_stripe_unit"); v != "4M" {
		t.Fatalf("inline comment not stripped: %q", v)
	}
	if len(cfg.Sections()) != 2 {
		t.Fatalf("sections: %v", cfg.Sections())
	}
	if len(cfg.Keys("osd")) != 5 {
		t.Fatalf("osd keys: %v", cfg.Keys("osd"))
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"[unterminated\nkey = val",
		"[]\n",
		"just a line without equals\n",
		"= value\n",
	} {
		if _, err := Parse(strings.NewReader(bad)); !errors.Is(err, ErrSyntax) {
			t.Errorf("input %q: err = %v", bad, err)
		}
	}
}

func TestParseSize(t *testing.T) {
	cases := map[string]int64{
		"4096": 4096,
		"4K":   4096,
		"4k":   4096,
		"4M":   4 << 20,
		"64M":  64 << 20,
		"1G":   1 << 30,
		" 2 M": 2 << 20,
	}
	for in, want := range cases {
		got, err := ParseSize(in)
		if err != nil || got != want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "x", "4X4", "M"} {
		if _, err := ParseSize(bad); err == nil {
			t.Errorf("ParseSize(%q) accepted", bad)
		}
	}
}

func TestApplyProfile(t *testing.T) {
	cfg, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	p, err := cfg.ApplyProfile(core.DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	if p.Pool.Plugin != "clay" || p.Pool.K != 9 || p.Pool.M != 3 || p.Pool.D != 11 {
		t.Fatalf("pool: %+v", p.Pool)
	}
	if p.Pool.PGNum != 256 || p.Pool.StripeUnit != 4<<20 {
		t.Fatalf("pg/stripe: %+v", p.Pool)
	}
	if p.Tuning.MaxBackfills != 2 || p.Tuning.MarkOutIntervalSeconds != 300 {
		t.Fatalf("tuning: %+v", p.Tuning)
	}
	if p.Backend.CustomRatios == nil || p.Backend.CustomRatios.KVRatio != 0.70 {
		t.Fatalf("cache ratios: %+v", p.Backend)
	}
}

func TestApplyProfileAutotune(t *testing.T) {
	cfg, _ := Parse(strings.NewReader("[osd]\nbluestore_cache_autotune = true\n"))
	p, err := cfg.ApplyProfile(core.DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	if p.Backend.CacheScheme != core.SchemeAutotune || p.Backend.CustomRatios != nil {
		t.Fatalf("autotune: %+v", p.Backend)
	}
}

func TestApplyProfileRejectsBadValues(t *testing.T) {
	cfg, _ := Parse(strings.NewReader("[global]\nosd_pool_default_pg_num = lots\n"))
	if _, err := cfg.ApplyProfile(core.DefaultProfile()); err == nil {
		t.Fatal("malformed int accepted")
	}
	// A config that produces an invalid profile fails validation.
	cfg, _ = Parse(strings.NewReader("[global]\nerasure_code_k = 0\n"))
	if _, err := cfg.ApplyProfile(core.DefaultProfile()); err == nil {
		t.Fatal("invalid resulting profile accepted")
	}
}

func TestUnknownKeysIgnored(t *testing.T) {
	cfg, _ := Parse(strings.NewReader("[global]\nrgw_frontends = beast port=8080\n"))
	if _, err := cfg.ApplyProfile(core.DefaultProfile()); err != nil {
		t.Fatalf("unknown key should be ignored: %v", err)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/ceph.conf"); err == nil {
		t.Fatal("missing file accepted")
	}
}

// Package cephconf reads Ceph-style INI configuration files and maps the
// options the paper studies (Table 1) onto an experiment Profile. It
// accepts the familiar surface —
//
//	[global]
//	osd_pool_default_pg_num = 256
//	bluestore_cache_kv_ratio = 0.45
//
//	[osd]
//	osd_max_backfills = 1
//
// — so configurations can be expressed the way operators actually write
// them, including '#' and ';' comments, case-insensitive keys, and
// size suffixes (4K, 4M, 64M) for byte-valued options.
package cephconf

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bluestore"
	"repro/internal/core"
)

// ErrSyntax wraps parse failures with line information.
var ErrSyntax = errors.New("cephconf: syntax error")

// Config is a parsed INI file: section -> key -> value. Keys are
// normalized to lowercase with underscores.
type Config struct {
	sections map[string]map[string]string
	order    []string
}

// Parse reads a configuration from r.
func Parse(r io.Reader) (*Config, error) {
	cfg := &Config{sections: map[string]map[string]string{}}
	section := "global"
	scanner := bufio.NewScanner(r)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || line[0] == '#' || line[0] == ';' {
			continue
		}
		if line[0] == '[' {
			end := strings.IndexByte(line, ']')
			if end < 0 {
				return nil, fmt.Errorf("%w: line %d: unterminated section", ErrSyntax, lineNo)
			}
			section = normalizeKey(line[1:end])
			if section == "" {
				return nil, fmt.Errorf("%w: line %d: empty section name", ErrSyntax, lineNo)
			}
			continue
		}
		eq := strings.IndexByte(line, '=')
		if eq < 0 {
			return nil, fmt.Errorf("%w: line %d: expected key = value", ErrSyntax, lineNo)
		}
		key := normalizeKey(line[:eq])
		value := strings.TrimSpace(line[eq+1:])
		if i := strings.IndexAny(value, "#;"); i >= 0 {
			value = strings.TrimSpace(value[:i])
		}
		if key == "" {
			return nil, fmt.Errorf("%w: line %d: empty key", ErrSyntax, lineNo)
		}
		if cfg.sections[section] == nil {
			cfg.sections[section] = map[string]string{}
			cfg.order = append(cfg.order, section)
		}
		cfg.sections[section][key] = value
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// Load parses a configuration file from disk.
func Load(path string) (*Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}

func normalizeKey(s string) string {
	s = strings.TrimSpace(strings.ToLower(s))
	return strings.ReplaceAll(strings.ReplaceAll(s, " ", "_"), "-", "_")
}

// Get looks a key up in a section, falling back to [global].
func (c *Config) Get(section, key string) (string, bool) {
	key = normalizeKey(key)
	if v, ok := c.sections[normalizeKey(section)][key]; ok {
		return v, true
	}
	v, ok := c.sections["global"][key]
	return v, ok
}

// Sections lists sections in first-seen order.
func (c *Config) Sections() []string {
	out := append([]string(nil), c.order...)
	return out
}

// Keys lists a section's keys, sorted.
func (c *Config) Keys(section string) []string {
	m := c.sections[normalizeKey(section)]
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ParseSize parses a byte size with optional K/M/G suffix (binary units,
// as Ceph uses).
func ParseSize(s string) (int64, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	if s == "" {
		return 0, fmt.Errorf("cephconf: empty size")
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'K':
		mult = 1 << 10
		s = s[:len(s)-1]
	case 'M':
		mult = 1 << 20
		s = s[:len(s)-1]
	case 'G':
		mult = 1 << 30
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("cephconf: bad size %q: %w", s, err)
	}
	return v * mult, nil
}

// ApplyProfile overlays the recognized options onto a profile. Unknown
// keys are ignored (Ceph has thousands); recognized keys with malformed
// values error.
func (c *Config) ApplyProfile(p core.Profile) (core.Profile, error) {
	type handler func(val string) error
	intField := func(dst *int) handler {
		return func(val string) error {
			v, err := strconv.Atoi(val)
			if err != nil {
				return err
			}
			*dst = v
			return nil
		}
	}
	floatField := func(dst *float64) handler {
		return func(val string) error {
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return err
			}
			*dst = v
			return nil
		}
	}
	sizeField := func(dst *int64) handler {
		return func(val string) error {
			v, err := ParseSize(val)
			if err != nil {
				return err
			}
			*dst = v
			return nil
		}
	}

	var kvRatio, metaRatio, dataRatio float64 = -1, -1, -1
	autotune := ""

	handlers := map[string]handler{
		"osd_pool_default_pg_num":           intField(&p.Pool.PGNum),
		"osd_pool_erasure_code_stripe_unit": sizeField(&p.Pool.StripeUnit),
		"osd_max_backfills":                 intField(&p.Tuning.MaxBackfills),
		"osd_recovery_max_active":           intField(&p.Tuning.RecoveryMaxActive),
		"mon_osd_down_out_interval":         floatField(&p.Tuning.MarkOutIntervalSeconds),
		"bluestore_cache_kv_ratio":          floatField(&kvRatio),
		"bluestore_cache_meta_ratio":        floatField(&metaRatio),
		"bluestore_cache_data_ratio":        floatField(&dataRatio),
		"bluestore_min_alloc_size":          sizeField(&p.Backend.MinAllocSize),
		"erasure_code_plugin": func(val string) error {
			p.Pool.Plugin = val
			return nil
		},
		"erasure_code_k": intField(&p.Pool.K),
		"erasure_code_m": intField(&p.Pool.M),
		"erasure_code_d": intField(&p.Pool.D),
		"crush_failure_domain": func(val string) error {
			p.Pool.FailureDomain = val
			return nil
		},
		"bluestore_cache_autotune": func(val string) error {
			autotune = val
			return nil
		},
	}
	for key, h := range handlers {
		// osd section wins over global for osd_* keys; everything else
		// reads global directly via Get's fallback.
		if val, ok := c.Get("osd", key); ok {
			if err := h(val); err != nil {
				return p, fmt.Errorf("cephconf: option %s: %w", key, err)
			}
		}
	}
	switch {
	case autotune == "true" || autotune == "1":
		p.Backend.CacheScheme = core.SchemeAutotune
		p.Backend.CustomRatios = nil
	case kvRatio >= 0 || metaRatio >= 0 || dataRatio >= 0:
		ratios := bluestore.CacheConfig{KVRatio: orDefault(kvRatio, 0.45), MetaRatio: orDefault(metaRatio, 0.45), DataRatio: orDefault(dataRatio, 0.10)}
		p.Backend.CacheScheme = ""
		p.Backend.CustomRatios = &ratios
	}
	return p, p.Validate()
}

func orDefault(v, def float64) float64 {
	if v < 0 {
		return def
	}
	return v
}

package gfmat

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gf256"
)

func TestIdentityMul(t *testing.T) {
	id := Identity(4)
	m := FromRows([][]byte{
		{1, 2, 3, 4},
		{5, 6, 7, 8},
		{9, 10, 11, 12},
		{13, 14, 15, 16},
	})
	got := id.Mul(m)
	for i := range m.Data {
		if got.Data[i] != m.Data[i] {
			t.Fatal("I*M != M")
		}
	}
	got = m.Mul(id)
	for i := range m.Data {
		if got.Data[i] != m.Data[i] {
			t.Fatal("M*I != M")
		}
	}
}

func TestMulDimensions(t *testing.T) {
	a := New(2, 3)
	b := New(3, 5)
	c := a.Mul(b)
	if c.Rows != 2 || c.Cols != 5 {
		t.Fatalf("got %dx%d", c.Rows, c.Cols)
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := New(5, 7)
	for i := range m.Data {
		m.Data[i] = byte(rng.Intn(256))
	}
	v := make([]byte, 7)
	for i := range v {
		v[i] = byte(rng.Intn(256))
	}
	col := New(7, 1)
	copy(col.Data, v)
	want := m.Mul(col)
	got := m.MulVec(v)
	for i := 0; i < 5; i++ {
		if got[i] != want.At(i, 0) {
			t.Fatalf("row %d: %#x != %#x", i, got[i], want.At(i, 0))
		}
	}
}

func TestInvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		m := New(n, n)
		for i := range m.Data {
			m.Data[i] = byte(rng.Intn(256))
		}
		inv, err := m.Invert()
		if errors.Is(err, ErrSingular) {
			continue // random singular matrix, fine
		}
		if err != nil {
			t.Fatal(err)
		}
		prod := m.Mul(inv)
		id := Identity(n)
		for i := range id.Data {
			if prod.Data[i] != id.Data[i] {
				t.Fatalf("trial %d: M*M^-1 != I", trial)
			}
		}
	}
}

func TestInvertSingular(t *testing.T) {
	m := FromRows([][]byte{
		{1, 2},
		{1, 2},
	})
	if _, err := m.Invert(); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestInvertIdentity(t *testing.T) {
	id := Identity(6)
	inv, err := id.Invert()
	if err != nil {
		t.Fatal(err)
	}
	for i := range id.Data {
		if inv.Data[i] != id.Data[i] {
			t.Fatal("I^-1 != I")
		}
	}
}

func TestSubMatrix(t *testing.T) {
	m := FromRows([][]byte{{1, 2}, {3, 4}, {5, 6}})
	s := m.SubMatrix([]int{2, 0})
	if s.At(0, 0) != 5 || s.At(0, 1) != 6 || s.At(1, 0) != 1 || s.At(1, 1) != 2 {
		t.Fatalf("submatrix wrong: %v", s.Data)
	}
}

func TestVandermonde(t *testing.T) {
	v := Vandermonde(4, 3)
	// Row i is [1, i, i^2].
	for i := 0; i < 4; i++ {
		if v.At(i, 0) != 1 {
			t.Fatalf("row %d col 0 != 1", i)
		}
		if v.At(i, 1) != byte(i) {
			t.Fatalf("row %d col 1 != %d", i, i)
		}
		if v.At(i, 2) != gf256.Mul(byte(i), byte(i)) {
			t.Fatalf("row %d col 2 wrong", i)
		}
	}
}

// mdsProperty checks that every combination of k rows of an n x k generator
// matrix is invertible (the MDS property that makes any k chunks sufficient
// to decode).
func mdsProperty(t *testing.T, g *Matrix, n, k int) {
	t.Helper()
	idx := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			sub := g.SubMatrix(idx)
			if _, err := sub.Invert(); err != nil {
				t.Fatalf("rows %v not invertible: %v", idx, err)
			}
			return
		}
		for i := start; i < n; i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
}

func TestSystematicVandermondeIsSystematic(t *testing.T) {
	g := SystematicVandermonde(9, 6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			want := byte(0)
			if i == j {
				want = 1
			}
			if g.At(i, j) != want {
				t.Fatalf("top block not identity at (%d,%d)", i, j)
			}
		}
	}
}

func TestSystematicVandermondeMDS(t *testing.T) {
	mdsProperty(t, SystematicVandermonde(8, 5), 8, 5)
	mdsProperty(t, SystematicVandermonde(6, 3), 6, 3)
}

func TestCauchyIsSystematic(t *testing.T) {
	g := Cauchy(12, 9)
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			want := byte(0)
			if i == j {
				want = 1
			}
			if g.At(i, j) != want {
				t.Fatalf("top block not identity at (%d,%d)", i, j)
			}
		}
	}
}

func TestCauchyMDS(t *testing.T) {
	mdsProperty(t, Cauchy(8, 5), 8, 5)
	mdsProperty(t, Cauchy(7, 4), 7, 4)
}

func TestMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := New(3, 4), New(4, 2), New(2, 5)
		for _, m := range []*Matrix{a, b, c} {
			for i := range m.Data {
				m.Data[i] = byte(rng.Intn(256))
			}
		}
		l := a.Mul(b).Mul(c)
		r := a.Mul(b.Mul(c))
		for i := range l.Data {
			if l.Data[i] != r.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkInvert12x12(b *testing.B) {
	g := Cauchy(24, 12)
	rows := []int{0, 2, 3, 5, 7, 8, 13, 15, 16, 19, 21, 23}
	sub := g.SubMatrix(rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sub.Invert(); err != nil {
			b.Fatal(err)
		}
	}
}

// Package gfmat provides dense matrices over GF(2^8) and the handful of
// linear-algebra operations erasure coding needs: multiplication, Gaussian
// inversion, and the standard generator-matrix constructions (systematic
// Vandermonde and Cauchy).
package gfmat

import (
	"errors"
	"fmt"

	"repro/internal/gf256"
)

// ErrSingular is returned when a matrix that must be invertible is not.
// For MDS generator matrices this indicates a caller bug (e.g. more
// erasures than parities).
var ErrSingular = errors.New("gfmat: matrix is singular")

// Matrix is a dense row-major matrix over GF(2^8).
type Matrix struct {
	Rows, Cols int
	Data       []byte // len == Rows*Cols
}

// New returns a zero matrix with the given dimensions.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("gfmat: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]byte, rows*cols)}
}

// FromRows builds a matrix from row slices, which must all have equal length.
func FromRows(rows [][]byte) *Matrix {
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("gfmat: ragged rows")
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) byte { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v byte) { m.Data[r*m.Cols+c] = v }

// Row returns a view (not a copy) of row r.
func (m *Matrix) Row(r int) []byte { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Mul returns m * other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("gfmat: dimension mismatch %dx%d * %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	out := New(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		orow := out.Row(i)
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			gf256.MulAddSlice(a, other.Row(k), orow)
		}
	}
	return out
}

// MulVec computes m * v for a column vector v (len(v) == m.Cols).
func (m *Matrix) MulVec(v []byte) []byte {
	if len(v) != m.Cols {
		panic("gfmat: vector length mismatch")
	}
	out := make([]byte, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var acc byte
		row := m.Row(i)
		for j, x := range v {
			acc ^= gf256.Mul(row[j], x)
		}
		out[i] = acc
	}
	return out
}

// SubMatrix returns the matrix restricted to the given rows.
func (m *Matrix) SubMatrix(rows []int) *Matrix {
	out := New(len(rows), m.Cols)
	for i, r := range rows {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// Invert returns the inverse of a square matrix using Gauss-Jordan
// elimination with partial pivoting, or ErrSingular.
func (m *Matrix) Invert() (*Matrix, error) {
	if m.Rows != m.Cols {
		panic("gfmat: inverting non-square matrix")
	}
	n := m.Rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Find a pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if a.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(a, pivot, col)
			swapRows(inv, pivot, col)
		}
		// Scale pivot row to make the pivot 1.
		p := a.At(col, col)
		if p != 1 {
			ip := gf256.Inv(p)
			gf256.MulSlice(ip, a.Row(col), a.Row(col))
			gf256.MulSlice(ip, inv.Row(col), inv.Row(col))
		}
		// Eliminate the column from every other row.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			gf256.MulAddSlice(f, a.Row(col), a.Row(r))
			gf256.MulAddSlice(f, inv.Row(col), inv.Row(r))
		}
	}
	return inv, nil
}

func swapRows(m *Matrix, i, j int) {
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Vandermonde returns the rows x cols Vandermonde matrix V[i][j] = i^j
// (with 0^0 = 1), the classic Reed-Solomon starting point.
func Vandermonde(rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, gf256.Pow(byte(i), j))
		}
	}
	return m
}

// SystematicVandermonde returns an n x k generator matrix whose top k rows
// are the identity, obtained by Gaussian elimination on a Vandermonde
// matrix. Any k rows of the result are linearly independent, which is the
// MDS property Reed-Solomon relies on.
func SystematicVandermonde(n, k int) *Matrix {
	if n > 256 {
		panic("gfmat: n must be <= 256 for GF(2^8) Vandermonde")
	}
	v := Vandermonde(n, k)
	// Column-reduce so the top k x k block becomes the identity. We apply
	// elementary column operations, which preserve the "any k rows are
	// independent" property.
	for col := 0; col < k; col++ {
		// Ensure v[col][col] != 0 by swapping columns if needed.
		if v.At(col, col) == 0 {
			swapped := false
			for c2 := col + 1; c2 < k; c2++ {
				if v.At(col, c2) != 0 {
					swapCols(v, col, c2)
					swapped = true
					break
				}
			}
			if !swapped {
				panic("gfmat: vandermonde reduction failed") // cannot happen for distinct points
			}
		}
		p := v.At(col, col)
		if p != 1 {
			ip := gf256.Inv(p)
			scaleCol(v, col, ip)
		}
		for c2 := 0; c2 < k; c2++ {
			if c2 == col {
				continue
			}
			f := v.At(col, c2)
			if f == 0 {
				continue
			}
			mulAddCol(v, col, c2, f)
		}
	}
	return v
}

func swapCols(m *Matrix, a, b int) {
	for r := 0; r < m.Rows; r++ {
		va, vb := m.At(r, a), m.At(r, b)
		m.Set(r, a, vb)
		m.Set(r, b, va)
	}
}

func scaleCol(m *Matrix, c int, f byte) {
	for r := 0; r < m.Rows; r++ {
		m.Set(r, c, gf256.Mul(m.At(r, c), f))
	}
}

// mulAddCol sets col dst ^= f * col src.
func mulAddCol(m *Matrix, src, dst int, f byte) {
	for r := 0; r < m.Rows; r++ {
		m.Set(r, dst, m.At(r, dst)^gf256.Mul(f, m.At(r, src)))
	}
}

// Cauchy returns an n x k systematic generator matrix whose parity block is
// a Cauchy matrix 1/(x_i + y_j) with x_i = i+k and y_j = j. Every square
// submatrix of a Cauchy matrix is invertible, giving the MDS property
// directly (this mirrors Jerasure's cauchy_orig technique).
func Cauchy(n, k int) *Matrix {
	if n > 256 {
		panic("gfmat: n must be <= 256 for GF(2^8) Cauchy")
	}
	m := New(n, k)
	for i := 0; i < k; i++ {
		m.Set(i, i, 1)
	}
	for i := k; i < n; i++ {
		for j := 0; j < k; j++ {
			m.Set(i, j, gf256.Inv(byte(i)^byte(j)))
		}
	}
	return m
}

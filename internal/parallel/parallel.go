// Package parallel provides the process-wide worker budgets and a small
// fan-out helper, backed by a persistent worker pool, shared by the
// coding kernels and the experiment runner.
//
// Three budgets live here. Workers (ECFAULT_WORKERS, or the -workers
// flags in cmd/ecbench and cmd/ectuner) governs coarse fan-out:
// experiment cells, tuner grid search, durability Monte Carlo.
// KernelWorkers (ECFAULT_KERNEL_WORKERS) governs the erasure-kernel
// layer — stripe chunking in kernel.Program and the parallel
// strided/segment entries in gf256 — and falls back to Workers when
// unset, so pinning ECFAULT_WORKERS=1 still serializes the whole
// process. SimWorkers (ECFAULT_SIM_WORKERS) governs the discrete-event
// engine's time-partitioned parallel execution and defaults to 1 (the
// serial engine). A budget of 1 makes every helper run inline, which
// keeps single-core machines and tests deterministic by default.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// override holds a programmatic worker-count override; 0 means none.
var override atomic.Int32

// kernelOverride holds the programmatic kernel-worker override; 0 means
// none.
var kernelOverride atomic.Int32

// simOverride holds the programmatic simulation-engine worker override;
// 0 means none.
var simOverride atomic.Int32

// envWorkers caches the ECFAULT_WORKERS parse. Read once: the environment
// is not expected to change mid-process.
var envWorkers = sync.OnceValue(func() int {
	return envCount("ECFAULT_WORKERS")
})

// envKernelWorkers caches the ECFAULT_KERNEL_WORKERS parse.
var envKernelWorkers = sync.OnceValue(func() int {
	return envCount("ECFAULT_KERNEL_WORKERS")
})

// envSimWorkers caches the ECFAULT_SIM_WORKERS parse.
var envSimWorkers = sync.OnceValue(func() int {
	return envCount("ECFAULT_SIM_WORKERS")
})

func envCount(key string) int {
	v := os.Getenv(key)
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return 0
	}
	return n
}

// Workers returns the current worker budget: the programmatic override if
// set, else ECFAULT_WORKERS if set and valid, else runtime.NumCPU.
func Workers() int {
	if n := override.Load(); n > 0 {
		return int(n)
	}
	if n := envWorkers(); n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// SetWorkers overrides the worker budget process-wide. n <= 0 removes the
// override. It returns the previous override (0 if none) so callers can
// restore it.
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(override.Swap(int32(n)))
}

// KernelWorkers returns the kernel-layer worker budget: the programmatic
// override if set, else ECFAULT_KERNEL_WORKERS if set and valid, else
// Workers. The kernel budget exists so benchmarks and deployments can pin
// the codec fan-out (ECFAULT_KERNEL_WORKERS=1 for a serial-kernel A/B)
// without also serializing experiment cells, and vice versa.
func KernelWorkers() int {
	if n := kernelOverride.Load(); n > 0 {
		return int(n)
	}
	if n := envKernelWorkers(); n > 0 {
		return n
	}
	return Workers()
}

// SetKernelWorkers overrides the kernel-layer worker budget process-wide.
// n <= 0 removes the override. It returns the previous override (0 if
// none) so callers can restore it.
func SetKernelWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(kernelOverride.Swap(int32(n)))
}

// SimWorkers returns the discrete-event engine's worker budget: the
// programmatic override if set, else ECFAULT_SIM_WORKERS if set and
// valid, else 1. Unlike Workers and KernelWorkers this budget does NOT
// fall back to NumCPU: 1 keeps the engine on the untouched serial path,
// and the time-partitioned parallel engine (simclock.RunParallel) is
// byte-identical but opt-in, so campaigns choose between cell-level and
// intra-run parallelism explicitly.
func SimWorkers() int {
	if n := simOverride.Load(); n > 0 {
		return int(n)
	}
	if n := envSimWorkers(); n > 0 {
		return n
	}
	return 1
}

// SetSimWorkers overrides the simulation-engine worker budget
// process-wide. n <= 0 removes the override. It returns the previous
// override (0 if none) so callers can restore it.
func SetSimWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(simOverride.Swap(int32(n)))
}

// The worker pool. ForEach used to spawn fresh goroutines per call; for
// the experiment layer (tasks of milliseconds to seconds) that was in the
// noise, but the kernel layer dispatches sub-100µs fan-outs where
// goroutine start/stop and the scheduler churn of parking new stacks cost
// as much as the work. The pool starts workers lazily, caps them at
// poolCap, and parks them on a channel receive between batches; a batch
// handoff is one buffered-channel send to an already-running goroutine.
//
// The caller always participates in its own batch and claims indices
// through the batch's atomic cursor, so completion never depends on a
// pool worker picking the batch up: if every worker is busy (or the
// handoff queue is full), the caller simply drains the batch itself.
// That property makes nested ForEach calls deadlock-free by
// construction — a worker blocked in an inner ForEach holds no resource
// an outer batch needs.

// poolCap bounds the number of persistent pool workers. It exceeds
// NumCPU so that forced worker counts in tests (race-mode identity runs
// on single-core machines) still get real goroutines.
var poolCap = int32(max(16, runtime.NumCPU()))

var (
	// workCh hands batches to parked workers. A full queue is not an
	// error: the dispatcher drops the helper request and the batch is
	// drained by its caller and whichever workers already hold it.
	workCh = make(chan *batch, 256)

	// poolSize counts started workers (never shrinks; workers park
	// between batches rather than exiting).
	poolSize atomic.Int32
)

// batch is one ForEach invocation: a work-stealing cursor over [0, n)
// plus a completion latch. Workers that pick a batch up after it has
// completed see an exhausted cursor and move on.
type batch struct {
	fn       func(int)
	n        int32
	next     atomic.Int32 // next index to claim
	done     atomic.Int32 // indices finished (or abandoned by panic)
	wake     chan struct{}
	panicked atomic.Value
}

// run claims and executes indices until the cursor is exhausted. A panic
// in fn is recorded (first wins) and swallowed here — the caller
// re-raises it after the batch drains; pool workers survive. The
// panicking claimer also drains the remaining cursor, cancelling work
// that has not started yet: the batch must reach its completion latch
// even when no other goroutine ever picks it up.
func (b *batch) run() {
	defer func() {
		if r := recover(); r != nil {
			b.panicked.CompareAndSwap(nil, r)
			b.finish() // the claimed index that panicked
			for {
				i := b.next.Add(1) - 1
				if i >= b.n {
					return
				}
				b.finish()
			}
		}
	}()
	for {
		i := b.next.Add(1) - 1
		if i >= b.n {
			return
		}
		b.fn(int(i))
		b.finish()
	}
}

func (b *batch) finish() {
	if b.done.Add(1) == b.n {
		close(b.wake)
	}
}

// worker is the persistent pool loop: park on the queue, run a batch,
// repeat. batch.run recovers panics, so a worker never dies.
func worker() {
	for b := range workCh {
		b.run()
	}
}

// dispatch enqueues up to helpers pool requests for b, starting new
// workers while the pool is below its cap. Requests beyond the queue's
// capacity are dropped, not blocked on: the batch completes through its
// caller regardless.
func dispatch(b *batch, helpers int) {
	for h := 0; h < helpers; h++ {
		select {
		case workCh <- b:
			if n := poolSize.Load(); n < poolCap && poolSize.CompareAndSwap(n, n+1) {
				go worker()
			}
		default:
			return
		}
	}
}

// ForEach runs fn(i) for i in [0, n) on up to workers goroutines (the
// caller plus workers-1 pool workers) and returns when all calls have
// finished. workers <= 1 (or n <= 1) runs everything inline on the
// calling goroutine, in order. Panics in fn propagate to the caller after
// the batch drains.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	b := &batch{fn: fn, n: int32(n), wake: make(chan struct{})}
	dispatch(b, workers-1)
	b.run()
	<-b.wake
	if r := b.panicked.Load(); r != nil {
		panic(r)
	}
}

// PoolWorkers reports how many persistent pool workers have been started
// (diagnostics and the pool-reuse test).
func PoolWorkers() int { return int(poolSize.Load()) }

// Package parallel provides the process-wide worker budget and a small
// fan-out helper shared by the coding kernels and the experiment runner.
//
// The budget defaults to runtime.NumCPU and can be overridden by the
// ECFAULT_WORKERS environment variable or programmatically (command-line
// flags in cmd/ecbench and cmd/ectuner route here). A budget of 1 makes
// every helper run inline, which keeps single-core machines and tests
// deterministic by default.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// override holds a programmatic worker-count override; 0 means none.
var override atomic.Int32

// envWorkers caches the ECFAULT_WORKERS parse. Read once: the environment
// is not expected to change mid-process.
var envWorkers = sync.OnceValue(func() int {
	v := os.Getenv("ECFAULT_WORKERS")
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return 0
	}
	return n
})

// Workers returns the current worker budget: the programmatic override if
// set, else ECFAULT_WORKERS if set and valid, else runtime.NumCPU.
func Workers() int {
	if n := override.Load(); n > 0 {
		return int(n)
	}
	if n := envWorkers(); n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// SetWorkers overrides the worker budget process-wide. n <= 0 removes the
// override. It returns the previous override (0 if none) so callers can
// restore it.
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(override.Swap(int32(n)))
}

// ForEach runs fn(i) for i in [0, n) on up to workers goroutines and
// returns when all calls have finished. workers <= 1 (or n <= 1) runs
// everything inline on the calling goroutine. Panics in fn propagate to
// the caller after all workers stop.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value
	)
	body := func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				panicked.CompareAndSwap(nil, r)
			}
		}()
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go body()
	}
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(r)
	}
}

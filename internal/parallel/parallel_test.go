package parallel

import (
	"sync/atomic"
	"testing"
)

func TestWorkersOverridePrecedence(t *testing.T) {
	prev := SetWorkers(3)
	defer SetWorkers(prev)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers with override = %d, want 3", got)
	}
	SetWorkers(0)
	if got := Workers(); got < 1 {
		t.Fatalf("Workers without override = %d, want >= 1", got)
	}
}

func TestSetWorkersReturnsPrevious(t *testing.T) {
	prev := SetWorkers(5)
	defer SetWorkers(prev)
	if got := SetWorkers(7); got != 5 {
		t.Fatalf("SetWorkers returned previous %d, want 5", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 1000
		var counts [n]atomic.Int32
		ForEach(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachInlineWhenSerial(t *testing.T) {
	// workers <= 1 must run on the calling goroutine in order; plain
	// (non-atomic) state is the witness under -race.
	got := make([]int, 0, 5)
	ForEach(5, 1, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("serial order broken: %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("ran %d of 5", len(got))
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	ran := false
	ForEach(0, 4, func(int) { ran = true })
	ForEach(-3, 4, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for n <= 0")
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	ForEach(100, 4, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
}

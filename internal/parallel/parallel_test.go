package parallel

import (
	"sync/atomic"
	"testing"
)

func TestWorkersOverridePrecedence(t *testing.T) {
	prev := SetWorkers(3)
	defer SetWorkers(prev)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers with override = %d, want 3", got)
	}
	SetWorkers(0)
	if got := Workers(); got < 1 {
		t.Fatalf("Workers without override = %d, want >= 1", got)
	}
}

func TestSetWorkersReturnsPrevious(t *testing.T) {
	prev := SetWorkers(5)
	defer SetWorkers(prev)
	if got := SetWorkers(7); got != 5 {
		t.Fatalf("SetWorkers returned previous %d, want 5", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 1000
		var counts [n]atomic.Int32
		ForEach(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachInlineWhenSerial(t *testing.T) {
	// workers <= 1 must run on the calling goroutine in order; plain
	// (non-atomic) state is the witness under -race.
	got := make([]int, 0, 5)
	ForEach(5, 1, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("serial order broken: %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("ran %d of 5", len(got))
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	ran := false
	ForEach(0, 4, func(int) { ran = true })
	ForEach(-3, 4, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for n <= 0")
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	ForEach(100, 4, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
}

func TestKernelWorkersPrecedence(t *testing.T) {
	prevW := SetWorkers(3)
	prevK := SetKernelWorkers(0)
	defer func() { SetWorkers(prevW); SetKernelWorkers(prevK) }()
	// No kernel override: falls back to Workers.
	if got := KernelWorkers(); got != 3 {
		t.Fatalf("KernelWorkers fallback = %d, want Workers()=3", got)
	}
	// Kernel override wins without disturbing Workers.
	SetKernelWorkers(5)
	if got := KernelWorkers(); got != 5 {
		t.Fatalf("KernelWorkers with override = %d, want 5", got)
	}
	if got := Workers(); got != 3 {
		t.Fatalf("Workers disturbed by kernel override: %d, want 3", got)
	}
	if got := SetKernelWorkers(0); got != 5 {
		t.Fatalf("SetKernelWorkers returned previous %d, want 5", got)
	}
}

// TestPoolReuse checks the pool is persistent: many fan-outs reuse the
// same parked workers instead of spawning per call, and the pool never
// exceeds its cap.
func TestPoolReuse(t *testing.T) {
	// Warm the pool.
	ForEach(8, 4, func(int) {})
	started := PoolWorkers()
	if started < 1 {
		t.Fatalf("no pool workers started after a parallel ForEach")
	}
	var n atomic.Int32
	for rep := 0; rep < 200; rep++ {
		ForEach(16, 4, func(int) { n.Add(1) })
	}
	if got := n.Load(); got != 200*16 {
		t.Fatalf("ran %d of %d indices", got, 200*16)
	}
	if grown := PoolWorkers() - started; grown > int(poolCap) {
		t.Fatalf("pool grew past cap: %d workers after reuse loop (cap %d)", PoolWorkers(), poolCap)
	}
	if PoolWorkers() > int(poolCap) {
		t.Fatalf("pool size %d exceeds cap %d", PoolWorkers(), poolCap)
	}
}

// TestPoolSurvivesPanic checks a panic in one batch neither kills pool
// workers nor poisons later batches: full coverage still holds after the
// panic propagated.
func TestPoolSurvivesPanic(t *testing.T) {
	func() {
		defer func() { recover() }()
		ForEach(64, 8, func(i int) {
			if i%3 == 0 {
				panic("kaboom")
			}
		})
	}()
	const n = 500
	var counts [n]atomic.Int32
	ForEach(n, 8, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("after panic: index %d ran %d times", i, c)
		}
	}
}

// TestForEachNested checks nested fan-out completes (the caller always
// participates in its own batch, so completion never depends on pool
// pickup even when every worker is busy).
func TestForEachNested(t *testing.T) {
	var n atomic.Int32
	ForEach(8, 8, func(int) {
		ForEach(8, 8, func(int) { n.Add(1) })
	})
	if got := n.Load(); got != 64 {
		t.Fatalf("nested ForEach ran %d of 64", got)
	}
}

package simclock

import (
	"testing"
	"time"
)

// TestHeapOrderingStress drives the 4-ary heap through a few thousand
// pushes and pops with adversarial (colliding, decreasing-then-increasing)
// times and checks the pop sequence is the exact (at, seq) total order:
// times non-decreasing, and same-instant events in scheduling order.
func TestHeapOrderingStress(t *testing.T) {
	s := New()
	type stamp struct {
		at  Time
		seq int
	}
	var fired []stamp
	// A deterministic LCG; times collide heavily so the seq tiebreak is
	// exercised on every level of the heap.
	state := uint64(42)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}
	const n = 5000
	for i := 0; i < n; i++ {
		i := i
		at := Time(next()%97) * time.Millisecond
		s.At(at, func() { fired = append(fired, stamp{at, i}) })
	}
	// Nested scheduling mid-run: events landing between pending ones.
	s.At(40*time.Millisecond, func() {
		for j := 0; j < 100; j++ {
			j := j
			at := s.Now() + Time(next()%50)*time.Millisecond
			s.At(at, func() { fired = append(fired, stamp{at, n + j}) })
		}
	})
	s.Run()
	if len(fired) != n+100 {
		t.Fatalf("fired %d events, want %d", len(fired), n+100)
	}
	for i := 1; i < len(fired); i++ {
		a, b := fired[i-1], fired[i]
		if b.at < a.at {
			t.Fatalf("time went backwards at %d: %v after %v", i, b.at, a.at)
		}
		if b.at == a.at && b.seq < a.seq {
			t.Fatalf("same-instant events out of scheduling order at %d: seq %d after %d", i, b.seq, a.seq)
		}
	}
}

// TestMixedSchedulingSameInstant checks the determinism contract across
// the different scheduling entry points: At, After, AtArg and AfterArg
// all consume one sequence number, so same-instant events fire in call
// order no matter which API scheduled them.
func TestMixedSchedulingSameInstant(t *testing.T) {
	s := New()
	var order []int
	rec := func(a any) { order = append(order, *a.(*int)) }
	vals := [6]int{0, 1, 2, 3, 4, 5}
	s.At(time.Second, func() { order = append(order, vals[0]) })
	s.AtArg(time.Second, rec, &vals[1])
	s.After(time.Second, func() { order = append(order, vals[2]) })
	s.AfterArg(time.Second, rec, &vals[3])
	s.At(time.Second, func() { order = append(order, vals[4]) })
	s.AtArg(time.Second, rec, &vals[5])
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("mixed-API same-instant order = %v", order)
		}
	}
}

// TestQueueRingWraparound cycles a queue through enough submit/drain
// rounds that the waiting ring's head wraps past its capacity several
// times, and grows while wrapped. Completion order must stay FIFO and the
// stats must match the closed-form values.
func TestQueueRingWraparound(t *testing.T) {
	s := New()
	q := s.NewQueue(1)
	var finish []int
	const rounds, burst = 7, 5 // 5 > initial ring of 8 once in flight wraps
	id := 0
	for r := 0; r < rounds; r++ {
		at := Time(r) * 100 * time.Second
		for b := 0; b < burst; b++ {
			id++
			n := id
			s.At(at, func() {
				q.Submit(time.Second, func() { finish = append(finish, n) })
			})
		}
	}
	s.Run()
	if len(finish) != rounds*burst {
		t.Fatalf("served %d jobs, want %d", len(finish), rounds*burst)
	}
	for i, v := range finish {
		if v != i+1 {
			t.Fatalf("jobs completed out of FIFO order: %v", finish)
		}
	}
	if q.JobsServed != rounds*burst {
		t.Fatalf("JobsServed = %d", q.JobsServed)
	}
	// Each round: job i of the burst waits i seconds → 0+1+2+3+4.
	want := Time(rounds*(0+1+2+3+4)) * time.Second
	if q.TotalWaiting() != want {
		t.Fatalf("TotalWaiting = %v, want %v", q.TotalWaiting(), want)
	}
	if q.BusyTime != Time(rounds*burst)*time.Second {
		t.Fatalf("BusyTime = %v", q.BusyTime)
	}
}

// TestQueueRingGrowthWhileWrapped forces growWait to fire when the ring's
// live region straddles the wrap point, which is the case the copy loop
// has to un-rotate.
func TestQueueRingGrowthWhileWrapped(t *testing.T) {
	s := New()
	q := s.NewQueue(1)
	var finish []int
	submit := func(n int) {
		q.Submit(time.Second, func() { finish = append(finish, n) })
	}
	// Fill past the initial ring (8), drain a few to advance head, then
	// overfill so growth happens with head > 0.
	for i := 1; i <= 9; i++ {
		submit(i)
	}
	s.At(4*time.Second, func() { // 4 served, head advanced
		for i := 10; i <= 22; i++ {
			submit(i)
		}
	})
	s.Run()
	for i, v := range finish {
		if v != i+1 {
			t.Fatalf("order after wrapped growth: %v", finish)
		}
	}
	if len(finish) != 22 {
		t.Fatalf("served %d", len(finish))
	}
}

// TestSemaphoreFIFOWraparound checks grant order across repeated
// acquire/release cycles that wrap and grow the waiter ring.
func TestSemaphoreFIFOWraparound(t *testing.T) {
	s := New()
	sem := s.NewSemaphore(2)
	var grants []int
	for i := 1; i <= 25; i++ {
		n := i
		sem.Acquire(func() { grants = append(grants, n) })
	}
	if sem.Held() != 2 || sem.Waiting() != 23 {
		t.Fatalf("held=%d waiting=%d", sem.Held(), sem.Waiting())
	}
	for i := 0; i < 23; i++ {
		sem.Release()
	}
	if sem.Waiting() != 0 || sem.Held() != 2 {
		t.Fatalf("after drain: held=%d waiting=%d", sem.Held(), sem.Waiting())
	}
	sem.Release()
	sem.Release()
	if sem.Held() != 0 {
		t.Fatalf("held = %d", sem.Held())
	}
	for i, v := range grants {
		if v != i+1 {
			t.Fatalf("grants out of FIFO order: %v", grants)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Acquire did not panic")
		}
	}()
	sem.Release()
}

// TestArgVariantsDeliverArg checks the fixed-arg entry points pass their
// argument through untouched.
func TestArgVariantsDeliverArg(t *testing.T) {
	s := New()
	q := s.NewQueue(1)
	type payload struct{ hits int }
	p := &payload{}
	bump := func(a any) { a.(*payload).hits++ }
	s.AtArg(time.Second, bump, p)
	s.AfterArg(2*time.Second, bump, p)
	q.SubmitArg(time.Second, bump, p)
	q.SubmitArg(time.Second, nil, nil) // nil completion is allowed
	s.Run()
	if p.hits != 3 {
		t.Fatalf("hits = %d", p.hits)
	}
}

// TestSteadyStateAllocFree verifies the hot path stays allocation-free
// once the heap slice, ring and job freelist are warm: scheduling through
// the *Arg variants and running to empty must not allocate.
func TestSteadyStateAllocFree(t *testing.T) {
	s := New()
	q := s.NewQueue(2)
	var hits int
	bump := func(any) { hits++ }
	load := func() {
		base := s.Now()
		for i := 0; i < 32; i++ {
			s.AtArg(base+Time(i)*time.Millisecond, bump, nil)
			q.SubmitArg(time.Millisecond, bump, nil)
		}
		s.Run()
	}
	load() // warm the heap capacity, ring and freelist
	allocs := testing.AllocsPerRun(10, load)
	if allocs != 0 {
		t.Fatalf("steady-state run allocated %.1f times per cycle", allocs)
	}
}

package simclock

import (
	"testing"
	"time"
)

func TestSemaphoreImmediateGrant(t *testing.T) {
	s := New()
	sem := s.NewSemaphore(2)
	granted := 0
	sem.Acquire(func() { granted++ })
	sem.Acquire(func() { granted++ })
	if granted != 2 || sem.Held() != 2 {
		t.Fatalf("granted=%d held=%d", granted, sem.Held())
	}
	sem.Acquire(func() { granted++ })
	if granted != 2 || sem.Waiting() != 1 {
		t.Fatalf("third acquire should wait: granted=%d waiting=%d", granted, sem.Waiting())
	}
	sem.Release()
	if granted != 3 || sem.Held() != 2 {
		t.Fatalf("release should grant the waiter: granted=%d held=%d", granted, sem.Held())
	}
}

func TestSemaphoreFIFO(t *testing.T) {
	s := New()
	sem := s.NewSemaphore(1)
	var order []int
	sem.Acquire(func() {})
	for i := 1; i <= 3; i++ {
		i := i
		sem.Acquire(func() { order = append(order, i) })
	}
	for range 3 {
		sem.Release()
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestSemaphoreReleaseWithoutAcquirePanics(t *testing.T) {
	s := New()
	sem := s.NewSemaphore(1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	sem.Release()
}

func TestSemaphoreWithSimEvents(t *testing.T) {
	// Two "PGs" needing the same resource: the second starts only after
	// the first releases at t=10s.
	s := New()
	sem := s.NewSemaphore(1)
	var secondStart Time
	sem.Acquire(func() {
		s.After(10*time.Second, func() { sem.Release() })
	})
	sem.Acquire(func() { secondStart = s.Now() })
	s.Run()
	if secondStart != 10*time.Second {
		t.Fatalf("second start = %v", secondStart)
	}
}

func TestSemaphoreCapacityValidation(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.NewSemaphore(0)
}

// TestSemaphoreOrderedAcquisitionNoDeadlock models the PG reservation
// pattern: many tasks acquire several semaphores in a global order; all
// must eventually run.
func TestSemaphoreOrderedAcquisitionNoDeadlock(t *testing.T) {
	s := New()
	sems := make([]*Semaphore, 6)
	for i := range sems {
		sems[i] = s.NewSemaphore(1)
	}
	completed := 0
	for task := 0; task < 30; task++ {
		needs := []int{task % 6, (task + 2) % 6, (task + 4) % 6}
		// Sort: global acquisition order.
		for i := 0; i < len(needs); i++ {
			for j := i + 1; j < len(needs); j++ {
				if needs[j] < needs[i] {
					needs[i], needs[j] = needs[j], needs[i]
				}
			}
		}
		var acquire func(i int)
		acquire = func(i int) {
			if i == len(needs) {
				s.After(time.Second, func() {
					for j := len(needs) - 1; j >= 0; j-- {
						sems[needs[j]].Release()
					}
					completed++
				})
				return
			}
			sems[needs[i]].Acquire(func() { acquire(i + 1) })
		}
		acquire(0)
	}
	s.Run()
	if completed != 30 {
		t.Fatalf("completed = %d of 30 (deadlock?)", completed)
	}
}

// Package simclock is a small deterministic discrete-event simulation
// engine. The cluster simulator uses it to account for the time cost of
// heartbeats, peering, disk I/O, network transfers and decode CPU without
// running in real time.
//
// Events scheduled for the same instant fire in scheduling order, making
// runs fully reproducible.
package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is simulated time since the start of the run.
type Time = time.Duration

// Sim is a discrete-event simulator. It is not safe for concurrent use;
// everything runs on the caller's goroutine inside Run.
type Sim struct {
	now    Time
	events eventHeap
	seq    uint64
}

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// New returns a simulator at time zero.
func New() *Sim { return &Sim{} }

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// At schedules fn at absolute time t, which must not be in the past.
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("simclock: scheduling into the past (%v < %v)", t, s.now))
	}
	s.seq++
	heap.Push(&s.events, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d from now. Negative d is treated as zero.
func (s *Sim) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now+d, fn)
}

// Run processes events until none remain, returning the final time.
func (s *Sim) Run() Time {
	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		e.fn()
	}
	return s.now
}

// RunUntil processes events with time <= t, then sets the clock to t.
func (s *Sim) RunUntil(t Time) {
	for s.events.Len() > 0 && s.events[0].at <= t {
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		e.fn()
	}
	if t > s.now {
		s.now = t
	}
}

// Pending reports the number of queued events.
func (s *Sim) Pending() int { return s.events.Len() }

// Queue is a FIFO service center with a fixed number of parallel servers.
// Jobs are submitted with a service duration; each occupies one server for
// that duration, then its completion callback fires.
//
// Disks, NICs and per-OSD recovery/CPU slots are all modeled as Queues.
type Queue struct {
	sim     *Sim
	servers int
	busy    int
	waiting []queuedJob

	// Stats.
	JobsServed   int
	BusyTime     Time // total server-occupied duration
	lastChange   Time
	totalWaiting Time
}

type queuedJob struct {
	service Time
	done    func()
	queued  Time
}

// NewQueue creates a service center with the given parallelism (>= 1).
func (s *Sim) NewQueue(servers int) *Queue {
	if servers < 1 {
		panic("simclock: queue needs at least one server")
	}
	return &Queue{sim: s, servers: servers}
}

// Submit enqueues a job with the given service time; done (may be nil)
// fires at completion.
func (q *Queue) Submit(service Time, done func()) {
	if service < 0 {
		service = 0
	}
	if q.busy < q.servers {
		q.start(service, done)
		return
	}
	q.waiting = append(q.waiting, queuedJob{service: service, done: done, queued: q.sim.Now()})
}

func (q *Queue) start(service Time, done func()) {
	q.busy++
	q.BusyTime += service
	q.sim.After(service, func() {
		q.busy--
		q.JobsServed++
		if len(q.waiting) > 0 {
			j := q.waiting[0]
			q.waiting = q.waiting[1:]
			q.totalWaiting += q.sim.Now() - j.queued
			q.start(j.service, j.done)
		}
		if done != nil {
			done()
		}
	})
}

// InFlight reports currently executing jobs.
func (q *Queue) InFlight() int { return q.busy }

// QueueLen reports jobs waiting for a server.
func (q *Queue) QueueLen() int { return len(q.waiting) }

// TotalWaiting is the cumulative time jobs spent queued before service.
func (q *Queue) TotalWaiting() Time { return q.totalWaiting }

// Semaphore is a counting semaphore with FIFO waiters, used for held
// resources like Ceph's per-OSD recovery/backfill reservations (unlike
// Queue, which models jobs with known service times).
type Semaphore struct {
	capacity int
	held     int
	waiters  []func()
}

// NewSemaphore creates a semaphore with the given capacity (>= 1).
func (s *Sim) NewSemaphore(capacity int) *Semaphore {
	if capacity < 1 {
		panic("simclock: semaphore needs capacity >= 1")
	}
	return &Semaphore{capacity: capacity}
}

// Acquire grants a unit to fn, immediately if available, otherwise when a
// holder releases. Grants are FIFO.
func (sem *Semaphore) Acquire(fn func()) {
	if sem.held < sem.capacity {
		sem.held++
		fn()
		return
	}
	sem.waiters = append(sem.waiters, fn)
}

// Release returns a unit, granting the oldest waiter if any.
func (sem *Semaphore) Release() {
	if sem.held <= 0 {
		panic("simclock: Release without Acquire")
	}
	if len(sem.waiters) > 0 {
		next := sem.waiters[0]
		sem.waiters = sem.waiters[1:]
		next()
		return
	}
	sem.held--
}

// Held reports currently granted units.
func (sem *Semaphore) Held() int { return sem.held }

// Waiting reports queued acquirers.
func (sem *Semaphore) Waiting() int { return len(sem.waiters) }

// Join is a completion barrier: after n calls to Done, fn fires once.
type Join struct {
	remaining int
	fn        func()
}

// NewJoin creates a barrier over n completions. If n == 0 the callback
// fires immediately.
func NewJoin(n int, fn func()) *Join {
	j := &Join{remaining: n, fn: fn}
	if n == 0 && fn != nil {
		fn()
	}
	return j
}

// Done records one completion, firing the callback on the last.
func (j *Join) Done() {
	if j.remaining <= 0 {
		panic("simclock: Join.Done called too many times")
	}
	j.remaining--
	if j.remaining == 0 && j.fn != nil {
		j.fn()
	}
}

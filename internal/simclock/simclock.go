// Package simclock is a small deterministic discrete-event simulation
// engine. The cluster simulator uses it to account for the time cost of
// heartbeats, peering, disk I/O, network transfers and decode CPU without
// running in real time.
//
// Events scheduled for the same instant fire in scheduling order, making
// runs fully reproducible: the heap orders by (time, sequence number) and
// every scheduling call — At, After, Queue.Submit — consumes exactly one
// sequence number, so the firing order is a pure function of the
// scheduling order regardless of heap internals.
//
// The hot path is allocation-free. Events are value-typed entries in an
// implicit 4-ary min-heap (no container/heap interface boxing), callbacks
// are fixed-arg pairs (fn func(any), arg any) — func values and pointers
// are pointer-shaped, so storing them in an `any` does not allocate — and
// in-service Queue jobs ride pooled nodes recycled through a freelist.
// The closure-based At/After/Submit signatures remain for cold paths;
// hot callers use the *Arg variants with a pooled or long-lived argument.
package simclock

import (
	"fmt"
	"time"
)

// Time is simulated time since the start of the run.
type Time = time.Duration

// Sim is a discrete-event simulator. It is not safe for concurrent use;
// everything runs on the caller's goroutine inside Run. RunParallel keeps
// the same contract: callbacks always execute on the committing goroutine,
// one at a time, in the exact order Run would fire them.
type Sim struct {
	now    Time
	events []event // implicit 4-ary min-heap on (at, seq)
	seq    uint64

	freeJobs *job // freelist of in-service Queue job nodes

	// par is non-nil while RunParallel is draining the simulation; it
	// redirects schedule calls for beyond-window times to the sharded
	// event streams (see parallel.go).
	par *parRun
}

// event is one scheduled callback. fn and arg are stored separately so
// scheduling never allocates: a bound closure would escape to the heap on
// every call, a func value or pointer stored in an `any` does not.
type event struct {
	at  Time
	seq uint64
	fn  func(any)
	arg any
}

func (e *event) before(o *event) bool {
	return e.at < o.at || (e.at == o.at && e.seq < o.seq)
}

// New returns a simulator at time zero.
func New() *Sim { return &Sim{} }

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// callThunk adapts the closure-based scheduling API to the fixed-arg
// event representation.
func callThunk(a any) { a.(func())() }

// At schedules fn at absolute time t, which must not be in the past.
func (s *Sim) At(t Time, fn func()) { s.schedule(t, callThunk, fn) }

// AtArg schedules fn(arg) at absolute time t without allocating.
func (s *Sim) AtArg(t Time, fn func(any), arg any) { s.schedule(t, fn, arg) }

// After schedules fn d from now. Negative d is treated as zero.
func (s *Sim) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	s.schedule(s.now+d, callThunk, fn)
}

// AfterArg schedules fn(arg) d from now without allocating. Negative d is
// treated as zero.
func (s *Sim) AfterArg(d Time, fn func(any), arg any) {
	if d < 0 {
		d = 0
	}
	s.schedule(s.now+d, fn, arg)
}

func (s *Sim) schedule(t Time, fn func(any), arg any) {
	if t < s.now {
		panic(fmt.Sprintf("simclock: scheduling into the past (%v < %v)", t, s.now))
	}
	s.seq++
	e := event{at: t, seq: s.seq, fn: fn, arg: arg}
	if p := s.par; p != nil && t > p.windowEnd {
		// Parallel mode: events beyond the committing window are staged
		// on a sharded stream, to be drained and pre-sorted by the
		// worker pool at a later window boundary. Events inside the
		// window fall through to s.events, which doubles as the
		// window's overflow heap (see parallel.go).
		p.route(e)
		return
	}
	s.events = append(s.events, e)
	heapUp(s.events, len(s.events)-1)
}

// heapUp restores the heap property from leaf i toward the root. The
// moving event is held in a register and written once at its final slot.
func heapUp(h []event, i int) {
	e := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !e.before(&h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
}

// heapDown restores the heap property from slot i toward the leaves. With
// four children per node the tree is half as deep as a binary heap, which
// pays off on the pop-heavy event loop.
func heapDown(h []event, i int) {
	n := len(h)
	e := h[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for k := c + 1; k < end; k++ {
			if h[k].before(&h[m]) {
				m = k
			}
		}
		if !h[m].before(&e) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = e
}

// heapPop removes and returns the earliest event of heap h. The vacated
// tail slot is zeroed so pooled arguments do not leak through the heap's
// spare capacity.
func heapPop(h []event) (event, []event) {
	e := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{}
	h = h[:n]
	if n > 0 {
		heapDown(h, 0)
	}
	return e, h
}

// pop removes and returns the earliest event.
func (s *Sim) pop() event {
	e, h := heapPop(s.events)
	s.events = h
	return e
}

// Run processes events until none remain, returning the final time.
func (s *Sim) Run() Time {
	for len(s.events) > 0 {
		e := s.pop()
		s.now = e.at
		e.fn(e.arg)
	}
	return s.now
}

// RunUntil processes events with time <= t, then sets the clock to t.
func (s *Sim) RunUntil(t Time) {
	for len(s.events) > 0 && s.events[0].at <= t {
		e := s.pop()
		s.now = e.at
		e.fn(e.arg)
	}
	if t > s.now {
		s.now = t
	}
}

// Pending reports the number of queued events, including events staged on
// RunParallel's sharded streams.
func (s *Sim) Pending() int {
	n := len(s.events)
	if p := s.par; p != nil {
		for i := range p.shards {
			n += len(p.shards[i].events) + len(p.shards[i].batch) - p.shards[i].cursor
		}
	}
	return n
}

// job is a pooled in-service Queue entry: it is the heap-event argument
// for the job's completion, so running a job allocates nothing after the
// freelist warms up.
type job struct {
	q    *Queue
	fn   func(any)
	arg  any
	next *job
}

func (s *Sim) newJob() *job {
	if j := s.freeJobs; j != nil {
		s.freeJobs = j.next
		j.next = nil
		return j
	}
	return &job{}
}

func (s *Sim) freeJob(j *job) {
	j.q, j.fn, j.arg = nil, nil, nil
	j.next = s.freeJobs
	s.freeJobs = j
}

// Queue is a FIFO service center with a fixed number of parallel servers.
// Jobs are submitted with a service duration; each occupies one server for
// that duration, then its completion callback fires.
//
// Disks, NICs and per-OSD recovery/CPU slots are all modeled as Queues.
type Queue struct {
	sim     *Sim
	servers int
	busy    int

	// waiting is a power-of-two ring buffer: head indexes the oldest
	// entry, count the occupancy. Unlike the previous s = s[1:] slice it
	// neither leaks popped entries nor reallocates on steady-state churn.
	waiting []queuedJob
	head    int
	count   int

	// Stats.
	JobsServed   int
	BusyTime     Time // total server-occupied duration
	totalWaiting Time
}

type queuedJob struct {
	service Time
	fn      func(any)
	arg     any
	queued  Time
}

// NewQueue creates a service center with the given parallelism (>= 1).
func (s *Sim) NewQueue(servers int) *Queue {
	if servers < 1 {
		panic("simclock: queue needs at least one server")
	}
	return &Queue{sim: s, servers: servers}
}

// Submit enqueues a job with the given service time; done (may be nil)
// fires at completion.
func (q *Queue) Submit(service Time, done func()) {
	if done == nil {
		q.SubmitArg(service, nil, nil)
		return
	}
	q.SubmitArg(service, callThunk, done)
}

// SubmitArg enqueues a job whose completion fires fn(arg) (fn may be
// nil), allocating nothing. It is the hot-path form of Submit.
func (q *Queue) SubmitArg(service Time, fn func(any), arg any) {
	if service < 0 {
		service = 0
	}
	if q.busy < q.servers {
		q.start(service, fn, arg)
		return
	}
	q.pushWait(queuedJob{service: service, fn: fn, arg: arg, queued: q.sim.now})
}

func (q *Queue) start(service Time, fn func(any), arg any) {
	q.busy++
	q.BusyTime += service
	j := q.sim.newJob()
	j.q, j.fn, j.arg = q, fn, arg
	q.sim.schedule(q.sim.now+service, jobDone, j)
}

// jobDone is the completion event for every in-service job. The order —
// free a server, account the completion, promote the oldest waiter, then
// fire the job's own callback — is load-bearing: promoted work schedules
// its completion before anything the callback schedules, exactly as the
// closure-based engine did.
func jobDone(a any) {
	j := a.(*job)
	q := j.q
	fn, arg := j.fn, j.arg
	q.sim.freeJob(j)
	q.busy--
	q.JobsServed++
	if q.count > 0 {
		w := q.popWait()
		q.totalWaiting += q.sim.now - w.queued
		q.start(w.service, w.fn, w.arg)
	}
	if fn != nil {
		fn(arg)
	}
}

func (q *Queue) pushWait(j queuedJob) {
	if q.count == len(q.waiting) {
		q.growWait()
	}
	q.waiting[(q.head+q.count)&(len(q.waiting)-1)] = j
	q.count++
}

func (q *Queue) popWait() queuedJob {
	j := q.waiting[q.head]
	q.waiting[q.head] = queuedJob{}
	q.head = (q.head + 1) & (len(q.waiting) - 1)
	q.count--
	return j
}

func (q *Queue) growWait() {
	size := len(q.waiting) * 2
	if size == 0 {
		size = 8
	}
	next := make([]queuedJob, size)
	for i := 0; i < q.count; i++ {
		next[i] = q.waiting[(q.head+i)&(len(q.waiting)-1)]
	}
	q.waiting = next
	q.head = 0
}

// InFlight reports currently executing jobs.
func (q *Queue) InFlight() int { return q.busy }

// QueueLen reports jobs waiting for a server.
func (q *Queue) QueueLen() int { return q.count }

// TotalWaiting is the cumulative time jobs spent queued before service.
func (q *Queue) TotalWaiting() Time { return q.totalWaiting }

// Semaphore is a counting semaphore with FIFO waiters, used for held
// resources like Ceph's per-OSD recovery/backfill reservations (unlike
// Queue, which models jobs with known service times).
type Semaphore struct {
	capacity int
	held     int

	// waiters is a ring buffer like Queue.waiting.
	waiters []func()
	head    int
	count   int
}

// NewSemaphore creates a semaphore with the given capacity (>= 1).
func (s *Sim) NewSemaphore(capacity int) *Semaphore {
	if capacity < 1 {
		panic("simclock: semaphore needs capacity >= 1")
	}
	return &Semaphore{capacity: capacity}
}

// Acquire grants a unit to fn, immediately if available, otherwise when a
// holder releases. Grants are FIFO.
func (sem *Semaphore) Acquire(fn func()) {
	if sem.held < sem.capacity {
		sem.held++
		fn()
		return
	}
	if sem.count == len(sem.waiters) {
		sem.growWaiters()
	}
	sem.waiters[(sem.head+sem.count)&(len(sem.waiters)-1)] = fn
	sem.count++
}

// Release returns a unit, granting the oldest waiter if any.
func (sem *Semaphore) Release() {
	if sem.held <= 0 {
		panic("simclock: Release without Acquire")
	}
	if sem.count > 0 {
		next := sem.waiters[sem.head]
		sem.waiters[sem.head] = nil
		sem.head = (sem.head + 1) & (len(sem.waiters) - 1)
		sem.count--
		next()
		return
	}
	sem.held--
}

func (sem *Semaphore) growWaiters() {
	size := len(sem.waiters) * 2
	if size == 0 {
		size = 8
	}
	next := make([]func(), size)
	for i := 0; i < sem.count; i++ {
		next[i] = sem.waiters[(sem.head+i)&(len(sem.waiters)-1)]
	}
	sem.waiters = next
	sem.head = 0
}

// Held reports currently granted units.
func (sem *Semaphore) Held() int { return sem.held }

// Waiting reports queued acquirers.
func (sem *Semaphore) Waiting() int { return sem.count }

// Join is a completion barrier: after n calls to Done, fn fires once.
type Join struct {
	remaining int
	fn        func()
}

// NewJoin creates a barrier over n completions. If n == 0 the callback
// fires immediately.
func NewJoin(n int, fn func()) *Join {
	j := &Join{remaining: n, fn: fn}
	if n == 0 && fn != nil {
		fn()
	}
	return j
}

// Done records one completion, firing the callback on the last.
func (j *Join) Done() {
	if j.remaining <= 0 {
		panic("simclock: Join.Done called too many times")
	}
	j.remaining--
	if j.remaining == 0 && j.fn != nil {
		j.fn()
	}
}

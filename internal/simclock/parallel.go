// Conservative time-partitioned parallel execution for the discrete-event
// engine.
//
// The simulation is partitioned into sharded event streams (logical
// processes over the shared clock) and executed window by window. Each
// window [t0, t0+w] is processed in two phases:
//
//  1. Drain (parallel): every shard pops its events with at <= windowEnd
//     into a sorted batch. Shards are independent min-heaps, so the worker
//     pool drains them concurrently; nothing executes in this phase.
//  2. Commit (serial): the committing goroutine merges the shard batches
//     plus the window's overflow heap in global (at, seq) order and fires
//     the callbacks one at a time.
//
// Callbacks therefore execute in exactly the order Run would fire them —
// (at, seq) is a total order and seq assignment is a pure function of the
// scheduling order, which the serial commit reproduces — so recovery
// results, iostat counters and timelines are byte-identical to the serial
// engine for any worker count and any window size. That is the
// "conservative" part of the scheme: no event is ever executed
// speculatively or out of order; parallelism is confined to staging
// (heap maintenance, window sorting) where it cannot observe or mutate
// simulation state.
//
// Scheduling performed by committing callbacks is routed by target time:
// events beyond the current window go to a shard (they will be drained in
// parallel at a later window boundary), events inside the window fall
// back to the Sim's own heap, which doubles as the window's overflow
// lane and is merged by (at, seq) like everything else. The lookahead
// only decides how much future work is staged for parallel drain — the
// cluster derives it from the minimum simnet link latency, the classic
// conservative-PDES bound under which cross-process messages cannot
// arrive inside the current window.
package simclock

import (
	"math"

	"repro/internal/parallel"
)

// parShard is one partitioned event stream: a staged min-heap plus the
// drained, sorted batch of the current window. The struct is padded so
// concurrently draining workers do not false-share slice headers.
type parShard struct {
	events []event // staged future events, (at, seq) min-heap
	batch  []event // current window's drained events, sorted
	cursor int     // next batch index to commit
	_      [56]byte
}

// drain moves every staged event with at <= windowEnd into the shard's
// batch, in (at, seq) order. It touches only this shard's state, so the
// worker pool runs drains for distinct shards concurrently.
func (sh *parShard) drain(windowEnd Time) {
	h, b := sh.events, sh.batch
	for len(h) > 0 && h[0].at <= windowEnd {
		var e event
		e, h = heapPop(h)
		b = append(b, e)
	}
	sh.events, sh.batch = h, b
}

// parRun is the in-flight state of one RunParallel drive.
type parRun struct {
	shards    []parShard
	mask      uint64 // len(shards)-1; shard count is a power of two
	windowEnd Time   // current window's inclusive upper bound
}

// route stages an event on its shard. The shard index is a pure function
// of the event's sequence number, so the union of staged events — and
// therefore every window's drained set — is independent of the shard
// count and of worker scheduling.
func (p *parRun) route(e event) {
	sh := &p.shards[e.seq&p.mask]
	sh.events = append(sh.events, e)
	heapUp(sh.events, len(sh.events)-1)
}

// earliest returns the minimum (at, seq) staged event time, or false when
// every shard is empty.
func (p *parRun) earliest() (Time, bool) {
	var t0 Time
	found := false
	for i := range p.shards {
		h := p.shards[i].events
		if len(h) == 0 {
			continue
		}
		if !found || h[0].at < t0 {
			t0, found = h[0].at, true
		}
	}
	return t0, found
}

// Window sizing. Any window bound is correct (the overflow lane preserves
// commit order for events that land inside the window), so the window
// adapts to the event density: it grows when a window commits too few
// events to amortize the drain fan-out and shrinks when a window hoards
// so many that newly scheduled events rarely reach the parallel stage.
// The committed count is independent of the worker count, so the window
// trajectory — and with it every drained set — is too.
const (
	windowGrowBelow   = 4     // x shards: grow when commits fall below
	windowShrinkAbove = 64    // x shards: shrink when commits exceed
	maxWindowScale    = 16384 // x lookahead: growth cap
)

// RunParallel processes events until none remain, like Run, using up to
// workers goroutines from the process worker pool to stage and sort
// future events while callbacks commit serially in (at, seq) order. The
// results are byte-identical to Run for any workers and lookahead;
// workers <= 1 or lookahead <= 0 simply runs the serial engine. It
// returns the final simulated time.
func (s *Sim) RunParallel(workers int, lookahead Time) Time {
	if workers <= 1 || lookahead <= 0 || s.par != nil {
		return s.Run()
	}
	nsh := 1
	for nsh < workers && nsh < 32 {
		nsh <<= 1
	}
	p := &parRun{shards: make([]parShard, nsh), mask: uint64(nsh - 1)}

	// Stage everything scheduled so far; s.events becomes the (empty)
	// overflow heap of the first window.
	for _, e := range s.events {
		p.route(e)
	}
	clear(s.events)
	s.events = s.events[:0]
	s.par = p

	// Leave the simulator whole on every exit path: anything still staged
	// (only possible when a callback panicked mid-window) is returned to
	// the serial heap, exactly as Run would have left it.
	defer func() {
		s.par = nil
		for i := range p.shards {
			sh := &p.shards[i]
			for _, e := range sh.events {
				s.events = append(s.events, e)
				heapUp(s.events, len(s.events)-1)
			}
			for _, e := range sh.batch[sh.cursor:] {
				s.events = append(s.events, e)
				heapUp(s.events, len(s.events)-1)
			}
		}
	}()

	maxWindow := lookahead * maxWindowScale
	if maxWindow/maxWindowScale != lookahead { // overflow
		maxWindow = math.MaxInt64
	}
	window := lookahead
	sh := p.shards
	for {
		t0, ok := p.earliest()
		if !ok {
			break
		}
		windowEnd := t0 + window
		if windowEnd < t0 { // overflow
			windowEnd = math.MaxInt64
		}
		p.windowEnd = windowEnd

		// Phase 1: parallel drain. The barrier in ForEach orders every
		// drain before the commit phase reads any batch.
		parallel.ForEach(nsh, workers, func(i int) { sh[i].drain(windowEnd) })

		// Phase 2: serial commit. Merge the shard batches and the
		// overflow heap by (at, seq); executing a callback may push onto
		// either side (overflow for in-window times, shard heaps beyond),
		// so the minimum is re-evaluated every step.
		committed := 0
		for {
			src := -1
			var best *event
			for i := range sh {
				if sh[i].cursor < len(sh[i].batch) {
					cand := &sh[i].batch[sh[i].cursor]
					if best == nil || cand.before(best) {
						best, src = cand, i
					}
				}
			}
			var e event
			if len(s.events) > 0 && (best == nil || s.events[0].before(best)) {
				e = s.pop()
			} else if src >= 0 {
				e = *best
				sh[src].batch[sh[src].cursor] = event{} // no pooled-arg leak
				sh[src].cursor++
			} else {
				break
			}
			s.now = e.at
			e.fn(e.arg)
			committed++
		}
		for i := range sh {
			sh[i].batch = sh[i].batch[:0]
			sh[i].cursor = 0
		}

		if committed < windowGrowBelow*nsh {
			if window < maxWindow {
				window <<= 1
				if window > maxWindow || window < 0 { // cap, incl. shift overflow
					window = maxWindow
				}
			}
		} else if committed > windowShrinkAbove*nsh && window > lookahead {
			window >>= 1
		}
	}
	return s.now
}

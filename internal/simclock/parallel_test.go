package simclock

import (
	"slices"
	"testing"
	"time"
)

// Differential harness for RunParallel: random event programs whose
// structure is a pure function of per-event identities (not of engine
// internals), executed once on the serial engine and once per
// (workers, lookahead) combination on the parallel engine. The execution
// traces — every (time, id) pair in firing order — must match exactly:
// the conservative commit scheme promises byte-identical behaviour for
// any worker count and any window size, so any divergence here is an
// engine bug, never tolerance.

// mix is splitmix64: the per-event identity hash that derives each
// event's fan-out and delays, so a program's shape depends only on the
// seed and the event's position in the spawn tree.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

type traceEntry struct {
	at Time
	id uint64
}

// tracer is one program execution: the trace in firing order plus the
// spawn budget bounding the run. Budget consumption order equals
// execution order; if the engines diverge, the traces already differ, so
// the shared counter never masks a failure.
type tracer struct {
	s      *Sim
	q      *Queue
	sem    *Semaphore
	trace  []traceEntry
	budget int
}

type node struct {
	tr *tracer
	id uint64
}

func runNode(a any) {
	n := a.(*node)
	tr := n.tr
	tr.trace = append(tr.trace, traceEntry{tr.s.Now(), n.id})
	h := mix(n.id)
	kids := int(h & 3) // 0..3 children
	for i := 0; i < kids && tr.budget > 0; i++ {
		tr.budget--
		h = mix(h + uint64(i) + 1)
		// Delay in [0, 200µs): zero-delay children land inside the current
		// window (overflow lane), long ones on the sharded streams.
		d := Time(h % uint64(200*time.Microsecond))
		tr.s.AfterArg(d, runNode, &node{tr: tr, id: h})
	}
	switch {
	case h&0xf == 0 && tr.budget > 0:
		// Ride the pooled-job Queue path: service time from the hash,
		// completion records a tagged entry.
		tr.budget--
		tr.q.SubmitArg(Time(h%uint64(50*time.Microsecond)), queueDone, &node{tr: tr, id: h ^ 0xabcdef})
	case h&0xf == 1 && tr.budget > 0:
		tr.budget--
		id := h ^ 0x123456
		tr.sem.Acquire(func() {
			tr.trace = append(tr.trace, traceEntry{tr.s.Now(), id})
			tr.s.AfterArg(Time(h%uint64(30*time.Microsecond)), semDone, tr)
		})
	}
}

func queueDone(a any) {
	n := a.(*node)
	n.tr.trace = append(n.tr.trace, traceEntry{n.tr.s.Now(), n.id})
}

func semDone(a any) {
	a.(*tracer).sem.Release()
}

// runProgram executes the seeded program; workers <= 1 runs the serial
// engine, otherwise RunParallel with the given lookahead.
func runProgram(seed uint64, workers int, lookahead Time) ([]traceEntry, Time) {
	s := New()
	tr := &tracer{s: s, q: s.NewQueue(2), sem: s.NewSemaphore(2), budget: 1500}
	r := seed
	for i := 0; i < 16; i++ {
		r = mix(r + uint64(i))
		at := Time(r % uint64(2*time.Millisecond))
		s.AtArg(at, runNode, &node{tr: tr, id: mix(r)})
	}
	var end Time
	if workers <= 1 {
		end = s.Run()
	} else {
		end = s.RunParallel(workers, lookahead)
	}
	return tr.trace, end
}

// TestWindowMergeProperty is the window-merge property test: for random
// programs, ANY partitioning of the event stream into windows and shards
// commits in the serial global (at, seq) order. Lookaheads are chosen to
// force degenerate windows (1ns: thousands of tiny windows), typical ones
// and near-single-window runs (10ms covers the whole program).
func TestWindowMergeProperty(t *testing.T) {
	lookaheads := []Time{1, 137, 50 * time.Microsecond, 10 * time.Millisecond}
	workerCounts := []int{2, 3, 8}
	for seed := uint64(1); seed <= 8; seed++ {
		want, wantEnd := runProgram(seed, 1, 0)
		if len(want) == 0 {
			t.Fatalf("seed %d: empty serial trace", seed)
		}
		for _, w := range workerCounts {
			for _, la := range lookaheads {
				got, gotEnd := runProgram(seed, w, la)
				if gotEnd != wantEnd {
					t.Errorf("seed %d workers %d lookahead %v: end %v, serial %v",
						seed, w, la, gotEnd, wantEnd)
				}
				if !slices.Equal(got, want) {
					i := 0
					for i < len(got) && i < len(want) && got[i] == want[i] {
						i++
					}
					t.Fatalf("seed %d workers %d lookahead %v: trace diverged at event %d/%d (serial %+v, parallel %+v)",
						seed, w, la, i, len(want), at(want, i), at(got, i))
				}
			}
		}
	}
}

func at(tr []traceEntry, i int) any {
	if i < len(tr) {
		return tr[i]
	}
	return "<end>"
}

// TestRunParallelLeavesSimWhole checks the panic path: a callback panic
// mid-window must restore every staged event to the serial heap so the
// simulator can continue on Run.
func TestRunParallelLeavesSimWhole(t *testing.T) {
	s := New()
	var fired []int
	for i := 0; i < 64; i++ {
		i := i
		s.At(Time(i)*time.Millisecond, func() {
			if i == 5 {
				panic("boom")
			}
			fired = append(fired, i)
		})
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		s.RunParallel(4, time.Microsecond)
	}()
	if s.par != nil {
		t.Fatal("par state not cleared after panic")
	}
	if got := s.Pending(); got != 58 {
		t.Fatalf("pending after panic = %d, want 58", got)
	}
	s.Run()
	if len(fired) != 63 {
		t.Fatalf("fired %d events, want 63", len(fired))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] <= fired[i-1] {
			t.Fatalf("resumed run fired out of order: %v", fired)
		}
	}
}

// FuzzSimclockFIFO pins the same-timestamp tie-break: events scheduled
// for one instant fire in scheduling order, on the serial engine and on
// the parallel engine at every window size. Each input byte schedules one
// root on a tiny timestamp grid (collisions abound); high-bit bytes also
// spawn a zero-delay child at fire time, which must fire after every
// same-instant event already staged.
func FuzzSimclockFIFO(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 1, 7, 3, 3, 0x83, 0x81, 0xff, 5})
	f.Add([]byte{0x80, 0x80, 0x80, 0x80})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 512 {
			t.Skip()
		}
		run := func(workers int, lookahead Time) []traceEntry {
			s := New()
			var trace []traceEntry
			var nextID uint64
			var child func(any)
			child = func(a any) {
				id := a.(uint64)
				trace = append(trace, traceEntry{s.Now(), id})
			}
			for _, b := range data {
				b := b
				id := nextID
				nextID++
				s.AtArg(Time(b&0x7)*100*time.Nanosecond, func(any) {
					trace = append(trace, traceEntry{s.Now(), id})
					if b&0x80 != 0 {
						cid := nextID
						nextID++
						s.AtArg(s.Now(), child, cid)
					}
				}, nil)
			}
			if workers <= 1 {
				s.Run()
			} else {
				s.RunParallel(workers, lookahead)
			}
			return trace
		}

		serial := run(1, 0)
		// FIFO within an instant: ids scheduled before the run ascend per
		// timestamp (children get larger ids than every pre-run root, and
		// also ascend in spawn order).
		byAt := map[Time]uint64{}
		for _, e := range serial {
			if last, ok := byAt[e.at]; ok && e.id <= last {
				t.Fatalf("same-instant FIFO violated at %v: id %d after %d (trace %v)",
					e.at, e.id, last, serial)
			}
			byAt[e.at] = e.id
		}
		for _, workers := range []int{2, 4} {
			for _, la := range []Time{1, 100 * time.Nanosecond, time.Millisecond} {
				if got := run(workers, la); !slices.Equal(got, serial) {
					t.Fatalf("workers=%d lookahead=%v diverged from serial\nserial   %v\nparallel %v",
						workers, la, serial, got)
				}
			}
		}
	})
}

// FuzzEngineWindowMerge feeds arbitrary byte programs through both
// engines: each byte schedules a root on a coarse timestamp grid with
// optional Queue traffic and delayed children, and the parallel trace
// must equal the serial trace for every (workers, lookahead) probed.
func FuzzEngineWindowMerge(f *testing.F) {
	f.Add([]byte{0x00, 0x41, 0x82, 0xc3, 0x24, 0x65, 0xa6, 0xe7})
	f.Add([]byte{0xff, 0xfe, 0xfd, 0x01, 0x02, 0x03})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 1024 {
			t.Skip()
		}
		run := func(workers int, lookahead Time) []traceEntry {
			s := New()
			q := s.NewQueue(1)
			var trace []traceEntry
			record := func(a any) {
				trace = append(trace, traceEntry{s.Now(), a.(uint64)})
			}
			for i, b := range data {
				b := b
				id := uint64(i)
				s.AtArg(Time(b&0x3f)*100*time.Nanosecond, func(any) {
					trace = append(trace, traceEntry{s.Now(), id})
					if b&0x40 != 0 {
						q.SubmitArg(Time(b)*10*time.Nanosecond, record, id|1<<32)
					}
					if b&0x80 != 0 {
						s.AfterArg(Time(b&0xf)*50*time.Nanosecond, record, id|1<<33)
					}
				}, nil)
			}
			if workers <= 1 {
				s.Run()
			} else {
				s.RunParallel(workers, lookahead)
			}
			return trace
		}
		serial := run(1, 0)
		for _, workers := range []int{2, 8} {
			for _, la := range []Time{1, 250 * time.Nanosecond, time.Millisecond} {
				if got := run(workers, la); !slices.Equal(got, serial) {
					t.Fatalf("workers=%d lookahead=%v diverged from serial (%d vs %d events)",
						workers, la, len(got), len(serial))
				}
			}
		}
	})
}

package simclock

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.After(3*time.Second, func() { order = append(order, 3) })
	s.After(1*time.Second, func() { order = append(order, 1) })
	s.After(2*time.Second, func() { order = append(order, 2) })
	end := s.Run()
	if end != 3*time.Second {
		t.Fatalf("end = %v", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events fired out of order: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var hits []Time
	s.After(time.Second, func() {
		hits = append(hits, s.Now())
		s.After(2*time.Second, func() {
			hits = append(hits, s.Now())
		})
	})
	s.Run()
	if len(hits) != 2 || hits[0] != time.Second || hits[1] != 3*time.Second {
		t.Fatalf("hits = %v", hits)
	}
}

func TestSchedulingIntoPastPanics(t *testing.T) {
	s := New()
	s.After(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past did not panic")
			}
		}()
		s.At(0, func() {})
	})
	s.Run()
}

func TestNegativeDelayClamped(t *testing.T) {
	s := New()
	fired := false
	s.After(-5*time.Second, func() { fired = true })
	s.Run()
	if !fired || s.Now() != 0 {
		t.Fatal("negative delay should fire at now")
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 5; i++ {
		s.At(Time(i)*time.Second, func() { count++ })
	}
	s.RunUntil(3 * time.Second)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("now = %v", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("pending = %d", s.Pending())
	}
}

func TestQueueSingleServerSerializes(t *testing.T) {
	s := New()
	q := s.NewQueue(1)
	var finish []Time
	for i := 0; i < 3; i++ {
		q.Submit(10*time.Second, func() { finish = append(finish, s.Now()) })
	}
	s.Run()
	want := []Time{10 * time.Second, 20 * time.Second, 30 * time.Second}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v", finish)
		}
	}
	if q.JobsServed != 3 {
		t.Fatalf("JobsServed = %d", q.JobsServed)
	}
	if q.TotalWaiting() != 30*time.Second { // 0 + 10 + 20
		t.Fatalf("TotalWaiting = %v", q.TotalWaiting())
	}
}

func TestQueueParallelServers(t *testing.T) {
	s := New()
	q := s.NewQueue(2)
	var finish []Time
	for i := 0; i < 4; i++ {
		q.Submit(10*time.Second, func() { finish = append(finish, s.Now()) })
	}
	s.Run()
	// Two run immediately, two queue behind them.
	want := []Time{10 * time.Second, 10 * time.Second, 20 * time.Second, 20 * time.Second}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v", finish)
		}
	}
}

func TestQueueBusyTime(t *testing.T) {
	s := New()
	q := s.NewQueue(1)
	q.Submit(3*time.Second, nil)
	q.Submit(4*time.Second, nil)
	s.Run()
	if q.BusyTime != 7*time.Second {
		t.Fatalf("BusyTime = %v", q.BusyTime)
	}
}

func TestQueueInterleavedSubmission(t *testing.T) {
	s := New()
	q := s.NewQueue(1)
	var finish []Time
	q.Submit(5*time.Second, func() { finish = append(finish, s.Now()) })
	s.After(1*time.Second, func() {
		q.Submit(5*time.Second, func() { finish = append(finish, s.Now()) })
	})
	s.Run()
	if finish[0] != 5*time.Second || finish[1] != 10*time.Second {
		t.Fatalf("finish = %v", finish)
	}
}

func TestJoin(t *testing.T) {
	fired := 0
	j := NewJoin(3, func() { fired++ })
	j.Done()
	j.Done()
	if fired != 0 {
		t.Fatal("join fired early")
	}
	j.Done()
	if fired != 1 {
		t.Fatal("join did not fire")
	}
}

func TestJoinZero(t *testing.T) {
	fired := false
	NewJoin(0, func() { fired = true })
	if !fired {
		t.Fatal("zero join must fire immediately")
	}
}

func TestJoinOverDonePanics(t *testing.T) {
	j := NewJoin(1, nil)
	j.Done()
	defer func() {
		if recover() == nil {
			t.Fatal("extra Done did not panic")
		}
	}()
	j.Done()
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		s := New()
		q := s.NewQueue(2)
		var finish []Time
		for i := 0; i < 20; i++ {
			d := Time(i%5+1) * time.Second
			s.After(Time(i)*time.Second/2, func() {
				q.Submit(d, func() { finish = append(finish, s.Now()) })
			})
		}
		s.Run()
		return finish
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic run")
		}
	}
}
